/**
 * @file
 * The bounded-memory contract of streaming replay, on real traces:
 * the live request pool and the resident set must be independent of
 * trace length (ARCHITECTURE.md, "Streaming replay"). Runs in its own
 * binary so process-wide RSS readings are not contaminated by other
 * suites; the ordering inside BoundedMemory matters for the same
 * reason (no materialized run before the streaming measurements).
 *
 * The CI streaming-smoke job asserts the same contract from the
 * outside on a 1M-request trace: slinfer_run --stream-trace under a
 * hard `ulimit -v` ceiling no materialized run could fit in.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unistd.h>

#include "common/proc.hh"
#include "harness/session.hh"
#include "stream/codec.hh"
#include "workload/azure_trace.hh"

namespace slinfer
{
namespace
{

std::string
tmpPath(const std::string &stem)
{
    return testing::TempDir() + "slinfer_" + stem + "_" +
           std::to_string(::getpid());
}

/** A dense trace at a FIXED arrival rate (~50 req/s aggregate): trace
 *  length scales with `durationSecs` only. The pool bound is lookahead
 *  + in-flight, and in-flight scales with rate — so the
 *  length-independence claim is only testable at constant rate, and
 *  only once the queue has reached its drop-deadline steady state
 *  (~300 s in; the small window sits right there). */
AzureTraceConfig
denseTrace(double durationSecs)
{
    AzureTraceConfig tc;
    tc.numModels = 6;
    tc.duration = durationSecs;
    tc.perModelRpm = 500.0;
    tc.seed = 77;
    return tc;
}

/** Pack a generated trace to `.strc` (times + models only) and return
 *  the actual record count. */
std::uint64_t
packTrace(const AzureTraceConfig &tc, const std::string &path)
{
    AzureTrace trace = generateAzureTrace(tc);
    stream::StrcHeader hdr;
    hdr.hasLengths = false;
    hdr.numModels = tc.numModels;
    hdr.duration = trace.duration;
    std::string err;
    stream::StrcWriter w;
    EXPECT_TRUE(w.open(path, hdr, &err)) << err;
    for (const Arrival &a : trace.arrivals) {
        stream::TraceRecord r;
        r.time = a.time;
        r.model = a.model;
        w.add(r);
    }
    EXPECT_TRUE(w.finish(&err)) << err;
    return trace.arrivals.size();
}

ExperimentConfig
streamConfig(const std::string &tracePath)
{
    ExperimentConfig cfg;
    cfg.system = SystemKind::Slinfer;
    cfg.cluster.cpuNodes = 2;
    cfg.cluster.gpuNodes = 2;
    cfg.models = replicateModel(llama2_7b(), 6);
    cfg.seed = 5;
    cfg.stream.enabled = true;
    cfg.stream.lookahead = 1024;
    cfg.stream.tracePath = tracePath;
    return cfg;
}

struct StreamRun
{
    std::uint64_t replayed = 0;
    std::size_t poolHighWater = 0;
    std::size_t maxRss = 0;
};

StreamRun
replayStreaming(const ExperimentConfig &cfg)
{
    StreamRun run;
    Session session(cfg);
    const Seconds end = session.duration();
    for (int i = 1; i <= 100; ++i) {
        session.advanceTo(end * i / 100);
        run.maxRss = std::max(run.maxRss, currentRssBytes());
    }
    session.finish();
    run.maxRss = std::max(run.maxRss, currentRssBytes());
    EXPECT_NE(session.feed(), nullptr);
    if (session.feed())
        run.replayed = session.feed()->replayed();
    run.poolHighWater = session.streamPoolSize();
    return run;
}

TEST(StreamRss, BoundedMemory)
{
    const std::string small_path = tmpPath("rss_small") + ".strc";
    const std::string big_path = tmpPath("rss_big") + ".strc";
    std::uint64_t small_n = packTrace(denseTrace(300.0), small_path);
    std::uint64_t big_n = packTrace(denseTrace(1200.0), big_path);
    ASSERT_GT(big_n, small_n * 3);

    const std::size_t base = currentRssBytes();

    StreamRun small = replayStreaming(streamConfig(small_path));
    StreamRun big = replayStreaming(streamConfig(big_path));
    std::remove(small_path.c_str());
    std::remove(big_path.c_str());
    EXPECT_EQ(small.replayed, small_n);
    EXPECT_EQ(big.replayed, big_n);

    // The pool high-water (lookahead + in-flight) must not scale with
    // trace length: 4x the records, same bound.
    ASSERT_GT(small.poolHighWater, 0u);
    EXPECT_LT(big.poolHighWater, small.poolHighWater * 2);
    EXPECT_LT(big.poolHighWater, big_n / 4);

    // And neither must the resident set: the 4x replay may not cost
    // even one materialized-request-vector of extra memory over the
    // 1x one (RSS is unknown/0 on exotic platforms — skip there).
    if (base > 0 && big.maxRss > 0) {
        std::size_t vectorBytes = big_n * sizeof(Request);
        EXPECT_LT(big.maxRss, small.maxRss + vectorBytes / 2)
            << "streaming RSS grew with trace length: "
            << small.maxRss << " -> " << big.maxRss;
    }
}

TEST(StreamRss, PrefixOracleDiff)
{
    // The CI smoke's 10k-prefix check, in miniature: pack a prefix of
    // the big trace, replay it streaming from disk, and demand a
    // byte-identical Report from the materialized oracle on the same
    // prefix.
    AzureTrace full = generateAzureTrace(denseTrace(600.0));
    constexpr std::size_t kPrefix = 10000;
    ASSERT_GT(full.arrivals.size(), kPrefix);

    AzureTrace prefix;
    prefix.arrivals.assign(full.arrivals.begin(),
                           full.arrivals.begin() + kPrefix);
    prefix.duration = full.duration;

    const std::string path = tmpPath("rss_prefix") + ".strc";
    stream::StrcHeader hdr;
    hdr.hasLengths = false;
    hdr.numModels = 6;
    hdr.duration = prefix.duration;
    std::string err;
    stream::StrcWriter w;
    ASSERT_TRUE(w.open(path, hdr, &err)) << err;
    for (const Arrival &a : prefix.arrivals) {
        stream::TraceRecord r;
        r.time = a.time;
        r.model = a.model;
        w.add(r);
    }
    ASSERT_TRUE(w.finish(&err)) << err;

    ExperimentConfig streamed = streamConfig(path);
    Report fromDisk = runExperiment(streamed);

    ExperimentConfig mat;
    mat.system = SystemKind::Slinfer;
    mat.cluster.cpuNodes = 2;
    mat.cluster.gpuNodes = 2;
    mat.models = replicateModel(llama2_7b(), 6);
    mat.seed = 5;
    mat.trace = std::move(prefix);
    mat.duration = mat.trace.duration;
    Report oracle = runExperiment(mat);

    EXPECT_EQ(toJson(oracle), toJson(fromDisk));
    std::remove(path.c_str());
}

} // namespace
} // namespace slinfer
