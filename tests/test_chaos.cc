/**
 * @file
 * Chaos-engine and resilience-policy tests: the fault-schedule
 * generator is a deterministic, composable pure function; generated
 * timelines validate and run byte-identically at every lockstep
 * thread count (20-seed differential fuzz) and sweep worker count;
 * node-fail/restore edge cases are defined no-ops; the config
 * validator rejects malformed timelines with clear messages; the
 * resilience probe's metrics match hand-computable schedules; and the
 * retry/backoff/failover/shedding policies keep runs deterministic.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "chaos/chaos.hh"
#include "harness/session.hh"
#include "scenario/scenario.hh"
#include "sweep/store.hh"
#include "sweep/summary.hh"
#include "sweep/sweep.hh"

namespace slinfer
{
namespace
{

/** A small, fast experiment shared by the tests below. */
ExperimentConfig
smallConfig(std::uint64_t seed = 3)
{
    ExperimentConfig cfg;
    cfg.system = SystemKind::Slinfer;
    cfg.cluster.cpuNodes = 2;
    cfg.cluster.gpuNodes = 2;
    cfg.models = replicateModel(llama2_7b(), 8);
    AzureTraceConfig tc;
    tc.numModels = 8;
    tc.duration = 120.0;
    tc.seed = seed;
    cfg.trace = generateAzureTrace(tc);
    cfg.duration = 120.0;
    cfg.seed = seed;
    return cfg;
}

chaos::FaultProcess
blastProcess(int first, int last, Seconds at, Seconds hold)
{
    chaos::FaultProcess p;
    p.kind = chaos::FaultProcess::Kind::CorrelatedFailure;
    p.firstNode = first;
    p.lastNode = last;
    p.at = at;
    p.hold = hold;
    return p;
}

chaos::FaultProcess
flapProcess(int first, int last, double mtbf, double mttr)
{
    chaos::FaultProcess p;
    p.kind = chaos::FaultProcess::Kind::NodeFlap;
    p.firstNode = first;
    p.lastNode = last;
    p.mtbf = mtbf;
    p.mttr = mttr;
    return p;
}

std::string
timelineFingerprint(const Timeline &tl)
{
    std::ostringstream os;
    os.precision(17);
    for (const Intervention &iv : tl) {
        os << interventionKindName(iv.kind) << '@' << iv.at << ":n"
           << iv.node << ":f" << iv.factor << "\n";
    }
    return os.str();
}

// ------------------------------------------------------------------
// The generator: deterministic, composable, well-formed.
// ------------------------------------------------------------------

TEST(ChaosGenerator, SameSeedSameSchedule)
{
    chaos::ChaosConfig cfg;
    cfg.processes = {flapProcess(0, 3, 100.0, 20.0),
                     blastProcess(1, 2, 300.0, 60.0)};
    Timeline a = chaos::generateChaosTimeline(cfg, 600.0, 42);
    Timeline b = chaos::generateChaosTimeline(cfg, 600.0, 42);
    EXPECT_EQ(timelineFingerprint(a), timelineFingerprint(b));
    EXPECT_FALSE(a.empty());

    Timeline c = chaos::generateChaosTimeline(cfg, 600.0, 43);
    EXPECT_NE(timelineFingerprint(a), timelineFingerprint(c));
}

TEST(ChaosGenerator, AddingAProcessNeverReshufflesAnother)
{
    // Per-process Rng forks: appending a second process must leave the
    // first one's draws untouched.
    chaos::ChaosConfig one;
    one.processes = {flapProcess(0, 1, 100.0, 20.0)};
    chaos::ChaosConfig two = one;
    two.processes.push_back(flapProcess(2, 3, 50.0, 10.0));

    Timeline a = chaos::generateChaosTimeline(one, 600.0, 7);
    Timeline b = chaos::generateChaosTimeline(two, 600.0, 7);

    auto onNodes01 = [](const Timeline &tl) {
        Timeline out;
        for (const Intervention &iv : tl) {
            if (iv.node == 0 || iv.node == 1)
                out.push_back(iv);
        }
        return out;
    };
    EXPECT_EQ(timelineFingerprint(onNodes01(a)),
              timelineFingerprint(onNodes01(b)));
}

TEST(ChaosGenerator, FlapSchedulesAreWellFormed)
{
    chaos::ChaosConfig cfg;
    cfg.processes = {flapProcess(0, 3, 60.0, 15.0)};
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Timeline tl = chaos::generateChaosTimeline(cfg, 900.0, seed);
        // Sorted by time; per node, fails and restores alternate and
        // everything lands inside [0, duration].
        for (std::size_t i = 1; i < tl.size(); ++i)
            EXPECT_LE(tl[i - 1].at, tl[i].at);
        std::vector<int> failed(4, 0);
        for (const Intervention &iv : tl) {
            EXPECT_GE(iv.at, 0.0);
            EXPECT_LE(iv.at, 900.0);
            ASSERT_GE(iv.node, 0);
            ASSERT_LT(iv.node, 4);
            if (iv.kind == Intervention::Kind::NodeFail) {
                EXPECT_EQ(failed[iv.node], 0);
                failed[iv.node] = 1;
            } else {
                ASSERT_EQ(iv.kind, Intervention::Kind::NodeRestore);
                EXPECT_EQ(failed[iv.node], 1);
                failed[iv.node] = 0;
            }
        }
        // Every fail is paired: restores clamp to the duration rather
        // than dangling past it.
        for (int node = 0; node < 4; ++node)
            EXPECT_EQ(failed[node], 0);
    }
}

TEST(ChaosGenerator, GeneratedTimelinesPassValidation)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        ExperimentConfig cfg = smallConfig(seed);
        chaos::ChaosConfig cc;
        cc.processes = {flapProcess(0, 3, 40.0, 10.0)};
        Timeline tl = chaos::generateChaosTimeline(cc, 120.0, seed);
        cfg.timeline = tl;
        cfg.validate(); // would fatal on any malformed pair
    }
}

TEST(ChaosGenerator, OneShotKindsExpandExactly)
{
    chaos::ChaosConfig cfg;
    cfg.processes = {blastProcess(1, 2, 100.0, 50.0)};
    chaos::FaultProcess slow;
    slow.kind = chaos::FaultProcess::Kind::Straggler;
    slow.firstNode = 3;
    slow.lastNode = 3;
    slow.at = 20.0;
    slow.hold = 30.0;
    slow.factor = 2.5;
    cfg.processes.push_back(slow);
    chaos::FaultProcess net;
    net.kind = chaos::FaultProcess::Kind::NetBrownout;
    net.at = 10.0;
    net.hold = 40.0;
    net.factor = 3.0;
    cfg.processes.push_back(net);

    Timeline tl = chaos::generateChaosTimeline(cfg, 600.0, 1);
    ASSERT_EQ(tl.size(), 8u); // 2 blast pairs + 1 straggler + 1 net
    auto count = [&](Intervention::Kind k) {
        return std::count_if(tl.begin(), tl.end(),
                             [k](const Intervention &iv) {
                                 return iv.kind == k;
                             });
    };
    EXPECT_EQ(count(Intervention::Kind::NodeFail), 2);
    EXPECT_EQ(count(Intervention::Kind::NodeRestore), 2);
    EXPECT_EQ(count(Intervention::Kind::NodeDegrade), 1);
    EXPECT_EQ(count(Intervention::Kind::NodeRecover), 1);
    EXPECT_EQ(count(Intervention::Kind::NetBrownout), 1);
    EXPECT_EQ(count(Intervention::Kind::NetRestore), 1);
    // One-shot kinds don't draw randomness: stamps are the configured
    // ones.
    for (const Intervention &iv : tl) {
        if (iv.kind == Intervention::Kind::NodeFail)
            EXPECT_DOUBLE_EQ(iv.at, 100.0);
        if (iv.kind == Intervention::Kind::NodeRestore)
            EXPECT_DOUBLE_EQ(iv.at, 150.0);
    }
}

TEST(ChaosGenerator, RestoresClampToTheDuration)
{
    chaos::ChaosConfig cfg;
    cfg.processes = {blastProcess(0, 0, 100.0, 500.0)};
    Timeline tl = chaos::generateChaosTimeline(cfg, 120.0, 1);
    ASSERT_EQ(tl.size(), 2u);
    EXPECT_DOUBLE_EQ(tl[0].at, 100.0);
    EXPECT_DOUBLE_EQ(tl[1].at, 120.0); // clamped, still well-formed
}

// ------------------------------------------------------------------
// The spec parser (--chaos grammar).
// ------------------------------------------------------------------

TEST(ChaosSpec, ParsesAFullSpec)
{
    chaos::ChaosConfig cfg;
    std::string err;
    ASSERT_TRUE(chaos::parseChaosSpec(
        "blast:nodes=4-5,at=300,for=180;"
        "flap:nodes=2,mtbf=250,mttr=40;"
        "straggler:nodes=1-2,at=100,for=60,factor=3;"
        "brownout:at=50,for=20,factor=4",
        cfg, &err))
        << err;
    ASSERT_EQ(cfg.processes.size(), 4u);
    EXPECT_EQ(cfg.processes[0].kind,
              chaos::FaultProcess::Kind::CorrelatedFailure);
    EXPECT_EQ(cfg.processes[0].firstNode, 4);
    EXPECT_EQ(cfg.processes[0].lastNode, 5);
    EXPECT_DOUBLE_EQ(cfg.processes[0].at, 300.0);
    EXPECT_DOUBLE_EQ(cfg.processes[0].hold, 180.0);
    EXPECT_EQ(cfg.processes[1].kind, chaos::FaultProcess::Kind::NodeFlap);
    EXPECT_EQ(cfg.processes[1].firstNode, 2);
    EXPECT_EQ(cfg.processes[1].lastNode, 2);
    EXPECT_DOUBLE_EQ(cfg.processes[1].mtbf, 250.0);
    EXPECT_DOUBLE_EQ(cfg.processes[1].mttr, 40.0);
    EXPECT_DOUBLE_EQ(cfg.processes[2].factor, 3.0);
    EXPECT_EQ(cfg.processes[3].kind,
              chaos::FaultProcess::Kind::NetBrownout);
}

TEST(ChaosSpec, RejectsMalformedSpecs)
{
    const char *bad[] = {
        "blurst:nodes=1",          // unknown kind
        "flap",                    // missing nodes
        "blast:nodes=1",           // missing at
        "flap:nodes=1,mtbf=nope",  // malformed number
        "flap:nodes=1,mtbf=-5",    // nonpositive mtbf
        "flap:nodes=3-1",          // descending range
        "flap:nodes=1,wat=2",      // unknown key
        "",                        // empty spec
    };
    for (const char *spec : bad) {
        chaos::ChaosConfig cfg;
        std::string err;
        EXPECT_FALSE(chaos::parseChaosSpec(spec, cfg, &err))
            << "accepted: " << spec;
        EXPECT_FALSE(err.empty()) << spec;
    }
}

// ------------------------------------------------------------------
// Validation (satellite: clear errors for malformed timelines).
// ------------------------------------------------------------------

using ChaosValidationDeath = ::testing::Test;

TEST(ChaosValidationDeath, RejectsEventsPastTheDuration)
{
    ExperimentConfig cfg = smallConfig();
    Intervention iv;
    iv.kind = Intervention::Kind::NodeFail;
    iv.node = 0;
    iv.at = 500.0; // past the 120 s window
    cfg.timeline = {iv};
    EXPECT_DEATH(cfg.validate(), "past the experiment duration");
}

TEST(ChaosValidationDeath, RejectsUnknownNodes)
{
    ExperimentConfig cfg = smallConfig();
    Intervention iv;
    iv.kind = Intervention::Kind::NodeFail;
    iv.node = 9; // 2+2 cluster: nodes 0-3
    iv.at = 10.0;
    cfg.timeline = {iv};
    EXPECT_DEATH(cfg.validate(), "unknown node 9");
}

TEST(ChaosValidationDeath, RejectsDuplicateFailures)
{
    ExperimentConfig cfg = smallConfig();
    Intervention a;
    a.kind = Intervention::Kind::NodeFail;
    a.node = 1;
    a.at = 10.0;
    Intervention b = a;
    b.at = 20.0; // node 1 is still down: a scripted typo
    cfg.timeline = {a, b};
    EXPECT_DEATH(cfg.validate(), "duplicate node-fail");
}

TEST(ChaosValidationDeath, RejectsRestoreWithoutFail)
{
    ExperimentConfig cfg = smallConfig();
    Intervention iv;
    iv.kind = Intervention::Kind::NodeRestore;
    iv.node = 2;
    iv.at = 30.0;
    cfg.timeline = {iv};
    EXPECT_DEATH(cfg.validate(), "without a preceding node-fail");
}

TEST(ChaosValidationDeath, RejectsNonpositiveDegradeFactor)
{
    ExperimentConfig cfg = smallConfig();
    Intervention iv;
    iv.kind = Intervention::Kind::NodeDegrade;
    iv.node = 0;
    iv.at = 10.0;
    iv.factor = 0.0;
    cfg.timeline = {iv};
    EXPECT_DEATH(cfg.validate(), "positive `factor`");
}

TEST(ChaosValidation, AcceptsAFailRestoreFailSequence)
{
    // Re-failing after a restore is legitimate (a flapping node).
    ExperimentConfig cfg = smallConfig();
    Intervention f1;
    f1.kind = Intervention::Kind::NodeFail;
    f1.node = 1;
    f1.at = 10.0;
    Intervention r1 = f1;
    r1.kind = Intervention::Kind::NodeRestore;
    r1.at = 40.0;
    Intervention f2 = f1;
    f2.at = 80.0;
    Intervention r2 = r1;
    r2.at = 110.0;
    cfg.timeline = {f1, r1, f2, r2};
    cfg.validate();
}

// ------------------------------------------------------------------
// Intervention edge-case semantics (satellite: defined no-ops).
// ------------------------------------------------------------------

TEST(ChaosEdgeCases, ReFailingAFailedNodeIsANoOp)
{
    ExperimentConfig cfg = smallConfig();
    Session s(cfg);
    Intervention fail;
    fail.kind = Intervention::Kind::NodeFail;
    fail.node = 1;

    s.advanceTo(30.0);
    s.inject(fail);
    EXPECT_EQ(s.controller().failedNodeCount(), 1);
    s.advanceTo(40.0);
    s.inject(fail); // already failed: defined no-op
    EXPECT_EQ(s.controller().failedNodeCount(), 1);
    s.advanceTo(cfg.duration);
    Report r = s.finish();
    EXPECT_EQ(r.completed + r.dropped, r.totalRequests);
}

TEST(ChaosEdgeCases, RestoringAHealthyNodeIsANoOp)
{
    ExperimentConfig cfg = smallConfig();
    Report plain = runExperiment(cfg);

    Session s(cfg);
    s.advanceTo(30.0);
    Intervention restore;
    restore.kind = Intervention::Kind::NodeRestore;
    restore.node = 2; // never failed
    s.inject(restore);
    EXPECT_EQ(s.controller().failedNodeCount(), 0);
    s.advanceTo(cfg.duration);
    // A no-op restore must not perturb the run at all.
    EXPECT_EQ(toJson(plain), toJson(s.finish()));
}

TEST(ChaosEdgeCases, RecoverWithoutDegradeIsANoOp)
{
    ExperimentConfig cfg = smallConfig();
    Report plain = runExperiment(cfg);

    Session s(cfg);
    s.advanceTo(20.0);
    Intervention recover;
    recover.kind = Intervention::Kind::NodeRecover;
    recover.node = 0; // never degraded: perfFactor already 1.0
    s.inject(recover);
    s.advanceTo(cfg.duration);
    EXPECT_EQ(toJson(plain), toJson(s.finish()));
}

// ------------------------------------------------------------------
// Degrade / brownout interventions actually bite.
// ------------------------------------------------------------------

TEST(ChaosFaults, StragglerDegradationSlowsTheRun)
{
    ExperimentConfig cfg = smallConfig();
    Report plain = runExperiment(cfg);

    // All four nodes 8x slower for most of the window.
    for (int node = 0; node < 4; ++node) {
        Intervention slow;
        slow.kind = Intervention::Kind::NodeDegrade;
        slow.node = node;
        slow.at = 10.0;
        slow.factor = 8.0;
        cfg.timeline.push_back(slow);
    }
    Report degraded = runExperiment(cfg);
    EXPECT_EQ(degraded.totalRequests, plain.totalRequests);
    EXPECT_LT(degraded.sloRate, plain.sloRate);
    EXPECT_GT(degraded.p95Ttft, plain.p95Ttft);
}

TEST(ChaosFaults, DegradeThenRecoverRoundTripsToUnitFactor)
{
    // factor x then recover before any work happens is byte-invisible:
    // the multiplier is exactly 1.0 again (bit-exact float identity).
    ExperimentConfig cfg = smallConfig();
    Report plain = runExperiment(cfg);

    Session s(cfg);
    Intervention slow;
    slow.kind = Intervention::Kind::NodeDegrade;
    slow.node = 1;
    slow.factor = 7.0;
    s.inject(slow);
    Intervention heal;
    heal.kind = Intervention::Kind::NodeRecover;
    heal.node = 1;
    s.inject(heal);
    s.advanceTo(cfg.duration);
    EXPECT_EQ(toJson(plain), toJson(s.finish()));
}

TEST(ChaosFaults, BrownoutRestoreRoundTripsToUnitFactor)
{
    ExperimentConfig cfg = smallConfig();
    Report plain = runExperiment(cfg);

    Session s(cfg);
    Intervention out;
    out.kind = Intervention::Kind::NetBrownout;
    out.factor = 5.0;
    s.inject(out);
    EXPECT_DOUBLE_EQ(s.controller().netFactor(), 5.0);
    Intervention back;
    back.kind = Intervention::Kind::NetRestore;
    s.inject(back);
    EXPECT_DOUBLE_EQ(s.controller().netFactor(), 1.0);
    s.advanceTo(cfg.duration);
    EXPECT_EQ(toJson(plain), toJson(s.finish()));
}

// ------------------------------------------------------------------
// The resilience probe.
// ------------------------------------------------------------------

TEST(ResilienceProbe, MetricsMatchAHandComputableSchedule)
{
    ExperimentConfig cfg = smallConfig();
    cfg.resilienceReport = true;
    Intervention fail;
    fail.kind = Intervention::Kind::NodeFail;
    fail.node = 3;
    fail.at = 60.0;
    Intervention restore = fail;
    restore.kind = Intervention::Kind::NodeRestore;
    restore.at = 90.0;
    cfg.timeline = {fail, restore};

    Report r = runExperiment(cfg);
    ASSERT_TRUE(r.resilience.enabled);
    EXPECT_EQ(r.resilience.faultEvents, 1u);
    EXPECT_EQ(r.resilience.restores, 1u);
    EXPECT_DOUBLE_EQ(r.resilience.mttrMeanS, 30.0);
    EXPECT_DOUBLE_EQ(r.resilience.degradedTimeS, 30.0);
    // 4 nodes, 1 down for 30 of 120 s.
    EXPECT_DOUBLE_EQ(r.resilience.availability,
                     1.0 - (1.0 / 4.0) * (30.0 / 120.0));
    EXPECT_GE(r.resilience.recoveryMeanS, 0.0);
}

TEST(ResilienceProbe, ProbeNeverPerturbsTheRun)
{
    // The probe only observes: a probed fault run's scalar metrics are
    // bit-identical to the unprobed run's.
    ExperimentConfig cfg = smallConfig();
    Intervention fail;
    fail.kind = Intervention::Kind::NodeFail;
    fail.node = 2;
    fail.at = 40.0;
    Intervention restore = fail;
    restore.kind = Intervention::Kind::NodeRestore;
    restore.at = 70.0;
    cfg.timeline = {fail, restore};
    Report plain = runExperiment(cfg);

    cfg.resilienceReport = true;
    Report probed = runExperiment(cfg);
    probed.resilience = Report::Resilience{}; // strip the extra block
    EXPECT_EQ(toJson(plain), toJson(probed));
}

TEST(ResilienceProbe, NoOpEventsAreNotCountedAsFaults)
{
    ExperimentConfig cfg = smallConfig();
    cfg.resilienceReport = true;
    Session s(cfg);
    Intervention fail;
    fail.kind = Intervention::Kind::NodeFail;
    fail.node = 1;
    s.advanceTo(30.0);
    s.inject(fail);
    s.inject(fail); // duplicate: no second fault event
    Intervention restoreWrong;
    restoreWrong.kind = Intervention::Kind::NodeRestore;
    restoreWrong.node = 3; // healthy: no restore event
    s.inject(restoreWrong);
    Intervention restore = fail;
    restore.kind = Intervention::Kind::NodeRestore;
    s.advanceTo(50.0);
    s.inject(restore);
    s.advanceTo(cfg.duration);
    Report r = s.finish();
    EXPECT_EQ(r.resilience.faultEvents, 1u);
    EXPECT_EQ(r.resilience.restores, 1u);
    EXPECT_DOUBLE_EQ(r.resilience.mttrMeanS, 20.0);
}

// ------------------------------------------------------------------
// Resilience policies stay deterministic and well-behaved.
// ------------------------------------------------------------------

ExperimentConfig
chaosPolicyConfig(std::uint64_t seed)
{
    ExperimentConfig cfg = smallConfig(seed);
    chaos::ChaosConfig cc;
    cc.processes = {blastProcess(2, 3, 40.0, 30.0),
                    flapProcess(0, 1, 50.0, 10.0)};
    cfg.chaos = cc;
    cfg.resilienceReport = true;
    cfg.controller.resilience.backoff = true;
    cfg.controller.resilience.failoverExclusion = 15.0;
    cfg.controller.resilience.shedBatchFirst = true;
    cfg.controller.resilience.batchSloCutoff = 4.0;
    return cfg;
}

TEST(ResiliencePolicies, ChaosRunsAreDeterministic)
{
    ExperimentConfig cfg = chaosPolicyConfig(11);
    Report a = runExperiment(cfg);
    Report b = runExperiment(cfg);
    EXPECT_EQ(toJson(a), toJson(b));
    EXPECT_TRUE(a.resilience.enabled);
    EXPECT_GE(a.resilience.faultEvents, 2u);
    EXPECT_EQ(a.completed + a.dropped, a.totalRequests);
}

TEST(ResiliencePolicies, RetryCapStillDropsEventually)
{
    ExperimentConfig cfg = chaosPolicyConfig(12);
    cfg.controller.resilience.retryCap = 1;
    Report tight = runExperiment(cfg);
    EXPECT_EQ(tight.completed + tight.dropped, tight.totalRequests);
}

TEST(ResiliencePolicies, DefaultsMatchPrePolicyBehavior)
{
    // All resilience knobs default off: a config that never touches
    // them runs byte-identically to one that spells the defaults out.
    ExperimentConfig cfg = smallConfig();
    Intervention fail;
    fail.kind = Intervention::Kind::NodeFail;
    fail.node = 3;
    fail.at = 30.0;
    Intervention restore = fail;
    restore.kind = Intervention::Kind::NodeRestore;
    restore.at = 60.0;
    cfg.timeline = {fail, restore};
    Report plain = runExperiment(cfg);

    ExperimentConfig spelled = cfg;
    spelled.controller.resilience = ResilienceConfig{};
    EXPECT_EQ(toJson(plain), toJson(runExperiment(spelled)));
}

// ------------------------------------------------------------------
// Differential fuzz: chaos schedules and reports are thread-count
// and worker-count invariant (satellite 3).
// ------------------------------------------------------------------

TEST(ChaosDifferential, TwentySeedsLockstepOracleVsThreads)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        ExperimentConfig cfg = chaosPolicyConfig(seed);
        cfg.simThreads = 1; // the inline serial oracle
        cfg.simWindow = 0.05;
        Report oracle = runExperiment(cfg);
        cfg.simThreads = 3;
        Report par = runExperiment(cfg);
        EXPECT_EQ(toJson(oracle), toJson(par)) << "seed " << seed;
    }
}

TEST(ChaosDifferential, SweepStoreIsByteIdenticalAtAnyWorkerCount)
{
    auto tempPath = [](const char *name) {
        return testing::TempDir() + "slinfer_chaos_" + name;
    };
    auto slurp = [](const std::string &path) {
        std::ifstream in(path);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };
    std::string path1 = tempPath("jobs1.jsonl");
    std::string path4 = tempPath("jobs4.jsonl");
    std::remove(path1.c_str());
    std::remove(path4.c_str());

    sweep::Grid grid;
    grid.scenarios = {"fleet-chaos-correlated"};
    grid.systems = {SystemKind::Slinfer};
    grid.seeds = {1, 2};

    sweep::RunOptions o1;
    o1.jobs = 1;
    o1.storePath = path1;
    sweep::RunOptions o4;
    o4.jobs = 4;
    o4.storePath = path4;
    std::vector<sweep::Record> r1 = sweep::runGrid(grid, o1);
    std::vector<sweep::Record> r4 = sweep::runGrid(grid, o4);
    ASSERT_EQ(r1.size(), 2u);

    std::string store1 = slurp(path1);
    EXPECT_FALSE(store1.empty());
    EXPECT_EQ(store1, slurp(path4));
    // The resilience metrics survive the store round-trip and join
    // the summary by name.
    EXPECT_TRUE(r1[0].report.resilience.enabled);
    std::vector<sweep::SummaryRow> rows = sweep::summarize(r1);
    ASSERT_EQ(rows.size(), 1u);
    const sweep::MetricSummary *avail =
        rows[0].metric("res_availability");
    ASSERT_NE(avail, nullptr);
    EXPECT_GT(avail->mean, 0.0);
    EXPECT_LE(avail->mean, 1.0);
    ASSERT_NE(rows[0].metric("res_recovery_mean_s"), nullptr);
    ASSERT_NE(rows[0].metric("res_mttr_mean_s"), nullptr);

    std::remove(path1.c_str());
    std::remove(path4.c_str());
}

TEST(ChaosDifferential, ScenarioChaosScheduleIsSeedStableAcrossRuns)
{
    // The catalog chaos scenario expands the same fault schedule on
    // every lowering: the full report (resilience block included) is
    // byte-identical run to run.
    const scenario::Scenario *sc =
        scenario::byName("fleet-chaos-correlated");
    ASSERT_NE(sc, nullptr);
    Report a = scenario::runScenario(*sc, SystemKind::Slinfer, 9);
    Report b = scenario::runScenario(*sc, SystemKind::Slinfer, 9);
    EXPECT_EQ(toJson(a), toJson(b));
    EXPECT_TRUE(a.resilience.enabled);
    EXPECT_EQ(a.resilience.faultEvents, 2u); // the two-node blast
}

} // namespace
} // namespace slinfer
