/**
 * @file
 * Quantifier tests (§VI-B): power-of-two profiling grids, interpolation
 * exactness on grid points, and — the paper's headline accuracy claim —
 * interpolated estimates within a few percent of the (noisy) ground
 * truth across random workloads.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "core/quantifier.hh"

namespace slinfer
{
namespace
{

class QuantifierTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        cpu = xeon6462c();
        gpu = a100_80g();
        m7 = llama2_7b();
        m13 = llama2_13b();
        quant.profile(cpu, m7);
        quant.profile(gpu, m7);
        quant.profile(cpu, m13);
    }

    HardwareSpec cpu, gpu;
    ModelSpec m7, m13;
    Quantifier quant;
};

TEST_F(QuantifierTest, ProfiledFlag)
{
    EXPECT_TRUE(quant.profiled(cpu, m7));
    EXPECT_FALSE(quant.profiled(gpu, m13));
}

TEST_F(QuantifierTest, SampleCountIsLogarithmic)
{
    // O(log Lmax * log Bmax): a few hundred points, not thousands
    // (paper: profiling completes within minutes).
    std::size_t n = quant.sampleCount(cpu, m7);
    EXPECT_LT(n, 500u);
    EXPECT_GT(n, 50u);
}

TEST_F(QuantifierTest, ExactOnGridPoints)
{
    for (Tokens len : {16, 64, 1024, 4096}) {
        EXPECT_DOUBLE_EQ(quant.prefillEstimate(cpu, m7, len),
                         PerfModel::prefillTime(cpu, m7, len));
    }
    for (int b : {1, 8, 64}) {
        for (Tokens len : {16, 256, 2048}) {
            EXPECT_DOUBLE_EQ(quant.decodeEstimate(cpu, m7, b, len),
                             PerfModel::decodeTime(cpu, m7, b, len));
        }
    }
}

TEST_F(QuantifierTest, InterpolationBetweenGridPoints)
{
    // Estimate at 1536 must lie between the 1024 and 2048 samples.
    Seconds lo = PerfModel::prefillTime(cpu, m7, 1024);
    Seconds hi = PerfModel::prefillTime(cpu, m7, 2048);
    Seconds est = quant.prefillEstimate(cpu, m7, 1536);
    EXPECT_GT(est, lo);
    EXPECT_LT(est, hi);
}

TEST_F(QuantifierTest, ClampsOutsideGrid)
{
    EXPECT_DOUBLE_EQ(quant.prefillEstimate(cpu, m7, 1),
                     PerfModel::prefillTime(cpu, m7, 16));
    // Batch extrapolation beyond the grid keeps growing.
    EXPECT_GT(quant.decodeEstimate(cpu, m7, 512, 1024),
              quant.decodeEstimate(cpu, m7, 256, 1024));
}

TEST_F(QuantifierTest, ReprofileIsIdempotent)
{
    Seconds before = quant.prefillEstimate(cpu, m7, 777);
    quant.profile(cpu, m7);
    EXPECT_DOUBLE_EQ(quant.prefillEstimate(cpu, m7, 777), before);
}

TEST_F(QuantifierTest, DistinguishesHardwareByName)
{
    // The same model profiles differently per hardware.
    EXPECT_GT(quant.prefillEstimate(cpu, m7, 2048),
              quant.prefillEstimate(gpu, m7, 2048) * 3.0);
}

/**
 * The paper reports 5.9% / 3.9% average relative deviation between
 * estimated and actual TTFT / TPOT over 100 random workloads. Our
 * ground truth = model x lognormal noise (sigma 3%); assert the same
 * magnitude (mean < 8%).
 */
class QuantifierAccuracy : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(QuantifierAccuracy, PrefillWithinPaperDeviation)
{
    Quantifier quant;
    HardwareSpec cpu = xeon6462c();
    ModelSpec m = llama2_7b();
    quant.profile(cpu, m);
    Rng rng(GetParam());
    double total_dev = 0.0;
    const int n = 100;
    for (int i = 0; i < n; ++i) {
        Tokens len = static_cast<Tokens>(rng.uniform(32, 4096));
        double actual = PerfModel::prefillTime(cpu, m, len) *
                        std::exp(0.03 * rng.normal());
        double est = quant.prefillEstimate(cpu, m, len);
        total_dev += std::abs(est - actual) / actual;
    }
    EXPECT_LT(total_dev / n, 0.08);
}

TEST_P(QuantifierAccuracy, DecodeWithinPaperDeviation)
{
    Quantifier quant;
    HardwareSpec cpu = xeon6462c();
    ModelSpec m = llama2_13b();
    quant.profile(cpu, m);
    Rng rng(GetParam() + 1000);
    double total_dev = 0.0;
    const int n = 100;
    for (int i = 0; i < n; ++i) {
        int batch = static_cast<int>(rng.uniform(1, 128));
        Tokens len = static_cast<Tokens>(rng.uniform(32, 4096));
        double actual = PerfModel::decodeTime(cpu, m, batch, len) *
                        std::exp(0.03 * rng.normal());
        double est = quant.decodeEstimate(cpu, m, batch, len);
        total_dev += std::abs(est - actual) / actual;
    }
    EXPECT_LT(total_dev / n, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantifierAccuracy,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(QuantifierDeath, UnprofiledPairPanics)
{
    Quantifier quant;
    EXPECT_DEATH(quant.prefillEstimate(a100_80g(), llama2_7b(), 100),
                 "not profiled");
}

TEST(Quantifier, LongContextModelGridReaches32K)
{
    Quantifier quant;
    HardwareSpec cpu = xeon6462c();
    ModelSpec m8 = llama31_8b();
    quant.profile(cpu, m8);
    // §IX-I1 / §X: 32K prefill on the CPU takes tens of seconds.
    EXPECT_GT(quant.prefillEstimate(cpu, m8, 32768), 20.0);
    // And ~8.4K inputs fit inside the 8 s TTFT ceiling.
    EXPECT_LT(quant.prefillEstimate(cpu, m8, 8400), 8.0);
}

} // namespace
} // namespace slinfer
