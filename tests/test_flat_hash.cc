/**
 * @file
 * FlatHashMap (common/flat_hash.hh): the open-addressing table behind
 * the quantifier profile lookup, the sweep store's hash dedup, and
 * model-preset resolution. Exercises insert-or-find semantics,
 * heterogeneous (string_view) probes, robin-hood displacement under
 * forced collisions, growth across rehashes, and forEach coverage.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/flat_hash.hh"

namespace slinfer
{
namespace
{

TEST(FlatHash, EmplaceInsertsOnceAndFindsByView)
{
    FlatHashMap<std::string, int> m;
    auto [v1, ins1] = m.emplace("alpha", 1);
    EXPECT_TRUE(ins1);
    EXPECT_EQ(*v1, 1);

    // Second emplace with the same key is a find, not an overwrite.
    auto [v2, ins2] = m.emplace("alpha", 99);
    EXPECT_FALSE(ins2);
    EXPECT_EQ(*v2, 1);
    EXPECT_EQ(v1, v2);
    EXPECT_EQ(m.size(), 1u);

    // Heterogeneous probe: no std::string temporary needed.
    std::string_view probe("alpha");
    ASSERT_NE(m.find(probe), nullptr);
    EXPECT_EQ(*m.find(probe), 1);
    EXPECT_EQ(m.find(std::string_view("beta")), nullptr);
}

TEST(FlatHash, GrowsAcrossRehashesWithoutLosingEntries)
{
    FlatHashMap<std::string, std::size_t> m;
    constexpr std::size_t kN = 5000;
    for (std::size_t i = 0; i < kN; ++i) {
        auto [v, inserted] = m.emplace("key-" + std::to_string(i), i);
        ASSERT_TRUE(inserted);
        ASSERT_EQ(*v, i);
    }
    ASSERT_EQ(m.size(), kN);
    for (std::size_t i = 0; i < kN; ++i) {
        const std::size_t *v = m.find("key-" + std::to_string(i));
        ASSERT_NE(v, nullptr) << "key-" << i;
        ASSERT_EQ(*v, i);
    }
    EXPECT_EQ(m.find(std::string_view("key-5000")), nullptr);
}

TEST(FlatHash, ReservePresizesWithoutLosingEntries)
{
    // Value *slots* move on insert regardless of reserve (robin-hood
    // displacement shifts residents) — the pointer-stability contract
    // lives in the unique_ptr test below. reserve() only promises the
    // table absorbs `n` entries correctly, pre-sized.
    FlatHashMap<std::string, int> m;
    m.reserve(1000);
    for (int i = 0; i < 1000; ++i)
        ASSERT_TRUE(m.emplace("k" + std::to_string(i), i).second);
    ASSERT_EQ(m.size(), 1000u);
    for (int i = 0; i < 1000; ++i) {
        const int *v = m.find("k" + std::to_string(i));
        ASSERT_NE(v, nullptr) << i;
        ASSERT_EQ(*v, i);
    }
}

TEST(FlatHash, UniquePtrValuesKeepPointeesStableAcrossRehash)
{
    // The documented contract for pointer-caching consumers (the
    // quantifier memo, the sweep store): slots move on rehash, the
    // heap pointee does not.
    FlatHashMap<std::string, std::unique_ptr<int>> m;
    auto [cell, inserted] =
        m.emplace("pinned", std::make_unique<int>(42));
    ASSERT_TRUE(inserted);
    int *pinned = cell->get();
    for (int i = 0; i < 4000; ++i)
        m.emplace("filler-" + std::to_string(i),
                  std::make_unique<int>(i));
    const std::unique_ptr<int> *found =
        m.find(std::string_view("pinned"));
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->get(), pinned);
    EXPECT_EQ(**found, 42);
}

TEST(FlatHash, PairKeysProbeWithStringViews)
{
    FlatHashMap<std::pair<std::string, std::string>, int,
                FlatStringPairHash, FlatStringPairEq>
        m;
    m.emplace({"a100", "llama2-7b"}, 1);
    m.emplace({"a100", "llama2-13b"}, 2);
    m.emplace({"h100", "llama2-7b"}, 3);

    auto probe = std::make_pair(std::string_view("a100"),
                                std::string_view("llama2-13b"));
    const int *v = m.find(probe);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, 2);
    // Swapped components must NOT collide into a hit.
    auto swapped = std::make_pair(std::string_view("llama2-13b"),
                                  std::string_view("a100"));
    EXPECT_EQ(m.find(swapped), nullptr);
}

/** All keys land on one home slot: the probe chain and robin-hood
 *  displacement carry the whole table. */
struct CollidingHash
{
    using is_transparent = void;
    std::uint64_t
    operator()(std::string_view) const
    {
        return 7;
    }
};

TEST(FlatHash, SurvivesFullCollisionChains)
{
    FlatHashMap<std::string, int, CollidingHash, FlatStringEq> m;
    for (int i = 0; i < 300; ++i)
        m.emplace("c" + std::to_string(i), i);
    ASSERT_EQ(m.size(), 300u);
    for (int i = 0; i < 300; ++i) {
        const int *v = m.find("c" + std::to_string(i));
        ASSERT_NE(v, nullptr) << i;
        ASSERT_EQ(*v, i);
    }
    EXPECT_EQ(m.find(std::string_view("missing")), nullptr);
}

TEST(FlatHash, ForEachVisitsEveryEntryExactlyOnce)
{
    FlatHashMap<std::string, int> m;
    for (int i = 0; i < 257; ++i)
        m.emplace("e" + std::to_string(i), i);
    std::vector<bool> seen(257, false);
    std::size_t visits = 0;
    m.forEach([&](const std::string &k, const int &v) {
        ASSERT_EQ(k, "e" + std::to_string(v));
        ASSERT_FALSE(seen[v]);
        seen[v] = true;
        ++visits;
    });
    EXPECT_EQ(visits, 257u);
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                            [](bool b) { return b; }));
}

TEST(FlatHash, ClearEmptiesAndAllowsReuse)
{
    FlatHashMap<std::string, int> m;
    m.emplace("x", 1);
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(std::string_view("x")), nullptr);
    auto [v, inserted] = m.emplace("x", 2);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*v, 2);
}

} // namespace
} // namespace slinfer
