/**
 * @file
 * Sweep-subsystem tests: grid expansion order and hashing are stable,
 * runGrid produces byte-identical stores and summaries at any worker
 * count, a partial store resumes by executing only the missing jobs,
 * the bootstrap CI behaves sanely on a known sample, the regression
 * gate passes against itself and fails on an injected drift, manifests
 * parse, records round-trip, and CSV fields quote correctly.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "common/log.hh"
#include "sweep/compare.hh"
#include "sweep/pool.hh"
#include "sweep/store.hh"
#include "sweep/summary.hh"
#include "sweep/sweep.hh"

namespace slinfer
{
namespace sweep
{
namespace
{

/** The fast smoke grid every execution test uses (quickstart runs in
 *  ~10 ms, so the full 6-job grid stays well under a second). */
Grid
smokeGrid()
{
    Grid grid;
    grid.scenarios = {"quickstart"};
    grid.systems = {SystemKind::Slinfer, SystemKind::Sllm};
    grid.seeds = {1, 2, 3};
    return grid;
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "slinfer_sweep_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(SweepGrid, ExpansionOrderAndHashesAreStable)
{
    Grid grid = smokeGrid();
    std::vector<JobSpec> a = expandGrid(grid);
    std::vector<JobSpec> b = expandGrid(grid);
    ASSERT_EQ(a.size(), 6u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].key(), b[i].key());
        EXPECT_EQ(a[i].hash(), b[i].hash());
        EXPECT_EQ(a[i].hash().size(), 16u);
        EXPECT_DOUBLE_EQ(a[i].duration, 300.0);
    }
    // Scenario-major, then system, then seed.
    EXPECT_EQ(a[0].seed, 1u);
    EXPECT_EQ(a[2].seed, 3u);
    EXPECT_EQ(a[0].system, SystemKind::Slinfer);
    EXPECT_EQ(a[3].system, SystemKind::Sllm);

    // Distinct jobs hash distinctly.
    std::set<std::string> hashes;
    for (const JobSpec &job : a)
        hashes.insert(job.hash());
    EXPECT_EQ(hashes.size(), a.size());
}

TEST(SweepGrid, OverridesChangeTheHashAndTheConfig)
{
    OverrideSet ov;
    ov.name = "small";
    ov.settings = {{"cpu-nodes", "2"}, {"keep-alive", "4.5"}};
    EXPECT_EQ(ov.canonical(), "cpu-nodes=2;keep-alive=4.5");

    JobSpec plain;
    plain.scenario = "quickstart";
    plain.seed = 1;
    JobSpec tweaked = plain;
    tweaked.overrides = ov;
    EXPECT_NE(plain.hash(), tweaked.hash());

    ExperimentConfig cfg;
    cfg = applyOverrides(cfg, ov);
    EXPECT_EQ(cfg.cluster.cpuNodes, 2);
    EXPECT_DOUBLE_EQ(cfg.controller.keepAlive, 4.5);

    OverrideSet bad;
    bad.settings = {{"no-such-knob", "1"}};
    EXPECT_EXIT(applyOverrides(ExperimentConfig{}, bad),
                testing::ExitedWithCode(1), "unknown override key");
}

TEST(SweepRun, ByteIdenticalStoreAndSummaryAtAnyWorkerCount)
{
    std::string path1 = tempPath("jobs1.jsonl");
    std::string path4 = tempPath("jobs4.jsonl");
    std::remove(path1.c_str());
    std::remove(path4.c_str());

    RunOptions o1;
    o1.jobs = 1;
    o1.storePath = path1;
    RunOptions o4;
    o4.jobs = 4;
    o4.storePath = path4;

    std::vector<Record> r1 = runGrid(smokeGrid(), o1);
    std::vector<Record> r4 = runGrid(smokeGrid(), o4);
    ASSERT_EQ(r1.size(), r4.size());

    std::string store1 = slurp(path1);
    EXPECT_FALSE(store1.empty());
    EXPECT_EQ(store1, slurp(path4));
    EXPECT_EQ(summaryToJson(summarize(r1)), summaryToJson(summarize(r4)));
    EXPECT_EQ(summaryToCsv(summarize(r1)), summaryToCsv(summarize(r4)));

    std::remove(path1.c_str());
    std::remove(path4.c_str());
}

TEST(SweepRun, ResumeExecutesOnlyTheMissingJobs)
{
    std::string full_path = tempPath("full.jsonl");
    std::string part_path = tempPath("partial.jsonl");
    std::remove(full_path.c_str());
    std::remove(part_path.c_str());

    RunOptions opts;
    opts.jobs = 2;
    opts.storePath = full_path;
    runGrid(smokeGrid(), opts);
    std::string full = slurp(full_path);

    // Keep the first two records, as if the sweep was interrupted.
    std::istringstream in(full);
    std::ofstream out(part_path);
    std::string line;
    for (int i = 0; i < 2 && std::getline(in, line); ++i)
        out << line << "\n";
    out.close();

    std::atomic<int> executed{0};
    std::atomic<int> cached{0};
    RunOptions resume;
    resume.jobs = 2;
    resume.storePath = part_path;
    resume.onProgress = [&](const Progress &p) {
        (p.cached ? cached : executed)
            .fetch_add(1, std::memory_order_relaxed);
    };
    std::vector<Record> records = runGrid(smokeGrid(), resume);

    EXPECT_EQ(cached.load(), 2);
    EXPECT_EQ(executed.load(), 4);
    ASSERT_EQ(records.size(), 6u);
    // The resumed store compacts to the same bytes as the uninterrupted
    // one.
    EXPECT_EQ(slurp(part_path), full);

    std::remove(full_path.c_str());
    std::remove(part_path.c_str());
}

TEST(SweepRun, ATornFinalRecordIsDroppedAndReRun)
{
    std::string full_path = tempPath("torn_full.jsonl");
    std::string torn_path = tempPath("torn.jsonl");
    std::remove(full_path.c_str());
    std::remove(torn_path.c_str());

    RunOptions opts;
    opts.jobs = 2;
    opts.storePath = full_path;
    runGrid(smokeGrid(), opts);
    std::string full = slurp(full_path);

    // Two complete records plus half of the third, as left behind by a
    // SIGKILL mid-append (no trailing newline).
    std::istringstream in(full);
    std::string line;
    std::ofstream out(torn_path);
    for (int i = 0; i < 2 && std::getline(in, line); ++i)
        out << line << "\n";
    std::getline(in, line);
    out << line.substr(0, line.size() / 2);
    out.close();

    std::atomic<int> executed{0};
    std::atomic<int> cached{0};
    RunOptions resume;
    resume.jobs = 2;
    resume.storePath = torn_path;
    resume.onProgress = [&](const Progress &p) {
        (p.cached ? cached : executed)
            .fetch_add(1, std::memory_order_relaxed);
    };
    runGrid(smokeGrid(), resume);

    EXPECT_EQ(cached.load(), 2);
    EXPECT_EQ(executed.load(), 4); // the torn job re-ran
    EXPECT_EQ(slurp(torn_path), full);

    std::remove(full_path.c_str());
    std::remove(torn_path.c_str());
}

TEST(SweepRun, ASharedStoreKeepsRecordsFromOtherGrids)
{
    std::string path = tempPath("shared.jsonl");
    std::remove(path.c_str());

    Grid wide = smokeGrid();
    wide.scenarios = {"quickstart", "poisson-steady"};
    RunOptions opts;
    opts.jobs = 2;
    opts.storePath = path;
    runGrid(wide, opts);
    std::string full = slurp(path);

    // Re-running a *narrower* grid against the same store must not
    // delete the other scenario's records.
    std::atomic<int> executed{0};
    RunOptions narrow;
    narrow.jobs = 2;
    narrow.storePath = path;
    narrow.onProgress = [&](const Progress &p) {
        if (!p.cached)
            executed.fetch_add(1, std::memory_order_relaxed);
    };
    runGrid(smokeGrid(), narrow);
    EXPECT_EQ(executed.load(), 0);
    EXPECT_EQ(slurp(path), full);

    std::remove(path.c_str());
}

TEST(SweepRun, AValidRecordMissingItsNewlineIsRepairedNotCorrupted)
{
    std::string full_path = tempPath("nonl_full.jsonl");
    std::string nonl_path = tempPath("nonl.jsonl");
    std::remove(full_path.c_str());
    std::remove(nonl_path.c_str());

    RunOptions opts;
    opts.jobs = 2;
    opts.storePath = full_path;
    runGrid(smokeGrid(), opts);
    std::string full = slurp(full_path);

    // Two records where the second lost its trailing newline (e.g. a
    // crash after the flush of the bytes but before the '\n', or a
    // tool stripping it): the record is valid and must be kept, and
    // the next append must not concatenate onto it.
    std::istringstream in(full);
    std::string l1, l2;
    std::getline(in, l1);
    std::getline(in, l2);
    {
        std::ofstream out(nonl_path);
        out << l1 << "\n" << l2; // no trailing newline
    }

    std::atomic<int> cached{0};
    RunOptions resume;
    resume.jobs = 2;
    resume.storePath = nonl_path;
    resume.onProgress = [&](const Progress &p) {
        if (p.cached)
            cached.fetch_add(1, std::memory_order_relaxed);
    };
    runGrid(smokeGrid(), resume);
    EXPECT_EQ(cached.load(), 2); // both survived
    EXPECT_EQ(slurp(nonl_path), full);

    std::remove(full_path.c_str());
    std::remove(nonl_path.c_str());
}

TEST(SweepSummary, BootstrapCiIsSaneOnAKnownSample)
{
    // A fixed sample with mean 10: the 95% CI on the mean must contain
    // it, be ordered, and be deterministic in the seed.
    std::vector<double> samples = {8, 9, 9.5, 10, 10.5, 11, 12};
    MetricSummary s = bootstrapSummary(samples, 77, 2000);
    EXPECT_NEAR(s.mean, 10.0, 1e-12);
    EXPECT_LE(s.ciLo, s.mean);
    EXPECT_GE(s.ciHi, s.mean);
    EXPECT_LT(s.ciLo, s.ciHi);
    EXPECT_GT(s.ciLo, samples.front());
    EXPECT_LT(s.ciHi, samples.back());
    EXPECT_DOUBLE_EQ(s.p50, 10.0);

    MetricSummary again = bootstrapSummary(samples, 77, 2000);
    EXPECT_DOUBLE_EQ(s.ciLo, again.ciLo);
    EXPECT_DOUBLE_EQ(s.ciHi, again.ciHi);

    // More replicates of the same spread tighten the interval.
    std::vector<double> many;
    for (int rep = 0; rep < 20; ++rep)
        for (double x : samples)
            many.push_back(x);
    MetricSummary tight = bootstrapSummary(many, 77, 2000);
    EXPECT_LT(tight.ciHi - tight.ciLo, s.ciHi - s.ciLo);

    // Single sample: degenerate interval at the mean.
    MetricSummary one = bootstrapSummary({3.5}, 1, 2000);
    EXPECT_DOUBLE_EQ(one.ciLo, 3.5);
    EXPECT_DOUBLE_EQ(one.ciHi, 3.5);
}

TEST(SweepSummary, GroupsReplicatesAcrossSeeds)
{
    RunOptions opts;
    opts.jobs = 2;
    std::vector<Record> records = runGrid(smokeGrid(), opts);
    std::vector<SummaryRow> rows = summarize(records, 200);
    ASSERT_EQ(rows.size(), 2u); // one per system
    for (const SummaryRow &row : rows) {
        EXPECT_EQ(row.replicates, 3u);
        const MetricSummary *goodput = row.metric("goodput_rpm");
        ASSERT_NE(goodput, nullptr);
        EXPECT_GT(goodput->mean, 0.0);
        EXPECT_EQ(goodput->n, 3u);
    }

    // JSON round-trip preserves the row identities and means.
    std::vector<SummaryRow> parsed;
    std::string err;
    ASSERT_TRUE(summaryFromJson(summaryToJson(rows), parsed, &err))
        << err;
    ASSERT_EQ(parsed.size(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(parsed[i].key(), rows[i].key());
        const MetricSummary *a = rows[i].metric("p95_ttft");
        const MetricSummary *b = parsed[i].metric("p95_ttft");
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        EXPECT_NEAR(a->mean, b->mean, 1e-9 * (1.0 + std::abs(a->mean)));
    }
}

TEST(SweepCompare, PassesAgainstItselfAndFailsOnDrift)
{
    RunOptions opts;
    opts.jobs = 2;
    std::vector<Record> records = runGrid(smokeGrid(), opts);
    std::vector<SummaryRow> rows = summarize(records, 200);

    CompareResult self = compare(rows, rows);
    EXPECT_TRUE(self.pass);
    EXPECT_EQ(self.regressions, 0u);
    EXPECT_GT(self.checked, 0u);
    EXPECT_NE(self.table.find("PASS"), std::string::npos);

    // Inflate baseline goodput by 2x: current is now a regression.
    std::vector<SummaryRow> inflated = rows;
    for (SummaryRow &row : inflated) {
        for (auto &[name, m] : row.metrics) {
            if (name == "goodput_rpm")
                m.mean *= 2.0;
        }
    }
    CompareResult fail = compare(rows, inflated);
    EXPECT_FALSE(fail.pass);
    EXPECT_GT(fail.regressions, 0u);
    EXPECT_NE(fail.table.find("REGRESSION"), std::string::npos);
    EXPECT_NE(fail.table.find("goodput_rpm"), std::string::npos);

    // A baseline row with no counterpart fails too.
    std::vector<SummaryRow> extra = rows;
    extra.push_back(rows[0]);
    extra.back().scenario = "not-run-this-time";
    CompareResult missing = compare(rows, extra);
    EXPECT_FALSE(missing.pass);
    EXPECT_EQ(missing.missingRows, 1u);

    // A *new* current row is reported but does not fail the gate.
    CompareResult added = compare(extra, rows);
    EXPECT_TRUE(added.pass);
    EXPECT_EQ(added.newRows, 1u);

    // The gate fails closed: matched rows with zero comparable gated
    // metric cells (e.g. a metric rename) must not pass vacuously.
    std::vector<SummaryRow> renamed = rows;
    for (SummaryRow &row : renamed) {
        for (auto &[name, m] : row.metrics)
            name += "_v2";
    }
    CompareResult vacuous = compare(renamed, renamed);
    EXPECT_FALSE(vacuous.pass);
    EXPECT_EQ(vacuous.checked, 0u);
    EXPECT_NE(vacuous.table.find("EMPTY GATE"), std::string::npos);
}

TEST(SweepManifest, ParsesAxesAndRejectsGarbage)
{
    Grid grid;
    std::string err;
    ASSERT_TRUE(parseManifest("# smoke sweep\n"
                              "scenarios = quickstart, poisson-steady\n"
                              "systems = slinfer, sllm\n"
                              "seeds = 1..3\n"
                              "override = small: cpu-nodes=2; "
                              "gpu-nodes=2\n",
                              grid, &err))
        << err;
    EXPECT_EQ(grid.scenarios.size(), 2u);
    EXPECT_EQ(grid.systems.size(), 2u);
    ASSERT_EQ(grid.seeds.size(), 3u);
    EXPECT_EQ(grid.seeds[0], 1u);
    EXPECT_EQ(grid.seeds[2], 3u);
    ASSERT_EQ(grid.overrides.size(), 1u);
    EXPECT_EQ(grid.overrides[0].name, "small");
    EXPECT_EQ(grid.overrides[0].settings.size(), 2u);

    Grid bad;
    EXPECT_FALSE(parseManifest("nonsense line\n", bad, &err));
    EXPECT_NE(err.find("line 1"), std::string::npos);
    EXPECT_FALSE(parseManifest("frobnicate = 1\n", bad, &err));
    // Unknown systems and malformed overrides report the line instead
    // of exiting the process.
    EXPECT_FALSE(parseManifest("systems = slinfer\nsystems = bogus\n",
                               bad, &err));
    EXPECT_NE(err.find("line 2"), std::string::npos);
    EXPECT_NE(err.find("bogus"), std::string::npos);
    EXPECT_FALSE(parseManifest("override = broken-no-equals\n", bad,
                               &err));
    EXPECT_NE(err.find("line 1"), std::string::npos);
    // Seeds are validated strictly; "three" must not become seed 0.
    EXPECT_FALSE(parseManifest("seeds = 1, 2, three\n", bad, &err));
    EXPECT_NE(err.find("three"), std::string::npos);
    EXPECT_FALSE(parseManifest("seeds = x..3\n", bad, &err));

    std::vector<std::uint64_t> seeds;
    EXPECT_TRUE(parseSeedList("4..6", seeds, &err));
    EXPECT_EQ(seeds, (std::vector<std::uint64_t>{4, 5, 6}));
    seeds.clear();
    EXPECT_FALSE(parseSeedList("5..1", seeds, &err));
    EXPECT_FALSE(parseSeedList("-3", seeds, &err));
    EXPECT_FALSE(parseSeedList("", seeds, &err));
}

TEST(SweepStore, RecordLinesRoundTrip)
{
    JobSpec job;
    job.scenario = "quickstart";
    job.system = SystemKind::SllmCS;
    job.seed = 17;
    job.overrides.name = "tight";
    job.overrides.settings = {{"tpot-slo", "0.05"}};
    job.duration = 300.0;

    Report report;
    report.system = "sllm+c+s";
    report.scenario = "quickstart";
    report.seed = 17;
    report.totalRequests = 100;
    report.completed = 93;
    report.sloRate = 0.93129999999999913;
    report.p95Ttft = 4.25;
    report.ttftCdf = {{0.25, 0.1}, {1.0, 0.8}};
    report.gpuTimeline = {{0.0, 1.0}, {60.0, 2.0}};

    std::string line = ResultStore::recordLine(job, report);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    JobSpec job2;
    Report report2;
    std::string err;
    ASSERT_TRUE(ResultStore::parseRecordLine(line, job2, report2, &err))
        << err;
    EXPECT_EQ(job2.key(), job.key());
    EXPECT_EQ(job2.hash(), job.hash());
    EXPECT_DOUBLE_EQ(job2.duration, 300.0);
    EXPECT_EQ(report2.totalRequests, 100u);
    EXPECT_EQ(report2.completed, 93u);
    // Bit-exact double round-trip (precision 17).
    EXPECT_EQ(report2.sloRate, report.sloRate);
    ASSERT_EQ(report2.ttftCdf.size(), 2u);
    EXPECT_DOUBLE_EQ(report2.ttftCdf[1].second, 0.8);
    ASSERT_EQ(report2.gpuTimeline.size(), 2u);

    EXPECT_FALSE(
        ResultStore::parseRecordLine("{\"key\": \"zz\"}", job2, report2,
                                     &err));
}

TEST(SweepPool, RunsEveryTaskExactlyOnceAtAnyWidth)
{
    for (int threads : {1, 2, 7}) {
        std::vector<std::atomic<int>> hits(100);
        parallelFor(hits.size(), threads, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "task " << i;
    }
    // n = 0 is a no-op, not a hang.
    parallelFor(0, 4, [](std::size_t) { FAIL(); });
}

TEST(SweepCsv, FieldsWithCommasAreQuoted)
{
    EXPECT_EQ(csvField("plain"), "plain");
    EXPECT_EQ(csvField("a,b"), "\"a,b\"");
    EXPECT_EQ(csvField("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvField("line\nbreak"), "\"line\nbreak\"");

    Report r;
    r.system = "SLINFER";
    r.scenario = "flash,crowd"; // hostile scenario name
    std::string row = toCsvRow(r);
    EXPECT_NE(row.find("\"flash,crowd\""), std::string::npos);
}

TEST(SweepLog, ThreadTagsAreThreadLocalAndEmissionIsSerialized)
{
    setLogThreadTag("main-tag");
    EXPECT_EQ(logThreadTag(), "main-tag");

    std::thread other([] {
        EXPECT_EQ(logThreadTag(), ""); // fresh thread, fresh tag
        setLogThreadTag("worker");
        EXPECT_EQ(logThreadTag(), "worker");
    });
    other.join();
    EXPECT_EQ(logThreadTag(), "main-tag");
    setLogThreadTag("");

    // Concurrent emission must not crash or deadlock (torn lines are
    // not mechanically detectable here; the mutex is the guarantee).
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Error);
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([t] {
            setLogThreadTag("w" + std::to_string(t));
            for (int i = 0; i < 50; ++i)
                logf(LogLevel::Debug, "spam ", t, " ", i);
        });
    }
    for (std::thread &t : writers)
        t.join();
    setLogLevel(before);
}

} // namespace
} // namespace sweep
} // namespace slinfer
