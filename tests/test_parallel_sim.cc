/**
 * @file
 * Differential tests for the time-windowed lockstep engine
 * (sim/lockstep.hh). The contract under test is *thread-count
 * invariance*: a lockstep run is byte-identical at every worker
 * count, with `simThreads = 1` (no pool, inline node phase) as the
 * serial oracle. Coverage:
 *
 *   - a >= 20-seed fuzz comparing full serialized reports (with
 *     counters and attribution enabled) across thread counts
 *     {1, 2, 3, hardware_concurrency};
 *   - the intervention-heavy catalog scenarios (fleet-640,
 *     fleet-node-failure, fleet-surge-scale) at 1 vs N threads;
 *   - stepped advances and mid-run Session::inject, both of which
 *     force off-grid flushes of the staged queues;
 *   - lockstep self-consistency of stepped vs one-shot runs;
 *   - config validation of the new simThreads / simWindow knobs.
 *
 * The default engine's instantaneous control plane is intentionally
 * NOT byte-compared against lockstep (the semantics differ by design;
 * see docs/ARCHITECTURE.md "Lockstep parallel phase").
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "harness/session.hh"
#include "metrics/report.hh"
#include "scenario/scenario.hh"

namespace slinfer
{
namespace
{

/** A small, fast experiment (mirrors test_session.cc's smallConfig). */
ExperimentConfig
smallConfig(std::uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.system = SystemKind::Slinfer;
    cfg.cluster.cpuNodes = 2;
    cfg.cluster.gpuNodes = 2;
    cfg.models = replicateModel(llama2_7b(), 8);
    AzureTraceConfig tc;
    tc.numModels = 8;
    tc.duration = 120.0;
    tc.seed = seed;
    cfg.trace = generateAzureTrace(tc);
    cfg.duration = 120.0;
    cfg.seed = seed;
    return cfg;
}

/** Thread counts every differential test sweeps: the inline oracle,
 *  two small pools, and one per hardware thread. */
std::vector<int>
threadCounts()
{
    std::vector<int> counts = {1, 2, 3};
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw > 0 && std::find(counts.begin(), counts.end(), hw) ==
                      counts.end())
        counts.push_back(hw);
    return counts;
}

std::string
runLockstep(ExperimentConfig cfg, int threads)
{
    cfg.simThreads = threads;
    return toJson(runExperiment(cfg));
}

// The headline fuzz: 20 seeds, full reports (counters + attribution
// on, so the comparison covers the flight recorder and the anatomy
// ledger too), byte-identical at every thread count.
TEST(ParallelSim, FuzzTwentySeedsByteIdenticalAcrossThreadCounts)
{
    const std::vector<int> counts = threadCounts();
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        ExperimentConfig cfg = smallConfig(seed);
        cfg.obs.counters = true;
        cfg.obs.anatomy = true;
        const std::string oracle = runLockstep(cfg, 1);
        for (int n : counts) {
            if (n == 1)
                continue;
            EXPECT_EQ(oracle, runLockstep(cfg, n))
                << "seed " << seed << ", threads " << n;
        }
    }
}

// Mid-run interventions force Session::inject's off-grid staged
// flush; the stepped advance exercises the partial-tail node phase.
// Both must preserve thread-count invariance.
TEST(ParallelSim, InjectAndSteppedAdvanceStayByteIdentical)
{
    for (std::uint64_t seed : {7u, 21u, 99u}) {
        std::vector<std::string> reports;
        for (int n : threadCounts()) {
            ExperimentConfig cfg = smallConfig(seed);
            cfg.obs.counters = true;
            cfg.obs.anatomy = true;
            cfg.simThreads = n;
            Session s(cfg);
            s.advanceTo(17.3); // off the 0.05s grid on purpose
            Intervention fail;
            fail.kind = Intervention::Kind::NodeFail;
            fail.node = 1;
            s.inject(fail);
            s.advanceTo(60.0);
            Intervention restore;
            restore.kind = Intervention::Kind::NodeRestore;
            restore.node = 1;
            s.inject(restore);
            Intervention burst;
            burst.kind = Intervention::Kind::ArrivalBurst;
            burst.model = 2;
            burst.rpm = 240.0;
            burst.duration = 20.0;
            s.inject(burst);
            for (int i = 0; i < 5; ++i)
                s.advanceBy(12.0);
            s.advanceTo(cfg.duration);
            reports.push_back(toJson(s.finish()));
        }
        for (std::size_t i = 1; i < reports.size(); ++i)
            EXPECT_EQ(reports[0], reports[i]) << "seed " << seed;
    }
}

// Lockstep must obey the PR 5 stepped-advance contract against
// itself: slicing the clock differently never changes the run.
TEST(ParallelSim, SteppedEqualsOneShotAtEveryThreadCount)
{
    for (int n : threadCounts()) {
        ExperimentConfig cfg = smallConfig(5);
        cfg.simThreads = n;
        const std::string oneShot = toJson(runExperiment(cfg));

        Session s(cfg);
        s.advanceTo(0.013); // sub-window slice
        s.advanceTo(33.27);
        s.advanceTo(33.28); // a second slice inside the same cell
        s.advanceTo(cfg.duration);
        EXPECT_EQ(oneShot, toJson(s.finish())) << "threads " << n;
    }
}

// The intervention-heavy catalog scenarios at fleet scale: node
// failure/restore and surge autoscaling timelines, plus the plain
// fleet-640, each compared 1 vs N.
TEST(ParallelSim, FleetCatalogScenariosByteIdentical)
{
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    const int n = std::max(3, hw);
    for (const char *name :
         {"fleet-640", "fleet-node-failure", "fleet-surge-scale"}) {
        const scenario::Scenario *sc = scenario::byName(name);
        ASSERT_NE(sc, nullptr) << name;
        ExperimentConfig cfg =
            sc->toExperiment(SystemKind::Slinfer, sc->seed);
        cfg.obs.counters = true;
        cfg.obs.anatomy = true;
        EXPECT_EQ(runLockstep(cfg, 1), runLockstep(cfg, n)) << name;
    }
}

// A coarser control period must also be thread-count invariant (the
// grid spacing changes the semantics, not the determinism).
TEST(ParallelSim, WideWindowStaysByteIdentical)
{
    ExperimentConfig cfg = smallConfig(13);
    cfg.simWindow = 0.5;
    EXPECT_EQ(runLockstep(cfg, 1), runLockstep(cfg, 3));
}

TEST(ParallelSim, ConfigValidation)
{
    ExperimentConfig bad = smallConfig(1);
    bad.simThreads = -1;
    EXPECT_DEATH(bad.validate(), "simThreads");

    ExperimentConfig noWindow = smallConfig(1);
    noWindow.simThreads = 2;
    noWindow.simWindow = 0.0;
    EXPECT_DEATH(noWindow.validate(), "simWindow");
}

// simThreads = 0 keeps the serial engine: runs with the flag absent
// and explicitly zeroed are the same object code path, and a session
// built that way reports no lockstep attachment.
TEST(ParallelSim, DefaultConfigKeepsSerialEngine)
{
    ExperimentConfig cfg = smallConfig(2);
    const std::string a = toJson(runExperiment(cfg));
    cfg.simThreads = 0;
    EXPECT_EQ(a, toJson(runExperiment(cfg)));
}

} // namespace
} // namespace slinfer
