/**
 * @file
 * Scenario-subsystem tests: every arrival process is deterministic in
 * its seed, calibrated to its configured rate, and emits sorted
 * in-window arrivals; the catalog registry round-trips by name and
 * every entry is internally consistent.
 */

#include <gtest/gtest.h>

#include <set>

#include "scenario/scenario.hh"

namespace slinfer
{
namespace scenario
{
namespace
{

/** Every arrival-process kind, with catalog-like parameters. */
std::vector<ArrivalProcessPtr>
allProcesses()
{
    PoissonConfig po;
    po.numModels = 16;
    po.duration = 1800.0;
    po.aggregateRpm = 90.0;
    po.split.zipfS = 1.1;

    DiurnalConfig di;
    di.numModels = 16;
    di.duration = 3600.0;
    di.period = 1800.0; // two full cycles -> mean rate holds exactly
    di.aggregateRpm = 120.0;
    di.amplitude = 0.6;

    FlashCrowdConfig fl;
    fl.numModels = 16;
    fl.duration = 1800.0;
    fl.baselineRpm = 60.0;
    fl.flashFactor = 8.0;

    RampConfig ra;
    ra.numModels = 16;
    ra.duration = 1800.0;
    ra.startRpm = 30.0;
    ra.endRpm = 150.0;

    RampConfig st = ra;
    st.shape = RampConfig::Shape::Step;

    AzureTraceConfig az;
    az.numModels = 32;
    az.duration = 1800.0;

    BurstGptConfig bg;
    bg.numModels = 32;
    bg.duration = 1800.0;
    bg.aggregateRps = 1.5;

    std::vector<Arrival> replayed;
    for (int i = 0; i < 600; ++i)
        replayed.push_back(
            {static_cast<Seconds>(600 - i), static_cast<ModelId>(i % 4)});

    // A layered composite (the fleet-diurnal-surge shape): diurnal
    // baseline plus MMPP flash crowd over the same model space.
    DiurnalConfig cdi;
    cdi.numModels = 16;
    cdi.duration = 3600.0;
    cdi.period = 1800.0;
    cdi.aggregateRpm = 90.0;
    cdi.amplitude = 0.6;
    FlashCrowdConfig cfl;
    cfl.numModels = 16;
    cfl.duration = 3600.0;
    cfl.baselineRpm = 45.0;
    cfl.flashFactor = 8.0;

    return {makePoisson(po),    makeDiurnal(di), makeFlashCrowd(fl),
            makeRamp(ra),       makeRamp(st),    makeAzure(az),
            makeBurstGpt(bg),   makeReplay(replayed, 4, 601.0),
            makeComposite({makeDiurnal(cdi), makeFlashCrowd(cfl)})};
}

class EveryProcess
    : public ::testing::TestWithParam<ArrivalProcessPtr>
{
};

TEST_P(EveryProcess, DeterministicUnderFixedSeed)
{
    const ArrivalProcess &p = *GetParam();
    AzureTrace a = p.generate(17);
    AzureTrace b = p.generate(17);
    ASSERT_EQ(a.arrivals.size(), b.arrivals.size()) << p.kind();
    for (std::size_t i = 0; i < a.arrivals.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.arrivals[i].time, b.arrivals[i].time);
        EXPECT_EQ(a.arrivals[i].model, b.arrivals[i].model);
    }
    EXPECT_EQ(a.duration, b.duration);
}

TEST_P(EveryProcess, SortedInWindowAndStamped)
{
    const ArrivalProcess &p = *GetParam();
    for (std::uint64_t seed : {1, 2, 3}) {
        AzureTrace t = p.generate(seed);
        EXPECT_DOUBLE_EQ(t.duration, p.duration()) << p.kind();
        EXPECT_EQ(static_cast<int>(t.perModelRpm.size()), p.numModels());
        Seconds prev = 0.0;
        for (const Arrival &a : t.arrivals) {
            EXPECT_GE(a.time, prev) << p.kind();
            EXPECT_LT(a.time, p.duration()) << p.kind();
            EXPECT_LT(a.model, static_cast<ModelId>(p.numModels()))
                << p.kind();
            prev = a.time;
        }
    }
}

TEST_P(EveryProcess, RateCalibratedToTarget)
{
    // Empirical aggregate RPM, averaged over seeds, must track the
    // configured target. The azure generator's episodic bursts make it
    // the noisiest of the family; 20% covers all of them.
    const ArrivalProcess &p = *GetParam();
    double sum = 0.0;
    const int kSeeds = 5;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed)
        sum += p.generate(seed).aggregateRpm(p.duration());
    double rpm = sum / kSeeds;
    EXPECT_NEAR(rpm, p.targetAggregateRpm(),
                p.targetAggregateRpm() * 0.20)
        << p.kind();
}

TEST_P(EveryProcess, SeedChangesTrace)
{
    const ArrivalProcess &p = *GetParam();
    if (std::string(p.kind()) == "replay")
        return; // replay is seed-independent by design
    AzureTrace a = p.generate(1);
    AzureTrace b = p.generate(2);
    bool differs = a.arrivals.size() != b.arrivals.size();
    for (std::size_t i = 0; !differs && i < a.arrivals.size(); ++i)
        differs = a.arrivals[i].time != b.arrivals[i].time ||
                  a.arrivals[i].model != b.arrivals[i].model;
    EXPECT_TRUE(differs) << p.kind();
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EveryProcess,
                         ::testing::ValuesIn(allProcesses()),
                         [](const auto &info) {
                             std::string name = info.param->kind();
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

// ------------------------------------------------------------------
// Process-specific shape checks.
// ------------------------------------------------------------------

TEST(Diurnal, PeakToTroughFollowsEnvelope)
{
    DiurnalConfig dc;
    dc.numModels = 8;
    dc.duration = 3600.0;
    dc.period = 3600.0;
    dc.aggregateRpm = 240.0;
    dc.amplitude = 0.8;
    AzureTrace t = makeDiurnal(dc)->generate(3);
    // sin peaks in the first half-period and troughs in the second.
    std::size_t first = 0, second = 0;
    for (const Arrival &a : t.arrivals)
        (a.time < dc.duration / 2 ? first : second)++;
    ASSERT_GT(second, 0u);
    EXPECT_GT(static_cast<double>(first) / second, 2.0);
}

TEST(FlashCrowd, EpisodesSpikeOneModel)
{
    FlashCrowdConfig fc;
    fc.numModels = 16;
    fc.duration = 1800.0;
    fc.baselineRpm = 30.0;
    fc.flashFactor = 20.0;
    AzureTrace t = makeFlashCrowd(fc)->generate(11);
    // The hottest model's realized rate dwarfs the uniform share.
    double hottest = *std::max_element(t.perModelRpm.begin(),
                                       t.perModelRpm.end());
    double uniform = fc.baselineRpm / fc.numModels;
    EXPECT_GT(hottest, 4.0 * uniform);
}

TEST(Ramp, SecondHalfCarriesMoreLoad)
{
    RampConfig rc;
    rc.numModels = 8;
    rc.duration = 1800.0;
    rc.startRpm = 20.0;
    rc.endRpm = 200.0;
    for (auto shape : {RampConfig::Shape::Linear, RampConfig::Shape::Step}) {
        rc.shape = shape;
        AzureTrace t = makeRamp(rc)->generate(5);
        std::size_t first = 0, second = 0;
        for (const Arrival &a : t.arrivals)
            (a.time < rc.duration / 2 ? first : second)++;
        EXPECT_GT(second, 2 * first);
    }
}

TEST(Azure, MatchesDirectGeneratorBitExactly)
{
    // The bench compatibility contract: the process wrapper reproduces
    // generateAzureTrace for the same seed.
    AzureTraceConfig cfg;
    cfg.numModels = 32;
    cfg.duration = 900.0;
    cfg.seed = 77;
    AzureTrace direct = generateAzureTrace(cfg);
    AzureTrace wrapped = makeAzure(cfg)->generate(77);
    ASSERT_EQ(direct.arrivals.size(), wrapped.arrivals.size());
    for (std::size_t i = 0; i < direct.arrivals.size(); ++i) {
        EXPECT_DOUBLE_EQ(direct.arrivals[i].time,
                         wrapped.arrivals[i].time);
        EXPECT_EQ(direct.arrivals[i].model, wrapped.arrivals[i].model);
    }
}

TEST(PopularitySplitShape, ZipfConcentratesUniformFlat)
{
    PopularitySplit uniform;
    auto wu = uniform.weights(8);
    for (double w : wu)
        EXPECT_DOUBLE_EQ(w, 1.0 / 8);

    PopularitySplit zipf;
    zipf.zipfS = 1.2;
    auto wz = zipf.weights(8);
    double sum = 0.0;
    for (std::size_t i = 1; i < wz.size(); ++i)
        EXPECT_LT(wz[i], wz[i - 1]);
    for (double w : wz)
        sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Replay, ParsesSortsAndClips)
{
    std::vector<Arrival> parsed = parseArrivalsCsv(
        "# time,model\n"
        "12.5, 1\n"
        "3.25, 0\n"
        "\n"
        "99.0, 2\n");
    ASSERT_EQ(parsed.size(), 3u);
    auto p = makeReplay(parsed, 3, 50.0);
    AzureTrace t = p->generate(0);
    ASSERT_EQ(t.arrivals.size(), 2u); // 99.0 clipped
    EXPECT_DOUBLE_EQ(t.arrivals[0].time, 3.25);
    EXPECT_EQ(t.arrivals[0].model, 0u);
    EXPECT_DOUBLE_EQ(t.arrivals[1].time, 12.5);
    EXPECT_EQ(t.arrivals[1].model, 1u);
}

// ------------------------------------------------------------------
// Registry.
// ------------------------------------------------------------------

TEST(Registry, RoundTripAndUniqueNames)
{
    ASSERT_GE(all().size(), 8u);
    std::set<std::string> seen;
    for (const Scenario &sc : all()) {
        EXPECT_TRUE(seen.insert(sc.name).second)
            << "duplicate name " << sc.name;
        const Scenario *found = byName(sc.name);
        ASSERT_NE(found, nullptr) << sc.name;
        EXPECT_EQ(found, &sc);
    }
    EXPECT_EQ(byName("no-such-scenario"), nullptr);
    EXPECT_EQ(names().size(), all().size());
}

TEST(Registry, RequiredCatalogEntriesExist)
{
    for (const char *name :
         {"diurnal-cycle", "flash-crowd", "ramp-up", "zipf-multitenant"})
        EXPECT_NE(byName(name), nullptr) << name;
}

TEST(Registry, EveryEntryIsConsistent)
{
    for (const Scenario &sc : all()) {
        SCOPED_TRACE(sc.name);
        ASSERT_TRUE(sc.arrivals);
        EXPECT_GT(sc.duration(), 0.0);
        EXPECT_FALSE(sc.summary.empty());
        EXPECT_EQ(sc.arrivals->numModels(),
                  static_cast<int>(sc.models.size()));
        if (!sc.datasetPerModel.empty()) {
            EXPECT_EQ(sc.datasetPerModel.size(), sc.models.size());
        }
        EXPECT_GT(sc.cluster.cpuNodes + sc.cluster.gpuNodes, 0);
        // The lowering used by slinfer_run must validate cleanly.
        ExperimentConfig cfg =
            sc.toExperiment(SystemKind::Slinfer, sc.seed);
        EXPECT_EQ(cfg.models.size(), sc.models.size());
        EXPECT_DOUBLE_EQ(cfg.duration, 0.0); // inherited from arrivals
    }
}

// ------------------------------------------------------------------
// Duration single-source-of-truth (the ExperimentConfig dedup).
// ------------------------------------------------------------------

TEST(DurationConsistency, InheritedFromTraceWhenUnset)
{
    PoissonConfig pc;
    pc.numModels = 2;
    pc.duration = 60.0;
    pc.aggregateRpm = 30.0;
    ExperimentConfig cfg;
    cfg.models = replicateModel(llama2_7b(), 2);
    cfg.arrivals = makePoisson(pc);
    cfg.cluster.cpuNodes = 1;
    cfg.cluster.gpuNodes = 1;
    Report r = runExperiment(cfg); // cfg.duration == 0 -> inherit
    EXPECT_GT(r.totalRequests, 0u);
}

TEST(DurationConsistency, MismatchIsFatal)
{
    AzureTraceConfig tc;
    tc.numModels = 2;
    tc.duration = 120.0;
    ExperimentConfig cfg;
    cfg.models = replicateModel(llama2_7b(), 2);
    cfg.trace = generateAzureTrace(tc);
    cfg.duration = 300.0; // silently disagreeing before; now fatal
    EXPECT_DEATH(runExperiment(cfg), "source of truth");
}

TEST(DurationConsistency, BothSourcesSetIsFatal)
{
    AzureTraceConfig tc;
    tc.numModels = 2;
    tc.duration = 60.0;
    ExperimentConfig cfg;
    cfg.models = replicateModel(llama2_7b(), 2);
    cfg.trace = generateAzureTrace(tc);
    cfg.arrivals = makeAzure(tc);
    EXPECT_DEATH(runExperiment(cfg), "both");
}

} // namespace
} // namespace scenario
} // namespace slinfer
