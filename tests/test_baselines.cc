/**
 * @file
 * Baseline tests (§IX-A): the sllm family's exclusive allocation,
 * concurrency caps, CPU preference under +c, static partitioning under
 * +s (including the 13B-on-CPU full-node exception), and the NEO
 * CPU-assistance spec.
 */

#include <gtest/gtest.h>

#include "baselines/neo.hh"
#include "baselines/sllm.hh"
#include "harness/experiment.hh"
#include "metrics/recorder.hh"

namespace slinfer
{
namespace
{

TEST(SllmCaps, MatchPaperTables)
{
    // §IX-A: (59, 15, 6) CPU / (160, 32, 16) GPU unshared;
    // (23, 4, 6) / (71, 12, 4) shared.
    EXPECT_EQ(SllmController::concurrencyCap(ModelClass::Small3B,
                                             HwKind::Cpu, false), 59);
    EXPECT_EQ(SllmController::concurrencyCap(ModelClass::Mid7B,
                                             HwKind::Cpu, false), 15);
    EXPECT_EQ(SllmController::concurrencyCap(ModelClass::Large13B,
                                             HwKind::Cpu, false), 6);
    EXPECT_EQ(SllmController::concurrencyCap(ModelClass::Small3B,
                                             HwKind::Gpu, false), 160);
    EXPECT_EQ(SllmController::concurrencyCap(ModelClass::Mid7B,
                                             HwKind::Gpu, false), 32);
    EXPECT_EQ(SllmController::concurrencyCap(ModelClass::Large13B,
                                             HwKind::Gpu, false), 16);
    EXPECT_EQ(SllmController::concurrencyCap(ModelClass::Small3B,
                                             HwKind::Cpu, true), 23);
    EXPECT_EQ(SllmController::concurrencyCap(ModelClass::Mid7B,
                                             HwKind::Cpu, true), 4);
    EXPECT_EQ(SllmController::concurrencyCap(ModelClass::Large13B,
                                             HwKind::Cpu, true), 6);
    EXPECT_EQ(SllmController::concurrencyCap(ModelClass::Mid7B,
                                             HwKind::Gpu, true), 12);
    EXPECT_EQ(SllmController::concurrencyCap(ModelClass::Large13B,
                                             HwKind::Gpu, true), 4);
}

struct SllmHarness
{
    void
    build(int cpus, int gpus, std::vector<ModelSpec> model_specs,
          SllmOptions opts, int partitions = 1)
    {
        cluster.cpuNodes = cpus;
        cluster.gpuNodes = gpus;
        nodes = buildCluster(cluster, partitions);
        models = std::move(model_specs);
        std::vector<double> avg(models.size(), 250.0);
        ControllerConfig cfg;
        ctl = std::make_unique<SllmController>(sim, nodes, models, avg,
                                               cfg, recorder, nullptr,
                                               opts);
    }

    Request &
    submitAt(ModelId model, Seconds arrival, Tokens in, Tokens out)
    {
        auto r = std::make_unique<Request>();
        r->id = nextReq++;
        r->model = model;
        r->arrival = arrival;
        r->inputLen = in;
        r->targetOutput = out;
        r->ttftSlo = std::min(std::max(0.5, in / 512.0), 8.0);
        r->tpotSlo = 0.25;
        Request *p = r.get();
        reqs.push_back(std::move(r));
        sim.scheduleAt(arrival, [this, p] { ctl->submit(p); });
        return *p;
    }

    ClusterSpec cluster;
    Simulator sim;
    std::vector<std::unique_ptr<Node>> nodes;
    std::vector<ModelSpec> models;
    Recorder recorder;
    std::unique_ptr<SllmController> ctl;
    std::vector<std::unique_ptr<Request>> reqs;
    RequestId nextReq = 1;
};

struct SllmFixture : public ::testing::Test, public SllmHarness
{
};

TEST_F(SllmFixture, SllmNeverUsesCpu)
{
    build(2, 1, {llama2_7b()}, SllmOptions{});
    submitAt(0, 0.0, 1024, 50);
    sim.run();
    EXPECT_EQ(recorder.completed(), 1u);
    EXPECT_EQ(ctl->totalBusySeconds(HwKind::Cpu), 0.0);
    EXPECT_GT(ctl->totalBusySeconds(HwKind::Gpu), 0.0);
}

TEST_F(SllmFixture, ExclusiveAllocationOnePerNode)
{
    build(0, 2, {llama2_7b(), llama2_7b(), llama2_7b()}, SllmOptions{});
    submitAt(0, 0.0, 1024, 300);
    submitAt(1, 0.1, 1024, 300);
    Request &r3 = submitAt(2, 0.2, 256, 10);
    sim.run();
    // Only two GPUs: the third model's request queues and drops.
    EXPECT_EQ(r3.state, RequestState::Dropped);
}

TEST_F(SllmFixture, ConcurrencyCapTriggersScaleOut)
{
    SllmOptions opts;
    build(0, 2, {llama2_7b()}, opts);
    // 33 concurrent requests exceed the GPU cap of 32; a second
    // (fragmented) instance appears on the second GPU.
    for (int i = 0; i < 33; ++i)
        submitAt(0, 0.0 + i * 0.01, 512, 200);
    sim.run();
    EXPECT_EQ(ctl->instancesCreated(), 2u);
    EXPECT_EQ(recorder.completed(), 33u);
}

TEST_F(SllmFixture, SllmCPrefersCpu)
{
    SllmOptions opts;
    opts.useCpu = true;
    build(1, 1, {llama2_7b()}, opts);
    submitAt(0, 0.0, 1024, 30);
    sim.runUntil(2.0);
    ASSERT_EQ(ctl->models()[0].instances.size(), 1u);
    EXPECT_EQ(ctl->models()[0].instances[0]->execSpec.kind, HwKind::Cpu);
    sim.run();
}

TEST_F(SllmFixture, CpuBlindnessServes34BOnGpuOnly)
{
    SllmOptions opts;
    opts.useCpu = true;
    build(1, 2, {codellama_34b()}, opts);
    Request &r = submitAt(0, 0.0, 2048, 30);
    sim.run();
    EXPECT_EQ(r.state, RequestState::Completed);
    EXPECT_EQ(ctl->totalBusySeconds(HwKind::Cpu), 0.0);
}

TEST_F(SllmFixture, StaticShareHostsTwoPerNode)
{
    SllmOptions opts;
    opts.useCpu = true;
    opts.staticShare = true;
    build(0, 1, {llama2_7b(), llama2_7b()}, opts, /*partitions=*/2);
    submitAt(0, 0.0, 1024, 200);
    submitAt(1, 0.1, 1024, 200);
    sim.runUntil(5.0);
    // Both models run on the single node, one per half-partition.
    EXPECT_EQ(ctl->models()[0].instances.size(), 1u);
    EXPECT_EQ(ctl->models()[1].instances.size(), 1u);
    EXPECT_NE(ctl->models()[0].instances[0]->primary,
              ctl->models()[1].instances[0]->primary);
    // Each got half the node's memory.
    EXPECT_EQ(ctl->models()[0].instances[0]->primary->mem.capacity(),
              a100_80g().memCapacity / 2);
    sim.run();
    EXPECT_EQ(recorder.completed(), 2u);
}

TEST_F(SllmFixture, ThirteenBOnSharedCpuTakesWholeNode)
{
    SllmOptions opts;
    opts.useCpu = true;
    opts.staticShare = true;
    build(1, 1, {llama2_13b(), llama2_13b()}, opts, 2);
    submitAt(0, 0.0, 1024, 200);
    submitAt(1, 0.1, 1024, 200);
    sim.runUntil(5.0);
    // The first 13B claimed both CPU half-partitions (the paper's
    // exception); the second went elsewhere (GPU halves).
    ASSERT_EQ(ctl->models()[0].instances.size(), 1u);
    const Instance *first = ctl->models()[0].instances[0];
    EXPECT_EQ(first->execSpec.kind, HwKind::Cpu);
    EXPECT_EQ(first->extraHolds.size(), 1u);
    // Its exec spec is the full node, not the half partition.
    EXPECT_DOUBLE_EQ(first->execSpec.peakFlops, xeon6462c().peakFlops);
    sim.run();
}

TEST_F(SllmFixture, HalfPartitionIsSlower)
{
    // The same request takes about twice as long to prefill on a half
    // partition (the +s inefficiency for big prefills).
    SllmOptions full_opts;
    build(0, 1, {llama2_7b()}, full_opts, 1);
    Request &r = submitAt(0, 0.0, 2048, 1);
    sim.run();
    Seconds full_ttft = r.firstTokenTime - r.arrival - r.grace;

    SllmHarness half;
    SllmOptions half_opts;
    half_opts.staticShare = true;
    half.build(0, 1, {llama2_7b()}, half_opts, 2);
    Request &r2 = half.submitAt(0, 0.0, 2048, 1);
    half.sim.run();
    Seconds half_ttft = r2.firstTokenTime - r2.arrival - r2.grace;
    EXPECT_GT(half_ttft, 1.6 * full_ttft);
}

TEST_F(SllmFixture, PdDisaggregationRuns)
{
    SllmOptions opts;
    opts.useCpu = true;
    opts.staticShare = true;
    // PD flag arrives via the controller config in the harness; here we
    // drive the flag directly.
    cluster.cpuNodes = 1;
    cluster.gpuNodes = 2;
    nodes = buildCluster(cluster, 2);
    models = {llama2_7b()};
    std::vector<double> avg(1, 250.0);
    ControllerConfig cfg;
    cfg.pdDisaggregation = true;
    ctl = std::make_unique<SllmController>(sim, nodes, models, avg, cfg,
                                           recorder, nullptr, opts);
    Request &r = submitAt(0, 0.0, 1024, 40);
    sim.run();
    EXPECT_EQ(r.state, RequestState::Completed);
    EXPECT_GE(ctl->instancesCreated(), 2u);
}

TEST(NeoSpec, AssistanceScalesWithCores)
{
    HardwareSpec gpu = a100_80g();
    HardwareSpec cpu = xeon6462c();
    HardwareSpec n0 = neoGpuSpec(gpu, cpu, 0);
    HardwareSpec n16 = neoGpuSpec(gpu, cpu, 16);
    HardwareSpec n32 = neoGpuSpec(gpu, cpu, 32);
    EXPECT_DOUBLE_EQ(n0.auxKvBandwidth, 0.0);
    EXPECT_GT(n32.auxKvBandwidth, n16.auxKvBandwidth);
    EXPECT_EQ(n32.auxKvCapacity, 2u * n16.auxKvCapacity);
    // Half the cores give half the CPU's effective bandwidth.
    EXPECT_NEAR(n16.auxKvBandwidth, cpu.effectiveBw() / 2, 1e6);
}

} // namespace
} // namespace slinfer
