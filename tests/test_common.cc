/**
 * @file
 * Unit tests for the common utilities: RNG, statistics, tables, units.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace slinfer
{
namespace
{

TEST(Units, GiBRoundTrip)
{
    EXPECT_EQ(fromGiB(1.0), kGiB);
    EXPECT_DOUBLE_EQ(toGiB(2 * kGiB), 2.0);
    EXPECT_DOUBLE_EQ(ms(250.0), 0.25);
    EXPECT_DOUBLE_EQ(toMs(0.25), 250.0);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniform() == b.uniform())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsIndependentOfParentConsumption)
{
    Rng a(7);
    Rng child1 = a.fork(3);
    a.uniform();
    a.uniform();
    Rng b(7);
    Rng child2 = b.fork(3);
    for (int i = 0; i < 20; ++i)
        EXPECT_DOUBLE_EQ(child1.uniform(), child2.uniform());
}

TEST(Rng, ForkTagsProduceDistinctStreams)
{
    Rng a(7);
    Rng c1 = a.fork(1);
    Rng c2 = a.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (c1.uniform() == c2.uniform())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange)
{
    Rng r(1);
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniform(3.0, 5.0);
        EXPECT_GE(v, 3.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, UniformIntInclusive)
{
    Rng r(1);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean)
{
    Rng r(3);
    Summary s;
    for (int i = 0; i < 20000; ++i)
        s.add(r.exponential(2.0));
    EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, LogNormalMedian)
{
    Rng r(4);
    CdfBuilder c;
    for (int i = 0; i < 20000; ++i)
        c.add(r.logNormalMedian(100.0, 0.8));
    EXPECT_NEAR(c.percentile(50.0), 100.0, 5.0);
}

TEST(Rng, GammaMean)
{
    Rng r(5);
    Summary s;
    for (int i = 0; i < 20000; ++i)
        s.add(r.gamma(0.5, 2.0));
    EXPECT_NEAR(s.mean(), 1.0, 0.05);
}

TEST(Rng, BoundedParetoStaysInBounds)
{
    Rng r(6);
    for (int i = 0; i < 5000; ++i) {
        double v = r.boundedPareto(1.0, 100.0, 1.1);
        EXPECT_GE(v, 1.0);
        EXPECT_LE(v, 100.0);
    }
}

TEST(Rng, BoundedParetoIsHeavyTailed)
{
    Rng r(7);
    CdfBuilder c;
    for (int i = 0; i < 20000; ++i)
        c.add(r.boundedPareto(1.0, 400.0, 1.0));
    // Median far below mean for a heavy tail.
    EXPECT_LT(c.percentile(50.0), c.mean());
    EXPECT_LT(c.percentile(50.0), 3.0);
}

TEST(Rng, ChanceProbability)
{
    Rng r(8);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(CdfBuilder, Percentiles)
{
    CdfBuilder c;
    for (int i = 1; i <= 100; ++i)
        c.add(i);
    EXPECT_DOUBLE_EQ(c.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(c.percentile(100.0), 100.0);
    EXPECT_NEAR(c.percentile(50.0), 50.5, 0.01);
    EXPECT_NEAR(c.percentile(95.0), 95.05, 0.01);
}

TEST(CdfBuilder, FractionBelow)
{
    CdfBuilder c;
    for (int i = 1; i <= 10; ++i)
        c.add(i);
    EXPECT_DOUBLE_EQ(c.fractionBelow(0.5), 0.0);
    EXPECT_DOUBLE_EQ(c.fractionBelow(5.0), 0.5);
    EXPECT_DOUBLE_EQ(c.fractionBelow(10.0), 1.0);
}

TEST(CdfBuilder, CdfAtPoints)
{
    CdfBuilder c;
    c.add(1.0);
    c.add(2.0);
    auto pts = c.cdfAt({0.0, 1.5, 3.0});
    ASSERT_EQ(pts.size(), 3u);
    EXPECT_DOUBLE_EQ(pts[0].second, 0.0);
    EXPECT_DOUBLE_EQ(pts[1].second, 0.5);
    EXPECT_DOUBLE_EQ(pts[2].second, 1.0);
}

TEST(CdfBuilder, QueriesInterleaveWithAdds)
{
    CdfBuilder c;
    c.add(5.0);
    EXPECT_DOUBLE_EQ(c.percentile(50.0), 5.0);
    c.add(1.0);
    EXPECT_DOUBLE_EQ(c.percentile(0.0), 1.0);
}

TEST(TimeWeightedValue, PiecewiseAverage)
{
    TimeWeightedValue v;
    v.set(0.0, 2.0);
    v.set(10.0, 4.0); // 2.0 held for 10 s
    EXPECT_DOUBLE_EQ(v.integral(10.0), 20.0);
    EXPECT_DOUBLE_EQ(v.average(20.0), (20.0 + 40.0) / 20.0);
}

TEST(TimeWeightedValue, EmptyIsZero)
{
    TimeWeightedValue v;
    EXPECT_DOUBLE_EQ(v.average(100.0), 0.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-5.0); // clamps into bin 0
    h.add(50.0); // clamps into bin 9
    EXPECT_EQ(h.totalCount(), 4u);
    EXPECT_EQ(h.bins()[0], 2u);
    EXPECT_EQ(h.bins()[9], 2u);
    EXPECT_DOUBLE_EQ(h.binLow(1), 1.0);
    EXPECT_DOUBLE_EQ(h.binHigh(1), 2.0);
}

TEST(Table, FormatsAlignedRows)
{
    Table t({"a", "long-header"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("| 1"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
    EXPECT_EQ(Table::pct(0.5), "50.0%");
}

} // namespace
} // namespace slinfer
