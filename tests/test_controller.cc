/**
 * @file
 * SLINFER controller integration tests: the request lifecycle end to
 * end, CPU-first placement with profile-based GPU fallback, keep-alive
 * reclamation, exclusive fallback for large models, proactive drops,
 * eviction on underestimation, and cluster-wide safety invariants.
 */

#include <gtest/gtest.h>

#include "core/controller.hh"
#include "harness/experiment.hh"
#include "metrics/recorder.hh"

namespace slinfer
{
namespace
{

struct CtlHarness
{
    void
    build(int cpus, int gpus, std::vector<ModelSpec> model_specs,
          ControllerConfig cfg = {})
    {
        cluster.cpuNodes = cpus;
        cluster.gpuNodes = gpus;
        nodes = buildCluster(cluster, 1);
        models = std::move(model_specs);
        std::vector<double> avg(models.size(), 250.0);
        ctl = std::make_unique<SlinferController>(sim, nodes, models, avg,
                                                  cfg, recorder, nullptr);
    }

    Request &
    submitAt(ModelId model, Seconds arrival, Tokens in, Tokens out)
    {
        auto r = std::make_unique<Request>();
        r->id = nextReq++;
        r->model = model;
        r->arrival = arrival;
        r->inputLen = in;
        r->targetOutput = out;
        r->ttftSlo = std::min(std::max(0.5, in / 512.0), 8.0);
        r->tpotSlo = 0.25;
        Request *p = r.get();
        reqs.push_back(std::move(r));
        sim.scheduleAt(arrival, [this, p] { ctl->submit(p); });
        return *p;
    }

    void
    expectNoOom()
    {
        for (const auto &node : nodes)
            for (const auto &part : node->partitions())
                EXPECT_EQ(part->mem.oomEvents(), 0u);
    }

    ClusterSpec cluster;
    Simulator sim;
    std::vector<std::unique_ptr<Node>> nodes;
    std::vector<ModelSpec> models;
    Recorder recorder;
    std::unique_ptr<SlinferController> ctl;
    std::vector<std::unique_ptr<Request>> reqs;
    RequestId nextReq = 1;
};

struct CtlFixture : public ::testing::Test, public CtlHarness
{
};

TEST_F(CtlFixture, SingleRequestLifecycle)
{
    build(1, 1, {llama2_7b()});
    Request &r = submitAt(0, 0.0, 1024, 100);
    sim.run();
    EXPECT_EQ(r.state, RequestState::Completed);
    EXPECT_EQ(r.generated, 100);
    EXPECT_EQ(recorder.completed(), 1u);
    EXPECT_EQ(recorder.sloMet(), 1u);
    // Cold-started: the grace window covered the load.
    EXPECT_GT(r.grace, 0.5);
    expectNoOom();
}

TEST_F(CtlFixture, CpuFirstPlacementForFeasibleRequests)
{
    build(1, 1, {llama2_7b()});
    submitAt(0, 0.0, 1024, 50);
    sim.runUntil(2.0);
    // The instance landed on the CPU node (node 0).
    ASSERT_EQ(ctl->models()[0].instances.size(), 1u);
    EXPECT_EQ(ctl->models()[0].instances[0]->execSpec.kind, HwKind::Cpu);
    sim.run();
}

TEST_F(CtlFixture, LongInputFallsBackToGpu)
{
    // An 8B request with a 20K-token input cannot meet TTFT on the
    // CPU (§IX-I1: CPUs handle up to ~8.4K within the 8 s ceiling).
    build(1, 1, {llama31_8b()});
    submitAt(0, 0.0, 20000, 50);
    sim.runUntil(3.0);
    ASSERT_EQ(ctl->models()[0].instances.size(), 1u);
    EXPECT_EQ(ctl->models()[0].instances[0]->execSpec.kind, HwKind::Gpu);
    sim.run();
}

TEST_F(CtlFixture, NoCpuAblationUsesGpuOnly)
{
    ControllerConfig cfg;
    cfg.useCpu = false;
    build(1, 1, {llama2_7b()}, cfg);
    submitAt(0, 0.0, 1024, 50);
    sim.run();
    for (const auto &me : ctl->models())
        EXPECT_TRUE(me.instances.empty()); // reclaimed by now
    EXPECT_EQ(recorder.completed(), 1u);
    // The CPU node was never used.
    EXPECT_EQ(ctl->totalBusySeconds(HwKind::Cpu), 0.0);
}

TEST_F(CtlFixture, KeepAliveReclaimsIdleInstances)
{
    build(1, 1, {llama2_7b()});
    submitAt(0, 0.0, 512, 5);
    sim.run();
    // After completion + keep-alive (1 s) + unload, nothing remains.
    EXPECT_TRUE(ctl->models()[0].instances.empty());
    for (const auto &node : nodes)
        EXPECT_EQ(node->memUsed(), 0u);
}

TEST_F(CtlFixture, KeepAliveCancelledByNewRequest)
{
    build(1, 1, {llama2_7b()});
    submitAt(0, 0.0, 512, 5);
    // Arrives inside the keep-alive window of the first instance.
    Request &r2 = submitAt(0, 2.2, 512, 5);
    sim.run();
    EXPECT_EQ(r2.state, RequestState::Completed);
    // No second cold start: only one instance was ever created.
    EXPECT_EQ(ctl->instancesCreated(), 1u);
    EXPECT_DOUBLE_EQ(r2.grace, 0.0);
}

TEST_F(CtlFixture, BurstBatchesOnOneInstance)
{
    build(0, 1, {llama2_7b()});
    for (int i = 0; i < 8; ++i)
        submitAt(0, 0.0 + i * 0.01, 1024, 60);
    sim.run();
    EXPECT_EQ(recorder.completed(), 8u);
    // Continuous batching: the burst shares one instance.
    EXPECT_EQ(ctl->instancesCreated(), 1u);
    expectNoOom();
}

TEST_F(CtlFixture, ColocatesDifferentModelsOnOneNode)
{
    build(0, 1, {llama2_7b(), llama2_7b(), llama32_3b()});
    submitAt(0, 0.0, 1024, 400);
    submitAt(1, 0.1, 1024, 400);
    submitAt(2, 0.2, 1024, 400);
    sim.runUntil(5.0);
    std::size_t live = 0;
    for (const auto &me : ctl->models())
        live += me.instances.size();
    EXPECT_EQ(live, 3u); // all three share the single GPU
    sim.run();
    EXPECT_EQ(recorder.completed(), 3u);
    expectNoOom();
}

TEST_F(CtlFixture, SharingDisabledForcesExclusive)
{
    ControllerConfig cfg;
    cfg.enableSharing = false;
    build(0, 2, {llama2_7b(), llama2_7b(), llama2_7b()}, cfg);
    submitAt(0, 0.0, 1024, 300);
    submitAt(1, 0.1, 1024, 300);
    Request &r3 = submitAt(2, 0.2, 256, 10); // no node left; TTFT 0.5 s
    sim.run();
    EXPECT_EQ(r3.state, RequestState::Dropped);
    EXPECT_EQ(recorder.dropped(), 1u);
}

TEST_F(CtlFixture, ProactiveDropAtTtftDeadline)
{
    // One tiny cluster, overwhelming burst: the tail must be dropped at
    // the TTFT deadline, not left queued forever.
    build(0, 1, {llama2_13b(), llama2_13b(), llama2_13b(),
                 llama2_13b(), llama2_13b()});
    for (int m = 0; m < 5; ++m)
        for (int i = 0; i < 10; ++i)
            submitAt(m, 0.0 + i * 0.01, 3000, 200);
    sim.run();
    EXPECT_GT(recorder.dropped(), 0u);
    EXPECT_EQ(recorder.completed() + recorder.dropped(), 50u);
    expectNoOom();
}

TEST_F(CtlFixture, ExclusiveFallbackFor34B)
{
    build(1, 2, {codellama_34b()});
    Request &r = submitAt(0, 0.0, 2048, 50);
    sim.runUntil(8.0);
    ASSERT_EQ(ctl->models()[0].instances.size(), 1u);
    const Instance *inst = ctl->models()[0].instances[0];
    EXPECT_TRUE(inst->staticKv);
    EXPECT_EQ(inst->extraHolds.size(), 1u); // TP=2 holds a second GPU
    EXPECT_EQ(inst->execSpec.kind, HwKind::Gpu);
    sim.run();
    EXPECT_EQ(r.state, RequestState::Completed);
}

TEST_F(CtlFixture, ThirtyFourBRejectedWithOneGpu)
{
    build(1, 1, {codellama_34b()});
    Request &r = submitAt(0, 0.0, 2048, 50);
    sim.run();
    EXPECT_EQ(r.state, RequestState::Dropped);
}

TEST_F(CtlFixture, EvictionOnSevereUnderestimation)
{
    // Tiny GPU memory pressure scenario: many long-output requests on
    // one node force at least one eviction/migration, and everything
    // still completes or drops cleanly.
    build(0, 1, {llama2_7b(), llama2_7b(), llama2_7b(), llama2_7b()});
    for (int m = 0; m < 4; ++m)
        for (int i = 0; i < 6; ++i)
            submitAt(m, 0.05 * i, 3500, 500);
    sim.run();
    EXPECT_EQ(recorder.completed() + recorder.dropped(), 24u);
    expectNoOom();
}

TEST_F(CtlFixture, PdDisaggregationServesEndToEnd)
{
    ControllerConfig cfg;
    cfg.pdDisaggregation = true;
    build(1, 2, {llama2_7b()}, cfg);
    Request &r = submitAt(0, 0.0, 1024, 50);
    sim.run();
    EXPECT_EQ(r.state, RequestState::Completed);
    EXPECT_EQ(r.generated, 50);
    // Two instances existed: a prefill-only and a decode-only.
    EXPECT_GE(ctl->instancesCreated(), 2u);
    expectNoOom();
}

TEST_F(CtlFixture, SchedulingIsDeterministic)
{
    auto run_once = [](std::uint64_t seed) {
        CtlHarness f;
        ControllerConfig cfg;
        cfg.seed = seed;
        f.build(1, 1, {llama2_7b(), llama32_3b()}, cfg);
        for (int i = 0; i < 20; ++i)
            f.submitAt(i % 2, 0.1 * i, 700 + 37 * i, 40 + i);
        f.sim.run();
        return std::make_pair(f.sim.now(), f.recorder.sloMet());
    };
    auto a = run_once(7);
    auto b = run_once(7);
    EXPECT_DOUBLE_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
    auto c = run_once(8);
    EXPECT_NE(a.first, c.first); // noise differs by seed
}

TEST_F(CtlFixture, GraceWindowAppliedOnlyToColdStarts)
{
    build(1, 1, {llama2_7b()});
    Request &cold = submitAt(0, 0.0, 1024, 10);
    Request &warm = submitAt(0, 2.2, 1024, 10);
    sim.run();
    EXPECT_GT(cold.grace, 0.0);
    EXPECT_DOUBLE_EQ(warm.grace, 0.0);
}

TEST_F(CtlFixture, ScalingOverheadFractionIsSmallAtDefaults)
{
    build(1, 1, {llama2_7b(), llama2_7b()});
    for (int i = 0; i < 30; ++i)
        submitAt(i % 2, 0.3 * i, 1024, 80);
    sim.run();
    // §IX-I5: with the 25% watermark the scaling overhead is ~1.4%.
    EXPECT_LT(ctl->scalingOverheadFraction(), 0.08);
}

} // namespace
} // namespace slinfer
