/**
 * @file
 * Token-level scheduler tests (§VI-A): one iteration at a time per
 * partition, headroom-ordered instance selection, prefill/decode
 * mechanics, KV growth and shortage reporting, and the FIFO
 * prefill-first baseline policy.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/token_scheduler.hh"
#include "hw/perf_model.hh"

namespace slinfer
{
namespace
{

struct SchedHarness
{
    SchedHarness() : node(0, a100_80g(), 1)
    {
        part = node.partitions()[0].get();
    }

    TokenScheduler &
    makeScheduler(SchedPolicy policy = SchedPolicy::Headroom,
                  double noise = 0.0)
    {
        TokenScheduler::Callbacks cbs;
        cbs.onRequestDone = [this](Request *r, Instance *i) {
            done.emplace_back(r, i);
        };
        cbs.onKvShortage = [this](Instance *i) { shortages.push_back(i); };
        sched = std::make_unique<TokenScheduler>(sim, *part, policy, noise,
                                                 Rng(1), cbs, nullptr);
        return *sched;
    }

    Instance &
    addInstance(Bytes kvAlloc = 8ULL << 30)
    {
        auto inst = std::make_unique<Instance>(
            nextId++, 0, llama2_7b(), part, a100_80g(), kvAlloc);
        inst->state = InstanceState::Active;
        part->instances.push_back(inst.get());
        pool.push_back(std::move(inst));
        return *pool.back();
    }

    Request &
    addRequest(Instance &inst, Seconds arrival, Tokens in, Tokens out)
    {
        auto r = std::make_unique<Request>();
        r->id = nextReq++;
        r->arrival = arrival;
        r->inputLen = in;
        r->targetOutput = out;
        r->ttftSlo = 2.0;
        r->tpotSlo = 0.25;
        r->instance = inst.id;
        r->state = RequestState::Prefill;
        inst.prefillQueue.push_back(r.get());
        reqs.push_back(std::move(r));
        return *reqs.back();
    }

    Simulator sim;
    Node node;
    Partition *part;
    std::unique_ptr<TokenScheduler> sched;
    std::vector<std::unique_ptr<Instance>> pool;
    std::vector<std::unique_ptr<Request>> reqs;
    std::vector<std::pair<Request *, Instance *>> done;
    std::vector<Instance *> shortages;
    InstanceId nextId = 1;
    RequestId nextReq = 1;
};

struct SchedFixture : public ::testing::Test, public SchedHarness
{
};

TEST_F(SchedFixture, PrefillThenDecodeToCompletion)
{
    auto &s = makeScheduler();
    Instance &inst = addInstance();
    Request &r = addRequest(inst, 0.0, 1024, 5);
    s.kick();
    sim.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].first, &r);
    EXPECT_EQ(r.generated, 5);
    EXPECT_EQ(r.state, RequestState::Completed);
    EXPECT_GT(r.firstTokenTime, 0.0);
    // First token comes from the prefill; 4 decode iterations follow.
    Seconds pf = PerfModel::prefillTime(a100_80g(), llama2_7b(), 1024);
    EXPECT_NEAR(r.firstTokenTime, pf, 1e-9);
    EXPECT_EQ(inst.decodedTokens, 4);
    // KV fully released at completion.
    EXPECT_EQ(inst.kv.usedTokens(), 0);
    EXPECT_EQ(inst.batchSize(), 0);
}

TEST_F(SchedFixture, SingleTokenRequestCompletesAtPrefill)
{
    auto &s = makeScheduler();
    Instance &inst = addInstance();
    Request &r = addRequest(inst, 0.0, 512, 1);
    s.kick();
    sim.run();
    EXPECT_EQ(r.generated, 1);
    EXPECT_TRUE(r.finishedGenerating());
    EXPECT_EQ(done.size(), 1u);
}

TEST_F(SchedFixture, OneIterationAtATime)
{
    auto &s = makeScheduler();
    Instance &a = addInstance();
    Instance &b = addInstance();
    addRequest(a, 0.0, 1024, 3);
    addRequest(b, 0.0, 1024, 3);
    s.kick();
    EXPECT_TRUE(part->busy);
    // A second kick while busy must be a no-op.
    s.kick();
    sim.run();
    EXPECT_EQ(done.size(), 2u);
    EXPECT_FALSE(part->busy);
}

TEST_F(SchedFixture, HeadroomPolicyPicksMostUrgentInstance)
{
    auto &s = makeScheduler();
    Instance &a = addInstance();
    Instance &b = addInstance();
    // b's request arrived earlier => smaller headroom => runs first.
    Request &ra = addRequest(a, 5.0, 1024, 1);
    Request &rb = addRequest(b, 0.0, 1024, 1);
    sim.runUntil(6.0);
    s.kick();
    sim.run();
    EXPECT_LT(rb.firstTokenTime, ra.firstTokenTime);
}

TEST_F(SchedFixture, FifoPolicyRunsPrefillsBeforeDecodes)
{
    auto &s = makeScheduler(SchedPolicy::FifoPrefillFirst);
    Instance &inst = addInstance();
    Request &r1 = addRequest(inst, 0.0, 512, 50);
    s.kick();
    // Let the first prefill finish, then inject a second request. With
    // prefill-first, its prefill preempts r1's decode progression.
    sim.runUntil(0.2);
    Request &r2 = addRequest(inst, 0.2, 512, 2);
    s.kick();
    sim.run();
    EXPECT_EQ(done.size(), 2u);
    EXPECT_GT(r1.generated, 0);
    EXPECT_GT(r2.firstTokenTime, 0.0);
    // r2's prefill ran promptly: its TTFT is well under r1's total.
    EXPECT_LT(r2.firstTokenTime - r2.arrival, 0.5);
}

TEST_F(SchedFixture, DecodeBatchesWholeInstance)
{
    auto &s = makeScheduler();
    Instance &inst = addInstance();
    Request &r1 = addRequest(inst, 0.0, 512, 4);
    Request &r2 = addRequest(inst, 0.0, 512, 4);
    s.kick();
    sim.run();
    EXPECT_EQ(done.size(), 2u);
    // Both decoded together: 2 prefills + 3 decode rounds of batch 2.
    EXPECT_EQ(inst.decodedTokens, 6);
    EXPECT_EQ(r1.generated, 4);
    EXPECT_EQ(r2.generated, 4);
}

TEST_F(SchedFixture, KvShortageReportedWhenPrefillCannotFit)
{
    auto &s = makeScheduler();
    // Tiny KV: 512 tokens worth.
    Instance &inst = addInstance(512ULL * llama2_7b().kvBytesPerToken());
    addRequest(inst, 0.0, 2048, 4); // cannot fit
    s.kick();
    sim.run();
    EXPECT_FALSE(shortages.empty());
    EXPECT_EQ(done.size(), 0u);
}

TEST_F(SchedFixture, KvGrowthAcrossBlocks)
{
    auto &s = makeScheduler();
    Instance &inst = addInstance();
    Request &r = addRequest(inst, 0.0, 15, 20); // crosses block edges
    s.kick();
    sim.run();
    EXPECT_EQ(r.generated, 20);
    EXPECT_EQ(done.size(), 1u);
}

TEST_F(SchedFixture, NoiseIsDeterministicPerSeed)
{
    Seconds first_run;
    {
        auto &s = makeScheduler(SchedPolicy::Headroom, 0.05);
        Instance &inst = addInstance();
        addRequest(inst, 0.0, 1024, 10);
        s.kick();
        sim.run();
        first_run = sim.now();
    }
    // Rebuild everything with the same seed.
    SchedHarness other;
    auto &s2 = other.makeScheduler(SchedPolicy::Headroom, 0.05);
    Instance &inst2 = other.addInstance();
    other.addRequest(inst2, 0.0, 1024, 10);
    s2.kick();
    other.sim.run();
    EXPECT_DOUBLE_EQ(other.sim.now(), first_run);
}

TEST_F(SchedFixture, ResizeInFlightBlocksInstanceButNotSiblings)
{
    auto &s = makeScheduler();
    Instance &a = addInstance();
    Instance &b = addInstance();
    addRequest(a, 0.0, 512, 2);
    Request &rb = addRequest(b, 0.0, 512, 2);
    a.resizeInFlight = true;
    s.kick();
    sim.run();
    // Only b made progress.
    EXPECT_EQ(rb.generated, 2);
    EXPECT_EQ(a.prefillQueue.size(), 1u);
}

TEST_F(SchedFixture, BusyUntilTracksIteration)
{
    auto &s = makeScheduler();
    Instance &inst = addInstance();
    addRequest(inst, 0.0, 1024, 1);
    s.kick();
    Seconds pf = PerfModel::prefillTime(a100_80g(), llama2_7b(), 1024);
    EXPECT_NEAR(s.busyUntil(), pf, 1e-9);
}

TEST_F(SchedFixture, EvictedMidIterationRequestSkipsToken)
{
    auto &s = makeScheduler();
    Instance &inst = addInstance();
    Request &r1 = addRequest(inst, 0.0, 512, 100);
    Request &r2 = addRequest(inst, 0.0, 512, 100);
    s.kick();
    // After both prefills, evict r2 mid-decode-iteration.
    sim.runUntil(0.3);
    if (r2.state == RequestState::Decode) {
        inst.removeRequest(&r2);
        inst.kv.release(r2.kvReserved);
        r2.kvReserved = 0;
        r2.instance = 0;
        r2.state = RequestState::Queued;
    }
    sim.run();
    EXPECT_EQ(r1.generated, 100);
    EXPECT_LT(r2.generated, 100);
}

} // namespace
} // namespace slinfer
