/**
 * @file
 * Engine-layer tests: requests & headroom (Eq. 1), the paged KV cache,
 * instances, partitions/nodes, the physical memory ledger and loader.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "engine/instance.hh"
#include "engine/loader.hh"
#include "engine/memory_manager.hh"

namespace slinfer
{
namespace
{

Request
makeReq(RequestId id, Seconds arrival, Tokens in, Tokens out,
        Seconds ttft = 2.0, Seconds tpot = 0.25)
{
    Request r;
    r.id = id;
    r.arrival = arrival;
    r.inputLen = in;
    r.targetOutput = out;
    r.ttftSlo = ttft;
    r.tpotSlo = tpot;
    return r;
}

// ------------------------------------------------------------------
// Request / headroom (Eq. 1).
// ------------------------------------------------------------------

TEST(Request, HeadroomEquationOne)
{
    Request r = makeReq(1, 10.0, 1024, 100);
    // headroom = ST + TTFT + TPOT * O - CT with O = 0.
    EXPECT_DOUBLE_EQ(r.headroom(10.0), 2.0);
    EXPECT_DOUBLE_EQ(r.headroom(11.5), 0.5);
    r.generated = 4;
    EXPECT_DOUBLE_EQ(r.headroom(11.5), 2.0 + 4 * 0.25 - 1.5);
}

TEST(Request, GraceExtendsDeadline)
{
    Request r = makeReq(1, 0.0, 512, 10);
    Seconds base = r.deadlineForNextToken();
    r.grace = 1.2;
    EXPECT_DOUBLE_EQ(r.deadlineForNextToken(), base + 1.2);
}

TEST(Request, NoteTokenTracksViolations)
{
    Request r = makeReq(1, 0.0, 512, 3);
    EXPECT_GE(r.noteToken(1.0), 0.0); // TTFT 2.0, on time
    EXPECT_FALSE(r.sloViolated);
    EXPECT_DOUBLE_EQ(r.firstTokenTime, 1.0);
    EXPECT_EQ(r.generated, 1);
    // Second token deadline = 2.25; emit late.
    EXPECT_LT(r.noteToken(3.0), 0.0);
    EXPECT_TRUE(r.sloViolated);
    r.noteToken(3.1);
    EXPECT_TRUE(r.finishedGenerating());
}

TEST(Request, CumulativeDeadlineForgivesJitter)
{
    // One slow token after several fast ones still meets the
    // cumulative schedule.
    Request r = makeReq(1, 0.0, 512, 10);
    r.noteToken(0.5);
    r.noteToken(0.6);
    r.noteToken(0.7);
    // Deadline for 4th token: 2.0 + 3*0.25 = 2.75.
    EXPECT_GE(r.noteToken(2.7), 0.0);
    EXPECT_FALSE(r.sloViolated);
}

TEST(Request, ContextLenGrowsWithGeneration)
{
    Request r = makeReq(1, 0.0, 100, 5);
    EXPECT_EQ(r.contextLen(), 100);
    r.noteToken(0.1);
    EXPECT_EQ(r.contextLen(), 101);
}

// ------------------------------------------------------------------
// Paged KV cache.
// ------------------------------------------------------------------

TEST(PagedKvCache, BlockRounding)
{
    EXPECT_EQ(PagedKvCache::roundedTokens(0), 0);
    EXPECT_EQ(PagedKvCache::roundedTokens(1), 16);
    EXPECT_EQ(PagedKvCache::roundedTokens(16), 16);
    EXPECT_EQ(PagedKvCache::roundedTokens(17), 32);
}

TEST(PagedKvCache, ReserveRelease)
{
    PagedKvCache kv(1024, 1024 * 1000); // 1000 tokens
    EXPECT_EQ(kv.capacityTokens(), 1000);
    EXPECT_TRUE(kv.reserve(600));
    EXPECT_EQ(kv.usedTokens(), 600);
    EXPECT_FALSE(kv.reserve(500)); // would overflow
    EXPECT_EQ(kv.usedTokens(), 600);
    kv.release(100);
    EXPECT_TRUE(kv.reserve(500));
    EXPECT_EQ(kv.usedTokens(), 1000);
}

TEST(PagedKvCache, UtilizationAndBytes)
{
    PagedKvCache kv(1000, 100000);
    ASSERT_TRUE(kv.reserve(50));
    EXPECT_EQ(kv.usedBytes(), 50000u);
    EXPECT_DOUBLE_EQ(kv.utilization(), 0.5);
}

TEST(PagedKvCache, ResizeChangesCapacity)
{
    PagedKvCache kv(1000, 100000);
    ASSERT_TRUE(kv.reserve(80));
    kv.setAllocBytes(200000);
    EXPECT_EQ(kv.capacityTokens(), 200);
    EXPECT_TRUE(kv.canFit(120));
    EXPECT_FALSE(kv.canFit(121));
}

TEST(PagedKvCacheDeath, OverReleasePanics)
{
    PagedKvCache kv(1000, 100000);
    ASSERT_TRUE(kv.reserve(10));
    EXPECT_DEATH(kv.release(11), "releasing more");
}

// ------------------------------------------------------------------
// MemoryManager (physical ledger).
// ------------------------------------------------------------------

TEST(MemoryManager, HoldReleaseAndOomCount)
{
    MemoryManager mm(100);
    EXPECT_TRUE(mm.tryHold(60));
    EXPECT_EQ(mm.available(), 40u);
    EXPECT_FALSE(mm.tryHold(41));
    EXPECT_EQ(mm.oomEvents(), 1u);
    EXPECT_TRUE(mm.tryHold(40));
    mm.release(100);
    EXPECT_EQ(mm.used(), 0u);
}

TEST(MemoryManagerDeath, OverReleasePanics)
{
    MemoryManager mm(100);
    ASSERT_TRUE(mm.tryHold(10));
    EXPECT_DEATH(mm.release(11), "releasing more");
}

// ------------------------------------------------------------------
// Node / Partition.
// ------------------------------------------------------------------

TEST(Node, SinglePartitionSpansNode)
{
    Node n(0, a100_80g(), 1);
    ASSERT_EQ(n.partitions().size(), 1u);
    EXPECT_EQ(n.partitions()[0]->mem.capacity(), a100_80g().memCapacity);
    EXPECT_FALSE(n.isCpu());
    EXPECT_FALSE(n.inUse());
}

TEST(Node, StaticSharingHalvesPartitions)
{
    Node n(1, xeon6462c(), 2);
    ASSERT_EQ(n.partitions().size(), 2u);
    EXPECT_TRUE(n.isCpu());
    EXPECT_EQ(n.partitions()[0]->mem.capacity(),
              xeon6462c().memCapacity / 2);
    EXPECT_NEAR(n.partitions()[0]->spec.peakFlops,
                xeon6462c().peakFlops / 2, 1e6);
    EXPECT_EQ(n.memCapacity(), 2 * n.partitions()[0]->mem.capacity());
}

TEST(Node, InUseTracksInstances)
{
    Node n(0, a100_80g(), 1);
    ModelSpec m = llama2_7b();
    Instance inst(1, 0, m, n.partitions()[0].get(), a100_80g(), 1 << 30);
    n.partitions()[0]->instances.push_back(&inst);
    EXPECT_TRUE(n.inUse());
    EXPECT_FALSE(n.partitions()[0]->openForPlacement() == false);
    n.partitions()[0]->exclusiveHolder = &inst;
    EXPECT_FALSE(n.partitions()[0]->openForPlacement());
}

// ------------------------------------------------------------------
// Instance.
// ------------------------------------------------------------------

class InstanceTest : public ::testing::Test
{
  protected:
    InstanceTest()
        : node(0, a100_80g(), 1), model(llama2_7b()),
          inst(1, 0, model, node.partitions()[0].get(), a100_80g(),
               8ULL << 30)
    {
        inst.state = InstanceState::Active;
    }

    Node node;
    ModelSpec model;
    Instance inst;
};

TEST_F(InstanceTest, MostUrgentPicksMinHeadroom)
{
    Request a = makeReq(1, 0.0, 512, 10); // deadline 2.0 (prefill)
    Request b = makeReq(2, 0.0, 512, 10);
    b.generated = 2; // deadline 2.5
    inst.prefillQueue.push_back(&a);
    inst.decodeBatch.push_back(&b);
    bool is_prefill = false;
    Request *u = inst.mostUrgent(1.0, is_prefill);
    EXPECT_EQ(u, &a);
    EXPECT_TRUE(is_prefill);
    EXPECT_DOUBLE_EQ(inst.minHeadroom(1.0), 1.0);
}

TEST_F(InstanceTest, MostUrgentCanBeDecode)
{
    Request a = makeReq(1, 5.0, 512, 10); // deadline 7.0
    Request b = makeReq(2, 0.0, 512, 10); // decode deadline 2.0
    inst.prefillQueue.push_back(&a);
    inst.decodeBatch.push_back(&b);
    bool is_prefill = true;
    Request *u = inst.mostUrgent(1.0, is_prefill);
    EXPECT_EQ(u, &b);
    EXPECT_FALSE(is_prefill);
}

TEST_F(InstanceTest, BatchAndContextAccounting)
{
    Request a = makeReq(1, 0.0, 100, 10);
    Request b = makeReq(2, 0.0, 300, 10);
    b.generated = 10;
    inst.decodeBatch = {&a, &b};
    EXPECT_EQ(inst.batchSize(), 2);
    EXPECT_EQ(inst.totalContext(), 100 + 310);
    EXPECT_EQ(inst.avgContextLen(), 205);
}

TEST_F(InstanceTest, RunnableConditions)
{
    EXPECT_FALSE(inst.runnable()); // no work
    Request a = makeReq(1, 0.0, 100, 10);
    inst.prefillQueue.push_back(&a);
    EXPECT_TRUE(inst.runnable());
    inst.resizeInFlight = true;
    EXPECT_FALSE(inst.runnable());
    inst.resizeInFlight = false;
    inst.state = InstanceState::Loading;
    EXPECT_FALSE(inst.runnable());
}

TEST_F(InstanceTest, RemoveRequestFromEitherQueue)
{
    Request a = makeReq(1, 0.0, 100, 10);
    Request b = makeReq(2, 0.0, 100, 10);
    inst.prefillQueue.push_back(&a);
    inst.decodeBatch.push_back(&b);
    inst.removeRequest(&a);
    inst.removeRequest(&b);
    EXPECT_EQ(inst.loadSize(), 0);
}

TEST_F(InstanceTest, EmptyInstanceHasInfiniteHeadroom)
{
    EXPECT_TRUE(std::isinf(inst.minHeadroom(0.0)));
}

// ------------------------------------------------------------------
// Loader.
// ------------------------------------------------------------------

TEST(Loader, SchedulesCompletionAfterLoadTime)
{
    Simulator sim;
    bool done = false;
    Seconds expect = Loader::loadTime(a100_80g(), llama2_7b());
    Loader::scheduleLoad(sim, a100_80g(), llama2_7b(),
                         [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(sim.now(), expect);
}

TEST(Loader, UnloadIsFasterThanLoad)
{
    Simulator sim;
    Seconds unload_at = -1.0;
    Loader::scheduleUnload(sim, a100_80g(), llama2_7b(),
                           [&] { unload_at = sim.now(); });
    sim.run();
    EXPECT_GT(unload_at, 0.0);
    EXPECT_LT(unload_at, Loader::loadTime(a100_80g(), llama2_7b()));
}

} // namespace
} // namespace slinfer
