/**
 * @file
 * Flight-recorder tests: the determinism contract (reports are
 * byte-identical with every instrumentation sink on vs off, fuzzed
 * across seeds), Chrome-trace well-formedness, counter sanity,
 * timeseries shape, phase-profiler self-time accounting, and the
 * sweep-worker log-tag hygiene regression.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/log.hh"
#include "harness/session.hh"
#include "obs/obs.hh"
#include "scenario/scenario.hh"
#include "sweep/json.hh"
#include "sweep/sweep.hh"

namespace slinfer
{
namespace
{

/** A small, fast experiment for the fuzz loop. */
ExperimentConfig
smallConfig(std::uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.system = SystemKind::Slinfer;
    cfg.cluster.cpuNodes = 2;
    cfg.cluster.gpuNodes = 2;
    cfg.models = replicateModel(llama2_7b(), 8);
    AzureTraceConfig tc;
    tc.numModels = 8;
    tc.duration = 120.0;
    tc.seed = seed;
    cfg.trace = generateAzureTrace(tc);
    cfg.duration = 120.0;
    cfg.seed = seed;
    return cfg;
}

/** Everything on: counters, full-category trace, timeseries, phases. */
obs::ObsConfig
allOn()
{
    obs::ObsConfig oc;
    oc.counters = true;
    oc.trace = true;
    oc.traceCats = obs::kAllTraceCats;
    oc.sampleEvery = 0.5;
    oc.phaseProfile = true;
    return oc;
}

// The acceptance criterion of the whole subsystem: instrumentation is
// pure observation. 20 seeds, every sink enabled, reports must match
// the uninstrumented run byte for byte (modulo the counters block,
// which only exists because we asked for it).
TEST(ObsDeterminism, ReportsByteIdenticalAcrossTwentySeeds)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        ExperimentConfig plain = smallConfig(seed);
        Report off = runExperiment(plain);

        ExperimentConfig instrumented = smallConfig(seed);
        instrumented.obs = allOn();
        Session s(instrumented);
        s.advanceTo(30.0);
        s.advanceTo(s.duration());
        Report on = s.finish();

        EXPECT_FALSE(on.counters.empty()) << "seed " << seed;
        on.counters.clear(); // opted-in block; the rest must match
        EXPECT_EQ(toJson(off), toJson(on)) << "seed " << seed;
        EXPECT_EQ(toCsvRow(off), toCsvRow(on)) << "seed " << seed;
    }
}

TEST(ObsCounters, HotPathCountersAreNonZeroAndNamed)
{
    ExperimentConfig cfg = smallConfig(7);
    cfg.obs.counters = true;
    Session s(cfg);
    s.advanceTo(s.duration());
    Report r = s.finish();

    ASSERT_EQ(r.counters.size(), obs::kNumCounters);
    std::map<std::string, std::uint64_t> c(r.counters.begin(),
                                           r.counters.end());
    EXPECT_GT(c["events_fired"], 0u);
    EXPECT_GT(c["placement_probes"], 0u);
    EXPECT_GT(c["shadow_runs"], 0u);
    EXPECT_GT(c["kv_target_changes"], 0u);
    // Registry order is stable: names follow the Counter enum.
    for (std::size_t i = 0; i < obs::kNumCounters; ++i)
        EXPECT_EQ(r.counters[i].first, obs::counterName(i));
}

TEST(ObsTrace, ChromeJsonIsWellFormedAndTimeOrdered)
{
    ExperimentConfig cfg = smallConfig(11);
    cfg.obs.trace = true;
    Session s(cfg);
    s.advanceTo(s.duration());
    s.finish();

    const obs::TraceRecorder *tr = s.flightRecorder()->trace();
    ASSERT_NE(tr, nullptr);
    EXPECT_GT(tr->size(), 0u);
    EXPECT_EQ(tr->dropped(), 0u);

    std::ostringstream os;
    tr->writeChromeJson(os);

    sweep::JsonValue doc;
    std::string err;
    ASSERT_TRUE(sweep::parseJson(os.str(), doc, &err)) << err;
    const sweep::JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_GT(events->array.size(), 0u);

    const std::string known_ph = "MXiben";
    double last_ts = -1.0;
    std::set<std::string> seen;
    for (const sweep::JsonValue &e : events->array) {
        ASSERT_TRUE(e.isObject());
        std::string ph = e.string("ph");
        ASSERT_EQ(ph.size(), 1u);
        EXPECT_NE(known_ph.find(ph), std::string::npos);
        seen.insert(ph);
        if (ph == "M")
            continue;
        const sweep::JsonValue *ts = e.find("ts");
        ASSERT_NE(ts, nullptr);
        ASSERT_TRUE(ts->isNumber());
        EXPECT_GE(ts->number, 0.0);
        EXPECT_GE(ts->number, last_ts); // insertion order == time order
        last_ts = ts->number;
        if (ph == "X")
            EXPECT_GE(e.num("dur", -1.0), 0.0);
        if (ph == "b" || ph == "e" || ph == "n")
            EXPECT_NE(e.find("id"), nullptr);
        if (ph == "i")
            EXPECT_EQ(e.string("s"), "t");
    }
    // The request lifecycle must produce async spans with sub-steps,
    // the schedulers complete spans, and metadata names the tracks.
    EXPECT_TRUE(seen.count("M"));
    EXPECT_TRUE(seen.count("X"));
    EXPECT_TRUE(seen.count("b"));
    EXPECT_TRUE(seen.count("e"));
    EXPECT_TRUE(seen.count("n"));
}

TEST(ObsTrace, CategoryMaskFiltersSpans)
{
    ExperimentConfig cfg = smallConfig(5);
    cfg.obs.trace = true;
    cfg.obs.traceCats = obs::kCatExec; // prefill/decode spans only
    Session s(cfg);
    s.advanceTo(s.duration());
    s.finish();

    const obs::TraceRecorder *tr = s.flightRecorder()->trace();
    ASSERT_NE(tr, nullptr);
    EXPECT_GT(tr->size(), 0u);

    std::ostringstream os;
    tr->writeChromeJson(os);
    sweep::JsonValue doc;
    std::string err;
    ASSERT_TRUE(sweep::parseJson(os.str(), doc, &err)) << err;
    for (const sweep::JsonValue &e : doc.find("traceEvents")->array) {
        if (e.string("ph") == "M")
            continue;
        EXPECT_EQ(e.string("cat"), "exec");
    }
}

TEST(ObsTrace, RingOverwriteKeepsNewestEvents)
{
    obs::TraceRecorder tr(obs::kAllTraceCats, 4);
    for (int i = 0; i < 10; ++i)
        tr.instant(obs::kCatController, "tick", static_cast<double>(i),
                   obs::kPidController, 0);
    EXPECT_EQ(tr.size(), 4u);
    EXPECT_EQ(tr.total(), 10u);
    EXPECT_EQ(tr.dropped(), 6u);

    std::ostringstream os;
    tr.writeChromeJson(os);
    sweep::JsonValue doc;
    std::string err;
    ASSERT_TRUE(sweep::parseJson(os.str(), doc, &err)) << err;
    // Oldest-first export of the surviving window: ts 6..9 in µs.
    std::vector<double> ts;
    for (const sweep::JsonValue &e : doc.find("traceEvents")->array)
        if (e.string("ph") != "M")
            ts.push_back(e.num("ts"));
    ASSERT_EQ(ts.size(), 4u);
    EXPECT_EQ(ts.front(), 6e6);
    EXPECT_EQ(ts.back(), 9e6);
}

TEST(ObsTimeseries, CadenceCoversTheWholeWindowIncludingTimeZero)
{
    ExperimentConfig cfg = smallConfig(3);
    cfg.obs.sampleEvery = 10.0;
    Session s(cfg);
    // Step awkwardly: samples must land on the cadence regardless of
    // how the caller slices the clock.
    s.advanceTo(33.0);
    s.advanceTo(34.0);
    Report r = s.finish();
    (void)r;

    const obs::Timeseries *ts = s.flightRecorder()->timeseries();
    ASSERT_NE(ts, nullptr);
    // t = 0, 10, ..., 120: 13 samples.
    ASSERT_EQ(ts->samples().size(), 13u);
    for (std::size_t i = 0; i < ts->samples().size(); ++i) {
        const obs::TimeseriesSample &smp = ts->samples()[i];
        EXPECT_DOUBLE_EQ(smp.time, 10.0 * static_cast<double>(i));
        EXPECT_EQ(smp.inFlight,
                  smp.arrived - smp.completed - smp.dropped);
    }
    // CSV renders one header plus one row per sample.
    std::string csv = ts->toCsv();
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(csv.begin(), csv.end(), '\n')),
              1 + ts->samples().size());
    // The JSON form parses and has the same length.
    sweep::JsonValue doc;
    std::string err;
    ASSERT_TRUE(sweep::parseJson(ts->toJson(), doc, &err)) << err;
    ASSERT_TRUE(doc.isArray());
    EXPECT_EQ(doc.array.size(), ts->samples().size());
}

TEST(ObsPhase, SelfTimeAttributionAndGlobalAggregate)
{
    obs::PhaseProfiler prof;
    {
        obs::ScopedPhase outer(&prof, obs::kPhaseEventDispatch);
        {
            obs::ScopedPhase inner(&prof, obs::kPhaseControllerDecide);
        }
        {
            obs::ScopedPhase inner(&prof, obs::kPhaseMemoryOp);
        }
    }
    EXPECT_EQ(prof.entries(obs::kPhaseEventDispatch), 1u);
    EXPECT_EQ(prof.entries(obs::kPhaseControllerDecide), 1u);
    EXPECT_EQ(prof.entries(obs::kPhaseMemoryOp), 1u);
    EXPECT_GE(prof.total(obs::kPhaseEventDispatch), 0.0);

    // Null profiler: the scope is a no-op, not a crash.
    {
        obs::ScopedPhase off(nullptr, obs::kPhaseEventDispatch);
    }

    std::array<double, obs::kNumPhases> before =
        obs::phaseTotalsSnapshot();
    obs::addPhaseTotals(prof);
    std::array<double, obs::kNumPhases> after =
        obs::phaseTotalsSnapshot();
    for (std::size_t i = 0; i < obs::kNumPhases; ++i)
        EXPECT_GE(after[i], before[i]);
}

// Satellite regression: a sweep worker's thread tag must not leak past
// its job — idle-worker log lines would otherwise claim "job N/M".
TEST(LogTagScope, RestoresThePreviousTagOnEveryExitPath)
{
    setLogThreadTag("");
    {
        LogTagScope outer("outer");
        EXPECT_EQ(logThreadTag(), "outer");
        {
            LogTagScope inner("inner");
            EXPECT_EQ(logThreadTag(), "inner");
        }
        EXPECT_EQ(logThreadTag(), "outer");
    }
    EXPECT_EQ(logThreadTag(), "");
}

TEST(LogTagScope, SweepWorkerLeavesNoStaleTag)
{
    setLogThreadTag("");
    sweep::Grid grid;
    grid.scenarios = {"quickstart"};
    grid.systems = {SystemKind::Slinfer};
    grid.seeds = {1};
    sweep::RunOptions opts;
    opts.jobs = 1; // single worker == this thread runs the job inline
    sweep::runGrid(grid, opts);
    EXPECT_EQ(logThreadTag(), "") << "sweep worker leaked its job tag";
}

// ------------------------------------------------------------------
// Lockstep parallel mode (sim/lockstep.hh): every flight-recorder
// export must be byte-identical across node-phase thread counts —
// the trace ring records staged spans in the canonical merge order,
// so even event *ordering* may not wiggle with the worker count.
// ------------------------------------------------------------------

/** Run `cfg` under lockstep with `threads` workers and export every
 *  enabled recorder component into one comparable blob. */
std::string
obsBlob(ExperimentConfig cfg, int threads)
{
    cfg.simThreads = threads;
    Session s(cfg);
    s.advanceTo(s.duration());
    Report r = s.finish();

    std::ostringstream os;
    os << toJson(r) << '\n';
    const obs::FlightRecorder *fr = s.flightRecorder();
    if (fr->trace())
        fr->trace()->writeChromeJson(os);
    if (fr->timeseries())
        os << fr->timeseries()->toCsv();
    return os.str();
}

TEST(ObsParallel, RecorderExportsByteIdenticalAcrossThreadCounts)
{
    for (std::uint64_t seed : {3u, 11u}) {
        ExperimentConfig cfg = smallConfig(seed);
        cfg.obs.counters = true;
        cfg.obs.trace = true;
        cfg.obs.sampleEvery = 1.0;
        const std::string oracle = obsBlob(cfg, 1);
        for (int n : {2, 3})
            EXPECT_EQ(oracle, obsBlob(cfg, n))
                << "seed " << seed << ", threads " << n;
    }
}

// Enabling the recorder may not perturb a lockstep run, exactly as
// it may not perturb a serial one (the PR 6 free-observation rule).
TEST(ObsParallel, RecorderIsFreeUnderLockstep)
{
    ExperimentConfig plain = smallConfig(17);
    plain.simThreads = 3;
    const std::string bare = toJson(runExperiment(plain));

    ExperimentConfig instrumented = smallConfig(17);
    instrumented.obs.counters = true;
    instrumented.obs.trace = true;
    instrumented.obs.sampleEvery = 1.0;
    instrumented.simThreads = 3;
    Report on = runExperiment(instrumented);
    EXPECT_FALSE(on.counters.empty());
    on.counters.clear(); // opted-in block; the rest must match
    EXPECT_EQ(bare, toJson(on));
}

} // namespace
} // namespace slinfer
