/**
 * @file
 * Consolidation tests (§VIII): proactive preemption of smaller-batch
 * neighbors with validated rescheduling, and reactive largest-batch
 * ordering. Exercised through a real SlinferController on a tiny
 * cluster so the whole preemption pipeline runs.
 */

#include <gtest/gtest.h>

#include "core/consolidator.hh"
#include "core/controller.hh"
#include "harness/experiment.hh"
#include "metrics/recorder.hh"

namespace slinfer
{
namespace
{

TEST(Consolidator, OrderLargestBatchFirst)
{
    Node node(0, a100_80g(), 1);
    Partition *part = node.partitions()[0].get();
    ModelSpec m = llama2_7b();
    Instance a(1, 0, m, part, a100_80g(), 1 << 30);
    Instance b(2, 0, m, part, a100_80g(), 1 << 30);
    Instance c(3, 0, m, part, a100_80g(), 1 << 30);
    Request r1, r2, r3;
    b.decodeBatch = {&r1, &r2};
    c.decodeBatch = {&r3};
    std::vector<Instance *> v = {&a, &b, &c};
    Consolidator::orderLargestBatchFirst(v);
    EXPECT_EQ(v[0], &b);
    EXPECT_EQ(v[1], &c);
    EXPECT_EQ(v[2], &a);
}

/**
 * Integration fixture: a one-GPU cluster hosting two models. Model 0
 * builds a large batch; model 1 holds a small idle instance next to
 * it. A burst to model 0 must preempt model 1's fragment rather than
 * fragment model 0 further.
 */
struct PreemptFixture : public ::testing::Test
{
    PreemptFixture()
    {
        cluster.cpuNodes = 0;
        cluster.gpuNodes = 1;
        nodes = buildCluster(cluster, 1);
        models = {llama2_7b(), llama2_7b()};
        ControllerConfig cfg;
        ctl = std::make_unique<SlinferController>(
            sim, nodes, models, std::vector<double>{250.0, 250.0}, cfg,
            recorder, nullptr);
    }

    Request &
    makeReq(ModelId model, Seconds arrival, Tokens in, Tokens out)
    {
        auto r = std::make_unique<Request>();
        r->id = nextReq++;
        r->model = model;
        r->arrival = arrival;
        r->inputLen = in;
        r->targetOutput = out;
        r->ttftSlo = std::min(std::max(0.5, in / 512.0), 8.0);
        r->tpotSlo = 0.25;
        reqs.push_back(std::move(r));
        return *reqs.back();
    }

    ClusterSpec cluster;
    Simulator sim;
    std::vector<std::unique_ptr<Node>> nodes;
    std::vector<ModelSpec> models;
    Recorder recorder;
    std::unique_ptr<SlinferController> ctl;
    std::vector<std::unique_ptr<Request>> reqs;
    RequestId nextReq = 1;
};

TEST_F(PreemptFixture, IdleFragmentIsPreemptedForGrowth)
{
    // Seed model 1 with one request so it holds an instance, then let
    // it drain to an idle (keep-alive) fragment.
    Request &warm = makeReq(1, 0.0, 512, 2);
    sim.scheduleAt(0.0, [&] { ctl->submit(&warm); });

    // Saturate model 0 with a steady stream of long-context requests;
    // growth eventually needs the neighbor's memory.
    std::vector<Request *> stream;
    for (int i = 0; i < 60; ++i) {
        Request &r = makeReq(0, 2.0 + i * 0.05, 3000, 300);
        stream.push_back(&r);
        sim.scheduleAt(r.arrival, [&, p = &r] { ctl->submit(p); });
    }
    sim.runUntil(12.0);

    // The fragment was removed (preempted or demand-reclaimed) and the
    // big model kept growing on the same node.
    EXPECT_TRUE(ctl->models()[1].instances.empty());
    EXPECT_GE(ctl->models()[0].instances.size(), 1u);
    std::size_t batch = 0;
    for (const Instance *inst : ctl->models()[0].instances)
        batch = std::max(batch,
                         static_cast<std::size_t>(inst->batchSize()));
    EXPECT_GE(batch, 4u);
    sim.run();
}

TEST_F(PreemptFixture, PreemptionMovesVictimRequestsSafely)
{
    // Two instances of model 1 (one on the GPU next to model 0's
    // grower): preempting must relocate in-flight requests, never drop
    // them.
    Request &v1 = makeReq(1, 0.0, 512, 400);
    sim.scheduleAt(0.0, [&] { ctl->submit(&v1); });
    std::vector<Request *> stream;
    for (int i = 0; i < 40; ++i) {
        Request &r = makeReq(0, 1.0 + i * 0.1, 3000, 200);
        stream.push_back(&r);
        sim.scheduleAt(r.arrival, [&, p = &r] { ctl->submit(p); });
    }
    sim.run();
    // The victim request still completed (migrated or in place).
    EXPECT_EQ(v1.state, RequestState::Completed);
    EXPECT_EQ(v1.generated, 400);
}

TEST_F(PreemptFixture, NoPreemptionOfLargerBatches)
{
    // Model 1 builds the bigger batch; a single request for model 0
    // must NOT dismantle it.
    std::vector<Request *> stream;
    for (int i = 0; i < 12; ++i) {
        Request &r = makeReq(1, 0.0 + i * 0.05, 1500, 400);
        stream.push_back(&r);
        sim.scheduleAt(r.arrival, [&, p = &r] { ctl->submit(p); });
    }
    Request &single = makeReq(0, 3.0, 512, 50);
    sim.scheduleAt(3.0, [&] { ctl->submit(&single); });
    sim.runUntil(4.0);
    // Model 1 still holds its big batch.
    std::size_t batch = 0;
    for (const Instance *inst : ctl->models()[1].instances)
        batch = std::max(batch,
                         static_cast<std::size_t>(inst->batchSize()));
    EXPECT_GE(batch, 6u);
    sim.run();
}

} // namespace
} // namespace slinfer
