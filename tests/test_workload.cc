/**
 * @file
 * Workload-layer tests: SLO functions, dataset length samplers, and the
 * Azure-style / BurstGPT trace generators (calibration per Figs. 12,
 * 21, 34 of the paper).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/stats.hh"
#include "workload/azure_trace.hh"
#include "workload/burstgpt.hh"
#include "workload/dataset.hh"
#include "workload/slo.hh"

namespace slinfer
{
namespace
{

// ------------------------------------------------------------------
// SLO: TTFT = min(max(0.5, L/512), 8), TPOT = 0.25.
// ------------------------------------------------------------------

TEST(Slo, TtftPiecewise)
{
    SloSpec slo = defaultSlo();
    EXPECT_DOUBLE_EQ(slo.ttft(64), 0.5);    // floor
    EXPECT_DOUBLE_EQ(slo.ttft(256), 0.5);   // 0.5 exactly at the knee
    EXPECT_DOUBLE_EQ(slo.ttft(1024), 2.0);  // linear region
    EXPECT_DOUBLE_EQ(slo.ttft(4096), 8.0);  // ceiling
    EXPECT_DOUBLE_EQ(slo.ttft(32768), 8.0); // stays capped
    EXPECT_DOUBLE_EQ(slo.tpot, 0.25);
}

TEST(Slo, TightVariant)
{
    SloSpec tight = tightSlo(0.1);
    EXPECT_DOUBLE_EQ(tight.tpot, 0.1);
    EXPECT_DOUBLE_EQ(tight.ttft(1024), 2.0); // TTFT unchanged
}

// ------------------------------------------------------------------
// Datasets (Fig. 34 shapes).
// ------------------------------------------------------------------

class DatasetShape : public ::testing::TestWithParam<DatasetKind>
{
};

TEST_P(DatasetShape, SamplesWithinClampsAndDeterministic)
{
    Dataset ds(GetParam());
    Rng r1(11), r2(11);
    for (int i = 0; i < 2000; ++i) {
        LengthSample a = ds.sample(r1);
        LengthSample b = ds.sample(r2);
        EXPECT_EQ(a.input, b.input);
        EXPECT_EQ(a.output, b.output);
        EXPECT_GE(a.input, 1);
        EXPECT_LE(a.input, ds.maxInput());
        EXPECT_GE(a.output, 1);
    }
}

TEST_P(DatasetShape, EmpiricalMeansMatchAnalytic)
{
    Dataset ds(GetParam());
    Rng rng(5);
    Summary in, out;
    for (int i = 0; i < 50000; ++i) {
        LengthSample s = ds.sample(rng);
        in.add(static_cast<double>(s.input));
        out.add(static_cast<double>(s.output));
    }
    EXPECT_NEAR(in.mean(), ds.meanInput(), ds.meanInput() * 0.15);
    EXPECT_NEAR(out.mean(), ds.meanOutput(), ds.meanOutput() * 0.15);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetShape,
                         ::testing::Values(DatasetKind::AzureConv,
                                           DatasetKind::AzureCode,
                                           DatasetKind::HumanEval,
                                           DatasetKind::ShareGPT,
                                           DatasetKind::LongBench));

TEST(Dataset, RelativeShapesMatchFig34)
{
    Dataset conv(DatasetKind::AzureConv);
    Dataset code(DatasetKind::AzureCode);
    Dataset heval(DatasetKind::HumanEval);
    Dataset sgpt(DatasetKind::ShareGPT);
    Dataset lbench(DatasetKind::LongBench);

    // Coding inputs are longer than conversation; LongBench dominates.
    EXPECT_GT(code.meanInput(), conv.meanInput());
    EXPECT_GT(lbench.meanInput(), 4.0 * conv.meanInput());
    EXPECT_LT(heval.meanInput(), conv.meanInput());
    // ShareGPT has the longest outputs; AzureCode the shortest.
    EXPECT_GT(sgpt.meanOutput(), conv.meanOutput() * 0.9);
    EXPECT_LT(code.meanOutput(), 0.5 * conv.meanOutput());
    // LongBench can emit 32K-token inputs.
    EXPECT_EQ(lbench.maxInput(), 32000);
}

TEST(Dataset, AzureConvMostInputsUnder4K)
{
    // §IV-A2: 97.9% of conversation inputs are under 4K tokens.
    Dataset ds(DatasetKind::AzureConv);
    Rng rng(9);
    int under = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        under += ds.sample(rng).input < 4096;
    EXPECT_GT(static_cast<double>(under) / n, 0.90);
}

TEST(Dataset, Names)
{
    EXPECT_STREQ(Dataset(DatasetKind::ShareGPT).name(), "ShareGPT");
    EXPECT_STREQ(Dataset(DatasetKind::LongBench).name(), "LongBench");
}

// ------------------------------------------------------------------
// Azure serverless trace generator (Figs. 12, 21).
// ------------------------------------------------------------------

class AzureTraceScale : public ::testing::TestWithParam<int>
{
};

TEST_P(AzureTraceScale, TotalsTrackFig21)
{
    // Fig. 21: 32/64/128 models -> 2366/4684/9266 requests in 30 min
    // (aggregate ~2.4 RPM per model). Assert within 25%.
    int n = GetParam();
    AzureTraceConfig cfg;
    cfg.numModels = n;
    cfg.seed = 5;
    AzureTrace t = generateAzureTrace(cfg);
    double expect = 2.44 * n * 30.0;
    EXPECT_NEAR(static_cast<double>(t.totalRequests()), expect,
                expect * 0.25);
}

TEST_P(AzureTraceScale, SortedAndWithinDuration)
{
    AzureTraceConfig cfg;
    cfg.numModels = GetParam();
    cfg.seed = 7;
    AzureTrace t = generateAzureTrace(cfg);
    Seconds prev = 0.0;
    for (const Arrival &a : t.arrivals) {
        EXPECT_GE(a.time, prev);
        EXPECT_LT(a.time, cfg.duration);
        EXPECT_LT(a.model, static_cast<ModelId>(cfg.numModels));
        prev = a.time;
    }
}

INSTANTIATE_TEST_SUITE_P(Scales, AzureTraceScale,
                         ::testing::Values(32, 64, 128));

TEST(AzureTrace, HotColdSkew)
{
    // §III-C: the top 1% of functions contribute ~26% of requests and
    // most models receive only a handful of requests.
    AzureTraceConfig cfg;
    cfg.numModels = 128;
    cfg.seed = 5;
    AzureTrace t = generateAzureTrace(cfg);
    EXPECT_GT(t.topShare(0.01), 0.15);
    EXPECT_GT(t.topShare(0.05), 0.40);

    std::vector<double> rates = t.perModelRpm;
    std::sort(rates.begin(), rates.end());
    // Median model sees under 1 request/minute.
    EXPECT_LT(rates[rates.size() / 2], 1.0);
}

TEST(AzureTrace, Deterministic)
{
    AzureTraceConfig cfg;
    cfg.numModels = 32;
    cfg.seed = 99;
    AzureTrace a = generateAzureTrace(cfg);
    AzureTrace b = generateAzureTrace(cfg);
    ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
    for (std::size_t i = 0; i < a.arrivals.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.arrivals[i].time, b.arrivals[i].time);
        EXPECT_EQ(a.arrivals[i].model, b.arrivals[i].model);
    }
}

TEST(AzureTrace, SeedChangesTrace)
{
    AzureTraceConfig cfg;
    cfg.numModels = 32;
    cfg.seed = 1;
    AzureTrace a = generateAzureTrace(cfg);
    cfg.seed = 2;
    AzureTrace b = generateAzureTrace(cfg);
    EXPECT_NE(a.arrivals.size(), b.arrivals.size());
}

TEST(AzureTrace, BurstsCreateConcurrency)
{
    // Fig. 12: hot models see bursts well above one in-flight request.
    // Count the largest number of arrivals of one model within any 5 s
    // window as a concurrency proxy.
    AzureTraceConfig cfg;
    cfg.numModels = 128;
    cfg.seed = 5;
    AzureTrace t = generateAzureTrace(cfg);
    std::map<ModelId, std::vector<Seconds>> by_model;
    for (const Arrival &a : t.arrivals)
        by_model[a.model].push_back(a.time);
    std::size_t max_burst = 0;
    for (auto &[m, times] : by_model) {
        for (std::size_t i = 0; i < times.size(); ++i) {
            std::size_t j = i;
            while (j < times.size() && times[j] - times[i] < 5.0)
                ++j;
            max_burst = std::max(max_burst, j - i);
        }
    }
    EXPECT_GE(max_burst, 16u);
}

TEST(AzureTrace, AggregateRpmHelper)
{
    AzureTraceConfig cfg;
    cfg.numModels = 64;
    cfg.seed = 5;
    AzureTrace t = generateAzureTrace(cfg);
    EXPECT_NEAR(t.aggregateRpm(cfg.duration),
                static_cast<double>(t.totalRequests()) / 30.0, 1e-9);
}

// ------------------------------------------------------------------
// BurstGPT generator (Fig. 27).
// ------------------------------------------------------------------

TEST(BurstGpt, MatchesAggregateRps)
{
    for (double rps : {0.5, 1.0, 2.0, 4.0}) {
        BurstGptConfig cfg;
        cfg.aggregateRps = rps;
        cfg.seed = 11;
        AzureTrace t = generateBurstGpt(cfg);
        double got = static_cast<double>(t.totalRequests()) / cfg.duration;
        EXPECT_NEAR(got, rps, rps * 0.15) << "rps=" << rps;
    }
}

TEST(BurstGpt, InterArrivalsAreBursty)
{
    // Gamma shape < 1 means the coefficient of variation exceeds 1.
    BurstGptConfig cfg;
    cfg.aggregateRps = 2.0;
    cfg.seed = 3;
    AzureTrace t = generateBurstGpt(cfg);
    Summary gaps;
    for (std::size_t i = 1; i < t.arrivals.size(); ++i)
        gaps.add(t.arrivals[i].time - t.arrivals[i - 1].time);
    double cv = gaps.stddev() / gaps.mean();
    EXPECT_GT(cv, 1.1);
}

TEST(BurstGpt, ParetoSplitAcrossModels)
{
    BurstGptConfig cfg;
    cfg.aggregateRps = 2.0;
    cfg.seed = 3;
    AzureTrace t = generateBurstGpt(cfg);
    EXPECT_GT(t.topShare(0.05), 0.30);
    int touched = 0;
    for (double rpm : t.perModelRpm)
        touched += rpm > 0;
    EXPECT_GT(touched, cfg.numModels / 2);
}

TEST(BurstGpt, Deterministic)
{
    BurstGptConfig cfg;
    cfg.seed = 21;
    AzureTrace a = generateBurstGpt(cfg);
    AzureTrace b = generateBurstGpt(cfg);
    EXPECT_EQ(a.arrivals.size(), b.arrivals.size());
}

} // namespace
} // namespace slinfer
