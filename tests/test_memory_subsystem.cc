/**
 * @file
 * Memory-subsystem tests (§VII): Eq. 2 demand, watermark scale-up /
 * lazy scale-down, the compromise path, the optimistic/pessimistic
 * orchestration with its reservation station, and a property test that
 * random scaling storms never OOM the physical ledger.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "core/memory_subsystem.hh"

namespace slinfer
{
namespace
{

struct MemFixture : public ::testing::Test
{
    MemFixture() : node(0, a100_80g(), 1)
    {
        part = node.partitions()[0].get();
        sub = std::make_unique<MemorySubsystem>(sim, *part, 0.25,
                                                [this] { ++notifies; });
    }

    Instance &
    addInstance(Bytes kvInit, const ModelSpec &m = llama2_7b())
    {
        auto inst = std::make_unique<Instance>(nextId++, 0, m, part,
                                               a100_80g(), kvInit);
        part->instances.push_back(inst.get());
        pool.push_back(std::move(inst));
        return *pool.back();
    }

    /** Create an instance and run its load to completion. */
    Instance &
    addLoadedInstance(Bytes kvInit, const ModelSpec &m = llama2_7b())
    {
        Instance &inst = addInstance(kvInit, m);
        sub->beginLoad(inst, nullptr);
        sim.run();
        EXPECT_EQ(inst.state, InstanceState::Active);
        return inst;
    }

    Request &
    makeRequest(Tokens in, Tokens generated = 0)
    {
        auto r = std::make_unique<Request>();
        r->id = nextReq++;
        r->inputLen = in;
        r->generated = generated;
        r->targetOutput = 1000;
        reqs.push_back(std::move(r));
        return *reqs.back();
    }

    Simulator sim;
    Node node;
    Partition *part;
    std::unique_ptr<MemorySubsystem> sub;
    std::vector<std::unique_ptr<Instance>> pool;
    std::vector<std::unique_ptr<Request>> reqs;
    InstanceId nextId = 1;
    RequestId nextReq = 1;
    int notifies = 0;
};

// ------------------------------------------------------------------
// Eq. 2 demand.
// ------------------------------------------------------------------

TEST_F(MemFixture, RequiredBytesFollowsEquationTwo)
{
    Instance &inst = addInstance(1ULL << 30);
    // Empty instance: the L_min = max-context floor applies.
    Bytes floor = static_cast<Bytes>(llama2_7b().maxContext) *
                  llama2_7b().kvBytesPerToken();
    EXPECT_EQ(sub->requiredBytes(inst, nullptr, 250.0), floor);

    // Three requests of input 2000, avg output 250: sum exceeds Lmin.
    for (int i = 0; i < 3; ++i) {
        Request &r = makeRequest(2000);
        inst.decodeBatch.push_back(&r);
    }
    Bytes expect = static_cast<Bytes>(3 * (2000 + 250)) *
                   llama2_7b().kvBytesPerToken();
    EXPECT_EQ(sub->requiredBytes(inst, nullptr, 250.0), expect);
}

TEST_F(MemFixture, RequiredBytesUsesActualWhenPastAverage)
{
    Instance &inst = addInstance(1ULL << 30);
    Request &r = makeRequest(3000, /*generated=*/700); // beyond O_bar
    inst.decodeBatch.push_back(&r);
    Request &r2 = makeRequest(3000, 100); // below O_bar
    inst.decodeBatch.push_back(&r2);
    Bytes expect = static_cast<Bytes>((3000 + 700) + (3000 + 250)) *
                   llama2_7b().kvBytesPerToken();
    EXPECT_EQ(sub->requiredBytes(inst, nullptr, 250.0), expect);
}

// ------------------------------------------------------------------
// Watermark plan.
// ------------------------------------------------------------------

TEST_F(MemFixture, PlanNoResizeWhenTargetSuffices)
{
    Instance &inst = addLoadedInstance(8ULL << 30);
    Request &r = makeRequest(1000);
    auto plan = sub->planAdmit(inst, r, 250.0);
    EXPECT_TRUE(plan.ok);
    EXPECT_FALSE(plan.needsResize);
    EXPECT_EQ(plan.target, inst.kvTarget);
}

TEST_F(MemFixture, PlanScalesUpToRecommendation)
{
    Instance &inst = addLoadedInstance(2ULL << 30);
    // Fill with enough requests that require > target.
    for (int i = 0; i < 4; ++i) {
        Request &r = makeRequest(2000);
        inst.decodeBatch.push_back(&r);
    }
    Request &incoming = makeRequest(2000);
    auto plan = sub->planAdmit(inst, incoming, 250.0);
    ASSERT_TRUE(plan.ok);
    EXPECT_TRUE(plan.needsResize);
    EXPECT_FALSE(plan.compromise);
    Bytes require = sub->requiredBytes(inst, &incoming, 250.0);
    EXPECT_EQ(plan.target,
              static_cast<Bytes>(static_cast<double>(require) * 1.25));
}

TEST_F(MemFixture, PlanCompromisesWhenRecommendationDoesNotFit)
{
    // Saturate the optimistic budget with a sibling so only the bare
    // requirement fits.
    Instance &hog = addLoadedInstance(Bytes{36'000'000'000});
    (void)hog;
    Instance &inst = addLoadedInstance(2ULL << 30);
    for (int i = 0; i < 9; ++i) {
        Request &r = makeRequest(2400);
        inst.decodeBatch.push_back(&r);
    }
    Request &incoming = makeRequest(2400);
    auto plan = sub->planAdmit(inst, incoming, 250.0);
    ASSERT_TRUE(plan.ok);
    EXPECT_TRUE(plan.compromise);
    EXPECT_EQ(plan.target, sub->requiredBytes(inst, &incoming, 250.0));
}

TEST_F(MemFixture, PlanRejectsWhenNothingFits)
{
    Instance &hog = addLoadedInstance(Bytes{45'000'000'000});
    (void)hog;
    Instance &inst = addLoadedInstance(2ULL << 30);
    for (int i = 0; i < 20; ++i) {
        Request &r = makeRequest(3000);
        inst.decodeBatch.push_back(&r);
    }
    Request &incoming = makeRequest(3000);
    auto plan = sub->planAdmit(inst, incoming, 250.0);
    EXPECT_FALSE(plan.ok);
}

TEST_F(MemFixture, LazyScaleDownHysteresis)
{
    Instance &inst = addLoadedInstance(12ULL << 30);
    Request &r = makeRequest(2000);
    inst.decodeBatch.push_back(&r);
    // Slightly over-allocated: recommend*(1+w) is NOT below target.
    Bytes require = sub->requiredBytes(inst, nullptr, 250.0);
    inst.kvTarget = static_cast<Bytes>(require * 1.5);
    inst.kv.setAllocBytes(inst.kvTarget);
    sub->onRequestComplete(inst, 250.0);
    EXPECT_FALSE(inst.resizeInFlight); // hysteresis suppressed it

    // Far over-allocated: scale-down triggers.
    inst.kvTarget = static_cast<Bytes>(require * 2.0);
    inst.kv.setAllocBytes(inst.kvTarget);
    sub->onRequestComplete(inst, 250.0);
    EXPECT_TRUE(inst.resizeInFlight);
    sim.run();
    EXPECT_EQ(inst.kv.allocBytes(),
              static_cast<Bytes>(static_cast<double>(require) * 1.25));
}

// ------------------------------------------------------------------
// Load / unload lifecycle and accounting.
// ------------------------------------------------------------------

TEST_F(MemFixture, LoadHoldsWeightsPlusKv)
{
    Instance &inst = addInstance(4ULL << 30);
    sub->beginLoad(inst, nullptr);
    EXPECT_EQ(part->mem.used(),
              llama2_7b().weightBytes() + (4ULL << 30));
    EXPECT_EQ(inst.state, InstanceState::Loading);
    sim.run();
    EXPECT_EQ(inst.state, InstanceState::Active);
    EXPECT_GT(inst.loadDuration, 0.5);
}

TEST_F(MemFixture, UnloadReleasesEverything)
{
    Instance &inst = addLoadedInstance(4ULL << 30);
    bool done = false;
    sub->beginUnload(inst, [&] { done = true; });
    EXPECT_EQ(inst.state, InstanceState::Unloading);
    // Optimistic budget drops immediately (scale-down semantics).
    EXPECT_EQ(sub->committed(), 0u);
    // Physical release only on completion.
    EXPECT_GT(part->mem.used(), 0u);
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(part->mem.used(), 0u);
    EXPECT_EQ(inst.state, InstanceState::Reclaimed);
}

TEST_F(MemFixture, CommittedSumsWeightsAndTargets)
{
    Instance &a = addLoadedInstance(4ULL << 30);
    Instance &b = addLoadedInstance(6ULL << 30);
    EXPECT_EQ(sub->committed(), a.model.weightBytes() + (4ULL << 30) +
                                    b.model.weightBytes() + (6ULL << 30));
}

TEST_F(MemFixture, CanPlaceKeepsReserve)
{
    // An empty 80 GB partition must not accept a placement that
    // pledges more than (1 - reserve) of it.
    Bytes almost_all = part->mem.capacity() - llama2_7b().weightBytes();
    EXPECT_FALSE(sub->canPlace(llama2_7b().weightBytes(), almost_all));
    EXPECT_TRUE(sub->canPlace(llama2_7b().weightBytes(), 4ULL << 30));
}

TEST_F(MemFixture, ParkedLoadWaitsForRelease)
{
    Instance &hog = addLoadedInstance(60ULL << 30);
    Instance &inst = addInstance(4ULL << 30);
    sub->beginLoad(inst, nullptr);
    // Physically parked: the hog leaves no room.
    EXPECT_EQ(sub->parkedOps(), 1u);
    EXPECT_FALSE(inst.memResident);
    // Releasing the hog drains the station and the load proceeds.
    sub->beginUnload(hog, nullptr);
    sim.run();
    EXPECT_EQ(inst.state, InstanceState::Active);
    EXPECT_EQ(sub->parkedOps(), 0u);
}

TEST_F(MemFixture, ResizeOnParkedLoadDoesNotCorruptLedger)
{
    // Regression test: committing a bigger KV target while the load is
    // still parked must not execute a resize (which would release
    // bytes that were never held).
    Instance &hog = addLoadedInstance(60ULL << 30);
    Instance &inst = addInstance(2ULL << 30);
    sub->beginLoad(inst, nullptr);
    ASSERT_EQ(sub->parkedOps(), 1u);
    Bytes used_before = part->mem.used();
    inst.kvTarget = 8ULL << 30;
    // This must be a no-op while the load is parked.
    MemorySubsystem::Plan plan;
    plan.ok = true;
    plan.needsResize = true;
    plan.target = 8ULL << 30;
    sub->commitPlan(inst, plan);
    sim.run();
    EXPECT_EQ(part->mem.used(), used_before);
    EXPECT_FALSE(inst.resizeInFlight);
    // Unload the hog; the load executes with the *latest* target.
    sub->beginUnload(hog, nullptr);
    sim.run();
    EXPECT_EQ(inst.state, InstanceState::Active);
    EXPECT_EQ(inst.kv.allocBytes(), 8ULL << 30);
}

// ------------------------------------------------------------------
// Orchestration: the Fig. 18/19 scenario.
// ------------------------------------------------------------------

TEST_F(MemFixture, ScaleUpParksUntilScaleDownCompletes)
{
    // Two instances nearly filling the node; A scales down while B
    // wants to scale up; B's transient only fits after A's release
    // (the Fig. 18 scenario the orchestrator defuses).
    const Bytes kA = 30'000'000'000, kADown = 10'000'000'000;
    const Bytes kB = 12'000'000'000, kBUp = 30'000'000'000;
    Instance &a = addLoadedInstance(kA);
    Instance &b = addLoadedInstance(kB);
    MemorySubsystem::Plan down;
    down.ok = true;
    down.needsResize = true;
    down.target = kADown;
    sub->commitPlan(a, down);
    EXPECT_TRUE(a.resizeInFlight);

    MemorySubsystem::Plan up;
    up.ok = true;
    up.needsResize = true;
    up.target = kBUp;
    sub->commitPlan(b, up);
    EXPECT_FALSE(b.resizeInFlight);
    EXPECT_EQ(sub->parkedOps(), 1u);

    sim.run();
    EXPECT_EQ(a.kv.allocBytes(), kADown);
    EXPECT_EQ(b.kv.allocBytes(), kBUp);
    EXPECT_EQ(sub->parkedOps(), 0u);
    EXPECT_EQ(part->mem.oomEvents(), 0u);
}

TEST_F(MemFixture, FollowUpResizeCoalesces)
{
    Instance &inst = addLoadedInstance(4ULL << 30);
    MemorySubsystem::Plan p1;
    p1.ok = true;
    p1.needsResize = true;
    p1.target = 6ULL << 30;
    sub->commitPlan(inst, p1);
    EXPECT_TRUE(inst.resizeInFlight);
    // While in flight, a second demand raises the target again.
    MemorySubsystem::Plan p2 = p1;
    p2.target = 9ULL << 30;
    sub->commitPlan(inst, p2);
    sim.run();
    EXPECT_EQ(inst.kv.allocBytes(), 9ULL << 30);
}

TEST_F(MemFixture, ScalingTimeIsAccounted)
{
    Instance &inst = addLoadedInstance(4ULL << 30);
    MemorySubsystem::Plan p;
    p.ok = true;
    p.needsResize = true;
    p.target = 16ULL << 30;
    sub->commitPlan(inst, p);
    sim.run();
    EXPECT_GT(inst.scalingTime, 0.0);
}

TEST_F(MemFixture, EmergencyGrowResults)
{
    Instance &inst = addLoadedInstance(2ULL << 30);
    // Fill usage close to the allocation.
    ASSERT_TRUE(inst.kv.reserve(inst.kv.capacityTokens() - 8));
    auto res = sub->tryEmergencyGrow(inst, 250.0);
    EXPECT_EQ(res, MemorySubsystem::GrowResult::Executing);
    sim.run();
    EXPECT_GT(inst.kv.allocBytes(), 2ULL << 30);
}

TEST_F(MemFixture, EmergencyGrowRejectedWhenBudgetFull)
{
    Instance &hog = addLoadedInstance(Bytes{45'000'000'000});
    (void)hog;
    Instance &inst = addLoadedInstance(Bytes{8'000'000'000});
    // A batch whose Eq. 2 requirement dwarfs anything the budget could
    // still provide.
    for (int i = 0; i < 30; ++i) {
        Request &r = makeRequest(2500);
        inst.decodeBatch.push_back(&r);
    }
    auto res = sub->tryEmergencyGrow(inst, 250.0);
    EXPECT_EQ(res, MemorySubsystem::GrowResult::Rejected);
}

// ------------------------------------------------------------------
// Property: random scaling storms never violate the physical ledger.
// ------------------------------------------------------------------

class MemoryStorm : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MemoryStorm, NeverOoms)
{
    Simulator sim;
    Node node(0, a100_80g(), 1);
    Partition *part = node.partitions()[0].get();
    MemorySubsystem sub(sim, *part, 0.25, [] {});
    Rng rng(GetParam());

    std::vector<std::unique_ptr<Instance>> pool;
    std::vector<Instance *> live;
    InstanceId next_id = 1;
    ModelSpec m = llama2_7b();

    // Drive 300 random operations interleaved with time advancement.
    for (int step = 0; step < 300; ++step) {
        double dice = rng.uniform();
        if (dice < 0.3 || live.empty()) {
            // Try to place a new instance.
            Bytes kv = static_cast<Bytes>(
                rng.uniform(1.0, 8.0) * (1ULL << 30));
            if (sub.canPlace(m.weightBytes(), kv)) {
                auto inst = std::make_unique<Instance>(next_id++, 0, m,
                                                       part, a100_80g(),
                                                       kv);
                part->instances.push_back(inst.get());
                live.push_back(inst.get());
                sub.beginLoad(*inst, nullptr);
                pool.push_back(std::move(inst));
            }
        } else if (dice < 0.7) {
            // Random resize on a live instance via the plan path.
            Instance *inst =
                live[static_cast<std::size_t>(rng.uniform()) % 1 +
                     rng.engine()() % live.size()];
            if (inst->state == InstanceState::Active ||
                inst->state == InstanceState::Loading) {
                Bytes target = static_cast<Bytes>(
                    rng.uniform(0.5, 12.0) * (1ULL << 30));
                Bytes head = sub.committed() - inst->kvTarget;
                if (head + target <= sub.capacity()) {
                    MemorySubsystem::Plan p;
                    p.ok = true;
                    p.needsResize = true;
                    p.target = target;
                    sub.commitPlan(*inst, p);
                }
            }
        } else if (!live.empty()) {
            // Unload one.
            std::size_t idx = rng.engine()() % live.size();
            Instance *inst = live[idx];
            if (inst->state == InstanceState::Active &&
                !inst->resizeInFlight) {
                sub.beginUnload(*inst, nullptr);
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(idx));
            }
        }
        sim.runUntil(sim.now() + rng.uniform(0.0, 0.5));
        // The invariant the orchestrator exists to defend:
        ASSERT_EQ(part->mem.oomEvents(), 0u) << "step " << step;
        ASSERT_LE(part->mem.used(), part->mem.capacity());
    }
    sim.run();
    EXPECT_EQ(part->mem.oomEvents(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryStorm,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
} // namespace slinfer
