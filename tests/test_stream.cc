/**
 * @file
 * Streaming subsystem tests: the `.strc`/`.strz` codecs (round trips,
 * multi-chunk files, torn-write recovery) and the headline contract —
 * a streaming replay's Report is byte-identical to the materialized
 * oracle across a seeded fuzz matrix (plain, lockstep-parallel, and
 * chaos variants).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unistd.h>
#include <vector>

#include "chaos/chaos.hh"
#include "harness/session.hh"
#include "stream/codec.hh"
#include "stream/source.hh"

namespace slinfer
{
namespace
{

/** Unique temp path per test (tests may run in parallel processes). */
std::string
tmpPath(const std::string &stem)
{
    return testing::TempDir() + "slinfer_" + stem + "_" +
           std::to_string(::getpid());
}

std::string
readFileBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

// --------------------------------------------------------------------
// Range coder
// --------------------------------------------------------------------

TEST(RangeCoder, ByteStreamRoundTrip)
{
    Rng rng(99);
    std::vector<std::uint8_t> bytes;
    for (int i = 0; i < 20000; ++i) {
        // A skewed source so the context model has something to learn.
        bytes.push_back(static_cast<std::uint8_t>(
            rng.uniform() < 0.8 ? rng.uniformInt(0, 7)
                                : rng.uniformInt(0, 255)));
    }

    std::string comp;
    {
        stream::ByteModel model;
        stream::RangeEncoder enc(comp);
        for (std::uint8_t b : bytes)
            model.encode(enc, b);
        enc.finish();
    }
    EXPECT_LT(comp.size(), bytes.size()); // skew must actually compress

    stream::ByteModel model;
    stream::RangeDecoder dec(
        reinterpret_cast<const std::uint8_t *>(comp.data()),
        comp.size());
    for (std::size_t i = 0; i < bytes.size(); ++i)
        ASSERT_EQ(model.decode(dec), bytes[i]) << "at byte " << i;
}

TEST(RangeCoder, AdaptiveBitModelRoundTrip)
{
    Rng rng(7);
    std::vector<int> bits;
    for (int i = 0; i < 50000; ++i)
        bits.push_back(rng.uniform() < 0.05 ? 1 : 0);

    std::string comp;
    {
        stream::BitModel m;
        stream::RangeEncoder enc(comp);
        for (int b : bits)
            enc.encode(m, b);
        enc.finish();
    }
    // 5% ones ≈ 0.29 bits/bit entropy; adaptive model should land well
    // under 1 bit/bit.
    EXPECT_LT(comp.size(), bits.size() / 8 * 0.6);

    stream::BitModel m;
    stream::RangeDecoder dec(
        reinterpret_cast<const std::uint8_t *>(comp.data()),
        comp.size());
    for (std::size_t i = 0; i < bits.size(); ++i)
        ASSERT_EQ(dec.decode(m), bits[i]) << "at bit " << i;
}

// --------------------------------------------------------------------
// .strc round trips
// --------------------------------------------------------------------

std::vector<stream::TraceRecord>
syntheticRecords(std::size_t n, bool lengths, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<stream::TraceRecord> recs;
    recs.reserve(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        // Irregular gaps incl. exact ties and long jumps: the delta
        // coder must reproduce every double bit-for-bit.
        double gap = rng.uniform() < 0.1 ? 0.0 : rng.exponential(4.0);
        t += gap;
        stream::TraceRecord r;
        r.time = t;
        r.model = static_cast<std::uint32_t>(rng.uniformInt(0, 36));
        if (lengths) {
            r.inputLen =
                static_cast<std::uint32_t>(rng.uniformInt(1, 4000));
            r.targetOutput =
                static_cast<std::uint32_t>(rng.uniformInt(1, 900));
        }
        recs.push_back(r);
    }
    return recs;
}

void
roundTrip(const std::vector<stream::TraceRecord> &recs, bool lengths,
          std::uint32_t chunkCap, const std::string &path)
{
    stream::StrcHeader hdr;
    hdr.hasLengths = lengths;
    hdr.numModels = 37;
    hdr.duration = recs.empty() ? 0.0 : recs.back().time;
    std::string err;
    stream::StrcWriter w;
    ASSERT_TRUE(w.open(path, hdr, &err, chunkCap)) << err;
    for (const auto &r : recs)
        w.add(r);
    ASSERT_TRUE(w.finish(&err)) << err;

    stream::StrcReader rd;
    ASSERT_TRUE(rd.open(path, &err)) << err;
    EXPECT_FALSE(rd.recovered());
    EXPECT_EQ(rd.recordCount(), recs.size());
    EXPECT_EQ(rd.header().totalRequests, recs.size());
    EXPECT_EQ(rd.header().hasLengths, lengths);
    EXPECT_EQ(rd.header().numModels, 37u);

    stream::TraceRecord got;
    for (std::size_t i = 0; i < recs.size(); ++i) {
        ASSERT_TRUE(rd.next(got)) << "record " << i;
        // Bitwise, not approximate: replay determinism rides on it.
        EXPECT_EQ(got.time, recs[i].time) << i;
        EXPECT_EQ(got.model, recs[i].model) << i;
        EXPECT_EQ(got.inputLen, recs[i].inputLen) << i;
        EXPECT_EQ(got.targetOutput, recs[i].targetOutput) << i;
    }
    EXPECT_FALSE(rd.next(got));
    std::remove(path.c_str());
}

TEST(Strc, RoundTripWithLengths)
{
    roundTrip(syntheticRecords(5000, true, 11), true,
              stream::kStrcChunkCap, tmpPath("rt_len") + ".strc");
}

TEST(Strc, RoundTripWithoutLengths)
{
    roundTrip(syntheticRecords(5000, false, 12), false,
              stream::kStrcChunkCap, tmpPath("rt_nolen") + ".strc");
}

TEST(Strc, MultiChunkSmallCap)
{
    // 23 forces ragged chunk boundaries (5000 = 217*23 + 9).
    roundTrip(syntheticRecords(5000, true, 13), true, 23,
              tmpPath("rt_chunky") + ".strc");
}

TEST(Strc, EmptyFileRoundTrips)
{
    roundTrip({}, false, stream::kStrcChunkCap,
              tmpPath("rt_empty") + ".strc");
}

TEST(Strc, CompressesWellBelowRawSize)
{
    auto recs = syntheticRecords(100000, true, 21);
    std::string path = tmpPath("ratio") + ".strc";
    stream::StrcHeader hdr;
    hdr.hasLengths = true;
    hdr.numModels = 37;
    std::string err;
    stream::StrcWriter w;
    ASSERT_TRUE(w.open(path, hdr, &err));
    for (const auto &r : recs)
        w.add(r);
    ASSERT_TRUE(w.finish(&err)) << err;
    std::size_t raw = recs.size() * sizeof(stream::TraceRecord);
    std::size_t packed = readFileBytes(path).size();
    // The context-model coder should beat raw structs by >2x even on
    // high-entropy synthetic input.
    EXPECT_LT(packed * 2, raw) << packed << " vs " << raw;
    std::remove(path.c_str());
}

TEST(Strc, TruncatedFileRecoversCompleteChunks)
{
    auto recs = syntheticRecords(2000, true, 31);
    std::string path = tmpPath("torn") + ".strc";
    stream::StrcHeader hdr;
    hdr.hasLengths = true;
    hdr.numModels = 37;
    std::string err;
    stream::StrcWriter w;
    ASSERT_TRUE(w.open(path, hdr, &err, 100)); // 20 chunks
    for (const auto &r : recs)
        w.add(r);
    ASSERT_TRUE(w.finish(&err)) << err;

    std::string full = readFileBytes(path);

    // Cut at many points: mid-index, mid-chunk, mid-header-of-chunk.
    for (std::size_t cut : {full.size() - 5, full.size() / 2,
                            full.size() / 3, full.size() / 7}) {
        writeFileBytes(path, full.substr(0, cut));
        stream::StrcReader rd;
        ASSERT_TRUE(rd.open(path, &err)) << err << " cut=" << cut;
        EXPECT_TRUE(rd.recovered()) << cut;
        EXPECT_LE(rd.recordCount(), recs.size());
        // Whatever survived must be a prefix, chunk-aligned, intact.
        EXPECT_EQ(rd.recordCount() % 100, 0u) << cut;
        stream::TraceRecord got;
        for (std::uint64_t i = 0; i < rd.recordCount(); ++i) {
            ASSERT_TRUE(rd.next(got));
            ASSERT_EQ(got.time, recs[i].time) << "cut=" << cut;
            ASSERT_EQ(got.model, recs[i].model);
        }
        EXPECT_FALSE(rd.next(got));
    }

    // A flipped byte inside a chunk payload with an intact index is
    // real mid-file corruption, not a torn tail: silently skipping the
    // chunk would replay a hole, so the reader fail-stops on its CRC.
    std::string corrupt = full;
    corrupt[full.size() / 2] ^= 0x40;
    writeFileBytes(path, corrupt);
    EXPECT_DEATH(
        {
            stream::StrcReader rd;
            std::string e;
            if (rd.open(path, &e)) {
                stream::TraceRecord got;
                while (rd.next(got)) {
                }
            }
            // If the index CRC happened to catch it, open fails — that
            // is also fail-stop; die explicitly so the DEATH matches.
            fatal("checksum mismatch");
        },
        "checksum mismatch");
    std::remove(path.c_str());
}

// --------------------------------------------------------------------
// .strz byte-stream store
// --------------------------------------------------------------------

TEST(Strz, AppendReadAllRoundTrip)
{
    std::string path = tmpPath("strz") + ".strz";
    std::remove(path.c_str());
    std::string err;

    std::string expect;
    {
        stream::StrzWriter w;
        ASSERT_TRUE(w.open(path, /*truncate=*/true, &err)) << err;
        Rng rng(5);
        for (int i = 0; i < 10; ++i) {
            std::string block = "{\"line\":" + std::to_string(i) + ",";
            for (int j = 0; j < 200; ++j)
                block += static_cast<char>('a' + rng.uniformInt(0, 25));
            block += "}\n";
            ASSERT_TRUE(w.appendBlock(block, &err)) << err;
            expect += block;
        }
    }
    // Reopen for append (crash-resume shape) and add more.
    {
        stream::StrzWriter w;
        ASSERT_TRUE(w.open(path, /*truncate=*/false, &err)) << err;
        ASSERT_TRUE(w.appendBlock("tail\n", &err)) << err;
        expect += "tail\n";
    }

    std::string out;
    bool torn = false;
    ASSERT_TRUE(stream::strzReadAll(path, out, &err, &torn)) << err;
    EXPECT_FALSE(torn);
    EXPECT_EQ(out, expect);
    std::remove(path.c_str());
}

TEST(Strz, TornTailChunkIsDroppedMissingFileIsEmpty)
{
    std::string path = tmpPath("strz_torn") + ".strz";
    std::remove(path.c_str());
    std::string err, out;
    bool torn = false;

    // Missing file: empty output, ok.
    ASSERT_TRUE(stream::strzReadAll(path, out, &err, &torn));
    EXPECT_TRUE(out.empty());
    EXPECT_FALSE(torn);

    {
        stream::StrzWriter w;
        ASSERT_TRUE(w.open(path, true, &err)) << err;
        ASSERT_TRUE(w.appendBlock("first-block\n", &err));
        ASSERT_TRUE(w.appendBlock("second-block\n", &err));
    }
    std::string full = readFileBytes(path);
    // Tear the last chunk mid-payload: simulate a mid-append crash.
    writeFileBytes(path, full.substr(0, full.size() - 3));

    out.clear();
    ASSERT_TRUE(stream::strzReadAll(path, out, &err, &torn)) << err;
    EXPECT_TRUE(torn);
    EXPECT_EQ(out, "first-block\n");

    // Corrupting a *complete* chunk's payload is real corruption.
    std::string corrupt = full;
    corrupt[full.size() - 4] ^= 0x01;
    writeFileBytes(path, corrupt);
    out.clear();
    EXPECT_FALSE(stream::strzReadAll(path, out, &err, &torn));
    std::remove(path.c_str());
}

// --------------------------------------------------------------------
// Streaming replay == materialized oracle
// --------------------------------------------------------------------

/** A fast config small enough to fuzz many seeds. */
ExperimentConfig
fuzzConfig(std::uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.system = SystemKind::Slinfer;
    cfg.cluster.cpuNodes = 2;
    cfg.cluster.gpuNodes = 2;
    cfg.models = replicateModel(llama2_7b(), 6);
    AzureTraceConfig tc;
    tc.numModels = 6;
    tc.duration = 60.0;
    // ~180 requests/run: enough churn through a small lookahead window
    // (and through request recycling) to make byte-identity convincing.
    tc.perModelRpm = 30.0;
    tc.seed = seed;
    cfg.trace = generateAzureTrace(tc);
    cfg.duration = 60.0;
    cfg.seed = seed * 7919 + 17;
    return cfg;
}

Report
runStreaming(ExperimentConfig cfg, std::uint32_t lookahead)
{
    cfg.stream.enabled = true;
    cfg.stream.lookahead = lookahead;
    return runExperiment(cfg);
}

TEST(Streaming, TwentySeedFuzzMatchesMaterialized)
{
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        ExperimentConfig cfg = fuzzConfig(seed);
        Report oracle = runExperiment(cfg);
        // Tiny lookahead stresses window churn; big one approaches the
        // materialized shape. Both must be byte-identical.
        Report tight = runStreaming(cfg, 2);
        Report wide = runStreaming(cfg, 4096);
        ASSERT_EQ(toJson(oracle), toJson(tight)) << "seed " << seed;
        ASSERT_EQ(toJson(oracle), toJson(wide)) << "seed " << seed;
    }
}

TEST(Streaming, MatchesMaterializedUnderLockstepParallel)
{
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        ExperimentConfig cfg = fuzzConfig(seed);
        cfg.simThreads = 3;
        cfg.simWindow = 0.05;
        Report oracle = runExperiment(cfg);
        ASSERT_EQ(toJson(oracle), toJson(runStreaming(cfg, 64)))
            << "seed " << seed;
    }
}

TEST(Streaming, MatchesMaterializedUnderChaos)
{
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        ExperimentConfig cfg = fuzzConfig(seed);
        chaos::FaultProcess flap;
        flap.kind = chaos::FaultProcess::Kind::NodeFlap;
        flap.firstNode = 0;
        flap.lastNode = 3;
        flap.mtbf = 30.0;
        flap.mttr = 8.0;
        cfg.chaos.processes.push_back(flap);
        Report oracle = runExperiment(cfg);
        ASSERT_EQ(toJson(oracle), toJson(runStreaming(cfg, 64)))
            << "seed " << seed;
    }
}

TEST(Streaming, MatchesMaterializedWithTimelineInterventions)
{
    ExperimentConfig cfg = fuzzConfig(42);
    Intervention retire;
    retire.kind = Intervention::Kind::ModelRetire;
    retire.at = 20.0;
    retire.model = 2;
    cfg.timeline.push_back(retire);
    Intervention burst;
    burst.kind = Intervention::Kind::ArrivalBurst;
    burst.at = 30.0;
    burst.model = 0;
    burst.rpm = 300.0;
    burst.duration = 5.0;
    cfg.timeline.push_back(burst);
    Intervention fail;
    fail.kind = Intervention::Kind::NodeFail;
    fail.at = 25.0;
    fail.node = 1;
    cfg.timeline.push_back(fail);
    Intervention restore;
    restore.kind = Intervention::Kind::NodeRestore;
    restore.at = 40.0;
    restore.node = 1;
    cfg.timeline.push_back(restore);

    Report oracle = runExperiment(cfg);
    EXPECT_EQ(toJson(oracle), toJson(runStreaming(cfg, 8)));
}

TEST(Streaming, StrcReplayMatchesGeneratedTrace)
{
    // Pack the generated trace (times + models only), replay it from
    // disk, and demand byte-identity with the in-memory run: dataset
    // lengths must come out of lenRng_ in the same order either way.
    ExperimentConfig cfg = fuzzConfig(3);
    Report oracle = runExperiment(cfg);

    std::string path = tmpPath("replay") + ".strc";
    stream::StrcHeader hdr;
    hdr.hasLengths = false;
    hdr.numModels = static_cast<std::uint32_t>(cfg.models.size());
    hdr.duration = cfg.trace.duration;
    std::string err;
    stream::StrcWriter w;
    ASSERT_TRUE(w.open(path, hdr, &err, 512));
    for (const Arrival &a : cfg.trace.arrivals) {
        stream::TraceRecord r;
        r.time = a.time;
        r.model = a.model;
        w.add(r);
    }
    ASSERT_TRUE(w.finish(&err)) << err;

    ExperimentConfig replay = cfg;
    replay.trace = AzureTrace{};
    replay.stream.enabled = true;
    replay.stream.lookahead = 32;
    replay.stream.tracePath = path;
    Report fromDisk = runExperiment(replay);
    EXPECT_EQ(toJson(oracle), toJson(fromDisk));
    std::remove(path.c_str());
}

TEST(Streaming, PoolStaysBoundedByLookaheadPlusInFlight)
{
    ExperimentConfig cfg = fuzzConfig(9);
    // A denser trace so the bound is meaningful (~1000 arrivals).
    AzureTraceConfig tc;
    tc.numModels = 6;
    tc.duration = 60.0;
    tc.perModelRpm = 170.0;
    tc.seed = 9;
    cfg.trace = generateAzureTrace(tc);
    cfg.stream.enabled = true;
    cfg.stream.lookahead = 16;
    Session s(cfg);
    s.advanceTo(cfg.duration);
    ASSERT_NE(s.feed(), nullptr);
    EXPECT_TRUE(s.feed()->exhausted());
    // The pool's high-water mark is lookahead + peak in-flight — far
    // below the trace size for any nontrivial trace. The hard RSS
    // assertion lives in test_stream_rss.cc; this catches pooling
    // regressions (e.g. the reclaim hook silently never firing) fast.
    EXPECT_LT(s.streamPoolSize(), cfg.trace.arrivals.size() / 2)
        << "pool " << s.streamPoolSize() << " of "
        << cfg.trace.arrivals.size() << " arrivals";
    s.finish();
}

} // namespace
} // namespace slinfer
