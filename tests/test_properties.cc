/**
 * @file
 * Cross-cutting property tests: comparative claims from the paper's
 * evaluation that must hold for any seed — SLINFER's capacity advantage
 * at scale, memory safety under every system, the watermark's effect on
 * scaling overhead, and PD disaggregation's cost at low load.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "harness/experiment.hh"
#include "sim/lockstep.hh"

namespace slinfer
{
namespace
{

Report
runSystem(SystemKind sys, int num_models, std::uint64_t seed,
          Seconds duration = 300.0,
          ControllerConfig ctl = ControllerConfig{})
{
    ExperimentConfig cfg;
    cfg.system = sys;
    cfg.models = replicateModel(llama2_7b(), num_models);
    AzureTraceConfig tc;
    tc.numModels = num_models;
    tc.duration = duration;
    tc.seed = seed;
    cfg.trace = generateAzureTrace(tc);
    cfg.duration = duration;
    cfg.controller = ctl;
    cfg.seed = seed;
    return runExperiment(cfg);
}

class SeededComparison : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeededComparison, SlinferBeatsSllmAtScale)
{
    // Fig. 22: at high model counts SLINFER serves substantially more
    // SLO-met requests than exclusive allocation.
    Report slinfer = runSystem(SystemKind::Slinfer, 64, GetParam());
    Report sllm = runSystem(SystemKind::Sllm, 64, GetParam());
    EXPECT_GT(slinfer.sloMet, sllm.sloMet);
    EXPECT_GE(static_cast<double>(slinfer.sloMet),
              1.1 * static_cast<double>(sllm.sloMet));
}

TEST_P(SeededComparison, SlinferDropsFewerRequests)
{
    Report slinfer = runSystem(SystemKind::Slinfer, 64, GetParam());
    Report sllm = runSystem(SystemKind::Sllm, 64, GetParam());
    EXPECT_LT(slinfer.dropped, sllm.dropped);
}

TEST_P(SeededComparison, CpuAblationUsesMoreGpus)
{
    // Fig. 23: disabling the CPU path keeps GPU usage consistently
    // high.
    Report full = runSystem(SystemKind::Slinfer, 32, GetParam());
    Report no_cpu = runSystem(SystemKind::SlinferNoCpu, 32, GetParam());
    EXPECT_GT(no_cpu.avgGpuNodesUsed, full.avgGpuNodesUsed);
    EXPECT_DOUBLE_EQ(no_cpu.avgCpuNodesUsed, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededComparison,
                         ::testing::Values(5, 17, 23));

TEST(Properties, SharingAblationServesFewerAtScale)
{
    // Fig. 23: without sharing the deployment density collapses.
    Report full = runSystem(SystemKind::Slinfer, 64, 5);
    Report no_share = runSystem(SystemKind::SlinferNoSharing, 64, 5);
    EXPECT_GT(full.sloMet, no_share.sloMet);
}

TEST(Properties, PdDisaggregationCostsCapacity)
{
    // Table III: at serverless load levels PD disaggregation uses more
    // resources / serves less than aggregated serving.
    Report agg = runSystem(SystemKind::Slinfer, 32, 5);
    Report pd = runSystem(SystemKind::SlinferPD, 32, 5);
    EXPECT_GE(agg.sloMet, pd.sloMet);
}

TEST(Properties, WatermarkReducesScalingOverhead)
{
    // Fig. 31: watermark 0 spends far more lifetime on KV resizes than
    // the default 25%.
    ControllerConfig w0;
    w0.watermark = 0.0;
    ControllerConfig w25;
    w25.watermark = 0.25;
    Report r0 = runSystem(SystemKind::Slinfer, 24, 5, 300.0, w0);
    Report r25 = runSystem(SystemKind::Slinfer, 24, 5, 300.0, w25);
    EXPECT_GT(r0.scalingOverhead, r25.scalingOverhead);
}

TEST(Properties, HighWatermarkLowersKvUtilization)
{
    // Fig. 31: raising the watermark wastes allocation.
    ControllerConfig w25;
    w25.watermark = 0.25;
    ControllerConfig w100;
    w100.watermark = 1.00;
    Report r25 = runSystem(SystemKind::Slinfer, 24, 5, 300.0, w25);
    Report r100 = runSystem(SystemKind::Slinfer, 24, 5, 300.0, w100);
    EXPECT_GT(r25.kvUtilization, r100.kvUtilization);
}

TEST(Properties, MigrationRateStaysLow)
{
    // §IX-I5 reports 0-0.3%; our simulated substrate sits below 8%
    // at moderate load (see EXPERIMENTS.md for the recorded deviation).
    Report r = runSystem(SystemKind::Slinfer, 32, 5);
    EXPECT_LT(r.migrationRate, 0.08);
}

TEST(Properties, MoreNodesServeMore)
{
    // Fig. 32 shape: capacity grows with the cluster.
    auto run_with = [](int cpus, int gpus) {
        ExperimentConfig cfg;
        cfg.system = SystemKind::Slinfer;
        cfg.cluster.cpuNodes = cpus;
        cfg.cluster.gpuNodes = gpus;
        cfg.models = replicateModel(llama2_7b(), 64);
        AzureTraceConfig tc;
        tc.numModels = 64;
        tc.duration = 300.0;
        tc.seed = 5;
        cfg.trace = generateAzureTrace(tc);
        cfg.duration = 300.0;
        return runExperiment(cfg);
    };
    Report small = run_with(1, 1);
    Report large = run_with(4, 4);
    EXPECT_GT(large.sloMet, small.sloMet);
}

class MemorySafety : public ::testing::TestWithParam<SystemKind>
{
};

TEST_P(MemorySafety, NoSystemEverOoms)
{
    // Run each system on a stressful trace and assert the physical
    // ledger never rejected a hold (the orchestration invariant).
    ExperimentConfig cfg;
    cfg.system = GetParam();
    cfg.cluster.cpuNodes = 2;
    cfg.cluster.gpuNodes = 2;
    cfg.models = replicateModel(llama2_13b(), 24);
    AzureTraceConfig tc;
    tc.numModels = 24;
    tc.duration = 240.0;
    tc.seed = 9;
    cfg.trace = generateAzureTrace(tc);
    cfg.duration = 240.0;

    // Rebuild runExperiment inline to keep access to the nodes.
    Simulator sim;
    ClusterHandle cluster{buildCluster(cfg.cluster,
                                       systemPartitions(cfg.system)),
                          nullptr};
    auto &nodes = cluster.nodes;
    Recorder recorder;
    Dataset dataset(cfg.dataset);
    Rng len_rng = Rng(cfg.seed).fork(0x1E46);
    std::deque<Request> requests;
    RequestId next_id = 1;
    for (const Arrival &a : cfg.trace.arrivals) {
        const ModelSpec &spec = cfg.models[a.model];
        LengthSample len = dataset.sample(len_rng);
        Request req;
        req.id = next_id++;
        req.model = a.model;
        req.arrival = a.time;
        req.inputLen = std::clamp<Tokens>(len.input, 1,
                                          spec.maxContext - 64);
        req.targetOutput = std::clamp<Tokens>(
            len.output, 1, spec.maxContext - req.inputLen - 1);
        req.ttftSlo = cfg.controller.slo.ttft(req.inputLen);
        req.tpotSlo = cfg.controller.slo.tpot;
        requests.push_back(req);
    }
    std::vector<double> avg(cfg.models.size(), dataset.meanOutput());
    auto controller = makeSystem(cfg.system, sim, cluster, cfg.models,
                                 avg, cfg.controller, recorder);
    for (Request &req : requests) {
        sim.scheduleAt(req.arrival,
                       [&controller, &req] { controller->submit(&req); });
    }
    sim.run();

    for (const auto &node : nodes) {
        for (const auto &part : node->partitions()) {
            EXPECT_EQ(part->mem.oomEvents(), 0u)
                << systemName(cfg.system) << " node " << node->id();
            // Everything was eventually released.
            EXPECT_EQ(part->mem.used(), 0u);
        }
    }
    // Conservation: every request either completed or was dropped.
    EXPECT_EQ(recorder.completed() + recorder.dropped(),
              requests.size());
}

INSTANTIATE_TEST_SUITE_P(AllSystems, MemorySafety,
                         ::testing::Values(SystemKind::Sllm,
                                           SystemKind::SllmC,
                                           SystemKind::SllmCS,
                                           SystemKind::Slinfer,
                                           SystemKind::SlinferNoCpu,
                                           SystemKind::SlinferPD));

// ------------------------------------------------------------------
// Lockstep boundary merge (sim/lockstep.hh): the canonical replay
// order is a pure function of the staged batches' (time, lane order,
// intra-lane index) keys. Node-phase workers may finish lanes in any
// order, so the property that makes the engine thread-count invariant
// is exactly this: however the per-lane views are permuted, the merge
// reconstructs one identical global sequence.
// ------------------------------------------------------------------

TEST(LockstepMergeProperty, AnyLanePermutationYieldsTheSameSequence)
{
    std::mt19937_64 rng(0xC0FFEE);
    for (int trial = 0; trial < 200; ++trial) {
        // Random per-lane batches: lane-local times are sorted (a
        // lane stages in its own causal order) with deliberate
        // duplicates, and ties *across* lanes are common.
        const std::size_t lanes = 1 + rng() % 6;
        std::vector<std::vector<StagedRec>> batches(lanes);
        for (std::vector<StagedRec> &b : batches) {
            const std::size_t n = rng() % 8;
            double t = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                t += 0.05 * static_cast<double>(rng() % 3); // dup-friendly
                StagedRec rec;
                rec.time = t;
                b.push_back(rec);
            }
        }

        std::vector<LaneBatchView> views(lanes);
        for (std::size_t i = 0; i < lanes; ++i)
            views[i] = {i, &batches[i]};
        const auto canonical = lockstepMergeOrder(views);

        std::size_t total = 0;
        for (const std::vector<StagedRec> &b : batches)
            total += b.size();
        ASSERT_EQ(canonical.size(), total);

        // The merged sequence is globally time-sorted with lane order
        // then staging index breaking ties — the determinism key.
        for (std::size_t i = 1; i < canonical.size(); ++i) {
            const auto &[pl, pi] = canonical[i - 1];
            const auto &[cl, ci] = canonical[i];
            const double pt = (*views[pl].recs)[pi].time;
            const double ct = (*views[cl].recs)[ci].time;
            ASSERT_LE(pt, ct);
            if (pt == ct) {
                ASSERT_TRUE(pl < cl || (pl == cl && pi < ci));
            }
        }

        // The property: present the same batches in any worker
        // completion order (views shuffled), the merge must emit the
        // byte-identical (lane, index) sequence.
        for (int perm = 0; perm < 8; ++perm) {
            std::vector<LaneBatchView> shuffled = views;
            std::shuffle(shuffled.begin(), shuffled.end(), rng);
            EXPECT_EQ(lockstepMergeOrder(shuffled), canonical)
                << "trial " << trial << " perm " << perm;
        }
    }
}

} // namespace
} // namespace slinfer
