/**
 * @file
 * Shadow-validation tests (§VI-C): the three rejection cases, the
 * doomed-request exemption, loading-instance availability, and the
 * aggregate (case 3) decode check.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/shadow_validator.hh"

namespace slinfer
{
namespace
{

struct ShadowFixture : public ::testing::Test
{
    ShadowFixture() : node(0, xeon6462c(), 1)
    {
        part = node.partitions()[0].get();
        quant.profile(xeon6462c(), llama2_7b());
        quant.profile(a100_80g(), llama2_7b());
        validator = std::make_unique<ShadowValidator>(
            quant, ShadowConfig{1.10, 0.25, 500});
    }

    Instance &
    addInstance(const HardwareSpec &hw)
    {
        auto inst = std::make_unique<Instance>(nextId++, 0, llama2_7b(),
                                               part, hw, 32ULL << 30);
        inst->state = InstanceState::Active;
        part->instances.push_back(inst.get());
        pool.push_back(std::move(inst));
        return *pool.back();
    }

    Request &
    makeRequest(Seconds arrival, Tokens in, Tokens out,
                Tokens generated = 0)
    {
        auto r = std::make_unique<Request>();
        r->id = nextReq++;
        r->arrival = arrival;
        r->inputLen = in;
        r->targetOutput = out;
        r->generated = generated;
        r->ttftSlo = std::min(std::max(0.5, in / 512.0), 8.0);
        r->tpotSlo = 0.25;
        reqs.push_back(std::move(r));
        return *reqs.back();
    }

    Node node;
    Partition *part;
    Quantifier quant;
    std::unique_ptr<ShadowValidator> validator;
    std::vector<std::unique_ptr<Instance>> pool;
    std::vector<std::unique_ptr<Request>> reqs;
    InstanceId nextId = 1;
    RequestId nextReq = 1;
};

TEST_F(ShadowFixture, AdmitsToIdleInstance)
{
    Instance &inst = addInstance(xeon6462c());
    Request &r = makeRequest(0.0, 1024, 100);
    EXPECT_TRUE(validator->canAdmit(*part, &inst, r, 0.0, 0.0));
}

TEST_F(ShadowFixture, RejectsCase1PrefillTooLong)
{
    // A 34B model on the CPU: the prefill alone blows the TTFT SLO.
    quant.profile(xeon6462c(), codellama_34b());
    auto inst = std::make_unique<Instance>(nextId++, 0, codellama_34b(),
                                           part, xeon6462c(), 32ULL << 30);
    inst->state = InstanceState::Active;
    part->instances.push_back(inst.get());
    Request &r = makeRequest(0.0, 2048, 100);
    EXPECT_FALSE(validator->canAdmit(*part, inst.get(), r, 0.0, 0.0));
}

TEST_F(ShadowFixture, RejectsCase2ExistingRequestDelayed)
{
    // A large CPU decode batch running near its deadline budget: a
    // short-TTFT newcomer cannot squeeze its prefill in without either
    // being late itself or delaying the batch past its cumulative
    // deadlines.
    Instance &inst = addInstance(xeon6462c());
    std::vector<Request *> batch;
    for (int i = 0; i < 22; ++i) {
        Request &r = makeRequest(0.0, 2000, 400, /*generated=*/8);
        r.state = RequestState::Decode;
        inst.decodeBatch.push_back(&r);
        batch.push_back(&r);
    }
    Seconds now = batch[0]->deadlineForNextToken() - 0.05;
    Request &incoming = makeRequest(now, 256, 100); // TTFT SLO 0.5 s
    EXPECT_FALSE(validator->canAdmit(*part, &inst, incoming, now, now));
}

TEST_F(ShadowFixture, RejectsCase3AggregateDecode)
{
    // Four CPU instances each with sizeable batches: the sum of one
    // decode iteration across instances exceeds the 0.25 s TPOT.
    for (int i = 0; i < 4; ++i) {
        Instance &inst = addInstance(xeon6462c());
        for (int j = 0; j < 12; ++j) {
            Request &r = makeRequest(0.0, 1024, 200, 5);
            r.state = RequestState::Decode;
            inst.decodeBatch.push_back(&r);
        }
    }
    Request &incoming = makeRequest(10.0, 512, 50);
    EXPECT_FALSE(validator->aggregateDecodeFits(
        *part, part->instances[0], 1, incoming.contextLen()));
    EXPECT_FALSE(validator->canAdmit(*part, part->instances[0], incoming,
                                     10.0, 10.0));
}

TEST_F(ShadowFixture, AggregateFitsWithFewInstances)
{
    Instance &a = addInstance(xeon6462c());
    Request &r = makeRequest(0.0, 1024, 100, 3);
    r.state = RequestState::Decode;
    a.decodeBatch.push_back(&r);
    EXPECT_TRUE(validator->aggregateDecodeFits(*part, &a, 1, 1024));
}

TEST_F(ShadowFixture, ExcludedInstancesAreIgnored)
{
    // Same overload as the case-3 test, but excluding three of the
    // four instances clears the admission.
    std::vector<Instance *> insts;
    for (int i = 0; i < 4; ++i) {
        Instance &inst = addInstance(xeon6462c());
        insts.push_back(&inst);
        for (int j = 0; j < 12; ++j) {
            Request &r = makeRequest(0.0, 1024, 200, 5);
            r.state = RequestState::Decode;
            inst.decodeBatch.push_back(&r);
        }
    }
    // Excluding three of the four instances clears the aggregate
    // (case 3) check that rejected the crowded partition.
    Request &incoming = makeRequest(10.0, 512, 50);
    std::set<const Instance *> excl = {insts[1], insts[2], insts[3]};
    EXPECT_FALSE(validator->aggregateDecodeFits(
        *part, insts[0], 1, incoming.contextLen()));
    EXPECT_TRUE(validator->aggregateDecodeFits(
        *part, insts[0], 1, incoming.contextLen(), excl));
}

TEST_F(ShadowFixture, DoomedRequestDoesNotVetoAdmission)
{
    // A request slightly past its deadline is doomed regardless of the
    // newcomer; it may not veto the admission (only consume compute).
    Instance &inst = addInstance(xeon6462c());
    Request &doomed = makeRequest(0.0, 1024, 100, 2);
    doomed.state = RequestState::Decode;
    inst.decodeBatch.push_back(&doomed);
    Seconds now = doomed.deadlineForNextToken() + 0.3;
    Request &incoming = makeRequest(now, 1024, 50); // TTFT SLO 2 s
    EXPECT_TRUE(validator->canAdmit(*part, &inst, incoming, now, now));
}

TEST_F(ShadowFixture, DoomedCandidateCanStillBeReplaced)
{
    // An evicted request being re-placed has already lost its SLO; its
    // own lateness must not block finding a new home.
    Instance &inst = addInstance(xeon6462c());
    Request &evicted = makeRequest(0.0, 1024, 400, /*generated=*/50);
    Seconds now = evicted.deadlineForNextToken() + 10.0;
    EXPECT_TRUE(validator->canAdmit(*part, &inst, evicted, now, now));
}

TEST_F(ShadowFixture, CanAdmitNewOnEmptyPartition)
{
    Request &r = makeRequest(0.0, 1024, 100);
    // Cold start ready ~1 s later; grace covers it.
    EXPECT_TRUE(validator->canAdmitNew(*part, llama2_7b(), xeon6462c(), r,
                                       0.0, 0.0, 1.0));
}

TEST_F(ShadowFixture, CanAdmitNewRespectsBusyNeighbors)
{
    for (int i = 0; i < 3; ++i) {
        Instance &inst = addInstance(xeon6462c());
        for (int j = 0; j < 12; ++j) {
            Request &r = makeRequest(0.0, 1024, 200, 5);
            r.state = RequestState::Decode;
            inst.decodeBatch.push_back(&r);
        }
    }
    Request &r = makeRequest(10.0, 1024, 100);
    EXPECT_FALSE(validator->canAdmitNew(*part, llama2_7b(), xeon6462c(),
                                        r, 10.0, 10.0, 11.0));
}

TEST_F(ShadowFixture, LoadingInstanceDelaysItsPrefills)
{
    Instance &inst = addInstance(xeon6462c());
    inst.state = InstanceState::Loading;
    inst.createdAt = 0.0;
    inst.loadDuration = 1.0;
    // A queued request whose TTFT cannot survive waiting for the load
    // plus a long prefill.
    Request &queued = makeRequest(0.0, 256, 50); // TTFT SLO = 0.5 s
    queued.state = RequestState::Prefill;
    inst.prefillQueue.push_back(&queued);
    Request &incoming = makeRequest(0.0, 256, 50);
    // The queued request is doomed by the load alone (no grace in this
    // synthetic setup), so it must not veto the incoming one... but the
    // incoming rides the same loading instance, so it is late too.
    EXPECT_FALSE(validator->canAdmit(*part, &inst, incoming, 0.0, 0.0));
}

TEST_F(ShadowFixture, GpuAbsorbsWhatCpuCannot)
{
    // The identical load that fails on the CPU passes on an A100.
    Node gpu_node(1, a100_80g(), 1);
    Partition *gpu_part = gpu_node.partitions()[0].get();
    auto gi = std::make_unique<Instance>(nextId++, 0, llama2_7b(),
                                         gpu_part, a100_80g(),
                                         32ULL << 30);
    gi->state = InstanceState::Active;
    gpu_part->instances.push_back(gi.get());
    for (int j = 0; j < 12; ++j) {
        Request &r = makeRequest(0.0, 1024, 200, 5);
        r.state = RequestState::Decode;
        gi->decodeBatch.push_back(&r);
    }
    Request &incoming = makeRequest(10.0, 2048, 100);
    EXPECT_TRUE(validator->canAdmit(*gpu_part, gi.get(), incoming, 10.0,
                                    10.0));
}

TEST_F(ShadowFixture, PartitionBusyUntilDelaysEverything)
{
    Instance &inst = addInstance(xeon6462c());
    Request &r = makeRequest(0.0, 256, 50); // TTFT 0.5 s
    // The partition is busy with someone else's long iteration until
    // after the candidate's deadline.
    EXPECT_FALSE(validator->canAdmit(*part, &inst, r, 0.0, /*busy=*/3.0));
    EXPECT_TRUE(validator->canAdmit(*part, &inst, r, 0.0, 0.0));
}

} // namespace
} // namespace slinfer
