/**
 * @file
 * Session-lifecycle tests: split-advance determinism (stepping is pure
 * observation), live sampling invariants, every intervention kind, the
 * timeline parser, and the timeline-driven catalog scenarios.
 */

#include <gtest/gtest.h>

#include "harness/session.hh"
#include "scenario/scenario.hh"
#include "scenario/timeline.hh"

namespace slinfer
{
namespace
{

/** A small, fast experiment shared by most tests below. */
ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.system = SystemKind::Slinfer;
    cfg.cluster.cpuNodes = 2;
    cfg.cluster.gpuNodes = 2;
    cfg.models = replicateModel(llama2_7b(), 8);
    AzureTraceConfig tc;
    tc.numModels = 8;
    tc.duration = 120.0;
    tc.seed = 3;
    cfg.trace = generateAzureTrace(tc);
    cfg.duration = 120.0;
    return cfg;
}

TEST(Session, SplitAdvanceIsByteIdenticalToOneShot)
{
    ExperimentConfig cfg = smallConfig();
    Report oneShot = runExperiment(cfg);

    Session split(cfg);
    split.advanceTo(cfg.duration / 2);
    split.advanceTo(cfg.duration);
    Report stepped = split.finish();

    EXPECT_EQ(toJson(oneShot), toJson(stepped));
}

TEST(Session, ManyStepsAndSamplingDoNotPerturbTheRun)
{
    ExperimentConfig cfg = smallConfig();
    Report oneShot = runExperiment(cfg);

    Session s(cfg);
    for (int i = 1; i <= 10; ++i) {
        s.advanceBy(cfg.duration / 10);
        MetricsView v = s.sample(); // observation must be free
        EXPECT_EQ(v.inFlight, v.arrived - v.completed - v.dropped);
    }
    EXPECT_EQ(toJson(oneShot), toJson(s.finish()));
}

TEST(Session, SampleCountersAreMonotoneAndConsistent)
{
    ExperimentConfig cfg = smallConfig();
    Session s(cfg);
    EXPECT_DOUBLE_EQ(s.duration(), 120.0);

    std::size_t prev_arrived = 0, prev_completed = 0, prev_dropped = 0;
    for (int i = 1; i <= 6; ++i) {
        s.advanceTo(20.0 * i);
        MetricsView v = s.sample();
        EXPECT_DOUBLE_EQ(v.time, 20.0 * i);
        EXPECT_GE(v.arrived, prev_arrived);
        EXPECT_GE(v.completed, prev_completed);
        EXPECT_GE(v.dropped, prev_dropped);
        EXPECT_EQ(v.queueDepthPerModel.size(), cfg.models.size());
        EXPECT_GE(v.instancesCreated, v.instancesLive);
        EXPECT_GE(v.busySecondsCpu, 0.0);
        EXPECT_GE(v.busySecondsGpu, 0.0);
        prev_arrived = v.arrived;
        prev_completed = v.completed;
        prev_dropped = v.dropped;
    }
    Report r = s.finish();
    EXPECT_TRUE(s.finished());
    EXPECT_EQ(r.completed + r.dropped, r.totalRequests);
}

TEST(Session, WindowedRunMatchesUnwindowedScalars)
{
    ExperimentConfig cfg = smallConfig();
    Report plain = runExperiment(cfg);
    cfg.windows = 4;
    Report windowed = runExperiment(cfg);

    ASSERT_EQ(windowed.windows.size(), 4u);
    // Windowing is observation only: every scalar stays bit-equal.
    EXPECT_EQ(plain.totalRequests, windowed.totalRequests);
    EXPECT_DOUBLE_EQ(plain.p95Ttft, windowed.p95Ttft);
    EXPECT_DOUBLE_EQ(plain.kvUtilization, windowed.kvUtilization);
    EXPECT_DOUBLE_EQ(plain.scalingOverhead, windowed.scalingOverhead);
    // Window boundaries tile the metrics window; arrivals total up.
    std::size_t arrived = 0;
    for (std::size_t i = 0; i < windowed.windows.size(); ++i) {
        const Report::Window &w = windowed.windows[i];
        EXPECT_DOUBLE_EQ(w.end - w.start, 30.0);
        arrived += w.arrived;
    }
    EXPECT_EQ(arrived, windowed.totalRequests);
}

// ------------------------------------------------------------------
// Interventions
// ------------------------------------------------------------------

TEST(Session, NodeFailureDrainsAndRestoreRecovers)
{
    ExperimentConfig cfg = smallConfig();

    auto run = [&cfg]() {
        Session s(cfg);
        s.advanceTo(40.0);
        Intervention fail;
        fail.kind = Intervention::Kind::NodeFail;
        fail.node = 2; // first GPU node
        s.inject(fail);
        s.advanceTo(80.0);
        Intervention restore;
        restore.kind = Intervention::Kind::NodeRestore;
        restore.node = 2;
        s.inject(restore);
        s.advanceTo(cfg.duration);
        return s.finish();
    };

    Report a = run();
    Report b = run();
    // Interventions are deterministic...
    EXPECT_EQ(toJson(a), toJson(b));
    // ...and actually perturb the run.
    Report plain = runExperiment(cfg);
    EXPECT_NE(toJson(plain), toJson(a));
    EXPECT_EQ(a.completed + a.dropped, a.totalRequests);
}

TEST(Session, RedeployColdRestartsAModel)
{
    ExperimentConfig cfg = smallConfig();
    auto run = [&cfg]() {
        Session s(cfg);
        s.advanceTo(60.0);
        Intervention roll;
        roll.kind = Intervention::Kind::ModelRedeploy;
        roll.model = 0;
        s.inject(roll);
        s.advanceTo(cfg.duration);
        return s.finish();
    };
    Report a = run();
    Report b = run();
    EXPECT_EQ(toJson(a), toJson(b));
    EXPECT_EQ(a.completed + a.dropped, a.totalRequests);
}

TEST(Session, RetireCancelsFutureArrivals)
{
    ExperimentConfig cfg = smallConfig();
    Report plain = runExperiment(cfg);

    Session s(cfg);
    s.advanceTo(30.0);
    Intervention retire;
    retire.kind = Intervention::Kind::ModelRetire;
    retire.model = 0;
    s.inject(retire);
    s.advanceTo(cfg.duration);
    Report r = s.finish();

    // Cancelled arrivals never reach the controller.
    EXPECT_LT(r.totalRequests, plain.totalRequests);
    EXPECT_EQ(r.completed + r.dropped, r.totalRequests);
    // The retired model's queue stays empty afterwards.
}

TEST(Session, ArrivalScaleThinsAndClones)
{
    ExperimentConfig cfg = smallConfig();
    Report plain = runExperiment(cfg);

    auto scaled = [&cfg](double factor) {
        Session s(cfg);
        s.advanceTo(10.0);
        Intervention scale;
        scale.kind = Intervention::Kind::ArrivalScale;
        scale.factor = factor;
        s.inject(scale);
        s.advanceTo(cfg.duration);
        return s.finish();
    };
    Report doubled = scaled(2.0);
    Report thinned = scaled(0.3);
    EXPECT_GT(doubled.totalRequests, plain.totalRequests);
    EXPECT_LT(thinned.totalRequests, plain.totalRequests);
    EXPECT_EQ(doubled.completed + doubled.dropped,
              doubled.totalRequests);
}

TEST(Session, DeployThenBurstServesANewModel)
{
    ExperimentConfig cfg = smallConfig();
    Session s(cfg);
    s.advanceTo(20.0);

    Intervention deploy;
    deploy.kind = Intervention::Kind::ModelDeploy;
    deploy.spec = llama2_7b();
    s.inject(deploy);
    ASSERT_EQ(s.controller().models().size(), cfg.models.size() + 1);

    Intervention burst;
    burst.kind = Intervention::Kind::ArrivalBurst;
    burst.model = static_cast<int>(cfg.models.size()); // the new model
    burst.rpm = 120.0;
    burst.duration = 30.0;
    s.inject(burst);
    s.advanceTo(cfg.duration);
    Report r = s.finish();

    Report plain = runExperiment(cfg);
    EXPECT_GT(r.totalRequests, plain.totalRequests);
    EXPECT_EQ(r.completed + r.dropped, r.totalRequests);
}

// ------------------------------------------------------------------
// Timelines
// ------------------------------------------------------------------

TEST(Timeline, ParsesEveryKind)
{
    Timeline tl;
    std::string err;
    ASSERT_TRUE(scenario::parseTimeline(R"([
        {"at": 300, "kind": "node-fail", "node": 4},
        {"at": 600, "kind": "node-restore", "node": 4},
        {"at": 120, "kind": "model-redeploy", "model": 3},
        {"at": 240, "kind": "model-retire", "model": 2},
        {"at": 360, "kind": "model-deploy", "spec": "llama2-7b"},
        {"at": 480, "kind": "arrival-scale", "factor": 2.5, "model": 1},
        {"at": 540, "kind": "arrival-burst", "model": 0,
         "rpm": 90, "duration": 60}
    ])", tl, &err)) << err;
    ASSERT_EQ(tl.size(), 7u);
    EXPECT_EQ(tl[0].kind, Intervention::Kind::NodeFail);
    EXPECT_EQ(tl[0].node, 4);
    EXPECT_DOUBLE_EQ(tl[0].at, 300.0);
    EXPECT_EQ(tl[4].kind, Intervention::Kind::ModelDeploy);
    EXPECT_EQ(tl[4].spec.name, "Llama-2-7B");
    EXPECT_DOUBLE_EQ(tl[5].factor, 2.5);
    EXPECT_EQ(tl[6].model, 0);
    EXPECT_DOUBLE_EQ(tl[6].duration, 60.0);

    // The object form round-trips too.
    ASSERT_TRUE(scenario::parseTimeline(
        R"({"timeline": [{"at": 1, "kind": "node-fail", "node": 0}]})",
        tl, &err))
        << err;
    EXPECT_EQ(tl.size(), 1u);
}

TEST(Timeline, RejectsMalformedEntries)
{
    Timeline tl;
    std::string err;
    EXPECT_FALSE(scenario::parseTimeline("{", tl, &err));
    EXPECT_FALSE(scenario::parseTimeline(
        R"([{"kind": "node-fail", "node": 1}])", tl, &err)); // no at
    EXPECT_FALSE(scenario::parseTimeline(
        R"([{"at": 1, "kind": "wat"}])", tl, &err));
    EXPECT_FALSE(scenario::parseTimeline(
        R"([{"at": 1, "kind": "model-deploy", "spec": "gpt-17t"}])", tl,
        &err));
    EXPECT_FALSE(scenario::parseTimeline(
        R"([{"at": 1, "kind": "model-deploy"}])", tl, &err));
}

TEST(Timeline, ConfigTimelineIsDeterministic)
{
    ExperimentConfig cfg = smallConfig();
    Intervention fail;
    fail.kind = Intervention::Kind::NodeFail;
    fail.at = 40.0;
    fail.node = 3;
    Intervention restore;
    restore.kind = Intervention::Kind::NodeRestore;
    restore.at = 80.0;
    restore.node = 3;
    cfg.timeline = {fail, restore};

    Report a = runExperiment(cfg);
    Report b = runExperiment(cfg);
    EXPECT_EQ(toJson(a), toJson(b));
    EXPECT_EQ(a.completed + a.dropped, a.totalRequests);
}

TEST(Timeline, MalformedTimelineInConfigIsFatal)
{
    ExperimentConfig cfg = smallConfig();
    Intervention iv;
    iv.kind = Intervention::Kind::NodeFail; // node unset
    cfg.timeline = {iv};
    EXPECT_DEATH(runExperiment(cfg), "needs `node`");
}

// ------------------------------------------------------------------
// Timeline-driven catalog entries
// ------------------------------------------------------------------

class TimelineScenario : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TimelineScenario, RunsDeterministicallyWithInvariants)
{
    const scenario::Scenario *sc = scenario::byName(GetParam());
    ASSERT_NE(sc, nullptr);
    EXPECT_FALSE(sc->timeline.empty());
    Report a = scenario::runScenario(*sc, SystemKind::Slinfer);
    Report b = scenario::runScenario(*sc, SystemKind::Slinfer);
    EXPECT_EQ(toJson(a), toJson(b));
    EXPECT_EQ(a.completed + a.dropped, a.totalRequests);
    EXPECT_GT(a.completed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Catalog, TimelineScenario,
                         ::testing::Values("fleet-node-failure",
                                           "fleet-rolling-deploy",
                                           "fleet-surge-scale"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

// ------------------------------------------------------------------
// Up-front validation (ExperimentConfig::validate)
// ------------------------------------------------------------------

TEST(Validate, DatasetArityMismatchIsFatal)
{
    ExperimentConfig cfg = smallConfig();
    cfg.datasetPerModel = {DatasetKind::AzureConv}; // 1 entry, 8 models
    EXPECT_DEATH(runExperiment(cfg), "one entry per model");
}

TEST(Validate, LifecycleMisuseIsFatal)
{
    ExperimentConfig cfg = smallConfig();
    Session s(cfg);
    s.advanceTo(50.0);
    EXPECT_DEATH(s.advanceTo(10.0), "past");
    s.advanceTo(cfg.duration);
    s.finish();
    EXPECT_DEATH(s.finish(), "twice");
}

} // namespace
} // namespace slinfer
