/**
 * @file
 * Harness tests: cluster construction, the system factory, and
 * runExperiment's report invariants on small workloads.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace slinfer
{
namespace
{

TEST(Systems, NamesAndPartitions)
{
    EXPECT_STREQ(systemName(SystemKind::Sllm), "sllm");
    EXPECT_STREQ(systemName(SystemKind::SllmC), "sllm+c");
    EXPECT_STREQ(systemName(SystemKind::SllmCS), "sllm+c+s");
    EXPECT_STREQ(systemName(SystemKind::Slinfer), "SLINFER");
    EXPECT_EQ(systemPartitions(SystemKind::SllmCS), 2);
    EXPECT_EQ(systemPartitions(SystemKind::SllmCsPD), 2);
    EXPECT_EQ(systemPartitions(SystemKind::Slinfer), 1);
    EXPECT_EQ(systemPartitions(SystemKind::Sllm), 1);
}

TEST(Systems, SlugAndNameRoundTripOverAllSystems)
{
    for (SystemKind kind : allSystems()) {
        SCOPED_TRACE(systemSlug(kind));
        // Both the CLI slug and the display name parse back.
        EXPECT_EQ(parseSystem(systemSlug(kind)), kind);
        EXPECT_EQ(parseSystem(systemName(kind)), kind);
        SystemKind out;
        ASSERT_TRUE(tryParseSystem(systemSlug(kind), out));
        EXPECT_EQ(out, kind);
        ASSERT_TRUE(tryParseSystem(systemName(kind), out));
        EXPECT_EQ(out, kind);
        // Slugs are CLI-safe: nonempty, no spaces, no uppercase.
        std::string slug = systemSlug(kind);
        EXPECT_FALSE(slug.empty());
        for (char c : slug) {
            EXPECT_NE(c, ' ');
            EXPECT_FALSE(c >= 'A' && c <= 'Z');
        }
    }
    SystemKind out;
    EXPECT_FALSE(tryParseSystem("no-such-system", out));
    EXPECT_DEATH(parseSystem("no-such-system"), "unknown system");
}

TEST(Harness, BuildClusterLayout)
{
    ClusterSpec spec;
    spec.cpuNodes = 2;
    spec.gpuNodes = 3;
    auto nodes = buildCluster(spec, 1);
    ASSERT_EQ(nodes.size(), 5u);
    EXPECT_TRUE(nodes[0]->isCpu());
    EXPECT_TRUE(nodes[1]->isCpu());
    EXPECT_FALSE(nodes[2]->isCpu());
    EXPECT_EQ(nodes[4]->id(), 4u);
}

TEST(Harness, ReplicateModelSharesProfileKey)
{
    auto models = replicateModel(llama2_7b(), 4);
    ASSERT_EQ(models.size(), 4u);
    EXPECT_EQ(models[0].name, models[3].name);
}

class SmallExperiment : public ::testing::TestWithParam<SystemKind>
{
};

TEST_P(SmallExperiment, ReportInvariants)
{
    ExperimentConfig cfg;
    cfg.system = GetParam();
    cfg.cluster.cpuNodes = 2;
    cfg.cluster.gpuNodes = 2;
    cfg.models = replicateModel(llama2_7b(), 8);
    AzureTraceConfig tc;
    tc.numModels = 8;
    tc.duration = 120.0;
    tc.seed = 3;
    cfg.trace = generateAzureTrace(tc);
    cfg.duration = 120.0;
    Report r = runExperiment(cfg);

    EXPECT_EQ(r.totalRequests, cfg.trace.totalRequests());
    EXPECT_EQ(r.completed + r.dropped, r.totalRequests);
    EXPECT_LE(r.sloMet, r.completed);
    EXPECT_GE(r.sloRate, 0.0);
    EXPECT_LE(r.sloRate, 1.0);
    EXPECT_GE(r.avgCpuNodesUsed, 0.0);
    EXPECT_LE(r.avgCpuNodesUsed, 2.0);
    EXPECT_LE(r.avgGpuNodesUsed, 2.0);
    // The TTFT CDF is monotone and never exceeds completed/total.
    double prev = 0.0;
    for (auto &[x, f] : r.ttftCdf) {
        EXPECT_GE(f, prev);
        EXPECT_LE(f, 1.0);
        prev = f;
    }
    EXPECT_EQ(r.system, systemName(cfg.system));
}

INSTANTIATE_TEST_SUITE_P(Systems, SmallExperiment,
                         ::testing::Values(SystemKind::Sllm,
                                           SystemKind::SllmC,
                                           SystemKind::SllmCS,
                                           SystemKind::Slinfer,
                                           SystemKind::SlinferNoCpu,
                                           SystemKind::SlinferNoSharing,
                                           SystemKind::SlinferPD,
                                           SystemKind::SllmCsPD));

TEST(Harness, DeterministicAcrossRuns)
{
    ExperimentConfig cfg;
    cfg.system = SystemKind::Slinfer;
    cfg.cluster.cpuNodes = 1;
    cfg.cluster.gpuNodes = 1;
    cfg.models = replicateModel(llama2_7b(), 4);
    AzureTraceConfig tc;
    tc.numModels = 4;
    tc.duration = 60.0;
    cfg.trace = generateAzureTrace(tc);
    cfg.duration = 60.0;
    Report a = runExperiment(cfg);
    Report b = runExperiment(cfg);
    EXPECT_EQ(a.sloMet, b.sloMet);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.p95Ttft, b.p95Ttft);
    EXPECT_DOUBLE_EQ(a.avgGpuNodesUsed, b.avgGpuNodesUsed);
}

TEST(Harness, DatasetSelectionChangesLengths)
{
    ExperimentConfig cfg;
    cfg.system = SystemKind::Slinfer;
    cfg.cluster.cpuNodes = 1;
    cfg.cluster.gpuNodes = 1;
    cfg.models = replicateModel(llama31_8b(), 4);
    AzureTraceConfig tc;
    tc.numModels = 4;
    tc.duration = 60.0;
    cfg.trace = generateAzureTrace(tc);
    cfg.duration = 60.0;
    cfg.dataset = DatasetKind::HumanEval;
    Report heval = runExperiment(cfg);
    cfg.dataset = DatasetKind::LongBench;
    Report lbench = runExperiment(cfg);
    // LongBench's huge prefills stress the cluster far more.
    EXPECT_GE(heval.sloRate, lbench.sloRate);
}

} // namespace
} // namespace slinfer
