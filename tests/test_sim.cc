/**
 * @file
 * Unit tests for the discrete-event simulator core.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hh"

namespace slinfer
{
namespace
{

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(2.0, [&] { order.push_back(2); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(3.0, [&] { order.push_back(3); });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesAreFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelSkipsEvent)
{
    EventQueue q;
    int fired = 0;
    EventHandle h = q.schedule(1.0, [&] { ++fired; });
    q.schedule(2.0, [&] { ++fired; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelTwiceIsSafe)
{
    EventQueue q;
    EventHandle h = q.schedule(1.0, [] {});
    h.cancel();
    h.cancel();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DefaultHandleNotPending)
{
    EventHandle h;
    EXPECT_FALSE(h.pending());
    h.cancel(); // no-op
}

TEST(EventQueue, HandleNotPendingAfterRun)
{
    EventQueue q;
    EventHandle h = q.schedule(1.0, [] {});
    q.popAndRun();
    EXPECT_FALSE(h.pending());
}

TEST(Simulator, ClockVisibleInsideCallback)
{
    Simulator sim;
    Seconds seen = -1.0;
    sim.schedule(5.0, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(seen, 5.0);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, NestedScheduling)
{
    Simulator sim;
    std::vector<Seconds> times;
    sim.schedule(1.0, [&] {
        times.push_back(sim.now());
        sim.schedule(1.5, [&] { times.push_back(sim.now()); });
    });
    sim.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_DOUBLE_EQ(times[0], 1.0);
    EXPECT_DOUBLE_EQ(times[1], 2.5);
}

TEST(Simulator, RunUntilLeavesLaterEvents)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1.0, [&] { ++fired; });
    sim.schedule(10.0, [&] { ++fired; });
    sim.runUntil(5.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
    EXPECT_FALSE(sim.idle());
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, ScheduleAtAbsoluteTime)
{
    Simulator sim;
    Seconds seen = -1.0;
    sim.scheduleAt(3.0, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(seen, 3.0);
}

TEST(Simulator, EventsRunCounter)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i)
        sim.schedule(i, [] {});
    sim.run();
    EXPECT_EQ(sim.eventsRun(), 7u);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(1.0, [&] {
        order.push_back(1);
        sim.schedule(0.0, [&] { order.push_back(2); });
    });
    sim.schedule(1.0, [&] { order.push_back(3); });
    sim.run();
    // The zero-delay event lands at t=1 but after the already-queued
    // same-time event (FIFO by insertion).
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, ManyEventsStressOrdering)
{
    Simulator sim;
    Seconds last = -1.0;
    bool monotone = true;
    for (int i = 0; i < 10000; ++i) {
        Seconds t = (i * 7919) % 1000;
        sim.scheduleAt(t, [&, t] {
            if (t < last)
                monotone = false;
            last = t;
        });
    }
    sim.run();
    EXPECT_TRUE(monotone);
}

} // namespace
} // namespace slinfer
