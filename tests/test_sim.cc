/**
 * @file
 * Unit tests for the discrete-event simulator core.
 *
 * The arena EventQueue (sim/event_queue.hh) must be observably
 * indistinguishable from the legacy shared_ptr/std::function queue it
 * replaced (sim/legacy_event_queue.hh): same fire order, same
 * cancellation semantics, same handle behavior. Besides the directed
 * cases, a fuzz-style schedule/cancel/pop interleaving runs the same
 * program against both queues and requires identical fire sequences.
 */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "sim/legacy_event_queue.hh"
#include "sim/simulator.hh"

namespace slinfer
{
namespace
{

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(2.0, [&] { order.push_back(2); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(3.0, [&] { order.push_back(3); });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesAreFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelSkipsEvent)
{
    EventQueue q;
    int fired = 0;
    EventHandle h = q.schedule(1.0, [&] { ++fired; });
    q.schedule(2.0, [&] { ++fired; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelTwiceIsSafe)
{
    EventQueue q;
    EventHandle h = q.schedule(1.0, [] {});
    h.cancel();
    h.cancel();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DefaultHandleNotPending)
{
    EventHandle h;
    EXPECT_FALSE(h.pending());
    h.cancel(); // no-op
}

TEST(EventQueue, HandleNotPendingAfterRun)
{
    EventQueue q;
    EventHandle h = q.schedule(1.0, [] {});
    q.popAndRun();
    EXPECT_FALSE(h.pending());
}

TEST(EventQueue, CancelAfterFireIsNoOp)
{
    EventQueue q;
    int fired = 0;
    EventHandle h = q.schedule(1.0, [&] { ++fired; });
    q.schedule(2.0, [&] { ++fired; });
    q.popAndRun(); // fires h's event
    EXPECT_FALSE(h.pending());
    h.cancel(); // must not disturb the remaining event
    EXPECT_EQ(q.size(), 1u);
    q.popAndRun();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, HandleGenerationsDistinguishSlotReuse)
{
    // Cancelling frees the slot for reuse; the old handle must stay
    // dead even after another event recycles the slot.
    EventQueue q;
    int a_fired = 0;
    int b_fired = 0;
    EventHandle a = q.schedule(1.0, [&] { ++a_fired; });
    a.cancel();
    EventHandle b = q.schedule(2.0, [&] { ++b_fired; });
    EXPECT_FALSE(a.pending());
    EXPECT_TRUE(b.pending());
    a.cancel(); // stale handle: must NOT cancel b
    EXPECT_TRUE(b.pending());
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(a_fired, 0);
    EXPECT_EQ(b_fired, 1);
}

TEST(EventQueue, HandleReuseAcrossManyGenerations)
{
    EventQueue q;
    // Burn many generations of the same slot, keeping the first
    // handle around; it must never come back to life.
    EventHandle first = q.schedule(1.0, [] {});
    first.cancel();
    for (int i = 0; i < 100; ++i) {
        EventHandle h = q.schedule(1.0 + i, [] {});
        EXPECT_FALSE(first.pending());
        h.cancel();
    }
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeIsExactUnderCancellation)
{
    EventQueue q;
    std::vector<EventHandle> hs;
    for (int i = 0; i < 5; ++i)
        hs.push_back(q.schedule(1.0 + i, [] {}));
    EXPECT_EQ(q.size(), 5u);
    hs[1].cancel();
    hs[3].cancel();
    EXPECT_EQ(q.size(), 3u);
    int fired = 0;
    while (!q.empty()) {
        q.popAndRun();
        ++fired;
    }
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CancelAllLeavesQueueEmpty)
{
    EventQueue q;
    std::vector<EventHandle> hs;
    for (int i = 0; i < 100; ++i)
        hs.push_back(q.schedule(i * 0.5, [] {}));
    for (EventHandle &h : hs)
        h.cancel();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CancelOtherEventFromCallback)
{
    EventQueue q;
    int fired = 0;
    EventHandle victim;
    q.schedule(1.0, [&] { victim.cancel(); });
    victim = q.schedule(2.0, [&] { ++fired; });
    q.schedule(3.0, [&] { ++fired; });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, LargeCaptureSpillsToHeapAndStillFires)
{
    // Captures beyond InlineCallback::kInlineBytes take the boxed
    // path; behavior must be identical.
    EventQueue q;
    std::array<double, 32> payload{};
    payload[0] = 1.0;
    payload[31] = 2.0;
    double sum = 0.0;
    EventHandle h = q.schedule(1.0, [payload, &sum] {
        sum = payload[0] + payload[31];
    });
    EXPECT_TRUE(h.pending());
    q.popAndRun();
    EXPECT_DOUBLE_EQ(sum, 3.0);

    // And a cancelled boxed callback must be released cleanly.
    EventHandle h2 = q.schedule(1.0, [payload, &sum] { sum = 0.0; });
    h2.cancel();
    EXPECT_TRUE(q.empty());
    EXPECT_DOUBLE_EQ(sum, 3.0);
}

TEST(EventQueue, BulkBacklogDrainsInOrder)
{
    // A fleet-style backlog: tens of thousands of entries scheduled
    // up front (this exercises the wheel's overflow + rebase path),
    // then drained with nested near-future events mixed in.
    EventQueue q;
    q.reserve(50000);
    Seconds last = -1.0;
    bool monotone = true;
    std::uint64_t lcg = 12345;
    for (int i = 0; i < 50000; ++i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        Seconds t = static_cast<double>((lcg >> 33) % 1800000) / 1000.0;
        q.schedule(t, [&, t] {
            if (t < last)
                monotone = false;
            last = t;
        });
    }
    std::size_t fired = 0;
    while (!q.empty()) {
        q.popAndRun();
        ++fired;
    }
    EXPECT_TRUE(monotone);
    EXPECT_EQ(fired, 50000u);
}

// ------------------------------------------------------------------
// Fuzz: the arena queue vs the legacy queue on identical programs.
// ------------------------------------------------------------------

/**
 * Run a deterministic schedule/cancel/pop interleaving against a
 * queue type and return the fire sequence (event ids in fire order).
 * The program mixes arbitrary times (including times earlier than
 * already-fired events' — pure queue semantics, no simulator clock),
 * cancellations of random outstanding handles, stale cancels, and a
 * nested-scheduling drain phase.
 */
template <typename Queue, typename Handle>
std::vector<int>
fuzzProgram(std::uint64_t seed)
{
    Queue q;
    std::vector<Handle> handles;
    std::vector<int> fired;
    int next_id = 0;
    std::uint64_t lcg = seed * 2654435761u + 1;
    auto rnd = [&lcg](std::uint64_t mod) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<std::size_t>((lcg >> 33) % mod);
    };

    for (int step = 0; step < 4000; ++step) {
        switch (rnd(8)) {
        case 0:
        case 1:
        case 2:
        case 3: { // schedule (ties are common: coarse time grid)
            Seconds t = static_cast<double>(rnd(64)) * 0.25;
            int id = next_id++;
            handles.push_back(
                q.schedule(t, [&fired, id] { fired.push_back(id); }));
            break;
        }
        case 4: { // cancel a random outstanding handle (maybe stale)
            if (!handles.empty())
                handles[rnd(handles.size())].cancel();
            break;
        }
        case 5: { // pending() probe must not disturb anything
            if (!handles.empty())
                (void)handles[rnd(handles.size())].pending();
            break;
        }
        default: { // pop
            if (!q.empty())
                q.popAndRun();
            break;
        }
        }
    }

    // Drain with nested scheduling: every 3rd fire spawns a child at
    // a deterministic time derived from its id.
    std::size_t spawned = 0;
    while (!q.empty()) {
        q.popAndRun();
        if (!fired.empty() && fired.size() % 3 == 0 && spawned < 500) {
            ++spawned;
            int id = next_id++;
            Seconds t = static_cast<double>((id * 7919) % 97) * 0.5;
            handles.push_back(
                q.schedule(t, [&fired, id] { fired.push_back(id); }));
        }
    }
    return fired;
}

TEST(EventQueueFuzz, MatchesLegacySemantics)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        std::vector<int> arena =
            fuzzProgram<EventQueue, EventHandle>(seed);
        std::vector<int> legacy =
            fuzzProgram<LegacyEventQueue, LegacyEventHandle>(seed);
        ASSERT_EQ(arena, legacy) << "seed " << seed;
        ASSERT_FALSE(arena.empty()) << "seed " << seed;
    }
}

TEST(Simulator, ClockVisibleInsideCallback)
{
    Simulator sim;
    Seconds seen = -1.0;
    sim.schedule(5.0, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(seen, 5.0);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, NestedScheduling)
{
    Simulator sim;
    std::vector<Seconds> times;
    sim.schedule(1.0, [&] {
        times.push_back(sim.now());
        sim.schedule(1.5, [&] { times.push_back(sim.now()); });
    });
    sim.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_DOUBLE_EQ(times[0], 1.0);
    EXPECT_DOUBLE_EQ(times[1], 2.5);
}

TEST(Simulator, RunUntilLeavesLaterEvents)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1.0, [&] { ++fired; });
    sim.schedule(10.0, [&] { ++fired; });
    sim.runUntil(5.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
    EXPECT_FALSE(sim.idle());
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, ScheduleAtAbsoluteTime)
{
    Simulator sim;
    Seconds seen = -1.0;
    sim.scheduleAt(3.0, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(seen, 3.0);
}

TEST(Simulator, EventsRunCounter)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i)
        sim.schedule(i, [] {});
    sim.run();
    EXPECT_EQ(sim.eventsRun(), 7u);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(1.0, [&] {
        order.push_back(1);
        sim.schedule(0.0, [&] { order.push_back(2); });
    });
    sim.schedule(1.0, [&] { order.push_back(3); });
    sim.run();
    // The zero-delay event lands at t=1 but after the already-queued
    // same-time event (FIFO by insertion).
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, ManyEventsStressOrdering)
{
    Simulator sim;
    Seconds last = -1.0;
    bool monotone = true;
    for (int i = 0; i < 10000; ++i) {
        Seconds t = (i * 7919) % 1000;
        sim.scheduleAt(t, [&, t] {
            if (t < last)
                monotone = false;
            last = t;
        });
    }
    sim.run();
    EXPECT_TRUE(monotone);
}

} // namespace
} // namespace slinfer
