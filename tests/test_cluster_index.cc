/**
 * @file
 * Cluster-index consistency tests (DESIGN.md, "Cluster indices"): the
 * incremental indices must agree with the oracle scans they replace —
 * after every transition of a randomized serverless churn, across 20
 * seeds — and the indexed decision paths must produce byte-identical
 * experiment results to the oracle-scan mode.
 */

#include <gtest/gtest.h>

#include "core/controller.hh"
#include "harness/experiment.hh"
#include "metrics/recorder.hh"
#include "metrics/report.hh"
#include "scenario/scenario.hh"

namespace slinfer
{
namespace
{

struct IndexHarness
{
    void
    build(int cpus, int gpus, std::vector<ModelSpec> model_specs,
          ControllerConfig cfg = {})
    {
        cluster.cpuNodes = cpus;
        cluster.gpuNodes = gpus;
        nodes = buildCluster(cluster, 1);
        models = std::move(model_specs);
        std::vector<double> avg(models.size(), 250.0);
        ctl = std::make_unique<SlinferController>(sim, nodes, models, avg,
                                                  cfg, recorder, nullptr);
    }

    Request &
    submitAt(ModelId model, Seconds arrival, Tokens in, Tokens out)
    {
        auto r = std::make_unique<Request>();
        r->id = nextReq++;
        r->model = model;
        r->arrival = arrival;
        r->inputLen = in;
        r->targetOutput = out;
        r->ttftSlo = std::min(std::max(0.5, in / 512.0), 8.0);
        r->tpotSlo = 0.25;
        Request *p = r.get();
        reqs.push_back(std::move(r));
        sim.scheduleAt(arrival, [this, p] { ctl->submit(p); });
        return *p;
    }

    ClusterSpec cluster;
    Simulator sim;
    std::vector<std::unique_ptr<Node>> nodes;
    std::vector<ModelSpec> models;
    Recorder recorder;
    std::unique_ptr<SlinferController> ctl;
    std::vector<std::unique_ptr<Request>> reqs;
    RequestId nextReq = 1;
};

/** One audit point: every index must match its oracle scan. */
void
expectIndexMatchesOracle(IndexHarness &h)
{
    const ClusterIndex &idx = h.ctl->clusterIndex();

    // Structural audit: committed totals, free-set keys, active set.
    EXPECT_EQ(idx.auditAgainst(h.ctl->instancePool()), "");

    // Cached partition views vs a fresh scan.
    std::vector<Partition *> cpu, gpu;
    for (const auto &node : h.nodes) {
        for (const auto &part : node->partitions())
            (node->isCpu() ? cpu : gpu).push_back(part.get());
    }
    std::vector<Partition *> cpuFirst = cpu;
    cpuFirst.insert(cpuFirst.end(), gpu.begin(), gpu.end());
    EXPECT_EQ(idx.partitions(true), cpuFirst);
    EXPECT_EQ(idx.partitions(false), gpu);

    // KV utilization walks the same elements in the same order as the
    // oracle pool scan, so the double must be bit-identical.
    EXPECT_EQ(h.ctl->kvUtilizationNow(), h.ctl->kvUtilizationNowOracle());

    // Running FP aggregates accumulate in event order rather than pool
    // order, so compare with a relative tolerance.
    for (HwKind kind : {HwKind::Cpu, HwKind::Gpu}) {
        double oracle = h.ctl->totalBusySecondsOracle(kind);
        EXPECT_NEAR(h.ctl->totalBusySeconds(kind), oracle,
                    1e-9 * std::max(1.0, oracle));
    }
    // The report-path query is the exact scan; the O(1) running
    // aggregate must track it to rounding error.
    double oracle_scaling = h.ctl->scalingOverheadFractionOracle();
    EXPECT_EQ(h.ctl->scalingOverheadFraction(), oracle_scaling);
    EXPECT_NEAR(idx.scalingOverheadFraction(h.sim.now()), oracle_scaling,
                1e-9 * std::max(1.0, oracle_scaling));
}

/** Indexed and oracle placement must pick the same candidate. */
void
expectPlacementAgrees(IndexHarness &h, Rng &rng)
{
    for (ModelId m = 0; m < h.models.size(); ++m) {
        Request probe;
        probe.id = 0;
        probe.model = m;
        probe.arrival = h.sim.now();
        probe.inputLen =
            static_cast<Tokens>(rng.uniformInt(64, 4096));
        probe.targetOutput = 256;
        probe.ttftSlo =
            std::min(std::max(0.5, probe.inputLen / 512.0), 8.0);
        probe.tpotSlo = 0.25;
        auto indexed = h.ctl->probePlacement(probe, /*oracle=*/false);
        auto oracle = h.ctl->probePlacement(probe, /*oracle=*/true);
        EXPECT_EQ(indexed.part, oracle.part)
            << "model " << m << " at t=" << h.sim.now();
        EXPECT_EQ(indexed.kvInit, oracle.kvInit);
    }
}

/**
 * 20-seed fuzz: a random serverless churn (bursty arrivals over more
 * models than the cluster holds, long and short outputs, so loads,
 * unloads, resizes, evictions and demand-reclaims all fire) on a
 * small fleet, audited against the oracle scans at every 250 ms of
 * simulated time and at the end.
 */
TEST(ClusterIndexFuzz, MatchesOracleScansThroughRandomChurn)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed);
        IndexHarness h;
        ControllerConfig cfg;
        cfg.seed = seed;
        h.build(1, 2, {llama2_7b(), llama2_7b(), llama32_3b(),
                       llama31_8b()},
                cfg);

        Seconds t = 0.0;
        int n = static_cast<int>(rng.uniformInt(40, 90));
        for (int i = 0; i < n; ++i) {
            t += rng.exponential(2.0);
            ModelId m = static_cast<ModelId>(
                rng.uniformInt(0, static_cast<std::int64_t>(
                                      h.models.size() - 1)));
            Tokens in = static_cast<Tokens>(rng.uniformInt(32, 3000));
            Tokens out = static_cast<Tokens>(
                rng.chance(0.2) ? rng.uniformInt(600, 1500)
                                : rng.uniformInt(10, 300));
            h.submitAt(m, t, in, out);
        }

        Seconds horizon = t + 30.0;
        for (Seconds at = 0.25; at < horizon; at += 0.25) {
            h.sim.runUntil(at);
            expectIndexMatchesOracle(h);
            if (static_cast<int>(at * 4) % 8 == 0)
                expectPlacementAgrees(h, rng);
        }
        h.sim.run();
        expectIndexMatchesOracle(h);
        expectPlacementAgrees(h, rng);
    }
}

/**
 * End-to-end cross-check: the oracle-scan decision mode and the
 * indexed mode must produce byte-identical reports (same admissions,
 * same placements, same sampled metrics) on a catalog scenario.
 */
TEST(ClusterIndexOracle, OracleModeReportIsByteIdentical)
{
    const scenario::Scenario *sc = scenario::byName("quickstart");
    ASSERT_NE(sc, nullptr);

    ExperimentConfig indexed =
        sc->toExperiment(SystemKind::Slinfer, sc->seed);
    ExperimentConfig oracle = indexed;
    oracle.controller.oracleScans = true;

    Report a = runExperiment(indexed);
    Report b = runExperiment(oracle);
    a.scenario = b.scenario = sc->name;
    a.seed = b.seed = sc->seed;
    EXPECT_EQ(toJson(a), toJson(b));
}

/**
 * Same cross-check under prefill-decode disaggregation: this is the
 * one mode where the per-model decode queues' shortage-driven wakeups
 * replace the oracle's re-validate-everything retry, so the dirty-set
 * soundness argument (every decode-admission input that can improve
 * marks the affected queues) is machine-checked here rather than only
 * argued in DESIGN.md.
 */
TEST(ClusterIndexOracle, PdDecodeQueueWakeupsMatchOracle)
{
    const scenario::Scenario *sc = scenario::byName("quickstart");
    ASSERT_NE(sc, nullptr);

    for (std::uint64_t seed : {sc->seed, sc->seed + 1, sc->seed + 2}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        ExperimentConfig indexed =
            sc->toExperiment(SystemKind::SlinferPD, seed);
        ExperimentConfig oracle = indexed;
        oracle.controller.oracleScans = true;

        Report a = runExperiment(indexed);
        Report b = runExperiment(oracle);
        a.scenario = b.scenario = sc->name;
        a.seed = b.seed = seed;
        EXPECT_EQ(toJson(a), toJson(b));
    }

    // One heavier PD run (64 models churning on an 8-node cluster)
    // where transfer-stage queuing is guaranteed to occur, so the
    // dirty-set retry is exercised beyond the trivial empty-queue
    // fast path.
    const scenario::Scenario *az = scenario::byName("azure-64");
    ASSERT_NE(az, nullptr);
    ExperimentConfig indexed =
        az->toExperiment(SystemKind::SlinferPD, az->seed);
    ExperimentConfig oracle = indexed;
    oracle.controller.oracleScans = true;
    Report a = runExperiment(indexed);
    Report b = runExperiment(oracle);
    a.scenario = b.scenario = az->name;
    a.seed = b.seed = az->seed;
    EXPECT_EQ(toJson(a), toJson(b));
}

/** The cached views never reallocate and survive repeated queries. */
TEST(ClusterIndexView, StableAcrossQueries)
{
    IndexHarness h;
    h.build(2, 3, {llama2_7b()});
    const auto &v1 = h.ctl->clusterIndex().partitions(true);
    const auto &v2 = h.ctl->clusterIndex().partitions(true);
    EXPECT_EQ(&v1, &v2);
    EXPECT_EQ(v1.size(), 5u);
    // CPU partitions lead, each viewPos maps back to its partition.
    EXPECT_EQ(v1[0]->spec.kind, HwKind::Cpu);
    EXPECT_EQ(v1[4]->spec.kind, HwKind::Gpu);
    for (std::uint32_t i = 0; i < v1.size(); ++i) {
        EXPECT_EQ(v1[i]->viewPos, i);
        EXPECT_EQ(h.ctl->clusterIndex().partitionAt(i), v1[i]);
    }
    EXPECT_EQ(h.ctl->clusterIndex().partitions(false).size(), 3u);
}

/** Free-capacity keys shrink when budget is pledged and recover on
 *  reclamation. */
TEST(ClusterIndexFree, TracksPlacementBudget)
{
    IndexHarness h;
    h.build(0, 2, {llama2_7b()});
    const ClusterIndex &idx = h.ctl->clusterIndex();
    Partition *p0 = idx.partitions(false)[0];
    Bytes cap = p0->mem.capacity();
    auto &fs = idx.freeSet(HwKind::Gpu);
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs.begin()->first, cap);

    // Place one instance; its partition's key must drop by the
    // pledged footprint.
    h.submitAt(0, 0.0, 512, 32);
    h.sim.runUntil(0.5);
    ASSERT_EQ(h.ctl->models()[0].instances.size(), 1u);
    const Instance *inst = h.ctl->models()[0].instances[0];
    Bytes pledged = inst->model.weightBytes() + inst->kvTarget;
    EXPECT_EQ(inst->primary->committedBytes, pledged);
    EXPECT_TRUE(fs.count({cap - pledged, inst->primary->viewPos}));
    EXPECT_EQ(idx.auditAgainst(h.ctl->instancePool()), "");

    // Run to completion + keep-alive reclamation: the key recovers.
    h.sim.run();
    EXPECT_EQ(p0->committedBytes, 0u);
    EXPECT_EQ(fs.begin()->first, cap);
    EXPECT_EQ(idx.auditAgainst(h.ctl->instancePool()), "");
}

} // namespace
} // namespace slinfer
