/**
 * @file
 * Regression and edge-case tests: bugs found during development (each
 * with the failure mode it guards against) plus boundary conditions of
 * the public API.
 */

#include <gtest/gtest.h>

#include "baselines/neo.hh"
#include "core/controller.hh"
#include "harness/experiment.hh"
#include "metrics/recorder.hh"

namespace slinfer
{
namespace
{

struct Rig
{
    void
    build(int cpus, int gpus, std::vector<ModelSpec> model_specs,
          ControllerConfig cfg = {})
    {
        cluster.cpuNodes = cpus;
        cluster.gpuNodes = gpus;
        nodes = buildCluster(cluster, 1);
        models = std::move(model_specs);
        std::vector<double> avg(models.size(), 250.0);
        ctl = std::make_unique<SlinferController>(sim, nodes, models, avg,
                                                  cfg, recorder, nullptr);
    }

    Request &
    submitAt(ModelId model, Seconds arrival, Tokens in, Tokens out)
    {
        auto r = std::make_unique<Request>();
        r->id = nextReq++;
        r->model = model;
        r->arrival = arrival;
        r->inputLen = in;
        r->targetOutput = out;
        r->ttftSlo = std::min(std::max(0.5, in / 512.0), 8.0);
        r->tpotSlo = 0.25;
        Request *p = r.get();
        reqs.push_back(std::move(r));
        sim.scheduleAt(arrival, [this, p] { ctl->submit(p); });
        return *p;
    }

    ClusterSpec cluster;
    Simulator sim;
    std::vector<std::unique_ptr<Node>> nodes;
    std::vector<ModelSpec> models;
    Recorder recorder;
    std::unique_ptr<SlinferController> ctl;
    std::vector<std::unique_ptr<Request>> reqs;
    RequestId nextReq = 1;
};

// --------------------------------------------------------------
// Regression: keep-alive 0 + resize-in-flight used to spin a
// zero-delay event loop forever (simulated time never advanced).
// --------------------------------------------------------------
TEST(Regression, ZeroKeepAliveTerminates)
{
    Rig rig;
    ControllerConfig cfg;
    cfg.keepAlive = 0.0;
    rig.build(1, 1, {llama2_7b(), llama2_7b()}, cfg);
    for (int i = 0; i < 20; ++i)
        rig.submitAt(i % 2, 0.1 * i, 1500, 120);
    rig.sim.run(); // must terminate
    EXPECT_EQ(rig.recorder.completed() + rig.recorder.dropped(), 20u);
    for (const auto &node : rig.nodes)
        EXPECT_EQ(node->memUsed(), 0u);
}

// --------------------------------------------------------------
// Regression: a KV resize committed while the instance's cold-start
// load was still parked used to release bytes that were never held,
// corrupting the node ledger and wedging the partition permanently.
// The end-to-end symptom was instances stuck Loading forever.
// --------------------------------------------------------------
TEST(Regression, NoPermanentLoadingWedgeUnderPressure)
{
    Rig rig;
    rig.build(0, 1, {llama2_7b(), llama2_7b(), llama2_7b(),
                     llama2_7b(), llama2_7b(), llama2_7b()});
    for (int m = 0; m < 6; ++m)
        for (int i = 0; i < 8; ++i)
            rig.submitAt(m, 0.2 * i + 0.01 * m, 2500, 250);
    rig.sim.run();
    // Every instance reached a terminal or serving state; nothing is
    // stuck mid-load with queued requests.
    EXPECT_EQ(rig.recorder.completed() + rig.recorder.dropped(), 48u);
    for (const auto &me : rig.ctl->models())
        EXPECT_TRUE(me.instances.empty());
    for (const auto &node : rig.nodes) {
        EXPECT_EQ(node->memUsed(), 0u);
        for (const auto &part : node->partitions())
            EXPECT_EQ(part->mem.oomEvents(), 0u);
    }
}

// --------------------------------------------------------------
// Regression: evicted requests whose deadlines had expired could
// never re-pass shadow validation and leaked (neither completed nor
// dropped). Conservation must hold under heavy eviction pressure.
// --------------------------------------------------------------
TEST(Regression, EvictedRequestsAlwaysFinish)
{
    Rig rig;
    rig.build(0, 1, {llama2_7b(), llama2_7b(), llama2_7b(),
                     llama2_7b()});
    for (int m = 0; m < 4; ++m)
        for (int i = 0; i < 6; ++i)
            rig.submitAt(m, 0.05 * i, 3500, 500);
    rig.sim.run();
    EXPECT_EQ(rig.recorder.completed() + rig.recorder.dropped(), 24u);
}

// --------------------------------------------------------------
// Edge cases of the public API.
// --------------------------------------------------------------

TEST(EdgeCase, EmptyTraceRunsCleanly)
{
    ExperimentConfig cfg;
    cfg.system = SystemKind::Slinfer;
    cfg.models = replicateModel(llama2_7b(), 2);
    cfg.trace = AzureTrace{}; // no arrivals
    cfg.duration = 10.0;
    Report r = runExperiment(cfg);
    EXPECT_EQ(r.totalRequests, 0u);
    EXPECT_DOUBLE_EQ(r.avgGpuNodesUsed, 0.0);
}

TEST(EdgeCase, SimultaneousArrivalsAreDeterministic)
{
    auto run_once = [] {
        Rig rig;
        rig.build(1, 1, {llama2_7b()});
        for (int i = 0; i < 10; ++i)
            rig.submitAt(0, 1.0, 800, 40); // identical timestamps
        rig.sim.run();
        return rig.recorder.sloMet();
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(EdgeCase, MaxContextRequestServed)
{
    Rig rig;
    rig.build(0, 1, {llama2_7b()});
    // Input at the clamp boundary, one output token.
    Request &r = rig.submitAt(0, 0.0, llama2_7b().maxContext - 64, 1);
    rig.sim.run();
    EXPECT_EQ(r.state, RequestState::Completed);
}

TEST(EdgeCase, SingleCoreScaledCpuNodeStillWorks)
{
    // Fig. 29 harvesting path: a 1/32-scaled CPU node must behave
    // sanely (profiled, admitted against, never OOM).
    Rig rig;
    rig.cluster.cpuSpec = scaledPartition(xeon6462c(), 1.0 / 32.0);
    rig.build(1, 1, {llama32_3b()});
    rig.submitAt(0, 0.0, 256, 20);
    rig.sim.run();
    EXPECT_EQ(rig.recorder.completed(), 1u);
}

TEST(EdgeCase, NeoZeroCoresIsPlainGpu)
{
    HardwareSpec gpu = a100_80g();
    HardwareSpec neo = neoGpuSpec(gpu, xeon6462c(), 0);
    EXPECT_EQ(neo.name, gpu.name);
    EXPECT_DOUBLE_EQ(neo.auxKvBandwidth, 0.0);
    EXPECT_EQ(neo.auxKvCapacity, 0u);
}

TEST(EdgeCase, PartitionLiveBytesTracksWeightsAndKv)
{
    Node node(0, a100_80g(), 1);
    Partition *part = node.partitions()[0].get();
    ModelSpec m = llama2_7b();
    Instance inst(1, 0, m, part, a100_80g(), 8ULL << 30);
    part->instances.push_back(&inst);
    // Not yet resident: only KV pages would count (none used).
    EXPECT_EQ(part->liveBytes(), 0u);
    inst.memResident = true;
    EXPECT_EQ(part->liveBytes(), m.weightBytes());
    ASSERT_TRUE(inst.kv.reserve(1024));
    EXPECT_EQ(part->liveBytes(),
              m.weightBytes() + 1024 * m.kvBytesPerToken());
    inst.state = InstanceState::Reclaimed;
    EXPECT_EQ(part->liveBytes(), 0u);
}

TEST(EdgeCase, WatermarkZeroStillServes)
{
    Rig rig;
    ControllerConfig cfg;
    cfg.watermark = 0.0;
    rig.build(1, 1, {llama2_7b()}, cfg);
    for (int i = 0; i < 10; ++i)
        rig.submitAt(0, 0.3 * i, 1200, 80);
    rig.sim.run();
    EXPECT_EQ(rig.recorder.completed(), 10u);
    // Frequent resizing shows up in the overhead accounting.
    EXPECT_GT(rig.ctl->resizeOps(), 0u);
}

TEST(EdgeCase, TwoRequestsSameModelDifferentLengthClasses)
{
    // A short request must not be starved behind a long prefill of the
    // same model thanks to headroom ordering.
    Rig rig;
    rig.build(0, 1, {llama2_7b()});
    Request &longr = rig.submitAt(0, 0.0, 4000, 100);
    Request &shortr = rig.submitAt(0, 0.05, 128, 20); // TTFT 0.5 s
    rig.sim.run();
    EXPECT_EQ(longr.state, RequestState::Completed);
    EXPECT_EQ(shortr.state, RequestState::Completed);
    EXPECT_FALSE(shortr.sloViolated);
}

TEST(EdgeCase, QuantizedModelEndToEnd)
{
    Rig rig;
    rig.build(1, 1, {quantized(llama2_13b(), 4)});
    Request &r = rig.submitAt(0, 0.0, 1024, 60);
    rig.sim.run();
    EXPECT_EQ(r.state, RequestState::Completed);
    // INT4 weights load much faster => smaller grace window.
    EXPECT_LT(r.grace, 0.6);
}

TEST(EdgeCase, ReportBuildOnEmptyCollectors)
{
    Recorder rec;
    Simulator sim;
    std::vector<std::unique_ptr<Node>> nodes;
    ClusterStats stats(sim, nodes);
    Report r = Report::build("x", rec, stats, {1.0, 2.0});
    EXPECT_EQ(r.totalRequests, 0u);
    EXPECT_EQ(r.ttftCdf.size(), 2u);
    EXPECT_DOUBLE_EQ(r.ttftCdf[0].second, 0.0);
}

TEST(EdgeCase, TraceWithOneModel)
{
    AzureTraceConfig tc;
    tc.numModels = 1;
    tc.duration = 300.0;
    tc.seed = 3;
    AzureTrace t = generateAzureTrace(tc);
    EXPECT_GT(t.totalRequests(), 0u);
    EXPECT_DOUBLE_EQ(t.topShare(0.01), 1.0);
    for (const Arrival &a : t.arrivals)
        EXPECT_EQ(a.model, 0u);
}

} // namespace
} // namespace slinfer
