/**
 * @file
 * Hardware-layer tests: the model/hardware catalogs and — critically —
 * the roofline performance model's calibration against the paper's
 * published measurements (Table I, Figs. 6-8, 17).
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "hw/host_cpu_model.hh"
#include "hw/memcost_model.hh"
#include "hw/perf_model.hh"

namespace slinfer
{
namespace
{

// ------------------------------------------------------------------
// Model catalog
// ------------------------------------------------------------------

TEST(ModelSpec, WeightSizes)
{
    EXPECT_NEAR(toGiB(llama2_7b().weightBytes()), 12.5, 0.5);   // 13.4 GB
    EXPECT_NEAR(toGiB(llama2_13b().weightBytes()), 24.2, 0.5);  // 26 GB
    EXPECT_NEAR(toGiB(llama32_3b().weightBytes()), 6.0, 0.3);
    EXPECT_NEAR(toGiB(codellama_34b().weightBytes()), 62.8, 1.0);
}

TEST(ModelSpec, KvBytesPerToken)
{
    // Llama-2-7B: 32 layers * 2 (K,V) * 4096 * 2 bytes = 512 KiB/token.
    EXPECT_EQ(llama2_7b().kvBytesPerToken(), 512u * 1024u);
    // Llama-2-13B: 40 layers * 2 * 5120 * 2 = 800 KiB/token.
    EXPECT_EQ(llama2_13b().kvBytesPerToken(), 800u * 1024u);
    // GQA models have much smaller KV.
    EXPECT_LT(llama31_8b().kvBytesPerToken(),
              llama2_7b().kvBytesPerToken() / 3);
}

TEST(ModelSpec, FlopsPerToken)
{
    EXPECT_DOUBLE_EQ(llama2_7b().flopsPerToken(), 2.0 * 6.7e9);
    EXPECT_GT(llama2_7b().attnFlops(4096), llama2_7b().attnFlops(1024));
}

TEST(ModelSpec, QuantizedShrinksWeightsOnly)
{
    ModelSpec base = codestral_22b();
    ModelSpec q4 = quantized(base, 4);
    EXPECT_EQ(q4.weightBytes(), base.weightBytes() / 4);
    EXPECT_EQ(q4.kvBytesPerToken(), base.kvBytesPerToken());
    EXPECT_NE(q4.name, base.name);
}

TEST(ModelSpec, ClassNames)
{
    EXPECT_STREQ(modelClassName(ModelClass::Small3B), "3B");
    EXPECT_STREQ(modelClassName(ModelClass::Huge34B), "34B");
}

TEST(ModelSpec, ContextLengths)
{
    EXPECT_EQ(llama2_7b().maxContext, 4096);
    EXPECT_EQ(llama31_8b().maxContext, 32768); // LongBench support
}

TEST(ModelSpec, TensorParallelDegrees)
{
    EXPECT_EQ(llama2_7b().tpDegree, 1);
    EXPECT_EQ(codellama_34b().tpDegree, 2);
}

// ------------------------------------------------------------------
// Hardware catalog
// ------------------------------------------------------------------

TEST(HardwareSpec, Catalog)
{
    EXPECT_FALSE(xeon8369b().hasMatrixAccel);
    EXPECT_TRUE(xeon6462c().hasMatrixAccel);
    EXPECT_EQ(xeon6462c().kind, HwKind::Cpu);
    EXPECT_EQ(a100_80g().kind, HwKind::Gpu);
    // Paper Discussion: 105 vs 13 vs 297 TFLOPS.
    EXPECT_NEAR(xeon6462c().peakFlops / xeon8369b().peakFlops, 8.0, 1.0);
    EXPECT_NEAR(xeon6_96c().peakFlops / 1e12, 297.0, 1.0);
}

TEST(HardwareSpec, ScaledPartitionHalvesResources)
{
    HardwareSpec half = scaledPartition(a100_80g(), 0.5);
    EXPECT_DOUBLE_EQ(half.peakFlops, a100_80g().peakFlops / 2);
    EXPECT_DOUBLE_EQ(half.memBandwidth, a100_80g().memBandwidth / 2);
    EXPECT_EQ(half.memCapacity, a100_80g().memCapacity / 2);
    EXPECT_NE(half.name, a100_80g().name); // distinct profile key
    EXPECT_DOUBLE_EQ(half.effPrefill, a100_80g().effPrefill);
}

// ------------------------------------------------------------------
// Roofline calibration: Table I (Llama-2-7B on two CPU generations).
// The test asserts every cell within 12% relative error.
// ------------------------------------------------------------------

struct TableICase
{
    const char *cpu;
    Tokens prefill_len;
    double expect_ms;
};

class TableIPrefill : public ::testing::TestWithParam<TableICase>
{
};

TEST_P(TableIPrefill, MatchesPaper)
{
    const auto &c = GetParam();
    HardwareSpec hw =
        std::string(c.cpu) == "3rd" ? xeon8369b() : xeon6462c();
    double got = toMs(PerfModel::prefillTime(hw, llama2_7b(),
                                             c.prefill_len));
    EXPECT_NEAR(got, c.expect_ms, c.expect_ms * 0.12)
        << c.cpu << " gen, L=" << c.prefill_len;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTableI, TableIPrefill,
    ::testing::Values(TableICase{"3rd", 256, 1003.0},
                      TableICase{"3rd", 1024, 4113.0},
                      TableICase{"3rd", 4096, 18612.0},
                      TableICase{"4th", 256, 149.0},
                      TableICase{"4th", 1024, 567.0},
                      TableICase{"4th", 4096, 2748.0}));

struct TableIDecodeCase
{
    const char *cpu;
    int batch;
    Tokens len;
    double expect_ms;
};

class TableIDecode : public ::testing::TestWithParam<TableIDecodeCase>
{
};

TEST_P(TableIDecode, MatchesPaper)
{
    const auto &c = GetParam();
    HardwareSpec hw =
        std::string(c.cpu) == "3rd" ? xeon8369b() : xeon6462c();
    double got =
        toMs(PerfModel::decodeTime(hw, llama2_7b(), c.batch, c.len));
    EXPECT_NEAR(got, c.expect_ms, c.expect_ms * 0.12)
        << c.cpu << " gen, bs=" << c.batch << ", L=" << c.len;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTableI, TableIDecode,
    ::testing::Values(TableIDecodeCase{"3rd", 1, 1024, 100.0},
                      TableIDecodeCase{"3rd", 32, 1024, 338.0},
                      TableIDecodeCase{"3rd", 1, 4096, 110.0},
                      TableIDecodeCase{"3rd", 32, 4096, 697.0},
                      TableIDecodeCase{"4th", 1, 1024, 71.0},
                      TableIDecodeCase{"4th", 32, 1024, 196.0},
                      TableIDecodeCase{"4th", 1, 4096, 80.0},
                      TableIDecodeCase{"4th", 32, 4096, 459.0}));

// ------------------------------------------------------------------
// Qualitative shape properties of the performance model (Figs. 6-8).
// ------------------------------------------------------------------

class PerfShape : public ::testing::TestWithParam<int>
{
  protected:
    ModelSpec modelFor(int idx)
    {
        switch (idx % 3) {
          case 0: return llama2_7b();
          case 1: return llama2_13b();
          default: return llama32_3b();
        }
    }
    HardwareSpec hwFor(int idx)
    {
        return idx < 3 ? xeon6462c() : a100_80g();
    }
};

TEST_P(PerfShape, PrefillMonotoneInLength)
{
    ModelSpec m = modelFor(GetParam());
    HardwareSpec hw = hwFor(GetParam());
    Seconds prev = 0.0;
    for (Tokens len = 128; len <= 8192; len *= 2) {
        Seconds t = PerfModel::prefillTime(hw, m, len);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST_P(PerfShape, DecodeMonotoneInBatchAndLength)
{
    ModelSpec m = modelFor(GetParam());
    HardwareSpec hw = hwFor(GetParam());
    for (Tokens len : {512, 1024, 2048}) {
        Seconds prev = 0.0;
        for (int b = 1; b <= 128; b *= 2) {
            Seconds t = PerfModel::decodeTime(hw, m, b, len);
            EXPECT_GT(t, prev);
            prev = t;
        }
    }
    EXPECT_LT(PerfModel::decodeTime(hw, m, 8, 512),
              PerfModel::decodeTime(hw, m, 8, 2048));
}

TEST_P(PerfShape, BatchingIsSubLinear)
{
    // Paper Fig. 7: a 4-batch costs much less than 4x a 1-batch.
    ModelSpec m = modelFor(GetParam());
    HardwareSpec hw = hwFor(GetParam());
    Seconds t1 = PerfModel::decodeTime(hw, m, 1, 1024);
    Seconds t4 = PerfModel::decodeTime(hw, m, 4, 1024);
    EXPECT_LT(t4, 2.0 * t1);
}

INSTANTIATE_TEST_SUITE_P(AllCombos, PerfShape, ::testing::Range(0, 6));

TEST(PerfModel, CpuSevenBFourBatchWithinFourteenPercent)
{
    // Paper §IV-A2: 7B on CPU at 1K tokens, 4-batch TPOT is only ~14%
    // above 1-batch.
    HardwareSpec cpu = xeon6462c();
    Seconds t1 = PerfModel::decodeTime(cpu, llama2_7b(), 1, 1024);
    Seconds t4 = PerfModel::decodeTime(cpu, llama2_7b(), 4, 1024);
    EXPECT_LT((t4 - t1) / t1, 0.25);
}

TEST(PerfModel, Cpu13BDoublesFrom512To2K)
{
    // Paper §IV-A2: 13B at 32-batch roughly doubles TPOT from 512 to
    // 2K, violating the 0.25 s SLO at 2K.
    HardwareSpec cpu = xeon6462c();
    Seconds t512 = PerfModel::decodeTime(cpu, llama2_13b(), 32, 512);
    Seconds t2k = PerfModel::decodeTime(cpu, llama2_13b(), 32, 2048);
    EXPECT_NEAR(t2k / t512, 2.0, 0.5);
    EXPECT_GT(t2k, 0.25);
}

TEST(PerfModel, GpuMeetsTightSlos)
{
    HardwareSpec gpu = a100_80g();
    // A100 serves 7B at batch 128, 2K context within the 0.25 s TPOT.
    EXPECT_LT(PerfModel::decodeTime(gpu, llama2_7b(), 128, 2048), 0.25);
    // And prefills 8K inputs in about a second (Fig. 6).
    EXPECT_LT(PerfModel::prefillTime(gpu, llama2_7b(), 8192), 2.0);
}

TEST(PerfModel, Cpu34BIsInfeasible)
{
    // Fig. 6: C-34B violates the TTFT SLO at moderate lengths; the
    // decode also exceeds 0.25 s even at batch 1.
    HardwareSpec cpu = xeon6462c();
    EXPECT_GT(PerfModel::decodeTime(cpu, codellama_34b(), 1, 1024), 0.25);
}

TEST(PerfModel, MaxBatchWithinTpot)
{
    HardwareSpec cpu = xeon6462c();
    // Table II: C-7B-2K supports ~27 concurrent within the 0.25 s SLO.
    int b = PerfModel::maxBatchWithinTpot(cpu, llama2_7b(), 2048, 0.25);
    EXPECT_GE(b, 18);
    EXPECT_LE(b, 40);
    // Infeasible at batch 1 returns zero.
    EXPECT_EQ(PerfModel::maxBatchWithinTpot(cpu, codellama_34b(), 1024,
                                            0.25),
              0);
}

TEST(PerfModel, TightSlosShrinkCpuApplicability)
{
    // Paper §IV-A2 limitation (3): under a 100 ms TPOT only small
    // batches of 7B work; at 50 ms even 7B fails.
    HardwareSpec cpu = xeon6462c();
    int b100_1k = PerfModel::maxBatchWithinTpot(cpu, llama2_7b(), 1024,
                                                0.100);
    int b100_4k = PerfModel::maxBatchWithinTpot(cpu, llama2_7b(), 4096,
                                                0.100);
    int b50 = PerfModel::maxBatchWithinTpot(cpu, llama2_7b(), 1024,
                                            0.050);
    EXPECT_GT(b100_1k, 0);
    EXPECT_LE(b100_1k, 16);
    EXPECT_LE(b100_4k, 6);
    EXPECT_EQ(b50, 0);
}

TEST(PerfModel, TensorParallelScales)
{
    HardwareSpec tp2 = PerfModel::tensorParallel(a100_80g(), 2);
    EXPECT_GT(tp2.peakFlops, a100_80g().peakFlops);
    EXPECT_LT(tp2.peakFlops, 2.0 * a100_80g().peakFlops); // comm penalty
    EXPECT_EQ(tp2.memCapacity, 2 * a100_80g().memCapacity);
    EXPECT_LT(PerfModel::prefillTime(tp2, codellama_34b(), 2048),
              PerfModel::prefillTime(a100_80g(), codellama_34b(), 2048));
}

TEST(PerfModel, AuxKvBandwidthSpeedsDecodeOnly)
{
    HardwareSpec gpu = a100_80g();
    HardwareSpec neo = gpu;
    neo.auxKvBandwidth = 100e9;
    EXPECT_LT(PerfModel::decodeTime(neo, llama2_7b(), 64, 2048),
              PerfModel::decodeTime(gpu, llama2_7b(), 64, 2048));
    EXPECT_DOUBLE_EQ(PerfModel::prefillTime(neo, llama2_7b(), 1024),
                     PerfModel::prefillTime(gpu, llama2_7b(), 1024));
}

// ------------------------------------------------------------------
// Memory-operation cost model (Fig. 17, §IX-A).
// ------------------------------------------------------------------

TEST(MemCostModel, KvResizeMatchesFig17)
{
    HardwareSpec gpu = a100_80g();
    // 32 GB -> 64 GB: 1.9 s; 32 GB -> 16 GB: 0.3 s (vendor GB).
    Seconds up = MemCostModel::kvResizeTime(gpu, 32e9, 64e9);
    Seconds down = MemCostModel::kvResizeTime(gpu, 32e9, 16e9);
    EXPECT_NEAR(up, 1.9, 0.2);
    EXPECT_NEAR(down, 0.3, 0.1);
}

TEST(MemCostModel, ResizeZeroWhenUnchanged)
{
    EXPECT_DOUBLE_EQ(MemCostModel::kvResizeTime(a100_80g(), 8e9, 8e9),
                     0.0);
}

TEST(MemCostModel, CpuResizesCheaper)
{
    EXPECT_LT(MemCostModel::kvResizeTime(xeon6462c(), 8e9, 16e9),
              MemCostModel::kvResizeTime(a100_80g(), 8e9, 16e9));
}

TEST(MemCostModel, SevenBLoadsInAboutASecond)
{
    // §IX-A: the sllm loader loads a 7B model in ~1 s.
    Seconds t = MemCostModel::weightLoadTime(a100_80g(), llama2_7b());
    EXPECT_GT(t, 0.7);
    EXPECT_LT(t, 1.5);
}

TEST(MemCostModel, LoadScalesWithModelSize)
{
    EXPECT_GT(MemCostModel::weightLoadTime(a100_80g(), llama2_13b()),
              MemCostModel::weightLoadTime(a100_80g(), llama2_7b()));
}

TEST(MemCostModel, MigrationUsesFabricBandwidth)
{
    // 12.5 GB/s: 1.25 GB of KV takes ~100 ms.
    Seconds t = MemCostModel::kvMigrationTime(1250000000ULL);
    EXPECT_NEAR(t, 0.102, 0.01);
}

// ------------------------------------------------------------------
// Host-CPU usage model (Figs. 10, 11, 28).
// ------------------------------------------------------------------

TEST(HostCpuModel, NeverExceedsOneCore)
{
    for (int b = 1; b <= 256; b *= 2)
        EXPECT_LT(HostCpuModel::coreUsage(b), 1.0);
    EXPECT_GT(HostCpuModel::coreUsage(64), HostCpuModel::coreUsage(1));
}

TEST(HostCpuModel, StressSlowdownMatchesFig11)
{
    // 64 stress processes on 32 cores => ~4% loss.
    EXPECT_NEAR(HostCpuModel::stressSlowdown(64, 32), 1.04, 0.005);
    EXPECT_DOUBLE_EQ(HostCpuModel::stressSlowdown(0, 32), 1.0);
    // Saturates: more stress cannot exceed the calibrated ceiling.
    EXPECT_LE(HostCpuModel::stressSlowdown(1024, 32), 1.05);
}

TEST(HostCpuModel, ColocationStaysNearOneCore)
{
    // Fig. 28: eight colocated instances use just over one core.
    double u8 = HostCpuModel::colocatedCoreUsage(8);
    EXPECT_GT(u8, 1.0);
    EXPECT_LT(u8, 1.5);
    EXPECT_LT(HostCpuModel::colocatedCoreUsage(1), 0.8);
}

} // namespace
} // namespace slinfer
