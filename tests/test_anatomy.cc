/**
 * @file
 * Latency-anatomy tests: the segment-sum exactness invariant fuzzed
 * across seeds on the fleet scenarios, the attribution determinism
 * contract (reports byte-identical on vs off), the Report attribution
 * block's shape (windows, per-model blame), the timeseries
 * final-sample rule, the trace_dropped counters entry, sweep
 * integration (seg_* metrics, store round-trip) and multi-threaded
 * phase aggregation under a parallel sweep.
 */

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>
#include <vector>

#include "harness/session.hh"
#include "metrics/report.hh"
#include "obs/anatomy.hh"
#include "obs/obs.hh"
#include "scenario/scenario.hh"
#include "sweep/store.hh"
#include "sweep/summary.hh"
#include "sweep/sweep.hh"

namespace slinfer
{
namespace
{

/** A small, fast experiment (mirrors test_obs.cc's smallConfig). */
ExperimentConfig
smallConfig(std::uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.system = SystemKind::Slinfer;
    cfg.cluster.cpuNodes = 2;
    cfg.cluster.gpuNodes = 2;
    cfg.models = replicateModel(llama2_7b(), 8);
    AzureTraceConfig tc;
    tc.numModels = 8;
    tc.duration = 120.0;
    tc.seed = seed;
    cfg.trace = generateAzureTrace(tc);
    cfg.duration = 120.0;
    cfg.seed = seed;
    return cfg;
}

// The tentpole invariant: for every closed record, the segments
// telescope to the measured end-to-end latency with *integer*
// equality — not approximately, exactly. Fuzzed across 24 seeds on
// the three fast intervention-heavy fleet scenarios (node failure,
// rolling deploy, surge autoscaling), which exercise rewind,
// cold-start and resize paths.
TEST(AnatomySegmentSum, ExactAcrossSeedsOnFleetScenarios)
{
    const char *kScenarios[] = {"fleet-node-failure",
                                "fleet-rolling-deploy",
                                "fleet-surge-scale"};
    int fuzzed = 0;
    for (const char *name : kScenarios) {
        const scenario::Scenario *sc = scenario::byName(name);
        ASSERT_NE(sc, nullptr) << name;
        for (std::uint64_t seed = 1; seed <= 8; ++seed, ++fuzzed) {
            ExperimentConfig cfg =
                sc->toExperiment(SystemKind::Slinfer, seed);
            cfg.obs.anatomy = true;
            Session s(cfg);
            obs::AnatomyLedger *led = s.flightRecorder()->anatomy();
            ASSERT_NE(led, nullptr);
            led->retainRecords(true);
            s.advanceTo(s.duration());
            Report r = s.finish();

            const std::vector<obs::AnatomyRecord> &recs =
                led->records();
            ASSERT_EQ(recs.size(), led->closedCount())
                << name << " seed " << seed;
            EXPECT_EQ(led->openCount(), 0u) << name << " seed " << seed;
            std::uint64_t violated = 0;
            for (const obs::AnatomyRecord &rec : recs) {
                std::int64_t sum = 0;
                for (std::size_t seg = 0; seg < obs::kNumSegs; ++seg) {
                    ASSERT_GE(rec.segNs[seg], 0)
                        << name << " seed " << seed << " req " << rec.id
                        << " seg " << obs::segName(seg);
                    sum += rec.segNs[seg];
                }
                // The invariant. Integer equality, no epsilon.
                ASSERT_EQ(sum, rec.e2eNs())
                    << name << " seed " << seed << " req " << rec.id;
                ASSERT_GE(rec.e2eNs(), 0)
                    << name << " seed " << seed << " req " << rec.id;
                if (rec.violated) {
                    ++violated;
                    // Exactly one dominant cause: blame is the argmax
                    // segment, ties broken by enum order — so no
                    // earlier segment may match its duration and no
                    // segment may exceed it.
                    obs::Seg b = rec.blame;
                    EXPECT_EQ(b, rec.dominant());
                    for (std::size_t seg = 0; seg < obs::kNumSegs;
                         ++seg) {
                        if (seg < b)
                            EXPECT_LT(rec.segNs[seg], rec.segNs[b]);
                        else
                            EXPECT_LE(rec.segNs[seg], rec.segNs[b]);
                    }
                    EXPECT_STRNE(obs::segName(b), "?");
                }
            }
            EXPECT_EQ(violated, led->violationCount())
                << name << " seed " << seed;
            EXPECT_EQ(r.attribution.violations, violated)
                << name << " seed " << seed;
        }
    }
    EXPECT_GE(fuzzed, 20); // the acceptance floor
}

// The determinism contract extends to the ledger: attribution is pure
// observation, so every other report byte must match the
// uninstrumented run exactly.
TEST(AnatomyDeterminism, ReportsByteIdenticalOnVsOff)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        ExperimentConfig plain = smallConfig(seed);
        Report off = runExperiment(plain);

        ExperimentConfig instrumented = smallConfig(seed);
        instrumented.obs.anatomy = true;
        Session s(instrumented);
        s.advanceTo(40.0);
        s.advanceTo(s.duration());
        Report on = s.finish();

        EXPECT_TRUE(on.attribution.enabled) << "seed " << seed;
        EXPECT_FALSE(off.attribution.enabled) << "seed " << seed;
        on.attribution = Report::Attribution{}; // the opted-in block
        EXPECT_EQ(toJson(off), toJson(on)) << "seed " << seed;
        EXPECT_EQ(toCsvRow(off), toCsvRow(on)) << "seed " << seed;
    }
}

// Catalog spot-check of the same contract through the scenario path
// (the full 19-entry catalog is exercised by the CI smoke + the
// release checklist; fleet-6400 is too slow for a unit test).
TEST(AnatomyDeterminism, CatalogScenariosByteIdenticalOnVsOff)
{
    for (const char *name : {"quickstart", "flash-crowd",
                             "fleet-node-failure"}) {
        const scenario::Scenario *sc = scenario::byName(name);
        ASSERT_NE(sc, nullptr) << name;
        ExperimentConfig plain =
            sc->toExperiment(SystemKind::Slinfer, 7);
        Report off = runExperiment(plain);

        ExperimentConfig instrumented =
            sc->toExperiment(SystemKind::Slinfer, 7);
        instrumented.obs.anatomy = true;
        Report on = runExperiment(instrumented);

        EXPECT_TRUE(on.attribution.enabled) << name;
        on.attribution = Report::Attribution{};
        EXPECT_EQ(toJson(off), toJson(on)) << name;
    }
}

// The attribution block's shape: one row per segment in enum order,
// per-window blame clamped to the configured window count, and the
// whole thing coexisting with windowed reports and the timeseries.
TEST(AnatomyReport, AttributionBlockShapeWithWindowsAndTimeseries)
{
    ExperimentConfig cfg = smallConfig(9);
    cfg.obs.anatomy = true;
    cfg.obs.sampleEvery = 10.0;
    cfg.windows = 4;
    Session s(cfg);
    s.advanceTo(s.duration());
    Report r = s.finish();

    const Report::Attribution &a = r.attribution;
    ASSERT_TRUE(a.enabled);
    EXPECT_GT(a.requests, 0u);
    ASSERT_EQ(a.segments.size(), obs::kNumSegs);
    std::uint64_t blamed = 0;
    for (std::size_t seg = 0; seg < obs::kNumSegs; ++seg) {
        EXPECT_EQ(a.segments[seg].name, obs::segName(seg));
        EXPECT_GE(a.segments[seg].totalS, 0.0);
        EXPECT_GE(a.segments[seg].p99s, a.segments[seg].p95s);
        EXPECT_GE(a.segments[seg].p95s, a.segments[seg].p50s);
        blamed += a.segments[seg].blamed;
    }
    // Every violation blames exactly one segment.
    EXPECT_EQ(blamed, a.violations);

    // Per-window blame: one row per report window, one column per
    // segment, totals bounded by the violation count.
    ASSERT_EQ(a.perWindow.size(), 4u);
    EXPECT_DOUBLE_EQ(a.windowLen, cfg.duration / 4.0);
    std::uint64_t windowed = 0;
    for (const std::vector<std::uint64_t> &row : a.perWindow) {
        ASSERT_EQ(row.size(), obs::kNumSegs);
        for (std::uint64_t v : row)
            windowed += v;
    }
    EXPECT_LE(windowed, a.violations);

    // Per-model rows carry the "m<id>:<name>" disambiguated label and
    // only appear for models that blamed something.
    for (const Report::Attribution::ModelBlame &row : a.perModel) {
        EXPECT_EQ(row.model.rfind("m", 0), 0u) << row.model;
        EXPECT_NE(row.model.find(':'), std::string::npos) << row.model;
        std::uint64_t any = 0;
        for (std::uint64_t v : row.blamed)
            any += v;
        EXPECT_GT(any, 0u) << row.model;
    }

    // The satellites it must coexist with: windowed report rows and
    // the sampled timeseries.
    EXPECT_EQ(r.windows.size(), 4u);
    const obs::Timeseries *ts = s.flightRecorder()->timeseries();
    ASSERT_NE(ts, nullptr);
    EXPECT_EQ(ts->samples().size(), 13u); // 120 s / 10 s + t=0

    // The block renders and survives the JSON emitter (shape only;
    // the store round-trip test checks value fidelity).
    std::string json = toJson(r);
    EXPECT_NE(json.find("\"attribution\""), std::string::npos);
    EXPECT_NE(json.find("\"per_window\""), std::string::npos);
    EXPECT_FALSE(renderAttribution(r).empty());
}

// finish() closes the timeseries with a final row at duration() when
// the run ends inside a partial cadence window...
TEST(ObsTimeseriesFinalSample, PartialLastWindowGetsClosingRow)
{
    ExperimentConfig cfg = smallConfig(3);
    cfg.obs.sampleEvery = 50.0; // 120 s: samples at 0, 50, 100 + final
    Session s(cfg);
    s.advanceTo(s.duration());
    s.finish();

    const obs::Timeseries *ts = s.flightRecorder()->timeseries();
    ASSERT_NE(ts, nullptr);
    ASSERT_EQ(ts->samples().size(), 4u);
    EXPECT_DOUBLE_EQ(ts->samples()[2].time, 100.0);
    EXPECT_DOUBLE_EQ(ts->samples()[3].time, 120.0);
}

// ...and emits no duplicate when the duration is an exact multiple of
// the cadence (the cadence loop already sampled the endpoint).
TEST(ObsTimeseriesFinalSample, ExactMultipleEmitsNoDuplicate)
{
    ExperimentConfig cfg = smallConfig(3);
    cfg.obs.sampleEvery = 60.0; // 0, 60, 120 — 120 lands on cadence
    Session s(cfg);
    s.advanceTo(s.duration());
    s.finish();

    const obs::Timeseries *ts = s.flightRecorder()->timeseries();
    ASSERT_NE(ts, nullptr);
    ASSERT_EQ(ts->samples().size(), 3u);
    EXPECT_DOUBLE_EQ(ts->samples()[2].time, 120.0);
}

// Ring-overwrite visibility: a trace-enabled counters run appends a
// trace_dropped entry past the registry snapshot (counters-only runs
// keep the exact registry order and length — test_obs.cc holds that).
TEST(ObsCounters, TraceDroppedAppendedWhenTracing)
{
    ExperimentConfig cfg = smallConfig(7);
    cfg.obs.counters = true;
    cfg.obs.trace = true;
    cfg.obs.traceCapacity = 64; // tiny ring: overwrite is certain
    Session s(cfg);
    s.advanceTo(s.duration());
    Report r = s.finish();

    ASSERT_EQ(r.counters.size(), obs::kNumCounters + 1);
    EXPECT_EQ(r.counters.back().first, "trace_dropped");
    EXPECT_GT(r.counters.back().second, 0u);
    EXPECT_EQ(r.counters.back().second,
              s.flightRecorder()->trace()->dropped());
}

// Sweep integration: --attribution runs attach seg_* metrics, the
// JSONL store round-trips the block bit-exactly, and the summary
// joins attribution metrics by name.
TEST(SweepAttribution, RunJobStoreRoundTripAndSummaryMetrics)
{
    sweep::JobSpec job;
    job.scenario = "quickstart";
    job.system = SystemKind::Slinfer;
    job.seed = 3;
    Report r = sweep::runJob(job, false, true);
    ASSERT_TRUE(r.attribution.enabled);

    std::vector<std::pair<std::string, double>> metrics =
        reportAttributionMetrics(r);
    ASSERT_FALSE(metrics.empty());
    EXPECT_EQ(metrics.front().first, "attr_violations");
    bool sawQueueWait = false;
    for (const auto &[name, value] : metrics) {
        (void)value;
        sawQueueWait = sawQueueWait || name == "seg_queue_wait_total_s";
    }
    EXPECT_TRUE(sawQueueWait);
    // Uninstrumented reports contribute none (baseline compatibility).
    EXPECT_TRUE(reportAttributionMetrics(Report{}).empty());

    // Store round-trip: serialize one record line and parse it back;
    // the attribution block must survive byte-exactly.
    std::string line = sweep::ResultStore::recordLine(job, r);
    sweep::JobSpec job2;
    Report r2;
    std::string err;
    ASSERT_TRUE(
        sweep::ResultStore::parseRecordLine(line, job2, r2, &err))
        << err;
    EXPECT_TRUE(r2.attribution.enabled);
    EXPECT_EQ(toJson(r), toJson(r2));

    // Summary rows gain the seg_* metrics, joined by name.
    std::vector<sweep::Record> records;
    records.push_back({job, r});
    std::vector<sweep::SummaryRow> rows = sweep::summarize(records, 10);
    ASSERT_EQ(rows.size(), 1u);
    const sweep::MetricSummary *m =
        rows[0].metric("seg_queue_wait_total_s");
    ASSERT_NE(m, nullptr);
    const sweep::MetricSummary *v = rows[0].metric("attr_violations");
    ASSERT_NE(v, nullptr);
}

// Phase profiling aggregates across a parallel sweep: four workers,
// four jobs, every worker folds its per-thread profiler into the
// process totals at job end.
TEST(ObsPhase, ParallelSweepAggregatesAcrossWorkerThreads)
{
    std::array<double, obs::kNumPhases> before =
        obs::phaseTotalsSnapshot();

    sweep::Grid grid;
    grid.scenarios = {"quickstart", "poisson-steady"};
    grid.systems = {SystemKind::Slinfer};
    grid.seeds = {1, 2};
    sweep::RunOptions opts;
    opts.jobs = 4;
    opts.phaseProfile = true;
    std::vector<sweep::Record> records = sweep::runGrid(grid, opts);
    ASSERT_EQ(records.size(), 4u);

    std::array<double, obs::kNumPhases> after =
        obs::phaseTotalsSnapshot();
    double gained = 0.0;
    for (std::size_t i = 0; i < obs::kNumPhases; ++i) {
        EXPECT_GE(after[i], before[i]) << obs::phaseName(i);
        gained += after[i] - before[i];
    }
    // Four simulated experiments must have burned measurable host
    // time inside profiled phases.
    EXPECT_GT(gained, 0.0);
}

// ------------------------------------------------------------------
// Lockstep parallel mode: the anatomy ledger is fed from staged
// records replayed in canonical merge order, so the attribution
// block — windows, per-model blame, segment sums — must come out
// byte-identical at every node-phase thread count.
// ------------------------------------------------------------------

TEST(AnatomyParallel, AttributionByteIdenticalAcrossThreadCounts)
{
    for (std::uint64_t seed : {4u, 23u}) {
        ExperimentConfig cfg = smallConfig(seed);
        cfg.obs.anatomy = true;
        cfg.windows = 4;
        cfg.simThreads = 1;
        const std::string oracle = toJson(runExperiment(cfg));
        for (int n : {2, 3}) {
            cfg.simThreads = n;
            EXPECT_EQ(oracle, toJson(runExperiment(cfg)))
                << "seed " << seed << ", threads " << n;
        }
    }
}

// The segment-sum exactness invariant must survive the lockstep
// engine: staged anatomy hooks replay with their original stamps, so
// the segments still telescope to the end-to-end latency exactly.
TEST(AnatomyParallel, SegmentSumStaysExactUnderLockstep)
{
    ExperimentConfig cfg = smallConfig(9);
    cfg.obs.anatomy = true;
    cfg.simThreads = 3;
    Session s(cfg);
    obs::AnatomyLedger *led = s.flightRecorder()->anatomy();
    ASSERT_NE(led, nullptr);
    led->retainRecords(true);
    s.advanceTo(s.duration());
    Report r = s.finish();
    ASSERT_TRUE(r.attribution.enabled);
    const std::vector<obs::AnatomyRecord> &recs = led->records();
    EXPECT_GT(recs.size(), 0u);
    for (const obs::AnatomyRecord &rec : recs) {
        std::int64_t sum = 0;
        for (std::size_t seg = 0; seg < obs::kNumSegs; ++seg)
            sum += rec.segNs[seg];
        ASSERT_EQ(sum, rec.e2eNs()) << "req " << rec.id;
    }
}

} // namespace
} // namespace slinfer
