/**
 * @file
 * slinfer_sweep: parallel experiment orchestration over a declarative
 * grid (scenarios x systems x seeds x override sets).
 *
 *   slinfer_sweep --scenarios=quickstart,poisson-steady \
 *                 --systems=slinfer,sllm --seeds=1..3 --jobs=4 \
 *                 --store=smoke.jsonl --summary-out=summary.json
 *   slinfer_sweep --manifest=sweeps/nightly.manifest --store=n.jsonl
 *   slinfer_sweep ... --compare=bench/baselines/smoke.json   # gate
 *   slinfer_sweep ... --write-baseline=bench/baselines/smoke.json
 *
 * Jobs are independent experiments on a work-stealing pool; finished
 * reports stream into the JSONL store, and re-running a grid against
 * the same store executes only the jobs that are missing (resume).
 * Exit code: 0 ok, 1 regression-gate failure, 2 usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <array>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "obs/phase.hh"
#include "sweep/compare.hh"
#include "sweep/pool.hh"
#include "sweep/summary.hh"
#include "sweep/sweep.hh"

using namespace slinfer;

namespace
{

void
usage(std::FILE *to)
{
    std::fprintf(to,
        "usage: slinfer_sweep [options]\n"
        "grid (flags or --manifest):\n"
        "  --scenarios=<a,b>        catalog scenarios\n"
        "  --systems=<a,b>          serving systems (default: slinfer)\n"
        "  --seeds=<1,2,3|1..5>     replicate seeds (default: 1..3)\n"
        "  --override=<name:k=v;..> config override set (repeatable)\n"
        "  --manifest=<file>        read the grid from a manifest\n"
        "execution:\n"
        "  --jobs=<n>               worker threads (default: all cores)\n"
        "  --store=<file.jsonl>     result store; enables resume\n"
        "  --attribution            run with the latency-anatomy "
        "ledger:\n"
        "                           reports gain an attribution block "
        "and\n"
        "                           the summary gains seg_* metrics\n"
        "output:\n"
        "  --summary-out=<file>     write cross-seed summary there\n"
        "  --format=json|csv        summary format (default: json)\n"
        "  --bootstrap=<n>          bootstrap iterations (default: 1000)\n"
        "  --timing-json=<file>     write wall-clock/jobs-per-sec JSON\n"
        "  --quiet                  no progress, warnings only\n"
        "gate:\n"
        "  --compare=<baseline>     diff summary against a baseline\n"
        "  --tolerance=<frac>       allowed drift (default: 0.10)\n"
        "  --write-baseline=<file>  save summary as a new baseline\n");
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string tok;
    while (std::getline(in, tok, ','))
        if (!tok.empty())
            out.push_back(tok);
    return out;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << content;
    out.flush();
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    sweep::Grid grid;
    std::string manifest_path;
    std::string store_path;
    std::string summary_out;
    std::string format = "json";
    std::string compare_path;
    std::string write_baseline;
    std::string timing_json;
    double tolerance = 0.10;
    int jobs = 0;
    int bootstrap = 1000;
    bool quiet = false;
    bool attribution = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg]() {
            return arg.substr(arg.find('=') + 1);
        };
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg.rfind("--scenarios=", 0) == 0) {
            for (const std::string &s : splitCommas(value()))
                grid.scenarios.push_back(s);
        } else if (arg.rfind("--systems=", 0) == 0) {
            for (const std::string &s : splitCommas(value())) {
                SystemKind kind;
                if (!tryParseSystem(s, kind)) {
                    std::fprintf(stderr, "unknown system '%s'\n",
                                 s.c_str());
                    return 2;
                }
                grid.systems.push_back(kind);
            }
        } else if (arg.rfind("--seeds=", 0) == 0) {
            std::string err;
            if (!sweep::parseSeedList(value(), grid.seeds, &err)) {
                std::fprintf(stderr, "--seeds: %s\n", err.c_str());
                return 2;
            }
        } else if (arg.rfind("--override=", 0) == 0) {
            sweep::OverrideSet ov;
            std::string err;
            if (!sweep::parseOverrideSpec(value(), ov, &err)) {
                std::fprintf(stderr, "--override: %s\n", err.c_str());
                return 2;
            }
            grid.overrides.push_back(std::move(ov));
        } else if (arg.rfind("--manifest=", 0) == 0) {
            manifest_path = value();
        } else if (arg.rfind("--jobs=", 0) == 0) {
            jobs = std::atoi(value().c_str());
            if (jobs < 1 || jobs > 1024) {
                std::fprintf(stderr, "--jobs must be in [1, 1024]\n");
                return 2;
            }
        } else if (arg == "--attribution") {
            attribution = true;
        } else if (arg.rfind("--store=", 0) == 0) {
            store_path = value();
        } else if (arg.rfind("--summary-out=", 0) == 0) {
            summary_out = value();
        } else if (arg.rfind("--format=", 0) == 0) {
            format = value();
        } else if (arg.rfind("--bootstrap=", 0) == 0) {
            bootstrap = std::atoi(value().c_str());
        } else if (arg.rfind("--timing-json=", 0) == 0) {
            timing_json = value();
        } else if (arg.rfind("--compare=", 0) == 0) {
            compare_path = value();
        } else if (arg.rfind("--tolerance=", 0) == 0) {
            tolerance = std::atof(value().c_str());
        } else if (arg.rfind("--write-baseline=", 0) == 0) {
            write_baseline = value();
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    if (format != "json" && format != "csv") {
        std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
        return 2;
    }

    if (!manifest_path.empty()) {
        // Flags and a manifest would silently concatenate axes
        // (duplicate jobs, inflated replicate counts); use one or the
        // other.
        if (!grid.scenarios.empty() || !grid.systems.empty() ||
            !grid.seeds.empty() || !grid.overrides.empty()) {
            std::fprintf(stderr, "--manifest cannot be combined with "
                                 "--scenarios/--systems/--seeds/"
                                 "--override\n");
            return 2;
        }
        std::string text;
        if (!readFile(manifest_path, text)) {
            std::fprintf(stderr, "cannot read manifest %s\n",
                         manifest_path.c_str());
            return 2;
        }
        std::string err;
        if (!sweep::parseManifest(text, grid, &err)) {
            std::fprintf(stderr, "%s: %s\n", manifest_path.c_str(),
                         err.c_str());
            return 2;
        }
    }
    if (grid.scenarios.empty()) {
        usage(stderr);
        return 2;
    }
    if (grid.systems.empty())
        grid.systems.push_back(SystemKind::Slinfer);
    if (grid.seeds.empty())
        grid.seeds = {1, 2, 3};

    // "warnings only": torn-store recovery and similar notices must
    // survive --quiet; it silences progress and info, not warnings.
    if (quiet)
        setLogLevel(LogLevel::Warn);

    sweep::RunOptions opts;
    opts.jobs = jobs;
    opts.storePath = store_path;
    // Timing output includes a host-time phase breakdown, so profile
    // exactly when the caller asked for timing (never otherwise: the
    // scoped timers are cheap but not free).
    opts.phaseProfile = !timing_json.empty();
    opts.attribution = attribution;
    if (!quiet) {
        opts.onProgress = [](const sweep::Progress &p) {
            std::fprintf(stderr, "[%zu/%zu] %s %s seed=%llu%s\n", p.done,
                         p.total, p.job->scenario.c_str(),
                         systemSlug(p.job->system),
                         static_cast<unsigned long long>(p.job->seed),
                         p.cached ? " (cached)" : "");
        };
    }

    sweep::RunStats stats;
    std::vector<sweep::Record> records =
        sweep::runGrid(grid, opts, &stats);
    std::vector<sweep::SummaryRow> summary =
        sweep::summarize(records, bootstrap);

    int effective_jobs = jobs > 0 ? jobs : sweep::defaultJobs();
    if (!quiet) {
        std::fprintf(stderr,
                     "%zu jobs (%zu executed, %zu cached) in %.2f s "
                     "with %d worker%s (%.2f jobs/s)\n",
                     records.size(), stats.executed, stats.cached,
                     stats.wallSeconds, effective_jobs,
                     effective_jobs == 1 ? "" : "s",
                     stats.wallSeconds > 0
                         ? static_cast<double>(stats.executed) /
                               stats.wallSeconds
                         : 0.0);
    }

    if (!timing_json.empty()) {
        std::ostringstream os;
        os.precision(6);
        os << "{\"jobs\": " << records.size() << ", \"executed\": "
           << stats.executed << ", \"cached\": " << stats.cached
           << ", \"workers\": " << effective_jobs << ", \"wall_s\": "
           << stats.wallSeconds << ", \"jobs_per_s\": "
           << (stats.wallSeconds > 0
                   ? static_cast<double>(stats.executed) /
                         stats.wallSeconds
                   : 0.0);
        // Host-time phase attribution summed across every executed
        // job (obs/phase.hh); cached jobs contribute nothing.
        std::array<double, obs::kNumPhases> phases =
            obs::phaseTotalsSnapshot();
        os << ", \"phases\": {";
        for (std::size_t i = 0; i < obs::kNumPhases; ++i) {
            os << (i ? ", " : "") << "\"" << obs::phaseName(i)
               << "\": " << phases[i];
        }
        os << "}}\n";
        if (!writeFile(timing_json, os.str())) {
            std::fprintf(stderr, "cannot write %s\n",
                         timing_json.c_str());
            return 2;
        }
    }

    std::string rendered = format == "csv" ? sweep::summaryToCsv(summary)
                                           : sweep::summaryToJson(summary);
    if (summary_out.empty()) {
        std::fputs(rendered.c_str(), stdout);
    } else if (!writeFile(summary_out, rendered)) {
        std::fprintf(stderr, "cannot write %s\n", summary_out.c_str());
        return 2;
    }

    if (!write_baseline.empty()) {
        // Baselines are always the JSON form, whatever --format says.
        if (!writeFile(write_baseline, sweep::summaryToJson(summary))) {
            std::fprintf(stderr, "cannot write %s\n",
                         write_baseline.c_str());
            return 2;
        }
        if (!quiet)
            std::fprintf(stderr, "baseline written to %s\n",
                         write_baseline.c_str());
    }

    if (!compare_path.empty()) {
        std::string text;
        if (!readFile(compare_path, text)) {
            std::fprintf(stderr, "cannot read baseline %s\n",
                         compare_path.c_str());
            return 2;
        }
        std::vector<sweep::SummaryRow> baseline;
        std::string err;
        if (!sweep::summaryFromJson(text, baseline, &err)) {
            std::fprintf(stderr, "%s: %s\n", compare_path.c_str(),
                         err.c_str());
            return 2;
        }
        sweep::CompareOptions copts;
        copts.tolerance = tolerance;
        sweep::CompareResult res =
            sweep::compare(summary, baseline, copts);
        std::fputs(res.table.c_str(), stderr);
        if (!res.pass)
            return 1;
    }
    return 0;
}
