/**
 * @file
 * slinfer_explain: render the latency anatomy & SLO attribution of a
 * run — which segment of each request's life the time went to, and
 * what the violated deadlines blame.
 *
 * Two inputs:
 *
 *   slinfer_explain report.json            # from slinfer_run --explain
 *   slinfer_explain --trace=trace.json     # post-hoc, from a Chrome
 *                                          # trace (slinfer_run --trace)
 *
 * Report mode reads the report's "attribution" block (the exact
 * integer-ns anatomy recorded live by obs/anatomy.hh) and prints the
 * same table `slinfer_run --explain` shows. Trace mode reconstructs an
 * approximate anatomy from the request-lifecycle spans of a trace that
 * was recorded *without* the ledger: queue wait, rewinds (re-queued
 * after eviction/failure), PD transfer and a lumped serving segment —
 * decode iterations carry no request ids in the trace, so exec time
 * cannot be split further post hoc; run with --explain for the exact
 * breakdown.
 *
 * CI assertion (exit 1 on failure):
 *   slinfer_explain report.json --assert-blame=cold_start,queue_wait \
 *                   --at=450
 * passes iff the blame window containing t=450s has at least one
 * violation and its dominant cause is one of the listed segments
 * (without --at, the whole run's dominant cause is checked).
 *
 * Exit code: 0 ok, 1 failed assertion or invalid input, 2 usage error.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/report.hh"
#include "sweep/json.hh"

using namespace slinfer;
using sweep::JsonValue;
using sweep::parseJson;

namespace
{

void
usage(std::FILE *to)
{
    std::fprintf(to,
        "usage: slinfer_explain <report.json> [options]\n"
        "       slinfer_explain --trace=<trace.json> [options]\n"
        "  <report.json>          report from slinfer_run --explain\n"
        "  --trace=<file>         reconstruct (approximate) anatomy "
        "from a\n"
        "                         Chrome trace instead\n"
        "  --json                 emit the attribution as JSON, not a "
        "table\n"
        "  --out=<path>           write there instead of stdout\n"
        "  --assert-blame=<a,b>   fail unless the dominant violation "
        "cause\n"
        "                         is one of the listed segments\n"
        "  --at=<sec>             scope --assert-blame to the blame "
        "window\n"
        "                         containing this time\n");
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Parse a report JSON's "attribution" block into the Report. */
bool
loadReport(const std::string &path, Report &r, std::string *err)
{
    std::string text;
    if (!readFile(path, text)) {
        *err = "cannot open " + path;
        return false;
    }
    JsonValue v;
    if (!parseJson(text, v, err))
        return false;
    if (!v.isObject()) {
        *err = "root is not an object (multi-run reports are arrays; "
               "pass a single-run report)";
        return false;
    }
    r.system = v.string("system");
    r.scenario = v.string("scenario");
    r.seed = static_cast<std::uint64_t>(v.num("seed"));
    const JsonValue *attr = v.find("attribution");
    if (!attr || !attr->isObject()) {
        *err = "report has no attribution block (re-run with "
               "slinfer_run --explain)";
        return false;
    }
    Report::Attribution &a = r.attribution;
    a.enabled = true;
    a.requests = static_cast<std::uint64_t>(attr->num("requests"));
    a.violations = static_cast<std::uint64_t>(attr->num("violations"));
    if (const JsonValue *segs = attr->find("segments");
        segs && segs->isArray()) {
        for (const JsonValue &sv : segs->array) {
            Report::Attribution::Segment s;
            s.name = sv.string("name");
            s.count = static_cast<std::uint64_t>(sv.num("count"));
            s.totalS = sv.num("total_s");
            s.p50s = sv.num("p50_s");
            s.p95s = sv.num("p95_s");
            s.p99s = sv.num("p99_s");
            s.blamed = static_cast<std::uint64_t>(sv.num("blamed"));
            a.segments.push_back(std::move(s));
        }
    }
    auto row = [](const JsonValue &arr) {
        std::vector<std::uint64_t> out;
        for (const JsonValue &e : arr.array)
            out.push_back(static_cast<std::uint64_t>(e.number));
        return out;
    };
    if (const JsonValue *pm = attr->find("per_model");
        pm && pm->isArray()) {
        for (const JsonValue &mv : pm->array) {
            Report::Attribution::ModelBlame mb;
            mb.model = mv.string("model");
            if (const JsonValue *b = mv.find("blamed"); b && b->isArray())
                mb.blamed = row(*b);
            a.perModel.push_back(std::move(mb));
        }
    }
    a.windowLen = attr->num("window_len");
    if (const JsonValue *pw = attr->find("per_window");
        pw && pw->isArray()) {
        for (const JsonValue &wv : pw->array) {
            if (wv.isArray())
                a.perWindow.push_back(row(wv));
        }
    }
    return true;
}

/**
 * Trace mode: walk the request-lifecycle async events and rebuild an
 * approximate per-request anatomy. Only the "request" category is
 * consulted; timestamps are trace µs.
 */
struct TraceRequest
{
    double beginUs = -1.0;
    double endUs = -1.0;
    double firstAdmitUs = -1.0;
    double requeueUs = -1.0;   ///< open re-queue (awaiting re-admission)
    double transferUs = -1.0;  ///< open PD transfer
    double rewindUs = 0.0;     ///< accumulated re-queued wait
    double pdTransferUs = 0.0; ///< accumulated transfer wait
    int queuedSeen = 0;
    bool dropped = false;
    bool completed = false;
};

bool
loadTraceAnatomy(const std::string &path, Report &r, std::string *err)
{
    std::string text;
    if (!readFile(path, text)) {
        *err = "cannot open " + path;
        return false;
    }
    JsonValue doc;
    if (!parseJson(text, doc, err))
        return false;
    const JsonValue *events =
        doc.isObject() ? doc.find("traceEvents") : nullptr;
    if (!events || !events->isArray()) {
        *err = "not a Chrome trace (missing traceEvents array)";
        return false;
    }

    std::map<std::uint64_t, TraceRequest> reqs;
    for (const JsonValue &e : events->array) {
        if (!e.isObject() || e.string("cat") != "request")
            continue;
        std::string ph = e.string("ph");
        if (ph != "b" && ph != "e" && ph != "n")
            continue;
        std::uint64_t id = static_cast<std::uint64_t>(e.num("id"));
        double ts = e.num("ts");
        TraceRequest &tr = reqs[id];
        std::string name = e.string("name");
        if (ph == "b") {
            tr.beginUs = ts;
        } else if (ph == "e") {
            tr.endUs = ts;
        } else if (name == "queued") {
            // A second "queued" instant is a rewind: the request went
            // back to the controller after eviction or node failure.
            if (++tr.queuedSeen > 1)
                tr.requeueUs = ts;
        } else if (name == "admit" || name == "admit-decode") {
            if (tr.firstAdmitUs < 0)
                tr.firstAdmitUs = ts;
            if (tr.requeueUs >= 0) {
                tr.rewindUs += ts - tr.requeueUs;
                tr.requeueUs = -1.0;
            }
            if (name == "admit-decode" && tr.transferUs >= 0) {
                tr.pdTransferUs += ts - tr.transferUs;
                tr.transferUs = -1.0;
            }
        } else if (name == "transfer") {
            tr.transferUs = ts;
        } else if (name == "completed") {
            tr.completed = true;
        } else if (name == "dropped") {
            tr.dropped = true;
        }
    }

    // Fold into four approximate segments. "serving" lumps prefill,
    // decode and every in-instance wait: decode spans carry no request
    // ids, so the exact split needs the live ledger.
    struct Agg
    {
        std::uint64_t count = 0;
        double totalS = 0.0;
    };
    Agg queueWait, rewind, serving, transfer;
    std::uint64_t closed = 0, dropped = 0, rewound = 0;
    for (const auto &[id, tr] : reqs) {
        if (tr.beginUs < 0 || tr.endUs < 0)
            continue; // still open when the ring wrapped
        ++closed;
        if (tr.dropped)
            ++dropped;
        if (tr.queuedSeen > 1)
            ++rewound;
        double admit = tr.firstAdmitUs >= 0 ? tr.firstAdmitUs : tr.endUs;
        double qw = (admit - tr.beginUs) * 1e-6;
        if (qw > 0) {
            ++queueWait.count;
            queueWait.totalS += qw;
        }
        if (tr.rewindUs > 0) {
            ++rewind.count;
            rewind.totalS += tr.rewindUs * 1e-6;
        }
        if (tr.pdTransferUs > 0) {
            ++transfer.count;
            transfer.totalS += tr.pdTransferUs * 1e-6;
        }
        double serve = (tr.endUs - admit) * 1e-6 - tr.rewindUs * 1e-6 -
                       tr.pdTransferUs * 1e-6;
        if (tr.firstAdmitUs >= 0 && serve > 0) {
            ++serving.count;
            serving.totalS += serve;
        }
    }

    Report::Attribution &a = r.attribution;
    a.enabled = true;
    a.requests = closed;
    // Without SLO thresholds in the trace, "disrupted" requests —
    // dropped or rewound — stand in for violations; each blames the
    // segment the disruption created.
    a.violations = dropped + rewound;
    auto seg = [&](const char *name, const Agg &agg,
                   std::uint64_t blamed) {
        Report::Attribution::Segment s;
        s.name = name;
        s.count = agg.count;
        s.totalS = agg.totalS;
        s.blamed = blamed;
        a.segments.push_back(std::move(s));
    };
    seg("queue_wait", queueWait, dropped);
    seg("rewind", rewind, rewound);
    seg("serving", serving, 0);
    seg("pd_transfer", transfer, 0);
    return true;
}

std::string
attributionJson(const Report &r)
{
    // Same shape as the report's "attribution" block, standalone.
    std::ostringstream os;
    os.precision(17);
    const Report::Attribution &a = r.attribution;
    os << "{\"system\": \"" << jsonEscape(r.system)
       << "\", \"scenario\": \"" << jsonEscape(r.scenario)
       << "\", \"seed\": " << r.seed << ", \"requests\": " << a.requests
       << ", \"violations\": " << a.violations << ", \"segments\": [";
    for (std::size_t i = 0; i < a.segments.size(); ++i) {
        const Report::Attribution::Segment &s = a.segments[i];
        os << (i ? ", " : "") << "{\"name\": \"" << jsonEscape(s.name)
           << "\", \"count\": " << s.count << ", \"total_s\": " << s.totalS
           << ", \"p50_s\": " << s.p50s << ", \"p95_s\": " << s.p95s
           << ", \"p99_s\": " << s.p99s << ", \"blamed\": " << s.blamed
           << "}";
    }
    os << "], \"per_model\": [";
    for (std::size_t i = 0; i < a.perModel.size(); ++i) {
        os << (i ? ", " : "") << "{\"model\": \""
           << jsonEscape(a.perModel[i].model) << "\", \"blamed\": [";
        for (std::size_t j = 0; j < a.perModel[i].blamed.size(); ++j)
            os << (j ? ", " : "") << a.perModel[i].blamed[j];
        os << "]}";
    }
    os << "], \"window_len\": " << a.windowLen << ", \"per_window\": [";
    for (std::size_t i = 0; i < a.perWindow.size(); ++i) {
        os << (i ? ", " : "") << "[";
        for (std::size_t j = 0; j < a.perWindow[i].size(); ++j)
            os << (j ? ", " : "") << a.perWindow[i][j];
        os << "]";
    }
    os << "]}\n";
    return os.str();
}

/** The dominant blame cause of a count vector ("" when all zero). */
std::string
dominantCause(const Report::Attribution &a,
              const std::vector<std::uint64_t> &blamed)
{
    std::size_t best = 0;
    bool any = false;
    for (std::size_t s = 0; s < blamed.size(); ++s) {
        if (blamed[s] > blamed[best])
            best = s;
        any = any || blamed[s] != 0;
    }
    if (!any)
        return "";
    return best < a.segments.size() ? a.segments[best].name
                                    : std::to_string(best);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string report_path;
    std::string trace_path;
    std::string out_path;
    std::string assert_blame;
    bool as_json = false;
    bool at_set = false;
    double at = 0.0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg]() {
            return arg.substr(arg.find('=') + 1);
        };
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (arg == "--json") {
            as_json = true;
        } else if (arg.rfind("--trace=", 0) == 0) {
            trace_path = value();
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = value();
        } else if (arg.rfind("--assert-blame=", 0) == 0) {
            assert_blame = value();
        } else if (arg.rfind("--at=", 0) == 0) {
            char *end = nullptr;
            at = std::strtod(value().c_str(), &end);
            if (value().empty() || *end || at < 0) {
                std::fprintf(stderr, "--at: malformed value '%s'\n",
                             value().c_str());
                return 2;
            }
            at_set = true;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(stderr);
            return 2;
        } else if (report_path.empty()) {
            report_path = arg;
        } else {
            std::fprintf(stderr, "more than one report file given\n");
            return 2;
        }
    }
    if (report_path.empty() == trace_path.empty()) {
        usage(stderr);
        return 2;
    }

    Report r;
    std::string err;
    bool ok = trace_path.empty() ? loadReport(report_path, r, &err)
                                 : loadTraceAnatomy(trace_path, r, &err);
    if (!ok) {
        std::fprintf(stderr, "%s: %s\n",
                     (trace_path.empty() ? report_path : trace_path)
                         .c_str(),
                     err.c_str());
        return 1;
    }

    std::string rendered =
        as_json ? attributionJson(r) : renderAttribution(r);
    if (!trace_path.empty() && !as_json) {
        rendered += "\n(approximate, reconstructed from trace spans; "
                    "decode iterations are lumped into 'serving' — run "
                    "slinfer_run --explain for the exact anatomy)\n";
    }
    if (out_path.empty()) {
        std::fputs(rendered.c_str(), stdout);
    } else {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
            return 1;
        }
        out << rendered;
        out.flush();
        if (!out) {
            std::fprintf(stderr, "write to %s failed\n",
                         out_path.c_str());
            return 1;
        }
        std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    }

    if (!assert_blame.empty()) {
        const Report::Attribution &a = r.attribution;
        std::vector<std::uint64_t> scope(a.segments.size(), 0);
        std::string where = "overall";
        if (at_set) {
            if (a.perWindow.empty() || a.windowLen <= 0) {
                std::fprintf(stderr, "--at: the input has no blame "
                                     "windows (run with --windows)\n");
                return 1;
            }
            std::size_t w = std::min(
                a.perWindow.size() - 1,
                static_cast<std::size_t>(at / a.windowLen));
            scope = a.perWindow[w];
            std::ostringstream ws;
            ws << "window [" << static_cast<double>(w) * a.windowLen
               << ", " << static_cast<double>(w + 1) * a.windowLen
               << ")";
            where = ws.str();
        } else {
            for (std::size_t s = 0; s < a.segments.size(); ++s)
                scope[s] = a.segments[s].blamed;
        }
        std::string dom = dominantCause(a, scope);
        if (dom.empty()) {
            std::fprintf(stderr,
                         "ASSERT FAIL: no violations in %s, expected "
                         "blame on %s\n",
                         where.c_str(), assert_blame.c_str());
            return 1;
        }
        bool matched = false;
        std::istringstream in(assert_blame);
        std::string cause;
        while (std::getline(in, cause, ','))
            matched = matched || cause == dom;
        if (!matched) {
            std::fprintf(stderr,
                         "ASSERT FAIL: dominant cause in %s is '%s', "
                         "expected one of %s\n",
                         where.c_str(), dom.c_str(),
                         assert_blame.c_str());
            return 1;
        }
        std::fprintf(stderr, "assert ok: dominant cause in %s is '%s'\n",
                     where.c_str(), dom.c_str());
    }
    return 0;
}
