/**
 * @file
 * slinfer_run: the unified scenario driver.
 *
 * Runs any serving system on any catalog scenario (optionally sweeping
 * seeds) and emits the Report as JSON or CSV for downstream tooling.
 *
 *   slinfer_run --list
 *   slinfer_run --scenario=flash-crowd                  # system=slinfer
 *   slinfer_run --system=sllm+c+s --scenario=azure-64
 *   slinfer_run --scenario=diurnal-cycle --seeds=1,2,3 --format=csv
 *   slinfer_run --scenario=ramp-up --sweep=5 --out=ramp.json
 *   slinfer_run --scenario=quickstart,poisson-steady --format=csv
 *   slinfer_run --scenario=poisson-steady --timeline=faults.json
 *   slinfer_run --scenario=quickstart --windows=6
 *   slinfer_run --scenario=quickstart --counters
 *   slinfer_run --scenario=fleet-node-failure --trace=trace.json
 *   slinfer_run --scenario=flash-crowd --timeseries=ts.csv \
 *               --sample-every=1s
 *   slinfer_run --scenario=azure-64 --stream --lookahead=1024
 *   slinfer_run --scenario=azure-64 --stream-trace=big.strc --progress
 *
 * Multi-scenario invocations emit the CSV header exactly once; --quiet
 * silences per-run logging for sweep-driven use. (For grids, parallel
 * execution and resume, see slinfer_sweep.)
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/proc.hh"
#include "harness/session.hh"
#include "scenario/scenario.hh"
#include "scenario/timeline.hh"
#include "sweep/pool.hh"
#include "sweep/sweep.hh"

using namespace slinfer;

namespace
{

/** --help prints to stdout; error paths print to stderr so the
 *  report stream stays machine-readable. */
void
usage(std::FILE *to)
{
    std::fprintf(to,
        "usage: slinfer_run [options]\n"
        "  --list                 list catalog scenarios and systems\n"
        "  --scenario=<a,b,..>    scenario(s) to run (required unless "
        "--list)\n"
        "  --system=<name>        serving system (default: slinfer)\n"
        "  --seed=<n>             seed override (default: scenario's)\n"
        "  --seeds=<a,b,c|a..b>   run one experiment per seed\n"
        "  --sweep=<n>            shorthand for seeds base..base+n-1\n"
        "  --timeline=<file.json> scripted interventions overriding the\n"
        "                         scenario's own timeline\n"
        "  --chaos=<spec>         stochastic fault processes overriding "
        "the\n"
        "                         scenario's own chaos config; enables "
        "the\n"
        "                         resilience report. Spec: ';'-separated\n"
        "                         kind[:key=val,..] with kinds flap, "
        "blast,\n"
        "                         straggler, brownout and keys nodes, "
        "mtbf,\n"
        "                         mttr, at, for, factor (see "
        "docs/DESIGN.md)\n"
        "  --windows=<n>          per-window TTFT/throughput rows\n"
        "  --counters             flight-recorder counters in the "
        "report\n"
        "  --explain              latency anatomy & SLO attribution: "
        "adds the\n"
        "                         report's attribution block and prints "
        "the\n"
        "                         breakdown to stderr\n"
        "  --trace=<file.json>    Chrome trace_event spans (single "
        "run)\n"
        "  --trace-cats=<a,b,..>  span categories: request, exec, "
        "memory,\n"
        "                         controller, intervention (default: "
        "all)\n"
        "  --timeseries=<file>    live metrics samples, CSV or .json "
        "(single run)\n"
        "  --sample-every=<sec>   timeseries cadence (default: 1s)\n"
        "  --stream               streaming replay: bounded-lookahead\n"
        "                         arrival window + request recycling;\n"
        "                         reports stay byte-identical, peak "
        "memory\n"
        "                         becomes independent of trace length\n"
        "  --lookahead=<n>        streaming window size in arrivals\n"
        "                         (default: 4096)\n"
        "  --stream-trace=<file>  replay a packed .strc trace (see\n"
        "                         slinfer_tracepack) instead of the\n"
        "                         scenario's arrival process; implies "
        "--stream\n"
        "  --materialized         replay --stream-trace through the\n"
        "                         classic full-vector path instead — "
        "the\n"
        "                         byte-identity oracle for CI diffs\n"
        "  --progress             live progress on stderr: sim-time %%, "
        "requests\n"
        "                         replayed, RSS, ETA\n"
        "  --parallel-sim[=<n>]   time-windowed lockstep engine with n\n"
        "                         node-phase threads (default: one per\n"
        "                         core); results are byte-identical at\n"
        "                         every n but differ from the serial\n"
        "                         engine (see docs/ARCHITECTURE.md)\n"
        "  --sim-window=<sec>     lockstep control period (default: "
        "0.05s)\n"
        "  --format=json|csv      output format (default: json)\n"
        "  --out=<path>           write the report there instead of "
        "stdout\n"
        "  --quiet                suppress per-run logging\n");
}

void
listCatalog()
{
    std::printf("scenarios:\n");
    for (const scenario::Scenario &sc : scenario::all()) {
        std::printf("  %-18s %5.0f s  %3zu models  %s\n", sc.name.c_str(),
                    sc.duration(), sc.models.size(), sc.summary.c_str());
    }
    std::printf("systems:\n ");
    for (SystemKind kind : allSystems())
        std::printf(" %s", systemSlug(kind));
    std::printf("\n");
}

/** Parse a nonnegative integer; exits naming the flag on malformed
 *  input. */
std::uint64_t
parseCount(const std::string &tok, const char *flag)
{
    char *end = nullptr;
    errno = 0;
    std::uint64_t v = std::strtoull(tok.c_str(), &end, 10);
    // strtoull silently negates a leading '-' and saturates on
    // overflow (ERANGE); reject both.
    if (tok.empty() || tok[0] == '-' || errno == ERANGE ||
        end != tok.c_str() + tok.size()) {
        std::fprintf(stderr, "%s: malformed value '%s'\n", flag,
                     tok.c_str());
        std::exit(2);
    }
    return v;
}

/** Parse a positive duration in seconds; an optional trailing 's'
 *  ("1s", "0.5s") is accepted. Exits naming the flag otherwise. */
double
parseSeconds(std::string tok, const char *flag)
{
    std::string shown = tok;
    if (!tok.empty() && tok.back() == 's')
        tok.pop_back();
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || errno == ERANGE ||
        end != tok.c_str() + tok.size() || !(v > 0)) {
        std::fprintf(stderr, "%s: malformed value '%s'\n", flag,
                     shown.c_str());
        std::exit(2);
    }
    return v;
}

/** Parse a comma-separated trace-category list into a TraceCat mask;
 *  exits on unknown names. */
unsigned
parseTraceCats(const std::string &arg)
{
    unsigned mask = 0;
    std::istringstream in(arg);
    std::string name;
    while (std::getline(in, name, ',')) {
        if (name.empty())
            continue;
        unsigned bit = 0;
        for (unsigned b = obs::kCatRequest; b <= obs::kCatIntervention;
             b <<= 1) {
            if (name == obs::traceCatName(b)) {
                bit = b;
                break;
            }
        }
        if (!bit) {
            std::fprintf(stderr,
                         "--trace-cats: unknown category '%s' (use "
                         "request, exec, memory, controller, "
                         "intervention)\n",
                         name.c_str());
            std::exit(2);
        }
        mask |= bit;
    }
    if (!mask) {
        std::fprintf(stderr, "--trace-cats: empty category list\n");
        std::exit(2);
    }
    return mask;
}

/** Advance the session to its end in slices, printing one progress
 *  line per slice to stderr: sim-time %, requests replayed, current
 *  RSS and a wall-clock ETA. Slicing is pure observation (the stepped-
 *  advance determinism contract), so the run stays byte-identical to
 *  an unsliced one. */
void
advanceWithProgress(Session &session, const std::string &name)
{
    using Clock = std::chrono::steady_clock;
    const Seconds end = session.duration();
    const int slices = 200;
    const Clock::time_point t0 = Clock::now();
    for (int i = 1; i <= slices; ++i) {
        session.advanceTo(end * i / slices);
        double frac = static_cast<double>(i) / slices;
        double elapsed =
            std::chrono::duration<double>(Clock::now() - t0).count();
        double eta = frac > 0 ? elapsed / frac - elapsed : 0.0;
        std::size_t replayed =
            session.feed()
                ? static_cast<std::size_t>(session.feed()->replayed())
                : session.sample().arrived;
        std::fprintf(stderr,
                     "\r[%s] t=%.0f/%.0fs (%3.0f%%)  replayed=%zu  "
                     "rss=%.0f MB  eta=%.0fs ",
                     name.c_str(), session.now(), end, 100.0 * frac,
                     replayed,
                     static_cast<double>(currentRssBytes()) / 1e6, eta);
        std::fflush(stderr);
    }
    std::fputc('\n', stderr);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenario_arg;
    std::string system_name = "slinfer";
    std::string format = "json";
    std::string out_path;
    std::vector<std::uint64_t> seeds;
    std::string timeline_path;
    std::string chaos_spec;
    bool chaos_set = false;
    int windows = 0;
    int sweep = 0;
    bool list = false;
    bool quiet = false;
    bool seed_set = false;
    std::uint64_t seed = 0;
    bool counters = false;
    bool explain = false;
    std::string trace_path;
    unsigned trace_cats = obs::kAllTraceCats;
    std::string timeseries_path;
    double sample_every = 1.0;
    int sim_threads = 0;
    double sim_window = 0.0;
    bool stream = false;
    bool materialized = false;
    std::uint64_t lookahead = 0;
    std::string stream_trace;
    bool progress = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg]() {
            return arg.substr(arg.find('=') + 1);
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg.rfind("--scenario=", 0) == 0) {
            scenario_arg = value();
        } else if (arg.rfind("--system=", 0) == 0) {
            system_name = value();
        } else if (arg.rfind("--seed=", 0) == 0) {
            seed = parseCount(value(), "--seed");
            seed_set = true;
        } else if (arg.rfind("--seeds=", 0) == 0) {
            // Same grammar as slinfer_sweep: "a,b,c" or a range "a..b".
            std::string err;
            if (!sweep::parseSeedList(value(), seeds, &err)) {
                std::fprintf(stderr, "--seeds: %s\n", err.c_str());
                return 2;
            }
        } else if (arg.rfind("--sweep=", 0) == 0) {
            std::uint64_t n = parseCount(value(), "--sweep");
            if (n == 0 || n > 10000) {
                std::fprintf(stderr,
                             "--sweep must be in [1, 10000]\n");
                return 2;
            }
            sweep = static_cast<int>(n);
        } else if (arg.rfind("--timeline=", 0) == 0) {
            timeline_path = value();
        } else if (arg.rfind("--chaos=", 0) == 0) {
            chaos_spec = value();
            chaos_set = true;
        } else if (arg.rfind("--windows=", 0) == 0) {
            std::uint64_t n = parseCount(value(), "--windows");
            if (n == 0 || n > 10000) {
                std::fprintf(stderr, "--windows must be in [1, 10000]\n");
                return 2;
            }
            windows = static_cast<int>(n);
        } else if (arg == "--counters") {
            counters = true;
        } else if (arg == "--explain") {
            explain = true;
        } else if (arg.rfind("--trace=", 0) == 0) {
            trace_path = value();
        } else if (arg.rfind("--trace-cats=", 0) == 0) {
            trace_cats = parseTraceCats(value());
        } else if (arg.rfind("--timeseries=", 0) == 0) {
            timeseries_path = value();
        } else if (arg.rfind("--sample-every=", 0) == 0) {
            sample_every = parseSeconds(value(), "--sample-every");
        } else if (arg == "--stream") {
            stream = true;
        } else if (arg.rfind("--lookahead=", 0) == 0) {
            lookahead = parseCount(value(), "--lookahead");
            if (lookahead == 0 || lookahead > (1u << 24)) {
                std::fprintf(stderr,
                             "--lookahead must be in [1, 2^24]\n");
                return 2;
            }
        } else if (arg.rfind("--stream-trace=", 0) == 0) {
            stream_trace = value();
            stream = true;
        } else if (arg == "--materialized") {
            materialized = true;
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg == "--parallel-sim") {
            sim_threads = sweep::defaultJobs();
        } else if (arg.rfind("--parallel-sim=", 0) == 0) {
            std::uint64_t n = parseCount(value(), "--parallel-sim");
            if (n == 0 || n > 4096) {
                std::fprintf(stderr,
                             "--parallel-sim must be in [1, 4096]\n");
                return 2;
            }
            sim_threads = static_cast<int>(n);
        } else if (arg.rfind("--sim-window=", 0) == 0) {
            sim_window = parseSeconds(value(), "--sim-window");
        } else if (arg.rfind("--format=", 0) == 0) {
            format = value();
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = value();
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    if (list) {
        listCatalog();
        return 0;
    }
    if (scenario_arg.empty()) {
        usage(stderr);
        return 2;
    }
    if (format != "json" && format != "csv") {
        std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
        return 2;
    }

    if (materialized && stream_trace.empty()) {
        std::fprintf(stderr,
                     "--materialized only applies to a --stream-trace "
                     "replay\n");
        return 2;
    }

    if (!seeds.empty() && (seed_set || sweep > 0)) {
        std::fprintf(stderr,
                     "--seeds conflicts with --seed/--sweep; use "
                     "--seeds alone or --seed [--sweep]\n");
        return 2;
    }

    if (quiet)
        setLogLevel(LogLevel::Warn);

    // Resolve every scenario before running any: a typo in the second
    // name should not waste the first one's run.
    std::vector<const scenario::Scenario *> scs;
    {
        std::istringstream in(scenario_arg);
        std::string name;
        while (std::getline(in, name, ',')) {
            if (name.empty())
                continue;
            const scenario::Scenario *sc = scenario::byName(name);
            if (!sc) {
                std::fprintf(stderr, "unknown scenario '%s'; --list "
                                     "shows the catalog\n",
                             name.c_str());
                return 2;
            }
            scs.push_back(sc);
        }
    }
    if (scs.empty()) {
        usage(stderr);
        return 2;
    }
    SystemKind system = parseSystem(system_name);

    // Trace / timeseries files describe exactly one run; refuse the
    // ambiguity of multi-scenario or multi-seed invocations.
    std::size_t runs =
        scs.size() *
        (seeds.empty() ? static_cast<std::size_t>(sweep > 0 ? sweep : 1)
                       : seeds.size());
    if ((!trace_path.empty() || !timeseries_path.empty()) && runs != 1) {
        std::fprintf(stderr, "--trace/--timeseries require a single "
                             "scenario and seed (%zu runs requested)\n",
                     runs);
        return 2;
    }

    Timeline timeline;
    bool timeline_set = false;
    if (!timeline_path.empty()) {
        std::string err;
        if (!scenario::loadTimelineFile(timeline_path, timeline, &err)) {
            std::fprintf(stderr, "--timeline: %s\n", err.c_str());
            return 2;
        }
        timeline_set = true;
    }

    chaos::ChaosConfig chaos_cfg;
    if (chaos_set && !chaos_spec.empty()) {
        std::string err;
        if (!chaos::parseChaosSpec(chaos_spec, chaos_cfg, &err)) {
            std::fprintf(stderr, "--chaos: %s\n", err.c_str());
            return 2;
        }
    }

    std::vector<Report> reports;
    for (const scenario::Scenario *sc : scs) {
        std::vector<std::uint64_t> sc_seeds = seeds;
        if (sc_seeds.empty()) {
            std::uint64_t base = seed_set ? seed : sc->seed;
            int n = sweep > 0 ? sweep : 1;
            for (int i = 0; i < n; ++i)
                sc_seeds.push_back(base + static_cast<std::uint64_t>(i));
        }
        for (std::uint64_t s : sc_seeds) {
            ExperimentConfig cfg = sc->toExperiment(system, s);
            if (timeline_set)
                cfg.timeline = timeline;
            if (chaos_set) {
                // Like --timeline: the flag replaces the scenario's
                // own chaos config ("--chaos=" strips it), and a
                // chaos-enabled run always reports resilience.
                cfg.chaos = chaos_cfg;
                cfg.resilienceReport = chaos_cfg.enabled();
            }
            cfg.windows = windows;
            cfg.obs.counters = counters;
            cfg.obs.anatomy = explain;
            cfg.obs.trace = !trace_path.empty();
            cfg.obs.traceCats = trace_cats;
            if (!timeseries_path.empty())
                cfg.obs.sampleEvery = sample_every;
            cfg.simThreads = sim_threads;
            if (sim_window > 0)
                cfg.simWindow = sim_window;
            cfg.stream.enabled = stream && !materialized;
            if (lookahead > 0)
                cfg.stream.lookahead =
                    static_cast<std::uint32_t>(lookahead);
            if (!stream_trace.empty()) {
                // The packed trace replaces the scenario's arrival
                // source; models/datasets/SLOs still come from the
                // scenario, and the metrics window comes from the
                // file's header.
                cfg.stream.tracePath = stream_trace;
                cfg.arrivals.reset();
                cfg.trace = AzureTrace{};
                cfg.duration = 0.0;
            }
            Report report;
            if (progress || cfg.obs.any()) {
                // The stepwise lifecycle keeps the flight recorder
                // alive for the export below and lets --progress slice
                // the advance; the run itself is byte-identical to
                // runExperiment (the PR 5 contract).
                Session session(cfg);
                if (progress)
                    advanceWithProgress(session, sc->name);
                else
                    session.advanceTo(session.duration());
                report = session.finish();
                obs::FlightRecorder *fr = session.flightRecorder();
                if (!trace_path.empty()) {
                    std::ofstream tf(trace_path);
                    if (!tf) {
                        std::fprintf(stderr, "cannot open %s\n",
                                     trace_path.c_str());
                        return 1;
                    }
                    fr->trace()->writeChromeJson(tf);
                    tf.flush();
                    if (!tf) {
                        std::fprintf(stderr, "write to %s failed\n",
                                     trace_path.c_str());
                        return 1;
                    }
                    if (fr->trace()->dropped() > 0) {
                        logf(LogLevel::Warn, "trace ring overflowed: ",
                             fr->trace()->dropped(), " of ",
                             fr->trace()->total(),
                             " events dropped (narrow --trace-cats)");
                    }
                    if (!quiet) {
                        std::fprintf(stderr,
                                     "wrote %s (%zu trace events)\n",
                                     trace_path.c_str(),
                                     fr->trace()->size());
                    }
                }
                if (!timeseries_path.empty()) {
                    bool as_json =
                        timeseries_path.size() >= 5 &&
                        timeseries_path.compare(
                            timeseries_path.size() - 5, 5, ".json") == 0;
                    std::ofstream sf(timeseries_path);
                    if (!sf) {
                        std::fprintf(stderr, "cannot open %s\n",
                                     timeseries_path.c_str());
                        return 1;
                    }
                    sf << (as_json ? fr->timeseries()->toJson()
                                   : fr->timeseries()->toCsv());
                    sf.flush();
                    if (!sf) {
                        std::fprintf(stderr, "write to %s failed\n",
                                     timeseries_path.c_str());
                        return 1;
                    }
                    if (!quiet) {
                        std::fprintf(
                            stderr, "wrote %s (%zu samples)\n",
                            timeseries_path.c_str(),
                            fr->timeseries()->samples().size());
                    }
                }
            } else {
                report = runExperiment(cfg);
            }
            report.scenario = sc->name;
            report.seed = s;
            // The rendered anatomy goes to stderr so stdout stays a
            // machine-readable report stream.
            if (explain && !quiet)
                std::fputs(renderAttribution(report).c_str(), stderr);
            if (report.resilience.enabled && !quiet)
                std::fputs(renderResilience(report).c_str(), stderr);
            reports.push_back(std::move(report));
        }
    }

    std::ostringstream os;
    if (format == "csv") {
        // One header regardless of how many scenarios/seeds follow, so
        // concatenating multi-scenario output stays machine-readable.
        os << reportCsvHeader() << "\n";
        for (const Report &r : reports)
            os << toCsvRow(r) << "\n";
        // Windowed runs append a second self-identifying table.
        if (windows > 0) {
            os << "\n" << reportWindowsCsvHeader() << "\n";
            for (const Report &r : reports)
                os << toWindowsCsvRows(r);
        }
        // Counter-enabled runs append their own table likewise.
        if (counters) {
            os << "\n" << reportCountersCsvHeader() << "\n";
            for (const Report &r : reports)
                os << toCountersCsvRows(r);
        }
        // And so do attribution-enabled runs.
        if (explain) {
            os << "\n" << reportAttributionCsvHeader() << "\n";
            for (const Report &r : reports)
                os << toAttributionCsvRows(r);
        }
        // And probed (chaos) runs append the resilience table.
        bool any_resilience = false;
        for (const Report &r : reports)
            any_resilience = any_resilience || r.resilience.enabled;
        if (any_resilience) {
            os << "\n" << reportResilienceCsvHeader() << "\n";
            for (const Report &r : reports)
                os << toResilienceCsvRows(r);
        }
    } else if (reports.size() == 1) {
        os << toJson(reports[0]) << "\n";
    } else {
        os << "[\n";
        for (std::size_t i = 0; i < reports.size(); ++i)
            os << toJson(reports[i]) << (i + 1 < reports.size() ? ",\n"
                                                                : "\n");
        os << "]\n";
    }

    if (out_path.empty()) {
        std::fputs(os.str().c_str(), stdout);
    } else {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
            return 1;
        }
        out << os.str();
        out.flush();
        if (!out) {
            std::fprintf(stderr, "write to %s failed\n", out_path.c_str());
            return 1;
        }
        if (!quiet) {
            std::fprintf(stderr, "wrote %s (%zu report%s)\n",
                         out_path.c_str(), reports.size(),
                         reports.size() == 1 ? "" : "s");
        }
    }
    return 0;
}
