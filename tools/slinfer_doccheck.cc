/**
 * @file
 * slinfer_doccheck: markdown link and anchor checker for the repo's
 * documentation, run as the CI docs job.
 *
 *   slinfer_doccheck README.md DESIGN.md docs/ARCHITECTURE.md ...
 *
 * For every inline markdown link or image `[text](target)` outside a
 * fenced code block it verifies that
 *  - an intra-repo path target resolves to an existing file
 *    (relative to the referencing file), and
 *  - a `#fragment` (own-file or `path#fragment`) matches a heading
 *    anchor in the target file, using GitHub's slug rules (lowercase,
 *    punctuation stripped, spaces to hyphens, `-1`/`-2`... suffixes
 *    for duplicates).
 *
 * External targets (http/https/mailto) are not fetched — CI must not
 * depend on the network. Exit code: 0 when every link resolves, 1
 * otherwise (each broken link is printed with file:line).
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace
{

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** GitHub heading slug: lowercase; keep alnum, hyphens, underscores;
 *  spaces become hyphens; everything else is dropped. */
std::string
slugify(const std::string &heading)
{
    std::string slug;
    for (char c : heading) {
        unsigned char u = static_cast<unsigned char>(c);
        if (std::isalnum(u)) {
            slug += static_cast<char>(std::tolower(u));
        } else if (c == ' ' || c == '-') {
            slug += '-';
        } else if (c == '_') {
            slug += '_';
        }
        // other punctuation: dropped
    }
    return slug;
}

/** Strip markdown decorations that GitHub ignores when slugging:
 *  inline code backticks, emphasis, and trailing anchors/links. */
std::string
headingText(const std::string &line)
{
    std::size_t start = line.find_first_not_of('#');
    std::string text =
        start == std::string::npos ? "" : line.substr(start);
    // Trim.
    while (!text.empty() && text.front() == ' ')
        text.erase(text.begin());
    while (!text.empty() &&
           (text.back() == ' ' || text.back() == '#'))
        text.pop_back();
    std::string out;
    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (c == '`' || c == '*')
            continue;
        if (c == '[') { // [label](target) -> label
            std::size_t close = text.find(']', i);
            if (close != std::string::npos) {
                out += text.substr(i + 1, close - i - 1);
                std::size_t paren = close + 1;
                if (paren < text.size() && text[paren] == '(') {
                    std::size_t end = text.find(')', paren);
                    i = end == std::string::npos ? text.size() : end;
                } else {
                    i = close;
                }
                continue;
            }
        }
        out += c;
    }
    return out;
}

/** All heading anchors of a markdown document, with GitHub's
 *  duplicate suffix rule applied. */
std::set<std::string>
collectAnchors(const std::string &content)
{
    std::set<std::string> anchors;
    std::map<std::string, int> seen;
    std::istringstream in(content);
    std::string line;
    bool in_fence = false;
    while (std::getline(in, line)) {
        if (line.rfind("```", 0) == 0) {
            in_fence = !in_fence;
            continue;
        }
        if (in_fence || line.empty() || line[0] != '#')
            continue;
        std::size_t level = line.find_first_not_of('#');
        if (level == std::string::npos || level > 6 ||
            line[level] != ' ')
            continue;
        std::string slug = slugify(headingText(line));
        int &n = seen[slug];
        anchors.insert(n == 0 ? slug
                              : slug + "-" + std::to_string(n));
        ++n;
    }
    return anchors;
}

/** Directory part of a path ("" when none). */
std::string
dirOf(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash + 1);
}

/** Resolve "." and ".." components. */
std::string
normalize(const std::string &path)
{
    std::vector<std::string> parts;
    std::istringstream in(path);
    std::string part;
    while (std::getline(in, part, '/')) {
        if (part.empty() || part == ".")
            continue;
        if (part == ".." && !parts.empty() && parts.back() != "..")
            parts.pop_back();
        else
            parts.push_back(part);
    }
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i)
        out += (i ? "/" : "") + parts[i];
    return out;
}

struct Link
{
    std::string target;
    int line;
};

/** Inline links/images outside fenced code blocks and inline code. */
std::vector<Link>
collectLinks(const std::string &content)
{
    std::vector<Link> links;
    std::istringstream in(content);
    std::string line;
    int lineno = 0;
    bool in_fence = false;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.rfind("```", 0) == 0 ||
            line.rfind("    ```", 0) == 0) {
            in_fence = !in_fence;
            continue;
        }
        if (in_fence)
            continue;
        bool in_code = false;
        for (std::size_t i = 0; i + 1 < line.size(); ++i) {
            if (line[i] == '`') {
                in_code = !in_code;
                continue;
            }
            if (in_code || line[i] != ']' || line[i + 1] != '(')
                continue;
            std::size_t end = line.find(')', i + 2);
            if (end == std::string::npos)
                continue;
            std::string target = line.substr(i + 2, end - i - 2);
            // Strip an optional title: (path "title")
            std::size_t space = target.find(' ');
            if (space != std::string::npos)
                target = target.substr(0, space);
            if (!target.empty())
                links.push_back({target, lineno});
        }
    }
    return links;
}

bool
isExternal(const std::string &target)
{
    return target.rfind("http://", 0) == 0 ||
           target.rfind("https://", 0) == 0 ||
           target.rfind("mailto:", 0) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: slinfer_doccheck <file.md> [...]\n");
        return 2;
    }

    // Load every document once; anchor sets are reused across links.
    std::map<std::string, std::string> docs;
    for (int i = 1; i < argc; ++i) {
        std::string content;
        if (!readFile(argv[i], content)) {
            std::fprintf(stderr, "doccheck: cannot read %s\n",
                         argv[i]);
            return 2;
        }
        docs[normalize(argv[i])] = content;
    }

    std::map<std::string, std::set<std::string>> anchorCache;
    int broken = 0;
    std::size_t checked = 0;

    for (const auto &[path, content] : docs) {
        for (const Link &link : collectLinks(content)) {
            if (isExternal(link.target))
                continue;
            ++checked;
            std::string target = link.target;
            std::string fragment;
            std::size_t hash = target.find('#');
            if (hash != std::string::npos) {
                fragment = target.substr(hash + 1);
                target = target.substr(0, hash);
            }
            std::string resolved =
                target.empty() ? path
                               : normalize(dirOf(path) + target);
            // The file must exist (any file in the repo counts, not
            // just the .md set passed on the command line).
            std::string probe;
            bool exists = docs.count(resolved) > 0 ||
                          readFile(resolved, probe);
            if (!exists) {
                std::fprintf(stderr,
                             "%s:%d: broken link: %s (no such "
                             "file %s)\n",
                             path.c_str(), link.line,
                             link.target.c_str(), resolved.c_str());
                ++broken;
                continue;
            }
            if (fragment.empty())
                continue;
            // Anchor checks only apply to markdown targets.
            if (resolved.size() < 3 ||
                resolved.substr(resolved.size() - 3) != ".md")
                continue;
            if (!anchorCache.count(resolved)) {
                // `probe` already holds the content when the target
                // was not on the command line (the existence check
                // read it); otherwise use the loaded document.
                anchorCache[resolved] = collectAnchors(
                    docs.count(resolved) ? docs[resolved] : probe);
            }
            if (!anchorCache[resolved].count(fragment)) {
                std::fprintf(stderr,
                             "%s:%d: broken anchor: %s (no heading "
                             "'#%s' in %s)\n",
                             path.c_str(), link.line,
                             link.target.c_str(), fragment.c_str(),
                             resolved.c_str());
                ++broken;
            }
        }
    }

    std::printf("doccheck: %zu intra-repo links checked across %zu "
                "files, %d broken\n",
                checked, docs.size(), broken);
    return broken == 0 ? 0 : 1;
}
