/**
 * @file
 * slinfer_tracepack: convert arrival traces to/from the compressed
 * columnar `.strc` format (stream/codec.hh) that `slinfer_run
 * --stream-trace` replays under bounded memory.
 *
 *   slinfer_tracepack pack --csv=in.csv --out=trace.strc
 *   slinfer_tracepack pack --scenario=azure-64 --out=trace.strc
 *   slinfer_tracepack pack --azure=models=64,duration=3600,rpm=260 \
 *                          --out=big.strc
 *   slinfer_tracepack unpack --in=trace.strc [--out=trace.csv]
 *   slinfer_tracepack info trace.strc
 *   slinfer_tracepack head trace.strc [-n 20]
 *
 * CSV rows are `time,model[,input_len,target_output]` (header line and
 * `#` comments skipped). Lengths are optional; a file packed with them
 * replays those exact lengths, one packed without samples lengths from
 * the experiment's dataset config, exactly like a generated trace.
 * `unpack` prints timestamps with 17 significant digits, so
 * pack → unpack → pack reproduces the identical record stream
 * (tests/test_stream.cc holds the codec to bitwise round-trips).
 *
 * Exit code: 0 success, 1 I/O or data error, 2 usage error.
 */

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "scenario/scenario.hh"
#include "stream/codec.hh"
#include "workload/azure_trace.hh"

using namespace slinfer;

namespace
{

void
usage(std::FILE *to)
{
    std::fprintf(to,
        "usage: slinfer_tracepack <command> [options]\n"
        "commands:\n"
        "  pack    build a .strc from one input source:\n"
        "    --csv=<file>        rows: time,model[,input,output]\n"
        "    --scenario=<name>   expand a catalog scenario's arrivals\n"
        "    --azure=<k=v,..>    synthetic Azure-style trace; keys:\n"
        "                        models, duration, rpm (per-model),\n"
        "                        seed\n"
        "    --out=<file>        output path (required)\n"
        "    --seed=<n>          scenario seed override\n"
        "    --chunk=<n>         records per chunk (default 65536)\n"
        "    --head=<n>          keep only the first n records\n"
        "  unpack  decode a .strc back to CSV:\n"
        "    --in=<file>         input path (required)\n"
        "    --out=<file>        output path (default stdout)\n"
        "  info <file>     print header/summary\n"
        "  head <file> [-n N]   print the first N records (default "
        "10)\n");
}

std::uint64_t
parseCount(const std::string &tok, const char *flag)
{
    char *end = nullptr;
    errno = 0;
    std::uint64_t v = std::strtoull(tok.c_str(), &end, 10);
    if (tok.empty() || tok[0] == '-' || errno == ERANGE ||
        end != tok.c_str() + tok.size()) {
        std::fprintf(stderr, "%s: malformed value '%s'\n", flag,
                     tok.c_str());
        std::exit(2);
    }
    return v;
}

/** Parse a CSV trace. Returns false after printing the offending
 *  line. Lengths are all-or-nothing: mixing 2- and 4-column data rows
 *  is an error (a half-lengthed file cannot replay coherently).
 *  `# window=<s>` / `# models=<n>` comments (what unpack emits) carry
 *  the header fields, so pack → unpack → pack is lossless. */
bool
loadCsv(const std::string &path, std::vector<stream::TraceRecord> &recs,
        bool &has_lengths, Seconds &window, std::uint32_t &models)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    std::string line;
    int lineno = 0;
    int cols_seen = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.rfind("# window=", 0) == 0) {
            window = std::strtod(line.c_str() + 9, nullptr);
            continue;
        }
        if (line.rfind("# models=", 0) == 0) {
            models = static_cast<std::uint32_t>(
                std::strtoul(line.c_str() + 9, nullptr, 10));
            continue;
        }
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string cell;
        std::vector<std::string> cells;
        while (std::getline(ls, cell, ','))
            cells.push_back(cell);
        if (cells.empty())
            continue;
        char *end = nullptr;
        double t = std::strtod(cells[0].c_str(), &end);
        if (end == cells[0].c_str()) {
            if (cols_seen == 0 && recs.empty())
                continue; // header row
            std::fprintf(stderr, "%s:%d: malformed time '%s'\n",
                         path.c_str(), lineno, cells[0].c_str());
            return false;
        }
        if (cells.size() != 2 && cells.size() != 4) {
            std::fprintf(stderr,
                         "%s:%d: expected 2 or 4 columns, got %zu\n",
                         path.c_str(), lineno, cells.size());
            return false;
        }
        if (cols_seen == 0)
            cols_seen = static_cast<int>(cells.size());
        if (cols_seen != static_cast<int>(cells.size())) {
            std::fprintf(stderr,
                         "%s:%d: mixed %d- and %zu-column rows\n",
                         path.c_str(), lineno, cols_seen, cells.size());
            return false;
        }
        stream::TraceRecord r;
        r.time = t;
        r.model = static_cast<std::uint32_t>(
            parseCount(cells[1], "model column"));
        if (cells.size() == 4) {
            r.inputLen = static_cast<std::uint32_t>(
                parseCount(cells[2], "input column"));
            r.targetOutput = static_cast<std::uint32_t>(
                parseCount(cells[3], "output column"));
        }
        if (!recs.empty() && r.time < recs.back().time) {
            std::fprintf(stderr,
                         "%s:%d: timestamps must be nondecreasing "
                         "(%.17g after %.17g)\n",
                         path.c_str(), lineno, r.time,
                         recs.back().time);
            return false;
        }
        recs.push_back(r);
    }
    has_lengths = cols_seen == 4;
    return true;
}

/** Parse "--azure=models=64,duration=3600,rpm=260,seed=1". */
bool
parseAzureSpec(const std::string &spec, AzureTraceConfig &cfg)
{
    std::istringstream in(spec);
    std::string kv;
    while (std::getline(in, kv, ',')) {
        std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
            std::fprintf(stderr, "--azure: malformed '%s'\n",
                         kv.c_str());
            return false;
        }
        std::string key = kv.substr(0, eq), val = kv.substr(eq + 1);
        char *end = nullptr;
        double num = std::strtod(val.c_str(), &end);
        if (end != val.c_str() + val.size()) {
            std::fprintf(stderr, "--azure: malformed value '%s'\n",
                         val.c_str());
            return false;
        }
        if (key == "models")
            cfg.numModels = static_cast<int>(num);
        else if (key == "duration")
            cfg.duration = num;
        else if (key == "rpm")
            cfg.perModelRpm = num;
        else if (key == "seed")
            cfg.seed = static_cast<std::uint64_t>(num);
        else {
            std::fprintf(stderr, "--azure: unknown key '%s'\n",
                         key.c_str());
            return false;
        }
    }
    return true;
}

int
cmdPack(const std::vector<std::string> &args)
{
    std::string csv_path, scenario_name, azure_spec, out_path;
    std::uint64_t seed = 0;
    bool seed_set = false;
    std::uint32_t chunk = stream::kStrcChunkCap;
    std::uint64_t head = 0;

    for (const std::string &arg : args) {
        auto value = [&arg]() {
            return arg.substr(arg.find('=') + 1);
        };
        if (arg.rfind("--csv=", 0) == 0)
            csv_path = value();
        else if (arg.rfind("--scenario=", 0) == 0)
            scenario_name = value();
        else if (arg.rfind("--azure=", 0) == 0)
            azure_spec = value();
        else if (arg.rfind("--out=", 0) == 0)
            out_path = value();
        else if (arg.rfind("--seed=", 0) == 0) {
            seed = parseCount(value(), "--seed");
            seed_set = true;
        } else if (arg.rfind("--chunk=", 0) == 0) {
            chunk = static_cast<std::uint32_t>(
                parseCount(value(), "--chunk"));
            if (chunk == 0) {
                std::fprintf(stderr, "--chunk must be positive\n");
                return 2;
            }
        } else if (arg.rfind("--head=", 0) == 0) {
            head = parseCount(value(), "--head");
        } else {
            std::fprintf(stderr, "pack: unknown option %s\n",
                         arg.c_str());
            return 2;
        }
    }
    int sources = (csv_path.empty() ? 0 : 1) +
                  (scenario_name.empty() ? 0 : 1) +
                  (azure_spec.empty() ? 0 : 1);
    if (sources != 1 || out_path.empty()) {
        std::fprintf(stderr, "pack: need exactly one of --csv/"
                             "--scenario/--azure, plus --out\n");
        return 2;
    }

    std::vector<stream::TraceRecord> recs;
    bool has_lengths = false;
    std::uint32_t num_models = 0;
    Seconds duration = 0.0;

    if (!csv_path.empty()) {
        if (!loadCsv(csv_path, recs, has_lengths, duration,
                     num_models))
            return 1;
        for (const auto &r : recs)
            num_models = std::max(num_models, r.model + 1);
        if (duration <= 0)
            duration = recs.empty() ? 0.0 : recs.back().time;
    } else {
        AzureTrace trace;
        if (!scenario_name.empty()) {
            const scenario::Scenario *sc =
                scenario::byName(scenario_name);
            if (!sc) {
                std::fprintf(stderr, "unknown scenario '%s'\n",
                             scenario_name.c_str());
                return 2;
            }
            trace = sc->arrivals->generate(seed_set ? seed : sc->seed);
            num_models = static_cast<std::uint32_t>(sc->models.size());
        } else {
            AzureTraceConfig tc;
            if (seed_set)
                tc.seed = seed;
            if (!parseAzureSpec(azure_spec, tc))
                return 2;
            trace = generateAzureTrace(tc);
            num_models = static_cast<std::uint32_t>(tc.numModels);
        }
        duration = trace.duration;
        recs.reserve(trace.arrivals.size());
        for (const Arrival &a : trace.arrivals) {
            stream::TraceRecord r;
            r.time = a.time;
            r.model = a.model;
            recs.push_back(r);
        }
    }
    if (head > 0 && recs.size() > head) {
        recs.resize(head);
        // The metrics window shrinks with the cut, or the replay would
        // idle for the whole truncated tail.
        duration = recs.empty() ? 0.0 : recs.back().time;
    }

    stream::StrcHeader hdr;
    hdr.hasLengths = has_lengths;
    hdr.numModels = num_models;
    hdr.duration = duration;
    std::string err;
    stream::StrcWriter w;
    if (!w.open(out_path, hdr, &err, chunk)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 1;
    }
    for (const auto &r : recs)
        w.add(r);
    if (!w.finish(&err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "wrote %s: %zu records, %u models, %.17g s window%s\n",
                 out_path.c_str(), recs.size(), num_models, duration,
                 has_lengths ? ", with lengths" : "");
    return 0;
}

int
cmdUnpack(const std::vector<std::string> &args)
{
    std::string in_path, out_path;
    for (const std::string &arg : args) {
        auto value = [&arg]() {
            return arg.substr(arg.find('=') + 1);
        };
        if (arg.rfind("--in=", 0) == 0)
            in_path = value();
        else if (arg.rfind("--out=", 0) == 0)
            out_path = value();
        else {
            std::fprintf(stderr, "unpack: unknown option %s\n",
                         arg.c_str());
            return 2;
        }
    }
    if (in_path.empty()) {
        std::fprintf(stderr, "unpack: --in is required\n");
        return 2;
    }
    std::string err;
    stream::StrcReader rd;
    if (!rd.open(in_path, &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 1;
    }
    if (rd.recovered())
        std::fprintf(stderr,
                     "%s: torn tail recovered; %" PRIu64 " of %" PRIu64
                     " records survive\n",
                     in_path.c_str(), rd.recordCount(),
                     rd.header().totalRequests);

    std::FILE *out = stdout;
    if (!out_path.empty()) {
        out = std::fopen(out_path.c_str(), "w");
        if (!out) {
            std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
            return 1;
        }
    }
    bool lengths = rd.header().hasLengths;
    std::fprintf(out, "# window=%.17g\n# models=%u\n",
                 rd.header().duration, rd.header().numModels);
    std::fprintf(out, lengths ? "time,model,input,output\n"
                              : "time,model\n");
    stream::TraceRecord r;
    while (rd.next(r)) {
        if (lengths)
            std::fprintf(out, "%.17g,%u,%u,%u\n", r.time, r.model,
                         r.inputLen, r.targetOutput);
        else
            std::fprintf(out, "%.17g,%u\n", r.time, r.model);
    }
    if (out != stdout)
        std::fclose(out);
    return 0;
}

int
cmdInfo(const std::string &path)
{
    std::string err;
    stream::StrcReader rd;
    if (!rd.open(path, &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 1;
    }
    const stream::StrcHeader &h = rd.header();
    std::printf("file:        %s\n", path.c_str());
    std::printf("records:     %" PRIu64 "\n", rd.recordCount());
    std::printf("models:      %u\n", h.numModels);
    std::printf("window:      %.17g s\n", h.duration);
    std::printf("lengths:     %s\n", h.hasLengths ? "yes" : "no");
    std::printf("payload:     %" PRIu64 " bytes compressed\n",
                rd.compressedBytes());
    if (rd.recordCount() > 0)
        std::printf("bytes/rec:   %.2f\n",
                    static_cast<double>(rd.compressedBytes()) /
                        static_cast<double>(rd.recordCount()));
    std::printf("recovered:   %s\n", rd.recovered() ? "yes (torn tail)"
                                                    : "no");
    return 0;
}

int
cmdHead(const std::vector<std::string> &args)
{
    std::string path;
    std::uint64_t n = 10;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "-n" && i + 1 < args.size())
            n = parseCount(args[++i], "-n");
        else if (path.empty())
            path = args[i];
        else {
            std::fprintf(stderr, "head: unexpected argument %s\n",
                         args[i].c_str());
            return 2;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr, "head: file argument required\n");
        return 2;
    }
    std::string err;
    stream::StrcReader rd;
    if (!rd.open(path, &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 1;
    }
    bool lengths = rd.header().hasLengths;
    stream::TraceRecord r;
    for (std::uint64_t i = 0; i < n && rd.next(r); ++i) {
        if (lengths)
            std::printf("%.17g,%u,%u,%u\n", r.time, r.model,
                        r.inputLen, r.targetOutput);
        else
            std::printf("%.17g,%u\n", r.time, r.model);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(stderr);
        return 2;
    }
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (cmd == "--help" || cmd == "-h") {
        usage(stdout);
        return 0;
    }
    if (cmd == "pack")
        return cmdPack(args);
    if (cmd == "unpack")
        return cmdUnpack(args);
    if (cmd == "info") {
        if (args.size() != 1) {
            std::fprintf(stderr, "info: one file argument required\n");
            return 2;
        }
        return cmdInfo(args[0]);
    }
    if (cmd == "head")
        return cmdHead(args);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    usage(stderr);
    return 2;
}
