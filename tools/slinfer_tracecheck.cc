/**
 * @file
 * slinfer_tracecheck: validate Chrome trace_event JSON emitted by
 * slinfer_run --trace (the CI smoke job runs it on the artifact it
 * uploads).
 *
 *   slinfer_tracecheck trace.json [more.json ...]
 *   slinfer_tracecheck --stats trace.json
 *
 * --stats additionally prints, per category, the event count and the
 * total duration of its 'X' spans — a quick profile of what a trace
 * holds before opening it in Perfetto.
 *
 * Checks, per file:
 *   - the document parses and is {"traceEvents": [...]};
 *   - every event is an object with a known ph and numeric pid/tid;
 *   - non-metadata timestamps are numeric, nonnegative and
 *     nondecreasing in array order (the recorder's insertion-order ==
 *     time-order contract);
 *   - 'X' events carry a nonnegative dur, async events ('b'/'e'/'n')
 *     carry an id, and 'i' events carry a scope.
 *
 * Exit code: 0 all files valid, 1 any invalid, 2 usage error.
 */

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sweep/json.hh"

using slinfer::sweep::JsonValue;
using slinfer::sweep::parseJson;

namespace
{

bool
fail(const std::string &path, std::size_t index, const std::string &why)
{
    std::fprintf(stderr, "%s: event %zu: %s\n", path.c_str(), index,
                 why.c_str());
    return false;
}

/** Per-category tally for --stats. */
struct CatStats
{
    std::size_t events = 0;
    std::size_t spans = 0;   ///< 'X' events
    double spanSeconds = 0.0; ///< summed 'X' durations
};

bool
checkFile(const std::string &path, bool stats)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "%s: cannot open\n", path.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();

    JsonValue doc;
    std::string err;
    if (!parseJson(ss.str(), doc, &err)) {
        std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    if (!doc.isObject()) {
        std::fprintf(stderr, "%s: root is not an object\n", path.c_str());
        return false;
    }
    const JsonValue *events = doc.find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr, "%s: missing traceEvents array\n",
                     path.c_str());
        return false;
    }

    const std::string known_ph = "MXibenBE";
    double last_ts = 0.0;
    bool have_ts = false;
    // Ordered map: the stats listing is alphabetical and stable.
    std::map<std::string, CatStats> byCat;
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &e = events->array[i];
        if (!e.isObject())
            return fail(path, i, "not an object");

        const JsonValue *ph = e.find("ph");
        if (!ph || !ph->isString() || ph->str.size() != 1 ||
            known_ph.find(ph->str) == std::string::npos)
            return fail(path, i, "missing or unknown ph");

        const JsonValue *pid = e.find("pid");
        const JsonValue *tid = e.find("tid");
        if (!pid || !pid->isNumber() || !tid || !tid->isNumber())
            return fail(path, i, "missing numeric pid/tid");
        const JsonValue *name = e.find("name");
        if (!name || !name->isString())
            return fail(path, i, "missing name");

        if (ph->str == "M")
            continue; // metadata carries no timestamp

        const JsonValue *ts = e.find("ts");
        if (!ts || !ts->isNumber() || ts->number < 0)
            return fail(path, i, "missing or negative ts");
        if (have_ts && ts->number < last_ts)
            return fail(path, i, "timestamps not nondecreasing");
        last_ts = ts->number;
        have_ts = true;

        if (stats) {
            const JsonValue *cat = e.find("cat");
            CatStats &c =
                byCat[cat && cat->isString() ? cat->str : "(none)"];
            ++c.events;
        }
        if (ph->str == "X") {
            const JsonValue *dur = e.find("dur");
            if (!dur || !dur->isNumber() || dur->number < 0)
                return fail(path, i, "'X' without nonnegative dur");
            if (stats) {
                const JsonValue *cat = e.find("cat");
                CatStats &c =
                    byCat[cat && cat->isString() ? cat->str : "(none)"];
                ++c.spans;
                c.spanSeconds += dur->number * 1e-6; // ts/dur are µs
            }
        }
        if (ph->str == "b" || ph->str == "e" || ph->str == "n") {
            const JsonValue *id = e.find("id");
            if (!id || !id->isNumber())
                return fail(path, i, "async event without id");
        }
        if (ph->str == "i") {
            const JsonValue *scope = e.find("s");
            if (!scope || !scope->isString())
                return fail(path, i, "'i' without scope");
        }
    }

    std::printf("%s: %zu events OK\n", path.c_str(),
                events->array.size());
    if (stats) {
        for (const auto &[cat, c] : byCat) {
            std::printf("  %-14s %8zu events  %6zu spans  %10.3f s\n",
                        cat.c_str(), c.events, c.spans, c.spanSeconds);
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool stats = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--stats")
            stats = true;
        else
            paths.push_back(std::move(arg));
    }
    if (paths.empty()) {
        std::fprintf(stderr, "usage: slinfer_tracecheck [--stats] "
                             "<trace.json> [...]\n");
        return 2;
    }
    bool ok = true;
    for (const std::string &p : paths)
        ok = checkFile(p, stats) && ok;
    return ok ? 0 : 1;
}
