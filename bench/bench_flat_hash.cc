/**
 * @file
 * FlatHashMap vs the std::map tables it replaced (DESIGN.md, "Flat
 * hash tables"): insert and lookup throughput on the key shapes the
 * simulator actually probes — short model/hardware name strings and
 * (hardware, model) string pairs.
 *
 * Three table shapes, each measured for build and for hit/miss probes:
 *
 *  1. string -> int   (model-preset resolution, sweep hash dedup)
 *  2. (string, string) -> int  (quantifier profile lookup), probed
 *     heterogeneously with string_views — the std::map side pays the
 *     temporary pair<string,string> construction the flat table's
 *     transparent functors avoid, because that is exactly the
 *     comparison that motivated the swap.
 *
 * Pure micro-bench: human table only, no baseline gate — the measured
 * numbers are recorded in DESIGN.md next to the design rationale.
 *   --keys=<n> --repeat=<r> --probes=<n>
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/flat_hash.hh"
#include "common/table.hh"

using namespace slinfer;

namespace
{

double
wallSeconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** Deterministic short keys in the repo's naming shape. */
std::vector<std::string>
makeKeys(std::size_t n, const char *stem)
{
    std::vector<std::string> keys;
    keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        keys.push_back(std::string(stem) + "-" + std::to_string(i * 7919));
    return keys;
}

struct Timings
{
    double build = 0.0; ///< inserts/sec
    double hit = 0.0;   ///< present-key probes/sec
    double miss = 0.0;  ///< absent-key probes/sec
};

template <typename BuildFn, typename ProbeFn>
Timings
measure(int repeat, std::size_t keys, std::size_t probes,
        BuildFn &&build, ProbeFn &&probe)
{
    Timings best;
    for (int r = 0; r < repeat; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        auto table = build();
        double w = wallSeconds(t0);
        if (w > 0)
            best.build = std::max(best.build, keys / w);

        t0 = std::chrono::steady_clock::now();
        std::size_t hits = probe(table, /*present=*/true);
        w = wallSeconds(t0);
        if (hits != probes)
            fatal("bench_flat_hash: hit probe missed");
        if (w > 0)
            best.hit = std::max(best.hit, probes / w);

        t0 = std::chrono::steady_clock::now();
        std::size_t misses = probe(table, /*present=*/false);
        w = wallSeconds(t0);
        if (misses != 0)
            fatal("bench_flat_hash: miss probe hit");
        if (w > 0)
            best.miss = std::max(best.miss, probes / w);
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t nkeys = 10000;
    std::size_t probes = 2000000;
    int repeat = 3;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg]() {
            return arg.substr(arg.find('=') + 1);
        };
        if (arg.rfind("--keys=", 0) == 0) {
            nkeys = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg.rfind("--probes=", 0) == 0) {
            probes = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg.rfind("--repeat=", 0) == 0) {
            repeat = std::atoi(value().c_str());
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return 2;
        }
    }
    if (nkeys == 0 || probes == 0 || repeat <= 0) {
        std::fprintf(stderr, "--keys/--probes/--repeat must be positive\n");
        return 2;
    }

    std::vector<std::string> keys = makeKeys(nkeys, "model");
    std::vector<std::string> absent = makeKeys(nkeys, "absent");

    // ---- shape 1: string -> int -------------------------------------
    auto probeString = [&](auto &table, bool present) {
        std::size_t found = 0;
        const std::vector<std::string> &pool = present ? keys : absent;
        for (std::size_t i = 0; i < probes; ++i) {
            const std::string &k = pool[(i * 131) % pool.size()];
            if constexpr (std::is_same_v<
                              std::decay_t<decltype(table)>,
                              std::map<std::string, int>>) {
                found += table.find(k) != table.end();
            } else {
                found += table.find(std::string_view(k)) != nullptr;
            }
        }
        return found ? probes : 0; // normalize: all-hit or all-miss
    };
    Timings flat_s = measure(
        repeat, nkeys, probes,
        [&] {
            FlatHashMap<std::string, int> m;
            for (std::size_t i = 0; i < nkeys; ++i)
                m.emplace(keys[i], static_cast<int>(i));
            return m;
        },
        probeString);
    Timings map_s = measure(
        repeat, nkeys, probes,
        [&] {
            std::map<std::string, int> m;
            for (std::size_t i = 0; i < nkeys; ++i)
                m.emplace(keys[i], static_cast<int>(i));
            return m;
        },
        probeString);

    // ---- shape 2: (string, string) -> int, heterogeneous probe ------
    std::vector<std::string> hw = makeKeys(64, "hw");
    auto pairKey = [&](std::size_t i) {
        return std::make_pair(hw[i % hw.size()], keys[i % nkeys]);
    };
    std::size_t npairs = nkeys;
    auto probePair = [&](auto &table, bool present) {
        std::size_t found = 0;
        for (std::size_t i = 0; i < probes; ++i) {
            std::size_t j = (i * 131) % npairs;
            const std::string &a = hw[j % hw.size()];
            const std::string &b =
                present ? keys[j % nkeys] : absent[j % nkeys];
            if constexpr (std::is_same_v<
                              std::decay_t<decltype(table)>,
                              std::map<std::pair<std::string, std::string>,
                                       int>>) {
                // The pre-swap shape: probing allocates the temporary
                // pair of owned strings std::map::find demands.
                found += table.find(std::make_pair(a, b)) != table.end();
            } else {
                found += table.find(std::make_pair(
                             std::string_view(a), std::string_view(b))) !=
                         nullptr;
            }
        }
        return found ? probes : 0;
    };
    Timings flat_p = measure(
        repeat, npairs, probes,
        [&] {
            FlatHashMap<std::pair<std::string, std::string>, int,
                        FlatStringPairHash, FlatStringPairEq>
                m;
            for (std::size_t i = 0; i < npairs; ++i)
                m.emplace(pairKey(i), static_cast<int>(i));
            return m;
        },
        probePair);
    Timings map_p = measure(
        repeat, npairs, probes,
        [&] {
            std::map<std::pair<std::string, std::string>, int> m;
            for (std::size_t i = 0; i < npairs; ++i)
                m.emplace(pairKey(i), static_cast<int>(i));
            return m;
        },
        probePair);

    Table t({"table shape", "op", "flat M/s", "std::map M/s", "speedup"});
    auto row = [&t](const char *shape, const char *op, double f,
                    double m) {
        t.addRow({shape, op, Table::num(f / 1e6, 1),
                  Table::num(m / 1e6, 1),
                  Table::num(m > 0 ? f / m : 0.0, 2) + "x"});
    };
    row("string->int", "build", flat_s.build, map_s.build);
    row("string->int", "find hit", flat_s.hit, map_s.hit);
    row("string->int", "find miss", flat_s.miss, map_s.miss);
    row("(string,string)->int", "build", flat_p.build, map_p.build);
    row("(string,string)->int", "find hit", flat_p.hit, map_p.hit);
    row("(string,string)->int", "find miss", flat_p.miss, map_p.miss);
    std::printf("flat hash vs std::map (%zu keys, %zu probes, best of "
                "%d)\n",
                nkeys, probes, repeat);
    t.print();
    return 0;
}
