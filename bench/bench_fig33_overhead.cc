/**
 * @file
 * Fig. 33: SLINFER's own scheduling overhead, measured on this
 * implementation with google-benchmark — shadow validation per arrival
 * and the token-level scheduling decision per iteration, as the
 * cluster grows from 2 to 8 nodes. Paper: both stay well under a
 * millisecond; validation grows mildly with candidate count, the
 * token-level decision is scale-independent (per node).
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "core/headroom.hh"
#include "core/shadow_validator.hh"

using namespace slinfer;

namespace
{

struct Setup
{
    std::vector<std::unique_ptr<Node>> nodes;
    std::vector<std::unique_ptr<Instance>> instances;
    std::vector<std::unique_ptr<Request>> requests;
    Quantifier quant;
    std::unique_ptr<ShadowValidator> validator;
    Request candidate;

    explicit Setup(int num_nodes)
    {
        quant.profile(a100_80g(), llama2_7b());
        validator = std::make_unique<ShadowValidator>(
            quant, ShadowConfig{1.10, 0.25, 500});
        InstanceId iid = 1;
        RequestId rid = 1;
        for (int n = 0; n < num_nodes; ++n) {
            nodes.push_back(
                std::make_unique<Node>(n, a100_80g(), 1));
            Partition *part = nodes.back()->partitions()[0].get();
            for (int i = 0; i < 4; ++i) {
                auto inst = std::make_unique<Instance>(
                    iid++, 0, llama2_7b(), part, a100_80g(),
                    Bytes{8'000'000'000});
                inst->state = InstanceState::Active;
                for (int j = 0; j < 4; ++j) {
                    auto r = std::make_unique<Request>();
                    r->id = rid++;
                    r->arrival = 0.0;
                    r->inputLen = 1024;
                    r->targetOutput = 200;
                    r->generated = 10 + j;
                    r->ttftSlo = 2.0;
                    r->tpotSlo = 0.25;
                    r->state = RequestState::Decode;
                    inst->decodeBatch.push_back(r.get());
                    requests.push_back(std::move(r));
                }
                instances.push_back(std::move(inst));
                part->instances.push_back(instances.back().get());
            }
        }
        candidate.id = rid;
        candidate.arrival = 10.0;
        candidate.inputLen = 1024;
        candidate.targetOutput = 200;
        candidate.ttftSlo = 2.0;
        candidate.tpotSlo = 0.25;
    }
};

void
BM_ShadowValidation(benchmark::State &state)
{
    Setup setup(static_cast<int>(state.range(0)));
    Partition *part = setup.nodes[0]->partitions()[0].get();
    Instance *target = part->instances[0];
    for (auto _ : state) {
        benchmark::DoNotOptimize(setup.validator->canAdmit(
            *part, target, setup.candidate, 10.0, 10.0));
    }
}

void
BM_TokenLevelDecision(benchmark::State &state)
{
    Setup setup(static_cast<int>(state.range(0)));
    Partition *part = setup.nodes[0]->partitions()[0].get();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pickMostUrgentInstance(*part, 10.0));
    }
}

} // namespace

BENCHMARK(BM_ShadowValidation)->Arg(2)->Arg(4)->Arg(6)->Arg(8);
BENCHMARK(BM_TokenLevelDecision)->Arg(2)->Arg(4)->Arg(6)->Arg(8);
BENCHMARK_MAIN();
