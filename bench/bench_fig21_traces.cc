/**
 * @file
 * Fig. 21: characterization of the 32/64/128-model Azure-style traces.
 * Paper: 2366/4684/9266 total requests over 30 min (aggregate RPM
 * 79/156/309); most models see a handful of requests per hour while
 * the head is bursty.
 */

#include <algorithm>

#include "bench_util.hh"

using namespace slinfer;

int
main()
{
    printBanner("Fig. 21 - Azure-style trace characterization");
    Table t({"models", "total reqs", "paper", "agg RPM", "paper",
             "median RPM", "top1% share", "top5% share"});
    int paper_total[3] = {2366, 4684, 9266};
    int paper_rpm[3] = {79, 156, 309};
    int idx = 0;
    for (int n : {32, 64, 128}) {
        AzureTraceConfig tc;
        tc.numModels = n;
        tc.seed = bench::kSeed;
        AzureTrace tr = generateAzureTrace(tc);
        std::vector<double> rates = tr.perModelRpm;
        std::sort(rates.begin(), rates.end());
        t.addRow({Table::num(static_cast<long long>(n)),
                  Table::num(static_cast<long long>(tr.totalRequests())),
                  Table::num(static_cast<long long>(paper_total[idx])),
                  Table::num(tr.aggregateRpm(tc.duration), 0),
                  Table::num(static_cast<long long>(paper_rpm[idx])),
                  Table::num(rates[rates.size() / 2], 2),
                  Table::pct(tr.topShare(0.01)),
                  Table::pct(tr.topShare(0.05))});
        ++idx;
    }
    t.print();
    return 0;
}
