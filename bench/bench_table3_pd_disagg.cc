/**
 * @file
 * Table III: aggregated vs prefill-decode-disaggregated serving for
 * sllm+c+s and SLINFER at 32/64/128 7B models. Paper: disaggregation
 * increases GPU usage and cuts the SLO rate at serverless load levels
 * (prefill instances idle ~93% of their lifetime).
 */

#include "bench_util.hh"

using namespace slinfer;

int
main()
{
    printBanner("Table III - PD aggregation vs disaggregation");
    Table t({"system", "models", "GPU used (agg/disagg)",
             "SLO rate (agg/disagg)"});
    struct Pair
    {
        SystemKind agg, pd;
        const char *name;
    };
    Pair pairs[2] = {
        {SystemKind::SllmCS, SystemKind::SllmCsPD, "sllm+c+s"},
        {SystemKind::Slinfer, SystemKind::SlinferPD, "SLINFER"},
    };
    for (const Pair &p : pairs) {
        for (int n : {32, 64, 128}) {
            Report agg = bench::runAzure(p.agg, llama2_7b(), n);
            Report pd = bench::runAzure(p.pd, llama2_7b(), n);
            t.addRow({p.name, Table::num(static_cast<long long>(n)),
                      Table::num(agg.avgGpuNodesUsed, 1) + " / " +
                          Table::num(pd.avgGpuNodesUsed, 1),
                      Table::pct(agg.sloRate) + " / " +
                          Table::pct(pd.sloRate)});
        }
    }
    t.print();
    bench::note("paper: e.g. SLINFER at 64 models: 2.5/2.9 GPUs and "
                "99/98% SLO; at 128: 4.0/4.0 and 86/69%");
    return 0;
}
