/**
 * @file
 * Design-choice ablation (DESIGN.md §5): the shadow validator's 10%
 * per-iteration overestimation. Too little lets noisy iterations break
 * admitted SLOs; too much rejects work the cluster could serve. The
 * paper fixes 10% (§VI-C); this sweep shows the trade-off.
 */

#include "bench_util.hh"

using namespace slinfer;

int
main()
{
    printBanner("Ablation - shadow validation overestimation (64 x 7B)");
    Table t({"overestimate", "SLO rate", "SLO-met", "dropped",
             "violated-completed"});
    for (double ov : {1.00, 1.05, 1.10, 1.25, 1.50}) {
        ControllerConfig ctl;
        ctl.overestimate = ov;
        Report r = bench::runAzure(SystemKind::Slinfer, llama2_7b(), 64,
                                   900.0, ClusterSpec{}, ctl);
        t.addRow({Table::pct(ov - 1.0), Table::pct(r.sloRate),
                  Table::num(static_cast<long long>(r.sloMet)),
                  Table::num(static_cast<long long>(r.dropped)),
                  Table::num(static_cast<long long>(r.completed -
                                                    r.sloMet))});
    }
    t.print();
    bench::note("the paper's 10% sits near the knee: enough margin for "
                "runtime noise without starving admissions");
    return 0;
}
