/**
 * @file
 * Figs. 10, 11, 28: host-CPU characterization of GPU-backed serving.
 * These are host measurements in the paper; we print the calibrated
 * analytic model documented in src/hw/host_cpu_model.hh.
 */

#include "bench_util.hh"
#include "hw/host_cpu_model.hh"
#include "hw/perf_model.hh"

using namespace slinfer;

int
main()
{
    printBanner("Fig. 10 - vLLM GPU decode throughput & host-CPU use");
    Table t({"batch", "decode tok/s", "host cores"});
    for (int b : {1, 2, 4, 8, 16, 32, 64}) {
        double iter = PerfModel::decodeTime(a100_80g(), llama2_7b(), b,
                                            1024);
        t.addRow({Table::num(static_cast<long long>(b)),
                  Table::num(b / iter, 0),
                  Table::num(HostCpuModel::coreUsage(b), 2)});
    }
    t.print();
    bench::note("paper: throughput rises with batch; CPU use never "
                "exceeds one core");

    printBanner("Fig. 11 - TPOT slowdown under background CPU stress");
    Table t2({"stress procs", "TPOT (ms)", "slowdown"});
    double base =
        PerfModel::decodeTime(a100_80g(), llama2_7b(), 64, 1024) * 1e3;
    for (int s : {0, 4, 8, 16, 32, 64}) {
        double slow = HostCpuModel::stressSlowdown(s, 32);
        t2.addRow({Table::num(static_cast<long long>(s)),
                   Table::num(base * slow, 1), Table::num(slow, 3)});
    }
    t2.print();
    bench::note("paper: 64 stress processes on 32 cores cost only ~4%");

    printBanner("Fig. 28 - host-CPU use vs colocated models");
    Table t3({"colocated", "total cores"});
    for (int n : {1, 2, 4, 8})
        t3.addRow({Table::num(static_cast<long long>(n)),
                   Table::num(HostCpuModel::colocatedCoreUsage(n), 2)});
    t3.print();
    bench::note("paper: eight colocated instances use just over one "
                "core (they take turns on the GPU)");
    return 0;
}
