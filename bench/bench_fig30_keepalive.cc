/**
 * @file
 * Fig. 30: keep-alive threshold sensitivity (0-8 s, 64 x 7B). Paper
 * (counter-intuitively): longer keep-alive can *worsen* P95 TTFT —
 * cold starts are already cheap while prolonged idle instances crowd
 * out new placements. A short threshold (1 s) balances both.
 */

#include "bench_util.hh"

using namespace slinfer;

int
main()
{
    printBanner("Fig. 30 - keep-alive threshold sensitivity (64 x 7B)");
    Table t({"keep-alive (s)", "sllm+c+s GPUs", "sllm+c+s p95 TTFT",
             "SLINFER GPUs", "SLINFER p95 TTFT"});
    for (double ka : {0.0, 1.0, 2.0, 4.0, 8.0}) {
        ControllerConfig ctl;
        ctl.keepAlive = ka;
        Report cs = bench::runAzure(SystemKind::SllmCS, llama2_7b(), 64,
                                    1800.0, ClusterSpec{}, ctl);
        Report sl = bench::runAzure(SystemKind::Slinfer, llama2_7b(), 64,
                                    1800.0, ClusterSpec{}, ctl);
        t.addRow({Table::num(ka, 0), Table::num(cs.avgGpuNodesUsed, 1),
                  Table::num(cs.p95Ttft, 2),
                  Table::num(sl.avgGpuNodesUsed, 1),
                  Table::num(sl.p95Ttft, 2)});
    }
    t.print();
    bench::note("paper: extending the threshold raises GPU usage and "
                "can even worsen P95 TTFT (idle crowding)");
    return 0;
}
