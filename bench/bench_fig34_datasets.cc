/**
 * @file
 * Fig. 34: input/output length characterization of the five datasets.
 */

#include "bench_util.hh"
#include "workload/dataset.hh"

using namespace slinfer;

int
main()
{
    printBanner("Fig. 34 - dataset length characterization");
    Table t({"dataset", "in p50", "in mean", "in p99", "out p50",
             "out mean", "out p99"});
    for (DatasetKind kind :
         {DatasetKind::AzureConv, DatasetKind::AzureCode,
          DatasetKind::HumanEval, DatasetKind::ShareGPT,
          DatasetKind::LongBench}) {
        Dataset ds(kind);
        Rng rng(bench::kSeed);
        CdfBuilder in, out;
        for (int i = 0; i < 50000; ++i) {
            LengthSample s = ds.sample(rng);
            in.add(static_cast<double>(s.input));
            out.add(static_cast<double>(s.output));
        }
        t.addRow({ds.name(), Table::num(in.percentile(50.0), 0),
                  Table::num(in.mean(), 0),
                  Table::num(in.percentile(99.0), 0),
                  Table::num(out.percentile(50.0), 0),
                  Table::num(out.mean(), 0),
                  Table::num(out.percentile(99.0), 0)});
    }
    t.print();
    bench::note("paper Fig. 34: coding inputs longer than conversation; "
                "ShareGPT has the longest outputs; LongBench inputs "
                "reach 32K");
    return 0;
}
