/**
 * @file
 * Fig. 27: BurstGPT-style trace at aggregate 0.5/1/2/4 RPS over 64
 * models. Paper: SLINFER consistently uses fewer nodes; at 4 RPS
 * sllm+c+s violates 7.7% of SLOs vs SLINFER's 1.0%.
 */

#include "bench_util.hh"
#include "workload/burstgpt.hh"

using namespace slinfer;

int
main()
{
    printBanner("Fig. 27 - BurstGPT load levels (64 models, 7B)");
    Table t({"agg RPS", "system", "CPU used", "GPU used", "SLO miss"});
    for (double rps : {0.5, 1.0, 2.0, 4.0}) {
        for (SystemKind sys :
             {SystemKind::SllmCS, SystemKind::Slinfer}) {
            ExperimentConfig cfg;
            cfg.system = sys;
            cfg.models = replicateModel(llama2_7b(), 64);
            BurstGptConfig bc;
            bc.aggregateRps = rps;
            cfg.arrivals = scenario::makeBurstGpt(bc);
            cfg.seed = bench::kSeed;
            Report r = runExperiment(cfg);
            t.addRow({Table::num(rps, 1), r.system,
                      Table::num(r.avgCpuNodesUsed, 1),
                      Table::num(r.avgGpuNodesUsed, 1),
                      Table::pct(1.0 - r.sloRate)});
        }
    }
    t.print();
    bench::note("paper: at 4 RPS sllm+c+s misses 7.7% vs SLINFER 1.0%; "
                "SLINFER uses fewer nodes at every level");
    return 0;
}
