/**
 * @file
 * Fig. 23: ablation on 64 7B models — disabling the CPU path,
 * consolidation, or sharing each costs resources or SLO compliance.
 * Paper: full SLINFER uses 4 CPUs + 2.5 GPUs; w/o CPU pushes GPUs to
 * ~3.6; w/o consolidation ~3.0 GPUs; w/o sharing drops SLO rate to
 * ~0.89 while using ~3.3 GPUs.
 */

#include "bench_util.hh"

using namespace slinfer;

int
main()
{
    printBanner("Fig. 23 - ablation (64 x 7B models)");
    Table t({"variant", "SLO rate", "CPU used", "GPU used"});
    SystemKind variants[4] = {SystemKind::Slinfer,
                              SystemKind::SlinferNoCpu,
                              SystemKind::SlinferNoConsolidation,
                              SystemKind::SlinferNoSharing};
    // All ablations run concurrently on the sweep pool.
    std::vector<Report> reports = bench::runParallel(
        std::size(variants), [&](std::size_t k) {
            return bench::runAzure(variants[k], llama2_7b(), 64);
        });
    for (const Report &r : reports) {
        t.addRow({r.system, Table::pct(r.sloRate),
                  Table::num(r.avgCpuNodesUsed, 1),
                  Table::num(r.avgGpuNodesUsed, 1)});
    }
    t.print();

    // Truncated GPU-usage timeline (the figure's top panel).
    printBanner("GPUs in use over time (60 s buckets, first 600 s)");
    Table tl({"t (s)", "full", "w/o CPU", "w/o consolid.",
              "w/o sharing"});
    for (int bucket = 0; bucket < 10; ++bucket) {
        std::vector<std::string> row = {
            Table::num(static_cast<long long>(bucket * 60))};
        for (const Report &r : reports) {
            double sum = 0.0;
            int cnt = 0;
            for (const auto &[ts, gpus] : r.gpuTimeline) {
                if (ts >= bucket * 60.0 && ts < (bucket + 1) * 60.0) {
                    sum += gpus;
                    ++cnt;
                }
            }
            row.push_back(Table::num(cnt ? sum / cnt : 0.0, 1));
        }
        tl.addRow(row);
    }
    tl.print();
    bench::note("paper: w/o CPU keeps GPU usage consistently high; w/o "
                "consolidation spikes during load surges");
    return 0;
}
