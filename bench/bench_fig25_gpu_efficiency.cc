/**
 * @file
 * Fig. 25: GPU memory-utilization CDF and decode batch-size CDF when
 * serving a 2:2:2 mix of 3B/7B/13B models. Paper: SLINFER reaches
 * near-1.0 memory utilization while sllm / sllm+c+s show a three-tier
 * pattern below 0.5; SLINFER's average batch is ~74% higher than
 * sllm's.
 */

#include "bench_util.hh"

using namespace slinfer;

namespace
{

struct Measured
{
    std::string name;
    CdfBuilder mem;
    CdfBuilder batch;
};

Measured
runWithStats(SystemKind sys)
{
    ExperimentConfig cfg;
    cfg.system = sys;
    ModelSpec sizes[3] = {llama32_3b(), llama2_7b(), llama2_13b()};
    for (int i = 0; i < 48; ++i)
        cfg.models.push_back(sizes[i % 3]);
    AzureTraceConfig tc;
    tc.numModels = 48;
    tc.seed = bench::kSeed;
    cfg.trace = generateAzureTrace(tc);

    Simulator sim;
    ClusterHandle cluster{buildCluster(cfg.cluster, systemPartitions(sys)),
                          nullptr};
    auto &nodes = cluster.nodes;
    Recorder recorder;
    ClusterStats stats(sim, nodes);
    cluster.stats = &stats;
    stats.start(cfg.trace.duration);
    Dataset dataset(cfg.dataset);
    Rng len_rng = Rng(cfg.seed).fork(0x1E46);
    std::deque<Request> requests;
    RequestId next_id = 1;
    for (const Arrival &a : cfg.trace.arrivals) {
        const ModelSpec &spec = cfg.models[a.model];
        LengthSample len = dataset.sample(len_rng);
        Request req;
        req.id = next_id++;
        req.model = a.model;
        req.arrival = a.time;
        req.inputLen = std::clamp<Tokens>(len.input, 1,
                                          spec.maxContext - 64);
        req.targetOutput = std::clamp<Tokens>(
            len.output, 1, spec.maxContext - req.inputLen - 1);
        req.ttftSlo = cfg.controller.slo.ttft(req.inputLen);
        req.tpotSlo = cfg.controller.slo.tpot;
        requests.push_back(req);
    }
    std::vector<double> avg(cfg.models.size(), dataset.meanOutput());
    auto ctl = makeSystem(sys, sim, cluster, cfg.models, avg,
                          cfg.controller, recorder);
    for (Request &req : requests)
        sim.scheduleAt(req.arrival, [&ctl, &req] { ctl->submit(&req); });
    sim.run();

    Measured m;
    m.name = systemName(sys);
    m.mem = stats.gpuMemUtilCdf();
    m.batch = stats.batchCdf();
    return m;
}

} // namespace

int
main()
{
    printBanner("Fig. 25 - GPU efficiency (3B:7B:13B = 2:2:2)");
    std::vector<Measured> ms;
    for (SystemKind sys : {SystemKind::Sllm, SystemKind::SllmCS,
                           SystemKind::Slinfer})
        ms.push_back(runWithStats(sys));

    Table t({"system", "mem p25", "mem p50", "mem p75", "mem mean",
             "batch p50", "batch p90", "batch mean"});
    for (Measured &m : ms) {
        t.addRow({m.name, Table::pct(m.mem.percentile(25.0)),
                  Table::pct(m.mem.percentile(50.0)),
                  Table::pct(m.mem.percentile(75.0)),
                  Table::pct(m.mem.mean()),
                  Table::num(m.batch.percentile(50.0), 1),
                  Table::num(m.batch.percentile(90.0), 1),
                  Table::num(m.batch.mean(), 1)});
    }
    t.print();
    std::printf("SLINFER / sllm mean batch ratio: %.2fx (paper: ~1.74x)\n",
                ms[2].batch.mean() / std::max(ms[0].batch.mean(), 1e-9));
    return 0;
}
