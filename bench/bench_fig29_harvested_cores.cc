/**
 * @file
 * Fig. 29: SLO-miss rate as CPU cores are harvested on the GPU nodes
 * (0/8/16/32 per GPU). NEO+ uses them to assist GPU decoding;
 * sllm+c+s and SLINFER treat them as fractional CPU nodes. Paper:
 * SLINFER has the lowest miss rate at every point (19% -> 9%), NEO+
 * lags because it optimizes single-instance high load.
 */

#include "baselines/neo.hh"
#include "bench_util.hh"

using namespace slinfer;

int
main()
{
    printBanner("Fig. 29 - harvested CPU cores per GPU (64 x 7B)");
    Table t({"cores/GPU", "NEO+ miss", "sllm+c+s miss",
             "SLINFER miss"});
    for (int cores : {0, 8, 16, 32}) {
        // NEO+: 4 exclusive GPUs with CPU-assisted decode.
        ClusterSpec neo_cluster;
        neo_cluster.cpuNodes = 0;
        neo_cluster.gpuNodes = 4;
        neo_cluster.gpuSpec = neoGpuSpec(a100_80g(), xeon6462c(), cores);
        Report neo = bench::runAzure(SystemKind::Sllm, llama2_7b(), 64,
                                     1800.0, neo_cluster);

        // The others: 4 GPUs + 4 fractional CPU "nodes".
        ClusterSpec frac;
        frac.gpuNodes = 4;
        if (cores == 0) {
            frac.cpuNodes = 0;
        } else {
            frac.cpuNodes = 4;
            frac.cpuSpec = scaledPartition(xeon6462c(), cores / 32.0);
        }
        Report cs = bench::runAzure(SystemKind::SllmCS, llama2_7b(), 64,
                                    1800.0, frac);
        Report sl = bench::runAzure(SystemKind::Slinfer, llama2_7b(), 64,
                                    1800.0, frac);
        t.addRow({Table::num(static_cast<long long>(cores)),
                  Table::pct(1.0 - neo.sloRate),
                  Table::pct(1.0 - cs.sloRate),
                  Table::pct(1.0 - sl.sloRate)});
    }
    t.print();
    bench::note("paper: NEO+ 46->34%, sllm+c+s 46->38%, SLINFER "
                "19->9% as cores grow");
    return 0;
}
