/**
 * @file
 * Simulator hot-path throughput: the repo's perf-trajectory bench for
 * the event engine (DESIGN.md, "The event arena").
 *
 * Two measurements:
 *
 *  1. **events/sec** — a synthetic schedule/fire/cancel program (a
 *     rolling window of pending timers, nested rescheduling from
 *     callbacks, periodic cancellations: the same shape the serving
 *     simulation produces) run identically against the production
 *     arena `EventQueue` and the preserved pre-arena
 *     `LegacyEventQueue`, so the speedup is an apples-to-apples
 *     number on any host.
 *  2. **requests/sec** — wall-clock of a real catalog experiment
 *     (`azure-64`, the paper's mid-scale evaluation), i.e. what the
 *     event-engine rebuild buys end-to-end.
 *  3. **parallel-sim speedup** — the same experiment under the
 *     lockstep engine (sim/lockstep.hh) at 1 thread vs one thread per
 *     core; both sides share the δ-quantized semantics, so the ratio
 *     isolates the parallel node phase.
 *
 * Output: a human table on stdout, optionally
 *   --json=<file>            freeform trajectory doc (BENCH_*.json)
 *   --write-baseline=<file>  machine summary for the CI gate
 *   --compare=<file>         gate the speedup ratios against a
 *                            baseline via sweep::compare (ratios are
 *                            host-comparable; absolute events/sec is
 *                            recorded but not gated)
 *   --tolerance=<frac>       allowed ratio drop (default 0.50)
 *   --events=<n> --repeat=<r>
 * Exit code: 0 ok, 1 gate failure, 2 usage error.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/table.hh"
#include "obs/counters.hh"
#include "scenario/scenario.hh"
#include "sim/event_queue.hh"
#include "sim/legacy_event_queue.hh"
#include "sweep/compare.hh"
#include "sweep/pool.hh"
#include "sweep/summary.hh"

using namespace slinfer;

namespace
{

double
wallSeconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/**
 * The synthetic event program, identical for both queue types: a
 * rolling window of pending timers. Every pop schedules a successor
 * at a pseudo-random offset; periodically a recently parked handle is
 * cancelled and replaced — the keep-alive / proactive-drop pattern
 * the controller produces. Callbacks carry a one-pointer capture, the
 * dominant shape in the simulator (`[this]` iteration callbacks), so
 * both queues use their small-buffer path.
 *
 * The profile is calibrated against instrumented catalog runs (see
 * DESIGN.md, "The event arena"): peak pending events are 62
 * (quickstart), ~3.2K (flash-crowd) and ~4.8K (azure-64), and
 * cancellations occur once per ~800 (flash-crowd) to ~10K
 * (quickstart) schedules. The default window of 4096 with one cancel
 * per 512 pops is therefore the azure-64-class steady state with a
 * still-conservative cancel rate; the fleet window (65536) models the
 * 10x fleet scenarios' backlog.
 */
template <typename Queue, typename Handle>
double
eventsPerSec(std::size_t total, std::size_t window,
             const std::function<void(Queue &)> &setup = {})
{
    constexpr std::size_t kRing = 64;
    constexpr std::size_t kCancelEvery = 512;

    Queue q;
    if (setup)
        setup(q);
    std::vector<Handle> ring(kRing);
    std::size_t ringHead = 0;
    std::size_t scheduled = 0;
    std::size_t fired = 0;
    std::uint64_t lcg = 0x2545F4914F6CDD1Dull;
    auto next = [&lcg] {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>((lcg >> 33) & 0xFFFF) / 65536.0;
    };
    auto cb = [&fired] { ++fired; };

    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < window && i < total; ++i) {
        q.schedule(next() * 1.0, cb);
        ++scheduled;
    }
    std::size_t pops = 0;
    while (!q.empty()) {
        Seconds when = q.popAndRun();
        ++pops;
        if (scheduled < total) {
            Handle h = q.schedule(when + 1e-4 + next() * 1e-2, cb);
            if (++scheduled % 8 == 0) {
                ring[ringHead] = h;
                ringHead = (ringHead + 1) % kRing;
            }
        }
        if (pops % kCancelEvery == 0) {
            // Cancel a recently parked (still-pending) handle and
            // replace it, as the controller does when a keep-alive is
            // re-armed or a queued request is admitted before its
            // drop deadline.
            ring[(ringHead + kRing - 1) % kRing].cancel();
            if (scheduled < total) {
                q.schedule(when + 1e-4 + next() * 1e-2, cb);
                ++scheduled;
            }
        }
    }
    double wall = wallSeconds(t0);
    return wall > 0 ? static_cast<double>(fired) / wall : 0.0;
}

template <typename Queue, typename Handle>
double
bestOf(int repeat, std::size_t total, std::size_t window,
       const std::function<void(Queue &)> &setup = {})
{
    double best = 0.0;
    for (int r = 0; r < repeat; ++r)
        best = std::max(best,
                        eventsPerSec<Queue, Handle>(total, window, setup));
    return best;
}

sweep::MetricSummary
point(double v)
{
    sweep::MetricSummary m;
    m.n = 1;
    m.mean = m.p50 = m.p99 = m.ciLo = m.ciHi = v;
    return m;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << content;
    out.flush();
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t events = 2000000;
    int repeat = 3;
    std::string json_path;
    std::string baseline_out;
    std::string compare_path;
    double tolerance = 0.50;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg]() {
            return arg.substr(arg.find('=') + 1);
        };
        if (arg.rfind("--events=", 0) == 0) {
            events = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg.rfind("--repeat=", 0) == 0) {
            repeat = std::atoi(value().c_str());
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = value();
        } else if (arg.rfind("--write-baseline=", 0) == 0) {
            baseline_out = value();
        } else if (arg.rfind("--compare=", 0) == 0) {
            compare_path = value();
        } else if (arg.rfind("--tolerance=", 0) == 0) {
            tolerance = std::atof(value().c_str());
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return 2;
        }
    }
    if (events == 0 || repeat <= 0) {
        std::fprintf(stderr, "--events/--repeat must be positive\n");
        return 2;
    }

    setLogLevel(LogLevel::Warn);

    // Primary profile: azure-64-class steady window. Fleet profile:
    // the 10x scenarios' backlog (see the eventsPerSec comment).
    constexpr std::size_t kSteadyWindow = 4096;
    constexpr std::size_t kFleetWindow = 65536;
    double arena =
        bestOf<EventQueue, EventHandle>(repeat, events, kSteadyWindow);
    double legacy = bestOf<LegacyEventQueue, LegacyEventHandle>(
        repeat, events, kSteadyWindow);
    double speedup = legacy > 0 ? arena / legacy : 0.0;
    double arena_fleet =
        bestOf<EventQueue, EventHandle>(repeat, events, kFleetWindow);
    double legacy_fleet = bestOf<LegacyEventQueue, LegacyEventHandle>(
        repeat, events, kFleetWindow);
    double speedup_fleet =
        legacy_fleet > 0 ? arena_fleet / legacy_fleet : 0.0;
    // The flight-recorder point: the same arena program with hot-path
    // counters attached (obs/counters.hh). `arena` above IS the
    // tracing-off measurement; the ratio bounds what enabling
    // --counters costs on the dispatch loop.
    obs::Counters ctr;
    double arena_counters = bestOf<EventQueue, EventHandle>(
        repeat, events, kSteadyWindow,
        [&ctr](EventQueue &q) { q.attachCounters(&ctr); });
    double counters_ratio = arena > 0 ? arena_counters / arena : 0.0;

    const scenario::Scenario *sc = scenario::byName("azure-64");
    if (!sc)
        fatal("bench_sim_throughput: azure-64 missing from the catalog");
    auto t0 = std::chrono::steady_clock::now();
    Report rep = scenario::runScenario(*sc, SystemKind::Slinfer);
    double exp_wall = wallSeconds(t0);
    double req_per_sec =
        exp_wall > 0 ? static_cast<double>(rep.totalRequests) / exp_wall
                     : 0.0;
    // The anatomy ledger lives on the controller/scheduler hooks, not
    // the dispatch loop, so its cost only shows end-to-end: the same
    // experiment again with the ledger attached. The ratio bounds what
    // --explain / --attribution costs a whole run.
    ExperimentConfig attr_cfg =
        sc->toExperiment(SystemKind::Slinfer, sc->seed);
    attr_cfg.obs.anatomy = true;
    t0 = std::chrono::steady_clock::now();
    Report attr_rep = runExperiment(attr_cfg);
    double attr_wall = wallSeconds(t0);
    double attr_req_per_sec =
        attr_wall > 0
            ? static_cast<double>(attr_rep.totalRequests) / attr_wall
            : 0.0;
    double attribution_ratio =
        req_per_sec > 0 ? attr_req_per_sec / req_per_sec : 0.0;

    // The lockstep point (sim/lockstep.hh): the same azure-64 run
    // under the δ-quantized engine at 1 thread (inline oracle) vs one
    // node-phase worker per core. Both sides share the quantized
    // semantics, so the ratio isolates what the parallel node phase
    // buys; on a single-core host it is ~1.0 by construction.
    int par_jobs = sweep::defaultJobs();
    ExperimentConfig ls_cfg =
        sc->toExperiment(SystemKind::Slinfer, sc->seed);
    ls_cfg.simThreads = 1;
    t0 = std::chrono::steady_clock::now();
    runExperiment(ls_cfg);
    double ls1_wall = wallSeconds(t0);
    ls_cfg.simThreads = par_jobs;
    t0 = std::chrono::steady_clock::now();
    runExperiment(ls_cfg);
    double lsn_wall = wallSeconds(t0);
    double parallel_speedup = lsn_wall > 0 ? ls1_wall / lsn_wall : 0.0;

    Table t({"metric", "value"});
    t.addRow({"events/sec (arena)", Table::num(arena, 0)});
    t.addRow({"events/sec (legacy)", Table::num(legacy, 0)});
    t.addRow({"speedup vs legacy", Table::num(speedup, 2) + "x"});
    t.addRow({"fleet events/sec (arena)", Table::num(arena_fleet, 0)});
    t.addRow({"fleet events/sec (legacy)",
              Table::num(legacy_fleet, 0)});
    t.addRow({"fleet speedup", Table::num(speedup_fleet, 2) + "x"});
    t.addRow({"events/sec (counters on)", Table::num(arena_counters, 0)});
    t.addRow({"counters-on/off ratio", Table::num(counters_ratio, 2) + "x"});
    t.addRow({"azure-64 wall (s)", Table::num(exp_wall, 3)});
    t.addRow({"azure-64 requests/sec", Table::num(req_per_sec, 0)});
    t.addRow({"azure-64 req/sec (attribution)",
              Table::num(attr_req_per_sec, 0)});
    t.addRow({"attribution-on/off ratio",
              Table::num(attribution_ratio, 2) + "x"});
    t.addRow({"azure-64 lockstep@1 wall (s)", Table::num(ls1_wall, 3)});
    t.addRow({"azure-64 lockstep@" + std::to_string(par_jobs) +
                  " wall (s)",
              Table::num(lsn_wall, 3)});
    t.addRow({"parallel-sim speedup", Table::num(parallel_speedup, 2) + "x"});
    std::printf("sim hot-path throughput (%zu events, best of %d)\n",
                events, repeat);
    t.print();

    sweep::SummaryRow row;
    row.scenario = "sim-throughput";
    row.system = "bench";
    row.replicates = 1;
    row.duration = 0.0;
    row.metrics = {
        {"events_per_sec", point(arena)},
        {"events_per_sec_legacy", point(legacy)},
        {"speedup_vs_legacy", point(speedup)},
        {"events_per_sec_fleet", point(arena_fleet)},
        {"events_per_sec_fleet_legacy", point(legacy_fleet)},
        {"speedup_vs_legacy_fleet", point(speedup_fleet)},
        {"events_per_sec_counters", point(arena_counters)},
        {"counters_on_off_ratio", point(counters_ratio)},
        {"exp_requests_per_sec", point(req_per_sec)},
        {"exp_requests_per_sec_attribution", point(attr_req_per_sec)},
        {"attribution_on_off_ratio", point(attribution_ratio)},
        {"lockstep1_wall_s", point(ls1_wall)},
        {"lockstepN_wall_s", point(lsn_wall)},
        {"parallel_speedup", point(parallel_speedup)},
    };
    std::vector<sweep::SummaryRow> rows = {row};

    if (!json_path.empty()) {
        char buf[2048];
        std::snprintf(
            buf, sizeof(buf),
            "{\n"
            "  \"bench\": \"sim_throughput\",\n"
            "  \"description\": \"Discrete-event hot path: synthetic "
            "schedule/fire/cancel program (%zu events, best of %d) on "
            "the arena EventQueue vs the pre-arena LegacyEventQueue, "
            "plus wall-clock of the azure-64 catalog experiment. "
            "Regenerate with: ./build/bench/bench_sim_throughput "
            "--json=BENCH_sim_throughput.json\",\n"
            "  \"events_per_sec\": %.0f,\n"
            "  \"events_per_sec_legacy\": %.0f,\n"
            "  \"speedup_vs_legacy\": %.2f,\n"
            "  \"events_per_sec_fleet\": %.0f,\n"
            "  \"events_per_sec_fleet_legacy\": %.0f,\n"
            "  \"speedup_vs_legacy_fleet\": %.2f,\n"
            "  \"events_per_sec_counters\": %.0f,\n"
            "  \"counters_on_off_ratio\": %.2f,\n"
            "  \"azure64_wall_s\": %.3f,\n"
            "  \"azure64_requests_per_sec\": %.0f,\n"
            "  \"azure64_requests_per_sec_attribution\": %.0f,\n"
            "  \"attribution_on_off_ratio\": %.2f,\n"
            "  \"azure64_lockstep1_wall_s\": %.3f,\n"
            "  \"azure64_lockstepN_wall_s\": %.3f,\n"
            "  \"parallel_sim_jobs\": %d,\n"
            "  \"parallel_speedup\": %.2f\n"
            "}\n",
            events, repeat, arena, legacy, speedup, arena_fleet,
            legacy_fleet, speedup_fleet, arena_counters, counters_ratio,
            exp_wall, req_per_sec, attr_req_per_sec, attribution_ratio,
            ls1_wall, lsn_wall, par_jobs, parallel_speedup);
        if (!writeFile(json_path, buf))
            fatal("cannot write " + json_path);
    }

    if (!baseline_out.empty()) {
        if (!writeFile(baseline_out, sweep::summaryToJson(rows)))
            fatal("cannot write " + baseline_out);
        std::printf("baseline written to %s\n", baseline_out.c_str());
    }

    if (!compare_path.empty()) {
        std::ifstream in(compare_path);
        if (!in)
            fatal("cannot read " + compare_path);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        std::vector<sweep::SummaryRow> base;
        std::string err;
        if (!sweep::summaryFromJson(text, base, &err))
            fatal("bad baseline " + compare_path + ": " + err);
        sweep::CompareOptions opts;
        opts.tolerance = tolerance;
        // Gate ONLY same-process ratios: both sides of each ratio run
        // the same program in the same process, so the number is
        // host-comparable, while absolute events/sec depends on the
        // host the baseline was recorded on and would flake on slower
        // CI runners. Absolute numbers are still recorded and shown
        // in the drift table of any baseline that carries them.
        // counters_on_off_ratio guards the flight recorder's
        // zero-overhead-when-off claim from the other side: attaching
        // counters must not crater the dispatch loop, and
        // attribution_on_off_ratio does the same for the anatomy
        // ledger on a whole experiment.
        // parallel_speedup is gated one-sidedly too: the baseline was
        // recorded on a single-core host (ratio ~1.0), so multi-core
        // CI measuring a real speedup can only pass by a larger
        // margin, while a regression that makes the parallel engine
        // *slower* than its own 1-thread oracle fails the gate.
        opts.metrics = {
            {"speedup_vs_legacy", true, 0.5},
            {"speedup_vs_legacy_fleet", true, 0.5},
            {"counters_on_off_ratio", true, 0.5},
            {"attribution_on_off_ratio", true, 0.5},
            {"parallel_speedup", true, 0.5},
        };
        sweep::CompareResult res = sweep::compare(rows, base, opts);
        std::fputs(res.table.c_str(), stdout);
        if (!res.pass)
            return 1;
    }
    return 0;
}
