/**
 * @file
 * Fig. 22 (the paper's headline end-to-end result): SLO-met requests,
 * average nodes used, per-node decode speed and the TTFT CDF for the
 * four systems across {3B, 7B, 13B} x {32, 64, 128} models on 4 CPU +
 * 4 GPU nodes. Paper: at 128 models SLINFER improves SLO-met requests
 * by 86-154% over sllm, 47-62% over sllm+c and 18-70% over sllm+c+s,
 * while using fewer nodes at lower scales.
 */

#include "bench_util.hh"

using namespace slinfer;

int
main()
{
    SystemKind systems[4] = {SystemKind::Sllm, SystemKind::SllmC,
                             SystemKind::SllmCS, SystemKind::Slinfer};
    ModelSpec sizes[3] = {llama32_3b(), llama2_7b(), llama2_13b()};
    const char *labels[3] = {"3B", "7B", "13B"};

    for (int si = 0; si < 3; ++si) {
        printBanner(std::string("Fig. 22") +
                    static_cast<char>('a' + si) + " - " + labels[si] +
                    "-sized models");
        for (int n : {32, 64, 128}) {
            Table t({"system", "SLO-met", "total", "CPU used",
                     "GPU used", "dec spd CPU", "dec spd GPU",
                     "p50 TTFT", "p95 TTFT"});
            std::size_t sllm_met = 0;
            std::size_t slinfer_met = 0;
            // The four systems run concurrently on the sweep pool;
            // reports come back in declaration order.
            std::vector<Report> reports = bench::runParallel(
                std::size(systems), [&](std::size_t k) {
                    return bench::runAzure(systems[k], sizes[si], n);
                });
            for (std::size_t k = 0; k < reports.size(); ++k) {
                const Report &r = reports[k];
                if (systems[k] == SystemKind::Sllm)
                    sllm_met = r.sloMet;
                if (systems[k] == SystemKind::Slinfer)
                    slinfer_met = r.sloMet;
                t.addRow({r.system,
                          Table::num(static_cast<long long>(r.sloMet)),
                          Table::num(static_cast<long long>(
                              r.totalRequests)),
                          Table::num(r.avgCpuNodesUsed, 1),
                          Table::num(r.avgGpuNodesUsed, 1),
                          Table::num(r.decodeSpeedCpu, 0),
                          Table::num(r.decodeSpeedGpu, 0),
                          Table::num(r.p50Ttft, 2),
                          Table::num(r.p95Ttft, 2)});
            }
            std::printf("-- %s, %d models --\n", labels[si], n);
            t.print();
            if (sllm_met > 0) {
                std::printf(
                    "SLINFER vs sllm SLO-met: %+.0f%% (paper at 128 "
                    "models: +86%% to +154%%)\n",
                    100.0 * (static_cast<double>(slinfer_met) /
                                 static_cast<double>(sllm_met) -
                             1.0));
            }
        }
    }
    return 0;
}
