/**
 * @file
 * Fig. 31: KV-cache scaling watermark sensitivity. Paper: watermark 0
 * spends 11.3% of instance lifetime on resizes; 25% cuts that to 1.4%
 * with migrations at 0-0.3%; larger watermarks only waste allocation.
 */

#include "bench_util.hh"

using namespace slinfer;

int
main()
{
    printBanner("Fig. 31 - KV scaling watermark sensitivity (48 x 7B)");
    Table t({"watermark", "KV utilization", "scaling overhead",
             "migration rate", "SLO rate"});
    for (double w : {0.0, 0.10, 0.25, 0.50, 1.00}) {
        ControllerConfig ctl;
        ctl.watermark = w;
        Report r = bench::runAzure(SystemKind::Slinfer, llama2_7b(), 48,
                                   1800.0, ClusterSpec{}, ctl);
        t.addRow({Table::pct(w), Table::pct(r.kvUtilization),
                  Table::pct(r.scalingOverhead),
                  Table::pct(r.migrationRate), Table::pct(r.sloRate)});
    }
    t.print();
    bench::note("paper: overhead 11.3% at w=0, ~1.4% at w=25%; higher "
                "watermarks only lower KV utilization");
    return 0;
}
