/**
 * @file
 * Figs. 9 & 12: memory footprint and request concurrency of a single
 * model mapped to Azure-trace popularity percentiles (P50..P99), under
 * exclusive GPU serving. Paper: weights dominate at rest (14/26 GB for
 * 7B/13B), peaks reach 12x under the top-1% function's bursts, yet the
 * footprint stays below ~17/43 GB more than half of the time.
 */

#include <algorithm>

#include "bench_util.hh"

using namespace slinfer;

namespace
{

struct Usage
{
    double p50Gb, p99Gb, peakGb;
    int peakConc;
    CdfBuilder conc;
};

/** M/G/inf-style footprint process for one model's arrival stream. */
Usage
footprintFor(const std::vector<Seconds> &arrivals, const ModelSpec &m,
             Seconds duration)
{
    Dataset ds(DatasetKind::AzureConv);
    Rng rng(bench::kSeed);
    // Request lifetime: GPU prefill + decode at a shared pace.
    struct Live
    {
        Seconds end;
        Tokens ctx;
    };
    std::vector<std::pair<Seconds, std::pair<Seconds, Tokens>>> reqs;
    for (Seconds t : arrivals) {
        LengthSample len = ds.sample(rng);
        Seconds dur = 0.15 + 0.03 * static_cast<double>(len.output);
        reqs.push_back({t, {t + dur, len.input + len.output}});
    }
    Usage u{};
    CdfBuilder foot;
    for (Seconds t = 0; t < duration; t += 1.0) {
        Tokens ctx = 0;
        int conc = 0;
        for (const auto &[start, life] : reqs) {
            if (start <= t && t < life.first) {
                ++conc;
                ctx += life.second;
            }
        }
        double gb = (static_cast<double>(m.weightBytes()) +
                     static_cast<double>(ctx) *
                         static_cast<double>(m.kvBytesPerToken())) /
                    1e9;
        foot.add(gb);
        if (conc > 0)
            u.conc.add(conc);
        u.peakConc = std::max(u.peakConc, conc);
        u.peakGb = std::max(u.peakGb, gb);
    }
    u.p50Gb = foot.percentile(50.0);
    u.p99Gb = foot.percentile(99.0);
    return u;
}

} // namespace

int
main()
{
    printBanner("Fig. 9 - per-model memory footprint by popularity");
    AzureTraceConfig tc;
    tc.numModels = 128;
    tc.seed = bench::kSeed;
    AzureTrace trace = generateAzureTrace(tc);

    // Sort models by rate and pick the percentile representatives.
    std::vector<std::pair<double, ModelId>> rates;
    for (std::size_t i = 0; i < trace.perModelRpm.size(); ++i)
        rates.push_back({trace.perModelRpm[i], static_cast<ModelId>(i)});
    std::sort(rates.begin(), rates.end());

    Table t({"class", "model", "p50 GB", "p99 GB", "peak GB",
             "peak conc", "p50 GB", "p99 GB", "peak GB", "peak conc"});
    printf("(left columns: Llama-2-7B; right: Llama-2-13B)\n");
    Table conc_t({"class", "conc p50", "conc p90", "conc max"});
    for (auto [label, pct] : std::initializer_list<
             std::pair<const char *, double>>{{"P50", 0.50},
                                              {"P80", 0.80},
                                              {"P90", 0.90},
                                              {"P95", 0.95},
                                              {"P99", 0.99}}) {
        ModelId id =
            rates[static_cast<std::size_t>(pct * (rates.size() - 1))]
                .second;
        std::vector<Seconds> arr;
        for (const Arrival &a : trace.arrivals)
            if (a.model == id)
                arr.push_back(a.time);
        Usage u7 = footprintFor(arr, llama2_7b(), tc.duration);
        Usage u13 = footprintFor(arr, llama2_13b(), tc.duration);
        t.addRow({label, Table::num(static_cast<long long>(id)),
                  Table::num(u7.p50Gb, 1), Table::num(u7.p99Gb, 1),
                  Table::num(u7.peakGb, 1),
                  Table::num(static_cast<long long>(u7.peakConc)),
                  Table::num(u13.p50Gb, 1), Table::num(u13.p99Gb, 1),
                  Table::num(u13.peakGb, 1),
                  Table::num(static_cast<long long>(u13.peakConc))});
        conc_t.addRow({label, Table::num(u7.conc.percentile(50.0), 0),
                       Table::num(u7.conc.percentile(90.0), 0),
                       Table::num(u7.conc.percentile(100.0), 0)});
    }
    t.print();
    bench::note("paper: 7B needs >= 14 GB (weights) and stays below "
                "~17 GB half the time even for the top-1% function; "
                "peaks reach 169/263 GB under concurrency bursts");

    printBanner("Fig. 12 - concurrency CDF by popularity class");
    conc_t.print();
    bench::note("paper: top-1% concurrency ranges 1..128+, tail classes "
                "rarely exceed a handful");
    return 0;
}
