/**
 * @file
 * Controller hot-path throughput: the repo's perf-trajectory bench for
 * the incremental cluster indices (DESIGN.md, "Cluster indices").
 *
 * Three measurements, all on a fleet-6400-class cluster (400 + 400
 * nodes, 6400 7B models) populated by replaying the opening window of
 * the fleet-6400 Azure workload:
 *
 *  1. **placement decisions/sec** — `probePlacement` (candidate
 *     selection incl. shadow validation, no commitment) driven with an
 *     identical probe stream through the indexed path (free-capacity
 *     index lookup + short walk) and the oracle path (the pre-index
 *     full-cluster best-fit scan). Both run against the same live
 *     cluster state in the same process, so the ratio is
 *     host-comparable.
 *  2. **report aggregates/sec** — the KV-utilization sample +
 *     scaling-overhead + busy-seconds queries (what the harness
 *     samples every 2 simulated seconds), indexed running aggregates
 *     vs the oracle instance-pool walks.
 *  3. **fleet wall-clock** — the populated window run end-to-end under
 *     `oracleScans` on/off (recorded, not gated: it mixes in event
 *     engine and model costs).
 *
 * Output: a human table on stdout, optionally
 *   --json=<file>            freeform trajectory doc (BENCH_*.json)
 *   --write-baseline=<file>  machine summary for the CI gate
 *   --compare=<file>         gate the speedup ratios against a
 *                            baseline via sweep::compare
 *   --tolerance=<frac>       allowed ratio drop (default 0.60)
 *   --models=<n> --nodes=<n> --populate=<s> --probes=<n>
 *   --oracle-probes=<n> --aggregate-iters=<n> --no-ab
 * Exit code: 0 ok, 1 gate failure, 2 usage error.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/table.hh"
#include "core/controller.hh"
#include "harness/experiment.hh"
#include "metrics/recorder.hh"
#include "scenario/scenario.hh"
#include "sweep/compare.hh"
#include "sweep/summary.hh"

using namespace slinfer;

namespace
{

double
wallSeconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** A live fleet: cluster + controller + the opening window of the
 *  fleet-6400 Azure workload, replayed to `populate` sim-seconds. */
struct FleetRig
{
    FleetRig(int nodesPerKind, int numModels, Seconds windowSeconds,
             std::uint64_t seed, bool oracle)
    {
        ClusterSpec cs;
        cs.cpuNodes = nodesPerKind;
        cs.gpuNodes = nodesPerKind;
        nodes = buildCluster(cs, 1);
        models = scenario::fleet({{llama2_7b(), numModels}});

        AzureTraceConfig tc;
        tc.numModels = numModels;
        tc.duration = windowSeconds;
        AzureTrace trace = scenario::makeAzure(tc)->generate(seed);

        Dataset dataset(DatasetKind::AzureConv);
        Rng len_rng = Rng(seed).fork(0x1E46);
        ControllerConfig cfg;
        cfg.seed = seed;
        cfg.oracleScans = oracle;

        requests.reserve(trace.arrivals.size());
        recorder.reserve(trace.arrivals.size());
        sim.reserveEvents(trace.arrivals.size() + 1024);
        RequestId next_id = 1;
        for (const Arrival &a : trace.arrivals) {
            const ModelSpec &spec = models[a.model];
            LengthSample len = dataset.sample(len_rng);
            Request req;
            req.id = next_id++;
            req.model = a.model;
            req.arrival = a.time;
            req.inputLen =
                std::clamp<Tokens>(len.input, 1, spec.maxContext - 64);
            req.targetOutput = std::clamp<Tokens>(
                len.output, 1, spec.maxContext - req.inputLen - 1);
            req.ttftSlo = cfg.slo.ttft(req.inputLen);
            req.tpotSlo = cfg.slo.tpot;
            requests.push_back(req);
        }

        std::vector<double> avg(models.size(), dataset.meanOutput());
        ctl = std::make_unique<SlinferController>(
            sim, nodes, models, avg, cfg, recorder, nullptr);
        for (Request &req : requests) {
            sim.scheduleAt(req.arrival, [this, &req] {
                ctl->submit(&req);
            });
        }
    }

    ClusterSpec cluster;
    Simulator sim;
    std::vector<std::unique_ptr<Node>> nodes;
    std::vector<ModelSpec> models;
    Recorder recorder;
    std::unique_ptr<SlinferController> ctl;
    std::vector<Request> requests;
};

/** The identical probe stream both placement paths consume. */
Request
probeRequest(std::uint64_t &lcg, std::size_t i, std::size_t numModels,
             Seconds now)
{
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    Request probe;
    probe.id = 0;
    probe.model = static_cast<ModelId>(i % numModels);
    probe.arrival = now;
    probe.inputLen =
        static_cast<Tokens>(64 + ((lcg >> 33) & 0x7FF)); // 64..2111
    probe.targetOutput = 256;
    probe.ttftSlo =
        std::min(std::max(0.5, probe.inputLen / 512.0), 8.0);
    probe.tpotSlo = 0.25;
    return probe;
}

struct PlacementRate
{
    double perSec = 0.0;
    /** Full shadow validations per decision (diagnostic: the paths
     *  must do comparable validation work for the ratio to isolate
     *  the scan cost). */
    double shadowPerDecision = 0.0;
};

PlacementRate
placementsPerSec(FleetRig &rig, std::size_t count, bool oracle)
{
    std::uint64_t lcg = 0x9E3779B97F4A7C15ull;
    std::size_t found = 0;
    std::uint64_t shadow0 = rig.ctl->shadowEvaluations();
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < count; ++i) {
        Request probe = probeRequest(lcg, i, rig.models.size(),
                                     rig.sim.now());
        auto choice = rig.ctl->probePlacement(probe, oracle);
        if (choice.part)
            ++found;
    }
    double wall = wallSeconds(t0);
    // The found count keeps the optimizer honest.
    logMessage(LogLevel::Debug,
               "placements found: " + std::to_string(found));
    PlacementRate r;
    r.perSec = wall > 0 ? static_cast<double>(count) / wall : 0.0;
    r.shadowPerDecision =
        static_cast<double>(rig.ctl->shadowEvaluations() - shadow0) /
        static_cast<double>(count);
    return r;
}

double
aggregatesPerSec(FleetRig &rig, std::size_t iters, bool oracle)
{
    double sink = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
        if (oracle) {
            sink += rig.ctl->kvUtilizationNowOracle();
            sink += rig.ctl->scalingOverheadFractionOracle();
            sink += rig.ctl->totalBusySecondsOracle(HwKind::Cpu);
            sink += rig.ctl->totalBusySecondsOracle(HwKind::Gpu);
        } else {
            sink += rig.ctl->kvUtilizationNow();
            sink += rig.ctl->clusterIndex().scalingOverheadFraction(
                rig.sim.now());
            sink += rig.ctl->totalBusySeconds(HwKind::Cpu);
            sink += rig.ctl->totalBusySeconds(HwKind::Gpu);
        }
    }
    double wall = wallSeconds(t0);
    logMessage(LogLevel::Debug, "aggregate sink: " + std::to_string(sink));
    return wall > 0 ? static_cast<double>(iters) / wall : 0.0;
}

sweep::MetricSummary
point(double v)
{
    sweep::MetricSummary m;
    m.n = 1;
    m.mean = m.p50 = m.p99 = m.ciLo = m.ciHi = v;
    return m;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << content;
    out.flush();
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    int nodes_per_kind = 400;
    int num_models = 6400;
    // 300 s of the Azure window reaches the scenario's steady-state
    // live-instance population, which is what the oracle scans pay
    // for; shorter windows understate their cost.
    Seconds populate = 300.0;
    std::size_t probes = 2000;
    std::size_t oracle_probes = 200;
    std::size_t aggregate_iters = 2000;
    bool run_ab = true;
    std::string json_path;
    std::string baseline_out;
    std::string compare_path;
    double tolerance = 0.60;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg]() {
            return arg.substr(arg.find('=') + 1);
        };
        if (arg.rfind("--models=", 0) == 0) {
            num_models = std::atoi(value().c_str());
        } else if (arg.rfind("--nodes=", 0) == 0) {
            nodes_per_kind = std::atoi(value().c_str());
        } else if (arg.rfind("--populate=", 0) == 0) {
            populate = std::atof(value().c_str());
        } else if (arg.rfind("--probes=", 0) == 0) {
            probes = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg.rfind("--oracle-probes=", 0) == 0) {
            oracle_probes = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg.rfind("--aggregate-iters=", 0) == 0) {
            aggregate_iters = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--no-ab") {
            run_ab = false;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = value();
        } else if (arg.rfind("--write-baseline=", 0) == 0) {
            baseline_out = value();
        } else if (arg.rfind("--compare=", 0) == 0) {
            compare_path = value();
        } else if (arg.rfind("--tolerance=", 0) == 0) {
            tolerance = std::atof(value().c_str());
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return 2;
        }
    }
    if (nodes_per_kind <= 0 || num_models <= 0 || populate <= 0 ||
        probes == 0 || oracle_probes == 0 || aggregate_iters == 0) {
        std::fprintf(stderr, "sizes must be positive\n");
        return 2;
    }

    setLogLevel(LogLevel::Warn);
    const std::uint64_t seed = 5;

    // One live fleet serves both decision paths: identical state, so
    // the throughput ratio isolates the index against the scans.
    FleetRig rig(nodes_per_kind, num_models, populate, seed,
                 /*oracle=*/false);
    auto t0 = std::chrono::steady_clock::now();
    rig.sim.runUntil(populate);
    double populate_wall = wallSeconds(t0);

    PlacementRate place_indexed_r = placementsPerSec(rig, probes, false);
    PlacementRate place_oracle_r =
        placementsPerSec(rig, oracle_probes, true);
    double place_indexed = place_indexed_r.perSec;
    double place_oracle = place_oracle_r.perSec;
    double place_speedup =
        place_oracle > 0 ? place_indexed / place_oracle : 0.0;

    double agg_indexed = aggregatesPerSec(rig, aggregate_iters, false);
    double agg_oracle =
        aggregatesPerSec(rig, std::max<std::size_t>(aggregate_iters / 10,
                                                    1),
                         true);
    double agg_speedup = agg_oracle > 0 ? agg_indexed / agg_oracle : 0.0;

    // End-to-end wall of the same window under oracleScans (fresh rigs
    // so both replay identical workloads from a cold start).
    double ab_indexed = 0.0, ab_oracle = 0.0, ab_speedup = 0.0;
    if (run_ab) {
        FleetRig ab1(nodes_per_kind, num_models, populate, seed, false);
        t0 = std::chrono::steady_clock::now();
        ab1.sim.runUntil(populate);
        ab_indexed = wallSeconds(t0);
        FleetRig ab2(nodes_per_kind, num_models, populate, seed, true);
        t0 = std::chrono::steady_clock::now();
        ab2.sim.runUntil(populate);
        ab_oracle = wallSeconds(t0);
        ab_speedup = ab_indexed > 0 ? ab_oracle / ab_indexed : 0.0;
    }

    Table t({"metric", "value"});
    t.addRow({"fleet", std::to_string(num_models) + " models / " +
                           std::to_string(2 * nodes_per_kind) + " nodes"});
    t.addRow({"populate wall (s)", Table::num(populate_wall, 2)});
    t.addRow({"placements/sec (indexed)", Table::num(place_indexed, 0)});
    t.addRow({"placements/sec (oracle)", Table::num(place_oracle, 0)});
    t.addRow({"placement speedup", Table::num(place_speedup, 2) + "x"});
    t.addRow({"shadow sims/decision (idx/orc)",
              Table::num(place_indexed_r.shadowPerDecision, 2) + " / " +
                  Table::num(place_oracle_r.shadowPerDecision, 2)});
    t.addRow({"aggregates/sec (indexed)", Table::num(agg_indexed, 0)});
    t.addRow({"aggregates/sec (oracle)", Table::num(agg_oracle, 0)});
    t.addRow({"aggregate speedup", Table::num(agg_speedup, 2) + "x"});
    if (run_ab) {
        t.addRow({"window wall indexed (s)", Table::num(ab_indexed, 2)});
        t.addRow({"window wall oracle (s)", Table::num(ab_oracle, 2)});
        t.addRow({"window speedup", Table::num(ab_speedup, 2) + "x"});
    }
    std::printf("controller hot-path throughput (fleet-%d window %.0fs)\n",
                num_models, populate);
    t.print();

    sweep::SummaryRow row;
    row.scenario = "controller-throughput";
    row.system = "bench";
    row.replicates = 1;
    row.duration = 0.0;
    row.metrics = {
        {"placements_per_sec", point(place_indexed)},
        {"placements_per_sec_oracle", point(place_oracle)},
        {"placement_speedup_vs_oracle", point(place_speedup)},
        {"aggregates_per_sec", point(agg_indexed)},
        {"aggregates_per_sec_oracle", point(agg_oracle)},
        {"aggregate_speedup_vs_oracle", point(agg_speedup)},
        {"window_speedup_vs_oracle", point(ab_speedup)},
    };
    std::vector<sweep::SummaryRow> rows = {row};

    if (!json_path.empty()) {
        char buf[2048];
        std::snprintf(
            buf, sizeof(buf),
            "{\n"
            "  \"bench\": \"controller_throughput\",\n"
            "  \"description\": \"Controller decision hot path on a "
            "%d-model / %d-node fleet populated with %.0f s of the "
            "Azure workload: placement candidate selection and report "
            "aggregates through the incremental cluster indices vs "
            "the pre-index oracle scans, plus the window's end-to-end "
            "wall-clock under both modes. Regenerate with: "
            "./build/bench/bench_controller_throughput "
            "--json=BENCH_controller_throughput.json\",\n"
            "  \"placements_per_sec\": %.0f,\n"
            "  \"placements_per_sec_oracle\": %.0f,\n"
            "  \"placement_speedup_vs_oracle\": %.2f,\n"
            "  \"aggregates_per_sec\": %.0f,\n"
            "  \"aggregates_per_sec_oracle\": %.0f,\n"
            "  \"aggregate_speedup_vs_oracle\": %.2f,\n"
            "  \"window_wall_indexed_s\": %.2f,\n"
            "  \"window_wall_oracle_s\": %.2f,\n"
            "  \"window_speedup_vs_oracle\": %.2f\n"
            "}\n",
            num_models, 2 * nodes_per_kind, populate, place_indexed,
            place_oracle, place_speedup, agg_indexed, agg_oracle,
            agg_speedup, ab_indexed, ab_oracle, ab_speedup);
        if (!writeFile(json_path, buf))
            fatal("cannot write " + json_path);
    }

    if (!baseline_out.empty()) {
        if (!writeFile(baseline_out, sweep::summaryToJson(rows)))
            fatal("cannot write " + baseline_out);
        std::printf("baseline written to %s\n", baseline_out.c_str());
    }

    if (!compare_path.empty()) {
        std::ifstream in(compare_path);
        if (!in)
            fatal("cannot read " + compare_path);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        std::vector<sweep::SummaryRow> base;
        std::string err;
        if (!sweep::summaryFromJson(text, base, &err))
            fatal("bad baseline " + compare_path + ": " + err);
        sweep::CompareOptions opts;
        opts.tolerance = tolerance;
        // Gate ONLY the indexed/oracle speedup ratios: both paths run
        // against the same cluster state in the same process, so the
        // ratio is host-comparable, while absolute decisions/sec
        // depend on the host the baseline was recorded on.
        opts.metrics = {
            {"placement_speedup_vs_oracle", true, 0.5},
            {"aggregate_speedup_vs_oracle", true, 0.5},
        };
        sweep::CompareResult res = sweep::compare(rows, base, opts);
        std::fputs(res.table.c_str(), stdout);
        if (!res.pass)
            return 1;
    }
    return 0;
}
