/**
 * @file
 * Fig. 6: TTFT vs input length for 7B/13B/34B on the AMX CPU and the
 * A100, against the SLO min(max(0.5, L/512), 8) s. Paper: CPUs meet
 * the SLO for 7B/13B under short-to-moderate inputs; 34B never fits.
 */

#include "bench_util.hh"
#include "hw/perf_model.hh"

using namespace slinfer;

int
main()
{
    printBanner("Fig. 6 - TTFT (s) vs input length");
    SloSpec slo = defaultSlo();
    HardwareSpec cpu = xeon6462c();
    HardwareSpec gpu = a100_80g();
    ModelSpec models[3] = {llama2_7b(), llama2_13b(), codellama_34b()};

    Table t({"input", "SLO", "C-7B", "C-13B", "C-34B", "G-7B", "G-13B",
             "G-34B"});
    for (Tokens len : {128, 256, 512, 1024, 2048, 4096, 8192}) {
        std::vector<std::string> row;
        row.push_back(Table::num(static_cast<long long>(len)));
        row.push_back(Table::num(slo.ttft(len), 2));
        for (const HardwareSpec *hw : {&cpu, &gpu}) {
            for (const ModelSpec &m : models) {
                double v = PerfModel::prefillTime(*hw, m, len);
                bool viol = v > slo.ttft(len);
                row.push_back(Table::num(v, 2) + (viol ? "!" : ""));
            }
        }
        t.addRow(row);
    }
    t.print();
    bench::note("'!' marks SLO violations. paper: C-7B/C-13B below the "
                "SLO line up to ~4K/~5.6K inputs; C-34B always above");
    return 0;
}
