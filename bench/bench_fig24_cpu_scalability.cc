/**
 * @file
 * Fig. 24: starting from 2 GPU nodes (insufficient for 64 7B models),
 * add CPU nodes vs GPU nodes. Paper: adding CPUs steadily raises the
 * SLO-met count; roughly 3-4 CPUs match one GPU.
 */

#include "bench_util.hh"

using namespace slinfer;

int
main()
{
    printBanner("Fig. 24 - CPU scalability (64 x 7B, base: 2 GPUs)");
    Table t({"added nodes", "SLO-met (add CPU)", "SLO-met (add GPU)",
             "total"});
    for (int add = 0; add <= 8; ++add) {
        ClusterSpec cpu_cluster;
        cpu_cluster.cpuNodes = add;
        cpu_cluster.gpuNodes = 2;
        Report rc = bench::runAzure(SystemKind::Slinfer, llama2_7b(), 64,
                                    1800.0, cpu_cluster);
        ClusterSpec gpu_cluster;
        gpu_cluster.cpuNodes = 0;
        gpu_cluster.gpuNodes = 2 + add;
        Report rg = bench::runAzure(SystemKind::Slinfer, llama2_7b(), 64,
                                    1800.0, gpu_cluster);
        t.addRow({Table::num(static_cast<long long>(add)),
                  Table::num(static_cast<long long>(rc.sloMet)),
                  Table::num(static_cast<long long>(rg.sloMet)),
                  Table::num(static_cast<long long>(rc.totalRequests))});
    }
    t.print();
    bench::note("paper: capacity grows with each CPU; ~3-4 CPU nodes "
                "match one GPU node");
    return 0;
}
