/**
 * @file
 * Table II: aggregated concurrency limits when a node is statically
 * split into 4x1/4, 3x1/3, 2x1/2 or kept whole. Paper: partitioning
 * roughly halves the aggregate limit (e.g. G-7B-2K: 4x6 / 3x12 / 2x26
 * / 66), which is why static sharing cannot absorb bursts.
 */

#include "bench_util.hh"
#include "hw/perf_model.hh"

using namespace slinfer;

int
main()
{
    printBanner("Table II - concurrency limits under static splits");
    SloSpec slo = defaultSlo();
    struct Row
    {
        const char *name;
        HardwareSpec hw;
        ModelSpec m;
        Tokens len;
    };
    Row rows[] = {
        {"C-7B-2K", xeon6462c(), llama2_7b(), 2048},
        {"C-7B-4K", xeon6462c(), llama2_7b(), 4096},
        {"G-7B-2K", a100_80g(), llama2_7b(), 2048},
        {"G-7B-4K", a100_80g(), llama2_7b(), 4096},
        {"G-13B-2K", a100_80g(), llama2_13b(), 2048},
        {"G-13B-4K", a100_80g(), llama2_13b(), 4096},
    };
    Table t({"scenario", "4 x 1/4", "3 x 1/3", "2 x 1/2", "whole"});
    for (const Row &r : rows) {
        std::vector<std::string> cells = {r.name};
        for (double frac : {0.25, 1.0 / 3.0, 0.5, 1.0}) {
            HardwareSpec part = scaledPartition(r.hw, frac);
            int per = PerfModel::maxBatchWithinTpot(part, r.m, r.len,
                                                    slo.tpot);
            // Memory also caps concurrency on the split.
            Bytes kv_space = part.memCapacity > r.m.weightBytes()
                                 ? part.memCapacity - r.m.weightBytes()
                                 : 0;
            int mem_cap = static_cast<int>(
                kv_space / (static_cast<Bytes>(r.len) *
                            r.m.kvBytesPerToken()));
            per = std::min(per, mem_cap);
            int n = frac == 1.0 ? 1 : static_cast<int>(1.0 / frac + 0.5);
            if (per <= 0) {
                cells.push_back("-");
            } else {
                cells.push_back(std::to_string(n) + " x " +
                                std::to_string(per) + " = " +
                                std::to_string(n * per));
            }
        }
        t.addRow(cells);
    }
    t.print();
    bench::note("paper Table II: e.g. G-7B-2K = 4x6 / 3x12 / 2x26 / 66; "
                "splits reach only ~half the whole-node concurrency");
    return 0;
}
