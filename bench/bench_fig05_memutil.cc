/**
 * @file
 * Fig. 5 (motivation): GPU memory utilization when serving 128 LLMs
 * with ServerlessLLM. Paper: each instance uses only ~23% of its GPU
 * on average despite exclusive allocation.
 */

#include "bench_util.hh"

using namespace slinfer;

int
main()
{
    printBanner("Fig. 5 - GPU memory utilization under sllm, 128 LLMs");
    ModelSpec sizes[3] = {llama32_3b(), llama2_7b(), llama2_13b()};
    std::vector<ModelSpec> models;
    for (int i = 0; i < 128; ++i)
        models.push_back(sizes[i % 3]);

    ExperimentConfig cfg;
    cfg.system = SystemKind::Sllm;
    cfg.models = models;
    AzureTraceConfig tc;
    tc.numModels = 128;
    tc.seed = bench::kSeed;
    cfg.trace = generateAzureTrace(tc);

    // Re-run with stats retained for the CDF.
    Simulator sim;
    ClusterHandle cluster{buildCluster(cfg.cluster, 1), nullptr};
    auto &nodes = cluster.nodes;
    Recorder recorder;
    ClusterStats stats(sim, nodes);
    cluster.stats = &stats;
    stats.start(cfg.trace.duration);
    Dataset dataset(cfg.dataset);
    Rng len_rng = Rng(cfg.seed).fork(0x1E46);
    std::deque<Request> requests;
    RequestId next_id = 1;
    for (const Arrival &a : cfg.trace.arrivals) {
        const ModelSpec &spec = cfg.models[a.model];
        LengthSample len = dataset.sample(len_rng);
        Request req;
        req.id = next_id++;
        req.model = a.model;
        req.arrival = a.time;
        req.inputLen = std::clamp<Tokens>(len.input, 1,
                                          spec.maxContext - 64);
        req.targetOutput = std::clamp<Tokens>(
            len.output, 1, spec.maxContext - req.inputLen - 1);
        req.ttftSlo = cfg.controller.slo.ttft(req.inputLen);
        req.tpotSlo = cfg.controller.slo.tpot;
        requests.push_back(req);
    }
    std::vector<double> avg(cfg.models.size(), dataset.meanOutput());
    auto ctl = makeSystem(cfg.system, sim, cluster, cfg.models, avg,
                          cfg.controller, recorder);
    for (Request &req : requests)
        sim.scheduleAt(req.arrival, [&ctl, &req] { ctl->submit(&req); });
    sim.run();

    const CdfBuilder &cdf = stats.gpuMemUtilCdf();
    Table t({"percentile", "mem utilization"});
    for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0})
        t.addRow({Table::num(p, 0), Table::pct(cdf.percentile(p))});
    t.print();
    std::printf("mean utilization: %.1f%% (paper: ~23%%)\n",
                cdf.mean() * 100.0);
    return 0;
}
