/**
 * @file
 * Shared helpers for the figure/table benches: standard experiment
 * runners plus printing of paper-expected vs measured values. Every
 * bench regenerates the rows/series of one table or figure from the
 * paper's evaluation; absolute numbers come from our simulated
 * substrate, so the *shape* (who wins, rough factors, crossovers) is
 * the claim being reproduced (see EXPERIMENTS.md).
 */

#ifndef SLINFER_BENCH_BENCH_UTIL_HH
#define SLINFER_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "sweep/pool.hh"

namespace slinfer
{
namespace bench
{

/** Default trace seed used across benches (deterministic output). */
inline constexpr std::uint64_t kSeed = 5;

/** Worker threads for parallel bench sweeps: SLINFER_BENCH_JOBS env
 *  override, else every core. Set it to 1 to force serial runs. */
inline int
benchJobs()
{
    if (const char *env = std::getenv("SLINFER_BENCH_JOBS")) {
        int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    return sweep::defaultJobs();
}

/**
 * Run n independent experiments on the sweep subsystem's work-stealing
 * pool and return the reports in call order: results are slotted by
 * index, so the output is byte-identical to the serial loop the
 * benches used to carry, at any worker count.
 */
inline std::vector<Report>
runParallel(std::size_t n, const std::function<Report(std::size_t)> &fn)
{
    std::vector<Report> reports(n);
    sweep::parallelFor(n, benchJobs(),
                       [&](std::size_t i) { reports[i] = fn(i); });
    return reports;
}

/** Run one system on an Azure-style trace of `numModels` replicas.
 *  Arrivals flow through the scenario ArrivalProcess interface; the
 *  generated trace is bit-identical to calling generateAzureTrace
 *  directly with the same seed. */
inline Report
runAzure(SystemKind system, const ModelSpec &model, int numModels,
         Seconds duration = 1800.0,
         ClusterSpec cluster = ClusterSpec{},
         ControllerConfig ctl = ControllerConfig{},
         DatasetKind dataset = DatasetKind::AzureConv,
         std::uint64_t seed = kSeed)
{
    ExperimentConfig cfg;
    cfg.system = system;
    cfg.cluster = cluster;
    cfg.models = replicateModel(model, numModels);
    AzureTraceConfig tc;
    tc.numModels = numModels;
    tc.duration = duration;
    cfg.arrivals = scenario::makeAzure(tc);
    cfg.controller = ctl;
    cfg.dataset = dataset;
    cfg.seed = seed;
    return runExperiment(cfg);
}

/** Same but with an explicit per-model spec list (mixed deployments). */
inline Report
runMixed(SystemKind system, std::vector<ModelSpec> models,
         Seconds duration, ClusterSpec cluster,
         ControllerConfig ctl = ControllerConfig{},
         DatasetKind dataset = DatasetKind::AzureConv,
         std::uint64_t seed = kSeed)
{
    ExperimentConfig cfg;
    cfg.system = system;
    cfg.cluster = cluster;
    cfg.models = std::move(models);
    AzureTraceConfig tc;
    tc.numModels = static_cast<int>(cfg.models.size());
    tc.duration = duration;
    cfg.arrivals = scenario::makeAzure(tc);
    cfg.controller = ctl;
    cfg.dataset = dataset;
    cfg.seed = seed;
    return runExperiment(cfg);
}

/** Print a "paper reports X, we measure Y" comparison note. */
inline void
note(const std::string &text)
{
    std::printf("  note: %s\n", text.c_str());
}

} // namespace bench
} // namespace slinfer

#endif // SLINFER_BENCH_BENCH_UTIL_HH
