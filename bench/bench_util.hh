/**
 * @file
 * Shared helpers for the figure/table benches: standard experiment
 * runners plus printing of paper-expected vs measured values. Every
 * bench regenerates the rows/series of one table or figure from the
 * paper's evaluation; absolute numbers come from our simulated
 * substrate, so the *shape* (who wins, rough factors, crossovers) is
 * the claim being reproduced (see EXPERIMENTS.md).
 */

#ifndef SLINFER_BENCH_BENCH_UTIL_HH
#define SLINFER_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "common/table.hh"
#include "harness/experiment.hh"

namespace slinfer
{
namespace bench
{

/** Default trace seed used across benches (deterministic output). */
inline constexpr std::uint64_t kSeed = 5;

/** Run one system on an Azure-style trace of `numModels` replicas.
 *  Arrivals flow through the scenario ArrivalProcess interface; the
 *  generated trace is bit-identical to calling generateAzureTrace
 *  directly with the same seed. */
inline Report
runAzure(SystemKind system, const ModelSpec &model, int numModels,
         Seconds duration = 1800.0,
         ClusterSpec cluster = ClusterSpec{},
         ControllerConfig ctl = ControllerConfig{},
         DatasetKind dataset = DatasetKind::AzureConv,
         std::uint64_t seed = kSeed)
{
    ExperimentConfig cfg;
    cfg.system = system;
    cfg.cluster = cluster;
    cfg.models = replicateModel(model, numModels);
    AzureTraceConfig tc;
    tc.numModels = numModels;
    tc.duration = duration;
    cfg.arrivals = scenario::makeAzure(tc);
    cfg.controller = ctl;
    cfg.dataset = dataset;
    cfg.seed = seed;
    return runExperiment(cfg);
}

/** Same but with an explicit per-model spec list (mixed deployments). */
inline Report
runMixed(SystemKind system, std::vector<ModelSpec> models,
         Seconds duration, ClusterSpec cluster,
         ControllerConfig ctl = ControllerConfig{},
         DatasetKind dataset = DatasetKind::AzureConv,
         std::uint64_t seed = kSeed)
{
    ExperimentConfig cfg;
    cfg.system = system;
    cfg.cluster = cluster;
    cfg.models = std::move(models);
    AzureTraceConfig tc;
    tc.numModels = static_cast<int>(cfg.models.size());
    tc.duration = duration;
    cfg.arrivals = scenario::makeAzure(tc);
    cfg.controller = ctl;
    cfg.dataset = dataset;
    cfg.seed = seed;
    return runExperiment(cfg);
}

/** Print a "paper reports X, we measure Y" comparison note. */
inline void
note(const std::string &text)
{
    std::printf("  note: %s\n", text.c_str());
}

} // namespace bench
} // namespace slinfer

#endif // SLINFER_BENCH_BENCH_UTIL_HH
