/**
 * @file
 * Fig. 26: mixed-size deployments (3B:7B:13B:34B popularity ratios) on
 * 4 CPU + 6 GPU nodes, with CodeLlama-34B on TP=2 exclusive pairs.
 * Paper: SLINFER consistently uses fewer GPUs; its advantage shrinks
 * as large models dominate, and at 0:0:0:1 all systems converge to
 * exclusive allocation (~2.2 GPUs).
 */

#include "bench_util.hh"

using namespace slinfer;

int
main()
{
    printBanner("Fig. 26 - mixed model sizes (4 CPU + 6 GPU)");
    struct Ratio
    {
        const char *name;
        int parts[4]; // 3B:7B:13B:34B
    };
    Ratio ratios[] = {
        {"4:1:1:1", {4, 1, 1, 1}}, {"3:2:1:1", {3, 2, 1, 1}},
        {"2:2:2:1", {2, 2, 2, 1}}, {"1:2:3:1", {1, 2, 3, 1}},
        {"1:1:4:1", {1, 1, 4, 1}}, {"0:0:0:1", {0, 0, 0, 1}},
    };
    ModelSpec sizes[4] = {llama32_3b(), llama2_7b(), llama2_13b(),
                          codellama_34b()};
    ClusterSpec cluster;
    cluster.cpuNodes = 4;
    cluster.gpuNodes = 6;

    Table t({"popularity", "sllm+c GPUs", "sllm+c+s GPUs",
             "SLINFER GPUs", "SLINFER SLO"});
    for (const Ratio &ratio : ratios) {
        std::vector<ModelSpec> models;
        int total = ratio.parts[0] + ratio.parts[1] + ratio.parts[2] +
                    ratio.parts[3];
        // 7 models per "part" keeps the workload near the paper's
        // scale while holding total load comparable across ratios.
        int per_part = 42 / total;
        for (int k = 0; k < 4; ++k)
            for (int i = 0; i < ratio.parts[k] * per_part; ++i)
                models.push_back(sizes[k]);
        if (models.empty())
            continue;
        Report rc = bench::runMixed(SystemKind::SllmC, models, 1800.0,
                                    cluster);
        Report rcs = bench::runMixed(SystemKind::SllmCS, models, 1800.0,
                                     cluster);
        Report rs = bench::runMixed(SystemKind::Slinfer, models, 1800.0,
                                    cluster);
        t.addRow({ratio.name, Table::num(rc.avgGpuNodesUsed, 1),
                  Table::num(rcs.avgGpuNodesUsed, 1),
                  Table::num(rs.avgGpuNodesUsed, 1),
                  Table::pct(rs.sloRate)});
    }
    t.print();
    bench::note("paper: 4.0/3.8/2.6 at 4:1:1:1 shrinking to 2.2 each at "
                "0:0:0:1 (pure 34B = exclusive for everyone)");
    return 0;
}
