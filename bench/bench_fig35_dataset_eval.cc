/**
 * @file
 * Fig. 35: per-dataset evaluation with 64 Llama-3.1-8B models. Paper:
 * SLINFER consistently uses fewer resources; long-output datasets
 * (ShareGPT) get higher decode throughput; for LongBench the CPUs
 * cannot meet the long-sequence TTFT SLO, so SLINFER avoids them while
 * sllm+c+s blindly fills them and violates 63.4% of SLOs.
 */

#include "bench_util.hh"

using namespace slinfer;

int
main()
{
    printBanner("Fig. 35 - datasets (64 x Llama-3.1-8B)");
    Table t({"dataset", "system", "CPU used", "GPU used",
             "dec spd CPU", "dec spd GPU", "SLO rate"});
    for (DatasetKind kind :
         {DatasetKind::HumanEval, DatasetKind::AzureCode,
          DatasetKind::AzureConv, DatasetKind::LongBench,
          DatasetKind::ShareGPT}) {
        for (SystemKind sys :
             {SystemKind::SllmCS, SystemKind::Slinfer}) {
            Report r = bench::runAzure(sys, llama31_8b(), 64, 1800.0,
                                       ClusterSpec{}, ControllerConfig{},
                                       kind);
            t.addRow({Dataset(kind).name(), r.system,
                      Table::num(r.avgCpuNodesUsed, 1),
                      Table::num(r.avgGpuNodesUsed, 1),
                      Table::num(r.decodeSpeedCpu, 0),
                      Table::num(r.decodeSpeedGpu, 0),
                      Table::pct(r.sloRate)});
        }
    }
    t.print();
    bench::note("paper: for LongBench SLINFER does not prefer CPUs "
                "(long prefills blow the TTFT SLO) while sllm+c+s fills "
                "them and violates 63.4% of SLOs");
    return 0;
}
