/**
 * @file
 * Fig. 4 (motivation): ServerlessLLM's SLO attainment collapses as the
 * number of hosted LLMs grows on 4 A100s. Paper: fine at 16 models,
 * sharp drop by 128 (~33% of requests missing SLOs in the intro).
 */

#include "bench_util.hh"

using namespace slinfer;

int
main()
{
    printBanner("Fig. 4 - ServerlessLLM serving capacity vs #LLMs");
    Table t({"#LLMs", "total", "SLO-met", "SLO rate",
             "paper (shape)"});
    ModelSpec sizes[3] = {llama32_3b(), llama2_7b(), llama2_13b()};
    for (int n : {16, 32, 64, 96, 128}) {
        std::vector<ModelSpec> models;
        for (int i = 0; i < n; ++i)
            models.push_back(sizes[i % 3]);
        Report r = bench::runMixed(SystemKind::Sllm, models, 1800.0,
                                   ClusterSpec{});
        const char *shape = n <= 16   ? "~1.0"
                            : n <= 32 ? "high"
                            : n <= 64 ? "dropping"
                                      : "collapsed (~0.3-0.5)";
        t.addRow({Table::num(static_cast<long long>(n)),
                  Table::num(static_cast<long long>(r.totalRequests)),
                  Table::num(static_cast<long long>(r.sloMet)),
                  Table::pct(r.sloRate), shape});
    }
    t.print();
    bench::note("paper: SLO rate near 1.0 at small scales, dropping "
                "sharply as requests queue for the 4 GPUs");
    return 0;
}
