/**
 * @file
 * §X (Discussion): INT4 quantization raises sharing capacity for 22B
 * models. Paper: serving 32 Codestral-22B models, INT4 cuts GPU usage
 * from 3.8 to 2.6 because fp16 weights alone (44 GB) nearly fill an
 * 80 GB GPU.
 */

#include "bench_util.hh"

using namespace slinfer;

int
main()
{
    printBanner("Discussion - serving 32 x 22B, fp16 vs INT4");
    Table t({"precision", "GPU used", "CPU used", "SLO rate"});
    for (bool int4 : {false, true}) {
        ModelSpec m = int4 ? quantized(codestral_22b(), 4)
                           : codestral_22b();
        ClusterSpec cluster;
        cluster.cpuNodes = 4;
        cluster.gpuNodes = 6;
        Report r = bench::runAzure(SystemKind::Slinfer, m, 32, 1800.0,
                                   cluster);
        t.addRow({int4 ? "INT4" : "FP16",
                  Table::num(r.avgGpuNodesUsed, 1),
                  Table::num(r.avgCpuNodesUsed, 1),
                  Table::pct(r.sloRate)});
    }
    t.print();
    bench::note("paper: 3.8 -> 2.6 GPUs with INT4 (weights shrink from "
                "44 GB to 11 GB, enabling colocation)");
    return 0;
}
