/**
 * @file
 * Figs. 7 & 8: TPOT vs batch size for Llama-2-7B and -13B on CPU/GPU
 * at context lengths 512/1K/2K. Paper: CPU meets the 0.25 s TPOT with
 * batching headroom for 7B; 13B at 32-batch/2K violates it; GPU is
 * always far below.
 */

#include "bench_util.hh"
#include "hw/perf_model.hh"

using namespace slinfer;

static void
table_for(const ModelSpec &m)
{
    HardwareSpec cpu = xeon6462c();
    HardwareSpec gpu = a100_80g();
    Table t({"batch", "C-512", "C-1K", "C-2K", "G-512", "G-1K", "G-2K"});
    for (int b : {1, 2, 4, 8, 16, 32, 64, 128}) {
        std::vector<std::string> row;
        row.push_back(Table::num(static_cast<long long>(b)));
        for (const HardwareSpec *hw : {&cpu, &gpu}) {
            for (Tokens len : {512, 1024, 2048}) {
                double ms_v = PerfModel::decodeTime(*hw, m, b, len) * 1e3;
                row.push_back(Table::num(ms_v, 0) +
                              (ms_v > 250.0 ? "!" : ""));
            }
        }
        t.addRow(row);
    }
    t.print();
}

int
main()
{
    printBanner("Fig. 7 - TPOT (ms) of Llama-2-7B");
    table_for(llama2_7b());
    bench::note("paper: 7B 4-batch at 1K costs only ~14% over 1-batch; "
                "all CPU rows below 250 ms up to large batches");
    printBanner("Fig. 8 - TPOT (ms) of Llama-2-13B");
    table_for(llama2_13b());
    bench::note("paper: 13B at 32-batch roughly doubles from 512 to 2K "
                "and violates the SLO at 2K");
    return 0;
}
