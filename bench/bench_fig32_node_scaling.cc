/**
 * @file
 * Fig. 32: SLO-met requests vs cluster size (1C+1G .. 4C+4G, 64 x 7B).
 * Paper: SLINFER leads at every size; with 4 nodes it matches
 * sllm+c+s on 8; gains diminish as the fixed workload saturates.
 */

#include "bench_util.hh"

using namespace slinfer;

int
main()
{
    printBanner("Fig. 32 - scaling the cluster (64 x 7B)");
    Table t({"nodes", "sllm+c+s SLO-met", "SLINFER SLO-met", "total"});
    for (int k = 1; k <= 4; ++k) {
        ClusterSpec cluster;
        cluster.cpuNodes = k;
        cluster.gpuNodes = k;
        Report cs = bench::runAzure(SystemKind::SllmCS, llama2_7b(), 64,
                                    1800.0, cluster);
        Report sl = bench::runAzure(SystemKind::Slinfer, llama2_7b(), 64,
                                    1800.0, cluster);
        t.addRow({Table::num(static_cast<long long>(2 * k)),
                  Table::num(static_cast<long long>(cs.sloMet)),
                  Table::num(static_cast<long long>(sl.sloMet)),
                  Table::num(static_cast<long long>(sl.totalRequests))});
    }
    t.print();
    bench::note("paper: SLINFER on 4 nodes ~= sllm+c+s on 8; gains "
                "diminish toward saturation");
    return 0;
}
