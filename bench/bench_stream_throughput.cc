/**
 * @file
 * Streaming-replay throughput and memory: the perf-trajectory bench
 * for the stream subsystem (DESIGN.md, "Bounded-lookahead streaming"
 * and "The .strc codec").
 *
 * Three measurements on one synthetic Azure trace:
 *
 *  1. **codec** — pack the trace to `.strc` and drain it back:
 *     records/sec each way, bytes/record on disk, and the compression
 *     ratio against the raw 12-byte (f64 time + u32 model) encoding.
 *  2. **replay** — the same experiment run streaming (from the packed
 *     file, bounded lookahead, request recycling) and materialized
 *     (the classic full-vector oracle): requests/sec wall each way,
 *     with resident-set size sampled across 200 advance slices.
 *  3. **headline** — requests/sec per GB of peak RSS on the streaming
 *     path, the number ISSUE-class multi-million-request replays are
 *     sized by.
 *
 * The fleet is deliberately small for the arrival rate, so most
 * requests drop at their TTFT deadline: the bench measures the replay
 * engine (arrival scheduling, materialization, recycling) rather than
 * serving capacity, and both modes do identical work either way. The
 * streaming run goes first so allocator reuse from the materialized
 * run cannot deflate its RSS reading.
 *
 * Output: a human table on stdout, optionally
 *   --json=<file>            freeform trajectory doc (BENCH_*.json)
 *   --write-baseline=<file>  machine summary for the CI gate
 *   --compare=<file>         gate the same-process ratios against a
 *                            baseline via sweep::compare (ratios are
 *                            host-comparable; absolute records/sec and
 *                            RSS are recorded but not gated)
 *   --tolerance=<frac>       allowed ratio drop (default 0.50)
 *   --requests=<n> --models=<m> --window=<s> --lookahead=<k>
 * Exit code: 0 ok, 1 gate failure, 2 usage error.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/log.hh"
#include "common/proc.hh"
#include "common/table.hh"
#include "harness/session.hh"
#include "stream/codec.hh"
#include "sweep/compare.hh"
#include "sweep/summary.hh"
#include "workload/azure_trace.hh"

using namespace slinfer;

namespace
{

double
wallSeconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

sweep::MetricSummary
point(double v)
{
    sweep::MetricSummary m;
    m.n = 1;
    m.mean = m.p50 = m.p99 = m.ciLo = m.ciHi = v;
    return m;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << content;
    out.flush();
    return static_cast<bool>(out);
}

std::uint64_t
fileSizeBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return 0;
    std::fseek(f, 0, SEEK_END);
    long n = std::ftell(f);
    std::fclose(f);
    return n > 0 ? static_cast<std::uint64_t>(n) : 0;
}

/** One replay, advanced in 200 slices with the resident set sampled at
 *  each boundary. Returns {wall seconds, replayed requests, max RSS}. */
struct ReplayResult
{
    double wall = 0.0;
    std::uint64_t requests = 0;
    std::size_t maxRss = 0;
};

ReplayResult
timedReplay(const ExperimentConfig &cfg)
{
    ReplayResult res;
    auto t0 = std::chrono::steady_clock::now();
    Session session(cfg);
    const Seconds end = session.duration();
    constexpr int kSlices = 200;
    for (int i = 1; i <= kSlices; ++i) {
        session.advanceTo(end * i / kSlices);
        res.maxRss = std::max(res.maxRss, currentRssBytes());
    }
    Report rep = session.finish();
    res.maxRss = std::max(res.maxRss, currentRssBytes());
    res.wall = wallSeconds(t0);
    res.requests = rep.totalRequests;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t requests = 200000;
    int numModels = 64;
    double window = 600.0;
    std::uint32_t lookahead = 4096;
    std::string json_path;
    std::string baseline_out;
    std::string compare_path;
    double tolerance = 0.50;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg]() {
            return arg.substr(arg.find('=') + 1);
        };
        if (arg.rfind("--requests=", 0) == 0) {
            requests = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg.rfind("--models=", 0) == 0) {
            numModels = std::atoi(value().c_str());
        } else if (arg.rfind("--window=", 0) == 0) {
            window = std::atof(value().c_str());
        } else if (arg.rfind("--lookahead=", 0) == 0) {
            lookahead = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = value();
        } else if (arg.rfind("--write-baseline=", 0) == 0) {
            baseline_out = value();
        } else if (arg.rfind("--compare=", 0) == 0) {
            compare_path = value();
        } else if (arg.rfind("--tolerance=", 0) == 0) {
            tolerance = std::atof(value().c_str());
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return 2;
        }
    }
    if (requests == 0 || numModels <= 0 || window <= 0 ||
        lookahead == 0) {
        std::fprintf(stderr,
                     "--requests/--models/--window/--lookahead must be "
                     "positive\n");
        return 2;
    }

    setLogLevel(LogLevel::Warn);

    // The trace: `requests` Azure-style arrivals over `window` seconds
    // spread across `numModels` models. Deterministic (fixed seed), so
    // the codec numbers are reproducible bit for bit.
    AzureTraceConfig tc;
    tc.numModels = numModels;
    tc.duration = window;
    tc.perModelRpm = static_cast<double>(requests) * 60.0 /
                     (static_cast<double>(numModels) * window);
    tc.seed = 1234;

    const char *tmp = std::getenv("TMPDIR");
    std::string strc_path = std::string(tmp ? tmp : "/tmp") +
                            "/slinfer_bench_stream_" +
                            std::to_string(::getpid()) + ".strc";

    // ---- codec: pack ------------------------------------------------
    std::uint64_t packed = 0;
    double pack_wall = 0.0;
    {
        AzureTrace trace = generateAzureTrace(tc);
        packed = trace.arrivals.size();
        stream::StrcHeader hdr;
        hdr.hasLengths = false;
        hdr.numModels = static_cast<std::uint32_t>(numModels);
        hdr.duration = trace.duration;
        std::string err;
        stream::StrcWriter w;
        auto t0 = std::chrono::steady_clock::now();
        if (!w.open(strc_path, hdr, &err))
            fatal("bench_stream_throughput: " + err);
        for (const Arrival &a : trace.arrivals) {
            stream::TraceRecord r;
            r.time = a.time;
            r.model = a.model;
            w.add(r);
        }
        if (!w.finish(&err))
            fatal("bench_stream_throughput: " + err);
        pack_wall = wallSeconds(t0);
        // The trace dies here: the streaming run below must not carry
        // the raw vector in its resident set.
    }
    std::uint64_t strc_bytes = fileSizeBytes(strc_path);
    double pack_rps =
        pack_wall > 0 ? static_cast<double>(packed) / pack_wall : 0.0;
    double bytes_per_rec =
        packed > 0
            ? static_cast<double>(strc_bytes) / static_cast<double>(packed)
            : 0.0;
    // Raw columnar encoding of the same records: f64 time + u32 model.
    double compression =
        strc_bytes > 0 ? static_cast<double>(packed) * 12.0 /
                             static_cast<double>(strc_bytes)
                       : 0.0;

    // ---- codec: unpack ----------------------------------------------
    double unpack_wall = 0.0;
    {
        std::string err;
        stream::StrcReader r;
        auto t0 = std::chrono::steady_clock::now();
        if (!r.open(strc_path, &err))
            fatal("bench_stream_throughput: " + err);
        stream::TraceRecord rec;
        std::uint64_t n = 0;
        while (r.next(rec))
            ++n;
        unpack_wall = wallSeconds(t0);
        if (n != packed)
            fatal("bench_stream_throughput: decode count mismatch");
    }
    double unpack_rps =
        unpack_wall > 0 ? static_cast<double>(packed) / unpack_wall : 0.0;

    // ---- replay: streaming from disk, then materialized -------------
    ExperimentConfig cfg;
    cfg.system = SystemKind::Slinfer;
    cfg.cluster.cpuNodes = 4;
    cfg.cluster.gpuNodes = 4;
    cfg.models = replicateModel(llama2_7b(), numModels);
    cfg.seed = 99;

    ExperimentConfig stream_cfg = cfg;
    stream_cfg.stream.enabled = true;
    stream_cfg.stream.lookahead = lookahead;
    stream_cfg.stream.tracePath = strc_path;
    ReplayResult st = timedReplay(stream_cfg);

    ExperimentConfig mat_cfg = cfg;
    mat_cfg.trace = generateAzureTrace(tc); // same seed: same trace
    mat_cfg.duration = window;
    ReplayResult mat = timedReplay(mat_cfg);
    std::remove(strc_path.c_str());

    if (st.requests != mat.requests)
        fatal("bench_stream_throughput: replay count mismatch");

    double stream_rps =
        st.wall > 0 ? static_cast<double>(st.requests) / st.wall : 0.0;
    double mat_rps =
        mat.wall > 0 ? static_cast<double>(mat.requests) / mat.wall : 0.0;
    double stream_vs_mat = mat_rps > 0 ? stream_rps / mat_rps : 0.0;
    double rss_ratio =
        st.maxRss > 0 ? static_cast<double>(mat.maxRss) /
                            static_cast<double>(st.maxRss)
                      : 0.0;
    double rps_per_gb =
        st.maxRss > 0
            ? stream_rps / (static_cast<double>(st.maxRss) / 1e9)
            : 0.0;

    Table t({"metric", "value"});
    t.addRow({"trace records", Table::num(packed, 0)});
    t.addRow({"pack records/sec", Table::num(pack_rps, 0)});
    t.addRow({"unpack records/sec", Table::num(unpack_rps, 0)});
    t.addRow({".strc bytes/record", Table::num(bytes_per_rec, 2)});
    t.addRow({"compression vs raw-12B", Table::num(compression, 2) + "x"});
    t.addRow({"stream replay wall (s)", Table::num(st.wall, 3)});
    t.addRow({"stream requests/sec", Table::num(stream_rps, 0)});
    t.addRow({"stream max RSS (MB)", Table::num(st.maxRss / 1e6, 1)});
    t.addRow({"materialized wall (s)", Table::num(mat.wall, 3)});
    t.addRow({"materialized requests/sec", Table::num(mat_rps, 0)});
    t.addRow({"materialized max RSS (MB)",
              Table::num(mat.maxRss / 1e6, 1)});
    t.addRow({"stream/mat throughput", Table::num(stream_vs_mat, 2) + "x"});
    t.addRow({"mat/stream RSS", Table::num(rss_ratio, 2) + "x"});
    t.addRow({"stream requests/sec/GB", Table::num(rps_per_gb, 0)});
    std::printf("streaming replay throughput (%llu requests, %d models, "
                "%.0f s window, lookahead %u)\n",
                static_cast<unsigned long long>(packed), numModels,
                window, lookahead);
    t.print();

    sweep::SummaryRow row;
    row.scenario = "stream-throughput";
    row.system = "bench";
    row.replicates = 1;
    row.duration = 0.0;
    row.metrics = {
        {"trace_records", point(static_cast<double>(packed))},
        {"pack_records_per_sec", point(pack_rps)},
        {"unpack_records_per_sec", point(unpack_rps)},
        {"strc_bytes_per_record", point(bytes_per_rec)},
        {"strc_compression_ratio", point(compression)},
        {"stream_requests_per_sec", point(stream_rps)},
        {"mat_requests_per_sec", point(mat_rps)},
        {"stream_max_rss_mb", point(st.maxRss / 1e6)},
        {"mat_max_rss_mb", point(mat.maxRss / 1e6)},
        {"stream_vs_mat_throughput", point(stream_vs_mat)},
        {"mat_vs_stream_rss", point(rss_ratio)},
        {"stream_requests_per_sec_per_gb", point(rps_per_gb)},
    };
    std::vector<sweep::SummaryRow> rows = {row};

    if (!json_path.empty()) {
        char buf[2048];
        std::snprintf(
            buf, sizeof(buf),
            "{\n"
            "  \"bench\": \"stream_throughput\",\n"
            "  \"description\": \"Streaming replay vs the materialized "
            "oracle on one synthetic Azure trace (%llu requests, %d "
            "models, %.0f s window, lookahead %u): .strc codec "
            "throughput, replay requests/sec, and sampled peak RSS. "
            "Regenerate with: ./build/bench/bench_stream_throughput "
            "--json=BENCH_stream_throughput.json\",\n"
            "  \"trace_records\": %llu,\n"
            "  \"pack_records_per_sec\": %.0f,\n"
            "  \"unpack_records_per_sec\": %.0f,\n"
            "  \"strc_bytes_per_record\": %.2f,\n"
            "  \"strc_compression_ratio\": %.2f,\n"
            "  \"stream_wall_s\": %.3f,\n"
            "  \"stream_requests_per_sec\": %.0f,\n"
            "  \"stream_max_rss_mb\": %.1f,\n"
            "  \"mat_wall_s\": %.3f,\n"
            "  \"mat_requests_per_sec\": %.0f,\n"
            "  \"mat_max_rss_mb\": %.1f,\n"
            "  \"stream_vs_mat_throughput\": %.2f,\n"
            "  \"mat_vs_stream_rss\": %.2f,\n"
            "  \"stream_requests_per_sec_per_gb\": %.0f\n"
            "}\n",
            static_cast<unsigned long long>(packed), numModels, window,
            lookahead, static_cast<unsigned long long>(packed), pack_rps,
            unpack_rps, bytes_per_rec, compression, st.wall, stream_rps,
            st.maxRss / 1e6, mat.wall, mat_rps, mat.maxRss / 1e6,
            stream_vs_mat, rss_ratio, rps_per_gb);
        if (!writeFile(json_path, buf))
            fatal("cannot write " + json_path);
    }

    if (!baseline_out.empty()) {
        if (!writeFile(baseline_out, sweep::summaryToJson(rows)))
            fatal("cannot write " + baseline_out);
        std::printf("baseline written to %s\n", baseline_out.c_str());
    }

    if (!compare_path.empty()) {
        std::ifstream in(compare_path);
        if (!in)
            fatal("cannot read " + compare_path);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        std::vector<sweep::SummaryRow> base;
        std::string err;
        if (!sweep::summaryFromJson(text, base, &err))
            fatal("bad baseline " + compare_path + ": " + err);
        sweep::CompareOptions opts;
        opts.tolerance = tolerance;
        // Gate ONLY same-process, host-comparable numbers:
        //  - stream_vs_mat_throughput: both replays run the same trace
        //    in this process; streaming regressing far below the
        //    materialized oracle means the feed grew a hot-path cost.
        //  - mat_vs_stream_rss: the bounded-memory claim as a ratio —
        //    the materialized vector must keep costing more resident
        //    memory than the recycling pool (trace-size dependent, so
        //    compare against a baseline recorded at the same
        //    --requests).
        //  - strc_compression_ratio: deterministic given the flags; a
        //    codec regression (model gone stale, delta bug) shows up
        //    as a ratio drop long before round-trip tests break.
        // Absolute records/sec and RSS depend on the recording host
        // and are recorded ungated.
        opts.metrics = {
            {"stream_vs_mat_throughput", true, 0.5},
            {"mat_vs_stream_rss", true, 0.5},
            {"strc_compression_ratio", true, 0.5},
        };
        sweep::CompareResult res = sweep::compare(rows, base, opts);
        std::fputs(res.table.c_str(), stdout);
        if (!res.pass)
            return 1;
    }
    return 0;
}
