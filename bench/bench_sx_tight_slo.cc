/**
 * @file
 * §IV-A2 limitation (3): CPU applicability under tight TPOT SLOs.
 * Paper: at 100 ms only 7B-and-smaller fit with batch <= 9 (1K) / 3
 * (4K); at 50 ms even 7B is infeasible. This bench sweeps the whole
 * serving stack under the three SLO levels to show how the CPU's role
 * collapses.
 */

#include "bench_util.hh"
#include "hw/perf_model.hh"

using namespace slinfer;

int
main()
{
    printBanner("Tight-SLO analysis - CPU batch limits (§IV-A2)");
    Table t({"TPOT SLO", "7B@1K", "7B@4K", "13B@1K", "3B@1K"});
    HardwareSpec cpu = xeon6462c();
    for (double tpot : {0.25, 0.10, 0.05}) {
        auto lim = [&](const ModelSpec &m, Tokens len) {
            int b = PerfModel::maxBatchWithinTpot(cpu, m, len, tpot);
            return b == 0 ? std::string("-") : std::to_string(b);
        };
        t.addRow({Table::num(tpot * 1e3, 0) + " ms",
                  lim(llama2_7b(), 1024), lim(llama2_7b(), 4096),
                  lim(llama2_13b(), 1024), lim(llama32_3b(), 1024)});
    }
    t.print();
    bench::note("paper: 100 ms => 7B batch <= 9 (1K) / 3 (4K); "
                "50 ms => 7B infeasible");

    printBanner("End-to-end under tight SLOs (48 x 7B, SLINFER)");
    Table t2({"TPOT SLO", "SLO rate", "CPU used", "GPU used",
              "CPU tokens share"});
    for (double tpot : {0.25, 0.10, 0.05}) {
        ControllerConfig ctl;
        ctl.slo = tightSlo(tpot);
        Report r = bench::runAzure(SystemKind::Slinfer, llama2_7b(), 48,
                                   900.0, ClusterSpec{}, ctl);
        double cpu_share =
            r.decodeSpeedCpu * r.avgCpuNodesUsed /
            std::max(1e-9, r.decodeSpeedCpu * r.avgCpuNodesUsed +
                               r.decodeSpeedGpu * r.avgGpuNodesUsed);
        t2.addRow({Table::num(tpot * 1e3, 0) + " ms",
                   Table::pct(r.sloRate),
                   Table::num(r.avgCpuNodesUsed, 1),
                   Table::num(r.avgGpuNodesUsed, 1),
                   Table::pct(cpu_share)});
    }
    t2.print();
    bench::note("as the TPOT SLO tightens, SLINFER's profiling shifts "
                "work off the CPUs onto the GPUs");
    return 0;
}
