/**
 * @file
 * Table I: Llama-2-7B on a 3rd-gen (no AMX) vs 4th-gen (AMX) Xeon.
 * The roofline model is calibrated against exactly these numbers; this
 * bench prints measured vs paper side by side.
 */

#include "bench_util.hh"
#include "hw/perf_model.hh"

using namespace slinfer;

int
main()
{
    printBanner("Table I - Llama-2-7B across CPU generations");
    ModelSpec m = llama2_7b();
    HardwareSpec gen3 = xeon8369b();
    HardwareSpec gen4 = xeon6462c();

    double paper3[7] = {1003, 4113, 18612, 100, 338, 110, 697};
    double paper4[7] = {149, 567, 2748, 71, 196, 80, 459};

    auto measured = [&m](const HardwareSpec &hw, double out[7]) {
        out[0] = PerfModel::prefillTime(hw, m, 256) * 1e3;
        out[1] = PerfModel::prefillTime(hw, m, 1024) * 1e3;
        out[2] = PerfModel::prefillTime(hw, m, 4096) * 1e3;
        out[3] = PerfModel::decodeTime(hw, m, 1, 1024) * 1e3;
        out[4] = PerfModel::decodeTime(hw, m, 32, 1024) * 1e3;
        out[5] = PerfModel::decodeTime(hw, m, 1, 4096) * 1e3;
        out[6] = PerfModel::decodeTime(hw, m, 32, 4096) * 1e3;
    };
    double got3[7], got4[7];
    measured(gen3, got3);
    measured(gen4, got4);

    const char *cols[7] = {"TTFT-256", "TTFT-1K",   "TTFT-4K",
                           "1bs-1K",   "32bs-1K",   "1bs-4K",
                           "32bs-4K"};
    Table t({"metric (ms)", "3rd paper", "3rd ours", "4th paper",
             "4th ours", "speedup paper", "speedup ours"});
    for (int i = 0; i < 7; ++i) {
        t.addRow({cols[i], Table::num(paper3[i], 0),
                  Table::num(got3[i], 0), Table::num(paper4[i], 0),
                  Table::num(got4[i], 0),
                  Table::num(paper3[i] / paper4[i], 1) + "x",
                  Table::num(got3[i] / got4[i], 1) + "x"});
    }
    t.print();
    return 0;
}
