/**
 * @file
 * The stepwise run lifecycle: slinfer::Session.
 *
 * A Session is one live experiment with an explicit lifecycle, in
 * place of the old configure-then-run-to-completion shape:
 *
 *   Session s(cfg);            // validate, build cluster + stream
 *   s.advanceTo(300.0);        // step the simulation (runUntil)
 *   MetricsView v = s.sample(); // observe the run in flight
 *   s.inject(iv);              // mutate it (node fail, deploy, ...)
 *   s.advanceTo(s.duration());
 *   Report r = s.finish();     // drain + the same Report as before
 *
 * Stepping is pure observation: a run advanced in any number of steps
 * executes the exact event sequence of a single run-to-completion, so
 * reports are byte-identical however the caller slices the clock (the
 * determinism contract in docs/ARCHITECTURE.md). Interventions
 * (harness/intervention.hh) are the one way to perturb a run mid
 * flight: node failure/restore and model deploy/redeploy/retire route
 * through the ControllerBase hooks; arrival scaling and bursts edit
 * the Session's own arrival schedule. A config-embedded Timeline
 * applies interventions at scripted times without any manual
 * stepping — that is how slinfer_run --timeline and the fault/deploy
 * catalog scenarios work.
 *
 * runExperiment (harness/experiment.hh) is now a thin wrapper:
 * create → advanceTo(duration()) → finish().
 */

#ifndef SLINFER_HARNESS_SESSION_HH
#define SLINFER_HARNESS_SESSION_HH

#include <deque>
#include <memory>

#include "harness/experiment.hh"
#include "obs/obs.hh"
#include "sim/lockstep.hh"
#include "stream/feed.hh"

namespace slinfer
{

namespace chaos
{
class ResilienceProbe;
}

/**
 * A consistent snapshot of the live run at sample() time, read off
 * the recorder and the controller's incremental cluster indices
 * (core/cluster_index.hh) — sampling never perturbs the run.
 */
struct MetricsView
{
    /** Simulated time of the snapshot. */
    Seconds time = 0.0;

    /** Requests submitted so far. */
    std::size_t arrived = 0;
    std::size_t completed = 0;
    std::size_t dropped = 0;
    /** Submitted but neither completed nor dropped. */
    std::size_t inFlight = 0;

    /** Queued (pending dispatch) requests per model id. */
    std::vector<std::size_t> queueDepthPerModel;

    /** Active instances right now / ever created. */
    std::size_t instancesLive = 0;
    std::size_t instancesCreated = 0;

    /** Mean KV allocation utilization across live instances. */
    double kvUtilization = 0.0;
    /** Running busy-seconds aggregates per hardware kind. */
    double busySecondsCpu = 0.0;
    double busySecondsGpu = 0.0;
    /** Running scaling-overhead fraction (O(1) index form). */
    double scalingOverhead = 0.0;
};

class Session
{
  public:
    /** Validate `cfg`, build the cluster and the request stream, and
     *  arm the timeline. No simulated time passes until an advance. */
    explicit Session(const ExperimentConfig &cfg);
    ~Session();

    /** Self-referencing event callbacks pin the address. */
    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Heap-allocating convenience constructor. */
    static std::unique_ptr<Session> create(const ExperimentConfig &cfg);

    /** Current simulated time. */
    Seconds now() const;

    /** The metrics window (stamped by the trace/arrival process). */
    Seconds duration() const { return duration_; }

    /** Run every event with time <= `t`, then set the clock to `t`.
     *  Fatal when `t` is in the past or the session is finished. */
    void advanceTo(Seconds t);

    /** advanceTo(now() + dt). */
    void advanceBy(Seconds dt);

    /** Apply an intervention right now (its `at` stamp is ignored). */
    void inject(const Intervention &iv);

    /** Snapshot the live run (read-only; never perturbs it). */
    MetricsView sample() const;

    /** Drain the remaining events (completions past the metrics
     *  window) and build the Report. Callable once. */
    Report finish();

    bool finished() const { return finished_; }

    /** The live serving system (tests / observability). */
    ControllerBase &controller() { return *controller_; }
    const ControllerBase &controller() const { return *controller_; }

    /** The flight recorder, or nullptr when cfg.obs enabled nothing.
     *  Valid for the Session's lifetime, including after finish(). */
    obs::FlightRecorder *flightRecorder() { return obs_.get(); }
    const obs::FlightRecorder *flightRecorder() const
    {
        return obs_.get();
    }

    /** The streaming arrival feed, or nullptr in materialized mode
     *  (progress reporting / tests). */
    const stream::StreamingArrivalFeed *feed() const
    {
        return feed_.get();
    }
    /** High-water count of pooled Request objects ever materialized in
     *  streaming mode — the bounded-memory assertion's subject. */
    std::size_t streamPoolSize() const { return pool_.size(); }

  private:
    void applyIntervention(const Intervention &iv);
    /** Stamp ids/SLOs and clamp lengths — the shared tail of request
     *  construction. */
    Request fillRequest(ModelId model, const ModelSpec &spec, Seconds at,
                        Tokens input, Tokens output);
    Request materializeRequest(ModelId model, const ModelSpec &spec,
                               Seconds at, Rng &lenRng);
    /** Build the request for one source record: recorded lengths when
     *  the source carries them, dataset samples (lenRng_) otherwise. */
    Request buildRequest(const stream::TraceRecord &rec);
    /** Streaming: materialize `rec` into pooled (recyclable) storage. */
    Request *acquirePooled(const stream::TraceRecord &rec);
    /** Materialize + schedule an injected arrival at time `t`. */
    void addExtraArrival(ModelId model, Seconds t);
    ModelId checkedModel(const Intervention &iv) const;
    void cancelFutureArrivals(ModelId model);
    void scaleArrivals(double factor, int modelFilter);
    void injectBurst(ModelId model, double rpm, Seconds burstLen);
    void sampleKv();
    /** Append one timeseries sample at the current sim time. */
    void recordSample();
    /** Run timeseries sample points in [nextSample_, min(t, end)]
     *  by chopping the advance at each boundary — sampling schedules
     *  no events, so the run stays byte-identical to an unsampled
     *  one (the PR 5 stepped-advance determinism contract). */
    void advanceSampled(Seconds t);

    ExperimentConfig cfg_;
    Seconds duration_ = 0.0;
    Simulator sim_;
    /** Lockstep engine (null unless cfg.simThreads >= 1). Declared
     *  right after sim_: it must outlive the controller's schedulers,
     *  which hold pointers into its lanes. */
    std::unique_ptr<LockstepEngine> lockstep_;
    ClusterHandle cluster_;
    Recorder recorder_;
    std::unique_ptr<ClusterStats> stats_;
    std::vector<Dataset> datasets_;

    /** Trace requests, one reserved block: &req stays stable for the
     *  arrival events (exactly the old runExperiment contract). */
    std::vector<Request> requests_;
    /** Arrival events, 1:1 with requests_ — cancellable by
     *  retire/thinning interventions. */
    std::vector<EventHandle> arrivalEvents_;
    /** Injected arrivals (scale-up clones, bursts): deque so grown
     *  entries never move. */
    std::deque<Request> extra_;
    std::deque<EventHandle> extraEvents_;

    /** Arrival source (both modes; the materialized path drains it up
     *  front, the feed pulls from it incrementally). */
    stream::RequestSourcePtr source_;
    /** Bounded-lookahead feed (null in materialized mode). */
    std::unique_ptr<stream::StreamingArrivalFeed> feed_;
    /** Streaming request pool: storage never moves (deque) and is
     *  recycled through freeList_ once the controller reclaims a
     *  settled request. Bounded by lookahead + in-flight. */
    std::deque<Request> pool_;
    std::vector<Request *> freeList_;
    /** Dataset length RNG, consumed in strict trace order by both
     *  replay modes (the byte-identity contract). */
    Rng lenRng_;

    std::unique_ptr<ControllerBase> controller_;
    /** Intervention randomness (thinning, clones, burst gaps), forked
     *  from the config seed — untouched runs never draw from it. */
    Rng ivRng_;
    RequestId nextId_ = 1;

    struct KvSampling
    {
        double sum = 0.0;
        std::size_t n = 0;
    };
    KvSampling kvSampling_;
    bool finished_ = false;

    /** Flight recorder (null unless cfg.obs enabled a component). */
    std::unique_ptr<obs::FlightRecorder> obs_;
    /** Next timeseries sample boundary (sim time). */
    Seconds nextSample_ = 0.0;
    /** Resilience probe (null unless cfg.resilienceReport). Notified
     *  of node fail/restore *before* the controller hooks run, so it
     *  can snapshot pre-fault state (chaos/probe.hh). */
    std::unique_ptr<chaos::ResilienceProbe> probe_;
};

} // namespace slinfer

#endif // SLINFER_HARNESS_SESSION_HH
