/**
 * @file
 * Experiment configuration and the one-shot driver.
 *
 * ExperimentConfig declares everything one serving experiment needs;
 * Session (harness/session.hh) is the lifecycle that runs it, and
 * runExperiment() is the batch convenience wrapper (create → advance
 * to the metrics window's end → finish) every bench and test uses.
 */

#ifndef SLINFER_HARNESS_EXPERIMENT_HH
#define SLINFER_HARNESS_EXPERIMENT_HH

#include "chaos/chaos.hh"
#include "harness/intervention.hh"
#include "harness/systems.hh"
#include "metrics/report.hh"
#include "obs/config.hh"
#include "scenario/arrival.hh"
#include "stream/source.hh"
#include "workload/azure_trace.hh"
#include "workload/dataset.hh"

namespace slinfer
{

/** Physical cluster description. */
struct ClusterSpec
{
    int cpuNodes = 4;
    int gpuNodes = 4;
    HardwareSpec cpuSpec = xeon6462c();
    HardwareSpec gpuSpec = a100_80g();
};

/** One experiment. */
struct ExperimentConfig
{
    SystemKind system = SystemKind::Slinfer;
    ClusterSpec cluster;
    /** Model deployed behind each ModelId in the trace. */
    std::vector<ModelSpec> models;
    /**
     * Arrival source, preferred form: a composable process expanded
     * with `seed` at run time. The trace duration it stamps is the
     * experiment's metrics window.
     */
    scenario::ArrivalProcessPtr arrivals;
    /** Pre-materialized trace (legacy form; mutually exclusive with
     *  `arrivals`). Its stamped duration must agree with `duration`. */
    AzureTrace trace;
    /** Request length source (all models). */
    DatasetKind dataset = DatasetKind::AzureConv;
    /** Per-model length source overriding `dataset` (empty = uniform;
     *  otherwise one entry per model). */
    std::vector<DatasetKind> datasetPerModel;
    /**
     * Metrics window. 0 (the default) inherits the duration stamped on
     * the trace / arrival process, which is the single source of
     * truth; a nonzero value must agree with it (checked fatally).
     */
    Seconds duration = 0.0;
    ControllerConfig controller;
    std::uint64_t seed = 123;
    /** TTFT CDF sample points for the report. */
    std::vector<double> ttftCdfPoints = {0.25, 0.5, 1, 2, 3, 4, 5, 6};
    /**
     * Scripted mid-run interventions, applied at their `at` stamps
     * (harness/intervention.hh). Empty for a plain run.
     */
    Timeline timeline;
    /**
     * Chaos engine (chaos/chaos.hh): stochastic fault processes
     * expanded into a deterministic intervention schedule from `seed`
     * at Session build time and appended to `timeline` (then validated
     * and armed like hand-written entries). Empty = no chaos, and the
     * run is byte-identical to a pre-chaos one.
     */
    chaos::ChaosConfig chaos;
    /**
     * Attach the resilience probe (chaos/probe.hh) and emit the
     * Report::Resilience block (availability, MTTR, recovery time).
     * Off by default; the probe schedules its own wakeup events, so a
     * probed run is byte-comparable only to other probed runs.
     */
    bool resilienceReport = false;
    /**
     * Split the metrics window into this many equal report windows
     * (Report::windows gains per-window TTFT/throughput rows). 0 (the
     * default) disables windowing and leaves the report unchanged.
     */
    int windows = 0;
    /**
     * Flight-recorder configuration (obs/config.hh): span tracing,
     * hot-path counters, live timeseries sampling, wall-clock phase
     * profiling. All off by default; enabling any of them never
     * perturbs the simulation (reports stay byte-identical).
     */
    obs::ObsConfig obs;
    /**
     * Time-windowed lockstep execution (sim/lockstep.hh): 0 (the
     * default) keeps the serial engine; N >= 1 runs the δ-quantized
     * lockstep engine with N node-phase threads. Lockstep results are
     * byte-identical across every thread count (`simThreads=1` is the
     * inline serial oracle) but intentionally differ from the default
     * engine: the control plane acts at `simWindow` boundaries rather
     * than instantaneously.
     */
    int simThreads = 0;
    /** Lockstep control-plane period δ in seconds (grid anchored at
     *  t=0). Only read when simThreads >= 1. */
    Seconds simWindow = 0.05;
    /**
     * Streaming replay (stream/source.hh): pull arrivals incrementally
     * through a bounded lookahead window and recycle settled request
     * storage, instead of materializing the whole request vector up
     * front. Reports stay byte-identical to the materialized run; peak
     * memory becomes independent of trace length. `stream.tracePath`
     * replays an on-disk `.strc` trace (mutually exclusive with
     * `arrivals`/`trace`); ArrivalScale interventions are rejected in
     * streaming mode (future arrivals are not enumerable).
     */
    stream::StreamConfig stream;

    /**
     * Check the configuration for conflicts before any state is
     * built, one fatal() per conflict: models present, `arrivals` vs
     * `trace` exclusivity, `duration` agreement with the stamped
     * trace/process duration (the trace/scenario is the source of
     * truth), per-model dataset arity, and timeline well-formedness.
     * Session::create runs this up front, so a bad config can no
     * longer die mid-build with partial cluster state.
     */
    void validate() const;
};

/** Build `count` nodes of each spec (ids: CPUs first). */
std::vector<std::unique_ptr<Node>>
buildCluster(const ClusterSpec &cluster, int partitionsPerNode);

/**
 * Run the experiment to completion and summarize. A thin wrapper over
 * the Session lifecycle (harness/session.hh): create, advance to the
 * metrics window's end, finish.
 */
Report runExperiment(const ExperimentConfig &cfg);

/** Convenience: n replicas of one model spec. */
std::vector<ModelSpec> replicateModel(const ModelSpec &spec, int count);

} // namespace slinfer

#endif // SLINFER_HARNESS_EXPERIMENT_HH
