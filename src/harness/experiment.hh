/**
 * @file
 * Experiment driver: builds a cluster, materializes a request stream
 * from a trace plus a length dataset, runs one serving system to
 * completion, and gathers the Report the benches print.
 */

#ifndef SLINFER_HARNESS_EXPERIMENT_HH
#define SLINFER_HARNESS_EXPERIMENT_HH

#include "harness/systems.hh"
#include "metrics/report.hh"
#include "scenario/arrival.hh"
#include "workload/azure_trace.hh"
#include "workload/dataset.hh"

namespace slinfer
{

/** Physical cluster description. */
struct ClusterSpec
{
    int cpuNodes = 4;
    int gpuNodes = 4;
    HardwareSpec cpuSpec = xeon6462c();
    HardwareSpec gpuSpec = a100_80g();
};

/** One experiment. */
struct ExperimentConfig
{
    SystemKind system = SystemKind::Slinfer;
    ClusterSpec cluster;
    /** Model deployed behind each ModelId in the trace. */
    std::vector<ModelSpec> models;
    /**
     * Arrival source, preferred form: a composable process expanded
     * with `seed` at run time. The trace duration it stamps is the
     * experiment's metrics window.
     */
    scenario::ArrivalProcessPtr arrivals;
    /** Pre-materialized trace (legacy form; mutually exclusive with
     *  `arrivals`). Its stamped duration must agree with `duration`. */
    AzureTrace trace;
    /** Request length source (all models). */
    DatasetKind dataset = DatasetKind::AzureConv;
    /** Per-model length source overriding `dataset` (empty = uniform;
     *  otherwise one entry per model). */
    std::vector<DatasetKind> datasetPerModel;
    /**
     * Metrics window. 0 (the default) inherits the duration stamped on
     * the trace / arrival process, which is the single source of
     * truth; a nonzero value must agree with it (checked fatally).
     */
    Seconds duration = 0.0;
    ControllerConfig controller;
    std::uint64_t seed = 123;
    /** TTFT CDF sample points for the report. */
    std::vector<double> ttftCdfPoints = {0.25, 0.5, 1, 2, 3, 4, 5, 6};
};

/** Build `count` nodes of each spec (ids: CPUs first). */
std::vector<std::unique_ptr<Node>>
buildCluster(const ClusterSpec &cluster, int partitionsPerNode);

/** Run the experiment to completion and summarize. */
Report runExperiment(const ExperimentConfig &cfg);

/** Convenience: n replicas of one model spec. */
std::vector<ModelSpec> replicateModel(const ModelSpec &spec, int count);

} // namespace slinfer

#endif // SLINFER_HARNESS_EXPERIMENT_HH
