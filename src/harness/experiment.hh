/**
 * @file
 * Experiment driver: builds a cluster, materializes a request stream
 * from a trace plus a length dataset, runs one serving system to
 * completion, and gathers the Report the benches print.
 */

#ifndef SLINFER_HARNESS_EXPERIMENT_HH
#define SLINFER_HARNESS_EXPERIMENT_HH

#include "harness/systems.hh"
#include "metrics/report.hh"
#include "workload/azure_trace.hh"
#include "workload/dataset.hh"

namespace slinfer
{

/** Physical cluster description. */
struct ClusterSpec
{
    int cpuNodes = 4;
    int gpuNodes = 4;
    HardwareSpec cpuSpec = xeon6462c();
    HardwareSpec gpuSpec = a100_80g();
};

/** One experiment. */
struct ExperimentConfig
{
    SystemKind system = SystemKind::Slinfer;
    ClusterSpec cluster;
    /** Model deployed behind each ModelId in the trace. */
    std::vector<ModelSpec> models;
    /** Invocation trace (arrivals reference models by index). */
    AzureTrace trace;
    /** Request length source. */
    DatasetKind dataset = DatasetKind::AzureConv;
    /** Trace duration (metrics window). */
    Seconds duration = 1800.0;
    ControllerConfig controller;
    std::uint64_t seed = 123;
    /** TTFT CDF sample points for the report. */
    std::vector<double> ttftCdfPoints = {0.25, 0.5, 1, 2, 3, 4, 5, 6};
};

/** Build `count` nodes of each spec (ids: CPUs first). */
std::vector<std::unique_ptr<Node>>
buildCluster(const ClusterSpec &cluster, int partitionsPerNode);

/** Run the experiment to completion and summarize. */
Report runExperiment(const ExperimentConfig &cfg);

/** Convenience: n replicas of one model spec. */
std::vector<ModelSpec> replicateModel(const ModelSpec &spec, int count);

} // namespace slinfer

#endif // SLINFER_HARNESS_EXPERIMENT_HH
