#include "harness/session.hh"

#include <algorithm>
#include <cmath>

#include "chaos/probe.hh"
#include "common/log.hh"

namespace slinfer
{

// --------------------------------------------------------------------
// Construction
// --------------------------------------------------------------------

Session::Session(const ExperimentConfig &cfg)
    : cfg_(cfg), ivRng_(Rng(cfg.seed).fork(0xA11CE)),
      lenRng_(Rng(cfg.seed).fork(0x1E46))
{
    // Chaos expands into ordinary timeline entries *before* validation,
    // so generated schedules obey the same well-formedness rules as
    // hand-written ones (and overlapping fail ranges are rejected, not
    // silently no-op'd). Generation is a pure function of (config,
    // duration, seed): the same faults fire at any --jobs or
    // --parallel-sim thread count.
    if (cfg_.chaos.enabled()) {
        Seconds dur =
            cfg_.arrivals ? cfg_.arrivals->duration() : cfg_.trace.duration;
        if (cfg_.duration > 0)
            dur = cfg_.duration;
        if (!cfg_.stream.tracePath.empty() && dur <= 0)
            fatal("Session: chaos with a .strc replay needs an "
                  "explicit `duration` (the file header is read after "
                  "chaos expansion)");
        Timeline extra =
            chaos::generateChaosTimeline(cfg_.chaos, dur, cfg_.seed);
        cfg_.timeline.insert(cfg_.timeline.end(), extra.begin(),
                             extra.end());
    }
    cfg_.validate();

    // The flight recorder exists only when something is enabled; its
    // sinks are nullable pointers, so a disabled run pays nothing.
    if (cfg_.obs.any()) {
        obs_ = std::make_unique<obs::FlightRecorder>(cfg_.obs);
        sim_.attachObs(obs_->counters(), obs_->profiler());
    }

    // Lockstep mode: attach the engine before the controller exists
    // so every lazily created token scheduler registers its lane.
    if (cfg_.simThreads > 0) {
        lockstep_ = std::make_unique<LockstepEngine>(
            sim_, cfg_.simWindow, cfg_.simThreads);
        sim_.setLockstep(lockstep_.get());
    }

    // The arrival source. Generators remain inherently materialized
    // (they produce a full AzureTrace; the vector source owns it and
    // the pre-materialized cfg_.trace moves instead of being copied);
    // a .strc replay reads chunk-at-a-time from disk, which is the
    // fully bounded-memory path.
    if (!cfg_.stream.tracePath.empty()) {
        std::string err;
        source_ = stream::makeStrcSource(cfg_.stream.tracePath, &err);
        if (!source_)
            fatal("Session: " + err);
        duration_ = source_->duration();
        if (cfg_.duration > 0) {
            if (duration_ > 0 &&
                std::abs(cfg_.duration - duration_) > 1e-9)
                fatal("Session: `duration` disagrees with the .strc "
                      "header duration; the trace is the source of "
                      "truth");
            duration_ = cfg_.duration;
        }
        if (duration_ <= 0)
            fatal("Session: .strc replay with no duration (header "
                  "unstamped and cfg.duration unset)");
    } else {
        AzureTrace trace = cfg_.arrivals
                               ? cfg_.arrivals->generate(cfg_.seed)
                               : std::move(cfg_.trace);
        duration_ = trace.duration;
        if (cfg_.duration > 0)
            duration_ = cfg_.duration; // agreement checked by validate()
        source_ = stream::makeVectorSource(std::move(trace));
    }

    cluster_.nodes =
        buildCluster(cfg_.cluster, systemPartitions(cfg_.system));
    stats_ = std::make_unique<ClusterStats>(sim_, cluster_.nodes);
    cluster_.stats = stats_.get();
    if (cfg_.windows > 0)
        recorder_.enableWindows(duration_, cfg_.windows);
    // Anatomy blame windows share the Recorder's window grid so the
    // report's per-window attribution lines up with its TTFT rows.
    if (obs_ && obs_->anatomy() && cfg_.windows > 0)
        obs_->anatomy()->configureWindows(duration_, cfg_.windows);
    stats_->start(duration_);

    if (cfg_.datasetPerModel.empty()) {
        datasets_.assign(cfg_.models.size(), Dataset(cfg_.dataset));
    } else {
        for (DatasetKind kind : cfg_.datasetPerModel)
            datasets_.emplace_back(kind);
    }

    // Materialize requests from the source + dataset. Materialized
    // mode drains the source into one reserved block up front: the
    // vector never grows afterwards, so &req stays stable for the
    // arrival lambdas below, and the arena, recorder and request
    // storage together make the steady-state run allocation-free per
    // event. Streaming mode defers to the feed: requests materialize
    // lazily into a recycled pool, so the reserves scale with the
    // lookahead window, not the trace — and degrade gracefully to
    // chunked growth when the source cannot size itself (sizeHint 0,
    // e.g. a torn .strc read by a scan).
    const std::uint64_t hint = source_->sizeHint();
    if (cfg_.stream.enabled) {
        if (hint > 0)
            recorder_.reserve(hint); // TTFT samples: 8 B / completion
        sim_.reserveEvents(cfg_.stream.lookahead + 1024);
    } else {
        requests_.reserve(hint);
        arrivalEvents_.reserve(hint);
        recorder_.reserve(hint);
        sim_.reserveEvents(hint + 1024);
        stream::TraceRecord rec;
        while (source_->next(rec))
            requests_.push_back(buildRequest(rec));
    }

    std::vector<double> avg_out(cfg_.models.size());
    for (std::size_t m = 0; m < cfg_.models.size(); ++m)
        avg_out[m] = datasets_[m].meanOutput();
    ControllerConfig ctl_cfg = cfg_.controller;
    ctl_cfg.seed = cfg_.seed;
    controller_ = makeSystem(cfg_.system, sim_, cluster_, cfg_.models,
                             avg_out, ctl_cfg, recorder_);
    // Attach before any event runs: schedulers and memory subsystems
    // are created lazily at first dispatch, so all of them inherit the
    // sinks wired here.
    if (obs_)
        controller_->attachObs(obs_.get());

    // Arrival scheduling. The streaming feed reserves its seq band at
    // exactly this construction point, so trace arrival k carries the
    // same tie-breaking sequence number in both modes (the
    // byte-identity contract; see stream/feed.hh).
    if (cfg_.stream.enabled) {
        controller_->setReclaimHook([this](Request *r) {
            if (r->poolSlot != kRequestNotPooled)
                freeList_.push_back(r);
        });
        feed_ = std::make_unique<stream::StreamingArrivalFeed>(
            sim_, *source_, cfg_.stream.lookahead,
            [this](const stream::TraceRecord &rec) {
                return acquirePooled(rec);
            },
            [this](Request *r) { controller_->submit(r); },
            [this](Request *r) { freeList_.push_back(r); });
        feed_->start();
    } else {
        for (Request &req : requests_) {
            arrivalEvents_.push_back(sim_.scheduleAt(
                req.arrival,
                [this, &req] { controller_->submit(&req); }));
        }
    }

    // Periodically sample KV utilization while the run is live
    // (Fig. 31); the timeline arms last so interventions at time T run
    // after the ordinary events scheduled for T at creation.
    sim_.schedule(1.0, [this] { sampleKv(); });
    for (const Intervention &iv : cfg_.timeline)
        sim_.scheduleAt(iv.at, [this, iv] { applyIntervention(iv); });

    // The resilience probe arms its window-close event here, after the
    // timeline: equal-time intervention events keep firing before it.
    if (cfg_.resilienceReport) {
        probe_ = std::make_unique<chaos::ResilienceProbe>(
            sim_, cluster_.nodes, *controller_, recorder_, duration_);
    }

    // Timeseries sampling starts with a t=0 row; later rows are taken
    // by chopping advances at the sample cadence (advanceSampled).
    if (obs_ && obs_->timeseries()) {
        recordSample();
        nextSample_ = obs_->timeseries()->sampleEvery();
    }
}

Session::~Session() = default;

std::unique_ptr<Session>
Session::create(const ExperimentConfig &cfg)
{
    return std::make_unique<Session>(cfg);
}

Request
Session::fillRequest(ModelId model, const ModelSpec &spec, Seconds at,
                     Tokens input, Tokens output)
{
    Request req;
    req.id = nextId_++;
    req.model = model;
    req.arrival = at;
    req.inputLen = std::clamp<Tokens>(input, 1, spec.maxContext - 64);
    req.targetOutput = std::clamp<Tokens>(
        output, 1, spec.maxContext - req.inputLen - 1);
    req.ttftSlo = cfg_.controller.slo.ttft(req.inputLen);
    req.tpotSlo = cfg_.controller.slo.tpot;
    return req;
}

Request
Session::materializeRequest(ModelId model, const ModelSpec &spec,
                            Seconds at, Rng &lenRng)
{
    LengthSample len = datasets_[model].sample(lenRng);
    return fillRequest(model, spec, at, len.input, len.output);
}

Request
Session::buildRequest(const stream::TraceRecord &rec)
{
    if (rec.model >= cfg_.models.size())
        fatal("Session: trace references unknown model");
    const ModelSpec &spec = cfg_.models[rec.model];
    if (source_->hasLengths())
        return fillRequest(rec.model, spec, rec.time,
                           static_cast<Tokens>(rec.inputLen),
                           static_cast<Tokens>(rec.targetOutput));
    return materializeRequest(rec.model, spec, rec.time, lenRng_);
}

Request *
Session::acquirePooled(const stream::TraceRecord &rec)
{
    Request *r;
    if (!freeList_.empty()) {
        r = freeList_.back();
        freeList_.pop_back();
    } else {
        pool_.emplace_back();
        r = &pool_.back();
    }
    *r = buildRequest(rec); // full reset: ids/refs never leak across
                            // pool generations
    r->poolSlot = 0; // pool-owned: the reclaim hook recycles it
    return r;
}

void
Session::sampleKv()
{
    double u = controller_->kvUtilizationNow();
    if (u > 0) {
        kvSampling_.sum += u;
        ++kvSampling_.n;
    }
    if (sim_.now() + 2.0 <= duration_)
        sim_.schedule(2.0, [this] { sampleKv(); });
}

// --------------------------------------------------------------------
// Lifecycle
// --------------------------------------------------------------------

Seconds
Session::now() const
{
    return sim_.now();
}

void
Session::advanceTo(Seconds t)
{
    if (finished_)
        fatal("Session::advanceTo after finish()");
    if (t < sim_.now())
        fatal("Session::advanceTo into the past");
    advanceSampled(t);
    sim_.runUntil(t);
}

void
Session::advanceSampled(Seconds t)
{
    if (!obs_ || !obs_->timeseries())
        return;
    const Seconds every = obs_->timeseries()->sampleEvery();
    Seconds end = std::min(t, duration_);
    while (nextSample_ <= end) {
        sim_.runUntil(nextSample_);
        recordSample();
        nextSample_ += every;
    }
}

void
Session::recordSample()
{
    MetricsView v = sample();
    obs::TimeseriesSample s;
    s.time = v.time;
    s.arrived = v.arrived;
    s.completed = v.completed;
    s.dropped = v.dropped;
    s.inFlight = v.inFlight;
    s.queueDepth = 0;
    for (std::size_t depth : v.queueDepthPerModel)
        s.queueDepth += depth;
    s.instancesLive = v.instancesLive;
    s.instancesCreated = v.instancesCreated;
    s.kvUtilization = v.kvUtilization;
    s.busySecondsCpu = v.busySecondsCpu;
    s.busySecondsGpu = v.busySecondsGpu;
    s.scalingOverhead = v.scalingOverhead;
    obs_->timeseries()->record(s);
}

void
Session::advanceBy(Seconds dt)
{
    if (dt < 0)
        fatal("Session::advanceBy with negative delta");
    advanceTo(sim_.now() + dt);
}

Report
Session::finish()
{
    if (finished_)
        fatal("Session::finish called twice");
    // Take the sample points the caller never stepped across before
    // the final drain runs past the metrics window.
    advanceSampled(duration_);
    // Close the timeseries with a row at duration() when the run ends
    // inside a partial cadence window (no duplicate when the duration
    // is an exact multiple — the loop above already sampled it).
    if (obs_ && obs_->timeseries() &&
        nextSample_ - obs_->timeseries()->sampleEvery() < duration_) {
        if (sim_.now() < duration_)
            sim_.runUntil(duration_);
        recordSample();
    }
    // Drain: requests admitted inside the window complete past its
    // end, exactly as the one-shot driver always ran them.
    sim_.run();
    finished_ = true;

    Report report = Report::build(systemName(cfg_.system), recorder_,
                                  *stats_, cfg_.ttftCdfPoints);
    report.kvUtilization =
        kvSampling_.n ? kvSampling_.sum / kvSampling_.n : 0.0;
    report.scalingOverhead = controller_->scalingOverheadFraction();
    if (obs_ && obs_->counters()) {
        const obs::Counters &c = *obs_->counters();
        report.counters.reserve(obs::kNumCounters);
        for (std::size_t i = 0; i < obs::kNumCounters; ++i)
            report.counters.emplace_back(obs::counterName(i), c.v[i]);
        // Ring-overwrite visibility: how many trace events were lost.
        // Appended past the registry so counters-only runs keep the
        // exact registry-order snapshot.
        if (obs_->trace())
            report.counters.emplace_back("trace_dropped",
                                         obs_->trace()->dropped());
    }
    if (obs_ && obs_->profiler())
        obs::addPhaseTotals(*obs_->profiler());
    if (obs_ && obs_->anatomy()) {
        obs::AnatomyLedger &led = *obs_->anatomy();
        led.finalize(sim_.now());
        Report::Attribution &a = report.attribution;
        a.enabled = true;
        a.requests = led.closedCount();
        a.violations = led.violationCount();
        a.segments.reserve(obs::kNumSegs);
        for (std::size_t s = 0; s < obs::kNumSegs; ++s) {
            obs::AnatomyLedger::SegAggregate agg = led.segment(s);
            Report::Attribution::Segment row;
            row.name = obs::segName(s);
            row.count = agg.count;
            row.totalS = static_cast<double>(agg.totalNs) * 1e-9;
            row.p50s = agg.p50s;
            row.p95s = agg.p95s;
            row.p99s = agg.p99s;
            row.blamed = agg.blamed;
            a.segments.push_back(std::move(row));
        }
        const std::vector<std::vector<std::uint64_t>> &per_model =
            led.perModel();
        for (std::size_t m = 0; m < per_model.size(); ++m) {
            bool any = false;
            for (std::uint64_t v : per_model[m])
                any = any || v != 0;
            if (!any)
                continue; // only models that blamed something
            Report::Attribution::ModelBlame row;
            // "m<id>:<name>": fleet scenarios deploy many models with
            // the same spec name, so the id keeps rows unambiguous.
            row.model = "m" + std::to_string(m) +
                        (m < controller_->models().size()
                             ? ":" + controller_->models()[m].spec.name
                             : "");
            row.blamed = per_model[m];
            a.perModel.push_back(std::move(row));
        }
        a.windowLen = led.windowLength();
        a.perWindow = led.perWindow();
    }
    if (probe_)
        probe_->finalize(report.resilience);
    return report;
}

MetricsView
Session::sample() const
{
    MetricsView v;
    v.time = sim_.now();
    v.arrived = recorder_.total();
    v.completed = recorder_.completed();
    v.dropped = recorder_.dropped();
    v.inFlight = v.arrived - v.completed - v.dropped;
    v.queueDepthPerModel = controller_->pendingPerModel();
    const ClusterIndex &index = controller_->clusterIndex();
    v.instancesLive = index.activeInstances().size();
    v.instancesCreated = controller_->instancesCreated();
    v.kvUtilization = controller_->kvUtilizationNow();
    v.busySecondsCpu = index.busySeconds(HwKind::Cpu);
    v.busySecondsGpu = index.busySeconds(HwKind::Gpu);
    v.scalingOverhead = index.scalingOverheadFraction(sim_.now());
    return v;
}

// --------------------------------------------------------------------
// Interventions
// --------------------------------------------------------------------

void
Session::inject(const Intervention &iv)
{
    if (finished_)
        fatal("Session::inject after finish()");
    // Lockstep: replay everything staged up to now before the
    // intervention acts, so the controller decides on a synchronized
    // cluster and the trace stays time-monotone. Runs that never
    // inject never replay off-grid.
    if (lockstep_)
        lockstep_->flushStaged();
    applyIntervention(iv);
}

ModelId
Session::checkedModel(const Intervention &iv) const
{
    if (iv.model < 0 ||
        static_cast<std::size_t>(iv.model) >= controller_->models().size())
        fatal(std::string("Session: intervention '") +
              interventionKindName(iv.kind) + "' references unknown model " +
              std::to_string(iv.model));
    return static_cast<ModelId>(iv.model);
}

void
Session::applyIntervention(const Intervention &iv)
{
    if (obs_ && obs_->trace() &&
        obs_->trace()->wants(obs::kCatIntervention)) {
        obs_->trace()->instant(obs::kCatIntervention,
                               interventionKindName(iv.kind), sim_.now(),
                               obs::kPidController, 0);
    }
    // The probe observes fail/restore *before* the controller hook:
    // it needs the pre-fault pending depth (failNode evicts the node's
    // requests into the queue) and the pre-event node state to reject
    // no-op duplicates.
    if (probe_ && (iv.kind == Intervention::Kind::NodeFail ||
                   iv.kind == Intervention::Kind::NodeRestore))
        probe_->onNodeEvent(iv);
    switch (iv.kind) {
      case Intervention::Kind::NodeFail:
        controller_->failNode(static_cast<NodeId>(iv.node));
        break;
      case Intervention::Kind::NodeRestore:
        controller_->restoreNode(static_cast<NodeId>(iv.node));
        break;
      case Intervention::Kind::NodeDegrade:
        controller_->degradeNode(static_cast<NodeId>(iv.node),
                                 iv.factor);
        break;
      case Intervention::Kind::NodeRecover:
        controller_->recoverNode(static_cast<NodeId>(iv.node));
        break;
      case Intervention::Kind::NetBrownout:
        controller_->setNetFactor(iv.factor);
        break;
      case Intervention::Kind::NetRestore:
        controller_->setNetFactor(1.0);
        break;
      case Intervention::Kind::ModelDeploy: {
        // The deployed model samples lengths from the scenario's
        // shared dataset; its arrivals come from later bursts.
        datasets_.emplace_back(cfg_.dataset);
        controller_->deployModel(iv.spec, datasets_.back().meanOutput());
        break;
      }
      case Intervention::Kind::ModelRedeploy:
        controller_->redeployModel(checkedModel(iv));
        break;
      case Intervention::Kind::ModelRetire: {
        ModelId m = checkedModel(iv);
        cancelFutureArrivals(m);
        controller_->retireModel(m);
        break;
      }
      case Intervention::Kind::ArrivalScale:
        if (iv.model >= 0)
            checkedModel(iv); // a typo'd filter must not silently no-op
        scaleArrivals(iv.factor, iv.model);
        break;
      case Intervention::Kind::ArrivalBurst:
        injectBurst(checkedModel(iv), iv.rpm, iv.duration);
        break;
    }
}

void
Session::addExtraArrival(ModelId model, Seconds t)
{
    const ModelSpec &spec = controller_->models()[model].spec;
    extra_.push_back(materializeRequest(model, spec, t, ivRng_));
    Request *req = &extra_.back();
    extraEvents_.push_back(sim_.scheduleAt(
        t, [this, req] { controller_->submit(req); }));
}

void
Session::cancelFutureArrivals(ModelId model)
{
    // Streaming: the feed cancels its window entries and recycles
    // future records of the model at pump time (requests_ is empty).
    if (feed_)
        feed_->retireModel(model);
    // pending() is definitive: fired and already-cancelled arrivals
    // are skipped, everything still scheduled is revoked.
    for (std::size_t i = 0; i < requests_.size(); ++i) {
        if (requests_[i].model == model && arrivalEvents_[i].pending())
            arrivalEvents_[i].cancel();
    }
    for (std::size_t i = 0; i < extra_.size(); ++i) {
        if (extra_[i].model == model && extraEvents_[i].pending())
            extraEvents_[i].cancel();
    }
}

void
Session::scaleArrivals(double factor, int modelFilter)
{
    // Thinning/cloning needs the full future arrival set, which a
    // streaming run never holds. validate() rejects timeline entries;
    // this guards manual inject() calls.
    if (feed_)
        fatal("Session: arrival-scale is unsupported in streaming "
              "mode (future arrivals are not enumerable)");
    if (factor == 1.0)
        return;
    // Snapshot the injected-arrival count: clones appended during the
    // walk must not themselves be rescaled.
    const std::size_t n_req = requests_.size();
    const std::size_t n_extra = extra_.size();

    auto scaleOne = [&](Request &req, EventHandle &ev) {
        if (!ev.pending())
            return; // already fired, cancelled or thinned away
        if (modelFilter >= 0 &&
            req.model != static_cast<ModelId>(modelFilter))
            return;
        if (factor < 1.0) {
            if (ivRng_.uniform() >= factor)
                ev.cancel();
            return;
        }
        // factor > 1: clone the arrival, jittered up to 1 s later so
        // copies do not land as simultaneous duplicates.
        double surplus = factor - 1.0;
        int clones = static_cast<int>(surplus);
        if (ivRng_.uniform() < surplus - clones)
            ++clones;
        for (int c = 0; c < clones; ++c) {
            Seconds t = std::min<Seconds>(req.arrival +
                                              ivRng_.uniform(),
                                          duration_);
            addExtraArrival(req.model, t);
        }
    };
    for (std::size_t i = 0; i < n_req; ++i)
        scaleOne(requests_[i], arrivalEvents_[i]);
    for (std::size_t i = 0; i < n_extra; ++i)
        scaleOne(extra_[i], extraEvents_[i]);
}

void
Session::injectBurst(ModelId model, double rpm, Seconds burstLen)
{
    if (rpm <= 0 || burstLen <= 0)
        return;
    double rate = rpm / 60.0;
    Seconds end = std::min(sim_.now() + burstLen, duration_);
    Seconds t = sim_.now();
    for (;;) {
        t += ivRng_.exponential(rate);
        if (t >= end)
            break;
        addExtraArrival(model, t);
    }
}

} // namespace slinfer
