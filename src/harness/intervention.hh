/**
 * @file
 * Mid-run interventions: scripted or programmatic mutations a Session
 * applies to a live experiment (harness/session.hh).
 *
 * An Intervention is plain data. The Session routes each kind to the
 * right layer when it fires: node failure/restore and model
 * deploy/redeploy/retire go through the ControllerBase intervention
 * hooks (core/controller.hh), arrival scaling and bursts mutate the
 * Session's own arrival schedule. A time-stamped list of interventions
 * forms a *timeline*; ExperimentConfig carries one so scenarios can
 * embed scripted fault/deploy/surge sequences (parse one from JSON
 * with scenario::parseTimeline, or pass `--timeline file.json` to
 * slinfer_run).
 */

#ifndef SLINFER_HARNESS_INTERVENTION_HH
#define SLINFER_HARNESS_INTERVENTION_HH

#include <string>
#include <vector>

#include "hw/model_spec.hh"

namespace slinfer
{

struct Intervention
{
    enum class Kind
    {
        /** Fence a node: its partitions stop accepting placements,
         *  in-flight requests migrate off, residents unload. */
        NodeFail,
        /** Reopen a failed node for placement. */
        NodeRestore,
        /** Append `spec` to the fleet as a new model id. */
        ModelDeploy,
        /** Roll out a new version of model `model` in place: drain its
         *  instances so subsequent requests cold-start fresh ones. */
        ModelRedeploy,
        /** Retire model `model`: cancel its future arrivals, drop its
         *  in-flight requests, unload its instances. */
        ModelRetire,
        /** Scale all future arrivals by `factor` (thin below 1,
         *  clone above 1); `model` >= 0 restricts to one model. */
        ArrivalScale,
        /** Inject a Poisson burst of `rpm` requests/minute for
         *  `model`, lasting `duration` seconds. */
        ArrivalBurst,
        /** Straggler: multiply node `node`'s perf-model iteration
         *  latencies by `factor` (> 1 slows it down). Orthogonal to
         *  NodeFail — a degraded node still accepts placements. */
        NodeDegrade,
        /** Reset node `node`'s degradation multiplier to 1. */
        NodeRecover,
        /** Network brownout: multiply PD KV-transfer times by
         *  `factor` fleet-wide until NetRestore. */
        NetBrownout,
        /** End a network brownout (transfer multiplier back to 1). */
        NetRestore,
    };

    Kind kind = Kind::NodeFail;
    /** Fire time (timeline use; Session::inject applies at now()). */
    Seconds at = 0.0;
    /** Target node (NodeFail / NodeRestore). */
    int node = -1;
    /** Target model (ModelRedeploy / ModelRetire / ArrivalBurst;
     *  optional filter for ArrivalScale). */
    int model = -1;
    /** Deployed model (ModelDeploy). */
    ModelSpec spec;
    /** Arrival multiplier (ArrivalScale), perf-latency multiplier
     *  (NodeDegrade), or KV-transfer multiplier (NetBrownout). */
    double factor = 1.0;
    /** Burst rate, requests/minute (ArrivalBurst). */
    double rpm = 0.0;
    /** Burst length, seconds (ArrivalBurst). */
    Seconds duration = 0.0;
};

/** Timeline slug of the kind ("node-fail", "model-redeploy", ...). */
const char *interventionKindName(Intervention::Kind kind);

/** Parse a timeline slug; false on unknown names. */
bool tryParseInterventionKind(const std::string &name,
                              Intervention::Kind &out);

/** A scripted intervention sequence, ordered by `at`. */
using Timeline = std::vector<Intervention>;

} // namespace slinfer

#endif // SLINFER_HARNESS_INTERVENTION_HH
