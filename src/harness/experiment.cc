#include "harness/experiment.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "metrics/cluster_stats.hh"
#include "metrics/recorder.hh"

namespace slinfer
{

std::vector<std::unique_ptr<Node>>
buildCluster(const ClusterSpec &cluster, int partitionsPerNode)
{
    std::vector<std::unique_ptr<Node>> nodes;
    NodeId id = 0;
    for (int i = 0; i < cluster.cpuNodes; ++i) {
        nodes.push_back(std::make_unique<Node>(id++, cluster.cpuSpec,
                                               partitionsPerNode));
    }
    for (int i = 0; i < cluster.gpuNodes; ++i) {
        nodes.push_back(std::make_unique<Node>(id++, cluster.gpuSpec,
                                               partitionsPerNode));
    }
    return nodes;
}

std::vector<ModelSpec>
replicateModel(const ModelSpec &spec, int count)
{
    std::vector<ModelSpec> models;
    models.reserve(count);
    for (int i = 0; i < count; ++i) {
        ModelSpec m = spec;
        m.name = spec.name; // replicas share the profile key
        models.push_back(std::move(m));
    }
    return models;
}

/**
 * Resolve the arrival source and the metrics window: the duration
 * stamped by the generator (or arrival process) is authoritative, and
 * an explicitly configured cfg.duration must agree with it.
 */
static AzureTrace
resolveTrace(const ExperimentConfig &cfg, Seconds &duration)
{
    if (cfg.arrivals && !cfg.trace.arrivals.empty())
        fatal("runExperiment: both `arrivals` and `trace` are set");

    AzureTrace trace =
        cfg.arrivals ? cfg.arrivals->generate(cfg.seed) : cfg.trace;

    duration = trace.duration;
    if (cfg.duration > 0) {
        if (duration > 0 && std::abs(cfg.duration - duration) > 1e-9)
            fatal("runExperiment: cfg.duration disagrees with the trace "
                  "duration; the trace/scenario is the source of truth");
        duration = cfg.duration;
    }
    if (duration <= 0)
        fatal("runExperiment: no duration configured");
    return trace;
}

/** Per-model length samplers (cfg.datasetPerModel overrides). */
static std::vector<Dataset>
resolveDatasets(const ExperimentConfig &cfg)
{
    std::vector<Dataset> datasets;
    if (cfg.datasetPerModel.empty()) {
        datasets.assign(cfg.models.size(), Dataset(cfg.dataset));
    } else {
        if (cfg.datasetPerModel.size() != cfg.models.size())
            fatal("runExperiment: datasetPerModel must have one entry "
                  "per model");
        for (DatasetKind kind : cfg.datasetPerModel)
            datasets.emplace_back(kind);
    }
    return datasets;
}

Report
runExperiment(const ExperimentConfig &cfg)
{
    if (cfg.models.empty())
        fatal("runExperiment: no models configured");

    Seconds duration = 0.0;
    AzureTrace trace = resolveTrace(cfg, duration);

    Simulator sim;
    auto nodes = buildCluster(cfg.cluster, systemPartitions(cfg.system));
    Recorder recorder;
    ClusterStats stats(sim, nodes);
    stats.start(duration);

    std::vector<Dataset> datasets = resolveDatasets(cfg);
    Rng len_rng = Rng(cfg.seed).fork(0x1E46);

    // Materialize requests from the trace + dataset into one reserved
    // block. The vector never grows afterwards, so &req stays stable
    // for the arrival lambdas below, and the arena, recorder and
    // request storage together make the steady-state run allocation-
    // free per event.
    std::vector<Request> requests;
    requests.reserve(trace.arrivals.size());
    recorder.reserve(trace.arrivals.size());
    sim.reserveEvents(trace.arrivals.size() + 1024);
    RequestId next_id = 1;
    for (const Arrival &a : trace.arrivals) {
        if (a.model >= cfg.models.size())
            fatal("runExperiment: trace references unknown model");
        const ModelSpec &spec = cfg.models[a.model];
        LengthSample len = datasets[a.model].sample(len_rng);
        Request req;
        req.id = next_id++;
        req.model = a.model;
        req.arrival = a.time;
        req.inputLen =
            std::clamp<Tokens>(len.input, 1, spec.maxContext - 64);
        req.targetOutput = std::clamp<Tokens>(
            len.output, 1, spec.maxContext - req.inputLen - 1);
        req.ttftSlo = cfg.controller.slo.ttft(req.inputLen);
        req.tpotSlo = cfg.controller.slo.tpot;
        requests.push_back(req);
    }

    std::vector<double> avg_out(cfg.models.size());
    for (std::size_t m = 0; m < cfg.models.size(); ++m)
        avg_out[m] = datasets[m].meanOutput();
    ControllerConfig ctl_cfg = cfg.controller;
    ctl_cfg.seed = cfg.seed;
    auto controller =
        makeSystem(cfg.system, sim, nodes, cfg.models, avg_out, ctl_cfg,
                   recorder, &stats);

    for (Request &req : requests) {
        sim.scheduleAt(req.arrival,
                       [&controller, &req] { controller->submit(&req); });
    }

    // Periodically sample KV utilization and scaling overhead while the
    // run is live (Fig. 31).
    struct KvSampling
    {
        double sum = 0.0;
        std::size_t n = 0;
    };
    auto kv_sampling = std::make_shared<KvSampling>();
    std::function<void()> sample_kv = [&, kv_sampling]() {
        double u = controller->kvUtilizationNow();
        if (u > 0) {
            kv_sampling->sum += u;
            ++kv_sampling->n;
        }
        if (sim.now() + 2.0 <= duration)
            sim.schedule(2.0, sample_kv);
    };
    sim.schedule(1.0, sample_kv);

    sim.run();

    Report report = Report::build(systemName(cfg.system), recorder, stats,
                                  cfg.ttftCdfPoints);
    report.kvUtilization =
        kv_sampling->n ? kv_sampling->sum / kv_sampling->n : 0.0;
    report.scalingOverhead = controller->scalingOverheadFraction();
    return report;
}

} // namespace slinfer
