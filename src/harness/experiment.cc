#include "harness/experiment.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/log.hh"
#include "harness/session.hh"

namespace slinfer
{

std::vector<std::unique_ptr<Node>>
buildCluster(const ClusterSpec &cluster, int partitionsPerNode)
{
    std::vector<std::unique_ptr<Node>> nodes;
    NodeId id = 0;
    for (int i = 0; i < cluster.cpuNodes; ++i) {
        nodes.push_back(std::make_unique<Node>(id++, cluster.cpuSpec,
                                               partitionsPerNode));
    }
    for (int i = 0; i < cluster.gpuNodes; ++i) {
        nodes.push_back(std::make_unique<Node>(id++, cluster.gpuSpec,
                                               partitionsPerNode));
    }
    return nodes;
}

std::vector<ModelSpec>
replicateModel(const ModelSpec &spec, int count)
{
    std::vector<ModelSpec> models;
    models.reserve(count);
    for (int i = 0; i < count; ++i) {
        ModelSpec m = spec;
        m.name = spec.name; // replicas share the profile key
        models.push_back(std::move(m));
    }
    return models;
}

void
ExperimentConfig::validate() const
{
    if (models.empty())
        fatal("ExperimentConfig: no models configured");
    if (arrivals && !trace.arrivals.empty())
        fatal("ExperimentConfig: both `arrivals` and `trace` are set");
    // `stream.tracePath` without `stream.enabled` is legal: the packed
    // trace replayed through the classic materialized path — the
    // byte-identity oracle the CI streaming smoke diffs against.
    if (!stream.tracePath.empty() &&
        (arrivals || !trace.arrivals.empty()))
        fatal("ExperimentConfig: `stream.tracePath` is mutually "
              "exclusive with `arrivals`/`trace`");
    if (stream.enabled && stream.lookahead == 0)
        fatal("ExperimentConfig: `stream.lookahead` must be positive");

    // The duration stamped by the arrival process / trace generator is
    // authoritative; an explicitly configured duration must agree.
    // A .strc replay stamps its duration from the file header, which
    // validate() cannot read — Session checks agreement after opening.
    Seconds stamped = arrivals ? arrivals->duration() : trace.duration;
    if (duration > 0 && stamped > 0 &&
        std::abs(duration - stamped) > 1e-9) {
        fatal("ExperimentConfig: `duration` disagrees with the trace "
              "duration; the trace/scenario is the source of truth");
    }
    if (duration <= 0 && stamped <= 0 && stream.tracePath.empty())
        fatal("ExperimentConfig: no duration configured");

    if (!datasetPerModel.empty() && datasetPerModel.size() != models.size())
        fatal("ExperimentConfig: datasetPerModel must have one entry "
              "per model");
    if (windows < 0)
        fatal("ExperimentConfig: negative `windows`");
    if (simThreads < 0)
        fatal("ExperimentConfig: negative `simThreads`");
    if (simThreads > 0 && !(simWindow > 0))
        fatal("ExperimentConfig: lockstep mode needs a positive "
              "`simWindow`");

    // Timeline well-formedness. Events past the metrics window would
    // silently never fire ("dead events"), so they are rejected too.
    Seconds horizon = duration > 0 ? duration : stamped;
    int totalNodes = cluster.cpuNodes + cluster.gpuNodes;
    for (const Intervention &iv : timeline) {
        std::string name = interventionKindName(iv.kind);
        if (iv.at < 0)
            fatal("ExperimentConfig: timeline '" + name +
                  "' scheduled before t=0");
        // horizon <= 0 only for .strc replay, whose duration is known
        // after the file opens — dead events go unchecked there.
        if (horizon > 0 && iv.at > horizon + 1e-9)
            fatal("ExperimentConfig: timeline '" + name + "' at t=" +
                  std::to_string(iv.at) +
                  " is scheduled past the experiment duration (" +
                  std::to_string(horizon) + " s); it would never fire");
        switch (iv.kind) {
          case Intervention::Kind::NodeFail:
          case Intervention::Kind::NodeRestore:
          case Intervention::Kind::NodeDegrade:
          case Intervention::Kind::NodeRecover:
            if (iv.node < 0)
                fatal("ExperimentConfig: timeline '" + name +
                      "' needs `node`");
            if (iv.node >= totalNodes)
                fatal("ExperimentConfig: timeline '" + name +
                      "' references unknown node " +
                      std::to_string(iv.node) + " (cluster has " +
                      std::to_string(totalNodes) + " nodes)");
            break;
          case Intervention::Kind::ModelRedeploy:
          case Intervention::Kind::ModelRetire:
          case Intervention::Kind::ArrivalBurst:
            if (iv.model < 0)
                fatal("ExperimentConfig: timeline '" + name +
                      "' needs `model`");
            break;
          case Intervention::Kind::ModelDeploy:
            if (iv.spec.name.empty())
                fatal("ExperimentConfig: timeline 'model-deploy' needs "
                      "`spec`");
            break;
          case Intervention::Kind::ArrivalScale:
            if (stream.enabled)
                fatal("ExperimentConfig: timeline 'arrival-scale' is "
                      "unsupported in streaming mode (future arrivals "
                      "are not enumerable)");
            if (iv.factor < 0)
                fatal("ExperimentConfig: timeline 'arrival-scale' "
                      "needs a nonnegative `factor`");
            break;
          case Intervention::Kind::NetBrownout:
            if (iv.factor <= 0)
                fatal("ExperimentConfig: timeline 'net-brownout' "
                      "needs a positive `factor`");
            break;
          case Intervention::Kind::NetRestore:
            break;
        }
        if (iv.kind == Intervention::Kind::NodeDegrade &&
            iv.factor <= 0) {
            fatal("ExperimentConfig: timeline 'node-degrade' needs a "
                  "positive `factor`");
        }
        if (iv.kind == Intervention::Kind::ArrivalBurst &&
            (iv.rpm <= 0 || iv.duration <= 0)) {
            fatal("ExperimentConfig: timeline 'arrival-burst' needs "
                  "positive `rpm` and `duration`");
        }
    }

    // Per-node fail/restore pairing: replay the fail-kind events in
    // fire order and reject sequences that would hit the hooks' silent
    // no-op path (duplicate fails, restores of healthy nodes) — a
    // scripted timeline doing that is almost certainly a typo'd node
    // id or a missing restore. Equal-time events apply in timeline
    // order, matching how the Session arms them.
    std::vector<std::size_t> order(timeline.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return timeline[a].at < timeline[b].at;
                     });
    std::map<int, bool> nodeFailed;
    for (std::size_t idx : order) {
        const Intervention &iv = timeline[idx];
        if (iv.kind == Intervention::Kind::NodeFail) {
            if (nodeFailed[iv.node])
                fatal("ExperimentConfig: duplicate node-fail on node " +
                      std::to_string(iv.node) + " at t=" +
                      std::to_string(iv.at) +
                      " (it is already failed; missing node-restore?)");
            nodeFailed[iv.node] = true;
        } else if (iv.kind == Intervention::Kind::NodeRestore) {
            if (!nodeFailed[iv.node])
                fatal("ExperimentConfig: node-restore on node " +
                      std::to_string(iv.node) + " at t=" +
                      std::to_string(iv.at) +
                      " without a preceding node-fail");
            nodeFailed[iv.node] = false;
        }
    }
}

Report
runExperiment(const ExperimentConfig &cfg)
{
    Session session(cfg);
    session.advanceTo(session.duration());
    return session.finish();
}

} // namespace slinfer
