#include "harness/experiment.hh"

#include <cmath>

#include "common/log.hh"
#include "harness/session.hh"

namespace slinfer
{

std::vector<std::unique_ptr<Node>>
buildCluster(const ClusterSpec &cluster, int partitionsPerNode)
{
    std::vector<std::unique_ptr<Node>> nodes;
    NodeId id = 0;
    for (int i = 0; i < cluster.cpuNodes; ++i) {
        nodes.push_back(std::make_unique<Node>(id++, cluster.cpuSpec,
                                               partitionsPerNode));
    }
    for (int i = 0; i < cluster.gpuNodes; ++i) {
        nodes.push_back(std::make_unique<Node>(id++, cluster.gpuSpec,
                                               partitionsPerNode));
    }
    return nodes;
}

std::vector<ModelSpec>
replicateModel(const ModelSpec &spec, int count)
{
    std::vector<ModelSpec> models;
    models.reserve(count);
    for (int i = 0; i < count; ++i) {
        ModelSpec m = spec;
        m.name = spec.name; // replicas share the profile key
        models.push_back(std::move(m));
    }
    return models;
}

void
ExperimentConfig::validate() const
{
    if (models.empty())
        fatal("ExperimentConfig: no models configured");
    if (arrivals && !trace.arrivals.empty())
        fatal("ExperimentConfig: both `arrivals` and `trace` are set");

    // The duration stamped by the arrival process / trace generator is
    // authoritative; an explicitly configured duration must agree.
    Seconds stamped = arrivals ? arrivals->duration() : trace.duration;
    if (duration > 0 && stamped > 0 &&
        std::abs(duration - stamped) > 1e-9) {
        fatal("ExperimentConfig: `duration` disagrees with the trace "
              "duration; the trace/scenario is the source of truth");
    }
    if (duration <= 0 && stamped <= 0)
        fatal("ExperimentConfig: no duration configured");

    if (!datasetPerModel.empty() && datasetPerModel.size() != models.size())
        fatal("ExperimentConfig: datasetPerModel must have one entry "
              "per model");
    if (windows < 0)
        fatal("ExperimentConfig: negative `windows`");
    if (simThreads < 0)
        fatal("ExperimentConfig: negative `simThreads`");
    if (simThreads > 0 && !(simWindow > 0))
        fatal("ExperimentConfig: lockstep mode needs a positive "
              "`simWindow`");

    for (const Intervention &iv : timeline) {
        std::string name = interventionKindName(iv.kind);
        if (iv.at < 0)
            fatal("ExperimentConfig: timeline '" + name +
                  "' scheduled before t=0");
        switch (iv.kind) {
          case Intervention::Kind::NodeFail:
          case Intervention::Kind::NodeRestore:
            if (iv.node < 0)
                fatal("ExperimentConfig: timeline '" + name +
                      "' needs `node`");
            break;
          case Intervention::Kind::ModelRedeploy:
          case Intervention::Kind::ModelRetire:
          case Intervention::Kind::ArrivalBurst:
            if (iv.model < 0)
                fatal("ExperimentConfig: timeline '" + name +
                      "' needs `model`");
            break;
          case Intervention::Kind::ModelDeploy:
            if (iv.spec.name.empty())
                fatal("ExperimentConfig: timeline 'model-deploy' needs "
                      "`spec`");
            break;
          case Intervention::Kind::ArrivalScale:
            if (iv.factor < 0)
                fatal("ExperimentConfig: timeline 'arrival-scale' "
                      "needs a nonnegative `factor`");
            break;
        }
        if (iv.kind == Intervention::Kind::ArrivalBurst &&
            (iv.rpm <= 0 || iv.duration <= 0)) {
            fatal("ExperimentConfig: timeline 'arrival-burst' needs "
                  "positive `rpm` and `duration`");
        }
    }
}

Report
runExperiment(const ExperimentConfig &cfg)
{
    Session session(cfg);
    session.advanceTo(session.duration());
    return session.finish();
}

} // namespace slinfer
