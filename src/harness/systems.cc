#include "harness/systems.hh"

#include "baselines/sllm.hh"
#include "common/log.hh"

namespace slinfer
{

const char *
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Sllm: return "sllm";
      case SystemKind::SllmC: return "sllm+c";
      case SystemKind::SllmCS: return "sllm+c+s";
      case SystemKind::Slinfer: return "SLINFER";
      case SystemKind::SlinferNoCpu: return "SLINFER w/o CPU";
      case SystemKind::SlinferNoConsolidation:
        return "SLINFER w/o Consolidation";
      case SystemKind::SlinferNoSharing: return "SLINFER w/o Sharing";
      case SystemKind::SllmCsPD: return "sllm+c+s (PD-disagg)";
      case SystemKind::SlinferPD: return "SLINFER (PD-disagg)";
    }
    return "?";
}

const char *
systemSlug(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Sllm: return "sllm";
      case SystemKind::SllmC: return "sllm+c";
      case SystemKind::SllmCS: return "sllm+c+s";
      case SystemKind::Slinfer: return "slinfer";
      case SystemKind::SlinferNoCpu: return "slinfer-no-cpu";
      case SystemKind::SlinferNoConsolidation:
        return "slinfer-no-consolidation";
      case SystemKind::SlinferNoSharing: return "slinfer-no-sharing";
      case SystemKind::SllmCsPD: return "sllm+c+s-pd";
      case SystemKind::SlinferPD: return "slinfer-pd";
    }
    return "?";
}

const std::vector<SystemKind> &
allSystems()
{
    static const std::vector<SystemKind> kinds = {
        SystemKind::Sllm,
        SystemKind::SllmC,
        SystemKind::SllmCS,
        SystemKind::Slinfer,
        SystemKind::SlinferNoCpu,
        SystemKind::SlinferNoConsolidation,
        SystemKind::SlinferNoSharing,
        SystemKind::SllmCsPD,
        SystemKind::SlinferPD,
    };
    return kinds;
}

SystemKind
parseSystem(const std::string &name)
{
    SystemKind kind;
    if (tryParseSystem(name, kind))
        return kind;
    std::string known;
    for (SystemKind k : allSystems())
        known += std::string(known.empty() ? "" : ", ") + systemSlug(k);
    fatal("unknown system '" + name + "' (try one of: " + known + ")");
}

bool
tryParseSystem(const std::string &name, SystemKind &out)
{
    for (SystemKind kind : allSystems()) {
        if (name == systemSlug(kind) || name == systemName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

int
systemPartitions(SystemKind kind)
{
    switch (kind) {
      case SystemKind::SllmCS:
      case SystemKind::SllmCsPD:
        return 2;
      default:
        return 1;
    }
}

std::unique_ptr<ControllerBase>
makeSystem(SystemKind kind, Simulator &sim, ClusterHandle &cluster,
           std::vector<ModelSpec> modelSpecs,
           std::vector<double> initialAvgOutput, ControllerConfig cfg,
           Recorder &recorder)
{
    std::vector<std::unique_ptr<Node>> &nodes = cluster.nodes;
    ClusterStats *stats = cluster.stats;
    switch (kind) {
      case SystemKind::Sllm: {
        SllmOptions opts;
        cfg.useCpu = false;
        return std::make_unique<SllmController>(
            sim, nodes, std::move(modelSpecs), std::move(initialAvgOutput),
            cfg, recorder, stats, opts);
      }
      case SystemKind::SllmC: {
        SllmOptions opts;
        opts.useCpu = true;
        return std::make_unique<SllmController>(
            sim, nodes, std::move(modelSpecs), std::move(initialAvgOutput),
            cfg, recorder, stats, opts);
      }
      case SystemKind::SllmCS: {
        SllmOptions opts;
        opts.useCpu = true;
        opts.staticShare = true;
        return std::make_unique<SllmController>(
            sim, nodes, std::move(modelSpecs), std::move(initialAvgOutput),
            cfg, recorder, stats, opts);
      }
      case SystemKind::SllmCsPD: {
        SllmOptions opts;
        opts.useCpu = true;
        opts.staticShare = true;
        cfg.pdDisaggregation = true;
        return std::make_unique<SllmController>(
            sim, nodes, std::move(modelSpecs), std::move(initialAvgOutput),
            cfg, recorder, stats, opts);
      }
      case SystemKind::Slinfer:
        break;
      case SystemKind::SlinferNoCpu:
        cfg.useCpu = false;
        break;
      case SystemKind::SlinferNoConsolidation:
        cfg.enableConsolidation = false;
        break;
      case SystemKind::SlinferNoSharing:
        cfg.enableSharing = false;
        break;
      case SystemKind::SlinferPD:
        cfg.pdDisaggregation = true;
        break;
    }
    return std::make_unique<SlinferController>(
        sim, nodes, std::move(modelSpecs), std::move(initialAvgOutput),
        cfg, recorder, stats);
}

} // namespace slinfer
