/**
 * @file
 * System factory: every serving scheme the paper evaluates, by name.
 */

#ifndef SLINFER_HARNESS_SYSTEMS_HH
#define SLINFER_HARNESS_SYSTEMS_HH

#include <memory>
#include <string>
#include <vector>

#include "core/controller.hh"
#include "metrics/cluster_stats.hh"

namespace slinfer
{

/**
 * Owning bundle of one experiment's physical cluster: the node vector
 * plus the (optional, non-owning) stats collector sampling it. The
 * Session, the benches and the tests all construct a serving system
 * through this one handle instead of threading the node vector and a
 * separate stats out-parameter through every call.
 */
struct ClusterHandle
{
    std::vector<std::unique_ptr<Node>> nodes;
    ClusterStats *stats = nullptr;
};

enum class SystemKind
{
    Sllm,                   ///< ServerlessLLM: exclusive GPUs
    SllmC,                  ///< + CPU nodes
    SllmCS,                 ///< + static half-node sharing
    Slinfer,                ///< the paper's system
    SlinferNoCpu,           ///< ablation: GPU only
    SlinferNoConsolidation, ///< ablation: no preemption/bin-packing
    SlinferNoSharing,       ///< ablation: exclusive placement
    SllmCsPD,               ///< sllm+c+s with PD disaggregation
    SlinferPD,              ///< SLINFER with PD disaggregation
};

/** Display name (matches the paper's labels). */
const char *systemName(SystemKind kind);

/** CLI-friendly slug ("slinfer", "sllm+c", "slinfer-no-cpu", ...). */
const char *systemSlug(SystemKind kind);

/** Every system, in declaration order (for sweeps and --list). */
const std::vector<SystemKind> &allSystems();

/** Parse a slug or display name; fatal on unknown names. */
SystemKind parseSystem(const std::string &name);

/** Non-fatal variant: false on unknown names (data-file parsing). */
bool tryParseSystem(const std::string &name, SystemKind &out);

/** Partitions per node this system expects (2 for the +s variants). */
int systemPartitions(SystemKind kind);

/** Build the controller for `kind`, adjusting cfg flags accordingly. */
std::unique_ptr<ControllerBase>
makeSystem(SystemKind kind, Simulator &sim, ClusterHandle &cluster,
           std::vector<ModelSpec> modelSpecs,
           std::vector<double> initialAvgOutput, ControllerConfig cfg,
           Recorder &recorder);

} // namespace slinfer

#endif // SLINFER_HARNESS_SYSTEMS_HH
