#include "harness/intervention.hh"

namespace slinfer
{

const char *
interventionKindName(Intervention::Kind kind)
{
    switch (kind) {
      case Intervention::Kind::NodeFail: return "node-fail";
      case Intervention::Kind::NodeRestore: return "node-restore";
      case Intervention::Kind::ModelDeploy: return "model-deploy";
      case Intervention::Kind::ModelRedeploy: return "model-redeploy";
      case Intervention::Kind::ModelRetire: return "model-retire";
      case Intervention::Kind::ArrivalScale: return "arrival-scale";
      case Intervention::Kind::ArrivalBurst: return "arrival-burst";
      case Intervention::Kind::NodeDegrade: return "node-degrade";
      case Intervention::Kind::NodeRecover: return "node-recover";
      case Intervention::Kind::NetBrownout: return "net-brownout";
      case Intervention::Kind::NetRestore: return "net-restore";
    }
    return "?";
}

bool
tryParseInterventionKind(const std::string &name, Intervention::Kind &out)
{
    static const Intervention::Kind kinds[] = {
        Intervention::Kind::NodeFail,     Intervention::Kind::NodeRestore,
        Intervention::Kind::ModelDeploy,  Intervention::Kind::ModelRedeploy,
        Intervention::Kind::ModelRetire,  Intervention::Kind::ArrivalScale,
        Intervention::Kind::ArrivalBurst, Intervention::Kind::NodeDegrade,
        Intervention::Kind::NodeRecover,  Intervention::Kind::NetBrownout,
        Intervention::Kind::NetRestore,
    };
    for (Intervention::Kind kind : kinds) {
        if (name == interventionKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

} // namespace slinfer
