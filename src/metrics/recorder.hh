/**
 * @file
 * Per-request outcome accounting: SLO attainment, TTFT distribution,
 * drops, migrations. One Recorder instance observes a whole experiment.
 */

#ifndef SLINFER_METRICS_RECORDER_HH
#define SLINFER_METRICS_RECORDER_HH

#include "common/stats.hh"
#include "engine/request.hh"

namespace slinfer
{

class Recorder
{
  public:
    /** Pre-size sample buffers for an experiment of `n` requests. */
    void reserve(std::size_t n) { ttft_.reserve(n); }

    /**
     * Per-window accounting over `n` equal slices of [0, duration):
     * arrivals bucket by arrival time, completions/drops (and the
     * completions' TTFT samples and generated tokens) by event time;
     * events past the window clamp into the last slice. Off (and the
     * run byte-identical to an unwindowed one) unless enabled before
     * the first event.
     */
    void enableWindows(Seconds duration, int n);

    void onArrival(const Request &req);
    void onDrop(const Request &req, Seconds now);
    void onComplete(const Request &req, Seconds now);

    std::size_t total() const { return total_; }
    std::size_t completed() const { return completed_; }
    std::size_t dropped() const { return dropped_; }
    /** Requests that completed with every token inside its deadline. */
    std::size_t sloMet() const { return sloMet_; }
    double sloRate() const;

    /** TTFT samples of requests that produced a first token. */
    const CdfBuilder &ttftCdf() const { return ttft_; }
    double p95Ttft() const { return ttft_.percentile(95.0); }

    /** Total generated tokens across completed requests. */
    Tokens generatedTokens() const { return generatedTokens_; }

    /** Requests that were evicted/migrated at least once. */
    std::size_t migratedRequests() const { return migrated_; }
    double migrationRate() const;

    /** Per-window accumulators (empty unless enableWindows ran). */
    struct WindowStats
    {
        std::size_t arrived = 0;
        std::size_t completed = 0;
        std::size_t dropped = 0;
        Tokens generatedTokens = 0;
        CdfBuilder ttft;
    };
    const std::vector<WindowStats> &windows() const { return windows_; }
    Seconds windowSpan() const { return windowSpan_; }

  private:
    std::size_t windowAt(Seconds t) const;

    std::vector<WindowStats> windows_;
    Seconds windowSpan_ = 0.0;
    std::size_t total_ = 0;
    std::size_t completed_ = 0;
    std::size_t dropped_ = 0;
    std::size_t sloMet_ = 0;
    std::size_t migrated_ = 0;
    Tokens generatedTokens_ = 0;
    CdfBuilder ttft_;
};

} // namespace slinfer

#endif // SLINFER_METRICS_RECORDER_HH
