/**
 * @file
 * Per-request outcome accounting: SLO attainment, TTFT distribution,
 * drops, migrations. One Recorder instance observes a whole experiment.
 */

#ifndef SLINFER_METRICS_RECORDER_HH
#define SLINFER_METRICS_RECORDER_HH

#include "common/stats.hh"
#include "engine/request.hh"

namespace slinfer
{

class Recorder
{
  public:
    /** Pre-size sample buffers for an experiment of `n` requests. */
    void reserve(std::size_t n) { ttft_.reserve(n); }

    void onArrival(const Request &req);
    void onDrop(const Request &req, Seconds now);
    void onComplete(const Request &req, Seconds now);

    std::size_t total() const { return total_; }
    std::size_t completed() const { return completed_; }
    std::size_t dropped() const { return dropped_; }
    /** Requests that completed with every token inside its deadline. */
    std::size_t sloMet() const { return sloMet_; }
    double sloRate() const;

    /** TTFT samples of requests that produced a first token. */
    const CdfBuilder &ttftCdf() const { return ttft_; }
    double p95Ttft() const { return ttft_.percentile(95.0); }

    /** Total generated tokens across completed requests. */
    Tokens generatedTokens() const { return generatedTokens_; }

    /** Requests that were evicted/migrated at least once. */
    std::size_t migratedRequests() const { return migrated_; }
    double migrationRate() const;

  private:
    std::size_t total_ = 0;
    std::size_t completed_ = 0;
    std::size_t dropped_ = 0;
    std::size_t sloMet_ = 0;
    std::size_t migrated_ = 0;
    Tokens generatedTokens_ = 0;
    CdfBuilder ttft_;
};

} // namespace slinfer

#endif // SLINFER_METRICS_RECORDER_HH
