#include "metrics/cluster_stats.hh"

namespace slinfer
{

namespace
{

int
kindIndex(HwKind kind)
{
    return kind == HwKind::Cpu ? 0 : 1;
}

} // namespace

ClusterStats::ClusterStats(Simulator &sim,
                           const std::vector<std::unique_ptr<Node>> &nodes,
                           Seconds sampleInterval)
    : sim_(sim), nodes_(nodes), interval_(sampleInterval)
{
}

void
ClusterStats::start(Seconds until)
{
    until_ = until;
    // Reserve-ahead: the number of samples is known exactly, and the
    // GPU memory-utilization CDF collects at most one point per GPU
    // node per sample. Growing these mid-run is avoidable churn.
    std::size_t nsamples =
        interval_ > 0
            ? static_cast<std::size_t>(until / interval_) + 2
            : 0;
    std::size_t gpu_nodes = 0;
    for (const auto &node : nodes_)
        if (node->spec().kind == HwKind::Gpu)
            ++gpu_nodes;
    gpuTimeline_.reserve(nsamples);
    gpuMemUtil_.reserve(nsamples * gpu_nodes);
    sim_.schedule(0.0, [this] { sample(); });
}

void
ClusterStats::sample()
{
    double used[2] = {0.0, 0.0};
    double gpus_used = 0.0;
    for (const auto &node : nodes_) {
        if (!node->inUse())
            continue;
        used[kindIndex(node->spec().kind)] += 1.0;
        if (node->spec().kind == HwKind::Gpu) {
            gpus_used += 1.0;
            Bytes live = 0;
            for (const auto &part : node->partitions())
                live += part->liveBytes();
            gpuMemUtil_.add(static_cast<double>(live) /
                            static_cast<double>(node->memCapacity()));
        }
    }
    usedSum_[0] += used[0];
    usedSum_[1] += used[1];
    gpuTimeline_.emplace_back(sim_.now(), gpus_used);
    ++samples_;

    if (sim_.now() + interval_ <= until_)
        sim_.schedule(interval_, [this] { sample(); });
}

void
ClusterStats::onDecodeIteration(HwKind kind, int batchSize, Tokens tokens)
{
    tokens_[kindIndex(kind)] += tokens;
    batch_.add(static_cast<double>(batchSize));
}

double
ClusterStats::avgNodesUsed(HwKind kind) const
{
    if (samples_ == 0)
        return 0.0;
    return usedSum_[kindIndex(kind)] / static_cast<double>(samples_);
}

double
ClusterStats::nodeSecondsUsed(HwKind kind) const
{
    return usedSum_[kindIndex(kind)] * interval_;
}

Tokens
ClusterStats::decodeTokens(HwKind kind) const
{
    return tokens_[kindIndex(kind)];
}

double
ClusterStats::decodeSpeed(HwKind kind) const
{
    double node_seconds = nodeSecondsUsed(kind);
    if (node_seconds <= 0)
        return 0.0;
    return static_cast<double>(decodeTokens(kind)) / node_seconds;
}

} // namespace slinfer
