/**
 * @file
 * Cluster-level time-series metrics: average nodes used (per hardware
 * kind), memory utilization CDF of in-use GPU nodes, decode batch-size
 * CDF, decode throughput per node, and a GPU-usage timeline (for the
 * ablation figure). Sampling is periodic on the simulator clock.
 */

#ifndef SLINFER_METRICS_CLUSTER_STATS_HH
#define SLINFER_METRICS_CLUSTER_STATS_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "engine/node.hh"
#include "sim/simulator.hh"

namespace slinfer
{

class ClusterStats
{
  public:
    ClusterStats(Simulator &sim,
                 const std::vector<std::unique_ptr<Node>> &nodes,
                 Seconds sampleInterval = 0.5);

    /** Begin periodic sampling, ending at `until`. */
    void start(Seconds until);

    /** Called by the token scheduler at every decode iteration. */
    void onDecodeIteration(HwKind kind, int batchSize, Tokens tokens);

    /** Average number of in-use nodes of the given kind. */
    double avgNodesUsed(HwKind kind) const;

    /** Total node-seconds during which nodes of `kind` were in use. */
    double nodeSecondsUsed(HwKind kind) const;

    /** Decode tokens emitted on nodes of `kind`. */
    Tokens decodeTokens(HwKind kind) const;

    /** Decode tokens per in-use-node-second (the paper's Decode Speed). */
    double decodeSpeed(HwKind kind) const;

    /** Memory utilization samples of in-use GPU nodes (Figs. 5, 25). */
    const CdfBuilder &gpuMemUtilCdf() const { return gpuMemUtil_; }

    /** Batch sizes observed at decode iterations (Fig. 25). */
    const CdfBuilder &batchCdf() const { return batch_; }

    /** (time, GPUs in use) timeline for the ablation figure. */
    const std::vector<std::pair<Seconds, double>> &gpuTimeline() const
    {
        return gpuTimeline_;
    }

  private:
    void sample();

    Simulator &sim_;
    const std::vector<std::unique_ptr<Node>> &nodes_;
    Seconds interval_;
    Seconds until_ = 0.0;

    std::size_t samples_ = 0;
    double usedSum_[2] = {0.0, 0.0};   // indexed by HwKind
    Tokens tokens_[2] = {0, 0};
    CdfBuilder gpuMemUtil_;
    CdfBuilder batch_;
    std::vector<std::pair<Seconds, double>> gpuTimeline_;
};

} // namespace slinfer

#endif // SLINFER_METRICS_CLUSTER_STATS_HH
