#include "metrics/report.hh"

#include <cstdio>
#include <sstream>

#include "metrics/cluster_stats.hh"
#include "metrics/recorder.hh"

namespace slinfer
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

Report
Report::build(const std::string &system, const Recorder &rec,
              const ClusterStats &stats,
              const std::vector<double> &ttftCdfPoints)
{
    Report r;
    r.system = system;
    r.totalRequests = rec.total();
    r.completed = rec.completed();
    r.dropped = rec.dropped();
    r.sloMet = rec.sloMet();
    r.sloRate = rec.sloRate();

    r.avgCpuNodesUsed = stats.avgNodesUsed(HwKind::Cpu);
    r.avgGpuNodesUsed = stats.avgNodesUsed(HwKind::Gpu);
    r.decodeSpeedCpu = stats.decodeSpeed(HwKind::Cpu);
    r.decodeSpeedGpu = stats.decodeSpeed(HwKind::Gpu);

    r.p50Ttft = rec.ttftCdf().percentile(50.0);
    r.p95Ttft = rec.ttftCdf().percentile(95.0);

    // Normalize by total arrivals: dropped requests keep the CDF from
    // reaching 1.0, matching the presentation of Fig. 22.
    double frac_completed =
        rec.total() ? static_cast<double>(rec.ttftCdf().count()) /
                          static_cast<double>(rec.total())
                    : 0.0;
    for (double x : ttftCdfPoints) {
        r.ttftCdf.emplace_back(x,
                               rec.ttftCdf().fractionBelow(x) *
                                   frac_completed);
    }

    r.gpuMemUtilMean = stats.gpuMemUtilCdf().mean();
    r.batchMean = stats.batchCdf().mean();
    r.migrationRate = rec.migrationRate();
    r.gpuTimeline = stats.gpuTimeline();
    return r;
}

std::string
toJson(const Report &r)
{
    std::ostringstream os;
    os.precision(10);
    os << "{\n";
    os << "  \"system\": \"" << jsonEscape(r.system) << "\",\n";
    os << "  \"scenario\": \"" << jsonEscape(r.scenario) << "\",\n";
    os << "  \"seed\": " << r.seed << ",\n";
    os << "  \"total_requests\": " << r.totalRequests << ",\n";
    os << "  \"completed\": " << r.completed << ",\n";
    os << "  \"dropped\": " << r.dropped << ",\n";
    os << "  \"slo_met\": " << r.sloMet << ",\n";
    os << "  \"slo_rate\": " << r.sloRate << ",\n";
    os << "  \"avg_cpu_nodes_used\": " << r.avgCpuNodesUsed << ",\n";
    os << "  \"avg_gpu_nodes_used\": " << r.avgGpuNodesUsed << ",\n";
    os << "  \"decode_speed_cpu\": " << r.decodeSpeedCpu << ",\n";
    os << "  \"decode_speed_gpu\": " << r.decodeSpeedGpu << ",\n";
    os << "  \"p50_ttft\": " << r.p50Ttft << ",\n";
    os << "  \"p95_ttft\": " << r.p95Ttft << ",\n";
    os << "  \"gpu_mem_util_mean\": " << r.gpuMemUtilMean << ",\n";
    os << "  \"batch_mean\": " << r.batchMean << ",\n";
    os << "  \"migration_rate\": " << r.migrationRate << ",\n";
    os << "  \"kv_utilization\": " << r.kvUtilization << ",\n";
    os << "  \"scaling_overhead\": " << r.scalingOverhead << ",\n";
    os << "  \"ttft_cdf\": [";
    for (std::size_t i = 0; i < r.ttftCdf.size(); ++i) {
        os << (i ? ", " : "") << "[" << r.ttftCdf[i].first << ", "
           << r.ttftCdf[i].second << "]";
    }
    os << "],\n";
    os << "  \"gpu_timeline\": [";
    for (std::size_t i = 0; i < r.gpuTimeline.size(); ++i) {
        os << (i ? ", " : "") << "[" << r.gpuTimeline[i].first << ", "
           << r.gpuTimeline[i].second << "]";
    }
    os << "]\n";
    os << "}";
    return os.str();
}

std::string
reportCsvHeader()
{
    return "system,scenario,seed,total_requests,completed,dropped,"
           "slo_met,slo_rate,avg_cpu_nodes_used,avg_gpu_nodes_used,"
           "decode_speed_cpu,decode_speed_gpu,p50_ttft,p95_ttft,"
           "gpu_mem_util_mean,batch_mean,migration_rate,"
           "kv_utilization,scaling_overhead";
}

std::string
toCsvRow(const Report &r)
{
    std::ostringstream os;
    os.precision(10);
    os << r.system << ',' << r.scenario << ',' << r.seed << ','
       << r.totalRequests << ',' << r.completed << ',' << r.dropped << ','
       << r.sloMet << ',' << r.sloRate << ',' << r.avgCpuNodesUsed << ','
       << r.avgGpuNodesUsed << ',' << r.decodeSpeedCpu << ','
       << r.decodeSpeedGpu << ',' << r.p50Ttft << ',' << r.p95Ttft << ','
       << r.gpuMemUtilMean << ',' << r.batchMean << ','
       << r.migrationRate << ',' << r.kvUtilization << ','
       << r.scalingOverhead;
    return os.str();
}

} // namespace slinfer
