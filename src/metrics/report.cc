#include "metrics/report.hh"

#include <cstdio>
#include <sstream>

#include "common/table.hh"
#include "metrics/cluster_stats.hh"
#include "metrics/recorder.hh"

namespace slinfer
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

Report
Report::build(const std::string &system, const Recorder &rec,
              const ClusterStats &stats,
              const std::vector<double> &ttftCdfPoints)
{
    Report r;
    r.system = system;
    r.totalRequests = rec.total();
    r.completed = rec.completed();
    r.dropped = rec.dropped();
    r.sloMet = rec.sloMet();
    r.sloRate = rec.sloRate();

    r.avgCpuNodesUsed = stats.avgNodesUsed(HwKind::Cpu);
    r.avgGpuNodesUsed = stats.avgNodesUsed(HwKind::Gpu);
    r.decodeSpeedCpu = stats.decodeSpeed(HwKind::Cpu);
    r.decodeSpeedGpu = stats.decodeSpeed(HwKind::Gpu);

    r.p50Ttft = rec.ttftCdf().percentile(50.0);
    r.p95Ttft = rec.ttftCdf().percentile(95.0);

    // Normalize by total arrivals: dropped requests keep the CDF from
    // reaching 1.0, matching the presentation of Fig. 22.
    double frac_completed =
        rec.total() ? static_cast<double>(rec.ttftCdf().count()) /
                          static_cast<double>(rec.total())
                    : 0.0;
    for (double x : ttftCdfPoints) {
        r.ttftCdf.emplace_back(x,
                               rec.ttftCdf().fractionBelow(x) *
                                   frac_completed);
    }

    r.gpuMemUtilMean = stats.gpuMemUtilCdf().mean();
    r.batchMean = stats.batchCdf().mean();
    r.migrationRate = rec.migrationRate();
    r.gpuTimeline = stats.gpuTimeline();

    Seconds span = rec.windowSpan();
    for (std::size_t i = 0; i < rec.windows().size(); ++i) {
        const Recorder::WindowStats &w = rec.windows()[i];
        Report::Window row;
        row.start = span * static_cast<double>(i);
        row.end = span * static_cast<double>(i + 1);
        row.arrived = w.arrived;
        row.completed = w.completed;
        row.dropped = w.dropped;
        row.p50Ttft = w.ttft.percentile(50.0);
        row.p95Ttft = w.ttft.percentile(95.0);
        row.completedPerSec = static_cast<double>(w.completed) / span;
        row.tokensPerSec =
            static_cast<double>(w.generatedTokens) / span;
        r.windows.push_back(row);
    }
    return r;
}

std::vector<std::pair<std::string, double>>
reportScalarMetrics(const Report &r)
{
    return {
        {"total_requests", static_cast<double>(r.totalRequests)},
        {"completed", static_cast<double>(r.completed)},
        {"dropped", static_cast<double>(r.dropped)},
        {"slo_met", static_cast<double>(r.sloMet)},
        {"slo_rate", r.sloRate},
        {"avg_cpu_nodes_used", r.avgCpuNodesUsed},
        {"avg_gpu_nodes_used", r.avgGpuNodesUsed},
        {"decode_speed_cpu", r.decodeSpeedCpu},
        {"decode_speed_gpu", r.decodeSpeedGpu},
        {"p50_ttft", r.p50Ttft},
        {"p95_ttft", r.p95Ttft},
        {"gpu_mem_util_mean", r.gpuMemUtilMean},
        {"batch_mean", r.batchMean},
        {"migration_rate", r.migrationRate},
        {"kv_utilization", r.kvUtilization},
        {"scaling_overhead", r.scalingOverhead},
    };
}

std::vector<std::pair<std::string, double>>
reportAttributionMetrics(const Report &r)
{
    std::vector<std::pair<std::string, double>> out;
    if (!r.attribution.enabled)
        return out;
    out.emplace_back("attr_violations",
                     static_cast<double>(r.attribution.violations));
    for (const Report::Attribution::Segment &s : r.attribution.segments) {
        out.emplace_back("seg_" + s.name + "_total_s", s.totalS);
        out.emplace_back("seg_" + s.name + "_p95_s", s.p95s);
        out.emplace_back("seg_" + s.name + "_blamed",
                         static_cast<double>(s.blamed));
    }
    return out;
}

std::vector<std::pair<std::string, double>>
reportResilienceMetrics(const Report &r)
{
    std::vector<std::pair<std::string, double>> out;
    if (!r.resilience.enabled)
        return out;
    const Report::Resilience &s = r.resilience;
    out.emplace_back("res_fault_events",
                     static_cast<double>(s.faultEvents));
    out.emplace_back("res_restores", static_cast<double>(s.restores));
    out.emplace_back("res_availability", s.availability);
    out.emplace_back("res_mttr_mean_s", s.mttrMeanS);
    out.emplace_back("res_degraded_time_s", s.degradedTimeS);
    out.emplace_back("res_lost_per_fault", s.lostPerFault);
    out.emplace_back("res_goodput_fault_rpm", s.goodputFaultRpm);
    out.emplace_back("res_goodput_healthy_rpm", s.goodputHealthyRpm);
    out.emplace_back("res_recovery_mean_s", s.recoveryMeanS);
    return out;
}

namespace
{

/** Shared JSON emission; pretty mode uses "\n"/"  ", line mode "". */
std::string
emitJson(const Report &r, const char *nl, const char *indent,
         int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << "{" << nl;
    os << indent << "\"system\": \"" << jsonEscape(r.system) << "\","
       << nl;
    os << indent << "\"scenario\": \"" << jsonEscape(r.scenario) << "\","
       << nl;
    os << indent << "\"seed\": " << r.seed << "," << nl;
    // The integer counters are exact in a double and default ostream
    // formatting prints them without a decimal point, so one loop
    // serializes the whole metric table.
    for (const auto &[key, value] : reportScalarMetrics(r))
        os << indent << "\"" << key << "\": " << value << "," << nl;
    os << indent << "\"ttft_cdf\": [";
    for (std::size_t i = 0; i < r.ttftCdf.size(); ++i) {
        os << (i ? ", " : "") << "[" << r.ttftCdf[i].first << ", "
           << r.ttftCdf[i].second << "]";
    }
    os << "]," << nl;
    os << indent << "\"gpu_timeline\": [";
    for (std::size_t i = 0; i < r.gpuTimeline.size(); ++i) {
        os << (i ? ", " : "") << "[" << r.gpuTimeline[i].first << ", "
           << r.gpuTimeline[i].second << "]";
    }
    os << "]";
    // Windowed rows only when the run was windowed, so unwindowed
    // reports stay byte-identical to the pre-window format.
    if (!r.windows.empty()) {
        os << "," << nl << indent << "\"windows\": [";
        for (std::size_t i = 0; i < r.windows.size(); ++i) {
            const Report::Window &w = r.windows[i];
            os << (i ? ", " : "") << "{\"start\": " << w.start
               << ", \"end\": " << w.end << ", \"arrived\": " << w.arrived
               << ", \"completed\": " << w.completed
               << ", \"dropped\": " << w.dropped
               << ", \"p50_ttft\": " << w.p50Ttft
               << ", \"p95_ttft\": " << w.p95Ttft
               << ", \"completed_per_sec\": " << w.completedPerSec
               << ", \"tokens_per_sec\": " << w.tokensPerSec << "}";
        }
        os << "]";
    }
    // The counters block exists only when the run enabled the
    // flight-recorder counter registry; instrumented-off reports stay
    // byte-identical to the pre-obs format.
    if (!r.counters.empty()) {
        os << "," << nl << indent << "\"counters\": {";
        for (std::size_t i = 0; i < r.counters.size(); ++i) {
            os << (i ? ", " : "") << "\""
               << jsonEscape(r.counters[i].first)
               << "\": " << r.counters[i].second;
        }
        os << "}";
    }
    // Attribution only when the run enabled the anatomy ledger, so
    // uninstrumented reports stay byte-identical.
    if (r.attribution.enabled) {
        const Report::Attribution &a = r.attribution;
        os << "," << nl << indent << "\"attribution\": {";
        os << "\"requests\": " << a.requests
           << ", \"violations\": " << a.violations;
        os << ", \"segments\": [";
        for (std::size_t i = 0; i < a.segments.size(); ++i) {
            const Report::Attribution::Segment &s = a.segments[i];
            os << (i ? ", " : "") << "{\"name\": \""
               << jsonEscape(s.name) << "\", \"count\": " << s.count
               << ", \"total_s\": " << s.totalS
               << ", \"p50_s\": " << s.p50s << ", \"p95_s\": " << s.p95s
               << ", \"p99_s\": " << s.p99s
               << ", \"blamed\": " << s.blamed << "}";
        }
        os << "], \"per_model\": [";
        for (std::size_t i = 0; i < a.perModel.size(); ++i) {
            os << (i ? ", " : "") << "{\"model\": \""
               << jsonEscape(a.perModel[i].model) << "\", \"blamed\": [";
            const std::vector<std::uint64_t> &b = a.perModel[i].blamed;
            for (std::size_t j = 0; j < b.size(); ++j)
                os << (j ? ", " : "") << b[j];
            os << "]}";
        }
        os << "], \"window_len\": " << a.windowLen
           << ", \"per_window\": [";
        for (std::size_t i = 0; i < a.perWindow.size(); ++i) {
            os << (i ? ", " : "") << "[";
            for (std::size_t j = 0; j < a.perWindow[i].size(); ++j)
                os << (j ? ", " : "") << a.perWindow[i][j];
            os << "]";
        }
        os << "]}";
    }
    // Resilience only when the run attached the chaos probe, so
    // chaos-free reports stay byte-identical.
    if (r.resilience.enabled) {
        const Report::Resilience &s = r.resilience;
        os << "," << nl << indent << "\"resilience\": {";
        os << "\"fault_events\": " << s.faultEvents
           << ", \"restores\": " << s.restores
           << ", \"availability\": " << s.availability
           << ", \"mttr_mean_s\": " << s.mttrMeanS
           << ", \"degraded_time_s\": " << s.degradedTimeS
           << ", \"lost_per_fault\": " << s.lostPerFault
           << ", \"goodput_fault_rpm\": " << s.goodputFaultRpm
           << ", \"goodput_healthy_rpm\": " << s.goodputHealthyRpm
           << ", \"recovery_mean_s\": " << s.recoveryMeanS << "}";
    }
    os << nl << "}";
    return os.str();
}

} // namespace

std::string
toJson(const Report &r)
{
    return emitJson(r, "\n", "  ", 10);
}

std::string
toJsonLine(const Report &r)
{
    // max_digits10: a stored report must round-trip bit-exactly so a
    // resumed sweep aggregates to byte-identical output.
    return emitJson(r, "", "", 17);
}

std::string
reportCsvHeader()
{
    return "system,scenario,seed,total_requests,completed,dropped,"
           "slo_met,slo_rate,avg_cpu_nodes_used,avg_gpu_nodes_used,"
           "decode_speed_cpu,decode_speed_gpu,p50_ttft,p95_ttft,"
           "gpu_mem_util_mean,batch_mean,migration_rate,"
           "kv_utilization,scaling_overhead";
}

std::string
reportWindowsCsvHeader()
{
    return "system,scenario,seed,window,start,end,arrived,completed,"
           "dropped,p50_ttft,p95_ttft,completed_per_sec,tokens_per_sec";
}

std::string
reportCountersCsvHeader()
{
    return "system,scenario,seed,counter,value";
}

std::string
renderAttribution(const Report &r)
{
    const Report::Attribution &a = r.attribution;
    if (!a.enabled)
        return "";
    std::ostringstream os;
    os << "latency anatomy";
    if (!r.scenario.empty())
        os << ": " << r.scenario << "/" << r.system << " seed " << r.seed;
    os << "\n  requests closed: " << a.requests
       << "   slo violations: " << a.violations << "\n\n";

    Table segs({"segment", "count", "total_s", "p50_s", "p95_s", "p99_s",
                "blamed"});
    for (const Report::Attribution::Segment &s : a.segments) {
        segs.addRow({s.name, Table::num((long long)s.count),
                     Table::num(s.totalS, 3), Table::num(s.p50s, 4),
                     Table::num(s.p95s, 4), Table::num(s.p99s, 4),
                     Table::num((long long)s.blamed)});
    }
    segs.print(os);

    auto segLabel = [&](std::size_t s) {
        return s < a.segments.size() ? a.segments[s].name
                                     : "seg_" + std::to_string(s);
    };
    auto blameLine = [&](const std::vector<std::uint64_t> &blamed) {
        std::string out;
        std::size_t best = 0;
        for (std::size_t s = 0; s < blamed.size(); ++s) {
            if (blamed[s] > blamed[best])
                best = s;
            if (blamed[s] == 0)
                continue;
            if (!out.empty())
                out += " ";
            out += segLabel(s) + "=" + std::to_string(blamed[s]);
        }
        if (!out.empty())
            out += "  (dominant: " + segLabel(best) + ")";
        return out;
    };

    if (!a.perModel.empty()) {
        os << "\nviolation blame by model:\n";
        for (const Report::Attribution::ModelBlame &m : a.perModel)
            os << "  " << m.model << ": " << blameLine(m.blamed) << "\n";
    }
    if (!a.perWindow.empty()) {
        os << "\nviolation blame by window (" << a.windowLen << " s):\n";
        for (std::size_t w = 0; w < a.perWindow.size(); ++w) {
            std::string line = blameLine(a.perWindow[w]);
            os << "  [" << static_cast<double>(w) * a.windowLen << ", "
               << static_cast<double>(w + 1) * a.windowLen
               << "): " << (line.empty() ? "-" : line) << "\n";
        }
    }
    return os.str();
}

std::string
reportAttributionCsvHeader()
{
    return "system,scenario,seed,segment,count,total_s,p50_s,p95_s,"
           "p99_s,blamed";
}

std::string
toAttributionCsvRows(const Report &r)
{
    std::ostringstream os;
    os.precision(10);
    for (const Report::Attribution::Segment &s : r.attribution.segments) {
        os << csvField(r.system) << ',' << csvField(r.scenario) << ','
           << r.seed << ',' << csvField(s.name) << ',' << s.count << ','
           << s.totalS << ',' << s.p50s << ',' << s.p95s << ','
           << s.p99s << ',' << s.blamed << '\n';
    }
    return os.str();
}

std::string
renderResilience(const Report &r)
{
    const Report::Resilience &s = r.resilience;
    if (!s.enabled)
        return "";
    std::ostringstream os;
    os << "resilience";
    if (!r.scenario.empty())
        os << ": " << r.scenario << "/" << r.system << " seed " << r.seed;
    os << "\n  fault events: " << s.faultEvents
       << "   restores: " << s.restores << "\n";
    Table t({"metric", "value"});
    t.addRow({"availability", Table::num(s.availability, 4)});
    t.addRow({"mttr_mean_s", Table::num(s.mttrMeanS, 2)});
    t.addRow({"degraded_time_s", Table::num(s.degradedTimeS, 2)});
    t.addRow({"lost_per_fault", Table::num(s.lostPerFault, 2)});
    t.addRow({"goodput_fault_rpm", Table::num(s.goodputFaultRpm, 2)});
    t.addRow({"goodput_healthy_rpm",
              Table::num(s.goodputHealthyRpm, 2)});
    t.addRow({"recovery_mean_s", Table::num(s.recoveryMeanS, 2)});
    t.print(os);
    return os.str();
}

std::string
reportResilienceCsvHeader()
{
    return "system,scenario,seed,fault_events,restores,availability,"
           "mttr_mean_s,degraded_time_s,lost_per_fault,"
           "goodput_fault_rpm,goodput_healthy_rpm,recovery_mean_s";
}

std::string
toResilienceCsvRows(const Report &r)
{
    if (!r.resilience.enabled)
        return "";
    const Report::Resilience &s = r.resilience;
    std::ostringstream os;
    os.precision(10);
    os << csvField(r.system) << ',' << csvField(r.scenario) << ','
       << r.seed << ',' << s.faultEvents << ',' << s.restores << ','
       << s.availability << ',' << s.mttrMeanS << ','
       << s.degradedTimeS << ',' << s.lostPerFault << ','
       << s.goodputFaultRpm << ',' << s.goodputHealthyRpm << ','
       << s.recoveryMeanS << '\n';
    return os.str();
}

std::string
toCountersCsvRows(const Report &r)
{
    std::ostringstream os;
    for (const auto &[name, value] : r.counters) {
        os << csvField(r.system) << ',' << csvField(r.scenario) << ','
           << r.seed << ',' << csvField(name) << ',' << value << '\n';
    }
    return os.str();
}

std::string
toWindowsCsvRows(const Report &r)
{
    std::ostringstream os;
    os.precision(10);
    for (std::size_t i = 0; i < r.windows.size(); ++i) {
        const Report::Window &w = r.windows[i];
        os << csvField(r.system) << ',' << csvField(r.scenario) << ','
           << r.seed << ',' << i << ',' << w.start << ',' << w.end << ','
           << w.arrived << ',' << w.completed << ',' << w.dropped << ','
           << w.p50Ttft << ',' << w.p95Ttft << ',' << w.completedPerSec
           << ',' << w.tokensPerSec << '\n';
    }
    return os.str();
}

std::string
csvField(const std::string &field)
{
    if (field.find_first_of(",\"\n\r") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
toCsvRow(const Report &r)
{
    std::ostringstream os;
    os.precision(10);
    os << csvField(r.system) << ',' << csvField(r.scenario) << ','
       << r.seed << ','
       << r.totalRequests << ',' << r.completed << ',' << r.dropped << ','
       << r.sloMet << ',' << r.sloRate << ',' << r.avgCpuNodesUsed << ','
       << r.avgGpuNodesUsed << ',' << r.decodeSpeedCpu << ','
       << r.decodeSpeedGpu << ',' << r.p50Ttft << ',' << r.p95Ttft << ','
       << r.gpuMemUtilMean << ',' << r.batchMean << ','
       << r.migrationRate << ',' << r.kvUtilization << ','
       << r.scalingOverhead;
    return os.str();
}

} // namespace slinfer
