#include "metrics/report.hh"

#include "metrics/cluster_stats.hh"
#include "metrics/recorder.hh"

namespace slinfer
{

Report
Report::build(const std::string &system, const Recorder &rec,
              const ClusterStats &stats,
              const std::vector<double> &ttftCdfPoints)
{
    Report r;
    r.system = system;
    r.totalRequests = rec.total();
    r.completed = rec.completed();
    r.dropped = rec.dropped();
    r.sloMet = rec.sloMet();
    r.sloRate = rec.sloRate();

    r.avgCpuNodesUsed = stats.avgNodesUsed(HwKind::Cpu);
    r.avgGpuNodesUsed = stats.avgNodesUsed(HwKind::Gpu);
    r.decodeSpeedCpu = stats.decodeSpeed(HwKind::Cpu);
    r.decodeSpeedGpu = stats.decodeSpeed(HwKind::Gpu);

    r.p50Ttft = rec.ttftCdf().percentile(50.0);
    r.p95Ttft = rec.ttftCdf().percentile(95.0);

    // Normalize by total arrivals: dropped requests keep the CDF from
    // reaching 1.0, matching the presentation of Fig. 22.
    double frac_completed =
        rec.total() ? static_cast<double>(rec.ttftCdf().count()) /
                          static_cast<double>(rec.total())
                    : 0.0;
    for (double x : ttftCdfPoints) {
        r.ttftCdf.emplace_back(x,
                               rec.ttftCdf().fractionBelow(x) *
                                   frac_completed);
    }

    r.gpuMemUtilMean = stats.gpuMemUtilCdf().mean();
    r.batchMean = stats.batchCdf().mean();
    r.migrationRate = rec.migrationRate();
    r.gpuTimeline = stats.gpuTimeline();
    return r;
}

} // namespace slinfer
