/**
 * @file
 * The consolidated result of one experiment run: everything the paper's
 * figures plot, gathered from the Recorder and ClusterStats.
 */

#ifndef SLINFER_METRICS_REPORT_HH
#define SLINFER_METRICS_REPORT_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace slinfer
{

class Recorder;
class ClusterStats;

struct Report
{
    std::string system;
    /** Scenario name and seed, stamped by scenario::runScenario /
     *  slinfer_run (empty / 0 for hand-built experiments). */
    std::string scenario;
    std::uint64_t seed = 0;

    std::size_t totalRequests = 0;
    std::size_t completed = 0;
    std::size_t dropped = 0;
    std::size_t sloMet = 0;
    double sloRate = 0.0;

    double avgCpuNodesUsed = 0.0;
    double avgGpuNodesUsed = 0.0;
    double decodeSpeedCpu = 0.0;
    double decodeSpeedGpu = 0.0;

    double p50Ttft = 0.0;
    double p95Ttft = 0.0;
    /** TTFT CDF evaluated at fixed points, normalized by *total*
     *  requests (dropped requests never reach 1.0, as in Fig. 22). */
    std::vector<std::pair<double, double>> ttftCdf;

    double gpuMemUtilMean = 0.0;
    double batchMean = 0.0;
    double migrationRate = 0.0;

    /** Mean KV allocation utilization across instances (Fig. 31). */
    double kvUtilization = 0.0;
    /** Fraction of instance lifetime blocked on KV resizes (Fig. 31). */
    double scalingOverhead = 0.0;

    /** (time, GPUs in use) timeline (Fig. 23). */
    std::vector<std::pair<Seconds, double>> gpuTimeline;

    /** One slice of the metrics window (ExperimentConfig::windows). */
    struct Window
    {
        Seconds start = 0.0;
        Seconds end = 0.0;
        std::size_t arrived = 0;
        std::size_t completed = 0;
        std::size_t dropped = 0;
        double p50Ttft = 0.0;
        double p95Ttft = 0.0;
        /** Completions per second inside the window. */
        double completedPerSec = 0.0;
        /** Generated tokens per second inside the window. */
        double tokensPerSec = 0.0;
    };
    /** Per-window TTFT/throughput rows; empty unless the run was
     *  windowed (plain reports stay byte-identical). */
    std::vector<Window> windows;

    /** Flight-recorder counter snapshot as (name, value) pairs in
     *  registry order (obs/counters.hh); empty unless the run enabled
     *  counters, so plain reports stay byte-identical. */
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    /**
     * Latency anatomy & SLO attribution (obs/anatomy.hh). Emitted
     * only when the run enabled the anatomy ledger, so uninstrumented
     * reports stay byte-identical. Segment rows are in the fixed Seg
     * enum order; blame vectors are indexed likewise.
     */
    struct Attribution
    {
        bool enabled = false;
        /** Closed anatomy records (== requests that ended). */
        std::uint64_t requests = 0;
        /** SLO violations attributed (drops count as violations). */
        std::uint64_t violations = 0;

        struct Segment
        {
            std::string name;         ///< obs::segName
            std::uint64_t count = 0;  ///< requests with a nonzero span
            double totalS = 0.0;      ///< summed span, seconds
            double p50s = 0.0;
            double p95s = 0.0;
            double p99s = 0.0;
            std::uint64_t blamed = 0; ///< violations blaming this seg
        };
        std::vector<Segment> segments;

        struct ModelBlame
        {
            std::string model;
            std::vector<std::uint64_t> blamed; ///< per segment
        };
        std::vector<ModelBlame> perModel;

        /** Per-window violation blame (rows of per-segment counts);
         *  empty unless the run was windowed. */
        double windowLen = 0.0;
        std::vector<std::vector<std::uint64_t>> perWindow;
    };
    Attribution attribution;

    /**
     * Resilience metric family (chaos/probe.hh). Emitted only when the
     * run enabled the resilience probe (ExperimentConfig::
     * resilienceReport), so plain reports stay byte-identical.
     */
    struct Resilience
    {
        bool enabled = false;
        /** Node-failure events that actually fenced a node (no-op
         *  re-fails are not counted) and their restores. */
        std::uint64_t faultEvents = 0;
        std::uint64_t restores = 0;
        /** Time-weighted mean healthy-node fraction over the run. */
        double availability = 1.0;
        /** Mean per-fault repair time (fail -> restore), seconds. */
        double mttrMeanS = 0.0;
        /** Total time with >= 1 node fenced, seconds. */
        double degradedTimeS = 0.0;
        /** Requests dropped per fault event (drops that land inside
         *  degraded intervals, divided by faultEvents). */
        double lostPerFault = 0.0;
        /** Completions per minute inside / outside degraded time. */
        double goodputFaultRpm = 0.0;
        double goodputHealthyRpm = 0.0;
        /** Mean time from full restore until the pending backlog
         *  returns to its pre-fault depth (time-to-steady-state),
         *  seconds; censored at the experiment end. */
        double recoveryMeanS = 0.0;
    };
    Resilience resilience;

    /** Build the summary from the two collectors. */
    static Report build(const std::string &system, const Recorder &rec,
                        const ClusterStats &stats,
                        const std::vector<double> &ttftCdfPoints);
};

/** Serialize as a JSON object (includes the CDF and GPU timeline). */
std::string toJson(const Report &report);

/** Same object on a single line (JSONL record embedding). */
std::string toJsonLine(const Report &report);

/**
 * The report's scalar metrics as (json_key, value) pairs in emission
 * order — the single source of truth the sweep summary and regression
 * gate aggregate over.
 */
std::vector<std::pair<std::string, double>>
reportScalarMetrics(const Report &report);

/**
 * The attribution block's sweep-facing metrics as (json_key, value)
 * pairs: per segment seg_<name>_total_s / seg_<name>_p95_s /
 * seg_<name>_blamed, plus attr_violations. Empty when the report has
 * no attribution block, so sweeps over uninstrumented runs are
 * unchanged (the summary and gate skip missing metrics).
 */
std::vector<std::pair<std::string, double>>
reportAttributionMetrics(const Report &report);

/**
 * The resilience block's sweep-facing metrics as (json_key, value)
 * pairs (res_availability, res_mttr_mean_s, res_recovery_mean_s, ...).
 * Empty when the report has no resilience block, so sweeps over
 * chaos-free runs are unchanged.
 */
std::vector<std::pair<std::string, double>>
reportResilienceMetrics(const Report &report);

/** Human-readable rendering of the resilience block (empty string
 *  when the run had no resilience probe). */
std::string renderResilience(const Report &report);

/** Header line matching toResilienceCsvRows. */
std::string reportResilienceCsvHeader();

/** One CSV row of the resilience block (empty string when the run had
 *  no probe); carries system/scenario/seed so the table
 *  self-identifies. */
std::string toResilienceCsvRows(const Report &report);

/** Header line matching toCsvRow (scalar fields only). */
std::string reportCsvHeader();

/** Header line matching toWindowsCsvRows. */
std::string reportWindowsCsvHeader();

/** Header line matching toCountersCsvRows. */
std::string reportCountersCsvHeader();

/** Header line matching toAttributionCsvRows. */
std::string reportAttributionCsvHeader();

/** One CSV row per anatomy segment (empty string when the run did not
 *  enable attribution); rows carry system/scenario/seed so the table
 *  self-identifies. */
std::string toAttributionCsvRows(const Report &report);

/**
 * Human-readable rendering of the attribution block: the per-segment
 * latency-anatomy table, then violation blame by model and by window.
 * Shared by `slinfer_run --explain` and the slinfer_explain tool so
 * the two cannot drift. Empty string when the report has no block.
 */
std::string renderAttribution(const Report &report);

/** One CSV row per flight-recorder counter (empty string when the run
 *  did not enable counters); rows carry system/scenario/seed so the
 *  table self-identifies. */
std::string toCountersCsvRows(const Report &report);

/** One CSV row per report window (empty string when unwindowed);
 *  rows carry system/scenario/seed so the table self-identifies. */
std::string toWindowsCsvRows(const Report &report);

/** One CSV row of the report's scalar fields. String fields are
 *  RFC-4180-quoted when they contain commas/quotes/newlines. */
std::string toCsvRow(const Report &report);

/** Quote a CSV field if needed (RFC 4180: wrap in double quotes,
 *  double any embedded quotes). */
std::string csvField(const std::string &field);

/** Escape a string for embedding in JSON output (the one escaper the
 *  report writer and the sweep store/summary share). */
std::string jsonEscape(const std::string &s);

} // namespace slinfer

#endif // SLINFER_METRICS_REPORT_HH
