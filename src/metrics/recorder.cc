#include "metrics/recorder.hh"

#include <algorithm>

namespace slinfer
{

void
Recorder::enableWindows(Seconds duration, int n)
{
    if (duration <= 0 || n <= 0)
        return;
    windows_.assign(static_cast<std::size_t>(n), WindowStats{});
    windowSpan_ = duration / n;
}

std::size_t
Recorder::windowAt(Seconds t) const
{
    std::size_t i = static_cast<std::size_t>(t / windowSpan_);
    return std::min(i, windows_.size() - 1);
}

void
Recorder::onArrival(const Request &req)
{
    ++total_;
    if (!windows_.empty())
        ++windows_[windowAt(req.arrival)].arrived;
}

void
Recorder::onDrop(const Request &req, Seconds now)
{
    (void)req;
    ++dropped_;
    if (!windows_.empty())
        ++windows_[windowAt(now)].dropped;
}

void
Recorder::onComplete(const Request &req, Seconds now)
{
    ++completed_;
    generatedTokens_ += req.generated;
    if (!req.sloViolated)
        ++sloMet_;
    if (req.firstTokenTime >= 0)
        ttft_.add(req.firstTokenTime - req.arrival);
    if (req.migrations > 0)
        ++migrated_;
    if (!windows_.empty()) {
        WindowStats &w = windows_[windowAt(now)];
        ++w.completed;
        w.generatedTokens += req.generated;
        if (req.firstTokenTime >= 0)
            w.ttft.add(req.firstTokenTime - req.arrival);
    }
}

double
Recorder::sloRate() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(sloMet_) / static_cast<double>(total_);
}

double
Recorder::migrationRate() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(migrated_) / static_cast<double>(total_);
}

} // namespace slinfer
