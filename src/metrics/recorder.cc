#include "metrics/recorder.hh"

namespace slinfer
{

void
Recorder::onArrival(const Request &req)
{
    (void)req;
    ++total_;
}

void
Recorder::onDrop(const Request &req, Seconds now)
{
    (void)req;
    (void)now;
    ++dropped_;
}

void
Recorder::onComplete(const Request &req, Seconds now)
{
    (void)now;
    ++completed_;
    generatedTokens_ += req.generated;
    if (!req.sloViolated)
        ++sloMet_;
    if (req.firstTokenTime >= 0)
        ttft_.add(req.firstTokenTime - req.arrival);
    if (req.migrations > 0)
        ++migrated_;
}

double
Recorder::sloRate() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(sloMet_) / static_cast<double>(total_);
}

double
Recorder::migrationRate() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(migrated_) / static_cast<double>(total_);
}

} // namespace slinfer
