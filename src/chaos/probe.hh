/**
 * @file
 * ResilienceProbe: the measurement half of the chaos engine.
 *
 * A Session owns one probe when ExperimentConfig::resilienceReport is
 * set. The probe is a pure observer of node-fail/node-restore
 * interventions plus a handful of read-only cluster queries; it
 * schedules only its own wakeup events (a window-close at the metrics
 * boundary and a 1 s recovery poll after a full restore), so attaching
 * it never changes a controller decision — but it does add events, so
 * a probed run is only byte-comparable to other probed runs.
 *
 * It produces the Report::Resilience family: availability (time-
 * weighted healthy-node fraction), per-fault MTTR, requests lost per
 * fault event, goodput under fault vs healthy, and time-to-steady-
 * state after restore (pending backlog back to its pre-fault depth).
 */

#ifndef SLINFER_CHAOS_PROBE_HH
#define SLINFER_CHAOS_PROBE_HH

#include <map>
#include <memory>
#include <vector>

#include "core/controller.hh"
#include "harness/intervention.hh"
#include "metrics/report.hh"

namespace slinfer
{
namespace chaos
{

class ResilienceProbe
{
  public:
    /** Arms a window-close event at `duration`, so the integrals stop
     *  exactly at the metrics boundary even though finish() drains
     *  events past it. */
    ResilienceProbe(Simulator &sim,
                    const std::vector<std::unique_ptr<Node>> &nodes,
                    const ControllerBase &ctl, const Recorder &rec,
                    Seconds duration);

    ResilienceProbe(const ResilienceProbe &) = delete;
    ResilienceProbe &operator=(const ResilienceProbe &) = delete;

    /** A node-fail or node-restore intervention is about to be
     *  applied (the Session notifies *before* routing to the
     *  controller, so the pre-fault pending depth can be snapshotted
     *  before the node's requests are evicted into the queue). The
     *  probe re-derives whether the event actually changes state, so
     *  no-op re-fails and spurious restores are not counted. */
    void onNodeEvent(const Intervention &iv);

    /** Fill the report block (after the run drained). */
    void finalize(Report::Resilience &out) const;

  private:
    /** Integrate availability/degraded time over [lastT_, now). */
    void accumulate(Seconds now);
    std::size_t pendingDepth() const;
    void pollRecovery();
    void closeWindow();

    Simulator &sim_;
    const std::vector<std::unique_ptr<Node>> &nodes_;
    const ControllerBase &ctl_;
    const Recorder &rec_;
    Seconds duration_;

    Seconds lastT_ = 0.0;
    std::size_t failedNow_ = 0;
    double availabilityInt_ = 0.0;
    Seconds degradedTime_ = 0.0;
    bool closed_ = false;

    /** Node id -> fail time of in-progress faults. */
    std::map<int, Seconds> failAt_;
    std::uint64_t faultEvents_ = 0;
    std::uint64_t restores_ = 0;
    double mttrSum_ = 0.0;

    /** Recorder snapshots at degraded-interval boundaries. */
    std::size_t dropsAtFaultStart_ = 0;
    std::size_t doneAtFaultStart_ = 0;
    std::size_t lostUnderFault_ = 0;
    std::size_t doneUnderFault_ = 0;
    /** Recorder totals frozen at the metrics boundary (the drain past
     *  `duration` must not leak into the goodput split). */
    std::size_t completedAtClose_ = 0;
    std::size_t droppedAtClose_ = 0;

    /** Pending-queue depth just before the first concurrent fault;
     *  the recovery target after full restore. */
    std::size_t baselineDepth_ = 0;
    /** Full-restore time while a recovery poll is in flight; < 0
     *  when not recovering. */
    Seconds restoreT_ = -1.0;
    double recoverySum_ = 0.0;
    std::uint64_t recoveries_ = 0;
};

} // namespace chaos
} // namespace slinfer

#endif // SLINFER_CHAOS_PROBE_HH
