#include "chaos/probe.hh"

#include <algorithm>

namespace slinfer
{
namespace chaos
{

ResilienceProbe::ResilienceProbe(
    Simulator &sim, const std::vector<std::unique_ptr<Node>> &nodes,
    const ControllerBase &ctl, const Recorder &rec, Seconds duration)
    : sim_(sim), nodes_(nodes), ctl_(ctl), rec_(rec),
      duration_(duration)
{
    sim_.scheduleAt(duration_, [this] { closeWindow(); });
}

void
ResilienceProbe::accumulate(Seconds now)
{
    Seconds end = std::min(now, duration_);
    if (end <= lastT_)
        return;
    double total = static_cast<double>(nodes_.size());
    double healthy =
        total > 0
            ? (total - static_cast<double>(failedNow_)) / total
            : 1.0;
    availabilityInt_ += healthy * (end - lastT_);
    if (failedNow_ > 0)
        degradedTime_ += end - lastT_;
    lastT_ = end;
}

std::size_t
ResilienceProbe::pendingDepth() const
{
    std::size_t depth = 0;
    for (std::size_t d : ctl_.pendingPerModel())
        depth += d;
    return depth;
}

void
ResilienceProbe::onNodeEvent(const Intervention &iv)
{
    if (iv.node < 0 ||
        static_cast<std::size_t>(iv.node) >= nodes_.size())
        return; // the controller hook raises the error
    Seconds now = sim_.now();
    const Node *n = nodes_[iv.node].get();
    if (iv.kind == Intervention::Kind::NodeFail) {
        if (n->failed() || failAt_.count(iv.node))
            return; // no-op re-fail: not a fault event
        accumulate(now);
        if (failedNow_ == 0) {
            // First concurrent fault: open a degraded interval. If a
            // recovery poll from the previous fault is still running,
            // that recovery never completed — it yields no sample, and
            // the fresh baseline intentionally includes the leftover
            // backlog (recovering to a backlog we never cleared would
            // overstate resilience).
            restoreT_ = -1.0;
            dropsAtFaultStart_ = rec_.dropped();
            doneAtFaultStart_ = rec_.completed();
            baselineDepth_ = pendingDepth();
        }
        failAt_[iv.node] = now;
        ++faultEvents_;
        ++failedNow_;
        return;
    }
    if (iv.kind == Intervention::Kind::NodeRestore) {
        auto it = failAt_.find(iv.node);
        if (!n->failed() || it == failAt_.end())
            return; // no-op restore of a healthy node
        accumulate(now);
        mttrSum_ += now - it->second;
        ++restores_;
        failAt_.erase(it);
        --failedNow_;
        if (failedNow_ == 0) {
            // Full restore: close the degraded interval and start
            // polling for steady state (backlog back to baseline).
            lostUnderFault_ += rec_.dropped() - dropsAtFaultStart_;
            doneUnderFault_ += rec_.completed() - doneAtFaultStart_;
            restoreT_ = now;
            if (now + 1.0 <= duration_)
                sim_.schedule(1.0, [this] { pollRecovery(); });
        }
    }
}

void
ResilienceProbe::pollRecovery()
{
    if (restoreT_ < 0 || closed_)
        return; // a new fault started, or the window closed
    Seconds now = sim_.now();
    if (pendingDepth() <= baselineDepth_) {
        recoverySum_ += now - restoreT_;
        ++recoveries_;
        restoreT_ = -1.0;
        return;
    }
    if (now + 1.0 <= duration_)
        sim_.schedule(1.0, [this] { pollRecovery(); });
}

void
ResilienceProbe::closeWindow()
{
    accumulate(duration_);
    if (failedNow_ > 0) {
        // The run ends degraded: close the open interval here so the
        // goodput split stays exact.
        lostUnderFault_ += rec_.dropped() - dropsAtFaultStart_;
        doneUnderFault_ += rec_.completed() - doneAtFaultStart_;
    } else if (restoreT_ >= 0) {
        // Recovery still in flight at the boundary: censored sample.
        recoverySum_ += duration_ - restoreT_;
        ++recoveries_;
        restoreT_ = -1.0;
    }
    completedAtClose_ = rec_.completed();
    droppedAtClose_ = rec_.dropped();
    closed_ = true;
}

void
ResilienceProbe::finalize(Report::Resilience &out) const
{
    out.enabled = true;
    out.faultEvents = faultEvents_;
    out.restores = restores_;
    out.availability =
        duration_ > 0 ? availabilityInt_ / duration_ : 1.0;
    out.mttrMeanS =
        restores_ ? mttrSum_ / static_cast<double>(restores_) : 0.0;
    out.degradedTimeS = degradedTime_;
    out.lostPerFault =
        faultEvents_ ? static_cast<double>(lostUnderFault_) /
                           static_cast<double>(faultEvents_)
                     : 0.0;
    out.goodputFaultRpm =
        degradedTime_ > 0
            ? static_cast<double>(doneUnderFault_) /
                  (degradedTime_ / 60.0)
            : 0.0;
    Seconds healthyTime = duration_ - degradedTime_;
    std::size_t doneHealthy = completedAtClose_ - doneUnderFault_;
    out.goodputHealthyRpm =
        healthyTime > 0 ? static_cast<double>(doneHealthy) /
                              (healthyTime / 60.0)
                        : 0.0;
    out.recoveryMeanS =
        recoveries_ ? recoverySum_ / static_cast<double>(recoveries_)
                    : 0.0;
}

} // namespace chaos
} // namespace slinfer
