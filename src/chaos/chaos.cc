#include "chaos/chaos.hh"

#include <algorithm>
#include <cstdlib>

#include "common/rng.hh"

namespace slinfer
{
namespace chaos
{

namespace
{

/** Rng fork tag reserving the chaos stream against the harness's
 *  other consumers (0xA11CE interventions, 0x1E46 lengths). */
constexpr std::uint64_t kChaosTag = 0xC4A05;

Intervention
make(Intervention::Kind kind, Seconds at, int node, double factor)
{
    Intervention iv;
    iv.kind = kind;
    iv.at = at;
    iv.node = node;
    iv.factor = factor;
    return iv;
}

void
emitPair(Timeline &out, Intervention::Kind fire, Intervention::Kind undo,
         Seconds at, Seconds hold, Seconds duration, int node,
         double factor)
{
    if (at >= duration)
        return;
    out.push_back(make(fire, at, node, factor));
    out.push_back(make(undo, std::min(at + hold, duration), node, 1.0));
}

} // namespace

const char *
faultKindName(FaultProcess::Kind kind)
{
    switch (kind) {
      case FaultProcess::Kind::NodeFlap: return "flap";
      case FaultProcess::Kind::CorrelatedFailure: return "blast";
      case FaultProcess::Kind::Straggler: return "straggler";
      case FaultProcess::Kind::NetBrownout: return "brownout";
    }
    return "?";
}

Timeline
generateChaosTimeline(const ChaosConfig &cfg, Seconds duration,
                      std::uint64_t seed)
{
    Timeline out;
    Rng root = Rng(seed).fork(kChaosTag);
    for (std::size_t i = 0; i < cfg.processes.size(); ++i) {
        const FaultProcess &fp = cfg.processes[i];
        Rng proc = root.fork(i);
        switch (fp.kind) {
          case FaultProcess::Kind::NodeFlap:
            for (int node = fp.firstNode; node <= fp.lastNode; ++node) {
                Rng r = proc.fork(static_cast<std::uint64_t>(node));
                Seconds t = r.exponential(1.0 / fp.mtbf);
                while (t < duration) {
                    // Repairs are floored at 1 s: a zero-length outage
                    // would collide its fail and restore at one
                    // timestamp, which validate() rightly rejects.
                    Seconds repair = std::max<Seconds>(
                        1.0, r.exponential(1.0 / fp.mttr));
                    Seconds restore = std::min(t + repair, duration);
                    out.push_back(make(Intervention::Kind::NodeFail, t,
                                       node, 1.0));
                    out.push_back(make(Intervention::Kind::NodeRestore,
                                       restore, node, 1.0));
                    if (restore >= duration)
                        break;
                    t = restore + r.exponential(1.0 / fp.mtbf);
                }
            }
            break;
          case FaultProcess::Kind::CorrelatedFailure:
            for (int node = fp.firstNode; node <= fp.lastNode; ++node)
                emitPair(out, Intervention::Kind::NodeFail,
                         Intervention::Kind::NodeRestore, fp.at, fp.hold,
                         duration, node, 1.0);
            break;
          case FaultProcess::Kind::Straggler:
            for (int node = fp.firstNode; node <= fp.lastNode; ++node) {
                if (fp.at >= duration)
                    continue;
                out.push_back(make(Intervention::Kind::NodeDegrade,
                                   fp.at, node, fp.factor));
                out.push_back(make(Intervention::Kind::NodeRecover,
                                   std::min(fp.at + fp.hold, duration),
                                   node, 1.0));
            }
            break;
          case FaultProcess::Kind::NetBrownout:
            if (fp.at >= duration)
                break;
            out.push_back(make(Intervention::Kind::NetBrownout, fp.at,
                               -1, fp.factor));
            out.push_back(make(Intervention::Kind::NetRestore,
                               std::min(fp.at + fp.hold, duration), -1,
                               1.0));
            break;
        }
    }
    // Stable: simultaneous events keep generation order (process
    // index, then node), which is itself deterministic.
    std::stable_sort(out.begin(), out.end(),
                     [](const Intervention &a, const Intervention &b) {
                         return a.at < b.at;
                     });
    return out;
}

namespace
{

bool
splitKeyVals(const std::string &body,
             std::vector<std::pair<std::string, std::string>> &kvs,
             std::string *err)
{
    std::size_t pos = 0;
    while (pos < body.size()) {
        std::size_t comma = body.find(',', pos);
        std::string item = body.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0) {
            if (err)
                *err = "chaos: expected key=value, got '" + item + "'";
            return false;
        }
        kvs.emplace_back(item.substr(0, eq), item.substr(eq + 1));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return true;
}

bool
parseNum(const std::string &s, double &out)
{
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end && *end == '\0' && !s.empty();
}

bool
parseNodeRange(const std::string &s, int &first, int &last)
{
    std::size_t dash = s.find('-');
    double a = 0, b = 0;
    if (dash == std::string::npos) {
        if (!parseNum(s, a) || a < 0)
            return false;
        first = last = static_cast<int>(a);
        return true;
    }
    if (!parseNum(s.substr(0, dash), a) ||
        !parseNum(s.substr(dash + 1), b) || a < 0 || b < a)
        return false;
    first = static_cast<int>(a);
    last = static_cast<int>(b);
    return true;
}

} // namespace

bool
parseChaosSpec(const std::string &spec, ChaosConfig &out, std::string *err)
{
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t semi = spec.find(';', pos);
        std::string proc = spec.substr(
            pos, semi == std::string::npos ? std::string::npos
                                           : semi - pos);
        if (proc.empty()) {
            if (err)
                *err = "chaos: empty process in spec";
            return false;
        }
        std::size_t colon = proc.find(':');
        std::string kindName = proc.substr(0, colon);
        FaultProcess fp;
        bool haveNodes = false, haveAt = false;
        if (kindName == "flap")
            fp.kind = FaultProcess::Kind::NodeFlap;
        else if (kindName == "blast")
            fp.kind = FaultProcess::Kind::CorrelatedFailure;
        else if (kindName == "straggler")
            fp.kind = FaultProcess::Kind::Straggler;
        else if (kindName == "brownout")
            fp.kind = FaultProcess::Kind::NetBrownout;
        else {
            if (err)
                *err = "chaos: unknown fault kind '" + kindName + "'";
            return false;
        }
        std::vector<std::pair<std::string, std::string>> kvs;
        if (colon != std::string::npos &&
            !splitKeyVals(proc.substr(colon + 1), kvs, err))
            return false;
        for (const auto &kv : kvs) {
            double num = 0;
            if (kv.first == "nodes") {
                if (!parseNodeRange(kv.second, fp.firstNode,
                                    fp.lastNode)) {
                    if (err)
                        *err = "chaos: bad node range '" + kv.second +
                               "'";
                    return false;
                }
                haveNodes = true;
                continue;
            }
            if (!parseNum(kv.second, num) || num < 0) {
                if (err)
                    *err = "chaos: bad value '" + kv.second + "' for " +
                           kv.first;
                return false;
            }
            if (kv.first == "mtbf")
                fp.mtbf = num;
            else if (kv.first == "mttr")
                fp.mttr = num;
            else if (kv.first == "at") {
                fp.at = num;
                haveAt = true;
            } else if (kv.first == "for")
                fp.hold = num;
            else if (kv.first == "factor")
                fp.factor = num;
            else {
                if (err)
                    *err = "chaos: unknown key '" + kv.first + "'";
                return false;
            }
        }
        bool oneShot = fp.kind != FaultProcess::Kind::NodeFlap;
        if (fp.kind != FaultProcess::Kind::NetBrownout && !haveNodes) {
            if (err)
                *err = std::string("chaos: ") + faultKindName(fp.kind) +
                       " requires nodes=";
            return false;
        }
        if (oneShot && !haveAt) {
            if (err)
                *err = std::string("chaos: ") + faultKindName(fp.kind) +
                       " requires at=";
            return false;
        }
        if (fp.mtbf <= 0 || fp.mttr <= 0 || fp.hold <= 0 ||
            fp.factor <= 0) {
            if (err)
                *err = "chaos: mtbf/mttr/for/factor must be > 0";
            return false;
        }
        out.processes.push_back(fp);
        if (semi == std::string::npos)
            break;
        pos = semi + 1;
    }
    if (out.processes.empty()) {
        if (err)
            *err = "chaos: empty spec";
        return false;
    }
    return true;
}

} // namespace chaos
} // namespace slinfer
