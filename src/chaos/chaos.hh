/**
 * @file
 * Chaos engine: stochastic, correlated fault processes compiled into
 * deterministic intervention timelines.
 *
 * A FaultProcess is a parameterized generator of faults — Poisson
 * MTBF/MTTR node flaps, correlated blast-radius failures that take a
 * whole node group out at once, straggler degradation, and PD-network
 * brownouts. generateChaosTimeline() expands a ChaosConfig into a
 * plain Timeline (harness/intervention.hh) *before the run starts*,
 * seeded from the experiment seed: same seed ⇒ the same fault schedule
 * at any sweep `--jobs` and any `--parallel-sim` thread count, because
 * the events ride the ordinary Session timeline/inject path (lockstep
 * staging rules are reused, not duplicated).
 *
 * The generated timeline is validated like any hand-written one
 * (ExperimentConfig::validate), so processes whose node ranges overlap
 * for fail-kind faults are rejected up front rather than producing
 * duplicate node-fail events.
 */

#ifndef SLINFER_CHAOS_CHAOS_HH
#define SLINFER_CHAOS_CHAOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/intervention.hh"

namespace slinfer
{
namespace chaos
{

/** One stochastic fault generator over a node range. */
struct FaultProcess
{
    enum class Kind
    {
        /** Independent Poisson flaps per node in [firstNode,
         *  lastNode]: exponential healthy periods of mean `mtbf`,
         *  exponential repair of mean `mttr` (floored at 1 s). */
        NodeFlap,
        /** Correlated blast radius: every node in the range fails at
         *  `at` and restores together after `hold` seconds. */
        CorrelatedFailure,
        /** Straggler: nodes in the range run `factor` x slower from
         *  `at` for `hold` seconds. */
        Straggler,
        /** PD-network brownout: KV transfers run `factor` x slower
         *  fleet-wide from `at` for `hold` seconds. */
        NetBrownout,
    };

    Kind kind = Kind::NodeFlap;
    /** Inclusive node-id range the process targets (ignored for
     *  NetBrownout, which is fleet-wide). */
    int firstNode = 0;
    int lastNode = 0;
    /** NodeFlap: mean time between failures / to repair, seconds. */
    double mtbf = 600.0;
    double mttr = 60.0;
    /** One-shot kinds: fire time and fault duration, seconds. */
    Seconds at = 0.0;
    Seconds hold = 120.0;
    /** Straggler latency / NetBrownout transfer multiplier. */
    double factor = 4.0;
};

/** Spec slug of the kind ("flap", "blast", "straggler", "brownout"). */
const char *faultKindName(FaultProcess::Kind kind);

struct ChaosConfig
{
    std::vector<FaultProcess> processes;
    bool enabled() const { return !processes.empty(); }
};

/**
 * Expand the config into a time-sorted intervention schedule over
 * [0, duration]. Pure function of its arguments — the generator draws
 * from Rng(seed).fork(kChaosTag) with per-process and per-node
 * sub-forks, so adding a process or widening a range never reshuffles
 * another process's draws. Restores that would land past `duration`
 * clamp to it, keeping every fail/restore pair well-formed.
 */
Timeline generateChaosTimeline(const ChaosConfig &cfg, Seconds duration,
                               std::uint64_t seed);

/**
 * Parse the `--chaos` spec grammar: ';'-separated processes, each
 * `kind[:key=value,...]` with kinds flap|blast|straggler|brownout and
 * keys nodes=<a>-<b>|<a>, mtbf=<s>, mttr=<s>, at=<s>, for=<s>,
 * factor=<x>. Example:
 *   "blast:nodes=4-5,at=300,for=180;straggler:nodes=6,at=100,factor=3"
 * Returns false (and fills *err when non-null) on malformed specs.
 */
bool parseChaosSpec(const std::string &spec, ChaosConfig &out,
                    std::string *err);

} // namespace chaos
} // namespace slinfer

#endif // SLINFER_CHAOS_CHAOS_HH
