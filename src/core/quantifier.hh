/**
 * @file
 * Performance quantifier (paper §VI-B).
 *
 * SLINFER never consults the analytic performance model directly at
 * scheduling time; instead it *profiles* each (hardware, model) pair in
 * advance on a power-of-two grid — O(log Lmax) TTFT samples and
 * O(log Lmax * log Bmax) TPOT samples — and answers queries with linear
 * (prefill) and bilinear (decode) interpolation between the closest
 * grid points. The paper reports 5.9% / 3.9% average relative deviation
 * for TTFT / TPOT; the core unit tests assert the same magnitude against
 * the noisy ground truth.
 */

#ifndef SLINFER_CORE_QUANTIFIER_HH
#define SLINFER_CORE_QUANTIFIER_HH

#include <map>
#include <string>
#include <vector>

#include "hw/perf_model.hh"

namespace slinfer
{

class Quantifier
{
  public:
    /**
     * Profile one (hardware, model) pair. Idempotent; call again to
     * refresh. Sampling covers lengths up to the model's max context
     * and batch sizes up to `maxBatch`.
     */
    void profile(const HardwareSpec &hw, const ModelSpec &m,
                 int maxBatch = 256);

    /** True once the pair has been profiled. */
    bool profiled(const HardwareSpec &hw, const ModelSpec &m) const;

    /** Interpolated prefill (TTFT-producing) iteration time. */
    Seconds prefillEstimate(const HardwareSpec &hw, const ModelSpec &m,
                            Tokens inputLen) const;

    /** Interpolated decode iteration time. */
    Seconds decodeEstimate(const HardwareSpec &hw, const ModelSpec &m,
                           int batchSize, Tokens avgLen) const;

    /** Number of profiled samples held for the pair (test aid). */
    std::size_t sampleCount(const HardwareSpec &hw,
                            const ModelSpec &m) const;

  private:
    struct ProfileTable
    {
        std::vector<Tokens> lenGrid;
        std::vector<int> batchGrid;
        std::vector<Seconds> prefill;          ///< indexed like lenGrid
        std::vector<std::vector<Seconds>> decode; ///< [batch][len]
    };

    static std::string keyOf(const HardwareSpec &hw, const ModelSpec &m);
    const ProfileTable &tableFor(const HardwareSpec &hw,
                                 const ModelSpec &m) const;

    std::map<std::string, ProfileTable> tables_;
};

} // namespace slinfer

#endif // SLINFER_CORE_QUANTIFIER_HH
