/**
 * @file
 * Performance quantifier (paper §VI-B).
 *
 * SLINFER never consults the analytic performance model directly at
 * scheduling time; instead it *profiles* each (hardware, model) pair in
 * advance on a power-of-two grid — O(log Lmax) TTFT samples and
 * O(log Lmax * log Bmax) TPOT samples — and answers queries with linear
 * (prefill) and bilinear (decode) interpolation between the closest
 * grid points. The paper reports 5.9% / 3.9% average relative deviation
 * for TTFT / TPOT; the core unit tests assert the same magnitude against
 * the noisy ground truth.
 */

#ifndef SLINFER_CORE_QUANTIFIER_HH
#define SLINFER_CORE_QUANTIFIER_HH

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/flat_hash.hh"
#include "hw/perf_model.hh"

namespace slinfer
{

class Quantifier
{
  public:
    /**
     * Profile one (hardware, model) pair. Idempotent; call again to
     * refresh. Sampling covers lengths up to the model's max context
     * and batch sizes up to `maxBatch`.
     */
    void profile(const HardwareSpec &hw, const ModelSpec &m,
                 int maxBatch = 256);

    /** True once the pair has been profiled. */
    bool profiled(const HardwareSpec &hw, const ModelSpec &m) const;

    /** Interpolated prefill (TTFT-producing) iteration time. */
    Seconds prefillEstimate(const HardwareSpec &hw, const ModelSpec &m,
                            Tokens inputLen) const;

    /** Interpolated decode iteration time. */
    Seconds decodeEstimate(const HardwareSpec &hw, const ModelSpec &m,
                           int batchSize, Tokens avgLen) const;

    /** Number of profiled samples held for the pair (test aid). */
    std::size_t sampleCount(const HardwareSpec &hw,
                            const ModelSpec &m) const;

  private:
    struct ProfileTable
    {
        std::vector<Tokens> lenGrid;
        std::vector<int> batchGrid;
        std::vector<Seconds> prefill;          ///< indexed like lenGrid
        std::vector<std::vector<Seconds>> decode; ///< [batch][len]
    };

    /**
     * Flat (hw name, model name) → table map (common/flat_hash.hh),
     * probed with string_views so estimate queries never allocate a
     * key. Tables live behind unique_ptr so their addresses survive
     * rehashes — the MRU memo below caches raw pointers.
     */
    using Tables =
        FlatHashMap<std::pair<std::string, std::string>,
                    std::unique_ptr<ProfileTable>, FlatStringPairHash,
                    FlatStringPairEq>;

    const ProfileTable &tableFor(const HardwareSpec &hw,
                                 const ModelSpec &m) const;
    const ProfileTable *find(const HardwareSpec &hw,
                             const ModelSpec &m) const;

    Tables tables_;

    /**
     * Tiny MRU memo in front of the map: a fleet shares a handful of
     * (hardware, model) profile pairs, and consecutive queries (an
     * aggregate-decode walk over one partition, a shadow fast-forward)
     * almost always repeat one. Table pointers are stable (heap
     * pointees behind the flat map's unique_ptr values, profiles are
     * never erased), so memo entries stay valid across inserts;
     * profile() refreshes any matching entry.
     */
    struct Memo
    {
        std::string hw, model;
        const ProfileTable *table = nullptr;
    };
    mutable std::array<Memo, 4> memo_;
    mutable std::size_t memoNext_ = 0;
};

} // namespace slinfer

#endif // SLINFER_CORE_QUANTIFIER_HH
