/**
 * @file
 * Cluster controllers.
 *
 * ControllerBase owns the mechanics every serving system in the paper
 * shares: the event-driven instance lifecycle (cold start via the fast
 * loader, keep-alive reclamation), per-partition token schedulers,
 * pending-request queues with proactive TTFT drops, request completion
 * accounting, eviction, and the optional prefill-decode disaggregation
 * plumbing (Table III). It also owns the incrementally maintained
 * cluster indices (core/cluster_index.hh) that keep placement and
 * report/policy queries off the scan-per-decision path; the pre-index
 * scans survive as the `*Oracle` methods for cross-checking and
 * benchmarking (ControllerConfig::oracleScans routes decisions through
 * them).
 *
 * SlinferController implements the paper's scheme: CPU-first routing
 * with profile-based fallback, shadow-validated admission, the
 * watermark memory subsystem, and the dual consolidator (proactive
 * preemption + reactive bin-packing). The baselines live in
 * src/baselines.
 */

#ifndef SLINFER_CORE_CONTROLLER_HH
#define SLINFER_CORE_CONTROLLER_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/cluster_index.hh"
#include "core/config.hh"
#include "core/memory_subsystem.hh"
#include "core/quantifier.hh"
#include "core/shadow_validator.hh"
#include "core/token_scheduler.hh"
#include "metrics/recorder.hh"
#include "obs/obs.hh"

namespace slinfer
{

class Consolidator;

/** Per-deployed-model state. */
struct ModelEntry
{
    ModelSpec spec;
    /** Historical average output length O_bar (EWMA over completions). */
    double avgOutput = 256.0;
    /** Live instances (Loading/Active/Draining). */
    std::vector<Instance *> instances;
    /** Retired by an intervention: requests drop, nothing places. */
    bool retired = false;
};

class ControllerBase
{
  public:
    ControllerBase(Simulator &sim,
                   std::vector<std::unique_ptr<Node>> &nodes,
                   std::vector<ModelSpec> modelSpecs,
                   std::vector<double> initialAvgOutput,
                   ControllerConfig cfg, Recorder &recorder,
                   ClusterStats *stats);
    virtual ~ControllerBase() = default;

    ControllerBase(const ControllerBase &) = delete;
    ControllerBase &operator=(const ControllerBase &) = delete;

    /** Entry point: a request arrives. */
    void submit(Request *req);

    /**
     * Attach the Session's flight recorder (pre-run, before any event
     * fires). Pulls out the nullable sinks the decision paths bump and
     * registers the trace's track names (controller / per-partition
     * cluster threads / per-model request tracks). Sinks are
     * write-only: attaching them cannot change any decision.
     */
    void attachObs(obs::FlightRecorder *fr);

    // --- intervention hooks (Session::inject / timelines) -----------
    /**
     * Fence `node`: its partitions close for placement and leave the
     * free-capacity index, in-flight requests are evicted (they
     * re-queue and migrate elsewhere, recompute-style), and residents
     * unload as soon as their in-flight memory ops settle (a periodic
     * drain sweep retries Loading/resizing instances). Drain-style
     * failure semantics: the memory ledger stays consistent, so the
     * run remains deterministic.
     */
    void failNode(NodeId node);
    /** Reopen a failed node for placement. */
    void restoreNode(NodeId node);
    /**
     * Append a new model to the fleet mid-run; returns its id. The
     * caller supplies the initial O_bar estimate (Session derives it
     * from the scenario dataset).
     */
    ModelId deployModel(const ModelSpec &spec, double initialAvgOutput);
    /**
     * Roll out a new version of `model` in place: evict its in-flight
     * requests (they re-queue) and unload its instances, so subsequent
     * requests cold-start fresh instances.
     */
    void redeployModel(ModelId model);
    /**
     * Retire `model`: drop its queued and in-flight requests and
     * unload its instances; nothing of this model places afterwards.
     * (Cancelling its future arrivals is the Session's half.)
     */
    void retireModel(ModelId model);
    /**
     * Straggler degradation: multiply every perf-model iteration
     * latency on `node` by `factor` (> 1 slows it down). Orthogonal
     * to failNode — a degraded node keeps serving, just slower; the
     * shadow validator does not model the slowdown (an *unmodeled*
     * straggler is the point of the fault).
     */
    void degradeNode(NodeId node, double factor);
    /** Reset `node`'s degradation multiplier to 1 (defined no-op on a
     *  never-degraded node). */
    void recoverNode(NodeId node);
    /**
     * Network brownout: multiply PD prefill→decode KV-transfer times
     * by `factor` fleet-wide (1 restores; exact 1.0 is bit-exact). */
    void setNetFactor(double factor);
    double netFactor() const { return netFactor_; }

    /** Nodes currently fenced by failNode (resilience probes). */
    int failedNodeCount() const { return failedNodes_; }

    /**
     * Streaming replay: invoked whenever a settled request (Completed
     * or Dropped) has left every controller queue, so the Session's
     * pool may recycle its storage. Unset (materialized runs, the
     * default) the controller never reclaims and the maintenance cost
     * is one null test per settle site. Set it before any event fires.
     */
    void
    setReclaimHook(std::function<void(Request *)> hook)
    {
        reclaim_ = std::move(hook);
    }

    /** Queued (pending dispatch) requests per model, including parked
     *  PD decode transfers — Session::sample's queue-depth view. */
    std::vector<std::size_t> pendingPerModel() const;

    const ControllerConfig &config() const { return cfg_; }
    const std::vector<ModelEntry> &models() const { return models_; }
    std::size_t instancesCreated() const { return instancesCreated_; }
    std::size_t evictions() const { return evictions_; }
    std::size_t preemptions() const { return preemptions_; }

    /** The incremental cluster indices (tests / benches). */
    const ClusterIndex &clusterIndex() const { return index_; }
    /** Stable-storage instance pool (oracle audits in tests). */
    const std::vector<std::unique_ptr<Instance>> &
    instancePool() const
    {
        return instancePool_;
    }

    /** Where dispatch attempts land (observability / tests). */
    struct DispatchStats
    {
        std::size_t admitExisting = 0;
        std::size_t admitPreempt = 0;
        std::size_t admitNew = 0;
        std::size_t rejectShadow = 0;   ///< compute validation failures
        std::size_t rejectMemory = 0;   ///< memory plan failures
        std::size_t rejectNoPlacement = 0;
    };
    const DispatchStats &dispatchStats() const { return dispatchStats_; }

    /** Total iteration-execution seconds on nodes of `kind` (tests).
     *  O(1) running aggregate; the oracle variant walks the pool. */
    double totalBusySeconds(HwKind kind) const;
    double totalBusySecondsOracle(HwKind kind) const;

    /** Fraction of total instance uptime spent blocked on KV resizes
     *  (Fig. 31), across all instances ever created. Exact pool scan
     *  (a report field — byte-stability trumps O(1) for a
     *  once-per-run query); clusterIndex().scalingOverheadFraction()
     *  is the O(1) running-aggregate form. */
    double scalingOverheadFraction() const;
    double scalingOverheadFractionOracle() const;

    /** Mean KV allocation utilization across live instances, sampled
     *  now (Fig. 31). O(live) over the id-ordered active registry —
     *  bit-identical to the oracle's pool walk. */
    double kvUtilizationNow() const;
    double kvUtilizationNowOracle() const;

  protected:
    /** Dispatch a fresh (or re-queued) request; false leaves it queued. */
    virtual bool tryDispatch(Request *req) = 0;
    /** Dispatch a prefilled request to a decode instance (PD mode). */
    virtual bool tryDispatchDecode(Request *req);
    /** Iteration selection policy for this system. */
    virtual SchedPolicy schedPolicy() const = 0;
    /** KV starvation on an instance; grow or evict. */
    virtual void handleKvShortage(Instance *inst) = 0;
    /** Reclaim an idle instance (release memory). */
    virtual void doUnload(Instance *inst) = 0;
    /** Hook invoked after a request completes on `inst`. */
    virtual void onRequestDoneHook(Request *req, Instance *inst);
    /** Hook invoked after deployModel registered model `m`. */
    virtual void onModelDeployed(ModelId m);
    /**
     * Drain hook: abort `inst`'s cold-start load if it is still parked
     * in the reservation station (it never held memory, so the
     * instance retires immediately). Default: no station, false.
     */
    virtual bool tryAbortParkedLoad(Instance *inst);

    // --- shared mechanics -------------------------------------------
    TokenScheduler &schedulerFor(Partition *part);
    void kickPartition(Partition *part);

    /** Allocate an Instance object and register it everywhere. */
    Instance *makeInstance(ModelId model, Partition *primary,
                           HardwareSpec execSpec, Bytes kvAlloc,
                           InstanceRole role,
                           std::vector<Partition *> extraHolds,
                           bool staticKv);
    /** Baseline path: hold all memory statically and start the load. */
    void startStaticLoad(Instance *inst);
    /** Release a static instance (unload latency, then memory). */
    void unloadStatic(Instance *inst);
    /** Remove a Reclaimed instance from all registries. */
    void unregisterInstance(Instance *inst);
    void scheduleKeepAlive(Instance *inst);
    void cancelKeepAlive(Instance *inst);

    /** Put the request on `inst`'s prefill queue. */
    void admitTo(Request *req, Instance *inst);
    /** PD mode: join a decode batch directly (KV already resident). */
    bool admitToDecode(Request *req, Instance *inst);

    void queueRequest(Request *req);
    void retryPending();
    /**
     * Record a failed dispatch attempt under the backoff policy:
     * bump the request's failure count, stamp its next permitted
     * attempt, and schedule a retry wakeup. Returns false when the
     * deadline-aware give-up dropped the request instead (its next
     * permitted attempt could only land past the TTFT drop deadline).
     */
    bool armBackoff(Request *req);
    /** Failover exclusion: partition recently failed and still inside
     *  the ResilienceConfig::failoverExclusion window. */
    bool placementExcluded(const Partition *p) const;
    /** Terminate a request as dropped (cancelling its drop timer). */
    void dropRequest(Request *req);
    /** Recompute-style eviction: take `req` off `inst` and re-queue
     *  it with a migration mark (the next host re-prefills). */
    void requeueEvicted(Request *req, Instance *inst);
    /**
     * Take every request off `inst` (prefill queue and decode batch).
     * Evicted requests re-queue with a migration mark (recompute
     * semantics, as the consolidator does); with `drop` they terminate
     * as drops instead (model retirement).
     */
    void evictAllRequests(Instance *inst, bool drop);
    /** Origin bits for Instance::draining (who fenced it). */
    static constexpr unsigned kDrainNodeFail = 1u;
    static constexpr unsigned kDrainInstanceSet = 2u;
    /**
     * Drain one instance for an intervention: evict its requests, then
     * unload it if its memory ops have settled. Returns false when the
     * instance needs a later sweep (an executing load or resize) —
     * marking it draining with `reasonBit` until then.
     */
    bool settleInstance(Instance *inst, bool drop, unsigned reasonBit);
    /** Sweep a fenced node until every resident is unloaded. */
    void drainNodeInstances(Node *node);
    /** Sweep a captured instance set (redeploy/retire) to unload. */
    void drainInstanceSet(std::vector<Instance *> insts, bool drop);
    void requestDone(Request *req, Instance *inst);
    /** Hand `req` to the reclaim hook iff it is settled (Completed or
     *  Dropped) and no pending queue still references it. Call after
     *  every site that settles a request or releases a queue ref. */
    void
    maybeReclaim(Request *req)
    {
        if (reclaim_ && req->queueRefs == 0 &&
            (req->state == RequestState::Completed ||
             req->state == RequestState::Dropped))
            reclaim_(req);
    }
    void evictLongestHeadroom(Instance *inst);
    bool takeAfterPrefill(Request *req, Instance *inst);

    // --- per-model decode pending queues (PD mode) ------------------
    /** Park a prefilled request until a decode slot frees up. */
    void queueDecode(Request *req);
    /** A decode-capacity event touched this model (and, through
     *  partition colocation, its neighbors): re-validate its queue at
     *  the next retry round. */
    void markDecodeDirty(ModelId model);
    /** A cluster-wide event (memory release, load/unload, eviction):
     *  re-validate every model's decode queue. */
    void markAllDecodeDirty();

    /** All partitions, CPU nodes first then GPU, in id order — the
     *  index's cached view. The oracle variant materializes fresh
     *  vectors per call, as the pre-index code did. */
    const std::vector<Partition *> &
    allPartitions(bool cpuFirst) const
    {
        return index_.partitions(cpuFirst);
    }
    std::vector<Partition *> allPartitionsOracle(bool cpuFirst) const;

    Simulator &sim_;
    std::vector<std::unique_ptr<Node>> &nodes_;
    std::vector<ModelEntry> models_;
    ControllerConfig cfg_;
    Recorder &recorder_;
    ClusterStats *stats_;
    Rng rng_;
    ClusterIndex index_;

    /** Stable storage: instances are never destroyed mid-run so that
     *  in-flight events can safely reference them. */
    std::vector<std::unique_ptr<Instance>> instancePool_;
    /** Per-partition token schedulers, indexed by Partition::viewPos
     *  (O(1) on the dispatch hot path; created lazily). */
    std::vector<std::unique_ptr<TokenScheduler>> scheds_;

    std::deque<Request *> pending_;
    std::map<RequestId, EventHandle> dropEvents_;

    /** PD mode: prefilled requests awaiting a decode slot, bucketed
     *  per model with global arrival sequence numbers; only models in
     *  the dirty set are re-validated per retry round (decode
     *  admission is deadline-free, so a queue whose relevant state
     *  did not change since its last failure cannot newly pass —
     *  see DESIGN.md, "Cluster indices"). */
    std::vector<std::deque<std::pair<std::uint64_t, Request *>>>
        pendingDecode_;
    std::vector<char> decodeDirty_;
    std::uint64_t decodeSeq_ = 0;
    std::size_t decodePendingCount_ = 0;

    /** Request-storage reclaim hook (streaming replay; may be null). */
    std::function<void(Request *)> reclaim_;

    /** Fleet-wide PD KV-transfer multiplier (NetBrownout). */
    double netFactor_ = 1.0;
    /** Count of currently fenced nodes (graceful-degradation gate). */
    int failedNodes_ = 0;

    std::size_t instancesCreated_ = 0;
    std::size_t evictions_ = 0;
    std::size_t preemptions_ = 0;
    DispatchStats dispatchStats_;

    // Flight-recorder sinks (all nullable; null = off). Shared with
    // the lazily created token schedulers and memory subsystems.
    obs::Counters *ctr_ = nullptr;
    obs::TraceRecorder *trace_ = nullptr;
    obs::PhaseProfiler *prof_ = nullptr;
    obs::AnatomyLedger *anat_ = nullptr;

    /** Request-track pid for a model (trace grouping). */
    static int
    tracePid(ModelId model)
    {
        return obs::kPidModelBase + static_cast<int>(model);
    }
    /** Async end of a request span (complete or dropped). */
    void traceRequestEnd(const Request *req);

  private:
    void retryDecodePending();

    bool inRetry_ = false;
    bool retryAgain_ = false;
    /** Retry-round scratch, recycled across rounds (retryPending is
     *  reentrancy-guarded, so one live round owns them). */
    std::vector<Request *> retryStill_;
    std::vector<std::pair<std::uint64_t, Request *>> decodeRound_;
};

/**
 * The paper's system. See file header.
 */
class SlinferController : public ControllerBase
{
  public:
    SlinferController(Simulator &sim,
                      std::vector<std::unique_ptr<Node>> &nodes,
                      std::vector<ModelSpec> modelSpecs,
                      std::vector<double> initialAvgOutput,
                      ControllerConfig cfg, Recorder &recorder,
                      ClusterStats *stats);
    ~SlinferController() override;

    const Quantifier &quantifier() const { return quant_; }

    /** Mean reservation-station occupancy across partitions (tests). */
    std::size_t parkedOpsNow() const;

    /** Total resize operations issued (Fig. 31). */
    std::uint64_t resizeOps() const;

    /** A shared-placement candidate for a new instance. */
    struct PlacementChoice
    {
        Partition *part = nullptr;
        Bytes kvInit = 0;
    };

    /**
     * Candidate selection for placing a new instance of `req`'s model,
     * with no commitment — the decision the throughput bench measures
     * and the fuzz test cross-checks. `oracle` selects the pre-index
     * full-cluster best-fit scan; otherwise the free-capacity index
     * answers with an ordered lookup plus a short ascending walk.
     * Both return the same choice (see DESIGN.md, "Cluster indices"
     * for the equivalence argument).
     */
    PlacementChoice probePlacement(const Request &req, bool oracle);

    /** Full shadow validations run so far (bench observability). */
    std::uint64_t
    shadowEvaluations() const
    {
        return shadow_.evaluations();
    }

  protected:
    bool tryDispatch(Request *req) override;
    bool tryDispatchDecode(Request *req) override;
    SchedPolicy schedPolicy() const override;
    void handleKvShortage(Instance *inst) override;
    void doUnload(Instance *inst) override;
    void onRequestDoneHook(Request *req, Instance *inst) override;
    void onModelDeployed(ModelId m) override;
    bool tryAbortParkedLoad(Instance *inst) override;

  private:
    friend class Consolidator;

    /** Placement geometry for `req` (Eq. 2 requirement + watermark). */
    struct PlacementDemand
    {
        bool cpuOk = false;
        Bytes weights = 0;
        Bytes require = 0;
        Bytes recommend = 0;
    };
    PlacementDemand placementDemand(const Request &req) const;

    PlacementChoice selectPlacement(const Request &req,
                                    const PlacementDemand &d);
    PlacementChoice selectPlacementOracle(const Request &req,
                                          const PlacementDemand &d);
    /** Shared eligibility+shadow check; fills `kvInit` on success. */
    bool placementCandidateOk(Partition *p, const Request &req,
                              const PlacementDemand &d, Bytes &kvInit);

    MemorySubsystem &subsystemFor(Partition *part);
    /** Can this request meet its SLO on the CPU node type at all? */
    bool cpuFeasible(const ModelSpec &spec, const Request &req) const;
    /** True when the model must fall back to exclusive allocation. */
    bool exclusiveOnly(const ModelSpec &spec) const;

    bool tryExistingInstances(Request *req);
    bool tryNewInstance(Request *req);
    bool tryExclusivePlacement(Request *req);
    /**
     * Placement pressure: start unloading idle (keep-alive) instances
     * whose reclamation would make room for this model, so the queued
     * request can place when the release lands. Returns true when at
     * least one reclamation was initiated.
     */
    bool demandReclaimFor(Request *req);
    Seconds partBusyUntil(Partition *part);

    Quantifier quant_;
    ShadowValidator shadow_;
    /** Per-partition memory subsystems, indexed by viewPos. */
    std::vector<std::unique_ptr<MemorySubsystem>> mem_;
    std::unique_ptr<Consolidator> consolidator_;
    /** Instances with a pending parked-grow eviction timeout. */
    std::set<InstanceId> shortageTimeouts_;
};

} // namespace slinfer

#endif // SLINFER_CORE_CONTROLLER_HH
