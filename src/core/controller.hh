/**
 * @file
 * Cluster controllers.
 *
 * ControllerBase owns the mechanics every serving system in the paper
 * shares: the event-driven instance lifecycle (cold start via the fast
 * loader, keep-alive reclamation), per-partition token schedulers,
 * pending-request queues with proactive TTFT drops, request completion
 * accounting, eviction, and the optional prefill-decode disaggregation
 * plumbing (Table III).
 *
 * SlinferController implements the paper's scheme: CPU-first routing
 * with profile-based fallback, shadow-validated admission, the
 * watermark memory subsystem, and the dual consolidator (proactive
 * preemption + reactive bin-packing). The baselines live in
 * src/baselines.
 */

#ifndef SLINFER_CORE_CONTROLLER_HH
#define SLINFER_CORE_CONTROLLER_HH

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "core/config.hh"
#include "core/memory_subsystem.hh"
#include "core/quantifier.hh"
#include "core/shadow_validator.hh"
#include "core/token_scheduler.hh"
#include "metrics/recorder.hh"

namespace slinfer
{

class Consolidator;

/** Per-deployed-model state. */
struct ModelEntry
{
    ModelSpec spec;
    /** Historical average output length O_bar (EWMA over completions). */
    double avgOutput = 256.0;
    /** Live instances (Loading/Active/Draining). */
    std::vector<Instance *> instances;
};

class ControllerBase
{
  public:
    ControllerBase(Simulator &sim,
                   std::vector<std::unique_ptr<Node>> &nodes,
                   std::vector<ModelSpec> modelSpecs,
                   std::vector<double> initialAvgOutput,
                   ControllerConfig cfg, Recorder &recorder,
                   ClusterStats *stats);
    virtual ~ControllerBase() = default;

    ControllerBase(const ControllerBase &) = delete;
    ControllerBase &operator=(const ControllerBase &) = delete;

    /** Entry point: a request arrives. */
    void submit(Request *req);

    const ControllerConfig &config() const { return cfg_; }
    const std::vector<ModelEntry> &models() const { return models_; }
    std::size_t instancesCreated() const { return instancesCreated_; }
    std::size_t evictions() const { return evictions_; }
    std::size_t preemptions() const { return preemptions_; }

    /** Where dispatch attempts land (observability / tests). */
    struct DispatchStats
    {
        std::size_t admitExisting = 0;
        std::size_t admitPreempt = 0;
        std::size_t admitNew = 0;
        std::size_t rejectShadow = 0;   ///< compute validation failures
        std::size_t rejectMemory = 0;   ///< memory plan failures
        std::size_t rejectNoPlacement = 0;
    };
    const DispatchStats &dispatchStats() const { return dispatchStats_; }

    /** Total iteration-execution seconds on nodes of `kind` (tests). */
    double totalBusySeconds(HwKind kind) const;

    /** Fraction of total instance uptime spent blocked on KV resizes
     *  (Fig. 31), across all instances ever created. */
    double scalingOverheadFraction() const;

    /** Mean KV allocation utilization across live instances, sampled
     *  now (Fig. 31). */
    double kvUtilizationNow() const;

  protected:
    /** Dispatch a fresh (or re-queued) request; false leaves it queued. */
    virtual bool tryDispatch(Request *req) = 0;
    /** Dispatch a prefilled request to a decode instance (PD mode). */
    virtual bool tryDispatchDecode(Request *req);
    /** Iteration selection policy for this system. */
    virtual SchedPolicy schedPolicy() const = 0;
    /** KV starvation on an instance; grow or evict. */
    virtual void handleKvShortage(Instance *inst) = 0;
    /** Reclaim an idle instance (release memory). */
    virtual void doUnload(Instance *inst) = 0;
    /** Hook invoked after a request completes on `inst`. */
    virtual void onRequestDoneHook(Request *req, Instance *inst);

    // --- shared mechanics -------------------------------------------
    TokenScheduler &schedulerFor(Partition *part);
    void kickPartition(Partition *part);

    /** Allocate an Instance object and register it everywhere. */
    Instance *makeInstance(ModelId model, Partition *primary,
                           HardwareSpec execSpec, Bytes kvAlloc,
                           InstanceRole role,
                           std::vector<Partition *> extraHolds,
                           bool staticKv);
    /** Baseline path: hold all memory statically and start the load. */
    void startStaticLoad(Instance *inst);
    /** Release a static instance (unload latency, then memory). */
    void unloadStatic(Instance *inst);
    /** Remove a Reclaimed instance from all registries. */
    void unregisterInstance(Instance *inst);
    void scheduleKeepAlive(Instance *inst);
    void cancelKeepAlive(Instance *inst);

    /** Put the request on `inst`'s prefill queue. */
    void admitTo(Request *req, Instance *inst);
    /** PD mode: join a decode batch directly (KV already resident). */
    bool admitToDecode(Request *req, Instance *inst);

    void queueRequest(Request *req);
    void retryPending();
    void requestDone(Request *req, Instance *inst);
    void evictLongestHeadroom(Instance *inst);
    bool takeAfterPrefill(Request *req, Instance *inst);

    /** All partitions, CPU nodes first then GPU, in id order. */
    std::vector<Partition *> allPartitions(bool cpuFirst) const;

    Simulator &sim_;
    std::vector<std::unique_ptr<Node>> &nodes_;
    std::vector<ModelEntry> models_;
    ControllerConfig cfg_;
    Recorder &recorder_;
    ClusterStats *stats_;
    Rng rng_;

    /** Stable storage: instances are never destroyed mid-run so that
     *  in-flight events can safely reference them. */
    std::vector<std::unique_ptr<Instance>> instancePool_;
    std::map<Partition *, std::unique_ptr<TokenScheduler>> scheds_;

    std::deque<Request *> pending_;
    std::deque<Request *> pendingDecode_; ///< PD mode
    std::map<RequestId, EventHandle> dropEvents_;

    std::size_t instancesCreated_ = 0;
    std::size_t evictions_ = 0;
    std::size_t preemptions_ = 0;
    DispatchStats dispatchStats_;

  private:
    bool inRetry_ = false;
    bool retryAgain_ = false;
};

/**
 * The paper's system. See file header.
 */
class SlinferController : public ControllerBase
{
  public:
    SlinferController(Simulator &sim,
                      std::vector<std::unique_ptr<Node>> &nodes,
                      std::vector<ModelSpec> modelSpecs,
                      std::vector<double> initialAvgOutput,
                      ControllerConfig cfg, Recorder &recorder,
                      ClusterStats *stats);
    ~SlinferController() override;

    const Quantifier &quantifier() const { return quant_; }

    /** Mean reservation-station occupancy across partitions (tests). */
    std::size_t parkedOpsNow() const;

    /** Total resize operations issued (Fig. 31). */
    std::uint64_t resizeOps() const;

  protected:
    bool tryDispatch(Request *req) override;
    bool tryDispatchDecode(Request *req) override;
    SchedPolicy schedPolicy() const override;
    void handleKvShortage(Instance *inst) override;
    void doUnload(Instance *inst) override;
    void onRequestDoneHook(Request *req, Instance *inst) override;

  private:
    friend class Consolidator;

    MemorySubsystem &subsystemFor(Partition *part);
    /** Can this request meet its SLO on the CPU node type at all? */
    bool cpuFeasible(const ModelSpec &spec, const Request &req) const;
    /** True when the model must fall back to exclusive allocation. */
    bool exclusiveOnly(const ModelSpec &spec) const;

    bool tryExistingInstances(Request *req);
    bool tryNewInstance(Request *req);
    bool tryExclusivePlacement(Request *req);
    /**
     * Placement pressure: start unloading idle (keep-alive) instances
     * whose reclamation would make room for this model, so the queued
     * request can place when the release lands. Returns true when at
     * least one reclamation was initiated.
     */
    bool demandReclaimFor(Request *req);
    Seconds partBusyUntil(Partition *part);

    Quantifier quant_;
    ShadowValidator shadow_;
    std::map<Partition *, std::unique_ptr<MemorySubsystem>> mem_;
    std::unique_ptr<Consolidator> consolidator_;
    /** Instances with a pending parked-grow eviction timeout. */
    std::set<InstanceId> shortageTimeouts_;
};

} // namespace slinfer

#endif // SLINFER_CORE_CONTROLLER_HH
