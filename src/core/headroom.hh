/**
 * @file
 * Headroom helpers (paper Eq. 1) used by the token-level scheduler and
 * the shadow validator. The headroom of a request is the slack until
 * the cumulative deadline of its next token; the scheduler always picks
 * the instance whose most urgent request has the smallest headroom.
 */

#ifndef SLINFER_CORE_HEADROOM_HH
#define SLINFER_CORE_HEADROOM_HH

#include "engine/instance.hh"
#include "engine/node.hh"

namespace slinfer
{

/**
 * Eq. 1: headroom = ST + TTFT_SLO + TPOT_SLO * O - CT, where the start
 * time includes any cold-start grace.
 */
Seconds requestHeadroom(const Request &req, Seconds now);

/**
 * The runnable instance on `partition` whose most urgent request has
 * the smallest headroom. Returns nullptr when nothing is runnable.
 */
Instance *pickMostUrgentInstance(const Partition &partition, Seconds now);

} // namespace slinfer

#endif // SLINFER_CORE_HEADROOM_HH
