/**
 * @file
 * Incrementally maintained cluster indices (DESIGN.md, "Cluster
 * indices") — the controller's answer to scan-per-decision cost.
 *
 * Before this component, every placement, autoscaling and report
 * query re-walked the cluster: `allPartitions()` materialized fresh
 * vectors per call, `MemorySubsystem::committed()` summed a
 * partition's instances per admission check, and the report-time
 * aggregates walked the entire `instancePool_` (which only ever
 * grows — a serverless run churns through far more instances than
 * are ever live at once). At fleet scale (6400 models on 800
 * partitions) those walks dominate controller time.
 *
 * The index maintains, updated at the transitions that change them:
 *
 *  - **Partition views**: the canonical cpu-first / gpu-only
 *    partition orderings, built once (topology is fixed after
 *    cluster construction) and handed out by const reference.
 *  - **Free-capacity index**: per hardware kind, an ordered set of
 *    (free optimistic bytes, view position) — `free = capacity -
 *    committedBytes`, with `committedBytes` the integer running
 *    total of `weights + kvTarget` over non-Unloading residents.
 *    Placement candidate selection becomes an ordered lower_bound
 *    plus a short ascending walk instead of a full cluster scan; the
 *    (free, viewPos) ordering makes the walk visit candidates in
 *    exactly the order the oracle scan's best-fit comparison would
 *    have selected them (see selectPlacement in controller.cc).
 *  - **Active-instance registry**: the id-ordered set of Active
 *    instances. KV-utilization sampling walks this set in id order —
 *    the same elements in the same order as the oracle's pool scan,
 *    so the sampled double is bit-identical — at O(live) instead of
 *    O(ever-created).
 *  - **Running aggregates**: busy seconds per hardware kind, scaling
 *    seconds, and the uptime components (retired uptime, live count,
 *    sum of live activation times), making busy/scaling-overhead
 *    queries O(1).
 *
 * The pre-index scan implementations stay alive as `*Oracle`
 * methods on the controller / memory subsystem (the same pattern as
 * sim/legacy_event_queue.hh): `ControllerConfig::oracleScans` routes
 * the decision paths through them for A/B benchmarking
 * (bench/bench_controller_throughput.cc), and the fuzz test
 * (tests/test_cluster_index.cc) asserts index == oracle after every
 * transition. The index itself is maintained in both modes.
 */

#ifndef SLINFER_CORE_CLUSTER_INDEX_HH
#define SLINFER_CORE_CLUSTER_INDEX_HH

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "engine/instance.hh"
#include "engine/node.hh"

namespace slinfer
{

class ClusterIndex
{
  public:
    explicit ClusterIndex(
        const std::vector<std::unique_ptr<Node>> &nodes);

    /** Rebuild the views and free sets from scratch (topology hook;
     *  the committed totals of live partitions are preserved). */
    void rebuildTopology();

    // --- cached partition views -------------------------------------
    /** All partitions, CPU nodes first then GPU (cpuFirst) or GPU
     *  only, in id order. Stable for the run; never reallocated. */
    const std::vector<Partition *> &
    partitions(bool cpuFirst) const
    {
        return cpuFirst ? cpuFirst_ : gpuOnly_;
    }

    /** First CPU partition's hardware spec (nullptr without CPUs). */
    const HardwareSpec *cpuSpec() const { return cpuSpec_; }
    /** First GPU partition's memory capacity (0 without GPUs). */
    Bytes gpuPartitionCapacity() const { return gpuCap_; }

    // --- free-capacity placement index ------------------------------
    /** (free bytes, viewPos) — ordered so an ascending walk is the
     *  oracle best-fit order. */
    using FreeKey = std::pair<Bytes, std::uint32_t>;

    const std::set<FreeKey> &
    freeSet(HwKind kind) const
    {
        return free_[kind == HwKind::Cpu ? 0 : 1];
    }

    Partition *
    partitionAt(std::uint32_t viewPos) const
    {
        return cpuFirst_[viewPos];
    }

    // --- maintenance hooks (called at state transitions) ------------
    /** A new instance was registered on its primary partition. */
    void onInstanceAdded(const Instance &inst);
    /** kvTarget is about to change from `oldTarget` to `newTarget`
     *  while the instance still counts toward the budget. */
    void onKvTargetChanged(const Instance &inst, Bytes oldTarget,
                           Bytes newTarget);
    /** The instance left the optimistic budget (→ Unloading). */
    void onInstanceUnloading(const Instance &inst);
    /** The instance became Active at `activeAt`. */
    void onInstanceActivated(Instance &inst);
    /** Active → Unloading: drop from the active registry. */
    void onInstanceDeactivated(Instance &inst);
    /** Unloading → Reclaimed: retire its uptime contribution. */
    void onInstanceReclaimed(const Instance &inst);

    /** The partition was fenced by a node-failure intervention: drop
     *  its free key so placement walks never visit it. `part.failed`
     *  must already be set (moveFreeKey consults it). */
    void onPartitionFailed(const Partition &part);
    /** The partition reopened: reinsert its current free key. */
    void onPartitionRestored(const Partition &part);

    /** An iteration of `dur` seconds started on `kind` hardware. */
    void
    addBusySeconds(HwKind kind, Seconds dur)
    {
        busySeconds_[kind == HwKind::Cpu ? 0 : 1] += dur;
    }

    /** A KV resize blocked its instance for `dur` seconds. */
    void addScalingSeconds(Seconds dur) { scalingSeconds_ += dur; }

    // --- O(1) / O(live) queries -------------------------------------
    /** Total iteration-execution seconds on `kind` hardware. */
    double
    busySeconds(HwKind kind) const
    {
        return busySeconds_[kind == HwKind::Cpu ? 0 : 1];
    }

    /** Fraction of total instance uptime spent blocked on resizes
     *  (the running-aggregate form of the oracle's pool scan). */
    double scalingOverheadFraction(Seconds now) const;

    /** Mean KV allocation utilization across live loaded instances,
     *  walking the id-ordered active registry — element-for-element
     *  the oracle pool scan, so the result is bit-identical. */
    double kvUtilizationNow() const;

    /** Id-ordered Active instances (tests / stats). */
    const std::set<Instance *, bool (*)(const Instance *,
                                        const Instance *)> &
    activeInstances() const
    {
        return active_;
    }

    // --- consistency audit (fuzz test / debugging) ------------------
    /**
     * Cross-check every index against the oracle scans over `pool`:
     * per-partition committed totals, free-set membership and keys,
     * and the active registry. Returns an empty string when
     * consistent, else a description of the first mismatch.
     */
    std::string auditAgainst(
        const std::vector<std::unique_ptr<Instance>> &pool) const;

  private:
    static bool
    idLess(const Instance *a, const Instance *b)
    {
        return a->id < b->id;
    }

    /** True while the instance counts toward the optimistic budget. */
    static bool
    counted(InstanceState s)
    {
        return s != InstanceState::Unloading &&
               s != InstanceState::Reclaimed;
    }

    void moveFreeKey(const Partition &part, Bytes oldFree);

    const std::vector<std::unique_ptr<Node>> &nodes_;
    std::vector<Partition *> cpuFirst_;
    std::vector<Partition *> gpuOnly_;
    const HardwareSpec *cpuSpec_ = nullptr;
    Bytes gpuCap_ = 0;

    /** [0] = CPU partitions, [1] = GPU partitions. */
    std::set<FreeKey> free_[2];

    std::set<Instance *, bool (*)(const Instance *, const Instance *)>
        active_{&ClusterIndex::idLess};

    double busySeconds_[2] = {0.0, 0.0};
    double scalingSeconds_ = 0.0;
    /** Σ max(busy + scaling, 1e-9) over reclaimed instances. */
    double retiredUptime_ = 0.0;
    /** Instances with activeAt >= 0 that are not yet Reclaimed. */
    std::size_t liveCount_ = 0;
    /** Σ activeAt over those instances. */
    double liveActiveAtSum_ = 0.0;
};

} // namespace slinfer

#endif // SLINFER_CORE_CLUSTER_INDEX_HH
