/**
 * @file
 * Shadow validation (paper §VI-C).
 *
 * Before a request is dispatched to an instance, SLINFER virtually adds
 * it and fast-forwards the partition's token-level schedule using the
 * quantifier's estimates, each inflated by 10%. Admission is rejected
 * when the simulation exhibits any of the paper's three cases:
 *   (1) the new request's prefill lands after its TTFT deadline;
 *   (2) an existing request's next token slips past its cumulative
 *       deadline because of the new prefill;
 *   (3) the aggregate single-decode-iteration time across all colocated
 *       instances exceeds the TPOT SLO (steady-state saturation).
 */

#ifndef SLINFER_CORE_SHADOW_VALIDATOR_HH
#define SLINFER_CORE_SHADOW_VALIDATOR_HH

#include <set>
#include <vector>

#include "core/quantifier.hh"
#include "engine/instance.hh"
#include "engine/node.hh"

namespace slinfer
{

class TokenScheduler;

struct ShadowConfig
{
    double overestimate = 1.10;
    Seconds tpotSlo = 0.25;
    int maxSteps = 500;
};

class ShadowValidator
{
  public:
    ShadowValidator(const Quantifier &quant, ShadowConfig cfg);

    /**
     * Can `req` join existing instance `target` on its partition
     * without violating any colocated request's SLO? `partBusyUntil`
     * is the completion time of the partition's in-flight iteration.
     * Instances in `exclude` are treated as already removed (used by
     * the consolidator to evaluate preemption).
     */
    bool canAdmit(const Partition &part, const Instance *target,
                  const Request &req, Seconds now, Seconds partBusyUntil,
                  const std::set<const Instance *> &exclude = {}) const;

    /**
     * Can `req` be served by a *new* instance of `model` placed on
     * `part`, whose weights become resident at `readyAt`?
     */
    bool canAdmitNew(const Partition &part, const ModelSpec &model,
                     const HardwareSpec &execSpec, const Request &req,
                     Seconds now, Seconds partBusyUntil,
                     Seconds readyAt) const;

    /** Case-3 only: steady-state aggregate decode fits in one TPOT. */
    bool aggregateDecodeFits(const Partition &part, const Instance *target,
                             int extraOnTarget, Tokens extraLen,
                             const std::set<const Instance *> &exclude =
                                 {}) const;

  private:
    struct SimReq
    {
        Seconds deadline;
        Tokens ctx;
        bool isCandidate;
        int id; ///< stable identity across the two passes (-1: candidate)
    };
    struct SimDecode
    {
        Seconds deadline;
        int id;
    };
    struct SimInst
    {
        const ModelSpec *model = nullptr;
        const HardwareSpec *hw = nullptr;
        Seconds availAt = 0.0;
        std::vector<SimReq> prefills;
        std::vector<SimDecode> decodeDeadlines;
        double avgLen = 1.0;
        bool decodedSinceCandidate = false;
    };

    std::vector<SimInst> buildState(
        const Partition &part, Seconds now,
        const std::set<const Instance *> &exclude) const;

    /**
     * Fast-forward the token-level schedule. With `doomed == nullptr`,
     * returns false on the first violation by a request not in
     * `exempt`. With `doomed != nullptr`, never fails; instead it
     * records the ids of requests that violate (used as the baseline
     * pass: requests that are late even without the candidate cannot be
     * protected and must not veto admissions).
     */
    bool simulate(std::vector<SimInst> state, Seconds start,
                  const std::set<int> *exempt,
                  std::set<int> *doomed) const;

    /** Two-pass validation: baseline marks the doomed, then the real
     *  pass (with the candidate) checks only protectable requests.
     *  `now` is the true wall clock (start may be later when the
     *  partition is mid-iteration). */
    bool twoPass(std::vector<SimInst> state, Seconds start,
                 Seconds now) const;

    const Quantifier &quant_;
    ShadowConfig cfg_;
};

} // namespace slinfer

#endif // SLINFER_CORE_SHADOW_VALIDATOR_HH
