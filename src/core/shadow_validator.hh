/**
 * @file
 * Shadow validation (paper §VI-C).
 *
 * Before a request is dispatched to an instance, SLINFER virtually adds
 * it and fast-forwards the partition's token-level schedule using the
 * quantifier's estimates, each inflated by 10%. Admission is rejected
 * when the simulation exhibits any of the paper's three cases:
 *   (1) the new request's prefill lands after its TTFT deadline;
 *   (2) an existing request's next token slips past its cumulative
 *       deadline because of the new prefill;
 *   (3) the aggregate single-decode-iteration time across all colocated
 *       instances exceeds the TPOT SLO (steady-state saturation).
 */

#ifndef SLINFER_CORE_SHADOW_VALIDATOR_HH
#define SLINFER_CORE_SHADOW_VALIDATOR_HH

#include <set>
#include <vector>

#include "core/quantifier.hh"
#include "engine/instance.hh"
#include "engine/node.hh"

namespace slinfer
{

class TokenScheduler;

struct ShadowConfig
{
    double overestimate = 1.10;
    Seconds tpotSlo = 0.25;
    int maxSteps = 500;
};

class ShadowValidator
{
  public:
    ShadowValidator(const Quantifier &quant, ShadowConfig cfg);

    /**
     * Can `req` join existing instance `target` on its partition
     * without violating any colocated request's SLO? `partBusyUntil`
     * is the completion time of the partition's in-flight iteration.
     * Instances in `exclude` are treated as already removed (used by
     * the consolidator to evaluate preemption).
     */
    bool canAdmit(const Partition &part, const Instance *target,
                  const Request &req, Seconds now, Seconds partBusyUntil,
                  const std::set<const Instance *> &exclude = {}) const;

    /**
     * Can `req` be served by a *new* instance of `model` placed on
     * `part`, whose weights become resident at `readyAt`?
     */
    bool canAdmitNew(const Partition &part, const ModelSpec &model,
                     const HardwareSpec &execSpec, const Request &req,
                     Seconds now, Seconds partBusyUntil,
                     Seconds readyAt) const;

    /** Case-3 only: steady-state aggregate decode fits in one TPOT. */
    bool aggregateDecodeFits(const Partition &part, const Instance *target,
                             int extraOnTarget, Tokens extraLen,
                             const std::set<const Instance *> &exclude =
                                 {}) const;

    /** Cumulative full validations run (observability: the controller
     *  throughput bench reports shadow work per decision). */
    std::uint64_t evaluations() const { return evals_; }

  private:
    struct SimReq
    {
        Seconds deadline;
        Tokens ctx;
        bool isCandidate;
        int id; ///< stable identity across the two passes (-1: candidate)
    };
    struct SimDecode
    {
        Seconds deadline;
        int id;
    };
    struct SimInst
    {
        const ModelSpec *model = nullptr;
        const HardwareSpec *hw = nullptr;
        Seconds availAt = 0.0;
        std::vector<SimReq> prefills;
        std::vector<SimDecode> decodeDeadlines;
        double avgLen = 1.0;
        bool decodedSinceCandidate = false;
    };

    /**
     * Rebuild the validation state for `part` into the first slots of
     * `state_`, returning the live-instance count. All validation
     * scratch (`state_`, `baseline_`, `doomed_`) is per-validator
     * storage recycled across calls — admission validation runs a few
     * hundred times per simulated second at fleet scale, and the
     * pre-scratch version re-allocated every inner vector (plus two
     * deep copies per two-pass run) per call. The validator is
     * therefore not reentrant, which is fine: one controller owns one
     * validator on one simulator thread.
     */
    std::size_t buildState(const Partition &part, Seconds now,
                           const std::set<const Instance *> &exclude)
        const;

    /** A recycled `state_` slot, inner vectors cleared. */
    SimInst &slotAt(std::size_t i) const;

    /**
     * Fast-forward the token-level schedule over `v[0..count)`,
     * consuming it. With `collectDoomed == false`, returns false on
     * the first violation by a request not in the sorted `doomed_`
     * scratch. With `collectDoomed == true`, never fails; instead it
     * records the ids of requests that violate into `doomed_` (used
     * as the baseline pass: requests that are late even without the
     * candidate cannot be protected and must not veto admissions).
     */
    bool simulate(std::vector<SimInst> &v, std::size_t count,
                  Seconds start, bool collectDoomed) const;

    /** Two-pass validation over `state_[0..count)`: the baseline pass
     *  (without the candidate) marks the doomed, then the real pass
     *  checks only protectable requests. `now` is the true wall clock
     *  (start may be later when the partition is mid-iteration). */
    bool twoPass(std::size_t count, Seconds start, Seconds now) const;

    const Quantifier &quant_;
    ShadowConfig cfg_;

    /** Recycled validation scratch (see buildState). */
    mutable std::vector<SimInst> state_;
    mutable std::vector<SimInst> baseline_;
    /** Ids that violate even without the candidate; sorted between
     *  the two passes, membership via binary search. */
    mutable std::vector<int> doomed_;
    mutable std::uint64_t evals_ = 0;
};

} // namespace slinfer

#endif // SLINFER_CORE_SHADOW_VALIDATOR_HH
