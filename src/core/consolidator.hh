/**
 * @file
 * Efficiency-oriented consolidation (paper §VIII).
 *
 * Proactive: when no existing instance of a model can absorb a new
 * request, an instance may preempt colocated *smaller-batch* neighbors
 * (smallest first) to scale up in place — but only when shadow
 * validation shows the preempted requests still meet their SLOs after
 * rescheduling to other instances. Idle keep-alive neighbors are the
 * cheapest victims.
 *
 * Reactive: when several instances of one model exist, new requests are
 * routed to the largest-batch instance first (bin-packing), letting the
 * small fragments drain and be reclaimed at keep-alive expiry. The
 * ordering helper here is used by the controller's dispatch path.
 */

#ifndef SLINFER_CORE_CONSOLIDATOR_HH
#define SLINFER_CORE_CONSOLIDATOR_HH

#include <vector>

#include "engine/instance.hh"

namespace slinfer
{

class SlinferController;
class Request;

class Consolidator
{
  public:
    explicit Consolidator(SlinferController &ctl);

    /**
     * Proactive path: try to admit `req` to an existing instance of its
     * model by preempting smaller-batch neighbors. Returns true when
     * the request was admitted.
     */
    bool tryPreemptFor(Request *req);

    /** Reactive bin-packing order: largest decode batch first. */
    static void orderLargestBatchFirst(std::vector<Instance *> &insts);

    std::size_t preemptionsExecuted() const { return executed_; }

  private:
    struct VictimPlan
    {
        std::vector<Instance *> victims;
        /** (request, destination) assignments for the victims' load. */
        std::vector<std::pair<Request *, Instance *>> moves;
    };

    bool planVictims(Instance *grower, Request *req, VictimPlan &plan);
    void execute(Instance *grower, Request *req, const VictimPlan &plan);

    SlinferController &ctl_;
    std::size_t executed_ = 0;
};

} // namespace slinfer

#endif // SLINFER_CORE_CONSOLIDATOR_HH
