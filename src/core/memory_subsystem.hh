/**
 * @file
 * Hazard-aware memory subsystem (paper §VII), one per partition.
 *
 * Demand (Eq. 2): an instance requires
 *     M_require = C * max( sum_r (I_r + max(O_r, O_bar)), L_min )
 * with L_min the model's maximum context length, and is recommended
 * M_require * (1 + w) with watermark w (default 25%): scale up early to
 * the recommendation, scale down lazily only when the recommendation
 * (again inflated by w) falls below the current allocation.
 *
 * Orchestration combines an *optimistic* budget — the sum of every
 * instance's weights plus its committed KV target, checked at admission
 * time — with *pessimistic* execution tracking: the partition's physical
 * ledger holds the transient old+new allocations of in-flight resizes,
 * and a scale-up whose transient would not physically fit is parked in
 * a reservation station and re-attempted whenever memory is freed.
 * The MemoryManager's tryHold() is therefore never allowed to fail,
 * which a property test drives with random scaling storms.
 *
 * The optimistic budget is maintained incrementally: every kvTarget
 * mutation and load/unload transition goes through this class, which
 * updates `Partition::committedBytes` and the controller's
 * free-capacity index (core/cluster_index.hh), so `committed()` is
 * O(1) on the admission hot path. `committedScan()` keeps the
 * pre-index full walk alive as the oracle the fuzz test and the
 * throughput bench compare against.
 *
 * Per-op callbacks (`beginLoad`/`beginUnload`) are stored in a
 * small-buffer `DoneFn` (the 16-byte instantiation of the event
 * arena's inline-callback template) instead of `std::function`, so
 * parking an op in the reservation station allocates nothing and the
 * completion events the ops schedule stay within the arena's inline
 * payload window.
 */

#ifndef SLINFER_CORE_MEMORY_SUBSYSTEM_HH
#define SLINFER_CORE_MEMORY_SUBSYSTEM_HH

#include <deque>
#include <functional>
#include <set>
#include <vector>

#include "core/cluster_index.hh"
#include "engine/instance.hh"
#include "engine/node.hh"
#include "obs/anatomy.hh"
#include "obs/counters.hh"
#include "obs/phase.hh"
#include "obs/trace.hh"
#include "sim/simulator.hh"

namespace slinfer
{

class MemorySubsystem
{
  public:
    /** Per-op completion callback: inline storage sized for the
     *  controller's `[this, inst]` lambdas, heap fallback beyond. */
    using DoneFn = BasicInlineCallback<16>;

    MemorySubsystem(Simulator &sim, Partition &partition, double watermark,
                    std::function<void()> notify,
                    ClusterIndex *index = nullptr,
                    bool oracleScans = false,
                    obs::Counters *ctr = nullptr,
                    obs::TraceRecorder *trace = nullptr,
                    obs::PhaseProfiler *prof = nullptr,
                    obs::AnatomyLedger *anatomy = nullptr);

    /** Optimistic budget: weights + committed KV target of every
     *  non-reclaimed instance on the partition. O(1) via the running
     *  partition total when an index is attached (scan otherwise, or
     *  when the controller runs in oracle mode). */
    Bytes
    committed() const
    {
        if (index_ && !oracle_)
            return part_.committedBytes;
        return committedScan();
    }

    /** The pre-index oracle: walk the partition's instances. */
    Bytes committedScan() const;

    Bytes capacity() const { return part_.mem.capacity(); }

    /** Eq. 2 requirement in bytes, optionally with one extra request. */
    Bytes requiredBytes(const Instance &inst, const Request *extra,
                        double avgOut) const;

    /** Admission plan for adding `req` to `inst`. */
    struct Plan
    {
        bool ok = false;
        Bytes target = 0;        ///< committed KV target after admission
        bool needsResize = false;
        bool compromise = false; ///< accepted at M_require (§VII-D)
    };
    Plan planAdmit(const Instance &inst, const Request &req,
                   double avgOut) const;

    /** Commit a successful plan (may issue an asynchronous resize). */
    void commitPlan(Instance &inst, const Plan &plan);

    /**
     * Optimistic placement check for a new instance. Placement keeps a
     * small reserve (kPlacementReserve) of the partition unpledged so
     * colocated instances can absorb output-length underestimations
     * without evictions; admissions and emergency grows may still use
     * the full capacity.
     */
    bool canPlace(Bytes weights, Bytes kvInit) const;
    /** canPlace pinned to the running total / the oracle scan — the
     *  two placement selectors use these explicitly so each path's
     *  cost profile is measured faithfully regardless of mode (the
     *  verdicts are identical; the fuzz test checks the totals). */
    bool
    canPlaceIndexed(Bytes weights, Bytes kvInit) const
    {
        return canPlaceWith(part_.committedBytes, weights, kvInit);
    }
    bool
    canPlaceScan(Bytes weights, Bytes kvInit) const
    {
        return canPlaceWith(committedScan(), weights, kvInit);
    }

    /** Fraction of capacity new placements may pledge. */
    static constexpr double kPlacementReserve = 0.08;

    /**
     * Begin a cold-start load: physically holds weights + the initial
     * KV target (parking in the reservation station if the transient
     * does not fit), then runs the load latency; `loaded` fires when
     * the instance is Active. Accepts any nullary callable (or
     * nullptr) by small-buffer conversion.
     */
    void beginLoad(Instance &inst, DoneFn loaded);

    /** Begin reclaiming: unload latency, then memory release. */
    void beginUnload(Instance &inst, DoneFn unloaded);

    /** Lazy scale-down hook, called when a request completes.
     *  Returns true when a scale-down was committed (the optimistic
     *  budget dropped — a placement-relevant event). */
    bool onRequestComplete(Instance &inst, double avgOut);

    /** Outcome of the underestimation path (§VII-D). */
    enum class GrowResult
    {
        Sufficient, ///< growth already committed and executing/arrived
        Executing,  ///< a new resize is running; progress after it lands
        Parked,     ///< committed but waiting in the reservation station
        Rejected,   ///< does not fit the optimistic budget
    };

    /**
     * Underestimation path (§VII-D): try to grow to fit actual usage,
     * first to the recommendation, then compromised to the bare
     * requirement. On Parked/Rejected the caller should evict the
     * longest-headroom request so the instance keeps making progress.
     */
    GrowResult tryEmergencyGrow(Instance &inst, double avgOut);

    /**
     * Intervention hook (drain sweeps): abort `inst`'s cold-start load
     * if it is still parked in the reservation station. A parked load
     * never held memory, so the instance retires directly (Loading →
     * Reclaimed with no unload latency); executing ops are untouched
     * and settle normally. Returns true when a parked load was
     * aborted — the caller must then unregister the instance.
     */
    bool abortParkedLoad(Instance &inst);

    /** Reservation-station occupancy (observability for tests). */
    std::size_t parkedOps() const { return station_.size(); }

    /** Cumulative number of resize operations issued (Fig. 31). */
    std::uint64_t resizeOps() const { return resizeOps_; }

  private:
    enum class OpKind { Resize, Load };
    struct Op
    {
        OpKind kind;
        Instance *inst;
        DoneFn done; ///< only for Load
    };

    /** The one funnel for kvTarget mutations: keeps the partition's
     *  running committed total and the free-capacity index honest. */
    void setKvTarget(Instance &inst, Bytes target);

    bool
    canPlaceWith(Bytes committedNow, Bytes weights, Bytes kvInit) const
    {
        Bytes limit =
            static_cast<Bytes>(static_cast<double>(capacity()) *
                               (1.0 - kPlacementReserve));
        return committedNow + weights + kvInit <= limit;
    }

    void issueResize(Instance &inst);
    bool tryExecute(Op &op);
    void finishResize(Instance &inst, Bytes oldAlloc, Seconds started);
    void drainStation();

    Simulator &sim_;
    Partition &part_;
    double watermark_;
    std::function<void()> notify_;
    ClusterIndex *index_;
    bool oracle_;
    /** Flight-recorder sinks (any may be null = off). */
    obs::Counters *ctr_;
    obs::TraceRecorder *trace_;
    obs::PhaseProfiler *prof_;
    obs::AnatomyLedger *anat_;
    std::deque<Op> station_;
    /** Instances with a parked (not yet executing) resize. */
    std::set<InstanceId> parkedResize_;
    std::uint64_t resizeOps_ = 0;
};

} // namespace slinfer

#endif // SLINFER_CORE_MEMORY_SUBSYSTEM_HH
