/**
 * @file
 * Hazard-aware memory subsystem (paper §VII), one per partition.
 *
 * Demand (Eq. 2): an instance requires
 *     M_require = C * max( sum_r (I_r + max(O_r, O_bar)), L_min )
 * with L_min the model's maximum context length, and is recommended
 * M_require * (1 + w) with watermark w (default 25%): scale up early to
 * the recommendation, scale down lazily only when the recommendation
 * (again inflated by w) falls below the current allocation.
 *
 * Orchestration combines an *optimistic* budget — the sum of every
 * instance's weights plus its committed KV target, checked at admission
 * time — with *pessimistic* execution tracking: the partition's physical
 * ledger holds the transient old+new allocations of in-flight resizes,
 * and a scale-up whose transient would not physically fit is parked in
 * a reservation station and re-attempted whenever memory is freed.
 * The MemoryManager's tryHold() is therefore never allowed to fail,
 * which a property test drives with random scaling storms.
 */

#ifndef SLINFER_CORE_MEMORY_SUBSYSTEM_HH
#define SLINFER_CORE_MEMORY_SUBSYSTEM_HH

#include <deque>
#include <functional>
#include <set>

#include "engine/instance.hh"
#include "engine/node.hh"
#include "sim/simulator.hh"

namespace slinfer
{

class MemorySubsystem
{
  public:
    MemorySubsystem(Simulator &sim, Partition &partition, double watermark,
                    std::function<void()> notify);

    /** Optimistic budget: weights + committed KV target of every
     *  non-reclaimed instance on the partition. */
    Bytes committed() const;

    Bytes capacity() const { return part_.mem.capacity(); }

    /** Eq. 2 requirement in bytes, optionally with one extra request. */
    Bytes requiredBytes(const Instance &inst, const Request *extra,
                        double avgOut) const;

    /** Admission plan for adding `req` to `inst`. */
    struct Plan
    {
        bool ok = false;
        Bytes target = 0;        ///< committed KV target after admission
        bool needsResize = false;
        bool compromise = false; ///< accepted at M_require (§VII-D)
    };
    Plan planAdmit(const Instance &inst, const Request &req,
                   double avgOut) const;

    /** Commit a successful plan (may issue an asynchronous resize). */
    void commitPlan(Instance &inst, const Plan &plan);

    /**
     * Optimistic placement check for a new instance. Placement keeps a
     * small reserve (kPlacementReserve) of the partition unpledged so
     * colocated instances can absorb output-length underestimations
     * without evictions; admissions and emergency grows may still use
     * the full capacity.
     */
    bool canPlace(Bytes weights, Bytes kvInit) const;

    /** Fraction of capacity new placements may pledge. */
    static constexpr double kPlacementReserve = 0.08;

    /**
     * Begin a cold-start load: physically holds weights + the initial
     * KV target (parking in the reservation station if the transient
     * does not fit), then runs the load latency; `loaded` fires when
     * the instance is Active.
     */
    void beginLoad(Instance &inst, std::function<void()> loaded);

    /** Begin reclaiming: unload latency, then memory release. */
    void beginUnload(Instance &inst, std::function<void()> unloaded);

    /** Lazy scale-down hook, called when a request completes. */
    void onRequestComplete(Instance &inst, double avgOut);

    /** Outcome of the underestimation path (§VII-D). */
    enum class GrowResult
    {
        Sufficient, ///< growth already committed and executing/arrived
        Executing,  ///< a new resize is running; progress after it lands
        Parked,     ///< committed but waiting in the reservation station
        Rejected,   ///< does not fit the optimistic budget
    };

    /**
     * Underestimation path (§VII-D): try to grow to fit actual usage,
     * first to the recommendation, then compromised to the bare
     * requirement. On Parked/Rejected the caller should evict the
     * longest-headroom request so the instance keeps making progress.
     */
    GrowResult tryEmergencyGrow(Instance &inst, double avgOut);

    /** Reservation-station occupancy (observability for tests). */
    std::size_t parkedOps() const { return station_.size(); }

    /** Cumulative number of resize operations issued (Fig. 31). */
    std::uint64_t resizeOps() const { return resizeOps_; }

  private:
    enum class OpKind { Resize, Load };
    struct Op
    {
        OpKind kind;
        Instance *inst;
        std::function<void()> done; ///< only for Load
    };

    void issueResize(Instance &inst);
    bool tryExecute(Op op);
    void finishResize(Instance &inst, Bytes oldAlloc, Seconds started);
    void drainStation();

    Simulator &sim_;
    Partition &part_;
    double watermark_;
    std::function<void()> notify_;
    std::deque<Op> station_;
    /** Instances with a parked (not yet executing) resize. */
    std::set<InstanceId> parkedResize_;
    std::uint64_t resizeOps_ = 0;
};

} // namespace slinfer

#endif // SLINFER_CORE_MEMORY_SUBSYSTEM_HH
