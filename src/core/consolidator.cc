#include "core/consolidator.hh"

#include <algorithm>

#include "common/log.hh"
#include "core/controller.hh"

namespace slinfer
{

Consolidator::Consolidator(SlinferController &ctl) : ctl_(ctl)
{
}

void
Consolidator::orderLargestBatchFirst(std::vector<Instance *> &insts)
{
    std::stable_sort(insts.begin(), insts.end(),
                     [](const Instance *a, const Instance *b) {
                         return a->batchSize() > b->batchSize();
                     });
}

bool
Consolidator::planVictims(Instance *grower, Request *req, VictimPlan &plan)
{
    Partition *part = grower->primary;
    Seconds now = ctl_.sim_.now();

    // Preemption candidates: colocated, strictly smaller batch,
    // resizable, not mid-operation. Smallest batch first so large
    // neighbors are never disintegrated (§VIII-A).
    std::vector<Instance *> victims;
    for (Instance *v : part->instances) {
        if (v == grower || v->state != InstanceState::Active)
            continue;
        if (v->staticKv || v->resizeInFlight)
            continue;
        if (v->batchSize() >= grower->batchSize())
            continue;
        victims.push_back(v);
    }
    std::stable_sort(victims.begin(), victims.end(),
                     [](const Instance *a, const Instance *b) {
                         return a->batchSize() < b->batchSize();
                     });

    std::set<const Instance *> excluded;
    plan.victims.clear();
    plan.moves.clear();
    ModelEntry &me = ctl_.models_[req->model];

    for (Instance *v : victims) {
        excluded.insert(v);
        plan.victims.push_back(v);

        // Every displaced request must fit somewhere else and still
        // meet its SLO (validated per destination).
        bool movable = true;
        std::vector<std::pair<Request *, Instance *>> moves;
        std::vector<Request *> displaced = v->prefillQueue;
        displaced.insert(displaced.end(), v->decodeBatch.begin(),
                         v->decodeBatch.end());
        for (Request *r : displaced) {
            Instance *dest = nullptr;
            for (Instance *cand :
                 ctl_.models_[r->model].instances) {
                if (cand == v || excluded.count(cand))
                    continue;
                if (cand->state != InstanceState::Active || cand->staticKv)
                    continue;
                if (cand->draining || cand->primary->failed)
                    continue; // being drained by an intervention
                if (cand->role != InstanceRole::Unified)
                    continue;
                Partition *cp = cand->primary;
                if (!ctl_.shadow_.canAdmit(*cp, cand, *r, now,
                                           ctl_.partBusyUntil(cp),
                                           excluded))
                    continue;
                auto mplan = ctl_.subsystemFor(cp).planAdmit(
                    *cand, *r, ctl_.models_[r->model].avgOutput);
                if (!mplan.ok)
                    continue;
                dest = cand;
                break;
            }
            if (!dest) {
                movable = false;
                break;
            }
            moves.emplace_back(r, dest);
        }
        if (!movable)
            return false; // more victims only add more displaced load

        plan.moves.insert(plan.moves.end(), moves.begin(), moves.end());

        // With this victim set gone, does the grower pass validation?
        if (!ctl_.shadow_.canAdmit(*part, grower, *req, now,
                                   ctl_.partBusyUntil(part), excluded))
            continue;
        // Memory: budget must fit once the victims' footprints vanish.
        Bytes victim_foot = 0;
        for (const Instance *vv : plan.victims)
            victim_foot += vv->model.weightBytes() + vv->kvTarget;
        MemorySubsystem &sub = ctl_.subsystemFor(part);
        Bytes require = sub.requiredBytes(*grower, req, me.avgOutput);
        Bytes head = sub.committed() - victim_foot - grower->kvTarget;
        if (head + require > sub.capacity())
            continue;
        return true;
    }
    return false;
}

void
Consolidator::execute(Instance *grower, Request *req,
                      const VictimPlan &plan)
{
    // Displace the victims' requests first (recompute-style migration:
    // the destination re-prefills the full context, as with vLLM's
    // recompute preemption).
    for (const auto &[r, dest] : plan.moves) {
        Instance *src = nullptr;
        for (Instance *v : plan.victims) {
            if (r->instance == v->id) {
                src = v;
                break;
            }
        }
        if (src) {
            src->removeRequest(r);
            src->kv.release(r->kvReserved);
            r->kvReserved = 0;
        }
        ++r->migrations;
        auto mplan = ctl_.subsystemFor(dest->primary)
                         .planAdmit(*dest, *r,
                                    ctl_.models_[r->model].avgOutput);
        if (mplan.ok)
            ctl_.subsystemFor(dest->primary).commitPlan(*dest, mplan);
        r->state = RequestState::Queued;
        ctl_.admitTo(r, dest);
    }
    // Reclaim the victims immediately: their memory funds the scale-up.
    for (Instance *v : plan.victims) {
        ctl_.cancelKeepAlive(v);
        if (v->loadSize() != 0)
            panic("Consolidator: victim still owns requests");
        ctl_.doUnload(v);
    }
    ++ctl_.preemptions_;
    ++executed_;

    // Finally admit the new request to the grown instance.
    auto plan2 = ctl_.subsystemFor(grower->primary)
                     .planAdmit(*grower, *req,
                                ctl_.models_[req->model].avgOutput);
    if (plan2.ok)
        ctl_.subsystemFor(grower->primary).commitPlan(*grower, plan2);
    ctl_.admitTo(req, grower);
}

bool
Consolidator::tryPreemptFor(Request *req)
{
    ModelEntry &me = ctl_.models_[req->model];
    std::vector<Instance *> growers;
    for (Instance *inst : me.instances) {
        if (inst->state != InstanceState::Active || inst->staticKv)
            continue;
        if (inst->draining || inst->primary->failed)
            continue; // being drained by an intervention
        if (inst->role != InstanceRole::Unified)
            continue;
        growers.push_back(inst);
    }
    orderLargestBatchFirst(growers);
    for (Instance *grower : growers) {
        VictimPlan plan;
        if (planVictims(grower, req, plan)) {
            execute(grower, req, plan);
            return true;
        }
    }
    return false;
}

} // namespace slinfer
