#include "core/quantifier.hh"

#include <algorithm>

#include "common/log.hh"

namespace slinfer
{

void
Quantifier::profile(const HardwareSpec &hw, const ModelSpec &m,
                    int maxBatch)
{
    ProfileTable t;
    for (Tokens len = 16; len <= m.maxContext; len *= 2)
        t.lenGrid.push_back(len);
    if (t.lenGrid.empty() || t.lenGrid.back() != m.maxContext)
        t.lenGrid.push_back(m.maxContext);
    for (int b = 1; b <= maxBatch; b *= 2)
        t.batchGrid.push_back(b);

    // "Measure" the grid. In the real system each point is a short
    // on-hardware run; here the analytic model plays the hardware.
    for (Tokens len : t.lenGrid)
        t.prefill.push_back(PerfModel::prefillTime(hw, m, len));
    t.decode.resize(t.batchGrid.size());
    for (std::size_t bi = 0; bi < t.batchGrid.size(); ++bi) {
        for (Tokens len : t.lenGrid) {
            t.decode[bi].push_back(
                PerfModel::decodeTime(hw, m, t.batchGrid[bi], len));
        }
    }
    auto [cell, inserted] =
        tables_.emplace(std::make_pair(hw.name, m.name),
                        std::make_unique<ProfileTable>());
    (void)inserted; // a re-profile overwrites the existing table
    ProfileTable &slot = **cell;
    slot = std::move(t);
    // A refresh must not leave a memo entry pointing at stale data
    // conceptually (the address is stable, but keep the semantics
    // obvious): re-point any matching entry.
    for (Memo &memo : memo_) {
        if (memo.table && memo.hw == hw.name && memo.model == m.name)
            memo.table = &slot;
    }
}

const Quantifier::ProfileTable *
Quantifier::find(const HardwareSpec &hw, const ModelSpec &m) const
{
    for (const Memo &memo : memo_) {
        if (memo.table && memo.hw == hw.name && memo.model == m.name)
            return memo.table;
    }
    const std::unique_ptr<ProfileTable> *cell =
        tables_.find(std::make_pair(std::string_view(hw.name),
                                    std::string_view(m.name)));
    if (!cell)
        return nullptr;
    Memo &slot = memo_[memoNext_];
    memoNext_ = (memoNext_ + 1) % memo_.size();
    slot.hw = hw.name;
    slot.model = m.name;
    slot.table = cell->get();
    return slot.table;
}

bool
Quantifier::profiled(const HardwareSpec &hw, const ModelSpec &m) const
{
    return find(hw, m) != nullptr;
}

const Quantifier::ProfileTable &
Quantifier::tableFor(const HardwareSpec &hw, const ModelSpec &m) const
{
    const ProfileTable *t = find(hw, m);
    if (!t)
        panic("Quantifier: pair not profiled: " + hw.name + "|" + m.name);
    return *t;
}

namespace
{

/**
 * Find the bracketing indices (lo, hi) and interpolation weight for
 * value `x` in the sorted grid `grid`. Clamps outside the grid.
 */
template <typename T>
void
bracket(const std::vector<T> &grid, double x, std::size_t &lo,
        std::size_t &hi, double &w)
{
    if (x <= static_cast<double>(grid.front())) {
        lo = hi = 0;
        w = 0.0;
        return;
    }
    if (x >= static_cast<double>(grid.back())) {
        lo = hi = grid.size() - 1;
        w = 0.0;
        return;
    }
    std::size_t i = 1;
    while (static_cast<double>(grid[i]) < x)
        ++i;
    lo = i - 1;
    hi = i;
    double g_lo = static_cast<double>(grid[lo]);
    double g_hi = static_cast<double>(grid[hi]);
    w = (x - g_lo) / (g_hi - g_lo);
}

} // namespace

Seconds
Quantifier::prefillEstimate(const HardwareSpec &hw, const ModelSpec &m,
                            Tokens inputLen) const
{
    const ProfileTable &t = tableFor(hw, m);
    std::size_t lo, hi;
    double w;
    bracket(t.lenGrid, static_cast<double>(inputLen), lo, hi, w);
    return t.prefill[lo] * (1.0 - w) + t.prefill[hi] * w;
}

Seconds
Quantifier::decodeEstimate(const HardwareSpec &hw, const ModelSpec &m,
                           int batchSize, Tokens avgLen) const
{
    const ProfileTable &t = tableFor(hw, m);
    std::size_t bl, bh, ll, lh;
    double wb, wl;
    bracket(t.batchGrid, static_cast<double>(batchSize), bl, bh, wb);
    bracket(t.lenGrid, static_cast<double>(avgLen), ll, lh, wl);
    double v00 = t.decode[bl][ll];
    double v01 = t.decode[bl][lh];
    double v10 = t.decode[bh][ll];
    double v11 = t.decode[bh][lh];
    double v0 = v00 * (1.0 - wl) + v01 * wl;
    double v1 = v10 * (1.0 - wl) + v11 * wl;
    double est = v0 * (1.0 - wb) + v1 * wb;
    // Batch sizes beyond the profiled grid extrapolate linearly on the
    // per-request marginal cost of the last grid interval.
    if (batchSize > t.batchGrid.back() && t.batchGrid.size() >= 2) {
        int top = t.batchGrid.back();
        int prev = t.batchGrid[t.batchGrid.size() - 2];
        double slope =
            (t.decode[t.batchGrid.size() - 1][ll] -
             t.decode[t.batchGrid.size() - 2][ll]) /
            static_cast<double>(top - prev);
        est += slope * static_cast<double>(batchSize - top);
    }
    return est;
}

std::size_t
Quantifier::sampleCount(const HardwareSpec &hw, const ModelSpec &m) const
{
    const ProfileTable &t = tableFor(hw, m);
    return t.prefill.size() + t.batchGrid.size() * t.lenGrid.size();
}

} // namespace slinfer
