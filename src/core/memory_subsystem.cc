#include "core/memory_subsystem.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "engine/loader.hh"
#include "hw/memcost_model.hh"

namespace slinfer
{

MemorySubsystem::MemorySubsystem(Simulator &sim, Partition &partition,
                                 double watermark,
                                 std::function<void()> notify,
                                 ClusterIndex *index, bool oracleScans,
                                 obs::Counters *ctr,
                                 obs::TraceRecorder *trace,
                                 obs::PhaseProfiler *prof,
                                 obs::AnatomyLedger *anatomy)
    : sim_(sim), part_(partition), watermark_(watermark),
      notify_(std::move(notify)), index_(index), oracle_(oracleScans),
      ctr_(ctr), trace_(trace), prof_(prof), anat_(anatomy)
{
}

Bytes
MemorySubsystem::committedScan() const
{
    Bytes total = 0;
    for (const Instance *inst : part_.instances) {
        // Optimistic semantics: an unloading instance's final footprint
        // is zero (its physical release is covered by the pessimistic
        // execution checks).
        if (inst->state == InstanceState::Reclaimed ||
            inst->state == InstanceState::Unloading)
            continue;
        total += inst->model.weightBytes() + inst->kvTarget;
    }
    return total;
}

void
MemorySubsystem::setKvTarget(Instance &inst, Bytes target)
{
    obs::bump(ctr_, obs::kKvTargetChanges);
    if (index_)
        index_->onKvTargetChanged(inst, inst.kvTarget, target);
    inst.kvTarget = target;
}

Bytes
MemorySubsystem::requiredBytes(const Instance &inst, const Request *extra,
                               double avgOut) const
{
    double tokens = 0.0;
    auto count = [&](const Request *r) {
        tokens += static_cast<double>(r->inputLen) +
                  std::max(static_cast<double>(r->generated), avgOut);
    };
    for (const Request *r : inst.prefillQueue)
        count(r);
    for (const Request *r : inst.decodeBatch)
        count(r);
    if (extra)
        count(extra);
    double min_tokens = static_cast<double>(inst.model.maxContext);
    double need = std::max(tokens, min_tokens);
    return static_cast<Bytes>(need) * inst.model.kvBytesPerToken();
}

MemorySubsystem::Plan
MemorySubsystem::planAdmit(const Instance &inst, const Request &req,
                           double avgOut) const
{
    Plan plan;
    Bytes require = requiredBytes(inst, &req, avgOut);
    if (inst.kvTarget >= require) {
        plan.ok = true;
        plan.target = inst.kvTarget;
        return plan;
    }
    Bytes head = committed() - inst.kvTarget; // budget minus our KV share
    Bytes recommend =
        static_cast<Bytes>(static_cast<double>(require) *
                           (1.0 + watermark_));
    if (head + recommend <= capacity()) {
        plan.ok = true;
        plan.target = recommend;
        plan.needsResize = true;
        return plan;
    }
    // §VII-D: compromise down to the bare requirement.
    if (head + require <= capacity()) {
        plan.ok = true;
        plan.target = require;
        plan.needsResize = true;
        plan.compromise = true;
        return plan;
    }
    return plan;
}

void
MemorySubsystem::commitPlan(Instance &inst, const Plan &plan)
{
    if (!plan.ok)
        panic("MemorySubsystem: committing a failed plan");
    if (!plan.needsResize)
        return;
    setKvTarget(inst, plan.target);
    issueResize(inst);
}

bool
MemorySubsystem::canPlace(Bytes weights, Bytes kvInit) const
{
    return canPlaceWith(committed(), weights, kvInit);
}

void
MemorySubsystem::issueResize(Instance &inst)
{
    ++resizeOps_;
    obs::bump(ctr_, obs::kKvResizeOps);
    if (!inst.memResident)
        return; // the pending load reads kvTarget when it executes
    if (inst.resizeInFlight || parkedResize_.count(inst.id))
        return; // the running/parked op picks up the new target
    Op op{OpKind::Resize, &inst, nullptr};
    if (!tryExecute(op)) {
        parkedResize_.insert(inst.id);
        station_.push_back(std::move(op));
    }
}

bool
MemorySubsystem::tryExecute(Op &op)
{
    obs::ScopedPhase phase(prof_, obs::kPhaseMemoryOp);
    Instance &inst = *op.inst;
    if (op.kind == OpKind::Resize) {
        if (inst.state == InstanceState::Reclaimed ||
            inst.state == InstanceState::Unloading) {
            return true; // stale op; drop it
        }
        if (!inst.memResident)
            return true; // superseded by the still-pending load
        Bytes target = inst.kvTarget;
        Bytes old_alloc = inst.kv.allocBytes();
        if (target == old_alloc)
            return true; // became a no-op
        // Never shrink below live pages.
        Bytes floor = PagedKvCache::roundedTokens(inst.kv.usedTokens()) *
                      inst.model.kvBytesPerToken();
        if (floor > target) {
            target = floor;
            setKvTarget(inst, target); // keep the optimistic budget honest
            if (target == old_alloc)
                return true;
        }
        // Pessimistic execution check: the transient holds old + new.
        if (!part_.mem.canHold(target))
            return false; // park in the reservation station
        if (!part_.mem.tryHold(target))
            panic("MemorySubsystem: hold failed after check");
        inst.resizeInFlight = true;
        if (anat_) {
            // Waiting requests stall for the resize (the ledger skips
            // any that are mid-iteration or cold-starting).
            for (Request *r : inst.prefillQueue)
                anat_->onResizeStart(*r, sim_.now());
            for (Request *r : inst.decodeBatch)
                anat_->onResizeStart(*r, sim_.now());
        }
        Seconds dur =
            MemCostModel::kvResizeTime(part_.spec, old_alloc, target);
        if (trace_)
            trace_->complete(obs::kCatMemory, "kv-resize", sim_.now(),
                             dur, obs::kPidCluster,
                             static_cast<int>(part_.viewPos), "bytes",
                             static_cast<double>(target));
        Seconds started = sim_.now();
        Bytes committed_target = target;
        sim_.schedule(dur, [this, &inst, old_alloc, committed_target,
                            started] {
            inst.kv.setAllocBytes(committed_target);
            part_.mem.release(old_alloc);
            finishResize(inst, old_alloc, started);
        });
        return true;
    }

    // Load: physically hold weights + the initial KV allocation, then
    // stream the checkpoint in.
    Bytes footprint = inst.model.weightBytes() + inst.kvTarget;
    if (!part_.mem.canHold(footprint))
        return false; // park until a release lands
    if (!part_.mem.tryHold(footprint))
        panic("MemorySubsystem: load hold failed after check");
    inst.memResident = true;
    inst.kv.setAllocBytes(inst.kvTarget);
    if (trace_)
        trace_->complete(obs::kCatMemory, "load", sim_.now(),
                         Loader::loadTime(part_.spec, inst.model),
                         obs::kPidCluster,
                         static_cast<int>(part_.viewPos), "instance",
                         static_cast<double>(inst.id));
    sim_.schedule(Loader::loadTime(part_.spec, inst.model),
                  [this, &inst, done = std::move(op.done)]() mutable {
                      inst.state = InstanceState::Active;
                      inst.activeAt = sim_.now();
                      if (index_)
                          index_->onInstanceActivated(inst);
                      if (anat_) {
                          for (Request *r : inst.prefillQueue)
                              anat_->onInstanceActive(*r, sim_.now());
                          for (Request *r : inst.decodeBatch)
                              anat_->onInstanceActive(*r, sim_.now());
                      }
                      // Admissions during the load may have raised the
                      // committed KV target past what the load held.
                      if (inst.kvTarget != inst.kv.allocBytes())
                          issueResize(inst);
                      if (done)
                          done();
                      notify_();
                  });
    return true;
}

void
MemorySubsystem::finishResize(Instance &inst, Bytes oldAlloc,
                              Seconds started)
{
    (void)oldAlloc;
    inst.resizeInFlight = false;
    Seconds blocked = sim_.now() - started;
    inst.scalingTime += blocked;
    if (anat_) {
        // Unstall before any coalesced follow-up op re-stalls them.
        for (Request *r : inst.prefillQueue)
            anat_->onResizeEnd(*r, sim_.now());
        for (Request *r : inst.decodeBatch)
            anat_->onResizeEnd(*r, sim_.now());
    }
    // The oracle scaling sum only sees instances with activeAt >= 0;
    // pre-activation accruals are folded in at activation.
    if (index_ && inst.activeAt >= 0)
        index_->addScalingSeconds(blocked);
    // Coalesced follow-up demand issued while this op ran.
    if (inst.kvTarget != inst.kv.allocBytes() &&
        inst.state != InstanceState::Reclaimed &&
        inst.state != InstanceState::Unloading) {
        Op op{OpKind::Resize, &inst, nullptr};
        if (!tryExecute(op)) {
            parkedResize_.insert(inst.id);
            station_.push_back(std::move(op));
        }
    }
    drainStation();
    notify_();
}

void
MemorySubsystem::beginLoad(Instance &inst, DoneFn loaded)
{
    obs::ScopedPhase phase(prof_, obs::kPhaseMemoryOp);
    inst.loadDuration = Loader::loadTime(part_.spec, inst.model);
    Op op{OpKind::Load, &inst, std::move(loaded)};
    if (!tryExecute(op))
        station_.push_back(std::move(op));
}

void
MemorySubsystem::beginUnload(Instance &inst, DoneFn unloaded)
{
    obs::ScopedPhase phase(prof_, obs::kPhaseMemoryOp);
    if (inst.resizeInFlight)
        panic("MemorySubsystem: unload during resize");
    if (index_) {
        index_->onInstanceUnloading(inst);
        if (inst.state == InstanceState::Active)
            index_->onInstanceDeactivated(inst);
    }
    inst.state = InstanceState::Unloading;
    parkedResize_.erase(inst.id);
    Bytes footprint = inst.model.weightBytes() + inst.kv.allocBytes();
    if (trace_)
        trace_->complete(
            obs::kCatMemory, "unload", sim_.now(),
            MemCostModel::weightUnloadTime(part_.spec, inst.model),
            obs::kPidCluster, static_cast<int>(part_.viewPos),
            "instance", static_cast<double>(inst.id));
    sim_.schedule(MemCostModel::weightUnloadTime(part_.spec, inst.model),
                  [this, &inst, footprint,
                   done = std::move(unloaded)]() mutable {
                      inst.state = InstanceState::Reclaimed;
                      inst.reclaimedAt = sim_.now();
                      if (index_)
                          index_->onInstanceReclaimed(inst);
                      part_.mem.release(footprint);
                      if (done)
                          done();
                      drainStation();
                      notify_();
                  });
}

bool
MemorySubsystem::onRequestComplete(Instance &inst, double avgOut)
{
    if (inst.state != InstanceState::Active)
        return false;
    Bytes require = requiredBytes(inst, nullptr, avgOut);
    Bytes recommend = static_cast<Bytes>(
        static_cast<double>(require) * (1.0 + watermark_));
    // Lazy scale-down: only when even the inflated recommendation sits
    // below the current target.
    if (static_cast<double>(recommend) * (1.0 + watermark_) <
        static_cast<double>(inst.kvTarget)) {
        setKvTarget(inst, recommend);
        issueResize(inst);
        return true;
    }
    return false;
}

MemorySubsystem::GrowResult
MemorySubsystem::tryEmergencyGrow(Instance &inst, double avgOut)
{
    obs::bump(ctr_, obs::kEmergencyGrows);
    Bytes require = requiredBytes(inst, nullptr, avgOut);
    Bytes usage_floor =
        (PagedKvCache::roundedTokens(inst.kv.usedTokens()) +
         PagedKvCache::kBlockTokens *
             static_cast<Tokens>(inst.loadSize() + 1)) *
        inst.model.kvBytesPerToken();
    Bytes need = std::max(require, usage_floor);
    if (need <= inst.kvTarget && inst.kvTarget > inst.kv.allocBytes()) {
        // Growth already committed; progress resumes when it lands —
        // unless the op is stuck in the reservation station.
        return parkedResize_.count(inst.id) ? GrowResult::Parked
                                            : GrowResult::Sufficient;
    }
    Bytes head = committed() - inst.kvTarget;
    Bytes recommend = static_cast<Bytes>(
        static_cast<double>(need) * (1.0 + watermark_));
    Bytes target = 0;
    if (head + recommend <= capacity())
        target = recommend;
    else if (head + need <= capacity())
        target = need;
    else
        return GrowResult::Rejected;
    if (target <= inst.kvTarget)
        return GrowResult::Rejected;
    setKvTarget(inst, target);
    issueResize(inst);
    if (inst.resizeInFlight)
        return GrowResult::Executing;
    return parkedResize_.count(inst.id) ? GrowResult::Parked
                                        : GrowResult::Sufficient;
}

bool
MemorySubsystem::abortParkedLoad(Instance &inst)
{
    if (inst.memResident)
        return false; // the load executed; an unload must release it
    for (auto it = station_.begin(); it != station_.end(); ++it) {
        if (it->kind != OpKind::Load || it->inst != &inst)
            continue;
        // The load never executed: nothing is physically held, but the
        // instance still counts toward the optimistic budget.
        if (index_)
            index_->onInstanceUnloading(inst);
        inst.state = InstanceState::Reclaimed;
        inst.reclaimedAt = sim_.now();
        if (index_)
            index_->onInstanceReclaimed(inst);
        station_.erase(it);
        return true;
    }
    return false;
}

void
MemorySubsystem::drainStation()
{
    obs::ScopedPhase phase(prof_, obs::kPhaseMemoryOp);
    for (auto it = station_.begin(); it != station_.end();) {
        if (tryExecute(*it)) {
            if (it->kind == OpKind::Resize)
                parkedResize_.erase(it->inst->id);
            it = station_.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace slinfer
