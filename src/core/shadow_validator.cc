#include "core/shadow_validator.hh"

#include <algorithm>
#include <limits>

namespace slinfer
{

ShadowValidator::ShadowValidator(const Quantifier &quant, ShadowConfig cfg)
    : quant_(quant), cfg_(cfg)
{
}

ShadowValidator::SimInst &
ShadowValidator::slotAt(std::size_t i) const
{
    if (i >= state_.size())
        state_.resize(i + 1);
    SimInst &s = state_[i];
    s.prefills.clear();
    s.decodeDeadlines.clear();
    s.decodedSinceCandidate = false;
    s.avgLen = 1.0;
    return s;
}

std::size_t
ShadowValidator::buildState(const Partition &part, Seconds now,
                            const std::set<const Instance *> &exclude) const
{
    std::size_t n = 0;
    int next_id = 0;
    for (const Instance *inst : part.instances) {
        if (exclude.count(inst))
            continue;
        if (inst->state == InstanceState::Reclaimed ||
            inst->state == InstanceState::Unloading ||
            inst->state == InstanceState::Draining) {
            continue;
        }
        SimInst &s = slotAt(n++);
        s.model = &inst->model;
        s.hw = &inst->execSpec;
        s.availAt = inst->state == InstanceState::Loading
                        ? inst->createdAt + inst->loadDuration
                        : now;
        for (const Request *r : inst->prefillQueue) {
            s.prefills.push_back({r->deadlineForNextToken(),
                                  r->contextLen(), false, next_id++});
        }
        for (const Request *r : inst->decodeBatch) {
            s.decodeDeadlines.push_back(
                {r->deadlineForNextToken(), next_id++});
        }
        s.avgLen = static_cast<double>(inst->avgContextLen());
    }
    return n;
}

bool
ShadowValidator::simulate(std::vector<SimInst> &v, std::size_t count,
                          Seconds start, bool collectDoomed) const
{
    Seconds t = start;
    bool candidate_present = false;
    for (std::size_t i = 0; i < count; ++i)
        for (const SimReq &p : v[i].prefills)
            if (p.isCandidate)
                candidate_present = true;
    bool candidate_prefilled = !candidate_present;

    auto is_exempt = [this](int id) {
        return std::binary_search(doomed_.begin(), doomed_.end(), id);
    };
    auto violate = [&](int id) {
        // Returns true when the violation should reject the admission.
        if (collectDoomed) {
            doomed_.push_back(id);
            return false;
        }
        return !is_exempt(id);
    };

    auto inst_min_deadline = [](const SimInst &si) {
        Seconds d = std::numeric_limits<Seconds>::infinity();
        for (const SimReq &p : si.prefills)
            d = std::min(d, p.deadline);
        for (const SimDecode &dd : si.decodeDeadlines)
            d = std::min(d, dd.deadline);
        return d;
    };

    for (int step = 0; step < cfg_.maxSteps; ++step) {
        // Termination: candidate prefilled, every prefill drained, and
        // every busy instance decoded at least once.
        if (candidate_prefilled) {
            bool all_ok = true;
            for (std::size_t i = 0; i < count; ++i) {
                const SimInst &si = v[i];
                if (!si.prefills.empty()) {
                    all_ok = false;
                    break;
                }
                if (!si.decodeDeadlines.empty() &&
                    !si.decodedSinceCandidate) {
                    all_ok = false;
                    break;
                }
            }
            if (all_ok)
                return true;
        }

        // Select the runnable instance with the most urgent request.
        SimInst *chosen = nullptr;
        Seconds best = std::numeric_limits<Seconds>::infinity();
        Seconds min_avail = std::numeric_limits<Seconds>::infinity();
        bool any_work = false;
        for (std::size_t i = 0; i < count; ++i) {
            SimInst &si = v[i];
            if (si.prefills.empty() && si.decodeDeadlines.empty())
                continue;
            any_work = true;
            min_avail = std::min(min_avail, si.availAt);
            if (si.availAt > t)
                continue;
            Seconds d = inst_min_deadline(si);
            if (d < best) {
                best = d;
                chosen = &si;
            }
        }
        if (!any_work)
            return true;
        if (!chosen) {
            t = std::max(t, min_avail); // wait for a load to finish
            continue;
        }

        // Which item within the chosen instance is most urgent?
        std::size_t pf_idx = 0;
        Seconds pf_best = std::numeric_limits<Seconds>::infinity();
        for (std::size_t i = 0; i < chosen->prefills.size(); ++i) {
            if (chosen->prefills[i].deadline < pf_best) {
                pf_best = chosen->prefills[i].deadline;
                pf_idx = i;
            }
        }
        Seconds dec_best = std::numeric_limits<Seconds>::infinity();
        for (const SimDecode &dd : chosen->decodeDeadlines)
            dec_best = std::min(dec_best, dd.deadline);

        if (pf_best <= dec_best) {
            SimReq req = chosen->prefills[pf_idx];
            Seconds dur = quant_.prefillEstimate(*chosen->hw,
                                                 *chosen->model, req.ctx) *
                          cfg_.overestimate;
            t += dur;
            if (t > req.deadline && violate(req.id))
                return false; // cases 1 / 2: prefill lands too late
            chosen->prefills.erase(chosen->prefills.begin() +
                                   static_cast<std::ptrdiff_t>(pf_idx));
            if (req.isCandidate)
                candidate_prefilled = true;
            // Joins the decode batch with the cumulative deadline.
            double n = static_cast<double>(chosen->decodeDeadlines.size());
            chosen->avgLen = (chosen->avgLen * n +
                              static_cast<double>(req.ctx)) /
                             (n + 1.0);
            chosen->decodeDeadlines.push_back(
                {std::max(req.deadline, t) + cfg_.tpotSlo, req.id});
        } else {
            int batch = static_cast<int>(chosen->decodeDeadlines.size());
            Seconds dur =
                quant_.decodeEstimate(*chosen->hw, *chosen->model, batch,
                                      static_cast<Tokens>(chosen->avgLen)) *
                cfg_.overestimate;
            t += dur;
            for (SimDecode &dd : chosen->decodeDeadlines) {
                if (t > dd.deadline && violate(dd.id))
                    return false; // case 2: existing request delayed
                dd.deadline += cfg_.tpotSlo;
            }
            chosen->avgLen += 1.0;
            chosen->decodedSinceCandidate = true;
        }
    }
    // Horizon exhausted with no (rejecting) violation observed.
    return true;
}

bool
ShadowValidator::twoPass(std::size_t count, Seconds start,
                         Seconds now) const
{
    ++evals_;
    // Baseline pass without the candidate: whatever violates anyway is
    // doomed and must not veto the admission. The baseline scratch
    // copy-assigns element-wise so inner buffers are recycled.
    if (baseline_.size() < count)
        baseline_.resize(count);
    for (std::size_t i = 0; i < count; ++i)
        baseline_[i] = state_[i];
    for (std::size_t i = 0; i < count; ++i) {
        SimInst &si = baseline_[i];
        si.prefills.erase(
            std::remove_if(si.prefills.begin(), si.prefills.end(),
                           [](const SimReq &p) { return p.isCandidate; }),
            si.prefills.end());
    }
    doomed_.clear();
    simulate(baseline_, count, start, /*collectDoomed=*/true);
    // A candidate whose own deadline has already passed (an evicted /
    // migrated request being re-placed) cannot be protected either; it
    // must still find a home, so its own lateness does not reject.
    for (std::size_t i = 0; i < count; ++i) {
        for (const SimReq &p : state_[i].prefills) {
            if (p.isCandidate && p.deadline < now)
                doomed_.push_back(p.id);
        }
    }
    std::sort(doomed_.begin(), doomed_.end());
    return simulate(state_, count, start, /*collectDoomed=*/false);
}

bool
ShadowValidator::aggregateDecodeFits(
    const Partition &part, const Instance *target, int extraOnTarget,
    Tokens extraLen, const std::set<const Instance *> &exclude) const
{
    Seconds total = 0.0;
    for (const Instance *inst : part.instances) {
        if (exclude.count(inst))
            continue;
        if (inst->state == InstanceState::Reclaimed ||
            inst->state == InstanceState::Unloading ||
            inst->state == InstanceState::Draining) {
            continue;
        }
        // Steady state: every admitted request is in the decode batch.
        int batch = inst->loadSize() + (inst == target ? extraOnTarget : 0);
        if (batch == 0)
            continue;
        Tokens total_ctx = inst->totalContext();
        for (const Request *r : inst->prefillQueue)
            total_ctx += r->contextLen();
        if (inst == target)
            total_ctx += extraLen * extraOnTarget;
        Tokens avg = std::max<Tokens>(1, total_ctx / batch);
        total += quant_.decodeEstimate(inst->execSpec, inst->model, batch,
                                       avg) *
                 cfg_.overestimate;
        if (total > cfg_.tpotSlo)
            return false;
    }
    return total <= cfg_.tpotSlo;
}

bool
ShadowValidator::canAdmit(const Partition &part, const Instance *target,
                          const Request &req, Seconds now,
                          Seconds partBusyUntil,
                          const std::set<const Instance *> &exclude) const
{
    if (!aggregateDecodeFits(part, target, 1, req.contextLen(), exclude))
        return false;

    std::size_t count = buildState(part, now, exclude);
    std::size_t live = 0;
    for (const Instance *inst : part.instances) {
        if (exclude.count(inst))
            continue;
        if (inst->state == InstanceState::Reclaimed ||
            inst->state == InstanceState::Unloading ||
            inst->state == InstanceState::Draining) {
            continue;
        }
        if (inst == target) {
            state_[live].prefills.push_back({req.deadlineForNextToken(),
                                             req.contextLen(), true, -1});
        }
        ++live;
    }
    return twoPass(count, std::max(now, partBusyUntil), now);
}

bool
ShadowValidator::canAdmitNew(const Partition &part, const ModelSpec &model,
                             const HardwareSpec &execSpec,
                             const Request &req, Seconds now,
                             Seconds partBusyUntil, Seconds readyAt) const
{
    // Case 3 with the new instance's own decode stream included.
    if (!aggregateDecodeFits(part, nullptr, 0, 0))
        return false;
    Seconds own = quant_.decodeEstimate(execSpec, model, 1,
                                        req.contextLen()) *
                  cfg_.overestimate;
    Seconds others = 0.0;
    for (const Instance *inst : part.instances) {
        if (inst->state == InstanceState::Reclaimed ||
            inst->state == InstanceState::Unloading)
            continue;
        int batch = inst->loadSize();
        if (batch == 0)
            continue;
        others += quant_.decodeEstimate(inst->execSpec, inst->model, batch,
                                        inst->avgContextLen()) *
                  cfg_.overestimate;
    }
    if (own + others > cfg_.tpotSlo)
        return false;

    std::size_t count = buildState(part, now, {});
    SimInst &cand = slotAt(count);
    cand.model = &model;
    cand.hw = &execSpec;
    cand.availAt = readyAt;
    // Cold-started requests receive a grace window equal to the load
    // time, mirroring the runtime accounting.
    Seconds grace = std::max<Seconds>(0.0, readyAt - now);
    cand.prefills.push_back({req.deadlineForNextToken() + grace,
                             req.contextLen(), true, -1});
    cand.avgLen = static_cast<double>(req.contextLen());
    return twoPass(count + 1, std::max(now, partBusyUntil), now);
}

} // namespace slinfer
