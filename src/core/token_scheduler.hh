/**
 * @file
 * Token-level scheduler (paper §VI-A).
 *
 * One TokenScheduler drives one partition. At each cycle it selects one
 * instance and runs exactly one iteration — the prefill of a single
 * request or one decode step for the instance's whole batch — then
 * repeats, keeping the node busy with no idle gaps while work exists.
 *
 * Two selection policies:
 *  - Headroom (SLINFER): the instance whose most urgent request has the
 *    smallest headroom (Eq. 1) runs next; within the instance, the
 *    urgent request determines whether a prefill or a decode runs.
 *  - FifoPrefillFirst (vLLM-style, used by the baselines): pending
 *    prefills run before decode steps, in arrival order.
 *
 * Ground-truth iteration latency is the roofline model times lognormal
 * noise; SLINFER's *decisions* elsewhere only ever see the quantifier's
 * interpolated estimates.
 *
 * Lockstep mode (sim/lockstep.hh): when the simulator runs the
 * δ-quantized parallel engine, each scheduler is bound to a lane and
 * becomes that lane's chain. Iterations then advance on the lane's
 * private clock instead of global events, and every externally
 * visible side effect — stats, busy-seconds, trace spans, anatomy
 * hooks, completion/shortage/PD callbacks — is staged into the lane
 * buffer and replayed at the window boundary (replayRecord). The
 * serial code path is byte-for-byte untouched when no lane is bound.
 */

#ifndef SLINFER_CORE_TOKEN_SCHEDULER_HH
#define SLINFER_CORE_TOKEN_SCHEDULER_HH

#include <functional>
#include <vector>

#include "common/rng.hh"
#include "core/cluster_index.hh"
#include "engine/instance.hh"
#include "metrics/cluster_stats.hh"
#include "obs/anatomy.hh"
#include "obs/trace.hh"
#include "sim/lockstep.hh"
#include "sim/simulator.hh"

namespace slinfer
{

enum class SchedPolicy { Headroom, FifoPrefillFirst };

class TokenScheduler : public LockstepClient
{
  public:
    struct Callbacks
    {
        /** A request finished all of its tokens. */
        std::function<void(Request *, Instance *)> onRequestDone;
        /** First token out (TTFT known). May be null. */
        std::function<void(Request *, Instance *)> onFirstToken;
        /**
         * PD disaggregation hook: called when a prefill completes on a
         * PrefillOnly instance; return true if the controller took over
         * the request (it will not join the local batch). May be null.
         */
        std::function<bool(Request *, Instance *)> routeAfterPrefill;
        /** KV allocation too small to make progress on this instance. */
        std::function<void(Instance *)> onKvShortage;
    };

    TokenScheduler(Simulator &sim, Partition &partition, SchedPolicy policy,
                   double noiseSigma, Rng rng, Callbacks cbs,
                   ClusterStats *stats, ClusterIndex *index = nullptr,
                   obs::TraceRecorder *trace = nullptr,
                   obs::AnatomyLedger *anatomy = nullptr);

    /** Start an iteration if the partition is idle and work exists. */
    void kick();

    /** Time the in-flight iteration finishes (== now when idle). */
    Seconds busyUntil() const { return busyUntil_; }

    // ---- LockstepClient (sim/lockstep.hh) --------------------------

    void bindLane(LockstepLane *lane) override { lane_ = lane; }
    void runPending(Seconds upTo) override;
    void replayRecord(const StagedRec &rec) override;

    /** True when bound to a lockstep lane. */
    bool lockstep() const { return lane_ != nullptr; }

  private:
    struct Pick
    {
        Instance *inst = nullptr;
        Request *prefill = nullptr; ///< nullptr selects a decode step
    };

    Pick pickNext(std::vector<Instance *> &shortages) const;
    void runPrefill(Instance *inst, Request *req);
    void runDecode(Instance *inst);
    void finishIteration();
    double noise();

    /** The scheduler's clock: the lane's private time in lockstep
     *  mode, the global simulator clock otherwise. */
    Seconds timeNow() const
    {
        return lane_ ? lane_->localNow : sim_.now();
    }
    /** Arm finishIteration() after `dur`: the lane's single pending
     *  slot in lockstep mode, a simulator event otherwise. */
    void scheduleFinish(Seconds dur);
    /** Staging shorthands (lockstep mode only). */
    StagedRec baseRec(StagedRec::Kind kind) const;
    void stageAnat(StagedRec::Kind kind, Request *req, bool flag);

    Simulator &sim_;
    Partition &part_;
    SchedPolicy policy_;
    double sigma_;
    Rng rng_;
    Callbacks cbs_;
    ClusterStats *stats_;
    /** Feeds the controller's running busy-seconds aggregates. */
    ClusterIndex *index_;
    /** Flight-recorder span sink (null = tracing off). */
    obs::TraceRecorder *trace_;
    /** Latency-anatomy ledger (null = attribution off). */
    obs::AnatomyLedger *anat_;
    /** Lockstep lane (null = serial mode). */
    LockstepLane *lane_ = nullptr;
    Seconds busyUntil_ = 0.0;

    // In-flight iteration state (one iteration per partition at a time).
    Instance *curInst_ = nullptr;
    Request *curPrefill_ = nullptr;
    std::vector<Request *> curBatch_;
    /**
     * Scratch the finishing iteration swaps curBatch_ into, so its
     * capacity is recycled instead of freed every decode iteration.
     * Only finishIteration touches it, and finishIteration never
     * nests (it only runs from a scheduled event), so reentrant
     * kick()/runDecode() calls from the completion callbacks cannot
     * clobber it.
     */
    std::vector<Request *> doneBatch_;
    /** Scratch for completed-request callbacks, recycled likewise. */
    std::vector<Request *> finished_;
};

} // namespace slinfer

#endif // SLINFER_CORE_TOKEN_SCHEDULER_HH
