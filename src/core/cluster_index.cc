#include "core/cluster_index.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace slinfer
{

ClusterIndex::ClusterIndex(
    const std::vector<std::unique_ptr<Node>> &nodes)
    : nodes_(nodes)
{
    rebuildTopology();
}

void
ClusterIndex::rebuildTopology()
{
    cpuFirst_.clear();
    gpuOnly_.clear();
    cpuSpec_ = nullptr;
    gpuCap_ = 0;
    free_[0].clear();
    free_[1].clear();

    std::vector<Partition *> cpu, gpu;
    for (const auto &node : nodes_) {
        for (const auto &part : node->partitions())
            (node->isCpu() ? cpu : gpu).push_back(part.get());
    }
    if (!cpu.empty())
        cpuSpec_ = &cpu.front()->spec;
    if (!gpu.empty())
        gpuCap_ = gpu.front()->mem.capacity();

    cpuFirst_ = cpu;
    cpuFirst_.insert(cpuFirst_.end(), gpu.begin(), gpu.end());
    gpuOnly_ = std::move(gpu);

    for (std::uint32_t pos = 0; pos < cpuFirst_.size(); ++pos) {
        Partition *p = cpuFirst_[pos];
        p->viewPos = pos;
        Bytes freeBytes = p->mem.capacity() - p->committedBytes;
        free_[p->spec.kind == HwKind::Cpu ? 0 : 1].insert(
            {freeBytes, pos});
    }
}

void
ClusterIndex::moveFreeKey(const Partition &part, Bytes oldFree)
{
    auto &set = free_[part.spec.kind == HwKind::Cpu ? 0 : 1];
    set.erase({oldFree, part.viewPos});
    // Failed partitions stay out of the free sets until restored;
    // their committed totals keep updating while residents drain.
    if (!part.failed) {
        set.insert({part.mem.capacity() - part.committedBytes,
                    part.viewPos});
    }
}

void
ClusterIndex::onPartitionFailed(const Partition &part)
{
    free_[part.spec.kind == HwKind::Cpu ? 0 : 1].erase(
        {part.mem.capacity() - part.committedBytes, part.viewPos});
}

void
ClusterIndex::onPartitionRestored(const Partition &part)
{
    free_[part.spec.kind == HwKind::Cpu ? 0 : 1].insert(
        {part.mem.capacity() - part.committedBytes, part.viewPos});
}

void
ClusterIndex::onInstanceAdded(const Instance &inst)
{
    Partition &p = *inst.primary;
    Bytes oldFree = p.mem.capacity() - p.committedBytes;
    p.committedBytes += inst.model.weightBytes() + inst.kvTarget;
    moveFreeKey(p, oldFree);
}

void
ClusterIndex::onKvTargetChanged(const Instance &inst, Bytes oldTarget,
                                Bytes newTarget)
{
    if (!counted(inst.state))
        return;
    Partition &p = *inst.primary;
    Bytes oldFree = p.mem.capacity() - p.committedBytes;
    p.committedBytes += newTarget;
    p.committedBytes -= oldTarget;
    moveFreeKey(p, oldFree);
}

void
ClusterIndex::onInstanceUnloading(const Instance &inst)
{
    Partition &p = *inst.primary;
    Bytes oldFree = p.mem.capacity() - p.committedBytes;
    p.committedBytes -= inst.model.weightBytes() + inst.kvTarget;
    moveFreeKey(p, oldFree);
}

void
ClusterIndex::onInstanceActivated(Instance &inst)
{
    active_.insert(&inst);
    ++liveCount_;
    liveActiveAtSum_ += inst.activeAt;
    // Resizes can execute while the load streams (admissions during
    // the load raise the target); the oracle's scaling sum only sees
    // an instance once activeAt >= 0, so fold pre-activation accruals
    // in here.
    scalingSeconds_ += inst.scalingTime;
}

void
ClusterIndex::onInstanceDeactivated(Instance &inst)
{
    active_.erase(&inst);
}

void
ClusterIndex::onInstanceReclaimed(const Instance &inst)
{
    if (inst.activeAt < 0)
        return;
    --liveCount_;
    liveActiveAtSum_ -= inst.activeAt;
    retiredUptime_ +=
        std::max<Seconds>(inst.busyTime + inst.scalingTime, 1e-9);
}

double
ClusterIndex::scalingOverheadFraction(Seconds now) const
{
    double uptime = retiredUptime_ +
                    (static_cast<double>(liveCount_) * now -
                     liveActiveAtSum_);
    return uptime > 0 ? scalingSeconds_ / uptime : 0.0;
}

double
ClusterIndex::kvUtilizationNow() const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const Instance *inst : active_) {
        if (inst->loadSize() == 0)
            continue;
        sum += inst->kv.utilization();
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

std::string
ClusterIndex::auditAgainst(
    const std::vector<std::unique_ptr<Instance>> &pool) const
{
    std::ostringstream err;
    // Per-partition committed totals and free-set keys.
    std::size_t freeCount[2] = {free_[0].size(), free_[1].size()};
    std::size_t partCount[2] = {0, 0};
    for (const auto &node : nodes_) {
        for (const auto &part : node->partitions()) {
            const Partition &p = *part;
            Bytes scan = 0;
            for (const Instance *inst : p.instances) {
                if (!counted(inst->state))
                    continue;
                scan += inst->model.weightBytes() + inst->kvTarget;
            }
            if (scan != p.committedBytes) {
                err << "partition " << p.node << "/" << p.index
                    << ": committedBytes " << p.committedBytes
                    << " != scan " << scan;
                return err.str();
            }
            int k = p.spec.kind == HwKind::Cpu ? 0 : 1;
            if (p.failed) {
                // Fenced partitions must be absent from the free sets.
                FreeKey key{p.mem.capacity() - p.committedBytes,
                            p.viewPos};
                if (free_[k].count(key)) {
                    err << "partition " << p.node << "/" << p.index
                        << ": failed but still in the free index";
                    return err.str();
                }
                continue;
            }
            ++partCount[k];
            FreeKey key{p.mem.capacity() - p.committedBytes, p.viewPos};
            if (!free_[k].count(key)) {
                err << "partition " << p.node << "/" << p.index
                    << ": free key (" << key.first << ", " << key.second
                    << ") missing from the index";
                return err.str();
            }
            if (partitionAt(p.viewPos) != &p) {
                err << "partition " << p.node << "/" << p.index
                    << ": viewPos " << p.viewPos << " does not map back";
                return err.str();
            }
        }
    }
    for (int k = 0; k < 2; ++k) {
        if (freeCount[k] != partCount[k]) {
            err << "free set " << k << " has " << freeCount[k]
                << " entries, cluster has " << partCount[k];
            return err.str();
        }
    }
    // Active registry vs the pool scan.
    auto it = active_.begin();
    for (const auto &inst : pool) {
        if (inst->state != InstanceState::Active)
            continue;
        if (it == active_.end() || *it != inst.get()) {
            err << "active registry diverges at instance " << inst->id;
            return err.str();
        }
        ++it;
    }
    if (it != active_.end()) {
        err << "active registry holds stale instance " << (*it)->id;
        return err.str();
    }
    return {};
}

} // namespace slinfer
