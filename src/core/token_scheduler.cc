#include "core/token_scheduler.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hh"
#include "hw/perf_model.hh"

namespace slinfer
{

TokenScheduler::TokenScheduler(Simulator &sim, Partition &partition,
                               SchedPolicy policy, double noiseSigma,
                               Rng rng, Callbacks cbs, ClusterStats *stats,
                               ClusterIndex *index,
                               obs::TraceRecorder *trace,
                               obs::AnatomyLedger *anatomy)
    : sim_(sim), part_(partition), policy_(policy), sigma_(noiseSigma),
      rng_(rng), cbs_(std::move(cbs)), stats_(stats), index_(index),
      trace_(trace), anat_(anatomy)
{
}

double
TokenScheduler::noise()
{
    if (sigma_ <= 0)
        return 1.0;
    return std::exp(sigma_ * rng_.normal());
}

namespace
{

/** Tokens of extra KV a decode step needs for this batch. */
Tokens
decodeGrowth(const Instance &inst)
{
    Tokens growth = 0;
    for (const Request *r : inst.decodeBatch) {
        Tokens need = PagedKvCache::roundedTokens(r->contextLen() + 1);
        if (need > r->kvReserved)
            growth += need - r->kvReserved;
    }
    return growth;
}

} // namespace

TokenScheduler::Pick
TokenScheduler::pickNext(std::vector<Instance *> &shortages) const
{
    Pick best;
    double best_key = std::numeric_limits<double>::infinity();
    // FifoPrefillFirst biases all prefills ahead of all decodes by
    // subtracting a large constant from their sort key.
    const double kPrefillBias = 1e12;

    for (Instance *inst : part_.instances) {
        if (!inst->runnable())
            continue;

        Pick cand;
        double key = std::numeric_limits<double>::infinity();

        if (policy_ == SchedPolicy::Headroom) {
            bool is_prefill = false;
            Request *urgent = inst->mostUrgent(timeNow(), is_prefill);
            if (!urgent)
                continue;
            if (is_prefill) {
                Tokens need =
                    PagedKvCache::roundedTokens(urgent->contextLen());
                if (inst->kv.canFit(need)) {
                    cand = {inst, urgent};
                    key = urgent->headroom(timeNow());
                } else {
                    shortages.push_back(inst);
                    // Fall back to decoding the existing batch.
                    if (!inst->decodeBatch.empty() &&
                        inst->kv.canFit(decodeGrowth(*inst))) {
                        cand = {inst, nullptr};
                        key = inst->minHeadroom(timeNow());
                    }
                }
            } else {
                if (inst->kv.canFit(decodeGrowth(*inst))) {
                    cand = {inst, nullptr};
                    key = urgent->headroom(timeNow());
                } else {
                    shortages.push_back(inst);
                }
            }
        } else { // FifoPrefillFirst
            Request *first_prefill = nullptr;
            for (Request *r : inst->prefillQueue) {
                if (!first_prefill || r->arrival < first_prefill->arrival)
                    first_prefill = r;
            }
            if (first_prefill &&
                inst->kv.canFit(PagedKvCache::roundedTokens(
                    first_prefill->contextLen()))) {
                cand = {inst, first_prefill};
                key = first_prefill->arrival - kPrefillBias;
            } else if (!inst->decodeBatch.empty()) {
                if (first_prefill)
                    shortages.push_back(inst);
                if (inst->kv.canFit(decodeGrowth(*inst))) {
                    cand = {inst, nullptr};
                    key = inst->minHeadroom(timeNow());
                } else {
                    shortages.push_back(inst);
                    cand = {};
                }
            } else if (first_prefill) {
                shortages.push_back(inst);
            }
        }

        if (cand.inst && key < best_key) {
            best = cand;
            best_key = key;
        }
    }
    return best;
}

void
TokenScheduler::kick()
{
    if (part_.busy)
        return;
    // A kick from controller context (boundary replay, intervention,
    // memory-op completion) starts the chain at the engine's control
    // anchor — the covering grid boundary — so everything it stages
    // is stamped at or after every record already replayed.
    if (lane_ && !lane_->running)
        lane_->localNow = lane_->engine->controlTime();
    std::vector<Instance *> shortages;
    Pick pick = pickNext(shortages);
    if (pick.inst) {
        if (pick.prefill)
            runPrefill(pick.inst, pick.prefill);
        else
            runDecode(pick.inst);
    }
    // Report KV-starved instances after the scheduling decision so the
    // controller can grow or evict; callbacks may re-enter kick().
    for (Instance *inst : shortages) {
        if (lane_) {
            StagedRec rec = baseRec(StagedRec::Kind::KvShortage);
            rec.inst = inst;
            lane_->stage(rec);
        } else if (cbs_.onKvShortage) {
            cbs_.onKvShortage(inst);
        }
    }
}

void
TokenScheduler::runPrefill(Instance *inst, Request *req)
{
    Tokens need = PagedKvCache::roundedTokens(req->contextLen());
    if (!inst->kv.reserve(need))
        panic("TokenScheduler: prefill reserve failed after check");
    req->kvReserved = need;

    // perfFactor is the straggler-degradation multiplier (1.0 when
    // healthy — bit-exact); set in the global phase (degradeNode), so
    // reading it inside a lane is thread-count invariant.
    Seconds dur = PerfModel::prefillTime(inst->execSpec, inst->model,
                                         req->contextLen()) *
                  noise() * part_.perfFactor;
    if (trace_) {
        if (lane_) {
            StagedRec rec = baseRec(StagedRec::Kind::TraceSpan);
            rec.name = "prefill";
            rec.argName = "request";
            rec.dur = dur;
            rec.arg = static_cast<double>(req->id);
            lane_->stage(rec);
        } else {
            trace_->complete(obs::kCatExec, "prefill", timeNow(), dur,
                             obs::kPidCluster,
                             static_cast<int>(part_.viewPos), "request",
                             static_cast<double>(req->id));
        }
    }
    if (anat_)
        stageAnat(StagedRec::Kind::AnatPrefillStart, req, false);
    part_.busy = true;
    busyUntil_ = timeNow() + dur;
    inst->busyTime += dur;
    if (index_) {
        if (lane_) {
            StagedRec rec = baseRec(StagedRec::Kind::BusySeconds);
            rec.hw = static_cast<int>(inst->execSpec.kind);
            rec.dur = dur;
            lane_->stage(rec);
        } else {
            index_->addBusySeconds(inst->execSpec.kind, dur);
        }
    }
    curInst_ = inst;
    curPrefill_ = req;
    scheduleFinish(dur);
}

void
TokenScheduler::runDecode(Instance *inst)
{
    int batch = inst->batchSize();
    if (batch == 0)
        panic("TokenScheduler: decode with empty batch");
    Seconds dur = PerfModel::decodeTime(inst->execSpec, inst->model, batch,
                                        inst->avgContextLen()) *
                  noise() * part_.perfFactor;
    if (trace_) {
        if (lane_) {
            StagedRec rec = baseRec(StagedRec::Kind::TraceSpan);
            rec.name = "decode";
            rec.argName = "batch";
            rec.dur = dur;
            rec.arg = static_cast<double>(batch);
            lane_->stage(rec);
        } else {
            trace_->complete(obs::kCatExec, "decode", timeNow(), dur,
                             obs::kPidCluster,
                             static_cast<int>(part_.viewPos), "batch",
                             static_cast<double>(batch));
        }
    }
    if (anat_) {
        for (Request *r : inst->decodeBatch)
            stageAnat(StagedRec::Kind::AnatDecodeIterStart, r, false);
    }
    part_.busy = true;
    busyUntil_ = timeNow() + dur;
    inst->busyTime += dur;
    if (index_) {
        if (lane_) {
            StagedRec rec = baseRec(StagedRec::Kind::BusySeconds);
            rec.hw = static_cast<int>(inst->execSpec.kind);
            rec.dur = dur;
            lane_->stage(rec);
        } else {
            index_->addBusySeconds(inst->execSpec.kind, dur);
        }
    }
    curInst_ = inst;
    curPrefill_ = nullptr;
    curBatch_ = inst->decodeBatch;
    scheduleFinish(dur);
}

void
TokenScheduler::finishIteration()
{
    Instance *inst = curInst_;
    Request *prefill = curPrefill_;
    // Swap, don't move-to-local: the swap hands curBatch_ the scratch's
    // old capacity, so steady-state decode iterations allocate nothing.
    doneBatch_.swap(curBatch_);
    std::vector<Request *> &batch = doneBatch_;
    curInst_ = nullptr;
    curPrefill_ = nullptr;
    curBatch_.clear();
    part_.busy = false;
    busyUntil_ = timeNow();

    finished_.clear();
    std::vector<Request *> &done = finished_;
    std::vector<Instance *> shortages;

    if (prefill) {
        // The request may have been dropped/evicted mid-prefill; only
        // apply effects if it is still ours.
        bool still_ours = std::find(inst->prefillQueue.begin(),
                                    inst->prefillQueue.end(),
                                    prefill) != inst->prefillQueue.end();
        if (still_ours) {
            prefill->noteToken(timeNow());
            if (cbs_.onFirstToken) {
                if (lane_) {
                    StagedRec rec = baseRec(StagedRec::Kind::FirstToken);
                    rec.req = prefill;
                    rec.inst = inst;
                    lane_->stage(rec);
                } else {
                    cbs_.onFirstToken(prefill, inst);
                }
            }
            inst->removeRequest(prefill);
            if (prefill->finishedGenerating()) {
                inst->kv.release(prefill->kvReserved);
                prefill->kvReserved = 0;
                prefill->state = RequestState::Completed;
                done.push_back(prefill);
            } else if (lane_ && cbs_.routeAfterPrefill &&
                       inst->role == InstanceRole::PrefillOnly) {
                // PD disaggregation, lockstep form: the controller
                // takes the request at the boundary (a δ-quantized
                // handoff); until then it is off every queue and its
                // KV stays held, exactly like the in-flight transfer
                // the serial path starts immediately.
                StagedRec rec = baseRec(StagedRec::Kind::AfterPrefill);
                rec.req = prefill;
                rec.inst = inst;
                lane_->stage(rec);
            } else if (!lane_ && cbs_.routeAfterPrefill &&
                       cbs_.routeAfterPrefill(prefill, inst)) {
                // Controller took the request (PD disaggregation).
            } else {
                prefill->state = RequestState::Decode;
                if (anat_)
                    stageAnat(StagedRec::Kind::AnatPrefillEnd, prefill,
                              false);
                inst->decodeBatch.push_back(prefill);
            }
        }
    } else {
        Tokens emitted = 0;
        for (Request *r : batch) {
            // Skip requests evicted while the iteration was in flight.
            if (r->instance != inst->id ||
                r->state != RequestState::Decode) {
                continue;
            }
            Tokens need = PagedKvCache::roundedTokens(r->contextLen() + 1);
            if (need > r->kvReserved) {
                Tokens growth = need - r->kvReserved;
                if (!inst->kv.reserve(growth)) {
                    // Underestimation: this request cannot grow; it
                    // stalls until the controller grows or evicts.
                    if (anat_)
                        stageAnat(StagedRec::Kind::AnatDecodeIterEnd, r,
                                  /*stalled=*/true);
                    shortages.push_back(inst);
                    continue;
                }
                r->kvReserved = need;
            }
            r->noteToken(timeNow());
            ++inst->decodedTokens;
            ++emitted;
            if (r->finishedGenerating()) {
                inst->removeRequest(r);
                inst->kv.release(r->kvReserved);
                r->kvReserved = 0;
                r->state = RequestState::Completed;
                done.push_back(r);
            } else if (anat_) {
                stageAnat(StagedRec::Kind::AnatDecodeIterEnd, r,
                          inst->resizeInFlight);
            }
        }
        if (stats_) {
            if (lane_) {
                StagedRec rec = baseRec(StagedRec::Kind::DecodeIterStats);
                rec.hw = static_cast<int>(inst->execSpec.kind);
                rec.count = static_cast<int>(batch.size());
                rec.tokens = emitted;
                lane_->stage(rec);
            } else {
                stats_->onDecodeIteration(inst->execSpec.kind,
                                          static_cast<int>(batch.size()),
                                          emitted);
            }
        }
    }

    for (Request *r : done) {
        if (lane_) {
            StagedRec rec = baseRec(StagedRec::Kind::RequestDone);
            rec.req = r;
            rec.inst = inst;
            lane_->stage(rec);
        } else if (cbs_.onRequestDone) {
            cbs_.onRequestDone(r, inst);
        }
    }
    for (Instance *s : shortages) {
        if (lane_) {
            StagedRec rec = baseRec(StagedRec::Kind::KvShortage);
            rec.inst = s;
            lane_->stage(rec);
        } else if (cbs_.onKvShortage) {
            cbs_.onKvShortage(s);
        }
    }
    kick();
}

// --------------------------------------------------------------------
// Lockstep mode (sim/lockstep.hh)
// --------------------------------------------------------------------

void
TokenScheduler::scheduleFinish(Seconds dur)
{
    if (lane_)
        lane_->nextAt = lane_->localNow + dur;
    else
        sim_.schedule(dur, [this] { finishIteration(); });
}

StagedRec
TokenScheduler::baseRec(StagedRec::Kind kind) const
{
    StagedRec rec;
    rec.kind = kind;
    rec.time = lane_->localNow;
    return rec;
}

void
TokenScheduler::stageAnat(StagedRec::Kind kind, Request *req, bool flag)
{
    if (!lane_) {
        Seconds t = timeNow();
        switch (kind) {
          case StagedRec::Kind::AnatPrefillStart:
            anat_->onPrefillStart(*req, t);
            break;
          case StagedRec::Kind::AnatPrefillEnd:
            anat_->onPrefillEnd(*req, t);
            break;
          case StagedRec::Kind::AnatDecodeIterStart:
            anat_->onDecodeIterStart(*req, t);
            break;
          case StagedRec::Kind::AnatDecodeIterEnd:
            anat_->onDecodeIterEnd(*req, flag, t);
            break;
          default:
            panic("TokenScheduler::stageAnat: not an anatomy record");
        }
        return;
    }
    StagedRec rec = baseRec(kind);
    rec.req = req;
    rec.flag = flag;
    lane_->stage(rec);
}

void
TokenScheduler::runPending(Seconds upTo)
{
    // The chain: a partition runs at most one iteration at a time, so
    // the lane's single nextAt slot is its whole event queue. Each
    // finishIteration() re-kicks (in chain context, so localNow is
    // preserved) and either re-arms nextAt or leaves the lane idle.
    while (lane_->nextAt <= upTo) {
        lane_->localNow = lane_->nextAt;
        lane_->nextAt = std::numeric_limits<Seconds>::infinity();
        ++lane_->eventsRun;
        finishIteration();
    }
}

void
TokenScheduler::replayRecord(const StagedRec &rec)
{
    switch (rec.kind) {
      case StagedRec::Kind::TraceSpan:
        if (trace_)
            trace_->complete(obs::kCatExec, rec.name, rec.time, rec.dur,
                             obs::kPidCluster,
                             static_cast<int>(part_.viewPos),
                             rec.argName, rec.arg);
        break;
      case StagedRec::Kind::AnatPrefillStart:
        if (anat_)
            anat_->onPrefillStart(*rec.req, rec.time);
        break;
      case StagedRec::Kind::AnatPrefillEnd:
        if (anat_)
            anat_->onPrefillEnd(*rec.req, rec.time);
        break;
      case StagedRec::Kind::AnatDecodeIterStart:
        if (anat_)
            anat_->onDecodeIterStart(*rec.req, rec.time);
        break;
      case StagedRec::Kind::AnatDecodeIterEnd:
        if (anat_)
            anat_->onDecodeIterEnd(*rec.req, rec.flag, rec.time);
        break;
      case StagedRec::Kind::DecodeIterStats:
        if (stats_)
            stats_->onDecodeIteration(static_cast<HwKind>(rec.hw),
                                      rec.count, rec.tokens);
        break;
      case StagedRec::Kind::BusySeconds:
        if (index_)
            index_->addBusySeconds(static_cast<HwKind>(rec.hw), rec.dur);
        break;
      case StagedRec::Kind::FirstToken:
        if (cbs_.onFirstToken)
            cbs_.onFirstToken(rec.req, rec.inst);
        break;
      case StagedRec::Kind::RequestDone:
        if (cbs_.onRequestDone)
            cbs_.onRequestDone(rec.req, rec.inst);
        break;
      case StagedRec::Kind::KvShortage:
        if (cbs_.onKvShortage)
            cbs_.onKvShortage(rec.inst);
        break;
      case StagedRec::Kind::AfterPrefill: {
        bool taken = cbs_.routeAfterPrefill &&
                     cbs_.routeAfterPrefill(rec.req, rec.inst);
        if (!taken) {
            // The controller declined (e.g. PD was toggled off or the
            // instance changed role); the request joins the local
            // batch exactly as the serial else-branch would have.
            rec.req->state = RequestState::Decode;
            if (anat_)
                anat_->onPrefillEnd(*rec.req, rec.time);
            rec.inst->decodeBatch.push_back(rec.req);
        }
        break;
      }
    }
}

} // namespace slinfer
