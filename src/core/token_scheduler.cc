#include "core/token_scheduler.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hh"
#include "hw/perf_model.hh"

namespace slinfer
{

TokenScheduler::TokenScheduler(Simulator &sim, Partition &partition,
                               SchedPolicy policy, double noiseSigma,
                               Rng rng, Callbacks cbs, ClusterStats *stats,
                               ClusterIndex *index,
                               obs::TraceRecorder *trace,
                               obs::AnatomyLedger *anatomy)
    : sim_(sim), part_(partition), policy_(policy), sigma_(noiseSigma),
      rng_(rng), cbs_(std::move(cbs)), stats_(stats), index_(index),
      trace_(trace), anat_(anatomy)
{
}

double
TokenScheduler::noise()
{
    if (sigma_ <= 0)
        return 1.0;
    return std::exp(sigma_ * rng_.normal());
}

namespace
{

/** Tokens of extra KV a decode step needs for this batch. */
Tokens
decodeGrowth(const Instance &inst)
{
    Tokens growth = 0;
    for (const Request *r : inst.decodeBatch) {
        Tokens need = PagedKvCache::roundedTokens(r->contextLen() + 1);
        if (need > r->kvReserved)
            growth += need - r->kvReserved;
    }
    return growth;
}

} // namespace

TokenScheduler::Pick
TokenScheduler::pickNext(std::vector<Instance *> &shortages) const
{
    Pick best;
    double best_key = std::numeric_limits<double>::infinity();
    // FifoPrefillFirst biases all prefills ahead of all decodes by
    // subtracting a large constant from their sort key.
    const double kPrefillBias = 1e12;

    for (Instance *inst : part_.instances) {
        if (!inst->runnable())
            continue;

        Pick cand;
        double key = std::numeric_limits<double>::infinity();

        if (policy_ == SchedPolicy::Headroom) {
            bool is_prefill = false;
            Request *urgent = inst->mostUrgent(sim_.now(), is_prefill);
            if (!urgent)
                continue;
            if (is_prefill) {
                Tokens need =
                    PagedKvCache::roundedTokens(urgent->contextLen());
                if (inst->kv.canFit(need)) {
                    cand = {inst, urgent};
                    key = urgent->headroom(sim_.now());
                } else {
                    shortages.push_back(inst);
                    // Fall back to decoding the existing batch.
                    if (!inst->decodeBatch.empty() &&
                        inst->kv.canFit(decodeGrowth(*inst))) {
                        cand = {inst, nullptr};
                        key = inst->minHeadroom(sim_.now());
                    }
                }
            } else {
                if (inst->kv.canFit(decodeGrowth(*inst))) {
                    cand = {inst, nullptr};
                    key = urgent->headroom(sim_.now());
                } else {
                    shortages.push_back(inst);
                }
            }
        } else { // FifoPrefillFirst
            Request *first_prefill = nullptr;
            for (Request *r : inst->prefillQueue) {
                if (!first_prefill || r->arrival < first_prefill->arrival)
                    first_prefill = r;
            }
            if (first_prefill &&
                inst->kv.canFit(PagedKvCache::roundedTokens(
                    first_prefill->contextLen()))) {
                cand = {inst, first_prefill};
                key = first_prefill->arrival - kPrefillBias;
            } else if (!inst->decodeBatch.empty()) {
                if (first_prefill)
                    shortages.push_back(inst);
                if (inst->kv.canFit(decodeGrowth(*inst))) {
                    cand = {inst, nullptr};
                    key = inst->minHeadroom(sim_.now());
                } else {
                    shortages.push_back(inst);
                    cand = {};
                }
            } else if (first_prefill) {
                shortages.push_back(inst);
            }
        }

        if (cand.inst && key < best_key) {
            best = cand;
            best_key = key;
        }
    }
    return best;
}

void
TokenScheduler::kick()
{
    if (part_.busy)
        return;
    std::vector<Instance *> shortages;
    Pick pick = pickNext(shortages);
    if (pick.inst) {
        if (pick.prefill)
            runPrefill(pick.inst, pick.prefill);
        else
            runDecode(pick.inst);
    }
    // Report KV-starved instances after the scheduling decision so the
    // controller can grow or evict; callbacks may re-enter kick().
    for (Instance *inst : shortages) {
        if (cbs_.onKvShortage)
            cbs_.onKvShortage(inst);
    }
}

void
TokenScheduler::runPrefill(Instance *inst, Request *req)
{
    Tokens need = PagedKvCache::roundedTokens(req->contextLen());
    if (!inst->kv.reserve(need))
        panic("TokenScheduler: prefill reserve failed after check");
    req->kvReserved = need;

    Seconds dur = PerfModel::prefillTime(inst->execSpec, inst->model,
                                         req->contextLen()) *
                  noise();
    if (trace_)
        trace_->complete(obs::kCatExec, "prefill", sim_.now(), dur,
                         obs::kPidCluster,
                         static_cast<int>(part_.viewPos), "request",
                         static_cast<double>(req->id));
    if (anat_)
        anat_->onPrefillStart(*req, sim_.now());
    part_.busy = true;
    busyUntil_ = sim_.now() + dur;
    inst->busyTime += dur;
    if (index_)
        index_->addBusySeconds(inst->execSpec.kind, dur);
    curInst_ = inst;
    curPrefill_ = req;
    sim_.schedule(dur, [this] { finishIteration(); });
}

void
TokenScheduler::runDecode(Instance *inst)
{
    int batch = inst->batchSize();
    if (batch == 0)
        panic("TokenScheduler: decode with empty batch");
    Seconds dur = PerfModel::decodeTime(inst->execSpec, inst->model, batch,
                                        inst->avgContextLen()) *
                  noise();
    if (trace_)
        trace_->complete(obs::kCatExec, "decode", sim_.now(), dur,
                         obs::kPidCluster,
                         static_cast<int>(part_.viewPos), "batch",
                         static_cast<double>(batch));
    if (anat_) {
        for (Request *r : inst->decodeBatch)
            anat_->onDecodeIterStart(*r, sim_.now());
    }
    part_.busy = true;
    busyUntil_ = sim_.now() + dur;
    inst->busyTime += dur;
    if (index_)
        index_->addBusySeconds(inst->execSpec.kind, dur);
    curInst_ = inst;
    curPrefill_ = nullptr;
    curBatch_ = inst->decodeBatch;
    sim_.schedule(dur, [this] { finishIteration(); });
}

void
TokenScheduler::finishIteration()
{
    Instance *inst = curInst_;
    Request *prefill = curPrefill_;
    // Swap, don't move-to-local: the swap hands curBatch_ the scratch's
    // old capacity, so steady-state decode iterations allocate nothing.
    doneBatch_.swap(curBatch_);
    std::vector<Request *> &batch = doneBatch_;
    curInst_ = nullptr;
    curPrefill_ = nullptr;
    curBatch_.clear();
    part_.busy = false;
    busyUntil_ = sim_.now();

    finished_.clear();
    std::vector<Request *> &done = finished_;
    std::vector<Instance *> shortages;

    if (prefill) {
        // The request may have been dropped/evicted mid-prefill; only
        // apply effects if it is still ours.
        bool still_ours = std::find(inst->prefillQueue.begin(),
                                    inst->prefillQueue.end(),
                                    prefill) != inst->prefillQueue.end();
        if (still_ours) {
            prefill->noteToken(sim_.now());
            if (cbs_.onFirstToken)
                cbs_.onFirstToken(prefill, inst);
            inst->removeRequest(prefill);
            if (prefill->finishedGenerating()) {
                inst->kv.release(prefill->kvReserved);
                prefill->kvReserved = 0;
                prefill->state = RequestState::Completed;
                done.push_back(prefill);
            } else if (cbs_.routeAfterPrefill &&
                       cbs_.routeAfterPrefill(prefill, inst)) {
                // Controller took the request (PD disaggregation).
            } else {
                prefill->state = RequestState::Decode;
                if (anat_)
                    anat_->onPrefillEnd(*prefill, sim_.now());
                inst->decodeBatch.push_back(prefill);
            }
        }
    } else {
        Tokens emitted = 0;
        for (Request *r : batch) {
            // Skip requests evicted while the iteration was in flight.
            if (r->instance != inst->id ||
                r->state != RequestState::Decode) {
                continue;
            }
            Tokens need = PagedKvCache::roundedTokens(r->contextLen() + 1);
            if (need > r->kvReserved) {
                Tokens growth = need - r->kvReserved;
                if (!inst->kv.reserve(growth)) {
                    // Underestimation: this request cannot grow; it
                    // stalls until the controller grows or evicts.
                    if (anat_)
                        anat_->onDecodeIterEnd(*r, /*stalled=*/true,
                                               sim_.now());
                    shortages.push_back(inst);
                    continue;
                }
                r->kvReserved = need;
            }
            r->noteToken(sim_.now());
            ++inst->decodedTokens;
            ++emitted;
            if (r->finishedGenerating()) {
                inst->removeRequest(r);
                inst->kv.release(r->kvReserved);
                r->kvReserved = 0;
                r->state = RequestState::Completed;
                done.push_back(r);
            } else if (anat_) {
                anat_->onDecodeIterEnd(*r, inst->resizeInFlight,
                                       sim_.now());
            }
        }
        if (stats_) {
            stats_->onDecodeIteration(inst->execSpec.kind,
                                      static_cast<int>(batch.size()),
                                      emitted);
        }
    }

    for (Request *r : done) {
        if (cbs_.onRequestDone)
            cbs_.onRequestDone(r, inst);
    }
    for (Instance *s : shortages) {
        if (cbs_.onKvShortage)
            cbs_.onKvShortage(s);
    }
    kick();
}

} // namespace slinfer
