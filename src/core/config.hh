/**
 * @file
 * Tuning knobs shared by the controllers. Defaults are the paper's
 * evaluation settings (§IX-A, §IX-I): keep-alive 1 s, KV watermark 25%,
 * 10% shadow-validation overestimation.
 */

#ifndef SLINFER_CORE_CONFIG_HH
#define SLINFER_CORE_CONFIG_HH

#include "common/types.hh"
#include "workload/slo.hh"

namespace slinfer
{

struct ControllerConfig
{
    /** Idle instance reclamation threshold. */
    Seconds keepAlive = 1.0;
    /** KV-cache scaling watermark w (M_recommend = M_require*(1+w)). */
    double watermark = 0.25;
    /** Shadow validation per-iteration overestimation factor. */
    double overestimate = 1.10;
    /** Lognormal sigma of ground-truth iteration noise. */
    double noiseSigma = 0.03;
    /** Consider CPU nodes at all (ablation: w/o CPU). */
    bool useCpu = true;
    /** Allow colocating different models on one partition
     *  (ablation: w/o Sharing). */
    bool enableSharing = true;
    /** Proactive preemption + reactive bin-packing
     *  (ablation: w/o Consolidation). */
    bool enableConsolidation = true;
    /** Prefill-decode disaggregation mode (Table III). */
    bool pdDisaggregation = false;
    /**
     * Route placement/aggregate decisions through the pre-index full
     * cluster scans instead of the incremental cluster indices
     * (DESIGN.md, "Cluster indices"). Decision *results* are
     * identical either way — the flag exists so
     * bench_controller_throughput can A/B the two paths and tests can
     * cross-check them; the indices are maintained in both modes.
     */
    bool oracleScans = false;
    /** SLO definition. */
    SloSpec slo;
    /** Seed for ground-truth execution noise. */
    std::uint64_t seed = 42;
};

} // namespace slinfer

#endif // SLINFER_CORE_CONFIG_HH
