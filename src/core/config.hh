/**
 * @file
 * Tuning knobs shared by the controllers. Defaults are the paper's
 * evaluation settings (§IX-A, §IX-I): keep-alive 1 s, KV watermark 25%,
 * 10% shadow-validation overestimation.
 */

#ifndef SLINFER_CORE_CONFIG_HH
#define SLINFER_CORE_CONFIG_HH

#include <cstddef>

#include "common/types.hh"
#include "workload/slo.hh"

namespace slinfer
{

/**
 * Controller resilience policies (DESIGN.md, "Resilience policies").
 * Every knob defaults to the pre-policy behavior, so configs that
 * never touch this struct produce byte-identical reports.
 */
struct ResilienceConfig
{
    /**
     * Placement attempts charged per retryPending() round before the
     * rest of the queue is deferred to the next wakeup. The historic
     * hard-coded cap was 16.
     */
    int retryCap = 16;
    /**
     * Exponential backoff between dispatch attempts of one request:
     * after its n-th consecutive failure a request may not be retried
     * for min(backoffBase * 2^(n-1), backoffMax) seconds. Requests
     * whose next permitted attempt would land past their TTFT drop
     * deadline are dropped immediately (deadline-aware give-up)
     * instead of burning retry rounds they can never win.
     */
    bool backoff = false;
    Seconds backoffBase = 0.05;
    Seconds backoffMax = 1.0;
    /**
     * Failover exclusion window: for this many seconds after a node
     * failure, its partitions are skipped as placement candidates even
     * once restored (flapping hardware should not immediately re-host
     * work). 0 disables the policy.
     */
    Seconds failoverExclusion = 0.0;
    /**
     * Graceful degradation: while any node is failed, requests whose
     * TTFT SLO is at least batchSloCutoff (batch-class work) are
     * queued without a dispatch attempt once the pending queue reaches
     * shedQueueDepth, and shed outright at twice that depth —
     * preserving the remaining capacity for latency-critical traffic.
     */
    bool shedBatchFirst = false;
    Seconds batchSloCutoff = 10.0;
    std::size_t shedQueueDepth = 64;
};

struct ControllerConfig
{
    /** Idle instance reclamation threshold. */
    Seconds keepAlive = 1.0;
    /** KV-cache scaling watermark w (M_recommend = M_require*(1+w)). */
    double watermark = 0.25;
    /** Shadow validation per-iteration overestimation factor. */
    double overestimate = 1.10;
    /** Lognormal sigma of ground-truth iteration noise. */
    double noiseSigma = 0.03;
    /** Consider CPU nodes at all (ablation: w/o CPU). */
    bool useCpu = true;
    /** Allow colocating different models on one partition
     *  (ablation: w/o Sharing). */
    bool enableSharing = true;
    /** Proactive preemption + reactive bin-packing
     *  (ablation: w/o Consolidation). */
    bool enableConsolidation = true;
    /** Prefill-decode disaggregation mode (Table III). */
    bool pdDisaggregation = false;
    /**
     * Route placement/aggregate decisions through the pre-index full
     * cluster scans instead of the incremental cluster indices
     * (DESIGN.md, "Cluster indices"). Decision *results* are
     * identical either way — the flag exists so
     * bench_controller_throughput can A/B the two paths and tests can
     * cross-check them; the indices are maintained in both modes.
     */
    bool oracleScans = false;
    /** Retry/backoff/failover/degradation policies. */
    ResilienceConfig resilience;
    /** SLO definition. */
    SloSpec slo;
    /** Seed for ground-truth execution noise. */
    std::uint64_t seed = 42;
};

} // namespace slinfer

#endif // SLINFER_CORE_CONFIG_HH
