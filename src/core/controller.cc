#include "core/controller.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"
#include "core/consolidator.hh"
#include "core/headroom.hh"
#include "engine/loader.hh"
#include "hw/memcost_model.hh"
#include "sim/lockstep.hh"

namespace slinfer
{

ControllerBase::ControllerBase(Simulator &sim,
                               std::vector<std::unique_ptr<Node>> &nodes,
                               std::vector<ModelSpec> modelSpecs,
                               std::vector<double> initialAvgOutput,
                               ControllerConfig cfg, Recorder &recorder,
                               ClusterStats *stats)
    : sim_(sim), nodes_(nodes), cfg_(cfg), recorder_(recorder),
      stats_(stats), rng_(cfg.seed), index_(nodes)
{
    models_.reserve(modelSpecs.size());
    for (std::size_t i = 0; i < modelSpecs.size(); ++i) {
        ModelEntry e;
        e.spec = modelSpecs[i];
        e.avgOutput = i < initialAvgOutput.size() ? initialAvgOutput[i]
                                                  : 256.0;
        models_.push_back(std::move(e));
    }
    pendingDecode_.resize(models_.size());
    decodeDirty_.assign(models_.size(), 0);
    scheds_.resize(index_.partitions(true).size());
}

void
ControllerBase::attachObs(obs::FlightRecorder *fr)
{
    if (!fr)
        return;
    ctr_ = fr->counters();
    trace_ = fr->trace();
    prof_ = fr->profiler();
    anat_ = fr->anatomy();
    if (!trace_)
        return;
    trace_->setProcessName(obs::kPidController, "controller");
    trace_->setProcessName(obs::kPidCluster, "cluster");
    for (std::size_t m = 0; m < models_.size(); ++m)
        trace_->setProcessName(tracePid(static_cast<ModelId>(m)),
                               "model " + std::to_string(m));
    for (Partition *p : index_.partitions(true)) {
        trace_->setThreadName(obs::kPidCluster,
                              static_cast<int>(p->viewPos),
                              "n" + std::to_string(p->node) + "/p" +
                                  std::to_string(p->index));
    }
}

void
ControllerBase::traceRequestEnd(const Request *req)
{
    if (!trace_)
        return;
    trace_->asyncInstant(obs::kCatRequest, requestStateName(req->state),
                         sim_.now(), tracePid(req->model), req->id);
    trace_->asyncEnd(obs::kCatRequest, "request", sim_.now(),
                     tracePid(req->model), req->id);
}

void
ControllerBase::submit(Request *req)
{
    obs::ScopedPhase phase(prof_, obs::kPhaseControllerDecide);
    recorder_.onArrival(*req);
    if (anat_)
        anat_->onArrival(*req, sim_.now());
    if (trace_)
        trace_->asyncBegin(obs::kCatRequest, "request", sim_.now(),
                           tracePid(req->model), req->id);
    if (models_[req->model].retired) {
        dropRequest(req);
        return;
    }
    // Graceful degradation: while capacity is down, batch-class work
    // (lax TTFT SLO) yields to latency-critical traffic — queued
    // without an immediate dispatch attempt past one depth threshold,
    // shed outright past twice that depth. pending_ may contain
    // already-settled ghosts, so the depth is a heuristic upper bound;
    // that is fine for a load-shedding trigger.
    const ResilienceConfig &res = cfg_.resilience;
    if (res.shedBatchFirst && failedNodes_ > 0 &&
        req->ttftSlo >= res.batchSloCutoff) {
        if (pending_.size() >= 2 * res.shedQueueDepth) {
            dropRequest(req);
            return;
        }
        if (pending_.size() >= res.shedQueueDepth) {
            queueRequest(req);
            return;
        }
    }
    if (!tryDispatch(req))
        queueRequest(req);
}

bool
ControllerBase::tryDispatchDecode(Request *req)
{
    (void)req;
    return false;
}

void
ControllerBase::onRequestDoneHook(Request *req, Instance *inst)
{
    (void)req;
    (void)inst;
}

void
ControllerBase::onModelDeployed(ModelId m)
{
    (void)m;
}

bool
ControllerBase::tryAbortParkedLoad(Instance *inst)
{
    (void)inst;
    return false;
}

// --------------------------------------------------------------------
// Interventions (Session::inject / timelines)
// --------------------------------------------------------------------

/** Re-sweep cadence for instances whose memory ops must settle before
 *  an intervention can unload them. */
static constexpr Seconds kDrainSweepInterval = 0.05;

void
ControllerBase::dropRequest(Request *req)
{
    auto it = dropEvents_.find(req->id);
    if (it != dropEvents_.end()) {
        it->second.cancel();
        dropEvents_.erase(it);
    }
    req->state = RequestState::Dropped;
    recorder_.onDrop(*req, sim_.now());
    if (anat_)
        anat_->onDrop(*req, sim_.now());
    traceRequestEnd(req);
    // Queued drops stay referenced by pending_ as ghosts until a retry
    // round purges them; maybeReclaim fires only for unreferenced ones.
    maybeReclaim(req);
}

void
ControllerBase::evictAllRequests(Instance *inst, bool drop)
{
    std::vector<Request *> owned = inst->prefillQueue;
    owned.insert(owned.end(), inst->decodeBatch.begin(),
                 inst->decodeBatch.end());
    if (owned.empty())
        return;
    for (Request *req : owned) {
        if (drop) {
            inst->removeRequest(req);
            inst->kv.release(req->kvReserved);
            req->kvReserved = 0;
            req->instance = 0;
            dropRequest(req);
        } else {
            // Recompute-style migration, exactly the shortage
            // eviction path: the next host re-prefills.
            requeueEvicted(req, inst);
        }
    }
    markAllDecodeDirty();
}

bool
ControllerBase::settleInstance(Instance *inst, bool drop,
                               unsigned reasonBit)
{
    evictAllRequests(inst, drop);
    if (inst->state == InstanceState::Loading && !inst->memResident &&
        tryAbortParkedLoad(inst)) {
        return true; // the parked load never held memory; retired flat-out
    }
    if (inst->state == InstanceState::Active && !inst->resizeInFlight) {
        cancelKeepAlive(inst);
        doUnload(inst);
        return true;
    }
    if (inst->state == InstanceState::Unloading ||
        inst->state == InstanceState::Reclaimed)
        return true;
    // An executing load or resize must land first (beginUnload refuses
    // mid-resize); the drain sweep retries shortly after. Fence the
    // instance so admission paths keep off it in the meantime —
    // otherwise retryPending() would re-admit the very requests the
    // sweep just evicted, churning until the op lands.
    inst->draining |= reasonBit;
    return false;
}

void
ControllerBase::drainNodeInstances(Node *node)
{
    if (!node->failed())
        return; // restored while a sweep was pending; stop draining
    obs::bump(ctr_, obs::kDrainSweeps);
    if (trace_)
        trace_->instant(obs::kCatController, "drain-node", sim_.now(),
                        obs::kPidController, 0, "node",
                        static_cast<double>(node->id()));
    bool unsettled = false;
    for (auto &part : node->partitions()) {
        // Copy: unloads and aborts mutate the resident list.
        std::vector<Instance *> insts = part->instances;
        for (Instance *inst : insts) {
            if (inst->state == InstanceState::Unloading ||
                inst->state == InstanceState::Reclaimed)
                continue;
            if (!settleInstance(inst, false, kDrainNodeFail))
                unsettled = true;
        }
    }
    if (unsettled) {
        sim_.schedule(kDrainSweepInterval,
                      [this, node] { drainNodeInstances(node); });
    }
    retryPending();
}

void
ControllerBase::drainInstanceSet(std::vector<Instance *> insts, bool drop)
{
    obs::bump(ctr_, obs::kDrainSweeps);
    if (trace_)
        trace_->instant(obs::kCatController, "drain-set", sim_.now(),
                        obs::kPidController, 0, "instances",
                        static_cast<double>(insts.size()));
    std::vector<Instance *> remaining;
    for (Instance *inst : insts) {
        if (inst->state == InstanceState::Unloading ||
            inst->state == InstanceState::Reclaimed)
            continue;
        if (!settleInstance(inst, drop, kDrainInstanceSet))
            remaining.push_back(inst);
    }
    if (!remaining.empty()) {
        sim_.schedule(kDrainSweepInterval,
                      [this, remaining = std::move(remaining), drop] {
                          drainInstanceSet(remaining, drop);
                      });
    }
    retryPending();
}

void
ControllerBase::failNode(NodeId node)
{
    if (node >= nodes_.size())
        fatal("failNode: unknown node " + std::to_string(node));
    Node *n = nodes_[node].get();
    if (n->failed())
        return; // defined no-op: the node is already fenced
    n->setFailed(true);
    ++failedNodes_;
    for (auto &p : n->partitions()) {
        p->lastFailedAt = sim_.now();
        index_.onPartitionFailed(*p);
    }
    drainNodeInstances(n);
}

void
ControllerBase::restoreNode(NodeId node)
{
    if (node >= nodes_.size())
        fatal("restoreNode: unknown node " + std::to_string(node));
    Node *n = nodes_[node].get();
    if (!n->failed())
        return; // defined no-op: restore of a node that is not failed
    n->setFailed(false);
    --failedNodes_;
    // Under the failover-exclusion policy the restored partitions stay
    // skipped until the window (measured from the failure) expires; a
    // wakeup at expiry re-runs placement for whatever is still queued.
    if (cfg_.resilience.failoverExclusion > 0 &&
        !n->partitions().empty()) {
        Seconds until = n->partitions().front()->lastFailedAt +
                        cfg_.resilience.failoverExclusion;
        if (until > sim_.now())
            sim_.schedule(until - sim_.now(),
                          [this] { retryPending(); });
    }
    for (auto &p : n->partitions()) {
        index_.onPartitionRestored(*p);
        // Residents the interrupted node drain never settled go back
        // into service (that sweep stops once the node is restored);
        // a concurrent redeploy/retire sweep keeps its own fence bit.
        for (Instance *inst : p->instances)
            inst->draining &= ~kDrainNodeFail;
    }
    markAllDecodeDirty();
    retryPending();
}

void
ControllerBase::degradeNode(NodeId node, double factor)
{
    if (node >= nodes_.size())
        fatal("degradeNode: unknown node " + std::to_string(node));
    if (factor <= 0)
        fatal("degradeNode: factor must be > 0");
    // The multiplier only shapes future iteration durations, so no
    // index or scheduler state needs touching; re-degrading just
    // replaces the factor.
    for (auto &p : nodes_[node]->partitions())
        p->perfFactor = factor;
}

void
ControllerBase::recoverNode(NodeId node)
{
    if (node >= nodes_.size())
        fatal("recoverNode: unknown node " + std::to_string(node));
    // Defined no-op on a never-degraded node (perfFactor is already 1).
    for (auto &p : nodes_[node]->partitions())
        p->perfFactor = 1.0;
}

void
ControllerBase::setNetFactor(double factor)
{
    if (factor <= 0)
        fatal("setNetFactor: factor must be > 0");
    netFactor_ = factor;
}

ModelId
ControllerBase::deployModel(const ModelSpec &spec, double initialAvgOutput)
{
    ModelEntry e;
    e.spec = spec;
    e.avgOutput = initialAvgOutput > 0 ? initialAvgOutput : 256.0;
    models_.push_back(std::move(e));
    pendingDecode_.emplace_back();
    decodeDirty_.push_back(0);
    ModelId id = static_cast<ModelId>(models_.size() - 1);
    if (trace_)
        trace_->setProcessName(tracePid(id),
                               "model " + std::to_string(id));
    onModelDeployed(id);
    return id;
}

void
ControllerBase::redeployModel(ModelId model)
{
    if (model >= models_.size())
        fatal("redeployModel: unknown model " + std::to_string(model));
    ModelEntry &me = models_[model];
    if (me.retired)
        return;
    // Only the instances of the *current* version drain; replacements
    // created while the sweep settles are left alone.
    drainInstanceSet(me.instances, false);
}

void
ControllerBase::retireModel(ModelId model)
{
    if (model >= models_.size())
        fatal("retireModel: unknown model " + std::to_string(model));
    ModelEntry &me = models_[model];
    if (me.retired)
        return;
    me.retired = true;
    for (Request *req : pending_) {
        if (req->state == RequestState::Queued && req->model == model)
            dropRequest(req);
    }
    // The dropped ghosts purge from pending_ at later retry rounds.
    auto &dq = pendingDecode_[model];
    decodePendingCount_ -= dq.size();
    for (auto &entry : dq) {
        Request *req = entry.second;
        --req->queueRefs; // leaving the decode queue for good
        if (req->state == RequestState::Transfer)
            dropRequest(req);
        else
            maybeReclaim(req); // settled ghost: last ref just left
    }
    dq.clear();
    drainInstanceSet(me.instances, true);
}

std::vector<std::size_t>
ControllerBase::pendingPerModel() const
{
    std::vector<std::size_t> depth(models_.size(), 0);
    for (const Request *req : pending_) {
        if (req->state == RequestState::Queued)
            ++depth[req->model];
    }
    for (std::size_t m = 0; m < pendingDecode_.size(); ++m) {
        for (const auto &entry : pendingDecode_[m]) {
            if (entry.second->state == RequestState::Transfer)
                ++depth[m];
        }
    }
    return depth;
}

TokenScheduler &
ControllerBase::schedulerFor(Partition *part)
{
    std::unique_ptr<TokenScheduler> &slot = scheds_[part->viewPos];
    if (slot)
        return *slot;

    TokenScheduler::Callbacks cbs;
    cbs.onRequestDone = [this](Request *r, Instance *i) {
        requestDone(r, i);
    };
    cbs.routeAfterPrefill = [this](Request *r, Instance *i) {
        return takeAfterPrefill(r, i);
    };
    cbs.onKvShortage = [this](Instance *i) { handleKvShortage(i); };
    slot = std::make_unique<TokenScheduler>(
        sim_, *part, schedPolicy(), cfg_.noiseSigma,
        rng_.fork(0x5C4ED + part->node * 16 + part->index), std::move(cbs),
        stats_, &index_, trace_, anat_);
    // Lockstep mode: the new scheduler becomes the partition's chain,
    // ranked by viewPos — the canonical boundary-merge order. The RNG
    // fork above is keyed the same way, so a lane draws an identical
    // noise stream no matter which worker thread runs it.
    if (LockstepEngine *engine = sim_.lockstep())
        engine->registerLane(part->viewPos, slot.get());
    return *slot;
}

void
ControllerBase::kickPartition(Partition *part)
{
    schedulerFor(part).kick();
}

Instance *
ControllerBase::makeInstance(ModelId model, Partition *primary,
                             HardwareSpec execSpec, Bytes kvAlloc,
                             InstanceRole role,
                             std::vector<Partition *> extraHolds,
                             bool staticKv)
{
    auto inst = std::make_unique<Instance>(
        static_cast<InstanceId>(instancePool_.size() + 1), model,
        models_[model].spec, primary, std::move(execSpec), kvAlloc);
    inst->role = role;
    inst->staticKv = staticKv;
    inst->createdAt = sim_.now();
    inst->extraHolds = std::move(extraHolds);
    Instance *ptr = inst.get();
    instancePool_.push_back(std::move(inst));
    ++instancesCreated_;

    primary->instances.push_back(ptr);
    index_.onInstanceAdded(*ptr);
    for (Partition *p : ptr->extraHolds) {
        p->exclusiveHolder = ptr;
        if (!p->mem.tryHold(p->mem.capacity() - p->mem.used()))
            panic("makeInstance: exclusive hold failed");
    }
    if (!ptr->extraHolds.empty())
        primary->exclusiveHolder = ptr;
    models_[model].instances.push_back(ptr);
    schedulerFor(primary); // ensure the scheduler exists
    return ptr;
}

void
ControllerBase::startStaticLoad(Instance *inst)
{
    Bytes footprint = std::min<Bytes>(
        inst->model.weightBytes() + inst->kv.allocBytes(),
        inst->primary->mem.capacity() - inst->primary->mem.used());
    if (!inst->primary->mem.tryHold(footprint))
        panic("startStaticLoad: static hold failed");
    inst->memResident = true;
    inst->heldPrimaryBytes = footprint;
    inst->loadDuration = Loader::loadTime(inst->primary->spec, inst->model);
    if (trace_)
        trace_->complete(obs::kCatMemory, "load", sim_.now(),
                         inst->loadDuration, obs::kPidCluster,
                         static_cast<int>(inst->primary->viewPos),
                         "instance", static_cast<double>(inst->id));
    sim_.schedule(inst->loadDuration, [this, inst] {
        inst->state = InstanceState::Active;
        inst->activeAt = sim_.now();
        index_.onInstanceActivated(*inst);
        if (anat_) {
            for (Request *r : inst->prefillQueue)
                anat_->onInstanceActive(*r, sim_.now());
            for (Request *r : inst->decodeBatch)
                anat_->onInstanceActive(*r, sim_.now());
        }
        markAllDecodeDirty();
        kickPartition(inst->primary);
        retryPending();
    });
}

void
ControllerBase::unloadStatic(Instance *inst)
{
    index_.onInstanceUnloading(*inst);
    if (inst->state == InstanceState::Active)
        index_.onInstanceDeactivated(*inst);
    inst->state = InstanceState::Unloading;
    markAllDecodeDirty();
    Seconds unload_dur =
        MemCostModel::weightUnloadTime(inst->primary->spec, inst->model);
    if (trace_)
        trace_->complete(obs::kCatMemory, "unload", sim_.now(),
                         unload_dur, obs::kPidCluster,
                         static_cast<int>(inst->primary->viewPos),
                         "instance", static_cast<double>(inst->id));
    sim_.schedule(
        unload_dur,
        [this, inst] {
            inst->state = InstanceState::Reclaimed;
            inst->reclaimedAt = sim_.now();
            index_.onInstanceReclaimed(*inst);
            inst->primary->mem.release(inst->heldPrimaryBytes);
            inst->heldPrimaryBytes = 0;
            unregisterInstance(inst);
            markAllDecodeDirty();
            retryPending();
        });
}

void
ControllerBase::unregisterInstance(Instance *inst)
{
    auto &pv = inst->primary->instances;
    pv.erase(std::remove(pv.begin(), pv.end(), inst), pv.end());
    if (inst->primary->exclusiveHolder == inst)
        inst->primary->exclusiveHolder = nullptr;
    for (Partition *p : inst->extraHolds) {
        if (p->exclusiveHolder == inst) {
            p->exclusiveHolder = nullptr;
            p->mem.release(p->mem.used());
        }
    }
    auto &mv = models_[inst->modelId].instances;
    mv.erase(std::remove(mv.begin(), mv.end(), inst), mv.end());
}

void
ControllerBase::scheduleKeepAlive(Instance *inst)
{
    cancelKeepAlive(inst);
    inst->keepAliveEv = sim_.schedule(cfg_.keepAlive, [this, inst] {
        if (inst->state != InstanceState::Active || inst->loadSize() > 0)
            return;
        if (inst->resizeInFlight) {
            // Retry once the op settles. A strictly positive delay is
            // required even when keepAlive is 0, or same-time retries
            // would spin without ever advancing the clock.
            inst->keepAliveEv = sim_.schedule(
                std::max(cfg_.keepAlive, 0.05),
                [this, inst] { scheduleKeepAlive(inst); });
            return;
        }
        doUnload(inst);
    });
}

void
ControllerBase::cancelKeepAlive(Instance *inst)
{
    inst->keepAliveEv.cancel();
}

void
ControllerBase::admitTo(Request *req, Instance *inst)
{
    cancelKeepAlive(inst);
    auto it = dropEvents_.find(req->id);
    if (it != dropEvents_.end()) {
        it->second.cancel();
        dropEvents_.erase(it);
    }
    req->instance = inst->id;
    req->state = RequestState::Prefill;
    req->dispatchFailures = 0;
    req->retryAfter = 0.0;
    if (anat_)
        anat_->onAdmit(*req, inst->state == InstanceState::Loading,
                       sim_.now());
    if (trace_)
        trace_->asyncInstant(obs::kCatRequest, "admit", sim_.now(),
                             tracePid(req->model), req->id, "instance",
                             static_cast<double>(inst->id));
    if (inst->state == InstanceState::Loading)
        req->grace = std::max(req->grace, inst->loadDuration);
    inst->prefillQueue.push_back(req);
    kickPartition(inst->primary);
}

bool
ControllerBase::admitToDecode(Request *req, Instance *inst)
{
    Tokens need = PagedKvCache::roundedTokens(req->contextLen() + 1);
    if (!inst->kv.reserve(need))
        return false;
    cancelKeepAlive(inst);
    req->kvReserved = need;
    req->instance = inst->id;
    req->state = RequestState::Decode;
    req->dispatchFailures = 0;
    req->retryAfter = 0.0;
    if (anat_)
        anat_->onDecodeAdmit(*req,
                             inst->state == InstanceState::Loading,
                             sim_.now());
    if (trace_)
        trace_->asyncInstant(obs::kCatRequest, "admit-decode", sim_.now(),
                             tracePid(req->model), req->id, "instance",
                             static_cast<double>(inst->id));
    inst->decodeBatch.push_back(req);
    kickPartition(inst->primary);
    return true;
}

void
ControllerBase::queueRequest(Request *req)
{
    pending_.push_back(req);
    ++req->queueRefs;
    if (trace_)
        trace_->asyncInstant(obs::kCatRequest,
                             requestStateName(req->state), sim_.now(),
                             tracePid(req->model), req->id);
    if (req->generated > 0)
        return; // re-queued mid-decode; never proactively dropped
    Seconds deadline = req->arrival + cfg_.slo.ttft(req->inputLen);
    Seconds delay = std::max<Seconds>(0.0, deadline - sim_.now());
    dropEvents_[req->id] = sim_.schedule(delay, [this, req] {
        if (req->state != RequestState::Queued)
            return;
        req->state = RequestState::Dropped;
        recorder_.onDrop(*req, sim_.now());
        if (anat_)
            anat_->onDrop(*req, sim_.now());
        dropEvents_.erase(req->id);
        traceRequestEnd(req);
    });
}

void
ControllerBase::queueDecode(Request *req)
{
    pendingDecode_[req->model].push_back({decodeSeq_++, req});
    ++req->queueRefs;
    ++decodePendingCount_;
    decodeDirty_[req->model] = 1;
}

void
ControllerBase::markDecodeDirty(ModelId model)
{
    if (decodePendingCount_ == 0)
        return;
    decodeDirty_[model] = 1;
}

void
ControllerBase::markAllDecodeDirty()
{
    if (decodePendingCount_ == 0)
        return;
    std::fill(decodeDirty_.begin(), decodeDirty_.end(), char(1));
}

void
ControllerBase::retryPending()
{
    if (inRetry_) {
        retryAgain_ = true;
        return;
    }
    inRetry_ = true;
    obs::bump(ctr_, obs::kPendingWakeups);
    obs::ScopedPhase phase(prof_, obs::kPhaseControllerDecide);
    do {
        retryAgain_ = false;
        // Cap the failed-dispatch work per retry round: under deep
        // saturation re-validating the entire queue on every event is
        // quadratic for no benefit (stuck heads drop at their TTFT
        // deadline soon anyway). Unlike the pre-index code, the drain
        // stops at the cap instead of cycling the whole deque through
        // a scratch copy — entries behind the cap are left untouched
        // (admitted/dropped ghosts among them are purged whenever a
        // later round reaches them), so a deep backlog costs the
        // failures actually attempted, not O(queue) churn per event.
        const ResilienceConfig &res = cfg_.resilience;
        const int kMaxFailures = res.retryCap;
        int failures = 0;
        retryStill_.clear();
        while (!pending_.empty() && failures < kMaxFailures) {
            Request *req = pending_.front();
            pending_.pop_front();
            --req->queueRefs;
            if (req->state != RequestState::Queued) {
                // Dropped or already admitted elsewhere: purge the
                // ghost (and recycle it if this was its last ref).
                maybeReclaim(req);
                continue;
            }
            if (res.backoff && req->retryAfter > sim_.now()) {
                // Parked under backoff: not charged as a failure (the
                // wakeup armBackoff scheduled re-runs this round).
                retryStill_.push_back(req);
                continue;
            }
            if (!tryDispatch(req)) {
                if (anat_)
                    anat_->onPlacementRetry(*req);
                ++failures;
                if (res.backoff && !armBackoff(req))
                    continue; // deadline-aware give-up dropped it
                retryStill_.push_back(req);
            }
        }
        // Preserve arrival order for the survivors, ahead of the
        // untouched tail and anything queued while we were
        // dispatching.
        for (auto it = retryStill_.rbegin(); it != retryStill_.rend();
             ++it) {
            pending_.push_front(*it);
            ++(*it)->queueRefs;
        }

        retryDecodePending();
    } while (retryAgain_);
    inRetry_ = false;
}

bool
ControllerBase::armBackoff(Request *req)
{
    const ResilienceConfig &res = cfg_.resilience;
    ++req->dispatchFailures;
    Seconds delay = res.backoffBase;
    for (int i = 1; i < req->dispatchFailures && delay < res.backoffMax;
         ++i)
        delay *= 2.0;
    delay = std::min(delay, res.backoffMax);
    if (req->generated == 0) {
        // Deadline-aware give-up: a request that cannot attempt again
        // before its TTFT drop deadline can never dispatch in time.
        // (The deadline event itself fires the same way; dropping here
        // just skips retry rounds the request was doomed to lose.)
        Seconds deadline = req->arrival + cfg_.slo.ttft(req->inputLen);
        if (sim_.now() + delay >= deadline) {
            dropRequest(req);
            return false;
        }
    }
    req->retryAfter = sim_.now() + delay;
    sim_.schedule(delay, [this] { retryPending(); });
    return true;
}

bool
ControllerBase::placementExcluded(const Partition *p) const
{
    Seconds w = cfg_.resilience.failoverExclusion;
    return w > 0 && p->lastFailedAt >= 0 &&
           sim_.now() < p->lastFailedAt + w;
}

void
ControllerBase::retryDecodePending()
{
    if (decodePendingCount_ == 0)
        return;
    if (cfg_.oracleScans) {
        // Oracle behavior: re-validate every queue on every round.
        std::fill(decodeDirty_.begin(), decodeDirty_.end(), char(1));
    }
    // Collect the dirty models' entries and replay them in global
    // arrival order. Clean queues are skipped entirely: decode
    // admission has no deadline term, so an entry that failed stays
    // failed until some relevant state changes — and every such
    // change marks the affected queues dirty.
    decodeRound_.clear();
    for (std::size_t m = 0; m < pendingDecode_.size(); ++m) {
        if (!decodeDirty_[m] || pendingDecode_[m].empty())
            continue;
        for (auto &e : pendingDecode_[m])
            decodeRound_.push_back(e);
        pendingDecode_[m].clear();
    }
    // Clear the dirty set before dispatching so wakeups raised by the
    // dispatches themselves (new entries, admissions) survive the
    // round.
    std::fill(decodeDirty_.begin(), decodeDirty_.end(), char(0));
    if (decodeRound_.empty())
        return;
    obs::bump(ctr_, obs::kDecodeWakeups);
    std::sort(decodeRound_.begin(), decodeRound_.end());
    bool admitted = false;
    for (auto &entry : decodeRound_) {
        Request *req = entry.second;
        if (req->state != RequestState::Transfer) {
            --decodePendingCount_;
            --req->queueRefs;
            maybeReclaim(req); // settled ghost leaving for good
            continue;
        }
        if (tryDispatchDecode(req)) {
            --decodePendingCount_;
            --req->queueRefs;
            admitted = true;
        } else {
            pendingDecode_[req->model].push_back(entry);
        }
    }
    // An admission mutated cluster state (batches, budgets), which can
    // unblock entries that failed earlier in this round.
    if (admitted)
        markAllDecodeDirty();
}

void
ControllerBase::requestDone(Request *req, Instance *inst)
{
    req->completionTime = sim_.now();
    recorder_.onComplete(*req, sim_.now());
    if (anat_)
        anat_->onComplete(*req, sim_.now());
    traceRequestEnd(req);
    ModelEntry &me = models_[req->model];
    me.avgOutput = 0.85 * me.avgOutput +
                   0.15 * static_cast<double>(req->generated);
    onRequestDoneHook(req, inst);
    // Shortage-driven wakeup: the completion freed a batch slot and KV
    // on `inst` and shrank its partition's aggregate decode load, so
    // only this model's decode queue and those of its partition
    // neighbors can newly admit.
    if (decodePendingCount_ > 0) {
        markDecodeDirty(req->model);
        for (const Instance *other : inst->primary->instances)
            markDecodeDirty(other->modelId);
    }
    if (inst->loadSize() == 0 && inst->state == InstanceState::Active)
        scheduleKeepAlive(inst);
    retryPending();
    maybeReclaim(req);
}

void
ControllerBase::requeueEvicted(Request *req, Instance *inst)
{
    inst->removeRequest(req);
    inst->kv.release(req->kvReserved);
    req->kvReserved = 0;
    req->instance = 0;
    req->state = RequestState::Queued;
    ++req->migrations;
    ++evictions_;
    if (anat_)
        anat_->onEvicted(*req, sim_.now());
    queueRequest(req);
}

void
ControllerBase::evictLongestHeadroom(Instance *inst)
{
    Request *victim = nullptr;
    Seconds best = -std::numeric_limits<Seconds>::infinity();
    for (Request *r : inst->decodeBatch) {
        Seconds h = r->headroom(sim_.now());
        if (h > best) {
            best = h;
            victim = r;
        }
    }
    if (!victim)
        return;
    requeueEvicted(victim, inst);
    markAllDecodeDirty();
    retryPending();
}

bool
ControllerBase::takeAfterPrefill(Request *req, Instance *inst)
{
    if (!cfg_.pdDisaggregation || inst->role != InstanceRole::PrefillOnly)
        return false;
    // KV pages stream to the decode instance over the fabric; the
    // prefill instance frees them locally once sent.
    inst->kv.release(req->kvReserved);
    req->kvReserved = 0;
    req->instance = 0;
    req->state = RequestState::Transfer;
    if (anat_)
        anat_->onTransfer(*req, sim_.now());
    Bytes kv_bytes = static_cast<Bytes>(req->contextLen()) *
                     inst->model.kvBytesPerToken();
    if (trace_)
        trace_->asyncInstant(obs::kCatRequest,
                             requestStateName(req->state), sim_.now(),
                             tracePid(req->model), req->id, "kv_bytes",
                             static_cast<double>(kv_bytes));
    if (inst->loadSize() == 0 && inst->state == InstanceState::Active)
        scheduleKeepAlive(inst);
    markAllDecodeDirty();
    sim_.schedule(MemCostModel::kvMigrationTime(kv_bytes) * netFactor_,
                  [this, req] {
        if (models_[req->model].retired) {
            dropRequest(req); // retired mid-transfer; nothing may place
            return;
        }
        if (!tryDispatchDecode(req))
            queueDecode(req);
    });
    return true;
}

std::vector<Partition *>
ControllerBase::allPartitionsOracle(bool cpuFirst) const
{
    std::vector<Partition *> cpu, gpu;
    for (const auto &node : nodes_) {
        for (const auto &part : node->partitions()) {
            (node->isCpu() ? cpu : gpu).push_back(part.get());
        }
    }
    if (!cpuFirst)
        cpu.clear();
    std::vector<Partition *> out = std::move(cpu);
    out.insert(out.end(), gpu.begin(), gpu.end());
    return out;
}

double
ControllerBase::scalingOverheadFraction() const
{
    // Always the exact pool scan: this figure lands verbatim in every
    // report, and the running aggregate accumulates in event order,
    // whose last-ulp rounding can differ from the pool-order sum the
    // reports have always carried. The scan runs once per experiment;
    // policy/bench-time consumers needing O(1) read
    // clusterIndex().scalingOverheadFraction(now) instead (the fuzz
    // test keeps the two within 1e-9 of each other).
    return scalingOverheadFractionOracle();
}

double
ControllerBase::scalingOverheadFractionOracle() const
{
    double scaling = 0.0;
    double uptime = 0.0;
    for (const auto &inst : instancePool_) {
        if (inst->activeAt < 0)
            continue;
        Seconds end = inst->state == InstanceState::Reclaimed
                          ? inst->activeAt + inst->busyTime +
                                inst->scalingTime
                          : sim_.now();
        scaling += inst->scalingTime;
        uptime += std::max<Seconds>(end - inst->activeAt, 1e-9);
    }
    return uptime > 0 ? scaling / uptime : 0.0;
}

double
ControllerBase::totalBusySeconds(HwKind kind) const
{
    if (cfg_.oracleScans)
        return totalBusySecondsOracle(kind);
    return index_.busySeconds(kind);
}

double
ControllerBase::totalBusySecondsOracle(HwKind kind) const
{
    double total = 0.0;
    for (const auto &inst : instancePool_) {
        if (inst->execSpec.kind == kind)
            total += inst->busyTime;
    }
    return total;
}

double
ControllerBase::kvUtilizationNow() const
{
    if (cfg_.oracleScans)
        return kvUtilizationNowOracle();
    return index_.kvUtilizationNow();
}

double
ControllerBase::kvUtilizationNowOracle() const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto &inst : instancePool_) {
        if (inst->state != InstanceState::Active || inst->loadSize() == 0)
            continue;
        sum += inst->kv.utilization();
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

// ====================================================================
// SlinferController
// ====================================================================

SlinferController::SlinferController(
    Simulator &sim, std::vector<std::unique_ptr<Node>> &nodes,
    std::vector<ModelSpec> modelSpecs,
    std::vector<double> initialAvgOutput, ControllerConfig cfg,
    Recorder &recorder, ClusterStats *stats)
    : ControllerBase(sim, nodes, std::move(modelSpecs),
                     std::move(initialAvgOutput), cfg, recorder, stats),
      shadow_(quant_, ShadowConfig{cfg.overestimate, cfg.slo.tpot, 500})
{
    mem_.resize(index_.partitions(true).size());
    // Offline profiling: every (hardware type, model) pair the cluster
    // could combine (§VI-B). Partition specs share their node's name
    // only when identical, so profile per concrete spec.
    for (const auto &node : nodes_) {
        for (const auto &part : node->partitions()) {
            for (const auto &me : models_) {
                if (!quant_.profiled(part->spec, me.spec))
                    quant_.profile(part->spec, me.spec);
                // Tensor-parallel exec spec for exclusive fallbacks.
                if (me.spec.tpDegree > 1 && !node->isCpu()) {
                    HardwareSpec tp = PerfModel::tensorParallel(
                        node->spec(), me.spec.tpDegree);
                    if (!quant_.profiled(tp, me.spec))
                        quant_.profile(tp, me.spec);
                }
            }
        }
    }
    consolidator_ = std::make_unique<Consolidator>(*this);
}

SlinferController::~SlinferController() = default;

SchedPolicy
SlinferController::schedPolicy() const
{
    return SchedPolicy::Headroom;
}

MemorySubsystem &
SlinferController::subsystemFor(Partition *part)
{
    std::unique_ptr<MemorySubsystem> &slot = mem_[part->viewPos];
    if (slot)
        return *slot;
    slot = std::make_unique<MemorySubsystem>(
        sim_, *part, cfg_.watermark,
        [this, part] {
            markAllDecodeDirty();
            kickPartition(part);
            retryPending();
        },
        &index_, cfg_.oracleScans, ctr_, trace_, prof_, anat_);
    return *slot;
}

bool
SlinferController::cpuFeasible(const ModelSpec &spec,
                               const Request &req) const
{
    const HardwareSpec *cpu = index_.cpuSpec();
    if (!cpu || !cpu->hasMatrixAccel)
        return false;
    if (!quant_.profiled(*cpu, spec))
        return false;
    Seconds ttft_slo = cfg_.slo.ttft(req.inputLen);
    if (quant_.prefillEstimate(*cpu, spec, req.contextLen()) *
            cfg_.overestimate >
        ttft_slo) {
        return false;
    }
    Tokens ctx = req.inputLen +
                 static_cast<Tokens>(models_[req.model].avgOutput);
    return quant_.decodeEstimate(*cpu, spec, 1, ctx) * cfg_.overestimate <=
           cfg_.slo.tpot;
}

bool
SlinferController::exclusiveOnly(const ModelSpec &spec) const
{
    if (spec.tpDegree > 1)
        return true;
    // A model whose weights leave less than one max-context KV slot on
    // the largest GPU partition cannot be shared meaningfully.
    Bytes gpu_cap = index_.gpuPartitionCapacity();
    if (gpu_cap == 0)
        return false;
    Bytes min_kv = static_cast<Bytes>(spec.maxContext) *
                   spec.kvBytesPerToken();
    return spec.weightBytes() + 2 * min_kv > gpu_cap;
}

Seconds
SlinferController::partBusyUntil(Partition *part)
{
    return schedulerFor(part).busyUntil();
}

bool
SlinferController::tryExistingInstances(Request *req)
{
    ModelEntry &me = models_[req->model];
    std::vector<Instance *> cands;
    for (Instance *inst : me.instances) {
        if (inst->state != InstanceState::Active &&
            inst->state != InstanceState::Loading)
            continue;
        if (inst->draining || inst->primary->failed)
            continue; // being drained by an intervention
        if (cfg_.pdDisaggregation &&
            inst->role != InstanceRole::PrefillOnly)
            continue;
        if (!cfg_.pdDisaggregation && inst->role != InstanceRole::Unified)
            continue;
        cands.push_back(inst);
    }
    // Reactive bin-packing (§VIII-B): the largest-batch instance takes
    // new requests first so fragments drain; ties prefer CPU residents
    // when the request is CPU-feasible (§V's CPU-first policy).
    bool cpu_ok = cfg_.useCpu && cpuFeasible(me.spec, *req);
    std::stable_sort(cands.begin(), cands.end(),
                     [cpu_ok](const Instance *a, const Instance *b) {
                         if (a->batchSize() != b->batchSize())
                             return a->batchSize() > b->batchSize();
                         bool ac = a->execSpec.kind == HwKind::Cpu;
                         bool bc = b->execSpec.kind == HwKind::Cpu;
                         if (ac != bc)
                             return cpu_ok ? ac : bc;
                         return false;
                     });
    for (Instance *inst : cands) {
        if (inst->execSpec.kind == HwKind::Cpu && !cpu_ok)
            continue;
        Partition *p = inst->primary;
        obs::bump(ctr_, obs::kShadowRuns);
        if (!shadow_.canAdmit(*p, inst, *req, sim_.now(),
                              partBusyUntil(p))) {
            ++dispatchStats_.rejectShadow;
            continue;
        }
        if (inst->staticKv) {
            Tokens need = PagedKvCache::roundedTokens(req->contextLen()) +
                          PagedKvCache::kBlockTokens;
            if (!inst->kv.canFit(need))
                continue;
            admitTo(req, inst);
            return true;
        }
        auto plan = subsystemFor(p).planAdmit(*inst, *req,
                                              me.avgOutput);
        if (!plan.ok) {
            ++dispatchStats_.rejectMemory;
            continue;
        }
        subsystemFor(p).commitPlan(*inst, plan);
        ++dispatchStats_.admitExisting;
        admitTo(req, inst);
        return true;
    }
    return false;
}

SlinferController::PlacementDemand
SlinferController::placementDemand(const Request &req) const
{
    const ModelEntry &me = models_[req.model];
    PlacementDemand d;
    d.cpuOk = cfg_.useCpu && cpuFeasible(me.spec, req);
    d.weights = me.spec.weightBytes();
    d.require = static_cast<Bytes>(std::max(
                    static_cast<double>(req.inputLen) + me.avgOutput,
                    static_cast<double>(me.spec.maxContext))) *
                me.spec.kvBytesPerToken();
    d.recommend = static_cast<Bytes>(static_cast<double>(d.require) *
                                     (1.0 + cfg_.watermark));
    return d;
}

bool
SlinferController::placementCandidateOk(Partition *p, const Request &req,
                                        const PlacementDemand &d,
                                        Bytes &kvInit)
{
    const ModelSpec &spec = models_[req.model].spec;
    if (p->spec.kind == HwKind::Cpu && !d.cpuOk)
        return false;
    if (!p->openForPlacement() || placementExcluded(p))
        return false;
    if (!cfg_.enableSharing && !p->instances.empty())
        return false;
    MemorySubsystem &sub = subsystemFor(p);
    if (sub.canPlaceIndexed(d.weights, d.recommend))
        kvInit = d.recommend;
    else if (sub.canPlaceIndexed(d.weights, d.require))
        kvInit = d.require; // compromise (§VII-D)
    else
        return false;
    Seconds ready = sim_.now() + Loader::loadTime(p->spec, spec);
    obs::bump(ctr_, obs::kShadowRuns);
    return shadow_.canAdmitNew(*p, spec, p->spec, req, sim_.now(),
                               partBusyUntil(p), ready);
}

/**
 * Indexed candidate selection. The free-capacity index orders each
 * hardware kind's partitions by (free optimistic bytes, view
 * position); walking ascending from the first possibly-sufficient
 * key and returning the first candidate that passes eligibility +
 * shadow validation selects exactly the partition the oracle's
 * best-fit scan would: the oracle keeps the minimum (free, id-order)
 * among shadow-passing candidates, which is the first passing element
 * of this walk (shadow validation is pure, so evaluating candidates
 * in a different order cannot change any verdict).
 */
SlinferController::PlacementChoice
SlinferController::selectPlacement(const Request &req,
                                   const PlacementDemand &d)
{
    obs::bump(ctr_, obs::kPlacementProbes);
    auto tryKind = [&](HwKind kind) -> PlacementChoice {
        const auto &fs = index_.freeSet(kind);
        // Eligibility needs free >= weights + require + reserve; the
        // reserve term varies with partition capacity, so start at the
        // necessary bound and let canPlace reject the stragglers.
        ClusterIndex::FreeKey from{d.weights + d.require, 0};
        for (auto it = fs.lower_bound(from); it != fs.end(); ++it) {
            obs::bump(ctr_, obs::kIndexWalkSteps);
            Partition *p = index_.partitionAt(it->second);
            Bytes kv_init = 0;
            if (placementCandidateOk(p, req, d, kv_init))
                return {p, kv_init};
        }
        return {};
    };
    if (d.cpuOk) {
        // CPU strictly preferred over GPU (§V).
        PlacementChoice c = tryKind(HwKind::Cpu);
        if (c.part)
            return c;
    }
    return tryKind(HwKind::Gpu);
}

/** The pre-index full scan: best fit over every partition, CPU
 *  strictly preferred, shadow-checked whenever a candidate improves
 *  on the current best. */
SlinferController::PlacementChoice
SlinferController::selectPlacementOracle(const Request &req,
                                         const PlacementDemand &d)
{
    const ModelSpec &spec = models_[req.model].spec;
    Partition *best = nullptr;
    Bytes best_free = std::numeric_limits<Bytes>::max();
    Bytes best_kv = 0;
    for (Partition *p : allPartitionsOracle(d.cpuOk)) {
        bool is_cpu = p->spec.kind == HwKind::Cpu;
        if (is_cpu && !d.cpuOk)
            continue;
        if (!p->openForPlacement() || placementExcluded(p))
            continue;
        if (!cfg_.enableSharing && !p->instances.empty())
            continue;
        MemorySubsystem &sub = subsystemFor(p);
        Bytes kv_init = 0;
        if (sub.canPlaceScan(d.weights, d.recommend))
            kv_init = d.recommend;
        else if (sub.canPlaceScan(d.weights, d.require))
            kv_init = d.require; // compromise (§VII-D)
        else
            continue;
        Bytes committed = sub.committedScan();
        Bytes free = p->mem.capacity() - committed;
        // Prefer CPU over GPU strictly; then best fit.
        bool better;
        if (best && (best->spec.kind == HwKind::Cpu) != is_cpu)
            better = is_cpu;
        else
            better = free < best_free;
        if (!better && best)
            continue;
        Seconds ready = sim_.now() + Loader::loadTime(p->spec, spec);
        if (!shadow_.canAdmitNew(*p, spec, p->spec, req, sim_.now(),
                                 partBusyUntil(p), ready))
            continue;
        best = p;
        best_free = free;
        best_kv = kv_init;
    }
    return {best, best_kv};
}

SlinferController::PlacementChoice
SlinferController::probePlacement(const Request &req, bool oracle)
{
    PlacementDemand d = placementDemand(req);
    return oracle ? selectPlacementOracle(req, d)
                  : selectPlacement(req, d);
}

bool
SlinferController::tryNewInstance(Request *req)
{
    ModelEntry &me = models_[req->model];
    if (exclusiveOnly(me.spec))
        return tryExclusivePlacement(req);

    PlacementDemand d = placementDemand(*req);
    PlacementChoice choice = cfg_.oracleScans
                                 ? selectPlacementOracle(*req, d)
                                 : selectPlacement(*req, d);
    if (!choice.part) {
        ++dispatchStats_.rejectNoPlacement;
        return false;
    }
    ++dispatchStats_.admitNew;

    Partition *best = choice.part;
    if (trace_)
        trace_->instant(obs::kCatController, "place-new", sim_.now(),
                        obs::kPidController, 0, "partition",
                        static_cast<double>(best->viewPos));
    Instance *inst = makeInstance(req->model, best, best->spec,
                                  choice.kvInit,
                                  cfg_.pdDisaggregation
                                      ? InstanceRole::PrefillOnly
                                      : InstanceRole::Unified,
                                  {}, false);
    subsystemFor(best).beginLoad(*inst, [this, inst] {
        kickPartition(inst->primary);
        retryPending();
    });
    admitTo(req, inst);
    return true;
}

bool
SlinferController::tryExclusivePlacement(Request *req)
{
    ModelEntry &me = models_[req->model];
    int degree = std::max(1, me.spec.tpDegree);
    // Collect fully idle GPU nodes.
    std::vector<Node *> free_nodes;
    for (const auto &node : nodes_) {
        if (node->isCpu() || node->inUse() || node->failed())
            continue;
        if (!node->partitions().empty() &&
            placementExcluded(node->partitions().front().get()))
            continue;
        free_nodes.push_back(node.get());
        if (static_cast<int>(free_nodes.size()) == degree)
            break;
    }
    if (static_cast<int>(free_nodes.size()) < degree)
        return false;

    HardwareSpec exec = PerfModel::tensorParallel(free_nodes[0]->spec(),
                                                  degree);
    if (!quant_.profiled(exec, me.spec))
        quant_.profile(exec, me.spec);
    Bytes total_cap = 0;
    std::vector<Partition *> holds;
    for (Node *n : free_nodes) {
        for (auto &p : n->partitions()) {
            total_cap += p->mem.capacity();
            holds.push_back(p.get());
        }
    }
    Partition *primary = holds.front();
    holds.erase(holds.begin());
    Bytes kv_alloc = total_cap - me.spec.weightBytes();
    Instance *inst = makeInstance(req->model, primary, exec, kv_alloc,
                                  InstanceRole::Unified, holds, true);
    startStaticLoad(inst);
    admitTo(req, inst);
    return true;
}

bool
SlinferController::tryDispatch(Request *req)
{
    if (tryExistingInstances(req))
        return true;
    if (cfg_.enableConsolidation && !cfg_.pdDisaggregation &&
        consolidator_->tryPreemptFor(req)) {
        ++dispatchStats_.admitPreempt;
        return true;
    }
    if (tryNewInstance(req))
        return true;
    // No room anywhere: reclaim idle instances now instead of waiting
    // out their keep-alive; the queued request retries when the memory
    // release lands.
    demandReclaimFor(req);
    return false;
}

bool
SlinferController::demandReclaimFor(Request *req)
{
    const ModelSpec &spec = models_[req->model].spec;
    Bytes weights = spec.weightBytes();
    Bytes require =
        static_cast<Bytes>(std::max(
            static_cast<double>(req->inputLen) +
                models_[req->model].avgOutput,
            static_cast<double>(spec.maxContext))) *
        spec.kvBytesPerToken();
    bool cpu_ok = cfg_.useCpu && cpuFeasible(spec, *req);

    for (Partition *p : allPartitions(cpu_ok)) {
        if (p->spec.kind == HwKind::Cpu && !cpu_ok)
            continue;
        if (!p->openForPlacement() || placementExcluded(p))
            continue;
        if (!cfg_.enableSharing && !p->instances.empty()) {
            // Exclusive placement: any fully idle partition will do
            // once its residents are gone.
        }
        MemorySubsystem &sub = subsystemFor(p);
        Bytes committed = sub.committed();
        Bytes cap = static_cast<Bytes>(
            static_cast<double>(sub.capacity()) *
            (1.0 - MemorySubsystem::kPlacementReserve));
        if (committed + weights + require <= cap)
            continue; // placeable already; the shadow check failed here
        // Sum reclaimable idle footprints, largest first.
        std::vector<Instance *> idle;
        for (Instance *inst : p->instances) {
            if (inst->state == InstanceState::Active &&
                inst->loadSize() == 0 && !inst->resizeInFlight) {
                idle.push_back(inst);
            }
        }
        std::sort(idle.begin(), idle.end(),
                  [](const Instance *a, const Instance *b) {
                      return a->model.weightBytes() + a->kvTarget >
                             b->model.weightBytes() + b->kvTarget;
                  });
        Bytes reclaimable = 0;
        std::vector<Instance *> victims;
        for (Instance *inst : idle) {
            victims.push_back(inst);
            reclaimable += inst->model.weightBytes() + inst->kvTarget;
            if (committed - reclaimable + weights + require <= cap)
                break;
        }
        if (committed - reclaimable + weights + require > cap)
            continue;
        for (Instance *inst : victims) {
            cancelKeepAlive(inst);
            doUnload(inst);
        }
        return true;
    }
    return false;
}

bool
SlinferController::tryDispatchDecode(Request *req)
{
    ModelEntry &me = models_[req->model];
    std::vector<Instance *> cands;
    for (Instance *inst : me.instances) {
        if (inst->role != InstanceRole::DecodeOnly)
            continue;
        if (inst->state != InstanceState::Active)
            continue;
        if (inst->draining || inst->primary->failed)
            continue; // being drained by an intervention
        cands.push_back(inst);
    }
    Consolidator::orderLargestBatchFirst(cands);
    for (Instance *inst : cands) {
        Partition *p = inst->primary;
        if (!shadow_.aggregateDecodeFits(*p, inst, 1, req->contextLen()))
            continue;
        auto plan = subsystemFor(p).planAdmit(*inst, *req, me.avgOutput);
        if (!plan.ok)
            continue;
        subsystemFor(p).commitPlan(*inst, plan);
        if (admitToDecode(req, inst))
            return true;
    }
    // Create a decode instance.
    Bytes weights = me.spec.weightBytes();
    Bytes require = static_cast<Bytes>(std::max(
                        static_cast<double>(req->contextLen()) +
                            me.avgOutput,
                        static_cast<double>(me.spec.maxContext))) *
                    me.spec.kvBytesPerToken();
    for (Partition *p : allPartitions(cfg_.useCpu)) {
        if (!p->openForPlacement() || placementExcluded(p))
            continue;
        MemorySubsystem &sub = subsystemFor(p);
        if (!sub.canPlace(weights, require))
            continue;
        Instance *inst = makeInstance(req->model, p, p->spec, require,
                                      InstanceRole::DecodeOnly, {}, false);
        sub.beginLoad(*inst, [this, inst] {
            kickPartition(inst->primary);
            retryPending();
        });
        // Joins the batch once the load completes and KV is resident.
        if (admitToDecode(req, inst))
            return true;
        queueDecode(req);
        return true;
    }
    return false;
}

void
SlinferController::handleKvShortage(Instance *inst)
{
    if (inst->staticKv || inst->state != InstanceState::Active) {
        if (inst->decodeBatch.size() > 1)
            evictLongestHeadroom(inst);
        return;
    }
    auto result = subsystemFor(inst->primary)
                      .tryEmergencyGrow(*inst,
                                        models_[inst->modelId].avgOutput);
    if (result == MemorySubsystem::GrowResult::Rejected) {
        // No budget anywhere: evict the slackest request so the rest
        // keep making progress (§VII-D).
        evictLongestHeadroom(inst);
    } else if (result == MemorySubsystem::GrowResult::Parked &&
               !shortageTimeouts_.count(inst->id)) {
        // The grow executes once a neighbor's release lands; the batch
        // stalls briefly, which cumulative headroom usually absorbs.
        // Guard against an all-parked partition with a timeout: if the
        // instance still cannot progress after two TPOT budgets, evict
        // to unfreeze it.
        shortageTimeouts_.insert(inst->id);
        sim_.schedule(2.0 * cfg_.slo.tpot, [this, inst] {
            shortageTimeouts_.erase(inst->id);
            if (inst->state == InstanceState::Active &&
                !inst->resizeInFlight &&
                inst->kvTarget > inst->kv.allocBytes() &&
                !inst->decodeBatch.empty()) {
                evictLongestHeadroom(inst);
            }
        });
    }
}

void
SlinferController::doUnload(Instance *inst)
{
    if (inst->staticKv) {
        unloadStatic(inst);
        return;
    }
    markAllDecodeDirty();
    subsystemFor(inst->primary).beginUnload(*inst, [this, inst] {
        unregisterInstance(inst);
        retryPending();
    });
}

void
SlinferController::onRequestDoneHook(Request *req, Instance *inst)
{
    if (inst->staticKv || inst->state != InstanceState::Active)
        return;
    if (subsystemFor(inst->primary)
            .onRequestComplete(*inst, models_[req->model].avgOutput)) {
        // A lazy scale-down lowered the partition's optimistic budget,
        // which can unblock any model's decode placement there.
        markAllDecodeDirty();
    }
}

void
SlinferController::onModelDeployed(ModelId m)
{
    // Profile the new model on every concrete partition spec, exactly
    // as the constructor did for the initial fleet (§VI-B).
    const ModelSpec &spec = models_[m].spec;
    for (const auto &node : nodes_) {
        for (const auto &part : node->partitions()) {
            if (!quant_.profiled(part->spec, spec))
                quant_.profile(part->spec, spec);
            if (spec.tpDegree > 1 && !node->isCpu()) {
                HardwareSpec tp = PerfModel::tensorParallel(
                    node->spec(), spec.tpDegree);
                if (!quant_.profiled(tp, spec))
                    quant_.profile(tp, spec);
            }
        }
    }
}

bool
SlinferController::tryAbortParkedLoad(Instance *inst)
{
    if (!subsystemFor(inst->primary).abortParkedLoad(*inst))
        return false;
    unregisterInstance(inst);
    markAllDecodeDirty();
    return true;
}

std::size_t
SlinferController::parkedOpsNow() const
{
    std::size_t n = 0;
    for (const auto &sub : mem_)
        n += sub ? sub->parkedOps() : 0;
    return n;
}

std::uint64_t
SlinferController::resizeOps() const
{
    std::uint64_t n = 0;
    for (const auto &sub : mem_)
        n += sub ? sub->resizeOps() : 0;
    return n;
}

} // namespace slinfer
