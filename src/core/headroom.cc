#include "core/headroom.hh"

#include <limits>

namespace slinfer
{

Seconds
requestHeadroom(const Request &req, Seconds now)
{
    return req.headroom(now);
}

Instance *
pickMostUrgentInstance(const Partition &partition, Seconds now)
{
    Instance *best = nullptr;
    Seconds best_h = std::numeric_limits<Seconds>::infinity();
    for (Instance *inst : partition.instances) {
        if (!inst->runnable())
            continue;
        Seconds h = inst->minHeadroom(now);
        if (h < best_h) {
            best_h = h;
            best = inst;
        }
    }
    return best;
}

} // namespace slinfer
