/**
 * @file
 * ASCII table printer used by the bench harness to emit the rows/series
 * that correspond to the paper's tables and figures.
 */

#ifndef SLINFER_COMMON_TABLE_HH
#define SLINFER_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace slinfer
{

/**
 * A simple column-aligned table. Cells are strings; numeric helpers
 * format with a fixed precision.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a fully formed row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given number of decimals. */
    static std::string num(double v, int decimals = 2);

    /** Format an integer. */
    static std::string num(long long v);

    /** Format a percentage (0..1 input) with one decimal. */
    static std::string pct(double frac);

    /** Render to a stream. */
    void print(std::ostream &os) const;

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner for bench output. */
void printBanner(const std::string &title);

} // namespace slinfer

#endif // SLINFER_COMMON_TABLE_HH
