/**
 * @file
 * Deterministic random-number facility.
 *
 * All stochastic components of the simulator draw from an Rng seeded
 * explicitly by the experiment, so every bench and test is reproducible.
 * Sub-streams are derived with SplitMix64 so that adding a consumer does
 * not perturb the draws seen by the others.
 */

#ifndef SLINFER_COMMON_RNG_HH
#define SLINFER_COMMON_RNG_HH

#include <cstdint>
#include <random>

namespace slinfer
{

/**
 * A seeded random stream with the distributions the workload generators
 * and performance models need.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed);

    /** Derive an independent child stream; deterministic in (seed, tag). */
    Rng fork(std::uint64_t tag) const;

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Exponential with the given rate (mean = 1/rate). */
    double exponential(double rate);

    /**
     * Lognormal parameterized by its median and the sigma of the
     * underlying normal. mean = median * exp(sigma^2 / 2).
     */
    double logNormalMedian(double median, double sigma);

    /** Gamma with the given shape and scale (mean = shape * scale). */
    double gamma(double shape, double scale);

    /**
     * Bounded Pareto on [lo, hi] with tail index alpha. Smaller alpha
     * means heavier tail.
     */
    double boundedPareto(double lo, double hi, double alpha);

    /** Standard normal draw. */
    double normal();

    /** Bernoulli with probability p of true. */
    bool chance(double p);

    /** Access to the raw engine for std distributions. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
    std::uint64_t seed_;
};

/** SplitMix64 step, used for seed derivation. */
std::uint64_t splitMix64(std::uint64_t &state);

} // namespace slinfer

#endif // SLINFER_COMMON_RNG_HH
