/**
 * @file
 * Unit helpers for bytes, throughput and time.
 */

#ifndef SLINFER_COMMON_UNITS_HH
#define SLINFER_COMMON_UNITS_HH

#include "common/types.hh"

namespace slinfer
{

inline constexpr Bytes kKiB = 1024ULL;
inline constexpr Bytes kMiB = 1024ULL * kKiB;
inline constexpr Bytes kGiB = 1024ULL * kMiB;

/** Decimal giga, used for FLOP rates and vendor-style GB. */
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

/** Convert a byte count to (binary) gibibytes as a double. */
constexpr double
toGiB(Bytes b)
{
    return static_cast<double>(b) / static_cast<double>(kGiB);
}

/** Convert gibibytes to bytes, rounding down. */
constexpr Bytes
fromGiB(double gib)
{
    return static_cast<Bytes>(gib * static_cast<double>(kGiB));
}

/** Milliseconds to seconds. */
constexpr Seconds
ms(double v)
{
    return v * 1e-3;
}

/** Seconds to milliseconds. */
constexpr double
toMs(Seconds s)
{
    return s * 1e3;
}

} // namespace slinfer

#endif // SLINFER_COMMON_UNITS_HH
