/**
 * @file
 * Process self-observation helpers: resident-set size for the
 * streaming-replay progress line (`slinfer_run --progress`), the
 * stream-throughput bench and the bounded-memory CI assertion.
 *
 * Linux reads /proc/self; other platforms degrade to getrusage where
 * available and to 0 otherwise — callers treat 0 as "unknown".
 */

#ifndef SLINFER_COMMON_PROC_HH
#define SLINFER_COMMON_PROC_HH

#include <cstddef>

namespace slinfer
{

/** Current resident set size in bytes (0 when unknown). */
std::size_t currentRssBytes();

/** Peak resident set size in bytes since process start (ru_maxrss /
 *  VmHWM; 0 when unknown). */
std::size_t peakRssBytes();

} // namespace slinfer

#endif // SLINFER_COMMON_PROC_HH
