#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/log.hh"

namespace slinfer
{

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("Table: row width mismatch");
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::num(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

std::string
Table::pct(double frac)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", frac * 100.0);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_)
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());

    auto emitRow = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << " " << cells[i];
            for (std::size_t p = cells[i].size(); p < widths[i]; ++p)
                os << ' ';
            os << " |";
        }
        os << "\n";
    };

    auto emitSep = [&]() {
        os << "+";
        for (std::size_t w : widths) {
            for (std::size_t p = 0; p < w + 2; ++p)
                os << '-';
            os << "+";
        }
        os << "\n";
    };

    emitSep();
    emitRow(headers_);
    emitSep();
    for (const auto &row : rows_)
        emitRow(row);
    emitSep();
}

void
Table::print() const
{
    print(std::cout);
}

void
printBanner(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n";
}

} // namespace slinfer
