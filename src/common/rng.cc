#include "common/rng.hh"

#include <cmath>

namespace slinfer
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed)
{
    // Expand the user seed through SplitMix64 so nearby seeds give
    // uncorrelated streams.
    std::uint64_t s = seed;
    engine_.seed(splitMix64(s));
}

Rng
Rng::fork(std::uint64_t tag) const
{
    std::uint64_t s = seed_ ^ (tag * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL);
    return Rng(splitMix64(s));
}

double
Rng::uniform()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double
Rng::uniform(double lo, double hi)
{
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double
Rng::exponential(double rate)
{
    return std::exponential_distribution<double>(rate)(engine_);
}

double
Rng::logNormalMedian(double median, double sigma)
{
    return std::lognormal_distribution<double>(std::log(median),
                                               sigma)(engine_);
}

double
Rng::gamma(double shape, double scale)
{
    return std::gamma_distribution<double>(shape, scale)(engine_);
}

double
Rng::boundedPareto(double lo, double hi, double alpha)
{
    // Inverse-CDF sampling of the bounded Pareto distribution.
    double u = uniform();
    double la = std::pow(lo, alpha);
    double ha = std::pow(hi, alpha);
    double x = -(u * ha - u * la - ha) / (ha * la);
    return std::pow(x, -1.0 / alpha);
}

double
Rng::normal()
{
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

} // namespace slinfer
