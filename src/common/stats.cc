#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace slinfer
{

void
Summary::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
Summary::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

void
CdfBuilder::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

void
CdfBuilder::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
CdfBuilder::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    if (p <= 0.0)
        return samples_.front();
    if (p >= 100.0)
        return samples_.back();
    // Linear interpolation between closest ranks.
    double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
CdfBuilder::fractionBelow(double x) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
}

double
CdfBuilder::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>>
CdfBuilder::cdfAt(const std::vector<double> &xs) const
{
    std::vector<std::pair<double, double>> out;
    out.reserve(xs.size());
    for (double x : xs)
        out.emplace_back(x, fractionBelow(x));
    return out;
}

void
TimeWeightedValue::set(Seconds t, double value)
{
    if (!started_) {
        started_ = true;
        start_ = last_ = t;
        value_ = value;
        return;
    }
    if (t < last_)
        panic("TimeWeightedValue: time went backwards");
    area_ += value_ * (t - last_);
    last_ = t;
    value_ = value;
}

double
TimeWeightedValue::integral(Seconds end) const
{
    if (!started_)
        return 0.0;
    double extra = end > last_ ? value_ * (end - last_) : 0.0;
    return area_ + extra;
}

double
TimeWeightedValue::average(Seconds end) const
{
    if (!started_ || end <= start_)
        return 0.0;
    return integral(end) / (end - start_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0 || hi <= lo)
        panic("Histogram: bad configuration");
}

void
Histogram::add(double x)
{
    double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::ptrdiff_t>(
        frac * static_cast<double>(counts_.size()));
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
}

double
Histogram::binHigh(std::size_t i) const
{
    return binLow(i + 1);
}

} // namespace slinfer
