/**
 * @file
 * Streaming statistics: summaries, percentile/CDF builders, histograms
 * and time-weighted averages used by the metrics subsystem and the
 * benches that regenerate the paper's figures.
 */

#ifndef SLINFER_COMMON_STATS_HH
#define SLINFER_COMMON_STATS_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace slinfer
{

/**
 * Streaming mean/min/max/variance accumulator (Welford's algorithm).
 */
class Summary
{
  public:
    void add(double x);

    std::size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double variance() const;
    double stddev() const;
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Collects raw samples and answers percentile / CDF queries. Sorting is
 * deferred until the first query.
 */
class CdfBuilder
{
  public:
    void add(double x);

    /** Pre-size the sample buffer (reserve-ahead for hot recording). */
    void reserve(std::size_t n) { samples_.reserve(n); }

    std::size_t count() const { return samples_.size(); }

    /** Value at percentile p in [0, 100]; 0 if empty. */
    double percentile(double p) const;

    /** Fraction of samples <= x. */
    double fractionBelow(double x) const;

    /** Mean of all samples. */
    double mean() const;

    /**
     * CDF evaluated at the given x positions, as (x, fraction<=x) pairs.
     * Useful for printing figure series.
     */
    std::vector<std::pair<double, double>>
    cdfAt(const std::vector<double> &xs) const;

    const std::vector<double> &samples() const { return samples_; }

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Integrates a piecewise-constant signal over simulated time, producing
 * its time-weighted average. Used for "average nodes used" and memory
 * utilization metrics.
 */
class TimeWeightedValue
{
  public:
    /** Record that the signal takes `value` starting at time `t`. */
    void set(Seconds t, double value);

    /** Close the signal at time `t` and return the average over
     *  [firstSetTime, t]. */
    double average(Seconds end) const;

    /** Integral of the signal from the first set() to `end`. */
    double integral(Seconds end) const;

    double current() const { return value_; }

  private:
    bool started_ = false;
    Seconds start_ = 0.0;
    Seconds last_ = 0.0;
    double value_ = 0.0;
    double area_ = 0.0;
};

/**
 * Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
 * edge bins.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t totalCount() const { return total_; }
    const std::vector<std::size_t> &bins() const { return counts_; }
    double binLow(std::size_t i) const;
    double binHigh(std::size_t i) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace slinfer

#endif // SLINFER_COMMON_STATS_HH
