#include "common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace slinfer
{

namespace
{

std::atomic<LogLevel> gLevel{LogLevel::Warn};

/** Serializes emission so concurrent jobs never tear lines. */
std::mutex gEmitMutex;

thread_local std::string tTag;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

/** One locked, single-call emission: "[LEVEL] [tag] msg". */
void
emit(const char *level, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(gEmitMutex);
    if (tTag.empty())
        std::fprintf(stderr, "[%s] %s\n", level, msg.c_str());
    else
        std::fprintf(stderr, "[%s] [%s] %s\n", level, tTag.c_str(),
                     msg.c_str());
    std::fflush(stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return gLevel.load(std::memory_order_relaxed);
}

void
setLogThreadTag(const std::string &tag)
{
    tTag = tag;
}

const std::string &
logThreadTag()
{
    return tTag;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level < logLevel())
        return;
    emit(levelName(level), msg);
}

void
panic(const std::string &msg)
{
    emit("PANIC", msg);
    std::abort();
}

void
fatal(const std::string &msg)
{
    // Emit (and release the mutex) before exit(): atexit handlers may
    // log, and holding gEmitMutex into them would self-deadlock.
    emit("FATAL", msg);
    std::exit(1);
}

} // namespace slinfer
