#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace slinfer
{

namespace
{

LogLevel gLevel = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level < gLevel)
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "[PANIC] %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "[FATAL] %s\n", msg.c_str());
    std::exit(1);
}

} // namespace slinfer
