/**
 * @file
 * Fundamental scalar types shared across the SLINFER codebase.
 *
 * Simulation time is kept in double-precision seconds; memory amounts in
 * bytes as unsigned 64-bit integers; token counts as 64-bit to allow
 * aggregate counters to never overflow.
 */

#ifndef SLINFER_COMMON_TYPES_HH
#define SLINFER_COMMON_TYPES_HH

#include <cstdint>

namespace slinfer
{

/** Simulated wall-clock time, in seconds. */
using Seconds = double;

/** Memory amount, in bytes. */
using Bytes = std::uint64_t;

/** Count of tokens (input, generated, or aggregate). */
using Tokens = std::int64_t;

/** Monotonically increasing identifier for requests. */
using RequestId = std::uint64_t;

/** Identifier for a deployed model (index into the model table). */
using ModelId = std::uint32_t;

/** Identifier for a cluster node. */
using NodeId = std::uint32_t;

/** Identifier for a model instance. */
using InstanceId = std::uint64_t;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

} // namespace slinfer

#endif // SLINFER_COMMON_TYPES_HH
