/**
 * @file
 * Open-addressing hash map for the hot lookup tables (Skarupke
 * flat_hash_map idiom, acknowledged in Moruga — see SNIPPETS.md).
 *
 * The std::map-based tables this replaces (quantifier profile lookup,
 * sweep config-hash dedup, model-preset resolution) are node-based:
 * every probe chases red-black pointers through cold cache lines and
 * every insert allocates. This map keeps keys and values in one flat
 * power-of-two array probed linearly with robin-hood displacement, so
 * the common hit costs one hash plus a short contiguous scan.
 *
 * Scope is deliberately the subset those tables need:
 *
 *  - insert-or-find and heterogeneous lookup (probe a
 *    `<string, string>`-keyed table with `string_view`s, no temporary
 *    key allocation) — both transparent via the Hash/Eq functors;
 *  - no erase. None of the swapped tables ever removes an entry, and
 *    dropping deletion removes the tombstone/backward-shift machinery
 *    entirely;
 *  - values are stored in the slot array and move on rehash: a table
 *    whose consumers cache value *pointers* across inserts (the
 *    quantifier's MRU memo, the sweep store's find()) must store
 *    `std::unique_ptr<V>` values, which keeps the pointee stable.
 *
 * The micro-benchmark backing the swap lives in
 * bench/bench_flat_hash.cc; DESIGN.md ("Flat hash tables") records the
 * measured numbers.
 */

#ifndef SLINFER_COMMON_FLAT_HASH_HH
#define SLINFER_COMMON_FLAT_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/log.hh"

namespace slinfer
{

/** FNV-1a over bytes, finished with a splitmix-style avalanche so
 *  power-of-two masking sees well-mixed low bits. */
inline std::uint64_t
flatHashBytes(const void *data, std::size_t n,
              std::uint64_t seed = 0xcbf29ce484222325ull)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h;
}

/** Transparent string hasher: std::string keys, string_view probes. */
struct FlatStringHash
{
    using is_transparent = void;
    std::uint64_t
    operator()(std::string_view s) const
    {
        return flatHashBytes(s.data(), s.size());
    }
};

struct FlatStringEq
{
    using is_transparent = void;
    bool
    operator()(std::string_view a, std::string_view b) const
    {
        return a == b;
    }
};

/** Transparent hasher for (string, string) pairs — the quantifier's
 *  (hardware name, model name) key, probed with string_views. */
struct FlatStringPairHash
{
    using is_transparent = void;
    template <typename P>
    std::uint64_t
    operator()(const P &p) const
    {
        std::string_view a(p.first), b(p.second);
        return flatHashBytes(b.data(), b.size(),
                             flatHashBytes(a.data(), a.size()));
    }
};

struct FlatStringPairEq
{
    using is_transparent = void;
    template <typename A, typename B>
    bool
    operator()(const A &a, const B &b) const
    {
        return std::string_view(a.first) == std::string_view(b.first) &&
               std::string_view(a.second) == std::string_view(b.second);
    }
};

template <typename K, typename V, typename Hash = FlatStringHash,
          typename Eq = FlatStringEq>
class FlatHashMap
{
  public:
    using value_type = std::pair<K, V>;

    FlatHashMap() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void
    clear()
    {
        slots_.clear();
        dist_.clear();
        mask_ = 0;
        size_ = 0;
    }

    /** Pre-size for `n` entries without rehashing on the way there. */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = 16;
        while (cap * 7 / 8 < n)
            cap *= 2;
        if (cap > slots_.size())
            rehash(cap);
    }

    /**
     * Insert (key, value) unless the key is present. Returns the
     * value slot and whether an insert happened — the same contract
     * as std::map::emplace, minus the iterator.
     */
    std::pair<V *, bool>
    emplace(K key, V value)
    {
        if (V *v = find(key))
            return {v, false};
        if ((size_ + 1) * 8 > slots_.size() * 7)
            rehash(slots_.size() ? slots_.size() * 2 : 16);
        V *v = insertFresh(std::move(key), std::move(value));
        ++size_;
        return {v, true};
    }

    /** Lookup with any key type the Hash/Eq functors accept. */
    template <typename Q>
    V *
    find(const Q &key)
    {
        return const_cast<V *>(
            static_cast<const FlatHashMap *>(this)->find(key));
    }

    template <typename Q>
    const V *
    find(const Q &key) const
    {
        if (size_ == 0)
            return nullptr;
        std::size_t pos = hash_(key) & mask_;
        for (std::int16_t d = 0;; ++d, pos = (pos + 1) & mask_) {
            if (dist_[pos] < d)
                return nullptr; // robin hood: the key would sit here
            if (dist_[pos] == d && eq_(slots_[pos].first, key))
                return &slots_[pos].second;
        }
    }

    /** Visit every entry (unspecified order). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (dist_[i] >= 0)
                fn(slots_[i].first, slots_[i].second);
        }
    }

  private:
    V *
    insertFresh(K key, V value)
    {
        std::size_t pos = hash_(key) & mask_;
        std::int16_t d = 0;
        V *result = nullptr;
        for (;; pos = (pos + 1) & mask_, ++d) {
            if (d >= kMaxProbe)
                fatal("FlatHashMap: probe sequence overflow "
                      "(degenerate hash function)");
            if (dist_[pos] < 0) {
                slots_[pos] = value_type(std::move(key),
                                         std::move(value));
                dist_[pos] = d;
                return result ? result : &slots_[pos].second;
            }
            if (dist_[pos] < d) {
                // Displace the richer resident (robin hood) and keep
                // walking with its entry. The caller's value slot is
                // wherever the *original* pair landed.
                std::swap(slots_[pos].first, key);
                std::swap(slots_[pos].second, value);
                std::swap(dist_[pos], d);
                if (!result)
                    result = &slots_[pos].second;
            }
        }
    }

    void
    rehash(std::size_t cap)
    {
        std::vector<value_type> old = std::move(slots_);
        std::vector<std::int16_t> oldDist = std::move(dist_);
        slots_ = std::vector<value_type>(cap); // default-constructed,
                                               // so V can be move-only
        dist_.assign(cap, -1);
        mask_ = cap - 1;
        for (std::size_t i = 0; i < old.size(); ++i) {
            if (oldDist[i] >= 0)
                insertFresh(std::move(old[i].first),
                            std::move(old[i].second));
        }
    }

    static constexpr std::int16_t kMaxProbe = 4096;

    std::vector<value_type> slots_;
    /** Probe distance from the key's home slot; -1 = empty. */
    std::vector<std::int16_t> dist_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    Hash hash_;
    Eq eq_;
};

} // namespace slinfer

#endif // SLINFER_COMMON_FLAT_HASH_HH
