/**
 * @file
 * Minimal leveled logging with gem5-style fatal/panic semantics.
 *
 * panic() flags an internal invariant violation (simulator bug) and
 * aborts; fatal() flags a user/configuration error and exits. Both are
 * implemented as [[noreturn]] functions so callers can rely on them for
 * control flow.
 *
 * The logger is thread-safe: the minimum level is an atomic, each
 * message is emitted as one fprintf under a mutex (no torn lines when
 * concurrent sweep jobs log), and every thread can carry a tag that is
 * prefixed to its messages so interleaved job output stays attributable.
 */

#ifndef SLINFER_COMMON_LOG_HH
#define SLINFER_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace slinfer
{

/** Verbosity levels, in increasing order of severity. */
enum class LogLevel { Debug, Info, Warn, Error };

/** Set the global minimum level that is actually emitted. */
void setLogLevel(LogLevel level);

/** Current global minimum level. */
LogLevel logLevel();

/**
 * Tag prefixed to every message this thread emits, e.g. "job 7/24".
 * Sweep workers set it per job; an empty string (the default) removes
 * the prefix.
 */
void setLogThreadTag(const std::string &tag);

/** This thread's current tag ("" when unset). */
const std::string &logThreadTag();

/**
 * RAII thread-tag scope: installs `tag` for this thread and restores
 * the previous tag on destruction, on every exit path. Sweep workers
 * wrap each job body in one so an idle worker's later messages never
 * carry a stale job prefix.
 */
class LogTagScope
{
  public:
    explicit LogTagScope(const std::string &tag) : prev_(logThreadTag())
    {
        setLogThreadTag(tag);
    }
    ~LogTagScope() { setLogThreadTag(prev_); }

    LogTagScope(const LogTagScope &) = delete;
    LogTagScope &operator=(const LogTagScope &) = delete;

  private:
    std::string prev_;
};

/** Emit a message at the given level (no-op if below the threshold). */
void logMessage(LogLevel level, const std::string &msg);

/** Abort: an internal invariant was violated (simulator bug). */
[[noreturn]] void panic(const std::string &msg);

/** Exit with an error: the user asked for something unsupported. */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Build a log message from stream-style pieces.
 * Example: logf(LogLevel::Info, "node ", id, " now has ", n, " instances")
 */
template <typename... Args>
void
logf(LogLevel level, Args &&...args)
{
    if (level < logLevel())
        return;
    std::ostringstream os;
    (os << ... << args);
    logMessage(level, os.str());
}

} // namespace slinfer

#endif // SLINFER_COMMON_LOG_HH
