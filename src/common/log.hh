/**
 * @file
 * Minimal leveled logging with gem5-style fatal/panic semantics.
 *
 * panic() flags an internal invariant violation (simulator bug) and
 * aborts; fatal() flags a user/configuration error and exits. Both are
 * implemented as [[noreturn]] functions so callers can rely on them for
 * control flow.
 */

#ifndef SLINFER_COMMON_LOG_HH
#define SLINFER_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace slinfer
{

/** Verbosity levels, in increasing order of severity. */
enum class LogLevel { Debug, Info, Warn, Error };

/** Set the global minimum level that is actually emitted. */
void setLogLevel(LogLevel level);

/** Current global minimum level. */
LogLevel logLevel();

/** Emit a message at the given level (no-op if below the threshold). */
void logMessage(LogLevel level, const std::string &msg);

/** Abort: an internal invariant was violated (simulator bug). */
[[noreturn]] void panic(const std::string &msg);

/** Exit with an error: the user asked for something unsupported. */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Build a log message from stream-style pieces.
 * Example: logf(LogLevel::Info, "node ", id, " now has ", n, " instances")
 */
template <typename... Args>
void
logf(LogLevel level, Args &&...args)
{
    if (level < logLevel())
        return;
    std::ostringstream os;
    (os << ... << args);
    logMessage(level, os.str());
}

} // namespace slinfer

#endif // SLINFER_COMMON_LOG_HH
