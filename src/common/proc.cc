#include "common/proc.hh"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace slinfer
{

std::size_t
currentRssBytes()
{
#if defined(__linux__)
    // /proc/self/statm field 2 is the resident page count.
    if (std::FILE *f = std::fopen("/proc/self/statm", "r")) {
        unsigned long size = 0, resident = 0;
        int n = std::fscanf(f, "%lu %lu", &size, &resident);
        std::fclose(f);
        if (n == 2)
            return static_cast<std::size_t>(resident) *
                   static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
    }
#endif
    return peakRssBytes(); // coarse but monotone fallback
}

std::size_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
        return static_cast<std::size_t>(ru.ru_maxrss); // bytes
#else
        return static_cast<std::size_t>(ru.ru_maxrss) * 1024; // KiB
#endif
    }
#endif
    return 0;
}

} // namespace slinfer
