/**
 * @file
 * Span tracing: a bounded ring buffer of sim-time trace events,
 * exported as Chrome trace_event JSON (loadable in Perfetto or
 * chrome://tracing).
 *
 * Track layout:
 *   - pid kPidController: controller decisions and timeline
 *     interventions (instant events on tid 0);
 *   - pid kPidCluster: execution and memory operations, one thread per
 *     partition (tid = Partition::viewPos, named "n<node>/p<index>");
 *   - pid kPidModelBase + model: request lifecycle, one async span per
 *     request (id = request id) with instant sub-steps (queued, admit,
 *     pd-transfer, drop) nested inside it.
 *
 * Recording is allocation-free: the ring is sized up front
 * (ObsConfig::traceCapacity) and overwrites the oldest events when
 * full (dropped() reports how many were lost); names are static
 * string literals; a category-mask test rejects filtered events
 * before any work happens. All timestamps are sim-time, so the trace
 * is deterministic for a given config+seed and recording it cannot
 * perturb simulation order.
 */

#ifndef SLINFER_OBS_TRACE_HH
#define SLINFER_OBS_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/config.hh"

namespace slinfer
{
namespace obs
{

/** Process ids of the fixed trace tracks. */
constexpr int kPidController = 1;
constexpr int kPidCluster = 2;
/** Request spans live on pid kPidModelBase + model id. */
constexpr int kPidModelBase = 100;

/** One recorded event. Plain data; `name`/`argName` must be string
 *  literals (no ownership). */
struct TraceEvent
{
    double ts = 0.0;  ///< sim-seconds at record time
    double dur = 0.0; ///< span length ('X' events only)
    const char *name = nullptr;
    const char *argName = nullptr; ///< nullptr = no args block
    double arg = 0.0;
    std::uint64_t id = 0; ///< async-span id ('b'/'e'/'n' events)
    std::int32_t pid = 0;
    std::int32_t tid = 0;
    unsigned cat = 0; ///< single TraceCat bit
    char ph = '?';    ///< trace_event phase: X, i, b, e or n
};

/** The bounded sim-time span recorder. */
class TraceRecorder
{
  public:
    TraceRecorder(unsigned catMask, std::size_t capacity);

    /** True iff events of category `cat` pass the filter. Callers may
     *  pre-check to skip argument marshalling. */
    bool wants(unsigned cat) const { return (mask_ & cat) != 0; }

    /** Begin an async span (`ph:'b'`), e.g. a request lifetime. */
    void asyncBegin(unsigned cat, const char *name, double ts, int pid,
                    std::uint64_t id);

    /** End an async span (`ph:'e'`). */
    void asyncEnd(unsigned cat, const char *name, double ts, int pid,
                  std::uint64_t id);

    /** Instant step inside an async span (`ph:'n'`). */
    void asyncInstant(unsigned cat, const char *name, double ts, int pid,
                      std::uint64_t id, const char *argName = nullptr,
                      double arg = 0.0);

    /** Complete span (`ph:'X'`) whose duration is known up front. */
    void complete(unsigned cat, const char *name, double ts, double dur,
                  int pid, int tid, const char *argName = nullptr,
                  double arg = 0.0);

    /** Thread-scoped instant event (`ph:'i'`). */
    void instant(unsigned cat, const char *name, double ts, int pid,
                 int tid, const char *argName = nullptr,
                 double arg = 0.0);

    /** Register a track (process) display name. */
    void setProcessName(int pid, const std::string &name);

    /** Register a per-partition (thread) display name. */
    void setThreadName(int pid, int tid, const std::string &name);

    /** Events currently held in the ring. */
    std::size_t size() const { return ring_.size(); }

    /** Events recorded over the run (including overwritten ones). */
    std::uint64_t total() const { return total_; }

    /** Events lost to ring overwrite. */
    std::uint64_t dropped() const { return total_ - ring_.size(); }

    /**
     * Export `{"traceEvents": [...]}` Chrome trace JSON: metadata
     * (process/thread names) first, then the ring in insertion order —
     * which is nondecreasing sim-time, since every event is stamped
     * with the simulator clock at record time. Timestamps are emitted
     * in microseconds as the format requires.
     */
    void writeChromeJson(std::ostream &os) const;

  private:
    void push(const TraceEvent &e);

    unsigned mask_;
    std::size_t cap_;
    std::vector<TraceEvent> ring_;
    /** Overwrite cursor once the ring is full (oldest event). */
    std::size_t head_ = 0;
    std::uint64_t total_ = 0;
    std::map<int, std::string> procNames_;
    std::map<std::pair<int, int>, std::string> threadNames_;
};

} // namespace obs
} // namespace slinfer

#endif // SLINFER_OBS_TRACE_HH
