/**
 * @file
 * Latency anatomy: an exact, streaming decomposition of every
 * request's end-to-end sim-time into non-overlapping segments, plus a
 * blame taxonomy that names the dominant segment of each SLO
 * violation.
 *
 * The ledger is a per-request state machine fed by hooks at the
 * points the controller, token scheduler and memory subsystem already
 * touch. Boundaries are integer nanoseconds (llround of sim seconds),
 * and a transition closes the current segment with the difference of
 * consecutive boundaries, so the segments of a closed record
 * telescope: they sum *exactly* (integer equality) to its measured
 * end-to-end latency (tests/test_anatomy.cc fuzzes this across
 * seeds).
 *
 * Like every flight-recorder sink, hot paths hold a nullable
 * `AnatomyLedger *` — the disabled cost is one pointer test — and the
 * ledger never feeds back into the simulation, so reports stay
 * byte-identical with attribution on vs off. Memory is bounded: the
 * open map tracks only in-flight requests; closed records fold into
 * fixed-size aggregates (per-segment log-scaled histograms for
 * percentiles, per-model and per-window blame counts) unless a test
 * opts into retention with retainRecords().
 */

#ifndef SLINFER_OBS_ANATOMY_HH
#define SLINFER_OBS_ANATOMY_HH

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "engine/request.hh"

namespace slinfer
{
namespace obs
{

/**
 * Every anatomy segment. Order is the blame tie-break order (ties on
 * equal dominant duration go to the lower index) and the stable
 * output order of the Report "attribution" block — append only.
 */
enum Seg : std::size_t
{
    kSegQueueWait,   ///< arrival → admission (incl. placement retries)
    kSegRewind,      ///< eviction/failure → re-admission
    kSegColdStart,   ///< admitted to a Loading instance → weights live
    kSegPrefillWait, ///< in an Active instance's prefill queue
    kSegKvStall,     ///< blocked on a KV resize or shortage
    kSegPrefill,     ///< executing its prefill iteration
    kSegDecodeGap,   ///< in the decode batch, between iterations
    kSegDecode,      ///< executing a decode iteration
    kSegPdTransfer,  ///< KV in flight / awaiting decode admission (PD)
    kNumSegs
};

/** Stable snake_case name of segment `s` (JSON key / blame cause). */
inline const char *
segName(std::size_t s)
{
    static const char *const kNames[kNumSegs] = {
        "queue_wait", "rewind",     "cold_start",
        "prefill_wait", "kv_stall", "prefill",
        "decode_gap", "decode",     "pd_transfer",
    };
    return s < kNumSegs ? kNames[s] : "?";
}

/** Convert sim seconds to the ledger's integer-ns timeline. */
inline std::int64_t
anatomyNs(Seconds t)
{
    return static_cast<std::int64_t>(std::llround(t * 1e9));
}

/**
 * One request's anatomy. While open, `cur`/`lastNs` carry the state
 * machine; once closed, segNs[] telescopes to endNs - startNs.
 */
struct AnatomyRecord
{
    RequestId id = 0;
    ModelId model = 0;
    std::int64_t startNs = 0;
    std::int64_t endNs = 0;
    std::int64_t segNs[kNumSegs] = {};
    int placementRetries = 0;
    bool dropped = false;
    /** SLO violated (every drop counts as a violation). */
    bool violated = false;
    /** Dominant segment; meaningful only when `violated`. */
    Seg blame = kSegQueueWait;

    // Open-state machinery (harmless leftovers in retained copies).
    Seg cur = kSegQueueWait;
    std::int64_t lastNs = 0;

    std::int64_t e2eNs() const { return endNs - startNs; }

    /** Argmax segment by duration, enum-order tie-break. */
    Seg dominant() const
    {
        std::size_t best = 0;
        for (std::size_t s = 1; s < kNumSegs; ++s)
            if (segNs[s] > segNs[best])
                best = s;
        return static_cast<Seg>(best);
    }
};

/**
 * The attribution engine. All hooks are O(1) hash-map operations on
 * integer state; aggregation happens once per request at close time,
 * in event order, so results are deterministic.
 */
class AnatomyLedger
{
  public:
    /** Log-scaled duration histogram: 16 sub-bins per octave over
     *  64 octaves of nanoseconds (~4.4% relative bin width). */
    static constexpr std::size_t kBins = 64 * 16;

    /** Per-segment aggregate across all closed records. */
    struct SegAggregate
    {
        std::uint64_t count = 0;  ///< requests with a nonzero span
        std::int64_t totalNs = 0; ///< exact total across all requests
        std::uint64_t blamed = 0; ///< violations blaming this segment
        double p50s = 0.0;        ///< percentiles over nonzero spans,
        double p95s = 0.0;        ///< in seconds (histogram bin
        double p99s = 0.0;        ///< representatives; ~4% resolution)
    };

    AnatomyLedger() = default;

    /** Bucket violation blame into `n` equal windows of `duration`
     *  (same clamping as the Recorder's windowed metrics). */
    void configureWindows(double duration, int n);

    /** Keep every closed AnatomyRecord (tests only; unbounded). */
    void retainRecords(bool on) { retain_ = on; }

    // ---- controller hooks -------------------------------------------
    void onArrival(const Request &r, Seconds now);
    void onPlacementRetry(const Request &r);
    void onAdmit(const Request &r, bool loading, Seconds now);
    void onDecodeAdmit(const Request &r, bool loading, Seconds now);
    void onEvicted(const Request &r, Seconds now);
    void onTransfer(const Request &r, Seconds now);
    void onComplete(const Request &r, Seconds now);
    void onDrop(const Request &r, Seconds now);
    // ---- token-scheduler hooks --------------------------------------
    void onPrefillStart(const Request &r, Seconds now);
    void onPrefillEnd(const Request &r, Seconds now);
    void onDecodeIterStart(const Request &r, Seconds now);
    void onDecodeIterEnd(const Request &r, bool stalled, Seconds now);
    // ---- memory-subsystem hooks -------------------------------------
    void onInstanceActive(const Request &r, Seconds now);
    void onResizeStart(const Request &r, Seconds now);
    void onResizeEnd(const Request &r, Seconds now);

    /** Close any still-open records (no violation attributed); call
     *  once after the simulation drains. */
    void finalize(Seconds now);

    // ---- aggregates -------------------------------------------------
    std::uint64_t closedCount() const { return closed_; }
    std::uint64_t violationCount() const { return violations_; }
    std::size_t openCount() const { return open_.size(); }

    /** Aggregate for segment `s`, percentiles filled in. */
    SegAggregate segment(std::size_t s) const;

    /** Violation blame counts per model id (rows lazily sized). */
    const std::vector<std::vector<std::uint64_t>> &perModel() const
    {
        return perModelBlame_;
    }

    /** Violation blame counts per window (empty unless configured). */
    const std::vector<std::vector<std::uint64_t>> &perWindow() const
    {
        return perWindowBlame_;
    }

    int windows() const { return windows_; }
    double windowLength() const { return windowLen_; }

    /** Closed records, in close order (only with retainRecords). */
    const std::vector<AnatomyRecord> &records() const { return records_; }

  private:
    void transition(AnatomyRecord &r, Seg next, Seconds now);
    void close(AnatomyRecord &r, Seconds now, bool dropped,
               bool violated);
    AnatomyRecord *find(const Request &r);

    static std::size_t binOf(std::int64_t ns);
    static double binRepresentativeSeconds(std::size_t bin);

    std::unordered_map<RequestId, AnatomyRecord> open_;
    std::uint64_t closed_ = 0;
    std::uint64_t violations_ = 0;

    struct SegTotals
    {
        std::uint64_t count = 0;
        std::int64_t totalNs = 0;
        std::uint64_t blamed = 0;
        std::vector<std::uint64_t> hist; // lazily sized to kBins
    };
    SegTotals segs_[kNumSegs];

    std::vector<std::vector<std::uint64_t>> perModelBlame_;
    std::vector<std::vector<std::uint64_t>> perWindowBlame_;
    int windows_ = 0;
    double windowLen_ = 0.0;

    bool retain_ = false;
    std::vector<AnatomyRecord> records_;
};

} // namespace obs
} // namespace slinfer

#endif // SLINFER_OBS_ANATOMY_HH
