#include "obs/phase.hh"

#include <mutex>

namespace slinfer
{
namespace obs
{

void
PhaseProfiler::enter(Phase p)
{
    Clock::time_point now = Clock::now();
    if (!stack_.empty())
        totals_[stack_.back()] +=
            std::chrono::duration<double>(now - last_).count();
    stack_.push_back(p);
    ++counts_[p];
    last_ = now;
}

void
PhaseProfiler::exit()
{
    if (stack_.empty())
        return;
    Clock::time_point now = Clock::now();
    totals_[stack_.back()] +=
        std::chrono::duration<double>(now - last_).count();
    stack_.pop_back();
    last_ = now;
}

namespace
{

std::mutex gPhaseMutex;
std::array<double, kNumPhases> gPhaseTotals{};

} // namespace

void
addPhaseTotals(const PhaseProfiler &p)
{
    std::lock_guard<std::mutex> lock(gPhaseMutex);
    for (std::size_t i = 0; i < kNumPhases; ++i)
        gPhaseTotals[i] += p.total(static_cast<Phase>(i));
}

std::array<double, kNumPhases>
phaseTotalsSnapshot()
{
    std::lock_guard<std::mutex> lock(gPhaseMutex);
    return gPhaseTotals;
}

} // namespace obs
} // namespace slinfer
