/**
 * @file
 * Flight-recorder configuration, embedded in ExperimentConfig.
 *
 * Everything defaults to off; ObsConfig::any() is the single gate the
 * Session uses to decide whether to build a FlightRecorder at all.
 * When nothing is enabled no obs object exists and every hot-path sink
 * pointer stays null, so instrumentation costs one branch per site.
 */

#ifndef SLINFER_OBS_CONFIG_HH
#define SLINFER_OBS_CONFIG_HH

#include <cstddef>

namespace slinfer
{
namespace obs
{

/** Trace categories, usable as a bitmask filter (--trace-cats). */
enum TraceCat : unsigned
{
    kCatRequest = 1u << 0,      ///< per-request lifecycle spans
    kCatExec = 1u << 1,         ///< prefill/decode iterations
    kCatMemory = 1u << 2,       ///< weight loads/unloads, KV resizes
    kCatController = 1u << 3,   ///< placement / drain decisions
    kCatIntervention = 1u << 4, ///< scripted timeline interventions
};

/** All categories enabled. */
constexpr unsigned kAllTraceCats = kCatRequest | kCatExec | kCatMemory |
                                   kCatController | kCatIntervention;

/** Display name of a single category bit ("?" for unknown). */
inline const char *
traceCatName(unsigned bit)
{
    switch (bit) {
    case kCatRequest:
        return "request";
    case kCatExec:
        return "exec";
    case kCatMemory:
        return "memory";
    case kCatController:
        return "controller";
    case kCatIntervention:
        return "intervention";
    default:
        return "?";
    }
}

/** Which flight-recorder components a run enables. */
struct ObsConfig
{
    /** Collect the hot-path counter registry (counters.hh). */
    bool counters = false;
    /** Record trace spans into the ring buffer (trace.hh). */
    bool trace = false;
    /** Category filter for the trace (mask over TraceCat). */
    unsigned traceCats = kAllTraceCats;
    /** Trace ring capacity in events; oldest are overwritten. */
    std::size_t traceCapacity = std::size_t(1) << 20;
    /** Timeseries cadence in sim-seconds; 0 disables sampling. */
    double sampleEvery = 0.0;
    /** Attribute host wall-clock to phases (phase.hh). */
    bool phaseProfile = false;
    /** Latency anatomy + SLO blame attribution (anatomy.hh). */
    bool anatomy = false;

    /** True iff any component is enabled. */
    bool any() const
    {
        return counters || trace || sampleEvery > 0.0 || phaseProfile ||
               anatomy;
    }
};

} // namespace obs
} // namespace slinfer

#endif // SLINFER_OBS_CONFIG_HH
