/**
 * @file
 * Live timeseries: sim-time-cadenced snapshots of the Session's
 * MetricsView, exportable as CSV or JSON for plotting utilization /
 * queue-depth curves against injected interventions.
 *
 * The sampler owns no clock and schedules no events: Session chops its
 * advanceTo() calls at each k * sampleEvery boundary (runUntil is
 * proven split-invariant, see docs/ARCHITECTURE.md) and records a
 * sample between chunks. Sampling therefore cannot perturb event order
 * — it only changes where the caller pauses the simulator.
 */

#ifndef SLINFER_OBS_TIMESERIES_HH
#define SLINFER_OBS_TIMESERIES_HH

#include <cstddef>
#include <string>
#include <vector>

namespace slinfer
{
namespace obs
{

/** One sample: the MetricsView scalars at a sim-time instant
 *  (per-model queue depths collapsed to their sum). */
struct TimeseriesSample
{
    double time = 0.0;
    std::size_t arrived = 0;
    std::size_t completed = 0;
    std::size_t dropped = 0;
    std::size_t inFlight = 0;
    std::size_t queueDepth = 0;
    std::size_t instancesLive = 0;
    std::size_t instancesCreated = 0;
    double kvUtilization = 0.0;
    double busySecondsCpu = 0.0;
    double busySecondsGpu = 0.0;
    double scalingOverhead = 0.0;
};

/** Accumulates samples at a fixed sim-time cadence. */
class Timeseries
{
  public:
    explicit Timeseries(double sampleEvery) : every_(sampleEvery) {}

    /** The configured cadence in sim-seconds. */
    double sampleEvery() const { return every_; }

    void record(const TimeseriesSample &s) { samples_.push_back(s); }

    const std::vector<TimeseriesSample> &samples() const
    {
        return samples_;
    }

    /** Render as CSV (header + one row per sample). */
    std::string toCsv() const;

    /** Render as a JSON array of sample objects. */
    std::string toJson() const;

  private:
    double every_;
    std::vector<TimeseriesSample> samples_;
};

} // namespace obs
} // namespace slinfer

#endif // SLINFER_OBS_TIMESERIES_HH
