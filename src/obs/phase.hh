/**
 * @file
 * Wall-clock phase profiling: scoped timers attributing *host* time to
 * event dispatch vs controller decide vs memory ops.
 *
 * Phases nest (controller decisions run inside event dispatch), so the
 * profiler keeps a stack and charges each phase its self-time: time in
 * an inner scope is charged to the inner phase only. The profiler
 * reads std::chrono::steady_clock and never touches simulator state,
 * so enabling it cannot change simulated behavior — only reports the
 * cost of computing it.
 *
 * Sweep aggregation: each Session accumulates its profiler into a
 * process-wide mutex-guarded total on finish (addPhaseTotals), which
 * slinfer_sweep snapshots into the --timing-json "phases" block.
 */

#ifndef SLINFER_OBS_PHASE_HH
#define SLINFER_OBS_PHASE_HH

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace slinfer
{
namespace obs
{

/** The profiled host-time phases. */
enum Phase : std::size_t
{
    kPhaseEventDispatch,   ///< Simulator::run/runUntil dispatch loop
    kPhaseControllerDecide,///< admission, placement, retry sweeps
    kPhaseMemoryOp,        ///< loads, unloads, KV resizes
    kNumPhases
};

/** Stable snake_case name of phase `i` (the timing-JSON key). */
inline const char *
phaseName(std::size_t i)
{
    static const char *const kNames[kNumPhases] = {
        "event_dispatch",
        "controller_decide",
        "memory_op",
    };
    return i < kNumPhases ? kNames[i] : "?";
}

/** Self-time accumulator, driven through ScopedPhase. */
class PhaseProfiler
{
  public:
    void enter(Phase p);
    void exit();

    /** Accumulated self-time of `p` in seconds. */
    double total(Phase p) const { return totals_[p]; }

    /** Times `p` was entered. */
    std::uint64_t entries(Phase p) const { return counts_[p]; }

  private:
    using Clock = std::chrono::steady_clock;

    std::array<double, kNumPhases> totals_{};
    std::array<std::uint64_t, kNumPhases> counts_{};
    std::vector<Phase> stack_;
    Clock::time_point last_{};
};

/** RAII phase scope; a null profiler makes it a no-op. */
class ScopedPhase
{
  public:
    ScopedPhase(PhaseProfiler *p, Phase phase) : p_(p)
    {
        if (p_)
            p_->enter(phase);
    }
    ~ScopedPhase()
    {
        if (p_)
            p_->exit();
    }
    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    PhaseProfiler *p_;
};

/** Fold one profiler into the process-wide totals (thread-safe). */
void addPhaseTotals(const PhaseProfiler &p);

/** Snapshot the process-wide per-phase totals, in seconds. */
std::array<double, kNumPhases> phaseTotalsSnapshot();

} // namespace obs
} // namespace slinfer

#endif // SLINFER_OBS_PHASE_HH
