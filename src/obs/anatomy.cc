#include "obs/anatomy.hh"

#include <algorithm>

namespace slinfer
{
namespace obs
{

void
AnatomyLedger::configureWindows(double duration, int n)
{
    if (n <= 0 || duration <= 0.0)
        return;
    windows_ = n;
    windowLen_ = duration / n;
    perWindowBlame_.assign(static_cast<std::size_t>(n),
                           std::vector<std::uint64_t>(kNumSegs, 0));
}

AnatomyRecord *
AnatomyLedger::find(const Request &r)
{
    auto it = open_.find(r.id);
    return it == open_.end() ? nullptr : &it->second;
}

void
AnatomyLedger::transition(AnatomyRecord &r, Seg next, Seconds now)
{
    std::int64_t t = anatomyNs(now);
    r.segNs[r.cur] += t - r.lastNs;
    r.lastNs = t;
    r.cur = next;
}

void
AnatomyLedger::onArrival(const Request &r, Seconds now)
{
    AnatomyRecord rec;
    rec.id = r.id;
    rec.model = r.model;
    rec.startNs = anatomyNs(now);
    rec.lastNs = rec.startNs;
    rec.cur = kSegQueueWait;
    open_.emplace(r.id, rec);
}

void
AnatomyLedger::onPlacementRetry(const Request &r)
{
    // Retry *time* stays in the current wait segment (queue_wait or
    // rewind); the count alone records how hard placement fought.
    if (AnatomyRecord *rec = find(r))
        ++rec->placementRetries;
}

void
AnatomyLedger::onAdmit(const Request &r, bool loading, Seconds now)
{
    if (AnatomyRecord *rec = find(r))
        transition(*rec, loading ? kSegColdStart : kSegPrefillWait, now);
}

void
AnatomyLedger::onDecodeAdmit(const Request &r, bool loading, Seconds now)
{
    if (AnatomyRecord *rec = find(r))
        transition(*rec, loading ? kSegColdStart : kSegDecodeGap, now);
}

void
AnatomyLedger::onEvicted(const Request &r, Seconds now)
{
    if (AnatomyRecord *rec = find(r))
        transition(*rec, kSegRewind, now);
}

void
AnatomyLedger::onTransfer(const Request &r, Seconds now)
{
    if (AnatomyRecord *rec = find(r))
        transition(*rec, kSegPdTransfer, now);
}

void
AnatomyLedger::onPrefillStart(const Request &r, Seconds now)
{
    if (AnatomyRecord *rec = find(r))
        transition(*rec, kSegPrefill, now);
}

void
AnatomyLedger::onPrefillEnd(const Request &r, Seconds now)
{
    if (AnatomyRecord *rec = find(r))
        transition(*rec, kSegDecodeGap, now);
}

void
AnatomyLedger::onDecodeIterStart(const Request &r, Seconds now)
{
    if (AnatomyRecord *rec = find(r))
        transition(*rec, kSegDecode, now);
}

void
AnatomyLedger::onDecodeIterEnd(const Request &r, bool stalled,
                               Seconds now)
{
    if (AnatomyRecord *rec = find(r))
        transition(*rec, stalled ? kSegKvStall : kSegDecodeGap, now);
}

void
AnatomyLedger::onInstanceActive(const Request &r, Seconds now)
{
    AnatomyRecord *rec = find(r);
    // Only requests actually waiting on the cold start move; a request
    // that joined after activation (impossible today, cheap to guard)
    // keeps its segment.
    if (rec && rec->cur == kSegColdStart) {
        transition(*rec,
                   r.state == RequestState::Decode ? kSegDecodeGap
                                                   : kSegPrefillWait,
                   now);
    }
}

void
AnatomyLedger::onResizeStart(const Request &r, Seconds now)
{
    AnatomyRecord *rec = find(r);
    // A resize only stalls requests that are *waiting* for an
    // iteration; one already executing (or cold-starting, or in
    // transfer) is not blocked by it.
    if (rec &&
        (rec->cur == kSegPrefillWait || rec->cur == kSegDecodeGap))
        transition(*rec, kSegKvStall, now);
}

void
AnatomyLedger::onResizeEnd(const Request &r, Seconds now)
{
    AnatomyRecord *rec = find(r);
    if (rec && rec->cur == kSegKvStall) {
        transition(*rec,
                   r.state == RequestState::Decode ? kSegDecodeGap
                                                   : kSegPrefillWait,
                   now);
    }
}

void
AnatomyLedger::onComplete(const Request &r, Seconds now)
{
    auto it = open_.find(r.id);
    if (it == open_.end())
        return;
    close(it->second, now, /*dropped=*/false, r.sloViolated);
    open_.erase(it);
}

void
AnatomyLedger::onDrop(const Request &r, Seconds now)
{
    auto it = open_.find(r.id);
    if (it == open_.end())
        return;
    close(it->second, now, /*dropped=*/true, /*violated=*/true);
    open_.erase(it);
}

void
AnatomyLedger::finalize(Seconds now)
{
    // The Session drains the simulator before finalize, so this is
    // normally a no-op; a stepwise caller that stops early still gets
    // exact (non-violation) records for in-flight requests. Drain ids
    // first: close() mutates aggregates, not the map.
    std::vector<RequestId> ids;
    ids.reserve(open_.size());
    for (const auto &kv : open_)
        ids.push_back(kv.first);
    std::sort(ids.begin(), ids.end());
    for (RequestId id : ids) {
        auto it = open_.find(id);
        close(it->second, now, /*dropped=*/false, /*violated=*/false);
        open_.erase(it);
    }
}

void
AnatomyLedger::close(AnatomyRecord &r, Seconds now, bool dropped,
                     bool violated)
{
    std::int64_t t = anatomyNs(now);
    r.segNs[r.cur] += t - r.lastNs;
    r.lastNs = t;
    r.endNs = t;
    r.dropped = dropped;
    r.violated = violated;
    ++closed_;
    if (violated) {
        r.blame = r.dominant();
        ++violations_;
        ++segs_[r.blame].blamed;
        if (perModelBlame_.size() <= r.model)
            perModelBlame_.resize(r.model + 1,
                                  std::vector<std::uint64_t>(kNumSegs,
                                                             0));
        ++perModelBlame_[r.model][r.blame];
        if (windows_ > 0) {
            double endS = static_cast<double>(t) * 1e-9;
            int w = static_cast<int>(endS / windowLen_);
            w = std::max(0, std::min(windows_ - 1, w));
            ++perWindowBlame_[static_cast<std::size_t>(w)][r.blame];
        }
    }
    for (std::size_t s = 0; s < kNumSegs; ++s) {
        if (r.segNs[s] <= 0)
            continue;
        SegTotals &agg = segs_[s];
        ++agg.count;
        agg.totalNs += r.segNs[s];
        if (agg.hist.empty())
            agg.hist.assign(kBins, 0);
        ++agg.hist[binOf(r.segNs[s])];
    }
    if (retain_)
        records_.push_back(r);
}

std::size_t
AnatomyLedger::binOf(std::int64_t ns)
{
    std::uint64_t v = static_cast<std::uint64_t>(ns);
    // Values below one octave-splitting threshold are exact bins.
    if (v < 16)
        return static_cast<std::size_t>(v);
    std::size_t o = 63;
    while (!(v >> o))
        --o;
    std::size_t sub = static_cast<std::size_t>((v >> (o - 4)) & 0xF);
    return o * 16 + sub;
}

double
AnatomyLedger::binRepresentativeSeconds(std::size_t bin)
{
    if (bin < 16)
        return static_cast<double>(bin) * 1e-9;
    std::size_t o = bin / 16;
    std::size_t sub = bin % 16;
    // Geometric-ish midpoint of [2^o * (1 + sub/16), next bin); exact
    // in binary floating point, so deterministic across platforms.
    return std::ldexp(1.0 + (static_cast<double>(sub) + 0.5) / 16.0,
                      static_cast<int>(o)) *
           1e-9;
}

AnatomyLedger::SegAggregate
AnatomyLedger::segment(std::size_t s) const
{
    SegAggregate out;
    if (s >= kNumSegs)
        return out;
    const SegTotals &agg = segs_[s];
    out.count = agg.count;
    out.totalNs = agg.totalNs;
    out.blamed = agg.blamed;
    if (agg.count == 0)
        return out;
    // Nearest-rank percentiles over the log-scaled histogram.
    auto quantile = [&](double q) {
        std::uint64_t rank = static_cast<std::uint64_t>(
            q * static_cast<double>(agg.count - 1));
        std::uint64_t seen = 0;
        for (std::size_t b = 0; b < agg.hist.size(); ++b) {
            seen += agg.hist[b];
            if (seen > rank)
                return binRepresentativeSeconds(b);
        }
        return binRepresentativeSeconds(agg.hist.size() - 1);
    };
    out.p50s = quantile(0.50);
    out.p95s = quantile(0.95);
    out.p99s = quantile(0.99);
    return out;
}

} // namespace obs
} // namespace slinfer
