#include "obs/timeseries.hh"

#include <sstream>

namespace slinfer
{
namespace obs
{

namespace
{

constexpr const char *kColumns =
    "time,arrived,completed,dropped,in_flight,queue_depth,"
    "instances_live,instances_created,kv_utilization,busy_cpu_s,"
    "busy_gpu_s,scaling_overhead_s";

} // namespace

std::string
Timeseries::toCsv() const
{
    std::ostringstream os;
    os.precision(10);
    os << kColumns << "\n";
    for (const TimeseriesSample &s : samples_) {
        os << s.time << ',' << s.arrived << ',' << s.completed << ','
           << s.dropped << ',' << s.inFlight << ',' << s.queueDepth
           << ',' << s.instancesLive << ',' << s.instancesCreated << ','
           << s.kvUtilization << ',' << s.busySecondsCpu << ','
           << s.busySecondsGpu << ',' << s.scalingOverhead << "\n";
    }
    return os.str();
}

std::string
Timeseries::toJson() const
{
    std::ostringstream os;
    os.precision(10);
    os << "[\n";
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const TimeseriesSample &s = samples_[i];
        os << "  {\"time\": " << s.time << ", \"arrived\": " << s.arrived
           << ", \"completed\": " << s.completed
           << ", \"dropped\": " << s.dropped
           << ", \"in_flight\": " << s.inFlight
           << ", \"queue_depth\": " << s.queueDepth
           << ", \"instances_live\": " << s.instancesLive
           << ", \"instances_created\": " << s.instancesCreated
           << ", \"kv_utilization\": " << s.kvUtilization
           << ", \"busy_cpu_s\": " << s.busySecondsCpu
           << ", \"busy_gpu_s\": " << s.busySecondsGpu
           << ", \"scaling_overhead_s\": " << s.scalingOverhead << "}"
           << (i + 1 < samples_.size() ? ",\n" : "\n");
    }
    os << "]\n";
    return os.str();
}

} // namespace obs
} // namespace slinfer
