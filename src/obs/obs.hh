/**
 * @file
 * The flight recorder: one bundle owning whichever observability
 * components a run enabled (counters, trace, timeseries, phase
 * profiler). A Session builds one iff ObsConfig::any(); each accessor
 * returns nullptr when that component is off, and every
 * instrumentation site takes these nullable pointers — so with
 * nothing enabled no FlightRecorder exists and the hot-path cost is a
 * null test per site.
 */

#ifndef SLINFER_OBS_OBS_HH
#define SLINFER_OBS_OBS_HH

#include <memory>

#include "obs/anatomy.hh"
#include "obs/config.hh"
#include "obs/counters.hh"
#include "obs/phase.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"

namespace slinfer
{
namespace obs
{

/** Owns the enabled observability components of one run. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(const ObsConfig &cfg)
    {
        if (cfg.counters)
            counters_ = std::make_unique<Counters>();
        if (cfg.trace)
            trace_ = std::make_unique<TraceRecorder>(cfg.traceCats,
                                                     cfg.traceCapacity);
        if (cfg.sampleEvery > 0.0)
            timeseries_ = std::make_unique<Timeseries>(cfg.sampleEvery);
        if (cfg.phaseProfile)
            profiler_ = std::make_unique<PhaseProfiler>();
        if (cfg.anatomy)
            anatomy_ = std::make_unique<AnatomyLedger>();
    }

    Counters *counters() { return counters_.get(); }
    TraceRecorder *trace() { return trace_.get(); }
    Timeseries *timeseries() { return timeseries_.get(); }
    PhaseProfiler *profiler() { return profiler_.get(); }
    AnatomyLedger *anatomy() { return anatomy_.get(); }

    const Counters *counters() const { return counters_.get(); }
    const TraceRecorder *trace() const { return trace_.get(); }
    const Timeseries *timeseries() const { return timeseries_.get(); }
    const PhaseProfiler *profiler() const { return profiler_.get(); }
    const AnatomyLedger *anatomy() const { return anatomy_.get(); }

  private:
    std::unique_ptr<Counters> counters_;
    std::unique_ptr<TraceRecorder> trace_;
    std::unique_ptr<Timeseries> timeseries_;
    std::unique_ptr<PhaseProfiler> profiler_;
    std::unique_ptr<AnatomyLedger> anatomy_;
};

} // namespace obs
} // namespace slinfer

#endif // SLINFER_OBS_OBS_HH
