/**
 * @file
 * Hot-path counter registry for the flight recorder.
 *
 * Counters are statically registered: the full set is the Counter enum
 * below, each with a stable snake_case name used verbatim as the JSON
 * key in the Report `counters` block. A Counters object is one
 * cacheline-aligned array of 64-bit values owned by the Session that
 * enabled it; hot paths hold a nullable `Counters *` and bump through
 * the inline helpers, so the disabled cost is a single
 * pointer-is-null test — no virtual call, no allocation, no lock.
 *
 * Counters never feed back into the simulation (no code reads them
 * mid-run), so enabling them cannot perturb event order; reports stay
 * byte-identical counters on vs off (tests/test_obs.cc proves it).
 */

#ifndef SLINFER_OBS_COUNTERS_HH
#define SLINFER_OBS_COUNTERS_HH

#include <cstddef>
#include <cstdint>

namespace slinfer
{
namespace obs
{

/** Every hot-path counter. Append only: names are a stable output
 *  surface (Report JSON keys, --counters CSV rows). */
enum Counter : std::size_t
{
    kEventsFired,      ///< event-queue callbacks dispatched
    kEventsCancelled,  ///< live events cancelled before firing
    kEventsRebased,    ///< overflow events re-bucketed by a wheel rebase
    kBucketPromotions, ///< wheel buckets promoted into the near heap
    kPlacementProbes,  ///< controller placement searches started
    kIndexWalkSteps,   ///< cluster-index free-KV walk iterations
    kPendingWakeups,   ///< pending-queue retry activations (prefill)
    kDecodeWakeups,    ///< decode-pending retry rounds with work
    kKvTargetChanges,  ///< KV allocation targets moved (churn)
    kKvResizeOps,      ///< physical KV resize operations issued
    kEmergencyGrows,   ///< KV-shortage emergency grow attempts
    kDrainSweeps,      ///< instance drain sweeps executed
    kShadowRuns,       ///< shadow-validator admission evaluations
    kNumCounters
};

/** Stable snake_case name of counter `i` (the JSON/CSV key). */
inline const char *
counterName(std::size_t i)
{
    static const char *const kNames[kNumCounters] = {
        "events_fired",      "events_cancelled", "events_rebased",
        "bucket_promotions", "placement_probes", "index_walk_steps",
        "pending_wakeups",   "decode_wakeups",   "kv_target_changes",
        "kv_resize_ops",     "emergency_grows",  "drain_sweeps",
        "shadow_runs",
    };
    return i < kNumCounters ? kNames[i] : "?";
}

/**
 * One Session's counter block. Cacheline-aligned so a hot loop that
 * bumps adjacent counters stays within one line; values are plain
 * (non-atomic) because a Counters object is only ever touched by the
 * single thread running its Session (sweep jobs each own their own).
 */
struct Counters
{
    alignas(64) std::uint64_t v[kNumCounters] = {};
};

/** Increment counter `i` iff a sink is attached. */
inline void
bump(Counters *c, Counter i)
{
    if (c)
        ++c->v[i];
}

/** Add `n` to counter `i` iff a sink is attached. */
inline void
add(Counters *c, Counter i, std::uint64_t n)
{
    if (c)
        c->v[i] += n;
}

} // namespace obs
} // namespace slinfer

#endif // SLINFER_OBS_COUNTERS_HH
