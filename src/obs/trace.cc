#include "obs/trace.hh"

#include <ostream>

#include "obs/config.hh"

namespace slinfer
{
namespace obs
{

namespace
{

/** Track/thread names are generated ("controller", "n3/p1", ...) but
 *  escape defensively so the export is always valid JSON. */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';
            continue;
        }
        out += c;
    }
    return out;
}

void
writeEvent(std::ostream &os, const TraceEvent &e)
{
    os << "{\"name\": \"" << e.name << "\", \"cat\": \""
       << traceCatName(e.cat) << "\", \"ph\": \"" << e.ph
       << "\", \"pid\": " << e.pid << ", \"tid\": " << e.tid
       << ", \"ts\": " << e.ts * 1e6;
    if (e.ph == 'X')
        os << ", \"dur\": " << e.dur * 1e6;
    if (e.ph == 'b' || e.ph == 'e' || e.ph == 'n')
        os << ", \"id\": " << e.id;
    if (e.ph == 'i')
        os << ", \"s\": \"t\"";
    if (e.argName)
        os << ", \"args\": {\"" << e.argName << "\": " << e.arg << "}";
    os << "}";
}

} // namespace

TraceRecorder::TraceRecorder(unsigned catMask, std::size_t capacity)
    : mask_(catMask), cap_(capacity ? capacity : 1)
{
    // Reserve up front so recording never allocates on the hot path.
    ring_.reserve(cap_);
}

void
TraceRecorder::push(const TraceEvent &e)
{
    ++total_;
    if (ring_.size() < cap_) {
        ring_.push_back(e);
        return;
    }
    ring_[head_] = e;
    head_ = (head_ + 1) % cap_;
}

void
TraceRecorder::asyncBegin(unsigned cat, const char *name, double ts,
                          int pid, std::uint64_t id)
{
    if (!wants(cat))
        return;
    TraceEvent e;
    e.ts = ts;
    e.name = name;
    e.id = id;
    e.pid = pid;
    e.cat = cat;
    e.ph = 'b';
    push(e);
}

void
TraceRecorder::asyncEnd(unsigned cat, const char *name, double ts,
                        int pid, std::uint64_t id)
{
    if (!wants(cat))
        return;
    TraceEvent e;
    e.ts = ts;
    e.name = name;
    e.id = id;
    e.pid = pid;
    e.cat = cat;
    e.ph = 'e';
    push(e);
}

void
TraceRecorder::asyncInstant(unsigned cat, const char *name, double ts,
                            int pid, std::uint64_t id,
                            const char *argName, double arg)
{
    if (!wants(cat))
        return;
    TraceEvent e;
    e.ts = ts;
    e.name = name;
    e.argName = argName;
    e.arg = arg;
    e.id = id;
    e.pid = pid;
    e.cat = cat;
    e.ph = 'n';
    push(e);
}

void
TraceRecorder::complete(unsigned cat, const char *name, double ts,
                        double dur, int pid, int tid,
                        const char *argName, double arg)
{
    if (!wants(cat))
        return;
    TraceEvent e;
    e.ts = ts;
    e.dur = dur;
    e.name = name;
    e.argName = argName;
    e.arg = arg;
    e.pid = pid;
    e.tid = tid;
    e.cat = cat;
    e.ph = 'X';
    push(e);
}

void
TraceRecorder::instant(unsigned cat, const char *name, double ts,
                       int pid, int tid, const char *argName, double arg)
{
    if (!wants(cat))
        return;
    TraceEvent e;
    e.ts = ts;
    e.name = name;
    e.argName = argName;
    e.arg = arg;
    e.pid = pid;
    e.tid = tid;
    e.cat = cat;
    e.ph = 'i';
    push(e);
}

void
TraceRecorder::setProcessName(int pid, const std::string &name)
{
    procNames_[pid] = name;
}

void
TraceRecorder::setThreadName(int pid, int tid, const std::string &name)
{
    threadNames_[{pid, tid}] = name;
}

void
TraceRecorder::writeChromeJson(std::ostream &os) const
{
    os.precision(15);
    os << "{\"traceEvents\": [\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };
    for (const auto &[pid, name] : procNames_) {
        sep();
        os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
           << pid << ", \"tid\": 0, \"args\": {\"name\": \""
           << escape(name) << "\"}}";
    }
    for (const auto &[key, name] : threadNames_) {
        sep();
        os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": "
           << key.first << ", \"tid\": " << key.second
           << ", \"args\": {\"name\": \"" << escape(name) << "\"}}";
    }
    // Insertion order == time order: replay the ring oldest-first.
    std::size_t n = ring_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const TraceEvent &e =
            ring_[n == cap_ ? (head_ + i) % cap_ : i];
        sep();
        writeEvent(os, e);
    }
    os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

} // namespace obs
} // namespace slinfer
