/**
 * @file
 * Request length datasets.
 *
 * The paper samples input/output lengths from the Azure LLM traces
 * (Splitwise) and, for the sensitivity study (Fig. 34/35), from
 * HumanEval, ShareGPT and LongBench. We do not ship the raw traces;
 * instead each dataset is a truncated-lognormal sampler whose median,
 * spread and clamps are matched to the published CDFs (Fig. 34) —
 * a substitution documented in DESIGN.md. The scheduler only ever
 * consumes the sampled lengths.
 */

#ifndef SLINFER_WORKLOAD_DATASET_HH
#define SLINFER_WORKLOAD_DATASET_HH

#include <string>

#include "common/rng.hh"
#include "common/types.hh"

namespace slinfer
{

enum class DatasetKind
{
    AzureConv,
    AzureCode,
    HumanEval,
    ShareGPT,
    LongBench,
};

/** One request's input and target output length. */
struct LengthSample
{
    Tokens input = 0;
    Tokens output = 0;
};

/**
 * A length sampler for one dataset.
 */
class Dataset
{
  public:
    explicit Dataset(DatasetKind kind);

    DatasetKind kind() const { return kind_; }
    const char *name() const;

    /** Draw a request's lengths. */
    LengthSample sample(Rng &rng) const;

    /** Analytic mean output length (for Eq. 2's historical average). */
    double meanOutput() const;

    /** Analytic mean input length. */
    double meanInput() const;

    /** Largest input length the sampler can produce. */
    Tokens maxInput() const;

  private:
    struct Params
    {
        double inMedian, inSigma;
        Tokens inLo, inHi;
        double outMedian, outSigma;
        Tokens outLo, outHi;
    };

    static Params paramsFor(DatasetKind kind);

    DatasetKind kind_;
    Params p_;
};

} // namespace slinfer

#endif // SLINFER_WORKLOAD_DATASET_HH
