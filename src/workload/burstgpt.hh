/**
 * @file
 * BurstGPT-style invocation generator (paper §IX-I2, Fig. 27).
 *
 * BurstGPT is a centralized single-stream LLM trace whose inter-arrival
 * times are well modeled by a Gamma distribution with shape < 1
 * (bursty). Following the paper, we distribute the aggregate stream
 * over 64 models with a Pareto popularity split to emulate the
 * serverless multi-model environment, and sweep the aggregate RPS.
 */

#ifndef SLINFER_WORKLOAD_BURSTGPT_HH
#define SLINFER_WORKLOAD_BURSTGPT_HH

#include <cstdint>

#include "workload/azure_trace.hh"

namespace slinfer
{

struct BurstGptConfig
{
    double aggregateRps = 1.0;
    Seconds duration = 1800.0;
    int numModels = 64;
    /** Gamma shape of inter-arrival times; < 1 means bursty. */
    double gammaShape = 0.55;
    double paretoAlpha = 1.05;
    std::uint64_t seed = 7;
};

/** Generate a BurstGPT-like trace (sorted by time). */
AzureTrace generateBurstGpt(const BurstGptConfig &cfg);

} // namespace slinfer

#endif // SLINFER_WORKLOAD_BURSTGPT_HH
