/**
 * @file
 * Azure-Serverless-style multi-model invocation generator.
 *
 * The paper drives its evaluation with the Azure Serverless Trace
 * (Shahrad et al.), mapping each LLM to one function: most models see a
 * handful of requests per hour while the hottest few are bursty with
 * concurrency from 1 to beyond 128 (Figs. 3, 12, 21). We reproduce that
 * structure with a bounded-Pareto per-model rate distribution plus a
 * burst-episode arrival process, calibrated so that 32/64/128-model,
 * 30-minute traces carry roughly 2.4 requests/min/model in aggregate
 * (paper Fig. 21: 2366 / 4684 / 9266 total requests) and the top 1% of
 * models contribute about a quarter of all requests.
 */

#ifndef SLINFER_WORKLOAD_AZURE_TRACE_HH
#define SLINFER_WORKLOAD_AZURE_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace slinfer
{

/** One invocation of one model. */
struct Arrival
{
    Seconds time = 0.0;
    ModelId model = 0;
};

/** Configuration of the generator. */
struct AzureTraceConfig
{
    int numModels = 64;
    Seconds duration = 1800.0;
    /** Mean requests/minute per model across the fleet. */
    double perModelRpm = 2.44;
    /** Pareto tail index of per-model popularity (smaller = hotter top). */
    double paretoAlpha = 1.08;
    /** Multiplier on burst episode sizes (1.0 = calibrated default). */
    double burstScale = 1.0;
    std::uint64_t seed = 1;
};

/** The generated trace plus its per-model characterization. */
struct AzureTrace
{
    std::vector<Arrival> arrivals;    ///< sorted by time
    std::vector<double> perModelRpm;  ///< average RPM of each model
    /** Window the trace was generated for (metrics window). Stamped by
     *  every generator; 0 only for hand-built traces. */
    Seconds duration = 0.0;

    std::size_t totalRequests() const { return arrivals.size(); }
    double aggregateRpm(Seconds duration) const;
    /** Fraction of requests issued by the hottest `topFrac` of models. */
    double topShare(double topFrac) const;
};

/** Generate a trace (deterministic in the config seed). */
AzureTrace generateAzureTrace(const AzureTraceConfig &cfg);

} // namespace slinfer

#endif // SLINFER_WORKLOAD_AZURE_TRACE_HH
