/**
 * @file
 * Service-level objectives for interactive LLM serving.
 *
 * Following the paper (§IX-A, after Sarathi-Serve and DistServe):
 *   TTFT_SLO(L) = min(max(0.5, L / 512), 8) seconds
 *   TPOT_SLO    = 0.25 seconds
 * Requests served by a cold-started instance receive a grace window on
 * TTFT equal to the cold-start duration (§IX-A "Systems Behavior and
 * Fairness").
 */

#ifndef SLINFER_WORKLOAD_SLO_HH
#define SLINFER_WORKLOAD_SLO_HH

#include "common/types.hh"

namespace slinfer
{

/** SLO configuration; the defaults are the paper's. */
struct SloSpec
{
    /** TTFT scale: one second per this many input tokens. */
    double tokensPerSecondBudget = 512.0;
    Seconds ttftFloor = 0.5;
    Seconds ttftCeiling = 8.0;
    Seconds tpot = 0.25;

    /** TTFT SLO for a request with the given input length. */
    Seconds ttft(Tokens inputLen) const;
};

/** The paper's default SLO. */
SloSpec defaultSlo();

/** A tighter TPOT SLO (the paper's §IV-A2 limitation analysis). */
SloSpec tightSlo(Seconds tpot);

} // namespace slinfer

#endif // SLINFER_WORKLOAD_SLO_HH
