#include "workload/azure_trace.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.hh"

namespace slinfer
{

double
AzureTrace::aggregateRpm(Seconds duration) const
{
    if (duration <= 0)
        return 0.0;
    return static_cast<double>(arrivals.size()) / (duration / 60.0);
}

double
AzureTrace::topShare(double topFrac) const
{
    if (arrivals.empty() || perModelRpm.empty())
        return 0.0;
    std::vector<double> rates = perModelRpm;
    std::sort(rates.begin(), rates.end(), std::greater<>());
    auto top = static_cast<std::size_t>(
        std::ceil(topFrac * static_cast<double>(rates.size())));
    top = std::max<std::size_t>(top, 1);
    double total = std::accumulate(rates.begin(), rates.end(), 0.0);
    double head = std::accumulate(rates.begin(), rates.begin() + top, 0.0);
    return total > 0 ? head / total : 0.0;
}

AzureTrace
generateAzureTrace(const AzureTraceConfig &cfg)
{
    if (cfg.numModels <= 0)
        fatal("generateAzureTrace: numModels must be positive");

    Rng rng(cfg.seed);
    Rng rate_rng = rng.fork(0xA11CE);

    // Per-model popularity weights: bounded Pareto, then normalized so
    // the fleet-wide mean is cfg.perModelRpm requests per minute.
    std::vector<double> weights(cfg.numModels);
    for (auto &w : weights)
        w = rate_rng.boundedPareto(1.0, 400.0, cfg.paretoAlpha);
    double wsum = std::accumulate(weights.begin(), weights.end(), 0.0);
    double total_rpm = cfg.perModelRpm * cfg.numModels;

    AzureTrace trace;
    trace.duration = cfg.duration;
    trace.perModelRpm.resize(cfg.numModels);

    for (int m = 0; m < cfg.numModels; ++m) {
        double rpm = total_rpm * weights[m] / wsum;
        trace.perModelRpm[m] = rpm;
        double rps = rpm / 60.0;

        // Burst-episode process: episodes arrive as a Poisson process;
        // each carries a geometric number of requests spread over a
        // short window. Hot models get larger episodes, producing the
        // 1..128+ concurrency range of Fig. 12.
        double mean_burst =
            (1.0 + 1.35 * std::sqrt(rpm)) * cfg.burstScale;
        mean_burst = std::min(mean_burst, 160.0);
        double episode_rate = rps / mean_burst;

        Rng mrng = rng.fork(0xB00 + static_cast<std::uint64_t>(m));
        Seconds t = mrng.exponential(std::max(episode_rate, 1e-9));
        while (t < cfg.duration) {
            // Geometric episode size with the calibrated mean.
            int count = 1;
            double p_continue = 1.0 - 1.0 / mean_burst;
            while (count < 256 && mrng.chance(p_continue))
                ++count;

            Seconds at = t;
            for (int i = 0; i < count && at < cfg.duration; ++i) {
                trace.arrivals.push_back(
                    {at, static_cast<ModelId>(m)});
                at += mrng.exponential(1.0 / 0.6); // ~0.6 s intra-burst gap
            }
            t += mrng.exponential(std::max(episode_rate, 1e-9));
        }
    }

    std::sort(trace.arrivals.begin(), trace.arrivals.end(),
              [](const Arrival &a, const Arrival &b) {
                  if (a.time != b.time)
                      return a.time < b.time;
                  return a.model < b.model;
              });
    return trace;
}

} // namespace slinfer
