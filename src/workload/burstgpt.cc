#include "workload/burstgpt.hh"

#include <algorithm>
#include <numeric>

#include "common/log.hh"

namespace slinfer
{

AzureTrace
generateBurstGpt(const BurstGptConfig &cfg)
{
    if (cfg.aggregateRps <= 0 || cfg.numModels <= 0)
        fatal("generateBurstGpt: bad configuration");

    Rng rng(cfg.seed);
    Rng pick_rng = rng.fork(0xC0FFEE);
    Rng gap_rng = rng.fork(0xBEEF);

    // Pareto popularity split across models.
    std::vector<double> weights(cfg.numModels);
    for (auto &w : weights)
        w = pick_rng.boundedPareto(1.0, 300.0, cfg.paretoAlpha);
    std::vector<double> cum(cfg.numModels);
    std::partial_sum(weights.begin(), weights.end(), cum.begin());
    double wsum = cum.back();

    // Gamma inter-arrivals with mean 1 / aggregateRps.
    double scale = 1.0 / (cfg.aggregateRps * cfg.gammaShape);

    AzureTrace trace;
    trace.duration = cfg.duration;
    trace.perModelRpm.assign(cfg.numModels, 0.0);

    Seconds t = 0.0;
    while (true) {
        t += gap_rng.gamma(cfg.gammaShape, scale);
        if (t >= cfg.duration)
            break;
        double u = pick_rng.uniform(0.0, wsum);
        auto it = std::lower_bound(cum.begin(), cum.end(), u);
        auto m = static_cast<ModelId>(it - cum.begin());
        trace.arrivals.push_back({t, m});
        trace.perModelRpm[m] += 1.0;
    }
    for (auto &rpm : trace.perModelRpm)
        rpm /= cfg.duration / 60.0;
    return trace;
}

} // namespace slinfer
