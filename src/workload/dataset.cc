#include "workload/dataset.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace slinfer
{

Dataset::Dataset(DatasetKind kind) : kind_(kind), p_(paramsFor(kind))
{
}

const char *
Dataset::name() const
{
    switch (kind_) {
      case DatasetKind::AzureConv: return "AzureConv";
      case DatasetKind::AzureCode: return "AzureCode";
      case DatasetKind::HumanEval: return "HumanEval";
      case DatasetKind::ShareGPT: return "ShareGPT";
      case DatasetKind::LongBench: return "LongBench";
    }
    return "?";
}

Dataset::Params
Dataset::paramsFor(DatasetKind kind)
{
    // Medians/sigmas matched to the published CDF shapes in Fig. 34 of
    // the paper (and the Splitwise characterization for the Azure
    // traces): conversation inputs cluster around 1K with 97.9% < 4K;
    // coding inputs are longer with short outputs; ShareGPT has the
    // longest outputs; LongBench inputs reach 32K.
    switch (kind) {
      case DatasetKind::AzureConv:
        return {1050.0, 0.92, 8, 7800, 190.0, 0.85, 1, 1000};
      case DatasetKind::AzureCode:
        return {1900.0, 1.10, 16, 7800, 20.0, 1.00, 1, 250};
      case DatasetKind::HumanEval:
        return {150.0, 0.45, 30, 650, 60.0, 0.60, 8, 320};
      case DatasetKind::ShareGPT:
        return {340.0, 1.05, 8, 4000, 270.0, 0.85, 1, 1000};
      case DatasetKind::LongBench:
        return {7000.0, 0.85, 900, 32000, 96.0, 0.70, 8, 512};
    }
    panic("Dataset: unknown kind");
}

LengthSample
Dataset::sample(Rng &rng) const
{
    LengthSample s;
    auto draw = [&rng](double median, double sigma, Tokens lo, Tokens hi) {
        double v = rng.logNormalMedian(median, sigma);
        auto t = static_cast<Tokens>(std::llround(v));
        return std::clamp(t, lo, hi);
    };
    s.input = draw(p_.inMedian, p_.inSigma, p_.inLo, p_.inHi);
    s.output = draw(p_.outMedian, p_.outSigma, p_.outLo, p_.outHi);
    return s;
}

namespace
{

/** Mean of a lognormal clipped to [lo, hi]; computed numerically so the
 *  reported historical average matches what sampling produces. */
double
clippedLognormalMean(double median, double sigma, double lo, double hi)
{
    // Trapezoidal integration over the untruncated quantile function is
    // accurate enough here and avoids a dependency on erf inverses.
    const int steps = 4096;
    double acc = 0.0;
    double mu = std::log(median);
    for (int i = 0; i < steps; ++i) {
        double u = (i + 0.5) / steps;
        // probit(u) ~= logit(u) / 1.702 (logistic approximation); a few
        // percent of error in the tails is fine for a historical mean.
        double z = std::log(u / (1.0 - u)) / 1.702;
        double v = std::exp(mu + sigma * z);
        acc += std::clamp(v, lo, hi);
    }
    return acc / steps;
}

} // namespace

double
Dataset::meanOutput() const
{
    return clippedLognormalMean(p_.outMedian, p_.outSigma,
                                static_cast<double>(p_.outLo),
                                static_cast<double>(p_.outHi));
}

double
Dataset::meanInput() const
{
    return clippedLognormalMean(p_.inMedian, p_.inSigma,
                                static_cast<double>(p_.inLo),
                                static_cast<double>(p_.inHi));
}

Tokens
Dataset::maxInput() const
{
    return p_.inHi;
}

} // namespace slinfer
