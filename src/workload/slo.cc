#include "workload/slo.hh"

#include <algorithm>

namespace slinfer
{

Seconds
SloSpec::ttft(Tokens inputLen) const
{
    double scaled = static_cast<double>(inputLen) / tokensPerSecondBudget;
    return std::min(std::max(ttftFloor, scaled), ttftCeiling);
}

SloSpec
defaultSlo()
{
    return SloSpec{};
}

SloSpec
tightSlo(Seconds tpot)
{
    SloSpec slo;
    slo.tpot = tpot;
    return slo;
}

} // namespace slinfer
