#include "scenario/arrival.hh"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <numeric>
#include <sstream>

#include "common/log.hh"

namespace slinfer
{
namespace scenario
{
namespace
{

/** Sort, clip to [0, duration), and derive realized per-model rates. */
AzureTrace
finalize(std::vector<Arrival> arrivals, int numModels, Seconds duration)
{
    std::sort(arrivals.begin(), arrivals.end(),
              [](const Arrival &a, const Arrival &b) {
                  if (a.time != b.time)
                      return a.time < b.time;
                  return a.model < b.model;
              });
    AzureTrace trace;
    trace.duration = duration;
    trace.perModelRpm.assign(numModels, 0.0);
    trace.arrivals.reserve(arrivals.size());
    for (const Arrival &a : arrivals) {
        if (a.time < 0 || a.time >= duration)
            continue;
        if (a.model >= static_cast<ModelId>(numModels))
            fatal("ArrivalProcess: arrival references unknown model");
        trace.arrivals.push_back(a);
        trace.perModelRpm[a.model] += 1.0;
    }
    for (double &rpm : trace.perModelRpm)
        rpm /= duration / 60.0;
    return trace;
}

/** Categorical draw from normalized weights via their running sum. */
class ModelPicker
{
  public:
    explicit ModelPicker(const std::vector<double> &weights)
        : cum_(weights.size())
    {
        std::partial_sum(weights.begin(), weights.end(), cum_.begin());
    }

    ModelId pick(Rng &rng) const
    {
        double u = rng.uniform(0.0, cum_.back());
        auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
        return static_cast<ModelId>(it - cum_.begin());
    }

  private:
    std::vector<double> cum_;
};

/**
 * Non-homogeneous Poisson sampler by thinning: candidate arrivals at
 * `maxRps`, each kept with probability rate(t)/maxRps.
 */
template <typename RateFn>
std::vector<Arrival>
thinnedPoisson(Rng &rng, Seconds duration, double maxRps, RateFn rate,
               const ModelPicker &picker)
{
    std::vector<Arrival> arrivals;
    if (maxRps <= 0)
        return arrivals;
    Rng pick_rng = rng.fork(0x9A0DE1);
    Seconds t = rng.exponential(maxRps);
    while (t < duration) {
        if (rng.chance(rate(t) / maxRps))
            arrivals.push_back({t, picker.pick(pick_rng)});
        t += rng.exponential(maxRps);
    }
    return arrivals;
}

// ------------------------------------------------------------------
// Poisson.
// ------------------------------------------------------------------

class PoissonProcess final : public ArrivalProcess
{
  public:
    explicit PoissonProcess(const PoissonConfig &cfg) : cfg_(cfg)
    {
        if (cfg.numModels <= 0 || cfg.duration <= 0)
            fatal("PoissonProcess: bad configuration");
    }

    const char *kind() const override { return "poisson"; }
    Seconds duration() const override { return cfg_.duration; }
    int numModels() const override { return cfg_.numModels; }
    double targetAggregateRpm() const override { return cfg_.aggregateRpm; }

    AzureTrace generate(std::uint64_t seed) const override
    {
        Rng rng = Rng(seed).fork(0x90155);
        ModelPicker picker(cfg_.split.weights(cfg_.numModels));
        double rps = cfg_.aggregateRpm / 60.0;
        auto rate = [rps](Seconds) { return rps; };
        return finalize(
            thinnedPoisson(rng, cfg_.duration, rps, rate, picker),
            cfg_.numModels, cfg_.duration);
    }

  private:
    PoissonConfig cfg_;
};

// ------------------------------------------------------------------
// Diurnal.
// ------------------------------------------------------------------

class DiurnalProcess final : public ArrivalProcess
{
  public:
    explicit DiurnalProcess(const DiurnalConfig &cfg) : cfg_(cfg)
    {
        if (cfg.numModels <= 0 || cfg.duration <= 0 || cfg.period <= 0 ||
            cfg.amplitude < 0 || cfg.amplitude >= 1)
            fatal("DiurnalProcess: bad configuration");
    }

    const char *kind() const override { return "diurnal"; }
    Seconds duration() const override { return cfg_.duration; }
    int numModels() const override { return cfg_.numModels; }
    double targetAggregateRpm() const override
    {
        // Mean of rate(t) = R*(1 + A*sin(2*pi*t/P + phi)) over [0, D]:
        // the sinusoid's integral contributes A*(cos(phi) - cos(wD+phi))
        // * P/(2*pi*D); it vanishes when D is a whole number of periods.
        double w_end = 2.0 * M_PI * cfg_.duration / cfg_.period;
        double envelope = cfg_.amplitude *
                          (std::cos(cfg_.phase) -
                           std::cos(w_end + cfg_.phase)) /
                          w_end;
        return cfg_.aggregateRpm * (1.0 + envelope);
    }

    AzureTrace generate(std::uint64_t seed) const override
    {
        Rng rng = Rng(seed).fork(0xD1C4A1);
        ModelPicker picker(cfg_.split.weights(cfg_.numModels));
        double mean_rps = cfg_.aggregateRpm / 60.0;
        double max_rps = mean_rps * (1.0 + cfg_.amplitude);
        auto rate = [this, mean_rps](Seconds t) {
            double phase =
                2.0 * M_PI * t / cfg_.period + cfg_.phase;
            return mean_rps * (1.0 + cfg_.amplitude * std::sin(phase));
        };
        return finalize(
            thinnedPoisson(rng, cfg_.duration, max_rps, rate, picker),
            cfg_.numModels, cfg_.duration);
    }

  private:
    DiurnalConfig cfg_;
};

// ------------------------------------------------------------------
// MMPP flash crowd.
// ------------------------------------------------------------------

class FlashCrowdProcess final : public ArrivalProcess
{
  public:
    explicit FlashCrowdProcess(const FlashCrowdConfig &cfg) : cfg_(cfg)
    {
        if (cfg.numModels <= 0 || cfg.duration <= 0 ||
            cfg.baselineRpm <= 0 || cfg.flashFactor < 1 ||
            cfg.meanQuiet <= 0 || cfg.meanFlash <= 0)
            fatal("FlashCrowdProcess: bad configuration");
    }

    const char *kind() const override { return "flash-crowd"; }
    Seconds duration() const override { return cfg_.duration; }
    int numModels() const override { return cfg_.numModels; }
    double targetAggregateRpm() const override
    {
        double flash_frac =
            cfg_.meanFlash / (cfg_.meanQuiet + cfg_.meanFlash);
        return cfg_.baselineRpm *
               (1.0 + flash_frac * (cfg_.flashFactor - 1.0));
    }

    AzureTrace generate(std::uint64_t seed) const override
    {
        Rng rng = Rng(seed).fork(0xF1A54);
        ModelPicker picker(cfg_.split.weights(cfg_.numModels));

        // Background: quiet-state Poisson over the whole window.
        Rng bg_rng = rng.fork(1);
        Rng bg_pick = rng.fork(2);
        double base_rps = cfg_.baselineRpm / 60.0;
        std::vector<Arrival> arrivals;
        Seconds t = bg_rng.exponential(base_rps);
        while (t < cfg_.duration) {
            arrivals.push_back({t, picker.pick(bg_pick)});
            t += bg_rng.exponential(base_rps);
        }

        // Flash episodes: alternate quiet/flash dwells; each episode
        // pours the excess rate onto one "viral" model. flashFactor 1
        // degenerates to the plain baseline (no episodes).
        Rng ep_rng = rng.fork(3);
        double flash_rps = base_rps * (cfg_.flashFactor - 1.0);
        if (flash_rps <= 0)
            return finalize(std::move(arrivals), cfg_.numModels,
                            cfg_.duration);
        Seconds now = ep_rng.exponential(1.0 / cfg_.meanQuiet);
        while (now < cfg_.duration) {
            Seconds flash_end =
                now + ep_rng.exponential(1.0 / cfg_.meanFlash);
            flash_end = std::min(flash_end, cfg_.duration);
            ModelId viral = picker.pick(ep_rng);
            Seconds at = now + ep_rng.exponential(flash_rps);
            while (at < flash_end) {
                arrivals.push_back({at, viral});
                at += ep_rng.exponential(flash_rps);
            }
            now = flash_end + ep_rng.exponential(1.0 / cfg_.meanQuiet);
        }
        return finalize(std::move(arrivals), cfg_.numModels, cfg_.duration);
    }

  private:
    FlashCrowdConfig cfg_;
};

// ------------------------------------------------------------------
// Ramp / step.
// ------------------------------------------------------------------

class RampProcess final : public ArrivalProcess
{
  public:
    explicit RampProcess(const RampConfig &cfg) : cfg_(cfg)
    {
        if (cfg.numModels <= 0 || cfg.duration <= 0 || cfg.startRpm < 0 ||
            cfg.endRpm < 0 || cfg.stepAtFrac < 0 || cfg.stepAtFrac > 1)
            fatal("RampProcess: bad configuration");
    }

    const char *kind() const override
    {
        return cfg_.shape == RampConfig::Shape::Step ? "step" : "ramp";
    }
    Seconds duration() const override { return cfg_.duration; }
    int numModels() const override { return cfg_.numModels; }
    double targetAggregateRpm() const override
    {
        if (cfg_.shape == RampConfig::Shape::Step) {
            return cfg_.startRpm * cfg_.stepAtFrac +
                   cfg_.endRpm * (1.0 - cfg_.stepAtFrac);
        }
        return 0.5 * (cfg_.startRpm + cfg_.endRpm);
    }

    AzureTrace generate(std::uint64_t seed) const override
    {
        Rng rng = Rng(seed).fork(0x4A3F);
        ModelPicker picker(cfg_.split.weights(cfg_.numModels));
        double start_rps = cfg_.startRpm / 60.0;
        double end_rps = cfg_.endRpm / 60.0;
        double max_rps = std::max(start_rps, end_rps);
        Seconds step_at = cfg_.stepAtFrac * cfg_.duration;
        auto rate = [this, start_rps, end_rps, step_at](Seconds t) {
            if (cfg_.shape == RampConfig::Shape::Step)
                return t < step_at ? start_rps : end_rps;
            double f = t / cfg_.duration;
            return start_rps + f * (end_rps - start_rps);
        };
        return finalize(
            thinnedPoisson(rng, cfg_.duration, max_rps, rate, picker),
            cfg_.numModels, cfg_.duration);
    }

  private:
    RampConfig cfg_;
};

// ------------------------------------------------------------------
// Paper generators behind the interface.
// ------------------------------------------------------------------

class AzureProcess final : public ArrivalProcess
{
  public:
    explicit AzureProcess(const AzureTraceConfig &cfg) : cfg_(cfg) {}

    const char *kind() const override { return "azure"; }
    Seconds duration() const override { return cfg_.duration; }
    int numModels() const override { return cfg_.numModels; }
    double targetAggregateRpm() const override
    {
        return cfg_.perModelRpm * cfg_.numModels;
    }

    AzureTrace generate(std::uint64_t seed) const override
    {
        AzureTraceConfig cfg = cfg_;
        cfg.seed = seed;
        return generateAzureTrace(cfg);
    }

  private:
    AzureTraceConfig cfg_;
};

class BurstGptProcess final : public ArrivalProcess
{
  public:
    explicit BurstGptProcess(const BurstGptConfig &cfg) : cfg_(cfg) {}

    const char *kind() const override { return "burstgpt"; }
    Seconds duration() const override { return cfg_.duration; }
    int numModels() const override { return cfg_.numModels; }
    double targetAggregateRpm() const override
    {
        return cfg_.aggregateRps * 60.0;
    }

    AzureTrace generate(std::uint64_t seed) const override
    {
        BurstGptConfig cfg = cfg_;
        cfg.seed = seed;
        return generateBurstGpt(cfg);
    }

  private:
    BurstGptConfig cfg_;
};

// ------------------------------------------------------------------
// Composition.
// ------------------------------------------------------------------

class CompositeProcess final : public ArrivalProcess
{
  public:
    explicit CompositeProcess(std::vector<ArrivalProcessPtr> parts)
        : parts_(std::move(parts))
    {
    }

    const char *kind() const override { return "composite"; }

    Seconds
    duration() const override
    {
        Seconds d = 0.0;
        for (const auto &p : parts_)
            d = std::max(d, p->duration());
        return d;
    }

    int numModels() const override { return parts_[0]->numModels(); }

    double
    targetAggregateRpm() const override
    {
        // A component's arrivals all lie inside its own window, so
        // over the composite window its rate dilutes by the duration
        // ratio.
        Seconds window = duration();
        double rpm = 0.0;
        for (const auto &p : parts_)
            rpm += p->targetAggregateRpm() * (p->duration() / window);
        return rpm;
    }

    AzureTrace
    generate(std::uint64_t seed) const override
    {
        AzureTrace out;
        out.duration = duration();
        out.perModelRpm.assign(numModels(), 0.0);
        for (std::size_t i = 0; i < parts_.size(); ++i) {
            // Independent sub-seed per component (splitmix64 of the
            // composite seed and the component index).
            std::uint64_t sub =
                (seed + 0x9E3779B97F4A7C15ull * (i + 1));
            sub = (sub ^ (sub >> 30)) * 0xBF58476D1CE4E5B9ull;
            sub = (sub ^ (sub >> 27)) * 0x94D049BB133111EBull;
            sub ^= sub >> 31;
            AzureTrace part = parts_[i]->generate(sub);
            // Stable merge: equal times keep earlier components
            // first, so the composite is deterministic.
            std::vector<Arrival> merged;
            merged.reserve(out.arrivals.size() + part.arrivals.size());
            std::merge(out.arrivals.begin(), out.arrivals.end(),
                       part.arrivals.begin(), part.arrivals.end(),
                       std::back_inserter(merged),
                       [](const Arrival &a, const Arrival &b) {
                           return a.time < b.time;
                       });
            out.arrivals = std::move(merged);
            for (std::size_t m = 0; m < part.perModelRpm.size(); ++m)
                out.perModelRpm[m] += part.perModelRpm[m];
        }
        return out;
    }

  private:
    std::vector<ArrivalProcessPtr> parts_;
};

// ------------------------------------------------------------------
// Replay.
// ------------------------------------------------------------------

class ReplayProcess final : public ArrivalProcess
{
  public:
    ReplayProcess(std::vector<Arrival> arrivals, int numModels,
                  Seconds duration)
        : trace_(finalize(std::move(arrivals), numModels, duration)),
          numModels_(numModels)
    {
    }

    const char *kind() const override { return "replay"; }
    Seconds duration() const override { return trace_.duration; }
    int numModels() const override { return numModels_; }
    double targetAggregateRpm() const override
    {
        return trace_.aggregateRpm(trace_.duration);
    }

    AzureTrace generate(std::uint64_t) const override { return trace_; }

  private:
    AzureTrace trace_;
    int numModels_;
};

} // namespace

std::vector<double>
PopularitySplit::weights(int numModels) const
{
    if (numModels <= 0)
        fatal("PopularitySplit: numModels must be positive");
    std::vector<double> w(numModels);
    double sum = 0.0;
    for (int m = 0; m < numModels; ++m) {
        w[m] = zipfS == 0.0 ? 1.0 : std::pow(m + 1.0, -zipfS);
        sum += w[m];
    }
    for (double &x : w)
        x /= sum;
    return w;
}

ArrivalProcessPtr
makePoisson(const PoissonConfig &cfg)
{
    return std::make_shared<PoissonProcess>(cfg);
}

ArrivalProcessPtr
makeDiurnal(const DiurnalConfig &cfg)
{
    return std::make_shared<DiurnalProcess>(cfg);
}

ArrivalProcessPtr
makeFlashCrowd(const FlashCrowdConfig &cfg)
{
    return std::make_shared<FlashCrowdProcess>(cfg);
}

ArrivalProcessPtr
makeRamp(const RampConfig &cfg)
{
    return std::make_shared<RampProcess>(cfg);
}

ArrivalProcessPtr
makeAzure(const AzureTraceConfig &cfg)
{
    return std::make_shared<AzureProcess>(cfg);
}

ArrivalProcessPtr
makeBurstGpt(const BurstGptConfig &cfg)
{
    return std::make_shared<BurstGptProcess>(cfg);
}

ArrivalProcessPtr
makeComposite(std::vector<ArrivalProcessPtr> parts)
{
    if (parts.empty())
        fatal("makeComposite: no components");
    for (const auto &p : parts) {
        if (!p)
            fatal("makeComposite: null component");
        if (p->numModels() != parts[0]->numModels())
            fatal("makeComposite: components disagree on numModels");
    }
    return std::make_shared<CompositeProcess>(std::move(parts));
}

ArrivalProcessPtr
makeReplay(std::vector<Arrival> arrivals, int numModels, Seconds duration)
{
    if (numModels <= 0 || duration <= 0)
        fatal("makeReplay: bad configuration");
    return std::make_shared<ReplayProcess>(std::move(arrivals), numModels,
                                           duration);
}

std::vector<Arrival>
parseArrivalsCsv(const std::string &text)
{
    std::vector<Arrival> arrivals;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::istringstream row(line);
        double t = 0.0;
        char comma = 0;
        long long model = 0;
        if (!(row >> t >> comma >> model) || comma != ',' || model < 0 ||
            model > static_cast<long long>(
                        std::numeric_limits<ModelId>::max()))
            fatal("parseArrivalsCsv: malformed line: " + line);
        arrivals.push_back({t, static_cast<ModelId>(model)});
    }
    return arrivals;
}

} // namespace scenario
} // namespace slinfer
