#include "scenario/scenario.hh"

#include "common/log.hh"

namespace slinfer
{
namespace scenario
{

ExperimentConfig
Scenario::toExperiment(SystemKind system, std::uint64_t seed_) const
{
    if (!arrivals)
        fatal("Scenario '" + name + "': no arrival process");
    if (models.empty())
        fatal("Scenario '" + name + "': no models");
    if (arrivals->numModels() != static_cast<int>(models.size()))
        fatal("Scenario '" + name + "': arrival process covers " +
              std::to_string(arrivals->numModels()) + " models but the "
              "fleet has " + std::to_string(models.size()));

    ExperimentConfig cfg;
    cfg.system = system;
    cfg.cluster = cluster;
    cfg.models = models;
    cfg.arrivals = arrivals;
    cfg.dataset = dataset;
    cfg.datasetPerModel = datasetPerModel;
    cfg.duration = 0.0; // inherit: the scenario is the source of truth
    cfg.controller = controller;
    cfg.timeline = timeline;
    cfg.chaos = chaos;
    cfg.resilienceReport = resilienceReport;
    cfg.seed = seed_;
    return cfg;
}

const Scenario *
byName(const std::string &name)
{
    for (const Scenario &sc : all()) {
        if (sc.name == name)
            return &sc;
    }
    return nullptr;
}

std::vector<std::string>
names()
{
    std::vector<std::string> out;
    out.reserve(all().size());
    for (const Scenario &sc : all())
        out.push_back(sc.name);
    return out;
}

Report
runScenario(const Scenario &sc, SystemKind system)
{
    return runScenario(sc, system, sc.seed);
}

Report
runScenario(const Scenario &sc, SystemKind system, std::uint64_t seed)
{
    Report report = runExperiment(sc.toExperiment(system, seed));
    report.scenario = sc.name;
    report.seed = seed;
    return report;
}

std::vector<ModelSpec>
fleet(const std::vector<std::pair<ModelSpec, int>> &groups)
{
    std::vector<ModelSpec> models;
    for (const auto &[spec, count] : groups) {
        for (int i = 0; i < count; ++i)
            models.push_back(spec);
    }
    return models;
}

} // namespace scenario
} // namespace slinfer
