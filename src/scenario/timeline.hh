/**
 * @file
 * Timeline parsing: scripted intervention sequences from JSON.
 *
 * The document is either a bare array of intervention objects or an
 * object with a "timeline" array member; each entry names a kind and
 * its parameters:
 *
 *   [
 *     {"at": 300, "kind": "node-fail", "node": 4},
 *     {"at": 600, "kind": "node-restore", "node": 4},
 *     {"at": 120, "kind": "model-redeploy", "model": 0},
 *     {"at": 240, "kind": "model-retire", "model": 2},
 *     {"at": 360, "kind": "model-deploy", "spec": "llama2-7b"},
 *     {"at": 480, "kind": "arrival-scale", "factor": 2.0},
 *     {"at": 600, "kind": "arrival-burst", "model": 1,
 *      "rpm": 120, "duration": 60}
 *   ]
 *
 * "spec" names a built-in model preset (hw/model_spec.hh,
 * tryModelPreset). The parsed Timeline slots into
 * ExperimentConfig::timeline / Scenario::timeline verbatim; field
 * validation beyond shape (node/model ranges) happens in
 * ExperimentConfig::validate and at fire time.
 */

#ifndef SLINFER_SCENARIO_TIMELINE_HH
#define SLINFER_SCENARIO_TIMELINE_HH

#include <string>

#include "harness/intervention.hh"

namespace slinfer
{
namespace scenario
{

/** Parse a timeline document. False (with *err set) on malformed
 *  input; entries keep document order. */
bool parseTimeline(const std::string &text, Timeline &out,
                   std::string *err);

/** Read and parse a timeline file. */
bool loadTimelineFile(const std::string &path, Timeline &out,
                      std::string *err);

} // namespace scenario
} // namespace slinfer

#endif // SLINFER_SCENARIO_TIMELINE_HH
