/**
 * @file
 * Composable arrival processes.
 *
 * Every workload the harness can drive — the paper's Azure serverless
 * trace, BurstGPT, and the synthetic what-if loads (steady Poisson,
 * diurnal envelopes, MMPP flash crowds, ramp/step transitions, replay
 * of an explicit trace) — sits behind one interface: a deterministic
 * generator from a seed to a sorted, duration-stamped trace. Scenarios
 * (scenario.hh) bundle an ArrivalProcess with a model fleet, dataset,
 * cluster and SLO; the harness consumes the generated trace unchanged.
 */

#ifndef SLINFER_SCENARIO_ARRIVAL_HH
#define SLINFER_SCENARIO_ARRIVAL_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/azure_trace.hh"
#include "workload/burstgpt.hh"

namespace slinfer
{
namespace scenario
{

/**
 * An arrival process: deterministically expands a seed into a full
 * invocation trace over `numModels()` models and `duration()` seconds.
 *
 * Invariants every implementation guarantees:
 *  - arrivals are sorted by time and lie in [0, duration());
 *  - arrival.model < numModels();
 *  - the trace's `duration` field is stamped with duration();
 *  - generate(s) == generate(s) (bitwise deterministic in the seed).
 */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** Short kind tag ("poisson", "diurnal", "azure", ...). */
    virtual const char *kind() const = 0;

    /** Generate the trace for this seed. */
    virtual AzureTrace generate(std::uint64_t seed) const = 0;

    /** Trace window, seconds. */
    virtual Seconds duration() const = 0;

    /** Number of models the arrivals reference. */
    virtual int numModels() const = 0;

    /**
     * Configured mean aggregate load in requests/minute over the whole
     * window (the calibration target the rate tests check against).
     */
    virtual double targetAggregateRpm() const = 0;
};

using ArrivalProcessPtr = std::shared_ptr<const ArrivalProcess>;

// ------------------------------------------------------------------
// Synthetic processes.
// ------------------------------------------------------------------

/**
 * Popularity split of an aggregate stream across models.
 * `zipfS == 0` is a uniform split; larger values concentrate load on
 * the low model ids (weight of model m is (m+1)^-zipfS).
 */
struct PopularitySplit
{
    double zipfS = 0.0;

    /** Normalized per-model weights. */
    std::vector<double> weights(int numModels) const;
};

/** Steady-state Poisson load split across the fleet. */
struct PoissonConfig
{
    int numModels = 32;
    Seconds duration = 1800.0;
    /** Aggregate mean arrival rate, requests/minute. */
    double aggregateRpm = 80.0;
    PopularitySplit split;
};

/**
 * Sinusoidal diurnal envelope: a non-homogeneous Poisson process with
 * rate(t) = mean * (1 + amplitude * sin(2*pi*t/period + phase)),
 * sampled by thinning. Models a day/night load cycle compressed into
 * the trace window.
 */
struct DiurnalConfig
{
    int numModels = 32;
    Seconds duration = 3600.0;
    /** Mean aggregate rate, requests/minute. */
    double aggregateRpm = 80.0;
    /** Peak-to-mean excursion in [0, 1). */
    double amplitude = 0.7;
    /** Seconds per full day/night cycle. */
    Seconds period = 3600.0;
    /** Phase offset, radians (default starts at the rising edge). */
    double phase = 0.0;
    PopularitySplit split;
};

/**
 * Two-state MMPP flash crowd: a quiet Poisson baseline that is
 * episodically interrupted by flash states with `flashFactor` times
 * the baseline rate. Flash arrivals concentrate on one "viral" model
 * per episode; quiet arrivals follow the popularity split.
 */
struct FlashCrowdConfig
{
    int numModels = 32;
    Seconds duration = 1800.0;
    /** Quiet-state aggregate rate, requests/minute. */
    double baselineRpm = 60.0;
    /** Flash-state rate multiplier. */
    double flashFactor = 12.0;
    /** Mean quiet-state dwell, seconds. */
    Seconds meanQuiet = 240.0;
    /** Mean flash-state dwell, seconds. */
    Seconds meanFlash = 30.0;
    PopularitySplit split;
};

/**
 * Ramp or step load transition from startRpm to endRpm. Linear shape
 * interpolates over the whole window; Step switches at stepAt.
 */
struct RampConfig
{
    enum class Shape { Linear, Step };

    int numModels = 32;
    Seconds duration = 1800.0;
    /** Aggregate rate at t = 0, requests/minute. */
    double startRpm = 20.0;
    /** Aggregate rate at t = duration, requests/minute. */
    double endRpm = 200.0;
    Shape shape = Shape::Linear;
    /** Switch time for Shape::Step (fraction of duration). */
    double stepAtFrac = 0.5;
    PopularitySplit split;
};

ArrivalProcessPtr makePoisson(const PoissonConfig &cfg);
ArrivalProcessPtr makeDiurnal(const DiurnalConfig &cfg);
ArrivalProcessPtr makeFlashCrowd(const FlashCrowdConfig &cfg);
ArrivalProcessPtr makeRamp(const RampConfig &cfg);

// ------------------------------------------------------------------
// Paper traces behind the same interface.
// ------------------------------------------------------------------

/** The Azure-serverless generator (workload/azure_trace.hh). The seed
 *  passed to generate() overrides cfg.seed, so
 *  makeAzure(cfg)->generate(cfg.seed) == generateAzureTrace(cfg). */
ArrivalProcessPtr makeAzure(const AzureTraceConfig &cfg);

/** The BurstGPT generator (workload/burstgpt.hh); same seed contract. */
ArrivalProcessPtr makeBurstGpt(const BurstGptConfig &cfg);

// ------------------------------------------------------------------
// Composition.
// ------------------------------------------------------------------

/**
 * Superpose several arrival processes over the same model space.
 *
 * Each component generates with an independent sub-seed derived from
 * the composite seed, the traces are merged by time (stable: equal
 * stamps keep component order), the duration is the longest
 * component's, and per-model rates add. All components must agree on
 * numModels. This is how long-duration fleet composites are built —
 * e.g. a diurnal baseline with an MMPP flash-crowd layer on top
 * (catalog entry `fleet-diurnal-surge`).
 */
ArrivalProcessPtr makeComposite(std::vector<ArrivalProcessPtr> parts);

// ------------------------------------------------------------------
// Trace replay.
// ------------------------------------------------------------------

/**
 * Replay an explicit arrival list (e.g. parsed from a real trace).
 * Arrivals are sorted and clipped to `duration`; generate() ignores
 * the seed.
 */
ArrivalProcessPtr makeReplay(std::vector<Arrival> arrivals, int numModels,
                             Seconds duration);

/**
 * Parse "time_seconds,model_id" lines (one arrival per line; '#'
 * comments and blank lines ignored) as produced by trace exporters.
 */
std::vector<Arrival> parseArrivalsCsv(const std::string &text);

} // namespace scenario
} // namespace slinfer

#endif // SLINFER_SCENARIO_ARRIVAL_HH
