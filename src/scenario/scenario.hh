/**
 * @file
 * Declarative workload scenarios.
 *
 * A Scenario bundles everything one serving experiment needs — an
 * arrival process (arrival.hh), a model fleet, the request-length
 * dataset(s), a cluster spec and the SLO/controller settings — into a
 * single named description. The registry (all()/byName()) holds the
 * catalog the `slinfer_run` driver exposes; benches and examples can
 * also start from a catalog entry and tweak it.
 */

#ifndef SLINFER_SCENARIO_SCENARIO_HH
#define SLINFER_SCENARIO_SCENARIO_HH

#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hh"
#include "scenario/arrival.hh"

namespace slinfer
{
namespace scenario
{

/** One declarative workload scenario. */
struct Scenario
{
    /** Registry key (kebab-case). */
    std::string name;
    /** One-line description for --list and the README catalog table. */
    std::string summary;

    /** Arrival process; its duration is the experiment window. */
    ArrivalProcessPtr arrivals;
    /** Model fleet; arrival model ids index this vector. */
    std::vector<ModelSpec> models;
    /** Request-length dataset used by every model... */
    DatasetKind dataset = DatasetKind::AzureConv;
    /** ...unless a per-model mix is given (one entry per model). */
    std::vector<DatasetKind> datasetPerModel;

    ClusterSpec cluster;
    /** Controller knobs; controller.slo is the scenario's SLO. */
    ControllerConfig controller;

    /**
     * Scripted mid-run interventions the Session applies at their
     * stamps (harness/intervention.hh): node failures, rolling
     * deploys, arrival surges. Empty for a plain scenario.
     */
    Timeline timeline;

    /**
     * Stochastic fault processes (chaos/chaos.hh) expanded into extra
     * timeline entries from the run seed. Empty for a fault-free
     * scenario.
     */
    chaos::ChaosConfig chaos;
    /** Attach the resilience probe and report the Resilience block.
     *  Set on chaos scenarios. */
    bool resilienceReport = false;

    /** Default seed (slinfer_run --seed overrides). */
    std::uint64_t seed = 5;

    Seconds duration() const { return arrivals ? arrivals->duration() : 0; }

    /** Lower this scenario into a harness config for `system`. */
    ExperimentConfig toExperiment(SystemKind system,
                                  std::uint64_t seed) const;
};

/** The built-in catalog, in registration order. */
const std::vector<Scenario> &all();

/** Look up a catalog entry; nullptr when absent. */
const Scenario *byName(const std::string &name);

/** Catalog names, in registration order. */
std::vector<std::string> names();

/** Run `system` on the scenario with its default seed. */
Report runScenario(const Scenario &sc, SystemKind system);

/** Run `system` on the scenario with an explicit seed. */
Report runScenario(const Scenario &sc, SystemKind system,
                   std::uint64_t seed);

/**
 * Fleet helper: groups of identical models, e.g.
 * fleet({{llama2_7b(), 24}, {llama2_13b(), 8}}).
 */
std::vector<ModelSpec>
fleet(const std::vector<std::pair<ModelSpec, int>> &groups);

} // namespace scenario
} // namespace slinfer

#endif // SLINFER_SCENARIO_SCENARIO_HH
