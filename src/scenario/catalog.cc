/**
 * @file
 * The built-in scenario catalog.
 *
 * Each entry is a complete, named experiment: workload shape, fleet,
 * datasets, cluster and SLO. The first entries mirror the paper's
 * Azure-serverless evaluation; the rest are the what-if loads the
 * ROADMAP asks for (steady state, diurnal cycles, flash crowds,
 * ramp/step transitions, multi-tenant Zipf mixes, long-context hubs,
 * and the timeline-driven fault/deploy/surge family at the bottom).
 * Add new scenarios here; tests/test_scenario.cc checks every entry's
 * determinism, rate calibration and registry round-trip automatically.
 */

#include "scenario/scenario.hh"

namespace slinfer
{
namespace scenario
{
namespace
{

Scenario
quickstart()
{
    Scenario sc;
    sc.name = "quickstart";
    sc.summary = "4 private 7B models on 1 CPU + 1 GPU node, 5-minute "
                 "serverless trace";
    AzureTraceConfig tc;
    tc.numModels = 4;
    tc.duration = 300.0;
    sc.arrivals = makeAzure(tc);
    sc.models = fleet({{llama2_7b(), 4}});
    sc.cluster.cpuNodes = 1;
    sc.cluster.gpuNodes = 1;
    sc.seed = 42;
    return sc;
}

Scenario
azure64()
{
    Scenario sc;
    sc.name = "azure-64";
    sc.summary = "the paper's mid-scale evaluation: 64 7B models, "
                 "30-minute Azure serverless trace";
    AzureTraceConfig tc;
    tc.numModels = 64;
    tc.duration = 1800.0;
    sc.arrivals = makeAzure(tc);
    sc.models = fleet({{llama2_7b(), 64}});
    return sc;
}

Scenario
azure128()
{
    Scenario sc;
    sc.name = "azure-128";
    sc.summary = "the paper's large-scale evaluation: 128 7B models on "
                 "an 8+8 cluster";
    AzureTraceConfig tc;
    tc.numModels = 128;
    tc.duration = 1800.0;
    sc.arrivals = makeAzure(tc);
    sc.models = fleet({{llama2_7b(), 128}});
    sc.cluster.cpuNodes = 8;
    sc.cluster.gpuNodes = 8;
    return sc;
}

Scenario
poissonSteady()
{
    Scenario sc;
    sc.name = "poisson-steady";
    sc.summary = "steady-state Poisson load, 32 7B models, uniform "
                 "popularity";
    PoissonConfig pc;
    pc.numModels = 32;
    pc.duration = 1800.0;
    pc.aggregateRpm = 80.0;
    sc.arrivals = makePoisson(pc);
    sc.models = fleet({{llama2_7b(), 32}});
    sc.cluster.cpuNodes = 2;
    sc.cluster.gpuNodes = 2;
    return sc;
}

Scenario
diurnalCycle()
{
    Scenario sc;
    sc.name = "diurnal-cycle";
    sc.summary = "one sinusoidal day/night cycle compressed into an "
                 "hour, 64 7B models";
    DiurnalConfig dc;
    dc.numModels = 64;
    dc.duration = 3600.0;
    dc.period = 3600.0;
    dc.aggregateRpm = 160.0;
    dc.amplitude = 0.7;
    dc.split.zipfS = 1.05;
    sc.arrivals = makeDiurnal(dc);
    sc.models = fleet({{llama2_7b(), 64}});
    return sc;
}

Scenario
flashCrowd()
{
    Scenario sc;
    sc.name = "flash-crowd";
    sc.summary = "MMPP bursts: quiet baseline with 12x flash episodes "
                 "concentrated on one viral model";
    FlashCrowdConfig fc;
    fc.numModels = 32;
    fc.duration = 1800.0;
    fc.baselineRpm = 60.0;
    fc.flashFactor = 12.0;
    fc.split.zipfS = 1.1;
    sc.arrivals = makeFlashCrowd(fc);
    sc.models = fleet({{llama2_7b(), 32}});
    sc.cluster.cpuNodes = 3;
    sc.cluster.gpuNodes = 3;
    return sc;
}

Scenario
rampUp()
{
    Scenario sc;
    sc.name = "ramp-up";
    sc.summary = "linear load ramp from 20 to 200 requests/minute over "
                 "30 minutes";
    RampConfig rc;
    rc.numModels = 32;
    rc.duration = 1800.0;
    rc.startRpm = 20.0;
    rc.endRpm = 200.0;
    sc.arrivals = makeRamp(rc);
    sc.models = fleet({{llama2_7b(), 32}});
    sc.cluster.cpuNodes = 3;
    sc.cluster.gpuNodes = 3;
    return sc;
}

Scenario
stepSurge()
{
    Scenario sc;
    sc.name = "step-surge";
    sc.summary = "6x step surge halfway through the window (capacity "
                 "reaction test)";
    RampConfig rc;
    rc.numModels = 32;
    rc.duration = 1800.0;
    rc.startRpm = 40.0;
    rc.endRpm = 240.0;
    rc.shape = RampConfig::Shape::Step;
    rc.stepAtFrac = 0.5;
    sc.arrivals = makeRamp(rc);
    sc.models = fleet({{llama2_7b(), 32}});
    sc.cluster.cpuNodes = 3;
    sc.cluster.gpuNodes = 3;
    return sc;
}

Scenario
zipfMultitenant()
{
    Scenario sc;
    sc.name = "zipf-multitenant";
    sc.summary = "48-tenant Zipf(1.2) mix of 3B/7B/8B/13B models with "
                 "per-tenant datasets";
    PoissonConfig pc;
    pc.numModels = 48;
    pc.duration = 1800.0;
    pc.aggregateRpm = 120.0;
    pc.split.zipfS = 1.2;
    sc.arrivals = makePoisson(pc);
    sc.models = fleet({{llama32_3b(), 16},
                       {llama2_7b(), 16},
                       {llama31_8b(), 8},
                       {llama2_13b(), 8}});
    // Dataset mix: chat tenants on the conversation trace, the 8B
    // group serving code, the 13B group long-form ShareGPT.
    sc.datasetPerModel.assign(16, DatasetKind::AzureConv);
    sc.datasetPerModel.insert(sc.datasetPerModel.end(), 16,
                              DatasetKind::AzureConv);
    sc.datasetPerModel.insert(sc.datasetPerModel.end(), 8,
                              DatasetKind::AzureCode);
    sc.datasetPerModel.insert(sc.datasetPerModel.end(), 8,
                              DatasetKind::ShareGPT);
    return sc;
}

Scenario
mixedFleet()
{
    Scenario sc;
    sc.name = "mixed-fleet";
    sc.summary = "heterogeneous 7B/13B/34B fleet on a 6+6 cluster, "
                 "Azure arrivals";
    AzureTraceConfig tc;
    tc.numModels = 36;
    tc.duration = 1800.0;
    sc.arrivals = makeAzure(tc);
    sc.models = fleet({{llama2_7b(), 24},
                       {llama2_13b(), 8},
                       {codellama_34b(), 4}});
    sc.cluster.cpuNodes = 6;
    sc.cluster.gpuNodes = 6;
    return sc;
}

Scenario
burstGptSteady()
{
    Scenario sc;
    sc.name = "burstgpt";
    sc.summary = "BurstGPT gamma inter-arrivals (2 rps aggregate) over "
                 "64 7B models";
    BurstGptConfig bc;
    bc.numModels = 64;
    bc.duration = 1800.0;
    bc.aggregateRps = 2.0;
    sc.arrivals = makeBurstGpt(bc);
    sc.models = fleet({{llama2_7b(), 64}});
    return sc;
}

Scenario
longContextHub()
{
    Scenario sc;
    sc.name = "longcontext-hub";
    sc.summary = "16 long-context 8B models fed 32K-token LongBench "
                 "requests";
    PoissonConfig pc;
    pc.numModels = 16;
    pc.duration = 1800.0;
    pc.aggregateRpm = 24.0;
    sc.arrivals = makePoisson(pc);
    sc.models = fleet({{llama31_8b(), 16}});
    sc.dataset = DatasetKind::LongBench;
    sc.cluster.cpuNodes = 2;
    sc.cluster.gpuNodes = 2;
    return sc;
}

Scenario
tightSloFlash()
{
    Scenario sc = flashCrowd();
    sc.name = "flash-crowd-tight";
    sc.summary = "the flash-crowd load under a 0.1 s TPOT SLO "
                 "(latency-critical tenants)";
    sc.controller.slo = tightSlo(0.1);
    return sc;
}

// ------------------------------------------------------------------
// The fleet family: 10x/100x the paper's model counts plus
// long-duration composites — the loads the event-arena rebuild of
// the simulator core exists to make routine (see DESIGN.md, "The
// event arena"). fleet-640 is part of the CI smoke grid
// (sweeps/smoke.manifest).
// ------------------------------------------------------------------

Scenario
fleet640()
{
    Scenario sc;
    sc.name = "fleet-640";
    sc.summary = "10x the paper's mid-scale fleet: 640 7B models on a "
                 "40+40 cluster, Azure serverless arrivals";
    AzureTraceConfig tc;
    tc.numModels = 640;
    tc.duration = 1800.0;
    sc.arrivals = makeAzure(tc);
    sc.models = fleet({{llama2_7b(), 640}});
    sc.cluster.cpuNodes = 40;
    sc.cluster.gpuNodes = 40;
    return sc;
}

Scenario
fleet6400()
{
    Scenario sc;
    sc.name = "fleet-6400";
    sc.summary = "100x scale: 6400 7B models on a 400+400 cluster "
                 "(sized for the arena core; minutes of wall-clock)";
    AzureTraceConfig tc;
    tc.numModels = 6400;
    tc.duration = 1800.0;
    sc.arrivals = makeAzure(tc);
    sc.models = fleet({{llama2_7b(), 6400}});
    sc.cluster.cpuNodes = 400;
    sc.cluster.gpuNodes = 400;
    return sc;
}

Scenario
fleet64000()
{
    Scenario sc;
    sc.name = "fleet-64000";
    sc.summary = "1000x scale: 64000 7B models on a 4000+4000 cluster "
                 "(sized for the lockstep engine; --parallel-sim "
                 "brings it to minutes on a multi-core host)";
    AzureTraceConfig tc;
    tc.numModels = 64000;
    tc.duration = 1800.0;
    sc.arrivals = makeAzure(tc);
    sc.models = fleet({{llama2_7b(), 64000}});
    sc.cluster.cpuNodes = 4000;
    sc.cluster.gpuNodes = 4000;
    return sc;
}

Scenario
fleetDiurnalSurge()
{
    Scenario sc;
    sc.name = "fleet-diurnal-surge";
    sc.summary = "1-hour composite over 320 models: a diurnal cycle "
                 "with an MMPP flash-crowd layer on top";
    DiurnalConfig dc;
    dc.numModels = 320;
    dc.duration = 3600.0;
    dc.period = 3600.0;
    dc.aggregateRpm = 480.0;
    dc.amplitude = 0.7;
    dc.split.zipfS = 1.05;
    FlashCrowdConfig fc;
    fc.numModels = 320;
    fc.duration = 3600.0;
    fc.baselineRpm = 96.0;
    fc.flashFactor = 12.0;
    fc.split.zipfS = 1.1;
    sc.arrivals = makeComposite({makeDiurnal(dc), makeFlashCrowd(fc)});
    sc.models = fleet({{llama2_7b(), 320}});
    sc.cluster.cpuNodes = 24;
    sc.cluster.gpuNodes = 24;
    return sc;
}

// ------------------------------------------------------------------
// Timeline-driven scenarios: the Session lifecycle's scripted
// interventions (harness/intervention.hh) expressed as catalog
// entries — node failures, rolling deploys and arrival surges that a
// config-then-run-to-completion driver could not describe.
// ------------------------------------------------------------------

Intervention
at(Seconds when, Intervention::Kind kind)
{
    Intervention iv;
    iv.at = when;
    iv.kind = kind;
    return iv;
}

Scenario
fleetNodeFailure()
{
    Scenario sc;
    sc.name = "fleet-node-failure";
    sc.summary = "steady Poisson fleet losing a GPU node at 300 s "
                 "(restored at 600 s)";
    PoissonConfig pc;
    pc.numModels = 32;
    pc.duration = 900.0;
    pc.aggregateRpm = 80.0;
    sc.arrivals = makePoisson(pc);
    sc.models = fleet({{llama2_7b(), 32}});
    sc.cluster.cpuNodes = 3;
    sc.cluster.gpuNodes = 3;
    // Node ids: CPUs first, so node 4 is the middle GPU node.
    Intervention failGpu = at(300.0, Intervention::Kind::NodeFail);
    failGpu.node = 4;
    Intervention restoreGpu = at(600.0, Intervention::Kind::NodeRestore);
    restoreGpu.node = 4;
    sc.timeline = {failGpu, restoreGpu};
    return sc;
}

Scenario
fleetRollingDeploy()
{
    Scenario sc;
    sc.name = "fleet-rolling-deploy";
    sc.summary = "rolling redeploy wave: one model drained and "
                 "cold-restarted every 60 s from t=300";
    PoissonConfig pc;
    pc.numModels = 32;
    pc.duration = 1800.0;
    pc.aggregateRpm = 80.0;
    sc.arrivals = makePoisson(pc);
    sc.models = fleet({{llama2_7b(), 32}});
    sc.cluster.cpuNodes = 3;
    sc.cluster.gpuNodes = 3;
    for (int m = 0; m < 8; ++m) {
        Intervention roll =
            at(300.0 + 60.0 * m, Intervention::Kind::ModelRedeploy);
        roll.model = m;
        sc.timeline.push_back(roll);
    }
    return sc;
}

Scenario
fleetSurgeScale()
{
    Scenario sc;
    sc.name = "fleet-surge-scale";
    sc.summary = "arrival rate doubles at 600 s with a hot-model burst "
                 "on top, then halves back at 1200 s";
    PoissonConfig pc;
    pc.numModels = 32;
    pc.duration = 1800.0;
    pc.aggregateRpm = 60.0;
    pc.split.zipfS = 1.05;
    sc.arrivals = makePoisson(pc);
    sc.models = fleet({{llama2_7b(), 32}});
    sc.cluster.cpuNodes = 3;
    sc.cluster.gpuNodes = 3;
    Intervention up = at(600.0, Intervention::Kind::ArrivalScale);
    up.factor = 2.0;
    Intervention burst = at(900.0, Intervention::Kind::ArrivalBurst);
    burst.model = 0;
    burst.rpm = 90.0;
    burst.duration = 120.0;
    Intervention down = at(1200.0, Intervention::Kind::ArrivalScale);
    down.factor = 0.5;
    sc.timeline = {up, burst, down};
    return sc;
}

// ------------------------------------------------------------------
// Chaos scenarios: stochastic fault processes (chaos/chaos.hh)
// expanded into the timeline from the run seed, paired with the
// controller resilience policies and the resilience-metrics probe.
// fleet-chaos-correlated is part of the CI smoke grid and the
// recovery-metrics gate (sweeps/smoke.manifest, sweep/compare.cc).
// ------------------------------------------------------------------

/** The shared chaos base: the fleet-node-failure load (3+3 cluster,
 *  node ids 3-5 are the GPUs) with the resilience policies on. */
Scenario
chaosBase()
{
    Scenario sc;
    PoissonConfig pc;
    pc.numModels = 32;
    pc.duration = 900.0;
    pc.aggregateRpm = 80.0;
    sc.arrivals = makePoisson(pc);
    sc.models = fleet({{llama2_7b(), 32}});
    sc.cluster.cpuNodes = 3;
    sc.cluster.gpuNodes = 3;
    sc.controller.resilience.backoff = true;
    sc.controller.resilience.failoverExclusion = 30.0;
    sc.resilienceReport = true;
    return sc;
}

Scenario
fleetChaosFlaky()
{
    Scenario sc = chaosBase();
    sc.name = "fleet-chaos-flaky";
    sc.summary = "Poisson MTBF/MTTR flaps on every GPU node, with "
                 "backoff, failover exclusion and batch-first shedding";
    chaos::FaultProcess flap;
    flap.kind = chaos::FaultProcess::Kind::NodeFlap;
    flap.firstNode = 3;
    flap.lastNode = 5;
    flap.mtbf = 250.0;
    flap.mttr = 40.0;
    sc.chaos.processes.push_back(flap);
    // Long-input requests (TTFT SLO >= 4 s, i.e. >= 2K input tokens)
    // count as batch class and shed first while nodes are down.
    sc.controller.resilience.shedBatchFirst = true;
    sc.controller.resilience.batchSloCutoff = 4.0;
    return sc;
}

Scenario
fleetChaosCorrelated()
{
    Scenario sc = chaosBase();
    sc.name = "fleet-chaos-correlated";
    sc.summary = "correlated blast radius: both spare GPU nodes fail "
                 "together at 300 s for 180 s (recovery-gate scenario)";
    chaos::FaultProcess blast;
    blast.kind = chaos::FaultProcess::Kind::CorrelatedFailure;
    blast.firstNode = 4;
    blast.lastNode = 5;
    blast.at = 300.0;
    blast.hold = 180.0;
    sc.chaos.processes.push_back(blast);
    return sc;
}

Scenario
fleetChaosStraggler()
{
    Scenario sc = chaosBase();
    sc.name = "fleet-chaos-straggler";
    sc.summary = "one GPU node runs 3x slower from 200 s, then a "
                 "fleet-wide 4x PD-transfer brownout from 500 s";
    chaos::FaultProcess slow;
    slow.kind = chaos::FaultProcess::Kind::Straggler;
    slow.firstNode = 5;
    slow.lastNode = 5;
    slow.at = 200.0;
    slow.hold = 300.0;
    slow.factor = 3.0;
    sc.chaos.processes.push_back(slow);
    chaos::FaultProcess brownout;
    brownout.kind = chaos::FaultProcess::Kind::NetBrownout;
    brownout.at = 500.0;
    brownout.hold = 200.0;
    brownout.factor = 4.0;
    sc.chaos.processes.push_back(brownout);
    return sc;
}

} // namespace

const std::vector<Scenario> &
all()
{
    static const std::vector<Scenario> catalog = {
        quickstart(),   azure64(),     azure128(),
        poissonSteady(), diurnalCycle(), flashCrowd(),
        rampUp(),       stepSurge(),   zipfMultitenant(),
        mixedFleet(),   burstGptSteady(), longContextHub(),
        tightSloFlash(), fleet640(),   fleet6400(),
        fleet64000(),   fleetDiurnalSurge(),
        fleetNodeFailure(), fleetRollingDeploy(), fleetSurgeScale(),
        fleetChaosFlaky(), fleetChaosCorrelated(),
        fleetChaosStraggler(),
    };
    return catalog;
}

} // namespace scenario
} // namespace slinfer
