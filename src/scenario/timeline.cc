#include "scenario/timeline.hh"

#include <fstream>
#include <sstream>

#include "sweep/json.hh"

namespace slinfer
{
namespace scenario
{

namespace
{

bool
fail(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
    return false;
}

bool
parseEntry(const sweep::JsonValue &v, std::size_t index, Intervention &iv,
           std::string *err)
{
    std::string where = "timeline[" + std::to_string(index) + "]";
    if (!v.isObject())
        return fail(err, where + ": expected an object");

    std::string kind = v.string("kind");
    if (kind.empty())
        return fail(err, where + ": missing \"kind\"");
    if (!tryParseInterventionKind(kind, iv.kind))
        return fail(err, where + ": unknown kind '" + kind + "'");

    const sweep::JsonValue *at = v.find("at");
    if (!at || !at->isNumber())
        return fail(err, where + ": missing numeric \"at\"");
    iv.at = at->number;

    iv.node = static_cast<int>(v.num("node", -1));
    iv.model = static_cast<int>(v.num("model", -1));
    iv.factor = v.num("factor", 1.0);
    iv.rpm = v.num("rpm", 0.0);
    iv.duration = v.num("duration", 0.0);

    std::string spec = v.string("spec");
    if (!spec.empty() && !tryModelPreset(spec, iv.spec))
        return fail(err, where + ": unknown model preset '" + spec + "'");
    if (iv.kind == Intervention::Kind::ModelDeploy && spec.empty())
        return fail(err, where + ": model-deploy needs \"spec\"");
    return true;
}

} // namespace

bool
parseTimeline(const std::string &text, Timeline &out, std::string *err)
{
    sweep::JsonValue doc;
    if (!parseJson(text, doc, err))
        return false;
    const sweep::JsonValue *list = &doc;
    if (doc.isObject()) {
        list = doc.find("timeline");
        if (!list)
            return fail(err, "no \"timeline\" member in the document");
    }
    if (!list->isArray())
        return fail(err, "timeline must be a JSON array");

    Timeline parsed;
    parsed.reserve(list->array.size());
    for (std::size_t i = 0; i < list->array.size(); ++i) {
        Intervention iv;
        if (!parseEntry(list->array[i], i, iv, err))
            return false;
        parsed.push_back(std::move(iv));
    }
    out = std::move(parsed);
    return true;
}

bool
loadTimelineFile(const std::string &path, Timeline &out, std::string *err)
{
    std::ifstream in(path);
    if (!in)
        return fail(err, "cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseTimeline(buf.str(), out, err);
}

} // namespace scenario
} // namespace slinfer
