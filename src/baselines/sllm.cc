#include "baselines/sllm.hh"

#include <algorithm>

#include "common/log.hh"
#include "hw/perf_model.hh"

namespace slinfer
{

SllmController::SllmController(Simulator &sim,
                               std::vector<std::unique_ptr<Node>> &nodes,
                               std::vector<ModelSpec> modelSpecs,
                               std::vector<double> initialAvgOutput,
                               ControllerConfig cfg, Recorder &recorder,
                               ClusterStats *stats, SllmOptions opts)
    : ControllerBase(sim, nodes, std::move(modelSpecs),
                     std::move(initialAvgOutput), cfg, recorder, stats),
      opts_(opts)
{
}

int
SllmController::concurrencyCap(ModelClass klass, HwKind kind, bool shared)
{
    if (kind == HwKind::Cpu) {
        if (!shared) {
            switch (klass) {
              case ModelClass::Small3B: return 59;
              case ModelClass::Mid7B: return 15;
              case ModelClass::Mid8B: return 15;
              case ModelClass::Large13B: return 6;
              default: return 0;
            }
        }
        switch (klass) {
          case ModelClass::Small3B: return 23;
          case ModelClass::Mid7B: return 4;
          case ModelClass::Mid8B: return 4;
          case ModelClass::Large13B: return 6; // full node (exception)
          default: return 0;
        }
    }
    if (!shared) {
        switch (klass) {
          case ModelClass::Small3B: return 160;
          case ModelClass::Mid7B: return 32;
          case ModelClass::Mid8B: return 32;
          case ModelClass::Large13B: return 16;
          case ModelClass::Huge22B: return 12;
          case ModelClass::Huge34B: return 16;
        }
        return 0;
    }
    switch (klass) {
      case ModelClass::Small3B: return 71;
      case ModelClass::Mid7B: return 12;
      case ModelClass::Mid8B: return 12;
      case ModelClass::Large13B: return 4;
      default: return 0; // 22B/34B fall back to exclusive whole nodes
    }
}

SchedPolicy
SllmController::schedPolicy() const
{
    return SchedPolicy::FifoPrefillFirst;
}

bool
SllmController::cpuServable(const ModelSpec &spec) const
{
    if (!opts_.useCpu)
        return false;
    switch (spec.klass) {
      case ModelClass::Small3B:
      case ModelClass::Mid7B:
      case ModelClass::Mid8B:
      case ModelClass::Large13B:
        break;
      default:
        return false;
    }
    for (const auto &node : nodes_) {
        if (node->isCpu())
            return node->spec().hasMatrixAccel;
    }
    return false;
}

bool
SllmController::admitIfRoom(Request *req, Instance *inst, bool asDecode)
{
    if (inst->state != InstanceState::Active &&
        inst->state != InstanceState::Loading)
        return false;
    if (inst->draining || inst->primary->failed)
        return false; // being drained by an intervention
    // Full-node deployments (13B-on-CPU exception, exclusive 22B/34B)
    // carry extra holds and use the unshared caps.
    bool shared = opts_.staticShare && inst->extraHolds.empty();
    int cap = concurrencyCap(inst->model.klass, inst->execSpec.kind,
                             shared);
    if (cap == 0)
        cap = 1; // exclusive deployments still serve sequentially-ish
    if (inst->loadSize() >= cap)
        return false;
    Tokens need = PagedKvCache::roundedTokens(req->contextLen()) +
                  PagedKvCache::kBlockTokens;
    if (!inst->kv.canFit(need))
        return false;
    if (asDecode)
        return admitToDecode(req, inst);
    admitTo(req, inst);
    return true;
}

Instance *
SllmController::createInstanceFor(ModelId model, InstanceRole role)
{
    const ModelSpec &spec = models_[model].spec;

    // Large models take whole GPU nodes (tensor parallel if needed).
    bool exclusive = spec.klass == ModelClass::Huge22B ||
                     spec.klass == ModelClass::Huge34B;
    if (exclusive) {
        int degree = std::max(1, spec.tpDegree);
        std::vector<Node *> free_nodes;
        for (const auto &node : nodes_) {
            if (node->isCpu() || node->inUse() || node->failed())
                continue;
            free_nodes.push_back(node.get());
            if (static_cast<int>(free_nodes.size()) == degree)
                break;
        }
        if (static_cast<int>(free_nodes.size()) < degree)
            return nullptr;
        HardwareSpec exec =
            PerfModel::tensorParallel(free_nodes[0]->spec(), degree);
        Bytes total_cap = 0;
        std::vector<Partition *> holds;
        for (Node *n : free_nodes) {
            for (auto &p : n->partitions()) {
                total_cap += p->mem.capacity();
                holds.push_back(p.get());
            }
        }
        Partition *primary = holds.front();
        holds.erase(holds.begin());
        Instance *inst = makeInstance(model, primary, exec,
                                      total_cap - spec.weightBytes(), role,
                                      holds, true);
        startStaticLoad(inst);
        return inst;
    }

    bool cpu_ok = cpuServable(spec);
    for (Partition *p : allPartitions(cpu_ok)) {
        bool is_cpu = p->spec.kind == HwKind::Cpu;
        if (is_cpu && !cpu_ok)
            continue;
        if (!p->openForPlacement() || !p->instances.empty())
            continue;

        // The paper's exception: 13B on a shared CPU keeps the whole
        // node. Claim the sibling partition too.
        std::vector<Partition *> holds;
        HardwareSpec exec = p->spec;
        Bytes kv_alloc = p->mem.capacity() - spec.weightBytes();
        if (opts_.staticShare && is_cpu &&
            spec.klass == ModelClass::Large13B) {
            Node *node = nodes_[p->node].get();
            bool all_free = true;
            for (auto &sib : node->partitions()) {
                if (sib.get() != p &&
                    (!sib->instances.empty() || !sib->openForPlacement()))
                    all_free = false;
            }
            if (!all_free)
                continue;
            exec = node->spec();
            kv_alloc = node->memCapacity() - spec.weightBytes();
            for (auto &sib : node->partitions()) {
                if (sib.get() != p)
                    holds.push_back(sib.get());
            }
        }
        if (spec.weightBytes() >= p->mem.capacity() && holds.empty())
            continue; // cannot even fit the weights here
        // NEO-style CPU assistance extends the KV space beyond device
        // memory.
        kv_alloc += p->spec.auxKvCapacity;
        Instance *inst =
            makeInstance(model, p, exec, kv_alloc, role, holds, true);
        startStaticLoad(inst);
        return inst;
    }
    return nullptr;
}

bool
SllmController::tryDispatch(Request *req)
{
    ModelEntry &me = models_[req->model];
    InstanceRole want = cfg_.pdDisaggregation ? InstanceRole::PrefillOnly
                                              : InstanceRole::Unified;
    // Existing instances, in creation order (CPU instances were placed
    // first under +c, so CPU is naturally preferred).
    for (Instance *inst : me.instances) {
        if (inst->role != want)
            continue;
        if (admitIfRoom(req, inst, false))
            return true;
    }
    Instance *inst = createInstanceFor(req->model, want);
    if (!inst)
        return false;
    admitTo(req, inst);
    return true;
}

bool
SllmController::tryDispatchDecode(Request *req)
{
    ModelEntry &me = models_[req->model];
    for (Instance *inst : me.instances) {
        if (inst->role != InstanceRole::DecodeOnly)
            continue;
        if (inst->state != InstanceState::Active)
            continue;
        if (admitIfRoom(req, inst, true))
            return true;
    }
    Instance *inst =
        createInstanceFor(req->model, InstanceRole::DecodeOnly);
    if (!inst)
        return false;
    if (!admitToDecode(req, inst))
        queueDecode(req);
    return true;
}

void
SllmController::handleKvShortage(Instance *inst)
{
    // vLLM's recompute preemption: push the slackest request back out.
    if (inst->loadSize() > 1)
        evictLongestHeadroom(inst);
}

void
SllmController::doUnload(Instance *inst)
{
    unloadStatic(inst);
}

} // namespace slinfer
