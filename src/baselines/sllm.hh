/**
 * @file
 * The ServerlessLLM-family baselines (paper §IX-A).
 *
 *  - `sllm`: exclusive GPU allocation per instance; requests queue when
 *    no GPU is free; per-model-class concurrency caps (conservatively
 *    tailored, as the paper does, because the stock limit of 2 is
 *    uselessly low).
 *  - `sllm+c`: additionally uses CPU nodes, preferring them.
 *  - `sllm+c+s`: static time-sharing — every node is split into two
 *    half-partitions, each hosting one instance with halved resources
 *    and correspondingly lower caps. Exception (the paper's): 13B
 *    instances on a CPU keep the whole node.
 *
 * All baselines share SLINFER's cold-start loader, keep-alive policy
 * and proactive TTFT drops; they use vLLM-style prefill-first FIFO
 * iteration scheduling and size the KV cache statically to everything
 * left on the partition.
 */

#ifndef SLINFER_BASELINES_SLLM_HH
#define SLINFER_BASELINES_SLLM_HH

#include "core/controller.hh"

namespace slinfer
{

struct SllmOptions
{
    /** Consider CPU nodes (the +c variants). */
    bool useCpu = false;
    /** Static half-node sharing (the +s variant); requires nodes to be
     *  built with two partitions. */
    bool staticShare = false;
};

class SllmController : public ControllerBase
{
  public:
    SllmController(Simulator &sim,
                   std::vector<std::unique_ptr<Node>> &nodes,
                   std::vector<ModelSpec> modelSpecs,
                   std::vector<double> initialAvgOutput,
                   ControllerConfig cfg, Recorder &recorder,
                   ClusterStats *stats, SllmOptions opts);

    /** The tailored per-instance concurrency caps (§IX-A). */
    static int concurrencyCap(ModelClass klass, HwKind kind, bool shared);

  protected:
    bool tryDispatch(Request *req) override;
    bool tryDispatchDecode(Request *req) override;
    SchedPolicy schedPolicy() const override;
    void handleKvShortage(Instance *inst) override;
    void doUnload(Instance *inst) override;

  private:
    bool cpuServable(const ModelSpec &spec) const;
    bool admitIfRoom(Request *req, Instance *inst, bool asDecode);
    /** Place a new instance for `model`; nullptr when no room. */
    Instance *createInstanceFor(ModelId model, InstanceRole role);

    SllmOptions opts_;
};

} // namespace slinfer

#endif // SLINFER_BASELINES_SLLM_HH
