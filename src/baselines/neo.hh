/**
 * @file
 * NEO-style CPU-assisted GPU serving (paper §IX-I3, Fig. 29).
 *
 * NEO offloads KV-cache and the associated attention computation to the
 * host CPU, relieving GPU memory pressure. We model the assistance as
 * (a) auxiliary KV read bandwidth proportional to the harvested cores
 * (served in parallel with HBM) and (b) extra host-DRAM KV capacity.
 * The serving policy on top is the exclusive-GPU baseline: NEO targets
 * single-instance high-load serving, which is exactly why it lags in
 * the serverless multi-model setting the paper evaluates.
 */

#ifndef SLINFER_BASELINES_NEO_HH
#define SLINFER_BASELINES_NEO_HH

#include "hw/hardware_spec.hh"

namespace slinfer
{

/**
 * A GPU node spec augmented with `harvestedCores` of CPU assistance
 * from a host of type `cpu`.
 */
HardwareSpec neoGpuSpec(const HardwareSpec &gpu, const HardwareSpec &cpu,
                        int harvestedCores);

} // namespace slinfer

#endif // SLINFER_BASELINES_NEO_HH
