#include "baselines/neo.hh"

#include "common/units.hh"

namespace slinfer
{

HardwareSpec
neoGpuSpec(const HardwareSpec &gpu, const HardwareSpec &cpu,
           int harvestedCores)
{
    HardwareSpec hw = gpu;
    if (harvestedCores <= 0)
        return hw;
    hw.name = gpu.name + " +NEO" + std::to_string(harvestedCores) + "c";
    double core_frac =
        static_cast<double>(harvestedCores) / std::max(cpu.cores, 1);
    // Offloaded attention reads KV from host DRAM at the CPU's share of
    // effective bandwidth; PCIe is bypassed because the computation
    // happens CPU-side (NEO's design).
    hw.auxKvBandwidth = cpu.effectiveBw() * core_frac;
    // Host DRAM KV pool: 2 GiB per harvested core, a conservative slice
    // of the host's memory.
    hw.auxKvCapacity = static_cast<Bytes>(harvestedCores) * 2 * kGiB;
    return hw;
}

} // namespace slinfer
