/**
 * @file
 * Priority event queue for the discrete-event simulator.
 *
 * Events are (time, sequence, callback) triples; ties on time are broken
 * by insertion order so the simulation is fully deterministic. Events
 * can be cancelled via the handle returned at scheduling time;
 * cancellation is lazy (the entry is skipped at pop time).
 */

#ifndef SLINFER_SIM_EVENT_QUEUE_HH
#define SLINFER_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace slinfer
{

/** Opaque handle allowing a scheduled event to be cancelled. */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Cancel the event if it has not fired yet. Safe to call twice. */
    void cancel();

    /** True if the handle refers to a still-pending event. */
    bool pending() const;

  private:
    friend class EventQueue;
    explicit EventHandle(std::shared_ptr<bool> alive)
        : alive_(std::move(alive)) {}

    std::shared_ptr<bool> alive_;
};

/**
 * Time-ordered queue of callbacks.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule `cb` at absolute time `when`. */
    EventHandle schedule(Seconds when, Callback cb);

    /** True if no live events remain. */
    bool empty() const;

    /** Time of the earliest live event; panics when empty. */
    Seconds nextTime() const;

    /**
     * Pop and run the earliest live event, returning its time.
     * Panics when empty.
     */
    Seconds popAndRun();

    /**
     * Number of queued events. Cancelled entries are counted until they
     * are lazily swept at the head of the heap, so this is an upper
     * bound on the live events.
     */
    std::size_t size() const { return live_; }

  private:
    struct Entry
    {
        Seconds when;
        std::uint64_t seq;
        Callback cb;
        std::shared_ptr<bool> alive;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void dropDead() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
    mutable std::size_t live_ = 0;
};

} // namespace slinfer

#endif // SLINFER_SIM_EVENT_QUEUE_HH
